// Quickstart: match the paper's running example — the relational
// purchase-order schema PO1 against the XML schema PO2 of Figure 1 —
// with the default match operation, and print the similarity-cube
// extract of Table 1 along the way.
//
// The top-level README.md walks through this example and the rest of
// the public API (Engine, the batched Engine.MatchAll, repositories —
// single-store and sharded — the comaserve network server with its
// coma.Client, and the cmd tools); examples/server runs the same match
// through a served repository over HTTP.
package main

import (
	"fmt"
	"log"

	coma "repro"
)

const po1DDL = `
CREATE TABLE PO1.ShipTo (
  poNo INT,
  custNo INT REFERENCES PO1.Customer,
  shipToStreet VARCHAR(200),
  shipToCity VARCHAR(200),
  shipToZip VARCHAR(20),
  PRIMARY KEY (poNo)
);
CREATE TABLE PO1.Customer (
  custNo INT,
  custName VARCHAR(200),
  custStreet VARCHAR(200),
  custCity VARCHAR(200),
  custZip VARCHAR(20),
  PRIMARY KEY (custNo)
);`

const po2XSD = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2">
  <xsd:sequence>
   <xsd:element name="DeliverTo" type="Address"/>
   <xsd:element name="BillTo" type="Address"/>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:complexType name="Address">
  <xsd:sequence>
   <xsd:element name="Street" type="xsd:string"/>
   <xsd:element name="City" type="xsd:string"/>
   <xsd:element name="Zip" type="xsd:decimal"/>
  </xsd:sequence>
 </xsd:complexType>
</xsd:schema>`

func main() {
	s1, err := coma.LoadSQL("PO1", po1DDL)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := coma.LoadXSD("PO2", []byte(po2XSD))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PO1 (relational):")
	fmt.Print(s1)
	fmt.Println("\nPO2 (XML, shared Address fragment):")
	fmt.Print(s2)

	// Default match operation: all five hybrid matchers combined with
	// (Average, Both, Threshold(0.5)+Delta(0.02)).
	res, err := coma.Match(s1, s2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmatch result (%d correspondences, schema similarity %.2f):\n",
		res.Mapping.Len(), res.SchemaSim)
	for _, c := range res.Mapping.Correspondences() {
		fmt.Printf("  %-25s <-> %-28s %.2f\n", c.From, c.To, c.Sim)
	}

	// Peek into the similarity cube (Table 1): the intermediate result
	// of each matcher before combination.
	fmt.Println("\nsimilarity cube extract (Table 1):")
	for _, matcher := range res.Cube.Matchers() {
		layer := res.Cube.Layer(matcher)
		sim := layer.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City")
		fmt.Printf("  %-10s ShipTo.shipToCity <-> DeliverTo.Address.City  %.2f\n", matcher, sim)
	}
}
