// Reuse: the repository-backed Schema matcher (paper Section 5). Two
// previously matched purchase-order schemas provide mappings that are
// composed via MatchCompose to predict a mapping for a brand-new pair —
// without executing any linguistic or structural matcher.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	coma "repro"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "coma-reuse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	repo, err := coma.OpenRepository(filepath.Join(dir, "coma.repo"))
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	// Three schemas from the workload: CIDX (1), Excel (2), Noris (3).
	schemas := workload.Schemas()
	cidx, excel, noris := schemas[0], schemas[1], schemas[2]
	for _, s := range []*coma.Schema{cidx, excel, noris} {
		if err := repo.PutSchema(s); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 1: match CIDX<->Excel and Excel<->Noris the ordinary way
	// and store the (user-confirmed) results in the repository.
	for _, pair := range [][2]*coma.Schema{{cidx, excel}, {excel, noris}} {
		res, err := coma.Match(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		if err := repo.PutMapping(coma.TagManual, res.Mapping); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stored %s <-> %s (%d correspondences)\n",
			pair[0].Name, pair[1].Name, res.Mapping.Len())
	}

	// Phase 2: the new task CIDX<->Noris is answered purely from the
	// repository: MatchCompose joins the stored mappings through Excel.
	reuseOnly, err := coma.Match(cidx, noris,
		coma.WithMatcherInstances(repo.SchemaMatcher(coma.TagManual)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreuse-only match CIDX <-> Noris: %d correspondences\n", reuseOnly.Mapping.Len())
	for i, c := range reuseOnly.Mapping.Correspondences() {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", reuseOnly.Mapping.Len()-10)
			break
		}
		fmt.Printf("  %-42s <-> %-40s %.2f\n", c.From, c.To, c.Sim)
	}

	// Compare against the gold standard and against the default
	// (no-reuse) operation.
	task, _ := workload.TaskByName("1<->3")
	direct, err := coma.Match(cidx, noris)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquality vs gold standard (%d real matches):\n", task.Gold.Len())
	report := func(label string, m *coma.Mapping) {
		var hit int
		for _, c := range m.Correspondences() {
			if task.Gold.Contains(c.From, c.To) {
				hit++
			}
		}
		fmt.Printf("  %-12s proposed=%3d correct=%3d\n", label, m.Len(), hit)
	}
	report("reuse-only", reuseOnly.Mapping)
	report("no-reuse", direct.Mapping)
}
