// Server example: the repository-server loop of the README in one
// process — open a sharded repository, put the comaserve HTTP/JSON API
// in front of it, and drive it with coma.Client: import two schemas,
// then ask which stored schema an incoming purchase-order DDL
// resembles. In production the server side is `comaserve -addr :8402
// -repo ./coma.shards -shards 4` and clients connect over the network;
// the API is the same.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	coma "repro"
)

const po1DDL = `
CREATE TABLE PO1.ShipTo (
  poNo INT,
  shipToStreet VARCHAR(200),
  shipToCity VARCHAR(200),
  shipToZip VARCHAR(20),
  PRIMARY KEY (poNo)
);`

const po2XSD = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2">
  <xsd:sequence>
   <xsd:element name="DeliverTo" type="Address"/>
   <xsd:element name="BillTo" type="Address"/>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:complexType name="Address">
  <xsd:sequence>
   <xsd:element name="Street" type="xsd:string"/>
   <xsd:element name="City" type="xsd:string"/>
   <xsd:element name="Zip" type="xsd:decimal"/>
  </xsd:sequence>
 </xsd:complexType>
</xsd:schema>`

const invoiceDTD = `<!ELEMENT invoice (billTo, amount)>
<!ELEMENT billTo (street, city, zip)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
<!ELEMENT amount (#PCDATA)>`

func main() {
	ctx := context.Background()

	// Server side: a 4-shard repository behind the HTTP API. comaserve
	// does exactly this around a net.Listener.
	dir, err := os.MkdirTemp("", "coma-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	repo, err := coma.OpenShardedRepository(filepath.Join(dir, "shards"), 4)
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	ts := httptest.NewServer(repo.Handler())
	defer ts.Close()

	// Client side: import two schemas, then match an incoming one.
	client := coma.NewClient(ts.URL)
	if _, err := client.PutSchema(ctx, "PO2", "xsd", po2XSD); err != nil {
		log.Fatal(err)
	}
	if _, err := client.PutSchema(ctx, "Invoice", "dtd", invoiceDTD); err != nil {
		log.Fatal(err)
	}
	h, err := client.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d schemas in %d shards\n\n", h.Schemas, h.Shards)

	resp, err := client.Match(ctx, coma.MatchRequest{
		Schema: coma.SchemaPayload{Name: "PO1", Format: "sql", Source: po1DDL},
	})
	if err != nil {
		log.Fatal(err)
	}
	for rank, c := range resp.Candidates {
		fmt.Printf("%d. %-10s schema sim %.3f\n", rank+1, c.Schema, c.SchemaSim)
		for _, corr := range c.Correspondences {
			fmt.Printf("   %-25s <-> %-25s %.3f\n", corr.From, corr.To, corr.Sim)
		}
	}
}
