// Bioinformatics: the application domain the paper names for future
// work ("we will apply COMA to additional schema types and
// applications, such as in the bioinformatics domain"). Two gene
// annotation schemas — an XSD feed and a JSON Schema API — are matched
// cross-format with a domain dictionary supplying the biological
// synonym families (gene/locus, protein/polypeptide, ...).
package main

import (
	"fmt"
	"log"
	"strings"

	coma "repro"
)

const genbankXSD = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="GeneRecord">
  <xsd:sequence>
   <xsd:element name="locusTag" type="xsd:string"/>
   <xsd:element name="geneSymbol" type="xsd:string"/>
   <xsd:element name="organismName" type="xsd:string"/>
   <xsd:element name="chromosome" type="xsd:string"/>
   <xsd:element name="startPosition" type="xsd:integer"/>
   <xsd:element name="endPosition" type="xsd:integer"/>
   <xsd:element name="strand" type="xsd:string"/>
   <xsd:element name="Product" type="ProteinProduct"/>
   <xsd:element name="Reference" type="Citation"/>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:complexType name="ProteinProduct">
  <xsd:sequence>
   <xsd:element name="proteinName" type="xsd:string"/>
   <xsd:element name="proteinID" type="xsd:string"/>
   <xsd:element name="sequenceLength" type="xsd:integer"/>
   <xsd:element name="molecularWeight" type="xsd:decimal"/>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:complexType name="Citation">
  <xsd:sequence>
   <xsd:element name="pubmedId" type="xsd:string"/>
   <xsd:element name="authors" type="xsd:string"/>
   <xsd:element name="journalTitle" type="xsd:string"/>
  </xsd:sequence>
 </xsd:complexType>
</xsd:schema>`

const ensemblJSON = `{
  "title": "gene",
  "type": "object",
  "properties": {
    "gene_id":       {"type": "string"},
    "locus":         {"type": "string"},
    "species":       {"type": "string"},
    "chromosome":    {"type": "string"},
    "start":         {"type": "integer"},
    "end":           {"type": "integer"},
    "strand":        {"type": "string"},
    "polypeptide":   {"$ref": "#/definitions/Polypeptide"},
    "publications": {
      "type": "array",
      "items": {"$ref": "#/definitions/Publication"}
    }
  },
  "definitions": {
    "Polypeptide": {
      "type": "object",
      "properties": {
        "name":    {"type": "string"},
        "id":      {"type": "string"},
        "length":  {"type": "integer"},
        "mass":    {"type": "number"}
      }
    },
    "Publication": {
      "type": "object",
      "properties": {
        "pmid":    {"type": "string"},
        "authors": {"type": "string"},
        "journal": {"type": "string"}
      }
    }
  }
}`

// bioDict carries the domain knowledge a curator would supply.
const bioDict = `
syn gene locus
syn protein polypeptide
syn organism species
syn product protein
syn position coordinate
syn start begin
syn end stop
syn weight mass
syn reference publication
syn reference citation
syn pubmed pmid
abb id identifier
abb pmid pubmed identifier
`

func main() {
	genbank, err := coma.LoadXSD("genbank", []byte(genbankXSD))
	if err != nil {
		log.Fatal(err)
	}
	ensembl, err := coma.LoadJSONSchema("ensembl", []byte(ensemblJSON))
	if err != nil {
		log.Fatal(err)
	}

	st := coma.DefaultStrategy()
	st.Sel = coma.Selection{Threshold: 0.45, Delta: 0.02}
	res, err := coma.Match(genbank, ensembl,
		coma.WithStrategy(st),
		coma.WithDictionaryFile(strings.NewReader(bioDict)),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("genbank (XSD) <-> ensembl (JSON Schema): %d correspondences\n\n", res.Mapping.Len())
	for _, c := range res.Mapping.Correspondences() {
		fmt.Printf("  %-45s <-> %-40s %.2f\n", c.From, c.To, c.Sim)
	}

	// Without the domain dictionary several biological synonym matches
	// disappear — the value of auxiliary information (paper Sec. 4.1).
	plain, err := coma.Match(genbank, ensembl, coma.WithStrategy(st))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout the domain dictionary: %d correspondences (%d fewer)\n",
		plain.Mapping.Len(), res.Mapping.Len()-plain.Mapping.Len())
}
