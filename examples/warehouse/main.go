// Warehouse loading: the directional match scenario the paper's
// introduction motivates — integrating a new relational source into a
// data warehouse with a fixed global schema. Only match candidates for
// the (smaller) warehouse schema are needed, so the LargeSmall
// directional strategy applies: source elements are ranked and selected
// with respect to each warehouse element, and unmatched source columns
// are acceptable.
package main

import (
	"fmt"
	"log"

	coma "repro"
)

// sourceDDL is the operational source system: wide tables, terse
// column names.
const sourceDDL = `
CREATE TABLE src.SalesOrder (
  so_no        INT PRIMARY KEY,
  so_date      DATE,
  cust_no      INT REFERENCES src.Client,
  ship_street  VARCHAR(120),
  ship_city    VARCHAR(80),
  ship_zip     VARCHAR(16),
  carrier_code VARCHAR(8),
  total_amt    DECIMAL(12,2),
  tax_amt      DECIMAL(12,2),
  discount_pct DECIMAL(5,2),
  entered_by   VARCHAR(40)
);
CREATE TABLE src.Client (
  cust_no    INT PRIMARY KEY,
  cust_name  VARCHAR(120),
  cust_city  VARCHAR(80),
  cust_phone VARCHAR(32),
  segment    VARCHAR(16)
);
CREATE TABLE src.OrderLine (
  so_no     INT REFERENCES src.SalesOrder,
  line_no   INT,
  prod_code VARCHAR(24),
  qty       DECIMAL(10,2),
  unit_cost DECIMAL(12,4)
);`

// warehouseDDL is the dimensional target schema.
const warehouseDDL = `
CREATE TABLE dw.FactOrder (
  orderNumber   INT PRIMARY KEY,
  orderDate     DATE,
  customerKey   INT REFERENCES dw.DimCustomer,
  totalAmount   DECIMAL(14,2),
  taxAmount     DECIMAL(14,2)
);
CREATE TABLE dw.DimCustomer (
  customerKey   INT PRIMARY KEY,
  customerName  VARCHAR(200),
  customerCity  VARCHAR(100),
  customerPhone VARCHAR(40)
);
CREATE TABLE dw.FactOrderLine (
  orderNumber  INT,
  lineNumber   INT,
  productCode  VARCHAR(30),
  quantity     DECIMAL(12,2),
  unitPrice    DECIMAL(14,4)
);`

func main() {
	source, err := coma.LoadSQL("source", sourceDDL)
	if err != nil {
		log.Fatal(err)
	}
	warehouse, err := coma.LoadSQL("warehouse", warehouseDDL)
	if err != nil {
		log.Fatal(err)
	}

	// Directional match: find a source candidate for every warehouse
	// element; the source's operational extras (carrier_code,
	// entered_by, segment, ...) legitimately stay unmatched.
	strategy := coma.DefaultStrategy()
	strategy.Dir = coma.LargeSmall
	strategy.Sel = coma.Selection{MaxN: 1, Threshold: 0.4}

	res, err := coma.Match(source, warehouse, coma.WithStrategy(strategy))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("warehouse load mapping (%d of %d warehouse elements covered):\n",
		len(res.Mapping.ToElements()), len(warehouse.Paths()))
	for _, c := range res.Mapping.Correspondences() {
		fmt.Printf("  %-28s := %-28s (%.2f)\n", c.To, c.From, c.Sim)
	}

	// Report the warehouse elements that still need a manual mapping.
	covered := make(map[string]bool)
	for _, e := range res.Mapping.ToElements() {
		covered[e] = true
	}
	fmt.Println("\nunmapped warehouse elements (manual post-match effort):")
	for _, p := range warehouse.Paths() {
		if !covered[p.String()] {
			fmt.Printf("  %s\n", p)
		}
	}
}
