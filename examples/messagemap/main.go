// XML message mapping with interactive refinement: two purchase-order
// message dialects from the evaluation workload are matched, a user
// reviews the proposal, rejects a wrong pair and confirms a missing
// one, and the next iteration honours the feedback — COMA's iterative
// match process (paper Section 3, Figure 2).
package main

import (
	"fmt"
	"log"

	coma "repro"
	"repro/internal/workload"
)

func main() {
	// Dialects 1 (CIDX-style, flat camelCase) and 2 (Excel-style,
	// abbreviated with shared Address/Contact fragments).
	task, ok := workload.TaskByName("1<->2")
	if !ok {
		log.Fatal("workload task missing")
	}

	sess, err := coma.NewSession(task.S1, task.S2)
	if err != nil {
		log.Fatal(err)
	}

	first, err := sess.Iterate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 1: %d proposed correspondences\n", first.Mapping.Len())
	show(first, 8)

	// The user (here: the gold standard standing in for a reviewer)
	// vets the proposal.
	var rejected, confirmed int
	for _, c := range first.Mapping.Correspondences() {
		if !task.Gold.Contains(c.From, c.To) {
			sess.Reject(c.From, c.To)
			rejected++
		}
	}
	for _, g := range task.Gold.Correspondences() {
		if !first.Mapping.Contains(g.From, g.To) && confirmed < 3 {
			sess.Accept(g.From, g.To)
			confirmed++
		}
	}
	fmt.Printf("\nuser feedback: rejected %d pairs, asserted %d missing pairs\n", rejected, confirmed)

	second, err := sess.Iterate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niteration 2: %d correspondences (feedback pinned)\n", second.Mapping.Len())

	var stillWrong int
	for _, c := range second.Mapping.Correspondences() {
		if !task.Gold.Contains(c.From, c.To) {
			stillWrong++
		}
	}
	fmt.Printf("false positives after feedback: %d\n", stillWrong)
}

func show(res *coma.Result, n int) {
	for i, c := range res.Mapping.Correspondences() {
		if i >= n {
			fmt.Printf("  ... and %d more\n", res.Mapping.Len()-n)
			return
		}
		fmt.Printf("  %-38s <-> %-32s %.2f\n", c.From, c.To, c.Sim)
	}
}
