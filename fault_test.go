package coma_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	coma "repro"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// slowMatcher stretches every pair to the configured delay while
// polling the match context's cancellation, so tests can hold a match
// in flight and verify that cancellation cuts through it cooperatively
// instead of burning the full delay.
type slowMatcher struct {
	inner coma.Matcher
	delay atomic.Int64 // nanoseconds per pair
}

func (m *slowMatcher) Name() string { return m.inner.Name() }

func (m *slowMatcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	deadline := time.Now().Add(time.Duration(m.delay.Load()))
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return nil // the scheduler's post-pair check reports the cause
		}
		time.Sleep(time.Millisecond)
	}
	return m.inner.Match(ctx, s1, s2)
}

// namedFaultMatcher fails every pair whose candidate carries the given
// name — the served form of the core-level fault injection wrapper,
// keyed by name because server-side instances are rebuilt from the log.
type namedFaultMatcher struct {
	inner coma.Matcher
	fail  string
}

func (m namedFaultMatcher) Name() string { return m.inner.Name() }

func (m namedFaultMatcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	if s2.Name == m.fail {
		return nil
	}
	return m.inner.Match(ctx, s1, s2)
}

func probePayload(seed int) coma.SchemaPayload {
	return coma.SchemaPayload{Name: "probe", Format: "sql", Source: tinyDDL(seed)}
}

// waitDrained polls /readyz until no match request is queued or in
// flight. The bound is the test's cooperative-stop assertion: a
// non-cooperative matcher would hold its slot for the full injected
// delay, far past the deadline.
func waitDrained(t *testing.T, client *coma.Client, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ready, err := client.Ready(context.Background())
		if err == nil && ready.Queued == 0 && ready.InFlight == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not drain within %v (readyz: %+v, err %v) — cancellation not cooperative", within, ready, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServedMatchCancellationSingle: a canceled POST /match against a
// single-store server returns promptly, stops the batch server-side
// well before the injected per-pair delay elapses, leaks no analyzer
// entries, and leaves the server fully healthy.
func TestServedMatchCancellationSingle(t *testing.T) {
	const stored = 4
	slow := &slowMatcher{inner: match.NewName()}
	ts, engine := newServedRepo(t, stored,
		coma.WithMatcherInstances(slow), coma.WithAnalyzerLimit(64))
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	// Baseline with no delay: the matcher set serves a full ranking.
	resp, err := client.Match(ctx, coma.MatchRequest{Schema: probePayload(42)})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != stored {
		t.Fatalf("baseline match: %d candidates, want %d", len(resp.Candidates), stored)
	}

	slow.delay.Store(int64(3 * time.Second))
	for i := 0; i < 4; i++ {
		cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
		start := time.Now()
		_, err := client.Match(cctx, coma.MatchRequest{Schema: probePayload(50 + i)})
		cancel()
		if err == nil {
			t.Fatal("canceled match succeeded")
		}
		if el := time.Since(start); el > time.Second {
			t.Fatalf("canceled match returned after %v, want prompt return", el)
		}
	}
	// Server-side cooperative stop: the canceled batches must release
	// their slots far sooner than the 3s a non-cooperative pair burns.
	waitDrained(t, client, 1500*time.Millisecond)
	if got := engine.CachedAnalyses(); got > stored {
		t.Errorf("canceled matches leaked analyses: %d cached, stored %d", got, stored)
	}

	// The server stays healthy: the next uncanceled match succeeds and
	// the steady-state cache holds exactly the stored schemas.
	slow.delay.Store(0)
	resp, err = client.Match(ctx, coma.MatchRequest{Schema: probePayload(42)})
	if err != nil {
		t.Fatalf("match after cancellations: %v", err)
	}
	if len(resp.Candidates) != stored {
		t.Errorf("match after cancellations: %d candidates, want %d", len(resp.Candidates), stored)
	}
	if got := engine.CachedAnalyses(); got != stored {
		t.Errorf("analyzer holds %d analyses after recovery, want %d (stored only)", got, stored)
	}
}

// TestServedMatchCancellationSharded is the sharded form: cancellation
// cuts through the shard fan-out, and every shard engine's cache stays
// bounded by its own stored schemas.
func TestServedMatchCancellationSharded(t *testing.T) {
	const shards, stored = 2, 6
	slow := &slowMatcher{inner: match.NewName()}
	repo, err := coma.OpenShardedRepository(filepath.Join(t.TempDir(), "shards"), shards,
		coma.WithMatcherInstances(slow), coma.WithAnalyzerLimit(64))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for i := 0; i < stored; i++ {
		s, err := coma.LoadSQL(fmt.Sprintf("Stored%d", i), tinyDDL(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(repo.Handler())
	t.Cleanup(ts.Close)
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	resp, err := client.Match(ctx, coma.MatchRequest{Schema: probePayload(42)})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != stored {
		t.Fatalf("baseline sharded match: %d candidates, want %d", len(resp.Candidates), stored)
	}

	slow.delay.Store(int64(3 * time.Second))
	for i := 0; i < 3; i++ {
		cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
		_, err := client.Match(cctx, coma.MatchRequest{Schema: probePayload(60 + i)})
		cancel()
		if err == nil {
			t.Fatal("canceled sharded match succeeded")
		}
	}
	waitDrained(t, client, 1500*time.Millisecond)

	slow.delay.Store(0)
	if _, err := client.Match(ctx, coma.MatchRequest{Schema: probePayload(42)}); err != nil {
		t.Fatalf("sharded match after cancellations: %v", err)
	}
	for i := 0; i < shards; i++ {
		bound := len(repo.ShardSchemas(i))
		if got := repo.ShardEngine(i).CachedAnalyses(); got > bound {
			t.Errorf("shard %d caches %d analyses, want <= %d (its stored schemas)", i, got, bound)
		}
	}
}

// TestServedPartialShardFailure: an injected matcher fault in one
// shard fails a strict match outright, while AllowPartial degrades it
// to a ranking over the surviving shards — bit-identical, per
// candidate, to a fresh local engine — naming the dropped shard.
func TestServedPartialShardFailure(t *testing.T) {
	const shards, stored = 3, 6
	const badName = "Stored2"
	repo, err := coma.OpenShardedRepository(filepath.Join(t.TempDir(), "shards"), shards,
		coma.WithMatcherInstances(namedFaultMatcher{inner: match.NewName(), fail: badName}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for i := 0; i < stored; i++ {
		s, err := coma.LoadSQL(fmt.Sprintf("Stored%d", i), tinyDDL(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	badShard := -1
	lost := map[string]bool{}
	for i := 0; i < shards; i++ {
		for _, s := range repo.ShardSchemas(i) {
			if s.Name == badName {
				badShard = i
			}
		}
	}
	if badShard < 0 {
		t.Fatalf("%s not stored in any shard", badName)
	}
	for _, s := range repo.ShardSchemas(badShard) {
		lost[s.Name] = true
	}
	ts := httptest.NewServer(repo.Handler())
	t.Cleanup(ts.Close)
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	// Strict: the injected fault fails the whole request.
	if _, err := client.Match(ctx, coma.MatchRequest{Schema: probePayload(42)}); err == nil ||
		!strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("strict match with injected fault: err = %v, want HTTP 500", err)
	}

	resp, err := client.Match(ctx, coma.MatchRequest{Schema: probePayload(42), AllowPartial: true})
	if err != nil {
		t.Fatalf("partial match: %v", err)
	}
	if !resp.Partial {
		t.Error("degraded response not marked Partial")
	}
	if len(resp.FailedShards) != 1 || resp.FailedShards[0].Shard != badShard ||
		resp.FailedShards[0].Error == "" {
		t.Fatalf("failed shards = %+v, want exactly shard %d with a message", resp.FailedShards, badShard)
	}
	if want := stored - len(lost); len(resp.Candidates) != want {
		t.Fatalf("partial ranking has %d candidates, want %d (survivors)", len(resp.Candidates), want)
	}

	// Surviving candidates are bit-identical to a fresh local engine
	// over the same matcher set.
	fresh, err := coma.NewEngine(coma.WithMatcherInstances(match.NewName()))
	if err != nil {
		t.Fatal(err)
	}
	probe, err := coma.LoadSQL("probe", tinyDDL(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range resp.Candidates {
		if lost[cand.Schema] {
			t.Fatalf("candidate %q belongs to the failed shard %d", cand.Schema, badShard)
		}
		seed := 0
		if _, err := fmt.Sscanf(cand.Schema, "Stored%d", &seed); err != nil {
			t.Fatalf("unexpected candidate %q", cand.Schema)
		}
		local, err := coma.LoadSQL(cand.Schema, tinyDDL(seed))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Match(probe, local)
		if err != nil {
			t.Fatal(err)
		}
		if cand.SchemaSim != want.SchemaSim {
			t.Errorf("surviving %s similarity %v, fresh engine %v", cand.Schema, cand.SchemaSim, want.SchemaSim)
		}
	}

	// TopK composes with degradation: the shortlist is cut over the
	// surviving shards only.
	resp, err = client.Match(ctx, coma.MatchRequest{Schema: probePayload(42), TopK: 2, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || len(resp.Candidates) != 2 {
		t.Errorf("partial TopK: partial=%v candidates=%d, want true/2", resp.Partial, len(resp.Candidates))
	}
	for _, cand := range resp.Candidates {
		if lost[cand.Schema] {
			t.Errorf("partial TopK kept failed-shard candidate %q", cand.Schema)
		}
	}
}

// TestClientRetryFlaky: WithRetry rides out transient 5xx answers from
// a flaky server, reusing one Idempotency-Key across a POST's
// attempts, while non-retryable statuses and retry-less clients fail
// on the first answer.
func TestClientRetryFlaky(t *testing.T) {
	var calls atomic.Int32
	var mode atomic.Int32 // 0: 503 twice then OK; 1: always 400; 2: always 503
	var mu sync.Mutex
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/match" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		switch {
		case mode.Load() == 1:
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"malformed request"}`)
		case mode.Load() == 2 || n <= 2:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"transient outage"}`)
		default:
			fmt.Fprint(w, `{"incoming":"probe","candidates":[{"schema":"Stored1","schemaSim":0.5}]}`)
		}
	}))
	t.Cleanup(ts.Close)
	ctx := context.Background()
	req := coma.MatchRequest{Schema: probePayload(1)}

	retrying := coma.NewClient(ts.URL,
		coma.WithRetry(4), coma.WithRetryBackoff(time.Millisecond, 4*time.Millisecond))
	resp, err := retrying.Match(ctx, req)
	if err != nil {
		t.Fatalf("retrying client failed against flaky server: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("flaky server answered %d calls, want 3 (two 503s + success)", got)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Schema != "Stored1" {
		t.Errorf("retried match decoded %+v", resp.Candidates)
	}
	mu.Lock()
	if len(keys) != 3 || keys[0] == "" || keys[0] != keys[1] || keys[1] != keys[2] {
		t.Errorf("idempotency keys across attempts = %q, want one non-empty key reused", keys)
	}
	mu.Unlock()

	// Non-retryable status: a single attempt, even with retries armed.
	mode.Store(1)
	calls.Store(0)
	if _, err := retrying.Match(ctx, req); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Errorf("400 answer: err = %v, want HTTP 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("non-retryable status retried: %d calls, want 1", got)
	}

	// A retry-less client fails on the first transient answer.
	mode.Store(2)
	calls.Store(0)
	plain := coma.NewClient(ts.URL)
	if _, err := plain.Match(ctx, req); err == nil || !strings.Contains(err.Error(), "HTTP 503") {
		t.Errorf("retry-less client: err = %v, want HTTP 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("retry-less client made %d calls, want 1", got)
	}

	// Cancellation wins over backoff: a done context stops the retry
	// loop instead of sleeping through it.
	slowRetry := coma.NewClient(ts.URL,
		coma.WithRetry(10), coma.WithRetryBackoff(100*time.Millisecond, time.Second))
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := slowRetry.Match(cctx, req); err == nil {
		t.Error("canceled retry loop succeeded")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("canceled retry loop returned after %v, want prompt return", el)
	}
}

// TestHandlerDrain: Drain flips readiness to 503 and sheds new matches
// while liveness and reads stay up — the probe split load balancers
// rely on during graceful shutdown.
func TestHandlerDrain(t *testing.T) {
	repo, err := coma.OpenRepository(filepath.Join(t.TempDir(), "drain.repo"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for i := 0; i < 2; i++ {
		s, err := coma.LoadSQL(fmt.Sprintf("Stored%d", i), tinyDDL(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	handler := repo.Handler(engine)
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	client := coma.NewClient(ts.URL)
	ctx := context.Background()

	ready, err := client.Ready(ctx)
	if err != nil {
		t.Fatalf("readyz before drain: %v", err)
	}
	if ready.Status != "ok" || ready.Draining || ready.Workers < 1 {
		t.Errorf("readiness before drain = %+v", ready)
	}

	handler.Drain()
	if _, err := client.Ready(ctx); err == nil {
		t.Error("readyz answered ok while draining")
	}
	if _, err := client.Match(ctx, coma.MatchRequest{Schema: probePayload(9)}); err == nil ||
		!strings.Contains(err.Error(), "HTTP 503") {
		t.Errorf("match while draining: err = %v, want HTTP 503", err)
	}
	// Liveness and reads survive the drain.
	if h, err := client.Health(ctx); err != nil || h.Status != "ok" {
		t.Errorf("healthz while draining: %+v, %v", h, err)
	}
	if infos, err := client.Schemas(ctx); err != nil || len(infos) != 2 {
		t.Errorf("schemas while draining: %d infos, %v", len(infos), err)
	}
}
