package coma_test

import (
	"strings"
	"testing"

	coma "repro"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/workload"
)

// The golden guarantee of the shared analysis layer: every matcher
// produces a bit-identical matrix whether it reads the precomputed
// SchemaIndex (profiles, dictionary hit-sets, type classes, leaf
// enumerations) or re-derives everything per element pair through the
// public per-pair primitives (NameSim, PairSim, dict lookups). The
// reference implementations below mirror the seed engine's per-pair
// evaluation with no index involvement.

// refNameMatrix evaluates the Name/NamePath matcher per pair via
// NameSim, which tokenizes and expands from scratch on every call.
func refNameMatrix(ctx *match.Context, s1, s2 *coma.Schema, long bool) *simcube.Matrix {
	nm := match.NewName()
	if long {
		nm = match.NewNamePath()
	}
	name := func(p schema.Path) string {
		if long {
			return strings.Join(p.Names(), ".")
		}
		return p.Name()
	}
	p1, p2 := s1.Paths(), s2.Paths()
	out := simcube.NewMatrix(match.Keys(s1), match.Keys(s2))
	for i := range p1 {
		for j := range p2 {
			out.Set(i, j, nm.NameSim(ctx, name(p1[i]), name(p2[j])))
		}
	}
	return out
}

// refTypeNameMatrix evaluates TypeName per pair via PairSim (weighted
// type/name formula over the raw declared types).
func refTypeNameMatrix(ctx *match.Context, s1, s2 *coma.Schema) *simcube.Matrix {
	tn := match.NewTypeName()
	p1, p2 := s1.Paths(), s2.Paths()
	out := simcube.NewMatrix(match.Keys(s1), match.Keys(s2))
	for i := range p1 {
		for j := range p2 {
			out.Set(i, j, tn.PairSim(ctx, p1[i], p2[j]))
		}
	}
	return out
}

func refCombineSets(n1, n2 int, sim func(i, j int) float64) float64 {
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return combine.MutualBestSimilarity(combine.CombAverage, n1, n2, sim)
}

// refChildrenMatrix evaluates Children bottom-up from per-pair leaf
// similarities and string-keyed child resolution, like the seed.
func refChildrenMatrix(ctx *match.Context, s1, s2 *coma.Schema) *simcube.Matrix {
	tn := match.NewTypeName()
	p1, p2 := s1.Paths(), s2.Paths()
	k1, k2 := match.Keys(s1), match.Keys(s2)
	childIdx := func(paths []schema.Path, keys []string) [][]int {
		byKey := make(map[string]int, len(keys))
		for i, k := range keys {
			byKey[k] = i
		}
		out := make([][]int, len(paths))
		for i, p := range paths {
			for _, c := range p.ChildPaths() {
				if j, ok := byKey[c.String()]; ok {
					out[i] = append(out[i], j)
				}
			}
		}
		return out
	}
	child1, child2 := childIdx(p1, k1), childIdx(p2, k2)
	out := simcube.NewMatrix(k1, k2)
	for i := len(p1) - 1; i >= 0; i-- {
		for j := len(p2) - 1; j >= 0; j-- {
			var v float64
			switch {
			case p1[i].Leaf().IsLeaf() && p2[j].Leaf().IsLeaf():
				v = tn.PairSim(ctx, p1[i], p2[j])
			case !p1[i].Leaf().IsLeaf() && !p2[j].Leaf().IsLeaf():
				c1, c2 := child1[i], child2[j]
				v = refCombineSets(len(c1), len(c2), func(a, b int) float64 {
					return out.Get(c1[a], c2[b])
				})
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// refLeavesMatrix evaluates Leaves from per-pair leaf similarities
// over Path.LeafPaths sets, like the seed.
func refLeavesMatrix(ctx *match.Context, s1, s2 *coma.Schema) *simcube.Matrix {
	tn := match.NewTypeName()
	p1, p2 := s1.Paths(), s2.Paths()
	out := simcube.NewMatrix(match.Keys(s1), match.Keys(s2))
	for i := range p1 {
		l1 := p1[i].LeafPaths()
		for j := range p2 {
			l2 := p2[j].LeafPaths()
			out.Set(i, j, refCombineSets(len(l1), len(l2), func(a, b int) float64 {
				return tn.PairSim(ctx, l1[a], l2[b])
			}))
		}
	}
	return out
}

func diffMatrices(t *testing.T, name string, got, want *simcube.Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if got.Get(i, j) != want.Get(i, j) {
				t.Fatalf("%s: cell (%s, %s) = %v with index, %v without",
					name, got.RowKeys()[i], got.ColKeys()[j], got.Get(i, j), want.Get(i, j))
			}
		}
	}
}

// TestMatcherGoldenIndexVsDirect compares every hybrid matcher's
// index-driven matrix against the per-pair reference, bit for bit.
func TestMatcherGoldenIndexVsDirect(t *testing.T) {
	task := workload.Tasks()[0]
	refs := map[string]func(*match.Context, *coma.Schema, *coma.Schema) *simcube.Matrix{
		"Name": func(ctx *match.Context, a, b *coma.Schema) *simcube.Matrix {
			return refNameMatrix(ctx, a, b, false)
		},
		"NamePath": func(ctx *match.Context, a, b *coma.Schema) *simcube.Matrix {
			return refNameMatrix(ctx, a, b, true)
		},
		"TypeName": refTypeNameMatrix,
		"Children": refChildrenMatrix,
		"Leaves":   refLeavesMatrix,
	}
	builders := map[string]func() match.Matcher{
		"Name":     func() match.Matcher { return match.NewName() },
		"NamePath": func() match.Matcher { return match.NewNamePath() },
		"TypeName": func() match.Matcher { return match.NewTypeName() },
		"Children": func() match.Matcher { return match.NewChildren() },
		"Leaves":   func() match.Matcher { return match.NewLeaves() },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			ctx := match.NewContext()
			got := build().Match(ctx, task.S1, task.S2)
			want := refs[name](match.NewContext(), task.S1, task.S2)
			diffMatrices(t, name, got, want)
		})
	}
}

// TestMappingGoldenIndexVsDirect is the mapping-level golden: the
// default five-matcher operation through the indexed engine yields
// exactly the mapping obtained by combining the per-pair reference
// matrices with the same strategy.
func TestMappingGoldenIndexVsDirect(t *testing.T) {
	task := workload.Tasks()[0]
	res, err := coma.Match(task.S1, task.S2)
	if err != nil {
		t.Fatal(err)
	}

	ctx := match.NewContext()
	cube := simcube.NewCube(match.Keys(task.S1), match.Keys(task.S2))
	for _, layer := range []struct {
		name string
		m    *simcube.Matrix
	}{
		{"Name", refNameMatrix(ctx, task.S1, task.S2, false)},
		{"NamePath", refNameMatrix(ctx, task.S1, task.S2, true)},
		{"TypeName", refTypeNameMatrix(ctx, task.S1, task.S2)},
		{"Children", refChildrenMatrix(ctx, task.S1, task.S2)},
		{"Leaves", refLeavesMatrix(ctx, task.S1, task.S2)},
	} {
		if err := cube.AddLayer(layer.name, layer.m); err != nil {
			t.Fatal(err)
		}
	}
	want, err := core.CombineCube(cube, task.S1, task.S2, combine.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}

	diffMatrices(t, "aggregated", res.Matrix, want.Matrix)
	if res.SchemaSim != want.SchemaSim {
		t.Errorf("schema sim %v with index, %v without", res.SchemaSim, want.SchemaSim)
	}
	gc, wc := res.Mapping.Correspondences(), want.Mapping.Correspondences()
	if len(gc) != len(wc) {
		t.Fatalf("%d correspondences with index, %d without", len(gc), len(wc))
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Errorf("correspondence %d: %v with index, %v without", i, gc[i], wc[i])
		}
	}
}
