package coma_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	coma "repro"
	"repro/internal/workload"
)

// openPrunedRepo opens a single-store repository plus an engine with
// the candidate-pruning index, preloaded with the given schemas.
func openPrunedRepo(t *testing.T, stored []*coma.Schema) (*coma.Repository, *coma.Engine) {
	t.Helper()
	repo, err := coma.OpenRepository(filepath.Join(t.TempDir(), "pruned.repo"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	engine, err := coma.NewEngine(coma.WithCandidateIndex())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	return repo, engine
}

// requireSameMatches fails unless the two rankings are bit-identical:
// same candidates in the same order, equal combined schema
// similarities, equal selected mappings.
func requireSameMatches(t *testing.T, label string, got, want []coma.IncomingMatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Schema.Name != w.Schema.Name {
			t.Fatalf("%s: rank %d is %s, want %s", label, i, g.Schema.Name, w.Schema.Name)
		}
		if g.Result.SchemaSim != w.Result.SchemaSim {
			t.Fatalf("%s: rank %d (%s) sim %.17g, want %.17g",
				label, i, g.Schema.Name, g.Result.SchemaSim, w.Result.SchemaSim)
		}
		gc, wc := g.Result.Mapping.Correspondences(), w.Result.Mapping.Correspondences()
		if len(gc) != len(wc) {
			t.Fatalf("%s: rank %d (%s) has %d correspondences, want %d",
				label, i, g.Schema.Name, len(gc), len(wc))
		}
		for j := range gc {
			if gc[j] != wc[j] {
				t.Fatalf("%s: rank %d (%s) correspondence %d = %+v, want %+v",
					label, i, g.Schema.Name, j, gc[j], wc[j])
			}
		}
	}
}

// TestPrunedMatchBitIdentical is the tentpole's golden test: the
// pruned TopK ranking equals the exhaustive one bit for bit — scores,
// order and mappings — on the single store and on every tested shard
// count.
func TestPrunedMatchBitIdentical(t *testing.T) {
	ctx := context.Background()
	stored, incoming := workload.CorpusPair(60, 3)

	t.Run("single", func(t *testing.T) {
		repo, engine := openPrunedRepo(t, stored)
		pruned, err := repo.MatchIncomingContext(ctx, engine, incoming, coma.TopK(10))
		if err != nil {
			t.Fatal(err)
		}
		exhaustive, err := repo.MatchIncomingContext(ctx, engine, incoming, coma.TopK(10), coma.Exhaustive())
		if err != nil {
			t.Fatal(err)
		}
		requireSameMatches(t, "single", pruned, exhaustive)
		stats := repo.LastPruneStats()
		if stats.Candidates != len(stored) {
			t.Errorf("stats.Candidates = %d, want %d", stats.Candidates, len(stored))
		}
		if stats.Skipped == 0 {
			t.Error("pruned match skipped nothing — the index carries no discrimination")
		}
		t.Logf("single store: %d candidates, %d matched, %d skipped (ratio %.2f)",
			stats.Candidates, stats.Matched, stats.Skipped, stats.Ratio())
	})

	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("sharded-%d", shards), func(t *testing.T) {
			repo := openShardedRepo(t, shards, stored, coma.WithCandidateIndex())
			pruned, perrs, err := repo.MatchIncomingContext(ctx, incoming, coma.TopK(10))
			if err != nil {
				t.Fatal(err)
			}
			exhaustive, eerrs, err := repo.MatchIncomingContext(ctx, incoming, coma.TopK(10), coma.Exhaustive())
			if err != nil {
				t.Fatal(err)
			}
			if len(perrs) != 0 || len(eerrs) != 0 {
				t.Fatalf("shard errors: pruned %v, exhaustive %v", perrs, eerrs)
			}
			requireSameMatches(t, fmt.Sprintf("%d shards", shards), pruned, exhaustive)
			stats := repo.LastPruneStats()
			if stats.Candidates != len(stored) {
				t.Errorf("stats.Candidates = %d, want %d", stats.Candidates, len(stored))
			}
			t.Logf("%d shards: %d candidates, %d matched, %d skipped (ratio %.2f)",
				shards, stats.Candidates, stats.Matched, stats.Skipped, stats.Ratio())
		})
	}
}

// TestPrunedMatchWithoutTopK pins the fallback: without a TopK there
// is no k-th score to prune against, so the match runs exhaustively
// and records no prune stats.
func TestPrunedMatchWithoutTopK(t *testing.T) {
	ctx := context.Background()
	stored, incoming := workload.CorpusPair(10, 5)
	repo, engine := openPrunedRepo(t, stored)
	out, err := repo.MatchIncomingContext(ctx, engine, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(stored) {
		t.Fatalf("%d matches, want %d", len(out), len(stored))
	}
	if stats := repo.LastPruneStats(); stats != (coma.PruneStats{}) {
		t.Errorf("prune stats recorded for an unpruned match: %+v", stats)
	}
}

// TestPrunedMatchMaxCandidates pins the explicit shortlist cap: with
// MaxCandidates(m), at most m candidates are matched at all, and a cap
// covering every candidate changes nothing.
func TestPrunedMatchMaxCandidates(t *testing.T) {
	ctx := context.Background()
	stored, incoming := workload.CorpusPair(24, 9)
	repo, engine := openPrunedRepo(t, stored)

	out, err := repo.MatchIncomingContext(ctx, engine, incoming, coma.TopK(5), coma.MaxCandidates(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 5 {
		t.Fatalf("%d matches, want <= 5", len(out))
	}
	stats := repo.LastPruneStats()
	if stats.Matched > 8 {
		t.Errorf("matched %d pairs despite MaxCandidates(8)", stats.Matched)
	}
	if stats.Skipped < len(stored)-8 {
		t.Errorf("skipped %d, want >= %d", stats.Skipped, len(stored)-8)
	}

	// A cap above the candidate count must not change the ranking.
	capped, err := repo.MatchIncomingContext(ctx, engine, incoming, coma.TopK(5), coma.MaxCandidates(len(stored)))
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := repo.MatchIncomingContext(ctx, engine, incoming, coma.TopK(5), coma.Exhaustive())
	if err != nil {
		t.Fatal(err)
	}
	requireSameMatches(t, "covering cap", capped, exhaustive)
}

// TestPrunedServedChurn interleaves served PUT/DELETE with pruned
// matches: the incremental index maintenance hooked into the server
// backends must never fail a match or serve a deleted posting, and
// once the churn quiesces the pruned ranking must equal the exhaustive
// one on the final store. Run under -race, this is the maintenance
// subsystem's concurrency proof.
func TestPrunedServedChurn(t *testing.T) {
	ctx := context.Background()
	repo, err := coma.OpenShardedRepository(filepath.Join(t.TempDir(), "churn"), 4, coma.WithCandidateIndex())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	ts := httptest.NewServer(repo.Handler())
	t.Cleanup(ts.Close)
	client := coma.NewClient(ts.URL)

	stored, incoming := workload.CorpusPair(32, 11)
	for _, s := range stored[:16] {
		if _, err := client.PutSchemaGraph(ctx, s); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 24
	var wg sync.WaitGroup
	errc := make(chan error, 3)
	wg.Add(1)
	go func() { // churn: PUT and DELETE the upper half of the corpus
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			s := stored[16+i%16]
			if _, err := client.PutSchemaGraph(ctx, s); err != nil {
				errc <- fmt.Errorf("put %s: %w", s.Name, err)
				return
			}
			if err := client.DeleteSchema(ctx, s.Name); err != nil {
				errc <- fmt.Errorf("delete %s: %w", s.Name, err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() { // pruned matches riding through the churn
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := client.MatchGraph(ctx, incoming, 5)
				if err != nil {
					errc <- fmt.Errorf("match round %d: %w", i, err)
					return
				}
				if len(resp.Candidates) > 5 {
					errc <- fmt.Errorf("match round %d: %d candidates", i, len(resp.Candidates))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesced: pruned and exhaustive must agree on the final store.
	var xsd bytes.Buffer
	if err := coma.WriteSchemaXSD(&xsd, incoming); err != nil {
		t.Fatal(err)
	}
	req := coma.MatchRequest{
		Schema: coma.SchemaPayload{Name: incoming.Name, Format: "xsd", Source: xsd.String()},
		TopK:   5,
	}
	prunedResp, err := client.Match(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	req.Exhaustive = true
	exhResp, err := client.Match(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(prunedResp.Candidates) != len(exhResp.Candidates) {
		t.Fatalf("pruned %d candidates, exhaustive %d", len(prunedResp.Candidates), len(exhResp.Candidates))
	}
	for i := range prunedResp.Candidates {
		p, e := prunedResp.Candidates[i], exhResp.Candidates[i]
		if p.Schema != e.Schema || p.SchemaSim != e.SchemaSim {
			t.Errorf("rank %d: pruned (%s, %.17g), exhaustive (%s, %.17g)",
				i, p.Schema, p.SchemaSim, e.Schema, e.SchemaSim)
		}
	}

	// /readyz reports the index: schemas indexed, prune ratio recorded.
	ready, err := client.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ready.CandidateIndex == nil {
		t.Fatal("/readyz reports no candidate index on an indexed backend")
	}
	if ready.CandidateIndex.Schemas == 0 || ready.CandidateIndex.Postings == 0 {
		t.Errorf("index readiness %+v, want nonzero schemas and postings", *ready.CandidateIndex)
	}
}
