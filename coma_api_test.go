package coma_test

import (
	"path/filepath"
	"strings"
	"testing"

	coma "repro"
)

const ddlPO1 = `
CREATE TABLE PO1.ShipTo (
  poNo INT,
  custNo INT REFERENCES PO1.Customer,
  shipToStreet VARCHAR(200),
  shipToCity VARCHAR(200),
  shipToZip VARCHAR(20),
  PRIMARY KEY (poNo)
);
CREATE TABLE PO1.Customer (
  custNo INT,
  custName VARCHAR(200),
  custStreet VARCHAR(200),
  custCity VARCHAR(200),
  custZip VARCHAR(20),
  PRIMARY KEY (custNo)
);`

const xsdPO2 = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2">
  <xsd:sequence>
   <xsd:element name="DeliverTo" type="Address"/>
   <xsd:element name="BillTo" type="Address"/>
  </xsd:sequence>
 </xsd:complexType>
 <xsd:complexType name="Address">
  <xsd:sequence>
   <xsd:element name="Street" type="xsd:string"/>
   <xsd:element name="City" type="xsd:string"/>
   <xsd:element name="Zip" type="xsd:decimal"/>
  </xsd:sequence>
 </xsd:complexType>
</xsd:schema>`

func loadPair(t *testing.T) (*coma.Schema, *coma.Schema) {
	t.Helper()
	s1, err := coma.LoadSQL("PO1", ddlPO1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := coma.LoadXSD("PO2", []byte(xsdPO2))
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2
}

func TestMatchFigure1(t *testing.T) {
	s1, s2 := loadPair(t)
	res, err := coma.Match(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's running-example conclusion: shipToCity is the match
	// candidate of DeliverTo.Address.City.
	if !res.Mapping.Contains("ShipTo.shipToCity", "DeliverTo.Address.City") {
		t.Errorf("expected shipToCity <-> DeliverTo.Address.City; got:\n%s", res.Mapping)
	}
	if !res.Mapping.Contains("Customer.custCity", "BillTo.Address.City") {
		t.Errorf("expected custCity <-> BillTo.Address.City; got:\n%s", res.Mapping)
	}
}

func TestMatchWithOptions(t *testing.T) {
	s1, s2 := loadPair(t)
	st := coma.DefaultStrategy()
	st.Sel = coma.Selection{MaxN: 1}
	st.Dir = coma.LargeSmall
	res, err := coma.Match(s1, s2,
		coma.WithMatchers("NamePath", "Leaves"),
		coma.WithStrategy(st),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cube.Layers() != 2 {
		t.Errorf("layers = %d, want 2", res.Cube.Layers())
	}
	if res.Mapping.Len() == 0 {
		t.Error("empty mapping")
	}
	if _, err := coma.Match(s1, s2, coma.WithMatchers("Bogus")); err == nil {
		t.Error("unknown matcher should fail")
	}
	if _, err := coma.Match(s1, s2, coma.WithMatcherInstances()); err == nil {
		t.Error("empty instance list should fail")
	}
}

func TestMatchWithCustomDictionary(t *testing.T) {
	s1, s2 := loadPair(t)
	extra := strings.NewReader("syn cust client\n")
	res, err := coma.Match(s1, s2, coma.WithDictionaryFile(extra))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.Len() == 0 {
		t.Error("match with extended dictionary failed")
	}
}

func TestSessionAPI(t *testing.T) {
	s1, s2 := loadPair(t)
	fb := &coma.Feedback{}
	sess, err := coma.NewSession(s1, s2, coma.WithFeedback(fb))
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	sess.Reject("ShipTo.shipToCity", "DeliverTo.Address.City")
	second, err := sess.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if second.Mapping.Contains("ShipTo.shipToCity", "DeliverTo.Address.City") {
		t.Error("rejected pair still in result")
	}
	if first.Mapping.Len() == 0 {
		t.Error("first iteration empty")
	}
}

func TestRepositoryReuseRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coma.repo")
	repo, err := coma.OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	s1, s2 := loadPair(t)
	if err := repo.PutSchema(s1); err != nil {
		t.Fatal(err)
	}
	if err := repo.PutSchema(s2); err != nil {
		t.Fatal(err)
	}
	res, err := coma.Match(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.PutMapping(coma.TagManual, res.Mapping); err != nil {
		t.Fatal(err)
	}
	if err := repo.PutCube("PO1|PO2", res.Cube); err != nil {
		t.Fatal(err)
	}
	// A third schema matched against PO2 can reuse PO1<->PO2 plus
	// PO1<->PO3 through the Schema matcher.
	s3, err := coma.LoadXSD("PO3", []byte(strings.ReplaceAll(xsdPO2, "PO2", "PO3")))
	if err != nil {
		t.Fatal(err)
	}
	res13, err := coma.Match(s1, s3)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.PutMapping(coma.TagManual, res13.Mapping); err != nil {
		t.Fatal(err)
	}
	reuseRes, err := coma.Match(s2, s3,
		coma.WithMatcherInstances(repo.SchemaMatcher(coma.TagManual)))
	if err != nil {
		t.Fatal(err)
	}
	if reuseRes.Mapping.Len() == 0 {
		t.Error("Schema reuse matcher found nothing")
	}
	if !reuseRes.Mapping.Contains("DeliverTo.Address.City", "DeliverTo.Address.City") {
		t.Errorf("expected composed City correspondence; got:\n%s", reuseRes.Mapping)
	}
}

func TestMatchComposeAPI(t *testing.T) {
	m1 := &coma.Mapping{FromSchema: "A", ToSchema: "B"}
	m1.Add("x", "y", 0.8)
	m2 := &coma.Mapping{FromSchema: "B", ToSchema: "C"}
	m2.Add("y", "z", 0.6)
	got := coma.MatchCompose(m1, m2)
	if sim, ok := got.Get("x", "z"); !ok || sim != 0.7 {
		t.Errorf("MatchCompose = %.2f, %v", sim, ok)
	}
}

func TestLibraryListing(t *testing.T) {
	names := coma.Matchers()
	want := map[string]bool{"Name": false, "NamePath": false, "Flooding": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("library missing %s", n)
		}
	}
}

func TestSchemaSimilarityReported(t *testing.T) {
	s1, s2 := loadPair(t)
	res, err := coma.Match(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemaSim <= 0 || res.SchemaSim > 1 {
		t.Errorf("schema similarity = %.3f", res.SchemaSim)
	}
}
