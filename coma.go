// Package coma is a from-scratch Go implementation of COMA, the
// generic schema matching system of Do & Rahm (VLDB 2002): an
// extensible library of simple, hybrid and reuse-oriented matchers, a
// flexible framework for combining their results (aggregation,
// direction, selection, combined similarity), a repository for
// schemas, similarity cubes and match results, and the MatchCompose
// operation for reusing previous match results.
//
// Quick start:
//
//	s1, _ := coma.LoadSQL("PO1", ddl)
//	s2, _ := coma.LoadXSD("PO2", xsd)
//	res, _ := coma.Match(s1, s2)
//	for _, c := range res.Mapping.Correspondences() {
//		fmt.Println(c)
//	}
//
// Match runs the paper's default operation — the combination of all
// five hybrid matchers under (Average, Both,
// Threshold(0.5)+Delta(0.02)) — unless options select different
// matchers or strategies.
//
// Matcher execution is parallel by default: the k independent matchers
// run concurrently and each fills its similarity matrix row-parallel.
// WithWorkers bounds that parallelism (0 = runtime.NumCPU(), 1 = fully
// sequential); the result is bit-identical for every worker count,
// only the wall-clock time changes.
//
// Matching is two-phase: each schema is analyzed once into a shared
// per-schema index (path enumerations, tokenized and expanded name
// profiles, dictionary hit-sets, generic type classes) that all
// matchers read. An Engine caches these analyses across Match calls,
// so matching one schema against many others — the paper's reuse
// scenario — pays its analysis exactly once; see NewEngine and
// Engine.Analyze. For the repository-server shape of that scenario —
// one incoming schema against many stored candidates — Engine.MatchAll
// schedules the whole batch over one worker budget and recycles the
// per-pair matrices through pooled arenas; Repository.MatchIncoming
// runs it against every schema of a repository.
package coma

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/candidates"
	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/export"
	"repro/internal/flooding"
	"repro/internal/importer"
	"repro/internal/instance"
	"repro/internal/match"
	"repro/internal/repository"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// Re-exported core types. The internal packages remain the
// implementation; these aliases are the public vocabulary.
type (
	// Schema is a rooted DAG of schema elements; see LoadSQL/LoadXSD.
	Schema = schema.Schema
	// Node is one schema element.
	Node = schema.Node
	// Path identifies an element by its containment chain.
	Path = schema.Path
	// Mapping is a match result: correspondences with similarities.
	Mapping = simcube.Mapping
	// Correspondence is one element correspondence of a mapping.
	Correspondence = simcube.Correspondence
	// Cube is the k×m×n similarity cube of a matcher execution phase.
	Cube = simcube.Cube
	// Matrix is an aggregated similarity matrix.
	Matrix = simcube.Matrix
	// Strategy is the combination strategy tuple
	// (aggregation, direction, selection, combined similarity).
	Strategy = combine.Strategy
	// Selection is a match candidate selection criterion set.
	Selection = combine.Selection
	// Result is the outcome of a match operation.
	Result = core.Result
	// Matcher is a match algorithm over two schemas.
	Matcher = match.Matcher
	// Feedback records user-asserted matches and mismatches.
	Feedback = match.Feedback
	// Dictionary is the synonym/abbreviation auxiliary source.
	Dictionary = dict.Dictionary
	// ShardError reports one shard's failure in a partial sharded
	// match (see AllowPartial).
	ShardError = core.ShardError
)

// Direction constants for Strategy.Dir.
const (
	Both       = combine.Both
	LargeSmall = combine.LargeSmall
	SmallLarge = combine.SmallLarge
)

// Aggregation constructors for Strategy.Agg.
var (
	Average = combine.AggSpec{Kind: combine.Average}
	Max     = combine.AggSpec{Kind: combine.Max}
	Min     = combine.AggSpec{Kind: combine.Min}
)

// Weighted returns a weighted aggregation with one weight per matcher.
func Weighted(weights ...float64) combine.AggSpec {
	return combine.AggSpec{Kind: combine.Weighted, Weights: weights}
}

// DefaultStrategy returns the evaluation's best default combination
// strategy: (Average, Both, Threshold(0.5)+Delta(0.02), Average).
func DefaultStrategy() Strategy { return combine.Default() }

// LoadSQL imports a relational schema from CREATE TABLE statements.
func LoadSQL(name, ddl string) (*Schema, error) { return importer.ParseSQL(name, ddl) }

// LoadXSD imports an XML schema from an XSD document.
func LoadXSD(name string, src []byte) (*Schema, error) { return importer.ParseXSD(name, src) }

// LoadJSONSchema imports a JSON Schema document (properties become
// containment children; $ref definitions become shared fragments).
func LoadJSONSchema(name string, src []byte) (*Schema, error) {
	return importer.ParseJSONSchema(name, src)
}

// LoadDTD imports a Document Type Definition (elements referenced from
// several content models become shared fragments; attributes become
// leaves).
func LoadDTD(name string, src []byte) (*Schema, error) {
	return importer.ParseDTD(name, src)
}

// LoadFile imports a schema file, choosing the importer by extension —
// .sql/.ddl (CREATE TABLE statements), .xsd/.xml (XML schema), .json
// (JSON Schema), .dtd — and naming the schema after the file's base
// name. Files importing to an empty schema (no element paths — e.g. a
// DDL file without CREATE TABLE statements) are rejected: an empty
// schema can neither be matched nor stored as a match candidate. It is
// the loader shared by the command-line tools and the server's inline
// schema import.
func LoadFile(path string) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	s, err := importer.ParseAs(name, filepath.Ext(path), data)
	if err != nil {
		return nil, fmt.Errorf("coma: %s: %w", path, err)
	}
	return s, nil
}

// Instances holds sample data values per schema element path, feeding
// the instance-level matcher.
type Instances = instance.Instances

// NewInstances returns an empty sample set for the named schema.
func NewInstances(schemaName string) *Instances { return instance.NewInstances(schemaName) }

// NewInstanceMatcher returns the instance-level matcher: element
// similarity from the statistical resemblance of the elements' value
// samples (value patterns, character classes, lengths, numeric shares).
// Use WithMatcherInstances to combine it with schema-level matchers.
func NewInstanceMatcher(left, right *Instances) Matcher {
	return instance.NewMatcher(left, right)
}

// Options configure a match operation.
type Options struct {
	matchers []Matcher
	strategy Strategy
	ctx      *match.Context
	feedback *Feedback
	workers  int
	// analyzerLimit > 0 bounds the engine's analysis cache (LRU over
	// unpinned entries); persistCols installs the engine-scoped
	// persistent column cache.
	analyzerLimit int
	persistCols   bool
	// candIdx is the candidate-pruning inverted index installed by
	// WithCandidateIndex (nil = exhaustive repository matching).
	candIdx *candidates.Index
	// syncPolicy selects repository log durability (fsync cadence);
	// the zero value is SyncAlways.
	syncPolicy repository.SyncPolicy
	// pageCache bounds each repository's page buffer pool, in pages
	// (0 = the storage engine's default).
	pageCache int
}

// Option adjusts match options.
type Option func(*Options) error

// WithMatchers selects matchers by library name (e.g. "NamePath",
// "Leaves", "Flooding").
func WithMatchers(names ...string) Option {
	return func(o *Options) error {
		ms, err := Library().NewSet(names...)
		if err != nil {
			return err
		}
		o.matchers = ms
		return nil
	}
}

// WithMatcherInstances selects explicit matcher instances, e.g. a
// repository-backed Schema reuse matcher.
func WithMatcherInstances(ms ...Matcher) Option {
	return func(o *Options) error {
		if len(ms) == 0 {
			return fmt.Errorf("coma: empty matcher list")
		}
		o.matchers = ms
		return nil
	}
}

// WithStrategy replaces the default combination strategy.
func WithStrategy(s Strategy) Option {
	return func(o *Options) error {
		o.strategy = s
		return nil
	}
}

// WithDictionary replaces the default synonym/abbreviation dictionary.
func WithDictionary(d *Dictionary) Option {
	return func(o *Options) error {
		o.ctx.Dict = d
		return nil
	}
}

// WithDictionaryFile loads additional dictionary entries (syn/hyp/abb
// lines) into the context's dictionary.
func WithDictionaryFile(r io.Reader) Option {
	return func(o *Options) error {
		return o.ctx.Dict.Load(r)
	}
}

// WithFeedback supplies user feedback whose assertions are pinned into
// the result.
func WithFeedback(f *Feedback) Option {
	return func(o *Options) error {
		o.feedback = f
		return nil
	}
}

// WithWorkers bounds the parallelism of the matcher execution phase:
// matchers run concurrently and each fills its matrix row-parallel
// using up to n workers. 0 (the default) means runtime.NumCPU(); 1
// forces fully sequential execution. Results are bit-identical for
// every worker count.
func WithWorkers(n int) Option {
	return func(o *Options) error {
		if n < 0 {
			return fmt.Errorf("coma: negative worker count %d", n)
		}
		o.workers = n
		return nil
	}
}

// WithAnalyzerLimit bounds the engine's per-schema analysis cache to n
// entries: beyond it, the least recently used analyses of transient
// (unpinned) schemas are evicted. Stored schemas — pinned by the
// repository backends and by Engine.Analyze — are exempt. The limit is
// a backstop against transient analyses escaping the batch scheduler's
// end-of-batch eviction; comaserve enables it by default.
func WithAnalyzerLimit(n int) Option {
	return func(o *Options) error {
		if n <= 0 {
			return fmt.Errorf("coma: non-positive analyzer limit %d", n)
		}
		o.analyzerLimit = n
		return nil
	}
}

// WithPersistentColumnCache promotes the batch scheduler's per-batch
// distinct-name column cache to engine scope: scored similarity
// columns survive across MatchAll batches and repeated single Matches
// whose incoming schema is retained (stored, or front-loaded with
// Engine.Analyze), so repeated matching against a stable store stops
// re-scoring name columns per batch. Results are bit-identical —
// column values are pure functions of the name pair, the incoming
// analysis and the auxiliary sources, and the cache self-invalidates
// when any of them change. comaserve enables it by default.
func WithPersistentColumnCache() Option {
	return func(o *Options) error {
		o.persistCols = true
		return nil
	}
}

func buildOptions(opts []Option) (*Options, error) {
	o := &Options{
		strategy: combine.Default(),
		ctx:      match.NewContext(),
	}
	for _, opt := range opts {
		if err := opt(o); err != nil {
			return nil, err
		}
	}
	if o.matchers == nil {
		o.matchers = core.DefaultConfig().Matchers
	}
	if o.analyzerLimit > 0 {
		o.ctx.Analyzer = analysis.NewAnalyzerWithLimit(o.analyzerLimit)
	}
	if o.persistCols {
		o.ctx.Columns = match.NewColumnCache(0)
	}
	return o, nil
}

// Match performs one automatic match operation on two schemas. Every
// call analyzes the schemas afresh; use an Engine (or a Session) to
// amortize schema analysis across repeated matches.
func Match(s1, s2 *Schema, opts ...Option) (*Result, error) {
	e, err := NewEngine(opts...)
	if err != nil {
		return nil, err
	}
	return e.Match(s1, s2)
}

// Engine is a reusable match engine: it carries the matcher context
// (auxiliary sources, strategy, worker bound) and a per-schema
// analysis cache across Match calls. A schema matched repeatedly —
// the paper's reuse scenario, where an incoming schema is compared
// against every schema of a repository — is analyzed exactly once,
// instead of once per Match as with the package-level function.
//
// An Engine is safe for concurrent use as long as its options are not
// mutated after construction (the matchers hold no per-match state and
// the analysis cache is synchronized); concurrent Match calls on the
// same schemas share one analysis.
type Engine struct {
	o *Options
}

// NewEngine builds a reusable engine from the same options Match
// accepts.
func NewEngine(opts ...Option) (*Engine, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Engine{o: o}, nil
}

// Analyze precomputes the engine's analysis index for a schema (path
// enumerations, name profiles, dictionary hit-sets, type classes) so
// that subsequent Match calls find it cached, and pins the schema as
// retained: its analysis survives the batch scheduler's end-of-batch
// eviction and any analyzer capacity bound until Release. Analyze is
// for long-lived schemas (a store's members, a schema matched across
// many bursts); do NOT call it per request on throwaway schemas —
// every pin is exempt from WithAnalyzerLimit until Release, so
// unreleased per-request pins re-create the leak the limit prevents.
// Transient schemas need no front-loading: the first Match analyzes
// on demand and the batch evicts at its end. Call Invalidate after
// structurally modifying a schema.
func (e *Engine) Analyze(s *Schema) {
	e.Pin(s)
	e.o.ctx.Index(s)
}

// Pin marks a schema as retained without analyzing it: its cached
// analysis (once built) is kept across batches and exempt from the
// analyzer capacity bound until Release. The repository backends pin
// every stored schema, which is what distinguishes a stored incoming
// schema (analysis stays warm) from a served inline one (analysis is
// evicted at batch end). Pinning is idempotent: however many times a
// schema was pinned, a single Release makes it transient again.
func (e *Engine) Pin(s *Schema) {
	if a := e.o.ctx.Analyzer; a != nil {
		a.Pin(s)
	}
}

// Release undoes Pin (or Analyze): the schema's analysis becomes
// transient again — evicted at the end of the next batch that uses it
// as the incoming side, and subject to the analyzer capacity bound.
func (e *Engine) Release(s *Schema) {
	if a := e.o.ctx.Analyzer; a != nil {
		a.Release(s)
	}
}

// Invalidate drops the engine's cached analysis of a schema (or of
// all schemas when s is nil), along with any persistent similarity
// columns scored against that analysis. Pins survive: a pinned
// schema's next analysis is retained again.
func (e *Engine) Invalidate(s *Schema) {
	if a := e.o.ctx.Analyzer; a != nil {
		a.Invalidate(s)
	}
	if cc := e.o.ctx.Columns; cc != nil {
		cc.Invalidate(s)
	}
}

// CachedAnalyses returns the number of schema analyses the engine
// currently caches. Serving tests assert with it that inline-schema
// analyses die with their request: after any burst of inline matches,
// the count stays at the number of stored (pinned) schemas.
func (e *Engine) CachedAnalyses() int {
	if a := e.o.ctx.Analyzer; a != nil {
		return a.Len()
	}
	return 0
}

// AnalyzerCacheStats is a snapshot of an engine's analysis cache:
// cumulative hits, misses (index builds), evictions, invalidations,
// tombstones and pins, plus current entry and pin counts.
type AnalyzerCacheStats = analysis.AnalyzerStats

// AnalyzerCacheStats returns the engine's analysis-cache counters
// (zero value when the engine has no analyzer).
func (e *Engine) AnalyzerCacheStats() AnalyzerCacheStats {
	if a := e.o.ctx.Analyzer; a != nil {
		return a.Stats()
	}
	return AnalyzerCacheStats{}
}

// ColumnCacheStats is a snapshot of an engine's persistent column
// cache: cumulative column hits, misses and flushes, plus the number
// of incoming indexes currently holding columns.
type ColumnCacheStats = match.ColumnCacheStats

// ColumnCacheStats returns the engine's persistent column-cache
// counters; ok is false without WithPersistentColumnCache (per-batch
// column reuse is untracked — it dies with each batch).
func (e *Engine) ColumnCacheStats() (st ColumnCacheStats, ok bool) {
	if cc := e.o.ctx.Columns; cc != nil {
		return cc.Stats(), true
	}
	return ColumnCacheStats{}, false
}

// Match performs one automatic match operation with the engine's
// configuration, reusing cached schema analyses.
func (e *Engine) Match(s1, s2 *Schema) (*Result, error) {
	return core.Match(e.o.ctx, s1, s2, e.config())
}

// MatchContext is Match under a request context: once ctx is done, the
// matcher execution stops cooperatively (row fills stop claiming rows
// within one row per worker), pooled intermediates are recycled, and
// the cancellation cause is returned instead of a result. A nil or
// never-canceled ctx behaves exactly like Match — results are
// bit-identical.
func (e *Engine) MatchContext(ctx context.Context, s1, s2 *Schema) (*Result, error) {
	mctx := e.o.ctx
	if ctx != nil {
		mctx = mctx.WithCancel(ctx)
	}
	return core.Match(mctx, s1, s2, e.config())
}

// config assembles the engine's per-iteration core configuration.
func (e *Engine) config() core.Config {
	return core.Config{
		Matchers: e.o.matchers,
		Strategy: e.o.strategy,
		Feedback: e.o.feedback,
		Workers:  e.o.workers,
	}
}

// matchAllOptions collects the per-batch knobs of MatchAll.
type matchAllOptions struct {
	topK         int
	keepCubes    bool
	allowPartial bool
	// maxCandidates caps a pruned repository batch at the n best-bounded
	// candidates; exhaustive bypasses the candidate index entirely.
	maxCandidates int
	exhaustive    bool
}

// MatchAllOption adjusts one MatchAll batch.
type MatchAllOption func(*matchAllOptions) error

// TopK retains only the n best candidates of a MatchAll batch, ranked
// by combined schema similarity; the other slots of the result slice
// are nil and retain no matrices or mappings. It is the serving-side
// tail cutter: a repository front-end answering "which stored schemas
// resemble this one?" keeps the shortlist, not all k full results.
func TopK(n int) MatchAllOption {
	return func(o *matchAllOptions) error {
		if n <= 0 {
			return fmt.Errorf("coma: non-positive TopK %d", n)
		}
		o.topK = n
		return nil
	}
}

// KeepCubes makes MatchAll retain each result's similarity cube (for
// repository persistence or later re-combination). By default the
// batch recycles cube layers once the mapping is extracted and returns
// results with a nil Cube.
func KeepCubes() MatchAllOption {
	return func(o *matchAllOptions) error {
		o.keepCubes = true
		return nil
	}
}

// AllowPartial opts a sharded match into graceful degradation: a shard
// that fails (or is canceled on its own) is dropped from the merged
// ranking and reported as a ShardError instead of failing the whole
// request. Single-engine batches (Engine.MatchAll and
// Repository.MatchIncoming run one shard) have nothing to degrade and
// ignore the option; cancellation of the request context always aborts
// the whole match.
func AllowPartial() MatchAllOption {
	return func(o *matchAllOptions) error {
		o.allowPartial = true
		return nil
	}
}

// MatchAll matches one incoming schema against many candidates in a
// single scheduled batch — the repository-server workload. It returns
// one Result per candidate, in candidate order, each bit-identical to
// the corresponding Engine.Match result (except that Result.Cube is
// nil unless KeepCubes is given, and TopK-pruned slots are nil).
//
// The batch form beats the equivalent Match loop on both wall-clock
// and allocations: the incoming schema is analyzed once, all pairs
// share one worker budget of the engine's WithWorkers bound (many
// small pairs saturate it as well as one big pair), and the per-pair
// matrices and similarity grids are recycled through a size-bucketed
// arena instead of being reallocated per call.
func (e *Engine) MatchAll(incoming *Schema, candidates []*Schema, opts ...MatchAllOption) ([]*Result, error) {
	return e.MatchAllContext(context.Background(), incoming, candidates, opts...)
}

// MatchAllContext is MatchAll under a request context: once ctx is
// done, pair workers stop claiming candidates, running fills stop
// claiming rows, pooled matrices are recycled and transient analyses
// evicted, and the cancellation cause is returned. A never-canceled
// ctx yields results bit-identical to MatchAll.
func (e *Engine) MatchAllContext(ctx context.Context, incoming *Schema, candidates []*Schema, opts ...MatchAllOption) ([]*Result, error) {
	var o matchAllOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	return core.MatchAll(ctx, e.o.ctx, incoming, candidates, e.config(),
		core.BatchOptions{TopK: o.topK, KeepCubes: o.keepCubes})
}

// Session is an interactive match session carrying user feedback
// across iterations.
type Session = core.Session

// NewSession prepares an interactive session; the same options as
// Match apply.
func NewSession(s1, s2 *Schema, opts ...Option) (*Session, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return core.NewSession(o.ctx, s1, s2, core.Config{
		Matchers: o.matchers,
		Strategy: o.strategy,
		Feedback: o.feedback,
		Workers:  o.workers,
	}), nil
}

// Library returns the matcher library with every built-in matcher
// registered, including the Similarity Flooding extension.
func Library() *match.Library {
	lib := match.NewLibrary()
	lib.Register("Flooding", func() match.Matcher { return flooding.New() })
	return lib
}

// Matchers lists the names available in the default library.
func Matchers() []string { return Library().Names() }

// WriteMappingJSON serializes a match result as indented JSON.
func WriteMappingJSON(w io.Writer, m *Mapping) error { return export.MappingJSON(w, m) }

// ReadMappingJSON parses a mapping written by WriteMappingJSON.
func ReadMappingJSON(r io.Reader) (*Mapping, error) { return export.ReadMappingJSON(r) }

// WriteMappingCSV serializes a match result as CSV (from,to,similarity).
func WriteMappingCSV(w io.Writer, m *Mapping) error { return export.MappingCSV(w, m) }

// WriteSchemaDOT renders a schema graph in Graphviz DOT format.
func WriteSchemaDOT(w io.Writer, s *Schema) error { return export.SchemaDOT(w, s) }

// WriteSchemaXSD serializes a schema graph as an XML Schema document
// that LoadXSD reads back to an equivalent graph: same leaf elements
// and shared fragments, with inner elements gaining a generated
// type-name path level (LoadXSD models named complex types as child
// nodes, the paper's Figure 1b) and leaf types mapped onto XSD
// builtins. It is the wire form Client.PutSchemaGraph and
// Client.MatchGraph ship in-memory schemas as.
func WriteSchemaXSD(w io.Writer, s *Schema) error { return export.SchemaXSD(w, s) }
