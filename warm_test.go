package coma_test

import (
	"fmt"
	"path/filepath"
	"testing"

	coma "repro"
	"repro/internal/dict"
	"repro/internal/importer"
	"repro/internal/workload"
)

// totalAnalyzerMisses sums the analyzer-cache miss counters across a
// sharded repository's engines — the "did anything re-analyze?" probe
// of the warm-restart tests.
func totalAnalyzerMisses(repo *coma.ShardedRepository, shards int) uint64 {
	var total uint64
	for i := 0; i < shards; i++ {
		total += repo.ShardEngine(i).AnalyzerCacheStats().Misses
	}
	return total
}

// assertMatchesEqual compares two MatchIncoming rankings bit for bit.
func assertMatchesEqual(t *testing.T, label string, got, want []coma.IncomingMatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Schema.Name != want[i].Schema.Name {
			t.Errorf("%s rank %d: %s, want %s", label, i, got[i].Schema.Name, want[i].Schema.Name)
			continue
		}
		assertResultsEqual(t, label+"/"+got[i].Schema.Name, got[i].Result, want[i].Result)
	}
}

// TestPagedMatchIncomingGolden is the paged storage golden guarantee:
// a store checkpointed into its page file and reopened through a small
// buffer pool produces MatchIncoming results bit-identical to the
// in-memory (pre-restart) store, across shard counts.
func TestPagedMatchIncomingGolden(t *testing.T) {
	all := workload.Candidates(13)
	incoming, stored := all[0], all[1:]

	for _, nShards := range []int{1, 4} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("paged-%d", nShards))
		repo, err := coma.OpenShardedRepository(dir, nShards)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stored {
			if err := repo.PutSchema(s); err != nil {
				t.Fatal(err)
			}
		}
		want, err := repo.MatchIncoming(incoming)
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := repo.Close(); err != nil {
			t.Fatal(err)
		}

		// Reopen through a two-page pool: every record access pages in.
		repo, err = coma.OpenShardedRepository(dir, nShards, coma.WithPageCache(2))
		if err != nil {
			t.Fatal(err)
		}
		got, err := repo.MatchIncoming(incoming)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesEqual(t, fmt.Sprintf("shards=%d", nShards), got, want)
		st := repo.PageCacheStats()
		if st.Misses == 0 {
			t.Errorf("shards=%d: no page misses — records were not served from the page file", nShards)
		}
		if st.Capacity != 2*nShards {
			t.Errorf("shards=%d: pool capacity %d, want %d", nShards, st.Capacity, 2*nShards)
		}
		if err := repo.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPagedStoreLargerThanPool serves a store whose page file exceeds
// the buffer pool many times over: a one-page pool per shard must
// still serve every record correctly — evicting clock-wise — and the
// match results stay bit-identical to the in-memory store.
func TestPagedStoreLargerThanPool(t *testing.T) {
	stored, incoming := workload.CorpusPair(96, 5)
	dir := filepath.Join(t.TempDir(), "big")
	repo, err := coma.OpenShardedRepository(dir, 2, coma.WithSyncPolicy(coma.SyncNone()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	want, err := repo.MatchIncoming(incoming, coma.TopK(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	repo, err = coma.OpenShardedRepository(dir, 2,
		coma.WithSyncPolicy(coma.SyncNone()), coma.WithPageCache(1))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	got, err := repo.MatchIncoming(incoming, coma.TopK(10))
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEqual(t, "larger-than-pool", got, want)
	st := repo.PageCacheStats()
	if st.Evictions == 0 {
		t.Errorf("no evictions: page file did not exceed the one-page pools (misses %d)", st.Misses)
	}
	if st.Resident > st.Capacity {
		t.Errorf("%d resident pages over capacity %d", st.Resident, st.Capacity)
	}
}

// TestShardedWarmRestart is the warm-restart acceptance test:
// Checkpoint writes the sidecar, a reopen restores every stored
// schema's analysis into the shard engines, and matching a stored
// schema afterwards performs no analysis at all (zero analyzer-cache
// misses) while staying bit-identical to the pre-restart results.
func TestShardedWarmRestart(t *testing.T) {
	const shards = 2
	all := workload.Candidates(11)
	incoming, stored := all[0], all[1:]
	opts := []coma.Option{coma.WithCandidateIndex(), coma.WithPersistentColumnCache()}
	dir := filepath.Join(t.TempDir(), "warm")

	repo, err := coma.OpenShardedRepository(dir, shards, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if ws := repo.WarmStart(); ws.Attempted {
		t.Fatalf("fresh store reported a warm-start attempt: %+v", ws)
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	// One match analyzes and candidate-indexes every stored schema, so
	// the checkpoint below has warmth to persist.
	want, err := repo.MatchIncoming(incoming)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	repo, err = coma.OpenShardedRepository(dir, shards, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ws := repo.WarmStart()
	if !ws.Attempted || !ws.Used {
		t.Fatalf("warm restore not used: %+v", ws)
	}
	if ws.Restored != len(stored) || ws.Discarded != 0 {
		t.Fatalf("restored %d / discarded %d, want %d / 0", ws.Restored, ws.Discarded, len(stored))
	}
	if got := totalAnalyzerMisses(repo, shards); got != 0 {
		t.Fatalf("%d analyzer misses right after open — restore analyzed instead of seeding", got)
	}

	// Matching a stored (hence seeded) schema must run entirely on the
	// restored analyses: zero misses across every shard engine.
	probe, ok := repo.GetSchema(stored[0].Name)
	if !ok {
		t.Fatalf("stored schema %s missing after reopen", stored[0].Name)
	}
	res, err := repo.MatchIncoming(probe, coma.TopK(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d matches, want 3", len(res))
	}
	if got := totalAnalyzerMisses(repo, shards); got != 0 {
		t.Errorf("warm restart re-analyzed: %d analyzer misses while matching a stored schema", got)
	}

	// The external probe itself is one fresh analysis, but every stored
	// candidate stays warm — and the ranking is bit-identical to the
	// pre-restart store.
	got, err := repo.MatchIncoming(incoming)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEqual(t, "warm", got, want)
	if misses := totalAnalyzerMisses(repo, shards); misses > shards {
		t.Errorf("external probe cost %d misses, want at most %d (one per analyzing engine)", misses, shards)
	}
}

// TestWarmSidecarSourceChangeDiscards: a sidecar written under one
// dictionary must be rejected wholesale by a process opening with
// different auxiliary sources — warmth never crosses a vocabulary
// change — while matching still works (cold).
func TestWarmSidecarSourceChangeDiscards(t *testing.T) {
	all := workload.Candidates(6)
	incoming, stored := all[0], all[1:]
	dir := filepath.Join(t.TempDir(), "src")

	repo, err := coma.OpenShardedRepository(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := repo.MatchIncoming(incoming); err != nil {
		t.Fatal(err)
	}
	if err := repo.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	changed := dict.Default()
	changed.AddSynonym("froob", "blarg")
	repo, err = coma.OpenShardedRepository(dir, 2, coma.WithDictionary(changed))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ws := repo.WarmStart()
	if !ws.Attempted {
		t.Fatal("sidecar not found after checkpoint")
	}
	if ws.Used || ws.Restored != 0 {
		t.Fatalf("sidecar used across a dictionary change: %+v", ws)
	}
	if _, err := repo.MatchIncoming(incoming); err != nil {
		t.Fatalf("cold match after discarded sidecar: %v", err)
	}
}

// TestWarmSidecarStaleEntryDiscarded: replacing one schema after the
// checkpoint invalidates exactly that schema's sidecar entry (its
// stored-payload CRC no longer matches); every other entry restores.
func TestWarmSidecarStaleEntryDiscarded(t *testing.T) {
	all := workload.Candidates(7)
	incoming, stored := all[0], all[1:]
	dir := filepath.Join(t.TempDir(), "stale")

	repo, err := coma.OpenShardedRepository(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := repo.MatchIncoming(incoming); err != nil {
		t.Fatal(err)
	}
	if err := repo.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Replace one stored schema after the sidecar was written: its
	// entry describes a payload that no longer exists.
	replacement, err := importer.ParseAs(stored[0].Name, "sql",
		[]byte("CREATE TABLE Swap.SwapT (totallyNewColumn INT, anotherOne VARCHAR(10));"))
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.PutSchema(replacement); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	repo, err = coma.OpenShardedRepository(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ws := repo.WarmStart()
	if !ws.Used {
		t.Fatalf("sidecar not used: %+v", ws)
	}
	if ws.Discarded != 1 || ws.Restored != len(stored)-1 {
		t.Fatalf("restored %d / discarded %d, want %d / 1", ws.Restored, ws.Discarded, len(stored)-1)
	}
	// The replaced schema must be served from its new (appended)
	// record, not resurrected from the sidecar.
	got, ok := repo.GetSchema(stored[0].Name)
	if !ok {
		t.Fatal("replaced schema missing")
	}
	if len(got.Paths()) != len(replacement.Paths()) {
		t.Errorf("replaced schema has %d paths, want %d", len(got.Paths()), len(replacement.Paths()))
	}
}

// TestSingleRepositoryWarmRoundTrip pins the single-store form:
// SaveWarm persists the engine's warmth next to the log, RestoreWarm
// seeds a fresh engine from it, and matching a stored schema through
// the restored engine performs no analysis.
func TestSingleRepositoryWarmRoundTrip(t *testing.T) {
	all := workload.Candidates(8)
	incoming, stored := all[0], all[1:]
	path := filepath.Join(t.TempDir(), "single.repo")

	repo, err := coma.OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	want, err := repo.MatchIncoming(engine, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := repo.SaveWarm(engine); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	repo, err = coma.OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	restored, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ws := repo.RestoreWarm(restored)
	if !ws.Used || ws.Restored != len(stored) {
		t.Fatalf("restore: %+v, want Used with %d restored", ws, len(stored))
	}
	if got := repo.WarmStart(); got != ws {
		t.Fatalf("WarmStart %+v diverges from RestoreWarm %+v", got, ws)
	}
	probe, ok := repo.GetSchema(stored[0].Name)
	if !ok {
		t.Fatal("stored schema missing after reopen")
	}
	if _, err := repo.MatchIncoming(restored, probe, coma.TopK(3)); err != nil {
		t.Fatal(err)
	}
	if st := restored.AnalyzerCacheStats(); st.Misses != 0 {
		t.Errorf("restored engine analyzed %d schemas matching a stored one, want 0", st.Misses)
	}
	got, err := repo.MatchIncoming(restored, incoming)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesEqual(t, "single-warm", got, want)
}
