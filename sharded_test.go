package coma_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	coma "repro"
	"repro/internal/workload"
)

// openShardedRepo opens an n-shard repository under t's temp dir,
// preloaded with the given schemas.
func openShardedRepo(t *testing.T, n int, stored []*coma.Schema, opts ...coma.Option) *coma.ShardedRepository {
	t.Helper()
	repo, err := coma.OpenShardedRepository(filepath.Join(t.TempDir(), fmt.Sprintf("shards-%d", n)), n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

// TestShardedMatchIncomingGolden is the sharded backend's golden
// guarantee: MatchIncoming through an N-shard store — per-shard
// engines, shared worker budget, merged ranking — produces results
// bit-identical to the single-store Repository.MatchIncoming, for
// shard counts {1, 4, 16}, sequentially and in parallel.
func TestShardedMatchIncomingGolden(t *testing.T) {
	all := workload.Candidates(13)
	incoming, stored := all[0], all[1:]

	// Single-store reference.
	ref, err := coma.OpenRepository(filepath.Join(t.TempDir(), "ref.repo"))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, s := range stored {
		if err := ref.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	refEngine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MatchIncoming(refEngine, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(stored) {
		t.Fatalf("reference: %d matches for %d stored", len(want), len(stored))
	}

	for _, nShards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 0} { // sequential, all CPUs
			label := fmt.Sprintf("shards=%d/workers=%d", nShards, workers)
			repo := openShardedRepo(t, nShards, stored, coma.WithWorkers(workers))
			// Two rounds through the same store: the second runs on
			// warm per-shard analysis caches and must not drift.
			for round := 0; round < 2; round++ {
				got, err := repo.MatchIncoming(incoming)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s round %d: %d matches, want %d", label, round, len(got), len(want))
				}
				for i := range got {
					if got[i].Schema.Name != want[i].Schema.Name {
						t.Errorf("%s round %d rank %d: %s, want %s",
							label, round, i, got[i].Schema.Name, want[i].Schema.Name)
						continue
					}
					assertResultsEqual(t, label+"/"+got[i].Schema.Name, got[i].Result, want[i].Result)
				}
			}
		}
	}
}

// TestShardedMatchIncomingTopK pins the global shortlist semantics:
// per-shard pruning plus the merged cut equals the single-store TopK.
func TestShardedMatchIncomingTopK(t *testing.T) {
	all := workload.Candidates(11)
	incoming, stored := all[0], all[1:]

	ref, err := coma.OpenRepository(filepath.Join(t.TempDir(), "ref.repo"))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, s := range stored {
		if err := ref.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	refEngine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 3, 25} { // 25 > candidate count: keep all
		want, err := ref.MatchIncoming(refEngine, incoming, coma.TopK(k))
		if err != nil {
			t.Fatal(err)
		}
		repo := openShardedRepo(t, 4, stored)
		got, err := repo.MatchIncoming(incoming, coma.TopK(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("TopK(%d): %d matches, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Schema.Name != want[i].Schema.Name {
				t.Errorf("TopK(%d) rank %d: %s, want %s", k, i, got[i].Schema.Name, want[i].Schema.Name)
				continue
			}
			assertResultsEqual(t, fmt.Sprintf("topk%d/%s", k, got[i].Schema.Name), got[i].Result, want[i].Result)
		}
		if err := repo.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedMatchIncomingSkipsSameName: a stored schema sharing the
// incoming name never matches itself, wherever it is sharded.
func TestShardedMatchIncomingSkipsSameName(t *testing.T) {
	all := workload.Candidates(6)
	incoming, stored := all[0], all[1:]
	repo := openShardedRepo(t, 4, stored)
	if err := repo.PutSchema(incoming); err != nil {
		t.Fatal(err)
	}
	got, err := repo.MatchIncoming(incoming)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stored) {
		t.Fatalf("%d matches, want %d", len(got), len(stored))
	}
	for _, m := range got {
		if m.Schema.Name == incoming.Name {
			t.Errorf("incoming schema matched against itself")
		}
	}
}

// TestShardedAddSchemaDuringMatchIncoming is the satellite -race churn
// test on the store: PutSchema churns the shards while MatchIncoming
// batches run. Each batch sees some consistent snapshot per shard;
// nothing may race or crash, and every returned result must carry a
// complete mapping.
func TestShardedAddSchemaDuringMatchIncoming(t *testing.T) {
	all := workload.Candidates(16)
	incoming, seed, churn := all[0], all[1:6], all[6:]
	repo := openShardedRepo(t, 4, seed)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, s := range churn {
			if err := repo.PutSchema(s); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			got, err := repo.MatchIncoming(incoming, coma.TopK(3))
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) == 0 {
				t.Error("no matches during churn")
				return
			}
			for _, m := range got {
				if m.Result.Mapping == nil || m.Result.Matrix == nil {
					t.Errorf("incomplete result for %s", m.Schema.Name)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Steady state after the churn: all schemas visible, ranking sane.
	got, err := repo.MatchIncoming(incoming)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(seed) + len(churn); len(got) != want {
		t.Fatalf("%d matches after churn, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Result.SchemaSim > got[i-1].Result.SchemaSim {
			t.Errorf("ranking violated at %d", i)
		}
	}
}
