package coma_test

import (
	"path/filepath"
	"testing"

	coma "repro"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/workload"
)

// assertResultsEqual compares two public match results bit for bit:
// aggregated matrix, mapping and schema similarity.
func assertResultsEqual(t *testing.T, label string, got, want *coma.Result) {
	t.Helper()
	if got.SchemaSim != want.SchemaSim {
		t.Errorf("%s: schema sim %v, want %v", label, got.SchemaSim, want.SchemaSim)
	}
	diffMatrices(t, label+"/matrix", got.Matrix, want.Matrix)
	gc, wc := got.Mapping.Correspondences(), want.Mapping.Correspondences()
	if len(gc) != len(wc) {
		t.Fatalf("%s: %d correspondences, want %d", label, len(gc), len(wc))
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Errorf("%s: correspondence %d = %v, want %v", label, i, gc[i], wc[i])
		}
	}
}

// TestMatchAllGoldenVsMatchLoop is the batch scheduler's golden
// guarantee: MatchAll over pooled arenas produces results bit-identical
// to a loop of Engine.Match over the same pairs — sequentially and in
// parallel. Pooled matrix recycling must never change a score.
func TestMatchAllGoldenVsMatchLoop(t *testing.T) {
	all := workload.Candidates(7)
	incoming, cands := all[0], all[1:]

	loopEngine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*coma.Result, len(cands))
	for i, c := range cands {
		if want[i], err = loopEngine.Match(incoming, c); err != nil {
			t.Fatal(err)
		}
	}

	for _, workers := range []int{1, 0} { // sequential, all CPUs
		engine, err := coma.NewEngine(coma.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		// Two rounds through the same engine so the second round runs
		// entirely on recycled arena storage and cached analyses.
		for round := 0; round < 2; round++ {
			got, err := engine.MatchAll(incoming, cands)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(cands) {
				t.Fatalf("workers=%d: %d results for %d candidates", workers, len(got), len(cands))
			}
			for i, res := range got {
				if res.Cube != nil {
					t.Errorf("workers=%d: candidate %d has a cube without KeepCubes", workers, i)
				}
				assertResultsEqual(t, cands[i].Name, res, want[i])
			}
		}
	}
}

// TestMatchAllTopKPublic exercises the TopK option through the public
// API: kept results are bit-identical, pruned slots nil, option
// validation rejects non-positive K.
func TestMatchAllTopKPublic(t *testing.T) {
	all := workload.Candidates(5)
	incoming, cands := all[0], all[1:]
	engine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	full, err := engine.MatchAll(incoming, cands)
	if err != nil {
		t.Fatal(err)
	}
	top, err := engine.MatchAll(incoming, cands, coma.TopK(2))
	if err != nil {
		t.Fatal(err)
	}
	var kept int
	for i, res := range top {
		if res == nil {
			continue
		}
		kept++
		assertResultsEqual(t, cands[i].Name, res, full[i])
	}
	if kept != 2 {
		t.Fatalf("TopK(2) kept %d results", kept)
	}
	if _, err := engine.MatchAll(incoming, cands, coma.TopK(0)); err == nil {
		t.Error("TopK(0) should be rejected")
	}

	withCubes, err := engine.MatchAll(incoming, cands[:1], coma.KeepCubes())
	if err != nil {
		t.Fatal(err)
	}
	if withCubes[0].Cube == nil {
		t.Error("KeepCubes dropped the cube")
	}
	if got := withCubes[0].Cube.Layers(); got != 5 {
		t.Errorf("kept cube has %d layers, want 5", got)
	}
}

// retainingMatcher returns the same prebuilt matrix on every call — a
// pattern the Matcher contract permits and Engine.Match tolerates. The
// batch scheduler recycles cube layers, so it must leave storage it
// does not own (anything not acquired from its own arena) intact.
type retainingMatcher struct{ m *simcube.Matrix }

func (r *retainingMatcher) Name() string { return "Retaining" }
func (r *retainingMatcher) Match(*match.Context, *schema.Schema, *schema.Schema) *simcube.Matrix {
	return r.m
}

func TestMatchAllCustomMatcherRetainedMatrix(t *testing.T) {
	all := workload.Candidates(2)
	incoming, cand := all[0], all[1]
	rm := &retainingMatcher{m: simcube.NewMatrix(match.Keys(incoming), match.Keys(cand))}
	rm.m.Fill(func(i, j int) float64 { return 0.25 })
	engine, err := coma.NewEngine(coma.WithMatcherInstances(rm))
	if err != nil {
		t.Fatal(err)
	}
	// The same candidate three times: every pair hands the scheduler
	// the same retained matrix, and each cube release must leave it
	// untouched for the next pair.
	results, err := engine.MatchAll(incoming, []*coma.Schema{cand, cand, cand})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if got := res.Matrix.Get(0, 0); got != 0.25 {
			t.Errorf("result %d: aggregated cell = %v, want 0.25", i, got)
		}
	}
	if got := rm.m.Get(0, 0); got != 0.25 {
		t.Errorf("retained matrix corrupted after batch: cell = %v, want 0.25", got)
	}
}

// TestRepositoryMatchIncoming stores a candidate set and matches an
// incoming schema against the whole repository, checking ranking and
// TopK shortlist semantics.
func TestRepositoryMatchIncoming(t *testing.T) {
	repo, err := coma.OpenRepository(filepath.Join(t.TempDir(), "batch.repo"))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	all := workload.Candidates(6)
	incoming, stored := all[0], all[1:]
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := coma.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	matches, err := repo.MatchIncoming(engine, incoming)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(stored) {
		t.Fatalf("%d matches for %d stored schemas", len(matches), len(stored))
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Result.SchemaSim > matches[i-1].Result.SchemaSim {
			t.Errorf("matches not sorted: %s (%v) after %s (%v)",
				matches[i].Schema.Name, matches[i].Result.SchemaSim,
				matches[i-1].Schema.Name, matches[i-1].Result.SchemaSim)
		}
	}
	// The CIDX#2 variant is structurally identical to the incoming
	// CIDX schema, so it must rank first.
	if matches[0].Schema.Name != "CIDX#2" {
		t.Errorf("best candidate %s, want CIDX#2", matches[0].Schema.Name)
	}

	short, err := repo.MatchIncoming(engine, incoming, coma.TopK(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 2 {
		t.Fatalf("TopK(2) shortlist has %d entries", len(short))
	}
	for i, m := range short {
		if m.Schema.Name != matches[i].Schema.Name {
			t.Errorf("shortlist[%d] = %s, want %s", i, m.Schema.Name, matches[i].Schema.Name)
		}
	}
}
