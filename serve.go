package coma

import (
	"context"
	"log/slog"
	"time"

	"repro/internal/metrics"
	"repro/internal/repository"
	"repro/internal/schema"
	"repro/internal/server"
)

// recoveryStatus converts one shard's recovery report to its /readyz
// wire form.
func recoveryStatus(shard int, rep *repository.RecoveryReport) server.RecoveryStatus {
	return server.RecoveryStatus{
		Shard:             shard,
		Path:              rep.Path,
		Recovered:         rep.Recovered,
		SkippedBytes:      rep.SkippedBytes,
		TruncatedBytes:    rep.TruncatedBytes,
		Salvaged:          rep.Salvaged,
		UpgradedV1:        rep.UpgradedV1,
		CheckpointUsed:    rep.CheckpointUsed,
		CheckpointDamaged: rep.CheckpointDamaged,
		Clean:             rep.Clean(),
	}
}

// ServeOption adjusts the HTTP front-end built by Repository.Handler
// and ShardedRepository.Handler: per-request deadlines, admission
// queue bounds, body caps and fault injection. The compute-side knobs
// (matchers, workers, caches) stay on the engines' Options.
type ServeOption func(*server.Config)

// WithMatchTimeout bounds every admitted match request: requests
// running longer answer 504 and the pipeline stops cooperatively.
// d <= 0 disables the per-request deadline (client disconnects still
// cancel).
func WithMatchTimeout(d time.Duration) ServeOption {
	return func(cfg *server.Config) {
		if d <= 0 {
			d = 0
		}
		cfg.MatchTimeout = d
	}
}

// WithQueueLimit bounds the admission queue: match requests beyond n
// waiters are shed with 429 + Retry-After. n <= 0 means unbounded;
// the default is server.DefaultQueueLimit.
func WithQueueLimit(n int) ServeOption {
	return func(cfg *server.Config) {
		if n <= 0 {
			n = -1
		}
		cfg.QueueLimit = n
	}
}

// WithQueueTimeout bounds how long a match request may wait for an
// execution slot before answering 503. d <= 0 disables the bound; the
// default is server.DefaultQueueTimeout.
func WithQueueTimeout(d time.Duration) ServeOption {
	return func(cfg *server.Config) {
		if d <= 0 {
			d = -1
		}
		cfg.QueueTimeout = d
	}
}

// WithServeMaxBodyBytes caps request bodies (PUT /schemas,
// POST /match); oversized uploads answer 413. n <= 0 keeps the
// default.
func WithServeMaxBodyBytes(n int64) ServeOption {
	return func(cfg *server.Config) { cfg.MaxBodyBytes = n }
}

// WithFaultHook installs a fault-injection hook consulted at the start
// of every match/put/delete handler with the operation name; a non-nil
// return aborts the request with a 500 before the backend is touched.
// For tests and chaos probes only.
func WithFaultHook(hook func(op string) error) ServeOption {
	return func(cfg *server.Config) { cfg.FaultHook = hook }
}

// WithMetrics turns the served metrics registry and the GET /metrics
// endpoint on or off. Metrics are on by default — every instrument is
// a lock-free atomic — so this option exists to disable them
// (WithMetrics(false)) in embedded deployments that scrape nothing.
func WithMetrics(enabled bool) ServeOption {
	return func(cfg *server.Config) { cfg.DisableMetrics = !enabled }
}

// WithRequestLog attaches a structured request logger: one slog record
// per finished request with method, path, status, elapsed time and
// remote address. nil disables request logging (the default).
func WithRequestLog(l *slog.Logger) ServeOption {
	return func(cfg *server.Config) { cfg.RequestLog = l }
}

// ServerMetrics is a point-in-time snapshot of every series the
// handler exposes at /metrics, for embedded users and tests; obtain it
// with (*server.Server).Metrics on the value Handler returns.
type ServerMetrics = server.ServerMetrics

// Handler returns the HTTP front-end exposing the repository over the
// comaserve HTTP/JSON API (see package internal/server for the
// endpoint contract): schema import and listing plus the batch match
// of an incoming schema against every stored one, executed through e.
// The returned *server.Server implements http.Handler; keep a
// reference to call Drain before graceful shutdown (flips /readyz to
// 503 and sheds new matches while in-flight ones finish).
// In-flight match requests are bounded by e's worker count. Every
// schema already stored is pinned in e's analysis cache — stored
// analyses stay warm across requests, while inline incoming schemas'
// analyses are evicted at batch end. Schemas added later through the
// HTTP API are pinned by the backend; schemas slipped into the
// repository directly (bypassing the handler) are served correctly
// but stay unpinned — pin them via Engine.Pin if they will be matched
// by name repeatedly. The mirror obligation holds for removal: a
// schema deleted through the embedded repository API instead of HTTP
// DELETE keeps its pin (and its cached analysis) until Engine.Release
// — route store mutations through the served API, or pair direct ones
// with Release+Invalidate.
func (r *Repository) Handler(e *Engine, opts ...ServeOption) *server.Server {
	for _, s := range r.Schemas() {
		e.Pin(s)
	}
	// Seed the engine from the warm sidecar, if one survives
	// validation; a no-op when absent or when RestoreWarm already ran.
	r.RestoreWarm(e)
	cfg := server.Config{
		Backend: &singleBackend{repo: r, engine: e},
		Workers: e.o.workers,
		Shards:  1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return server.New(cfg)
}

// Handler returns the HTTP front-end exposing the sharded repository
// over the comaserve HTTP/JSON API. Matches fan out across the shards'
// engines; in-flight match requests are bounded by the engines' worker
// count. Every stored schema is pinned in every shard engine's
// analysis cache (a schema's analysis can live outside its own shard —
// the fan-out analyzes the incoming side through the first shard), so
// stored analyses stay warm while inline ones die with their request.
// As with Repository.Handler, mutate the store through the served API:
// direct repository adds stay unpinned, and direct deletes keep their
// pin until released on every shard engine. Match requests carrying
// allowPartial degrade a failed shard to a partial, annotated ranking
// instead of a failed request.
func (r *ShardedRepository) Handler(opts ...ServeOption) *server.Server {
	for _, s := range r.Schemas() {
		r.pinInstance(s)
	}
	cfg := server.Config{
		Backend: &shardedBackend{repo: r},
		Workers: r.engines[0].o.workers,
		Shards:  r.NumShards(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return server.New(cfg)
}

// pageCacheStatus converts a buffer-pool snapshot to its /readyz wire
// form.
func pageCacheStatus(st PageCacheStats) server.PageCacheStatus {
	return server.PageCacheStatus{
		Capacity:  st.Capacity,
		Resident:  st.Resident,
		Pinned:    st.Pinned,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
	}
}

// warmStartStatus converts a warm-restore outcome to its /readyz wire
// form.
func warmStartStatus(ws WarmStats) server.WarmStartStatus {
	return server.WarmStartStatus{
		Attempted:        ws.Attempted,
		Used:             ws.Used,
		RestoredSchemas:  ws.Restored,
		DiscardedSchemas: ws.Discarded,
		Columns:          ws.Columns,
	}
}

// toServerMatches converts ranked repository outcomes to the server's
// backend shape.
func toServerMatches(ms []IncomingMatch) []server.Match {
	out := make([]server.Match, len(ms))
	for i, m := range ms {
		out[i] = server.Match{Schema: m.Schema, Result: m.Result}
	}
	return out
}

// toServerFailures converts shard errors to their wire shape.
func toServerFailures(errs []ShardError) []server.ShardFailure {
	if len(errs) == 0 {
		return nil
	}
	out := make([]server.ShardFailure, len(errs))
	for i, se := range errs {
		out[i] = server.ShardFailure{Shard: se.Shard, Error: se.Err.Error()}
	}
	return out
}

// topKOpts builds the MatchAll options for a server-side topK and
// exhaustive switch.
func topKOpts(topK int, exhaustive bool) []MatchAllOption {
	var opts []MatchAllOption
	if topK > 0 {
		opts = append(opts, TopK(topK))
	}
	if exhaustive {
		opts = append(opts, Exhaustive())
	}
	return opts
}

// singleBackend adapts (Repository, Engine) to server.Backend.
type singleBackend struct {
	repo   *Repository
	engine *Engine
}

func (b *singleBackend) MatchIncoming(ctx context.Context, incoming *schema.Schema, topK int, allowPartial, exhaustive bool) ([]server.Match, []server.ShardFailure, error) {
	// A single store has no shard to degrade: allowPartial is accepted
	// for wire compatibility and ignored.
	ms, err := b.repo.MatchIncomingContext(ctx, b.engine, incoming, topKOpts(topK, exhaustive)...)
	if err != nil {
		return nil, nil, err
	}
	return toServerMatches(ms), nil, nil
}

func (b *singleBackend) PutSchema(s *schema.Schema) (bool, error) {
	// Pin before storing: once SwapSchema publishes the instance, a
	// concurrent match may already use it as the incoming side, and an
	// unpinned stored schema would have its analysis evicted at that
	// batch's end. The analysis cache is keyed by schema identity; the
	// replaced instance's pin and entry are dropped so a long-running
	// server doesn't accumulate dead analyses across re-imports.
	// SwapSchema reports that instance atomically, so concurrent
	// imports of one name each release exactly the instance they
	// displaced.
	b.engine.Pin(s)
	prev, err := b.repo.SwapSchema(s)
	if err != nil {
		b.engine.Release(s)
		return false, err
	}
	// Incremental candidate-index maintenance rides the same pin
	// lifecycle: the new instance is indexed (its analysis stays warm —
	// it was just pinned), the displaced one unindexed, so the index is
	// never rebuilt from scratch on mutation.
	b.engine.indexStored(s)
	if prev != nil && prev != s {
		b.engine.unindexStored(prev)
		b.engine.Release(prev)
		b.engine.Invalidate(prev)
	}
	return prev != nil, nil
}

func (b *singleBackend) DeleteSchema(name string) (bool, error) {
	prev, err := b.repo.TakeSchema(name)
	if err != nil {
		return false, err
	}
	if prev != nil {
		b.engine.unindexStored(prev)
		b.engine.Release(prev)
		b.engine.Invalidate(prev)
	}
	return prev != nil, nil
}

func (b *singleBackend) GetSchema(name string) (*schema.Schema, bool) { return b.repo.GetSchema(name) }
func (b *singleBackend) SchemaNames() []string                        { return b.repo.SchemaNames() }
func (b *singleBackend) Stats() RepositoryStats                       { return b.repo.Stats() }

func (b *singleBackend) Recovery() []server.RecoveryStatus {
	return []server.RecoveryStatus{recoveryStatus(0, b.repo.RecoveryReport())}
}

func (b *singleBackend) PageCache() (server.PageCacheStatus, bool) {
	return pageCacheStatus(b.repo.PageCacheStats()), true
}

func (b *singleBackend) WarmStart() (server.WarmStartStatus, bool) {
	return warmStartStatus(b.repo.WarmStart()), true
}

func (b *singleBackend) IndexStats() (server.IndexReadiness, bool) {
	st, ok := b.engine.CandidateIndexStats()
	if !ok {
		return server.IndexReadiness{}, false
	}
	out := server.IndexReadiness{
		Schemas:        st.Schemas,
		Postings:       st.Postings,
		LastPruneRatio: b.repo.LastPruneStats().Ratio(),
	}
	fillPruneTotals(&out, b.repo.PruneTotals())
	return out, true
}

func (b *singleBackend) CollectMetrics(reg *metrics.Registry) {
	registerCacheMetrics(reg,
		func() AnalyzerCacheStats { return b.engine.AnalyzerCacheStats() },
		func() (ColumnCacheStats, bool) { return b.engine.ColumnCacheStats() })
	registerPruneMetrics(reg, b.repo.PruneTotals)
	registerPageCacheMetrics(reg, b.repo.PageCacheStats)
	registerWarmMetrics(reg, b.repo.WarmStart)
	reg.GaugeFunc("coma_schemas", "Schemas currently stored.",
		func() float64 { return float64(b.repo.Stats().Schemas) })
	b.repo.storage.Register(reg)
}

// shardedBackend adapts ShardedRepository to server.Backend.
type shardedBackend struct {
	repo *ShardedRepository
}

func (b *shardedBackend) MatchIncoming(ctx context.Context, incoming *schema.Schema, topK int, allowPartial, exhaustive bool) ([]server.Match, []server.ShardFailure, error) {
	opts := topKOpts(topK, exhaustive)
	if allowPartial {
		opts = append(opts, AllowPartial())
	}
	ms, shardErrs, err := b.repo.MatchIncomingContext(ctx, incoming, opts...)
	if err != nil {
		return nil, nil, err
	}
	return toServerMatches(ms), toServerFailures(shardErrs), nil
}

func (b *shardedBackend) PutSchema(s *schema.Schema) (bool, error) {
	b.repo.pinInstance(s)
	prev, err := b.repo.SwapSchema(s)
	if err != nil {
		b.repo.releaseInstance(s)
		return false, err
	}
	// Candidate-index maintenance is incremental: the new instance goes
	// into its owning shard's segment, the displaced one leaves every
	// segment — no segment is ever rebuilt on mutation.
	b.repo.indexInstance(s)
	if prev != nil && prev != s {
		// Every engine, not just the owning shard's: a stored schema
		// matched as the incoming side had its index cached by the
		// fan-out's first shard, wherever the schema itself lives.
		b.repo.unindexInstance(prev)
		b.repo.releaseInstance(prev)
		b.repo.invalidateInstance(prev)
	}
	return prev != nil, nil
}

func (b *shardedBackend) DeleteSchema(name string) (bool, error) {
	prev, err := b.repo.TakeSchema(name)
	if err != nil {
		return false, err
	}
	if prev != nil {
		b.repo.unindexInstance(prev)
		b.repo.releaseInstance(prev)
		b.repo.invalidateInstance(prev)
	}
	return prev != nil, nil
}

func (b *shardedBackend) GetSchema(name string) (*schema.Schema, bool) { return b.repo.GetSchema(name) }
func (b *shardedBackend) SchemaNames() []string                        { return b.repo.SchemaNames() }
func (b *shardedBackend) Stats() RepositoryStats                       { return b.repo.Stats() }

func (b *shardedBackend) Recovery() []server.RecoveryStatus {
	reps := b.repo.Reports()
	out := make([]server.RecoveryStatus, len(reps))
	for i, rep := range reps {
		out[i] = recoveryStatus(i, rep)
	}
	return out
}

func (b *shardedBackend) PageCache() (server.PageCacheStatus, bool) {
	return pageCacheStatus(b.repo.PageCacheStats()), true
}

func (b *shardedBackend) WarmStart() (server.WarmStartStatus, bool) {
	return warmStartStatus(b.repo.WarmStart()), true
}

func (b *shardedBackend) IndexStats() (server.IndexReadiness, bool) {
	var out server.IndexReadiness
	any := false
	for _, e := range b.repo.engines {
		if st, ok := e.CandidateIndexStats(); ok {
			any = true
			out.Schemas += st.Schemas
			out.Postings += st.Postings
		}
	}
	if !any {
		return server.IndexReadiness{}, false
	}
	out.LastPruneRatio = b.repo.LastPruneStats().Ratio()
	fillPruneTotals(&out, b.repo.PruneTotals())
	return out, true
}

func (b *shardedBackend) CollectMetrics(reg *metrics.Registry) {
	registerCacheMetrics(reg,
		func() AnalyzerCacheStats {
			var sum AnalyzerCacheStats
			for _, e := range b.repo.engines {
				st := e.AnalyzerCacheStats()
				sum.Hits += st.Hits
				sum.Misses += st.Misses
				sum.Evictions += st.Evictions
				sum.Invalidations += st.Invalidations
				sum.Tombstones += st.Tombstones
				sum.Pins += st.Pins
				sum.Entries += st.Entries
				sum.Pinned += st.Pinned
			}
			return sum
		},
		func() (ColumnCacheStats, bool) {
			var sum ColumnCacheStats
			any := false
			for _, e := range b.repo.engines {
				st, ok := e.ColumnCacheStats()
				if !ok {
					continue
				}
				any = true
				sum.Hits += st.Hits
				sum.Misses += st.Misses
				sum.Flushes += st.Flushes
				sum.Entries += st.Entries
			}
			return sum, any
		})
	registerPruneMetrics(reg, b.repo.PruneTotals)
	registerPageCacheMetrics(reg, b.repo.PageCacheStats)
	registerWarmMetrics(reg, b.repo.WarmStart)
	reg.GaugeFunc("coma_schemas", "Schemas currently stored.",
		func() float64 { return float64(b.repo.Stats().Schemas) })
	b.repo.storage.Register(reg)
}

// fillPruneTotals copies the cumulative prune counters into the
// /readyz candidate-index block — the load-stable complement to the
// last-write-wins LastPruneRatio snapshot.
func fillPruneTotals(out *server.IndexReadiness, pt PruneTotals) {
	out.PrunedTotal = pt.Skipped
	out.ConsideredTotal = pt.Candidates
	out.PruneRatio = pt.Ratio()
}

// registerCacheMetrics exposes one backend's engine cache counters.
// The closures aggregate across shard engines at exposition time, so
// the series always reflect the whole store.
func registerCacheMetrics(reg *metrics.Registry, an func() AnalyzerCacheStats, col func() (ColumnCacheStats, bool)) {
	counter := func(name, help string, read func() uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(read()) })
	}
	counter("coma_analyzer_cache_hits_total",
		"Analyzer cache hits (Index calls served from a cached, valid index).",
		func() uint64 { return an().Hits })
	counter("coma_analyzer_cache_misses_total",
		"Analyzer cache misses (index builds: first use, stale rebuilds, tombstoned throwaways).",
		func() uint64 { return an().Misses })
	counter("coma_analyzer_cache_evictions_total",
		"Analyzer cache entries dropped by batch-end eviction or the LRU backstop.",
		func() uint64 { return an().Evictions })
	counter("coma_analyzer_cache_invalidations_total",
		"Analyzer cache entries whose index was dropped by invalidation.",
		func() uint64 { return an().Invalidations })
	counter("coma_analyzer_cache_tombstones_total",
		"Deletions tombstoned because a batch window was open (delete/batch races defused).",
		func() uint64 { return an().Tombstones })
	counter("coma_analyzer_cache_pins_total",
		"Pin calls marking schemas long-lived.",
		func() uint64 { return an().Pins })
	reg.GaugeFunc("coma_analyzer_cache_entries",
		"Schema analyses currently cached.",
		func() float64 { return float64(an().Entries) })
	reg.GaugeFunc("coma_analyzer_cache_pinned",
		"Schemas currently pinned in the analyzer cache.",
		func() float64 { return float64(an().Pinned) })
	if _, ok := col(); !ok {
		return
	}
	counter("coma_column_cache_hits_total",
		"Persistent column-cache hits (name-similarity columns served warm).",
		func() uint64 { st, _ := col(); return st.Hits })
	counter("coma_column_cache_misses_total",
		"Persistent column-cache misses (columns computed).",
		func() uint64 { st, _ := col(); return st.Misses })
	counter("coma_column_cache_flushes_total",
		"Column-discarding events: epoch flushes, stale prunes, LRU evictions, invalidations.",
		func() uint64 { st, _ := col(); return st.Flushes })
	reg.GaugeFunc("coma_column_cache_entries",
		"Incoming-schema indexes currently holding cached columns.",
		func() float64 { st, _ := col(); return float64(st.Entries) })
}

// registerPageCacheMetrics exposes the buffer pool's occupancy gauges
// (summed across shard pools at exposition time). The traffic counters
// — coma_pagecache_{hits,misses,evictions}_total and the pinned gauge
// — come from repository.StorageMetrics.Register, which the backends
// also attach.
func registerPageCacheMetrics(reg *metrics.Registry, stats func() PageCacheStats) {
	reg.GaugeFunc("coma_pagecache_capacity_pages",
		"Buffer pool capacity in pages, summed across shards.",
		func() float64 { return float64(stats().Capacity) })
	reg.GaugeFunc("coma_pagecache_resident_pages",
		"Pages currently resident in the buffer pool.",
		func() float64 { return float64(stats().Resident) })
}

// registerWarmMetrics exposes the startup warm-restore outcome.
func registerWarmMetrics(reg *metrics.Registry, warm func() WarmStats) {
	reg.GaugeFunc("coma_warm_start_used",
		"1 when the last open restored from a valid warm sidecar, else 0.",
		func() float64 {
			if warm().Used {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("coma_warm_restored_schemas",
		"Schema analyses seeded warm by the last open.",
		func() float64 { return float64(warm().Restored) })
	reg.GaugeFunc("coma_warm_discarded_schemas",
		"Warm sidecar entries rejected individually by the last open.",
		func() float64 { return float64(warm().Discarded) })
	reg.GaugeFunc("coma_warm_restored_columns",
		"Persistent similarity columns seeded warm by the last open.",
		func() float64 { return float64(warm().Columns) })
}

// registerPruneMetrics exposes the cumulative candidate-pruning
// counters.
func registerPruneMetrics(reg *metrics.Registry, totals func() PruneTotals) {
	counter := func(name, help string, read func(PruneTotals) uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(read(totals())) })
	}
	counter("coma_prune_batches_total",
		"Pruned match batches recorded.",
		func(pt PruneTotals) uint64 { return pt.Batches })
	counter("coma_prune_candidates_total",
		"Candidates considered by pruned batches.",
		func(pt PruneTotals) uint64 { return pt.Candidates })
	counter("coma_prune_matched_total",
		"Pairs the full match pipeline ran on in pruned batches.",
		func(pt PruneTotals) uint64 { return pt.Matched })
	counter("coma_prune_skipped_total",
		"Pairs pruned away (bound below the running TopK threshold, or MaxCandidates cut).",
		func(pt PruneTotals) uint64 { return pt.Skipped })
}
