package coma

import (
	"net/http"

	"repro/internal/schema"
	"repro/internal/server"
)

// Handler returns an http.Handler exposing the repository over the
// comaserve HTTP/JSON API (see package internal/server for the
// endpoint contract): schema import and listing plus the batch match
// of an incoming schema against every stored one, executed through e.
// In-flight match requests are bounded by e's worker count. Every
// schema already stored is pinned in e's analysis cache — stored
// analyses stay warm across requests, while inline incoming schemas'
// analyses are evicted at batch end. Schemas added later through the
// HTTP API are pinned by the backend; schemas slipped into the
// repository directly (bypassing the handler) are served correctly
// but stay unpinned — pin them via Engine.Pin if they will be matched
// by name repeatedly. The mirror obligation holds for removal: a
// schema deleted through the embedded repository API instead of HTTP
// DELETE keeps its pin (and its cached analysis) until Engine.Release
// — route store mutations through the served API, or pair direct ones
// with Release+Invalidate.
func (r *Repository) Handler(e *Engine) http.Handler {
	for _, s := range r.Schemas() {
		e.Pin(s)
	}
	return server.New(server.Config{
		Backend: &singleBackend{repo: r, engine: e},
		Workers: e.o.workers,
		Shards:  1,
	})
}

// Handler returns an http.Handler exposing the sharded repository over
// the comaserve HTTP/JSON API. Matches fan out across the shards'
// engines; in-flight match requests are bounded by the engines' worker
// count. Every stored schema is pinned in every shard engine's
// analysis cache (a schema's analysis can live outside its own shard —
// the fan-out analyzes the incoming side through the first shard), so
// stored analyses stay warm while inline ones die with their request.
// As with Repository.Handler, mutate the store through the served API:
// direct repository adds stay unpinned, and direct deletes keep their
// pin until released on every shard engine.
func (r *ShardedRepository) Handler() http.Handler {
	for _, s := range r.Schemas() {
		r.pinInstance(s)
	}
	return server.New(server.Config{
		Backend: &shardedBackend{repo: r},
		Workers: r.engines[0].o.workers,
		Shards:  r.NumShards(),
	})
}

// toServerMatches converts ranked repository outcomes to the server's
// backend shape.
func toServerMatches(ms []IncomingMatch) []server.Match {
	out := make([]server.Match, len(ms))
	for i, m := range ms {
		out[i] = server.Match{Schema: m.Schema, Result: m.Result}
	}
	return out
}

// topKOpts builds the MatchAll options for a server-side topK.
func topKOpts(topK int) []MatchAllOption {
	if topK > 0 {
		return []MatchAllOption{TopK(topK)}
	}
	return nil
}

// singleBackend adapts (Repository, Engine) to server.Backend.
type singleBackend struct {
	repo   *Repository
	engine *Engine
}

func (b *singleBackend) MatchIncoming(incoming *schema.Schema, topK int) ([]server.Match, error) {
	ms, err := b.repo.MatchIncoming(b.engine, incoming, topKOpts(topK)...)
	if err != nil {
		return nil, err
	}
	return toServerMatches(ms), nil
}

func (b *singleBackend) PutSchema(s *schema.Schema) (bool, error) {
	// Pin before storing: once SwapSchema publishes the instance, a
	// concurrent match may already use it as the incoming side, and an
	// unpinned stored schema would have its analysis evicted at that
	// batch's end. The analysis cache is keyed by schema identity; the
	// replaced instance's pin and entry are dropped so a long-running
	// server doesn't accumulate dead analyses across re-imports.
	// SwapSchema reports that instance atomically, so concurrent
	// imports of one name each release exactly the instance they
	// displaced.
	b.engine.Pin(s)
	prev, err := b.repo.SwapSchema(s)
	if err != nil {
		b.engine.Release(s)
		return false, err
	}
	if prev != nil && prev != s {
		b.engine.Release(prev)
		b.engine.Invalidate(prev)
	}
	return prev != nil, nil
}

func (b *singleBackend) DeleteSchema(name string) (bool, error) {
	prev, err := b.repo.TakeSchema(name)
	if err != nil {
		return false, err
	}
	if prev != nil {
		b.engine.Release(prev)
		b.engine.Invalidate(prev)
	}
	return prev != nil, nil
}

func (b *singleBackend) GetSchema(name string) (*schema.Schema, bool) { return b.repo.GetSchema(name) }
func (b *singleBackend) SchemaNames() []string                        { return b.repo.SchemaNames() }
func (b *singleBackend) Stats() RepositoryStats                       { return b.repo.Stats() }

// shardedBackend adapts ShardedRepository to server.Backend.
type shardedBackend struct {
	repo *ShardedRepository
}

func (b *shardedBackend) MatchIncoming(incoming *schema.Schema, topK int) ([]server.Match, error) {
	ms, err := b.repo.MatchIncoming(incoming, topKOpts(topK)...)
	if err != nil {
		return nil, err
	}
	return toServerMatches(ms), nil
}

func (b *shardedBackend) PutSchema(s *schema.Schema) (bool, error) {
	b.repo.pinInstance(s)
	prev, err := b.repo.SwapSchema(s)
	if err != nil {
		b.repo.releaseInstance(s)
		return false, err
	}
	if prev != nil && prev != s {
		// Every engine, not just the owning shard's: a stored schema
		// matched as the incoming side had its index cached by the
		// fan-out's first shard, wherever the schema itself lives.
		b.repo.releaseInstance(prev)
		b.repo.invalidateInstance(prev)
	}
	return prev != nil, nil
}

func (b *shardedBackend) DeleteSchema(name string) (bool, error) {
	prev, err := b.repo.TakeSchema(name)
	if err != nil {
		return false, err
	}
	if prev != nil {
		b.repo.releaseInstance(prev)
		b.repo.invalidateInstance(prev)
	}
	return prev != nil, nil
}

func (b *shardedBackend) GetSchema(name string) (*schema.Schema, bool) { return b.repo.GetSchema(name) }
func (b *shardedBackend) SchemaNames() []string                        { return b.repo.SchemaNames() }
func (b *shardedBackend) Stats() RepositoryStats                       { return b.repo.Stats() }
