package main

import (
	"os"
	"path/filepath"
	"testing"

	coma "repro"
)

func seedRepo(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.repo")
	repo, err := coma.OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	s, err := coma.LoadSQL("PO1", "CREATE TABLE T (a INT, b VARCHAR(10));")
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.PutSchema(s); err != nil {
		t.Fatal(err)
	}
	m := &coma.Mapping{FromSchema: "PO1", ToSchema: "PO2"}
	m.Add("T.a", "X.y", 0.8)
	if err := repo.PutMapping("manual", m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCommands(t *testing.T) {
	path := seedRepo(t)
	for _, cmd := range []string{"stats", "schemas", "mappings", "compact"} {
		if err := run(cmd, path, "", "manual", "", "", "", 0, 0, 0, false, false); err != nil {
			t.Errorf("%s: %v", cmd, err)
		}
	}
	if err := run("show", path, "PO1", "manual", "", "", "", 0, 0, 0, false, false); err != nil {
		t.Errorf("show: %v", err)
	}
	if err := run("dump", path, "", "manual", "PO1", "PO2", "", 0, 0, 0, false, false); err != nil {
		t.Errorf("dump: %v", err)
	}
}

func TestMatchCommand(t *testing.T) {
	path := seedRepo(t)
	// A second stored schema so the batch ranks more than one candidate.
	repo, err := coma.OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := coma.LoadSQL("PO2", "CREATE TABLE U (a INT, c VARCHAR(10));")
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.PutSchema(s2); err != nil {
		t.Fatal(err)
	}
	repo.Close()

	in := filepath.Join(t.TempDir(), "incoming.sql")
	if err := os.WriteFile(in, []byte("CREATE TABLE V (a INT, b VARCHAR(10));"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("match", path, "", "manual", "", "", in, 0, 1, 0, false, false); err != nil {
		t.Errorf("match: %v", err)
	}
	if err := run("match", path, "", "manual", "", "", in, 1, 0, 0, false, false); err != nil {
		t.Errorf("match -topk 1: %v", err)
	}
	if err := run("match", path, "", "manual", "", "", in, 1, 0, 1, false, false); err != nil {
		t.Errorf("match -topk 1 -max-candidates 1: %v", err)
	}
	if err := run("match", path, "", "manual", "", "", in, 1, 0, 0, true, false); err != nil {
		t.Errorf("match -topk 1 -exhaustive: %v", err)
	}
}

func fsck(path string, repair bool) error {
	return run("fsck", path, "", "manual", "", "", "", 0, 0, 0, false, repair)
}

func TestFsckClean(t *testing.T) {
	path := seedRepo(t)
	if err := fsck(path, false); err != nil {
		t.Errorf("fsck of clean repo: %v", err)
	}
}

func TestFsckRepair(t *testing.T) {
	path := seedRepo(t)
	// Flip a byte inside the first record's payload: fsck must report
	// the damage without touching the file, and -repair must salvage.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[40] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsck(path, false); err == nil {
		t.Fatal("fsck of damaged repo should fail without -repair")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(data) {
		t.Fatal("fsck without -repair modified the file")
	}
	if err := fsck(path, true); err != nil {
		t.Fatalf("fsck -repair: %v", err)
	}
	if err := fsck(path, false); err != nil {
		t.Errorf("fsck after repair: %v", err)
	}
}

func TestFsckShardedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	repo, err := coma.OpenShardedRepository(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := coma.LoadSQL("PO1", "CREATE TABLE T (a INT);")
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.PutSchema(s); err != nil {
		t.Fatal(err)
	}
	repo.Close()
	if err := fsck(dir, false); err != nil {
		t.Errorf("fsck of sharded dir: %v", err)
	}
	if err := fsck(filepath.Join(t.TempDir(), "nope"), false); err == nil {
		t.Error("fsck of missing path should fail")
	}
}

func TestCommandErrors(t *testing.T) {
	path := seedRepo(t)
	if err := run("bogus", path, "", "", "", "", "", 0, 0, 0, false, false); err == nil {
		t.Error("unknown command should fail")
	}
	if err := run("show", path, "", "", "", "", "", 0, 0, 0, false, false); err == nil {
		t.Error("show without -schema should fail")
	}
	if err := run("show", path, "Missing", "", "", "", "", 0, 0, 0, false, false); err == nil {
		t.Error("show of missing schema should fail")
	}
	if err := run("dump", path, "", "manual", "", "", "", 0, 0, 0, false, false); err == nil {
		t.Error("dump without endpoints should fail")
	}
	if err := run("dump", path, "", "manual", "A", "B", "", 0, 0, 0, false, false); err == nil {
		t.Error("dump of missing mapping should fail")
	}
	if err := run("match", path, "", "manual", "", "", "", 0, 0, 0, false, false); err == nil {
		t.Error("match without -in should fail")
	}
	if err := run("match", path, "", "manual", "", "", filepath.Join(t.TempDir(), "nope.txt"), 0, 0, 0, false, false); err == nil {
		t.Error("match of missing file should fail")
	}
}
