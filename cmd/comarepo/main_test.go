package main

import (
	"path/filepath"
	"testing"

	coma "repro"
)

func seedRepo(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.repo")
	repo, err := coma.OpenRepository(path)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	s, err := coma.LoadSQL("PO1", "CREATE TABLE T (a INT, b VARCHAR(10));")
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.PutSchema(s); err != nil {
		t.Fatal(err)
	}
	m := &coma.Mapping{FromSchema: "PO1", ToSchema: "PO2"}
	m.Add("T.a", "X.y", 0.8)
	if err := repo.PutMapping("manual", m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCommands(t *testing.T) {
	path := seedRepo(t)
	for _, cmd := range []string{"stats", "schemas", "mappings", "compact"} {
		if err := run(cmd, path, "", "manual", "", ""); err != nil {
			t.Errorf("%s: %v", cmd, err)
		}
	}
	if err := run("show", path, "PO1", "manual", "", ""); err != nil {
		t.Errorf("show: %v", err)
	}
	if err := run("dump", path, "", "manual", "PO1", "PO2"); err != nil {
		t.Errorf("dump: %v", err)
	}
}

func TestCommandErrors(t *testing.T) {
	path := seedRepo(t)
	if err := run("bogus", path, "", "", "", ""); err == nil {
		t.Error("unknown command should fail")
	}
	if err := run("show", path, "", "", "", ""); err == nil {
		t.Error("show without -schema should fail")
	}
	if err := run("show", path, "Missing", "", "", ""); err == nil {
		t.Error("show of missing schema should fail")
	}
	if err := run("dump", path, "", "manual", "", ""); err == nil {
		t.Error("dump without endpoints should fail")
	}
	if err := run("dump", path, "", "manual", "A", "B"); err == nil {
		t.Error("dump of missing mapping should fail")
	}
}
