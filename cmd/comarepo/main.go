// Command comarepo inspects and maintains a COMA repository file.
//
// Usage:
//
//	comarepo -repo coma.repo stats
//	comarepo -repo coma.repo schemas
//	comarepo -repo coma.repo show -schema PO1
//	comarepo -repo coma.repo mappings -tag manual
//	comarepo -repo coma.repo dump -tag manual -from PO1 -to PO2
//	comarepo -repo coma.repo match -in incoming.xsd -topk 3
//	comarepo -repo coma.repo match -in incoming.xsd -topk 3 -max-candidates 50
//	comarepo -repo coma.repo match -in incoming.xsd -topk 3 -exhaustive
//	comarepo -repo coma.repo compact
//	comarepo -repo coma.repo fsck
//	comarepo -repo /srv/coma.shards fsck -repair
//
// The fsck command verifies the log(s) at -repo offline — frame CRCs,
// sequence continuity, payload decodability, checkpoint snapshots —
// without modifying anything, printing one report per log. It exits
// non-zero when any log needs repair; -repair salvage-rewrites the
// damaged logs (keeping every intact record) and then re-verifies.
// -repo may be a single repository file or a sharded repository
// directory.
//
// The match command is the repository server's batch operation: it
// imports the schema at -in (.sql, .xsd/.xml, .json or .dtd) and runs
// one batch against every stored schema, printing the candidates
// ranked by combined schema similarity together with the best
// candidate's correspondences. With -topk the batch runs through the
// candidate-pruning index (the prune ratio is printed);
// -max-candidates shortlists to the M best-bounded candidates, and
// -exhaustive disables pruning entirely.
package main

import (
	"flag"
	"fmt"
	"os"

	coma "repro"
)

func main() {
	var (
		repoPath = flag.String("repo", "coma.repo", "repository file")
		schemaN  = flag.String("schema", "", "schema name for 'show'")
		tag      = flag.String("tag", "manual", "mapping tag for 'mappings'/'dump'")
		from     = flag.String("from", "", "mapping source schema for 'dump'")
		to       = flag.String("to", "", "mapping target schema for 'dump'")
		in       = flag.String("in", "", "incoming schema file for 'match' (.sql .xsd .xml .json .dtd)")
		topK     = flag.Int("topk", 0, "match: keep only the K best candidates (0 = all)")
		workers  = flag.Int("workers", 0, "match: worker bound of the batch (0 = all CPUs)")
		maxCand  = flag.Int("max-candidates", 0, "match: shortlist to the M best-bounded candidates (0 = no cap)")
		exhaust  = flag.Bool("exhaustive", false, "match: disable candidate pruning, score every stored schema")
		repair   = flag.Bool("repair", false, "fsck: salvage-rewrite damaged logs")
	)
	flag.Parse()
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: comarepo [flags] stats|schemas|show|mappings|dump|match|compact|fsck [flags]")
		os.Exit(2)
	}
	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	// The standard flag package stops at the first non-flag argument,
	// so flags may also follow the subcommand (as the usage examples
	// above do: `show -schema PO1`, `match -in incoming.xsd`). Parse
	// the remainder with the same flag set.
	if rest := flag.Args()[1:]; len(rest) > 0 {
		flag.CommandLine.Parse(rest) // ExitOnError: exits on bad flags
		if flag.NArg() != 0 {
			usage()
		}
	}
	if err := run(cmd, *repoPath, *schemaN, *tag, *from, *to, *in, *topK, *workers, *maxCand, *exhaust, *repair); err != nil {
		fmt.Fprintln(os.Stderr, "comarepo:", err)
		os.Exit(1)
	}
}

func run(cmd, repoPath, schemaName, tag, from, to, in string, topK, workers, maxCand int, exhaustive, repair bool) error {
	// fsck runs before the repository is opened: opening replays (and
	// would silently repair) the log, while fsck must observe it as-is.
	if cmd == "fsck" {
		return runFsck(repoPath, repair)
	}
	repo, err := coma.OpenRepository(repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()

	switch cmd {
	case "stats":
		st := repo.Stats()
		fmt.Printf("schemas:  %d\nmappings: %d\ncubes:    %d\nlog size: %d bytes\n",
			st.Schemas, st.Mappings, st.Cubes, st.LogBytes)
	case "schemas":
		for _, n := range repo.SchemaNames() {
			s, _ := repo.GetSchema(n)
			fmt.Printf("%-20s %4d paths\n", n, len(s.Paths()))
		}
	case "show":
		if schemaName == "" {
			return fmt.Errorf("show requires -schema")
		}
		s, ok := repo.GetSchema(schemaName)
		if !ok {
			return fmt.Errorf("schema %q not found", schemaName)
		}
		fmt.Print(s)
	case "mappings":
		store := repo.MappingStore(tag)
		for _, m := range store.AllMappings() {
			fmt.Printf("%-12s %-12s %4d correspondences\n", m.FromSchema, m.ToSchema, m.Len())
		}
	case "dump":
		if from == "" || to == "" {
			return fmt.Errorf("dump requires -from and -to")
		}
		m, ok := repo.GetMapping(tag, from, to)
		if !ok {
			return fmt.Errorf("no mapping %s<->%s under tag %q", from, to, tag)
		}
		for _, c := range m.Correspondences() {
			fmt.Printf("%-45s %-45s %.3f\n", c.From, c.To, c.Sim)
		}
	case "match":
		if in == "" {
			return fmt.Errorf("match requires -in")
		}
		return runMatch(repo, in, topK, workers, maxCand, exhaustive)
	case "compact":
		before := repo.Stats().LogBytes
		if err := repo.Compact(); err != nil {
			return err
		}
		fmt.Printf("compacted: %d -> %d bytes\n", before, repo.Stats().LogBytes)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// runFsck verifies the repository at path (a log file or a sharded
// directory) without opening it; with repair it salvage-rewrites
// damaged logs and re-verifies.
func runFsck(path string, repair bool) error {
	reports, err := coma.VerifyStore(path)
	if err != nil {
		return err
	}
	bad := 0
	for _, v := range reports {
		fmt.Println(v)
		if !v.OK() {
			bad++
		}
	}
	if bad == 0 {
		fmt.Printf("fsck: %d log(s) ok\n", len(reports))
		return nil
	}
	if !repair {
		return fmt.Errorf("%d of %d log(s) need repair (rerun with -repair)", bad, len(reports))
	}
	reps, err := coma.RepairStore(path)
	if err != nil {
		return err
	}
	for _, rep := range reps {
		if !rep.Clean() {
			fmt.Println("repaired:", rep)
		}
	}
	after, err := coma.VerifyStore(path)
	if err != nil {
		return err
	}
	for _, v := range after {
		if !v.OK() {
			return fmt.Errorf("still damaged after repair: %s", v)
		}
	}
	fmt.Printf("fsck: %d log(s) ok after repair\n", len(after))
	return nil
}

// runMatch imports the incoming schema and batch-matches it against
// every stored schema, pruned through the candidate index unless
// -exhaustive disables it.
func runMatch(repo *coma.Repository, in string, topK, workers, maxCand int, exhaustive bool) error {
	incoming, err := coma.LoadFile(in)
	if err != nil {
		return err
	}
	engine, err := coma.NewEngine(coma.WithWorkers(workers), coma.WithCandidateIndex())
	if err != nil {
		return err
	}
	var opts []coma.MatchAllOption
	if topK > 0 {
		opts = append(opts, coma.TopK(topK))
	}
	if maxCand > 0 {
		opts = append(opts, coma.MaxCandidates(maxCand))
	}
	if exhaustive {
		opts = append(opts, coma.Exhaustive())
	}
	matches, err := repo.MatchIncoming(engine, incoming, opts...)
	if err != nil {
		return err
	}
	if stats := repo.LastPruneStats(); stats.Candidates > 0 {
		fmt.Printf("pruned: %d of %d candidates skipped (ratio %.2f)\n",
			stats.Skipped, stats.Candidates, stats.Ratio())
	}
	if tot := repo.PruneTotals(); tot.Batches > 0 {
		fmt.Printf("pruned (cumulative): %d batches, %d of %d candidates skipped (ratio %.2f)\n",
			tot.Batches, tot.Skipped, tot.Candidates, tot.Ratio())
	}
	if len(matches) == 0 {
		fmt.Printf("no stored candidates for %s\n", incoming.Name)
		return nil
	}
	fmt.Printf("incoming %s vs %d stored schemas:\n", incoming.Name, len(matches))
	for rank, m := range matches {
		fmt.Printf("%2d. %-20s sim %.3f  %4d correspondences\n",
			rank+1, m.Schema.Name, m.Result.SchemaSim, m.Result.Mapping.Len())
	}
	best := matches[0]
	fmt.Printf("\nbest candidate %s:\n", best.Schema.Name)
	for _, c := range best.Result.Mapping.Correspondences() {
		fmt.Printf("  %-45s %-45s %.3f\n", c.From, c.To, c.Sim)
	}
	return nil
}
