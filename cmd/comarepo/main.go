// Command comarepo inspects and maintains a COMA repository file.
//
// Usage:
//
//	comarepo -repo coma.repo stats
//	comarepo -repo coma.repo schemas
//	comarepo -repo coma.repo show -schema PO1
//	comarepo -repo coma.repo mappings -tag manual
//	comarepo -repo coma.repo dump -tag manual -from PO1 -to PO2
//	comarepo -repo coma.repo compact
package main

import (
	"flag"
	"fmt"
	"os"

	coma "repro"
)

func main() {
	var (
		repoPath = flag.String("repo", "coma.repo", "repository file")
		schemaN  = flag.String("schema", "", "schema name for 'show'")
		tag      = flag.String("tag", "manual", "mapping tag for 'mappings'/'dump'")
		from     = flag.String("from", "", "mapping source schema for 'dump'")
		to       = flag.String("to", "", "mapping target schema for 'dump'")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: comarepo [flags] stats|schemas|show|mappings|dump|compact")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *repoPath, *schemaN, *tag, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "comarepo:", err)
		os.Exit(1)
	}
}

func run(cmd, repoPath, schemaName, tag, from, to string) error {
	repo, err := coma.OpenRepository(repoPath)
	if err != nil {
		return err
	}
	defer repo.Close()

	switch cmd {
	case "stats":
		st := repo.Stats()
		fmt.Printf("schemas:  %d\nmappings: %d\ncubes:    %d\nlog size: %d bytes\n",
			st.Schemas, st.Mappings, st.Cubes, st.LogBytes)
	case "schemas":
		for _, n := range repo.SchemaNames() {
			s, _ := repo.GetSchema(n)
			fmt.Printf("%-20s %4d paths\n", n, len(s.Paths()))
		}
	case "show":
		if schemaName == "" {
			return fmt.Errorf("show requires -schema")
		}
		s, ok := repo.GetSchema(schemaName)
		if !ok {
			return fmt.Errorf("schema %q not found", schemaName)
		}
		fmt.Print(s)
	case "mappings":
		store := repo.MappingStore(tag)
		for _, m := range store.AllMappings() {
			fmt.Printf("%-12s %-12s %4d correspondences\n", m.FromSchema, m.ToSchema, m.Len())
		}
	case "dump":
		if from == "" || to == "" {
			return fmt.Errorf("dump requires -from and -to")
		}
		m, ok := repo.GetMapping(tag, from, to)
		if !ok {
			return fmt.Errorf("no mapping %s<->%s under tag %q", from, to, tag)
		}
		for _, c := range m.Correspondences() {
			fmt.Printf("%-45s %-45s %.3f\n", c.From, c.To, c.Sim)
		}
	case "compact":
		before := repo.Stats().LogBytes
		if err := repo.Compact(); err != nil {
			return err
		}
		fmt.Printf("compacted: %d -> %d bytes\n", before, repo.Stats().LogBytes)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
