package main

import (
	"bytes"
	"strings"
	"testing"

	coma "repro"
)

func interactiveFixtures(t *testing.T) (*coma.Schema, *coma.Schema) {
	t.Helper()
	s1, err := coma.LoadSQL("PO1", `CREATE TABLE ShipTo (shipToCity VARCHAR(200), shipToZip VARCHAR(20));`)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := coma.LoadXSD("PO2", []byte(`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2"><xsd:sequence>
  <xsd:element name="DeliverTo" type="Address"/>
 </xsd:sequence></xsd:complexType>
 <xsd:complexType name="Address"><xsd:sequence>
  <xsd:element name="City" type="xsd:string"/>
  <xsd:element name="Zip" type="xsd:decimal"/>
 </xsd:sequence></xsd:complexType>
</xsd:schema>`))
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2
}

func TestInteractiveRejectAndRerun(t *testing.T) {
	s1, s2 := interactiveFixtures(t)
	script := strings.Join([]string{
		"show",
		"reject 1",
		"run",
		"done",
	}, "\n")
	var out bytes.Buffer
	if err := interactiveSession(s1, s2, nil, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "rejected") {
		t.Errorf("reject feedback missing:\n%s", text)
	}
	if !strings.Contains(text, "final mapping") {
		t.Errorf("final output missing:\n%s", text)
	}
	if !strings.Contains(text, "iteration 2:") {
		t.Errorf("second iteration missing:\n%s", text)
	}
}

func TestInteractiveAssertAndThreshold(t *testing.T) {
	s1, s2 := interactiveFixtures(t)
	script := strings.Join([]string{
		"assert ShipTo DeliverTo",
		"threshold 0.9",
		"run",
		"done",
	}, "\n")
	var out bytes.Buffer
	if err := interactiveSession(s1, s2, nil, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "asserted ShipTo <-> DeliverTo") {
		t.Errorf("assert echo missing:\n%s", text)
	}
	// The asserted pair is pinned at 1.0 and survives the raised
	// threshold.
	if !strings.Contains(text, "ShipTo") || !strings.Contains(text, "1.000") {
		t.Errorf("pinned pair missing from final mapping:\n%s", text)
	}
}

func TestInteractiveBadCommands(t *testing.T) {
	s1, s2 := interactiveFixtures(t)
	script := strings.Join([]string{
		"frobnicate",
		"accept",
		"accept 99",
		"threshold nope",
		"assert onlyone",
		"done",
	}, "\n")
	var out bytes.Buffer
	if err := interactiveSession(s1, s2, nil, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"commands:", "usage: accept", "no proposal", "bad threshold", "usage: assert"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestInteractiveEOFWithoutDone(t *testing.T) {
	s1, s2 := interactiveFixtures(t)
	var out bytes.Buffer
	if err := interactiveSession(s1, s2, nil, strings.NewReader("show\n"), &out); err != nil {
		t.Fatalf("EOF should end the session cleanly: %v", err)
	}
}
