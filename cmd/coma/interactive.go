package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	coma "repro"
)

// interactiveSession drives COMA's interactive and iterative match
// process (paper Section 3, Figure 2) on a terminal: each iteration
// proposes candidates, the user accepts/rejects them or adjusts the
// strategy, and the next iteration honours the feedback.
//
// Commands:
//
//	show              list current proposals (numbered)
//	accept <n>        approve proposal n (pins similarity 1)
//	reject <n>        declare proposal n a mismatch (pins 0)
//	assert <p1> <p2>  approve an arbitrary pair by path
//	threshold <t>     adjust the selection threshold
//	run               execute the next iteration
//	done              print the final mapping and exit
func interactiveSession(s1, s2 *coma.Schema, opts []coma.Option, in io.Reader, out io.Writer) error {
	sess, err := coma.NewSession(s1, s2, opts...)
	if err != nil {
		return err
	}
	res, err := sess.Iterate()
	if err != nil {
		return err
	}
	strategy := coma.DefaultStrategy()
	printProposals(out, res)
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "coma> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "coma> ")
			continue
		}
		switch fields[0] {
		case "show":
			printProposals(out, sess.Last())
		case "accept", "reject":
			if len(fields) != 2 {
				fmt.Fprintf(out, "usage: %s <n>\n", fields[0])
				break
			}
			idx, err := strconv.Atoi(fields[1])
			corrs := sess.Last().Mapping.Correspondences()
			if err != nil || idx < 1 || idx > len(corrs) {
				fmt.Fprintf(out, "no proposal %q\n", fields[1])
				break
			}
			c := corrs[idx-1]
			if fields[0] == "accept" {
				sess.Accept(c.From, c.To)
			} else {
				sess.Reject(c.From, c.To)
			}
			fmt.Fprintf(out, "%sed %s <-> %s\n", fields[0], c.From, c.To)
		case "assert":
			if len(fields) != 3 {
				fmt.Fprintln(out, "usage: assert <path1> <path2>")
				break
			}
			sess.Accept(fields[1], fields[2])
			fmt.Fprintf(out, "asserted %s <-> %s\n", fields[1], fields[2])
		case "threshold":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: threshold <t>")
				break
			}
			t, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || t < 0 || t > 1 {
				fmt.Fprintf(out, "bad threshold %q\n", fields[1])
				break
			}
			strategy.Sel.Threshold = t
			sess.SetStrategy(strategy)
			fmt.Fprintf(out, "threshold set to %.2f (takes effect on next run)\n", t)
		case "run":
			res, err := sess.Iterate()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "iteration %d:\n", sess.Iterations())
			printProposals(out, res)
		case "done", "quit", "exit":
			final := sess.Last()
			fmt.Fprintf(out, "final mapping (%d correspondences, %d iterations):\n",
				final.Mapping.Len(), sess.Iterations())
			for _, c := range final.Mapping.Correspondences() {
				fmt.Fprintf(out, "%-45s %-45s %.3f\n", c.From, c.To, c.Sim)
			}
			return nil
		default:
			fmt.Fprintln(out, "commands: show, accept <n>, reject <n>, assert <p1> <p2>, threshold <t>, run, done")
		}
		fmt.Fprint(out, "coma> ")
	}
	return sc.Err()
}

func printProposals(out io.Writer, res *coma.Result) {
	for i, c := range res.Mapping.Correspondences() {
		fmt.Fprintf(out, "%3d. %-42s <-> %-42s %.2f\n", i+1, c.From, c.To, c.Sim)
	}
}
