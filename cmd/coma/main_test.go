package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFixtures(t *testing.T) (sqlPath, xsdPath, dir string) {
	t.Helper()
	dir = t.TempDir()
	sqlPath = filepath.Join(dir, "po1.sql")
	xsdPath = filepath.Join(dir, "po2.xsd")
	sql := `CREATE TABLE ShipTo (poNo INT, shipToCity VARCHAR(200), shipToZip VARCHAR(20));`
	xsd := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2"><xsd:sequence>
  <xsd:element name="DeliverTo" type="Address"/>
 </xsd:sequence></xsd:complexType>
 <xsd:complexType name="Address"><xsd:sequence>
  <xsd:element name="City" type="xsd:string"/>
  <xsd:element name="Zip" type="xsd:decimal"/>
 </xsd:sequence></xsd:complexType>
</xsd:schema>`
	if err := os.WriteFile(sqlPath, []byte(sql), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(xsdPath, []byte(xsd), 0o644); err != nil {
		t.Fatal(err)
	}
	return sqlPath, xsdPath, dir
}

func TestRunTextAndFormats(t *testing.T) {
	sqlPath, xsdPath, _ := writeFixtures(t)
	for _, format := range []string{"text", "json", "csv", "dot"} {
		if err := run(sqlPath, xsdPath, "", "Average", "Both", 0, 0.02, 0.5,
			"", "", "", "", format, true, 0); err != nil {
			t.Errorf("format %s: %v", format, err)
		}
	}
	if err := run(sqlPath, xsdPath, "", "Average", "Both", 0, 0.02, 0.5,
		"", "", "", "", "bogus", true, 0); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestRunStrategyFlags(t *testing.T) {
	sqlPath, xsdPath, _ := writeFixtures(t)
	if err := run(sqlPath, xsdPath, "NamePath,Leaves", "Min", "LargeSmall", 1, 0, 0.3,
		"", "", "", "", "text", true, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(sqlPath, xsdPath, "", "Bogus", "Both", 0, 0, 0,
		"", "", "", "", "text", true, 0); err == nil {
		t.Error("unknown aggregation should fail")
	}
	if err := run(sqlPath, xsdPath, "", "Average", "Bogus", 0, 0, 0,
		"", "", "", "", "text", true, 0); err == nil {
		t.Error("unknown direction should fail")
	}
	if err := run(sqlPath, xsdPath, "Bogus", "Average", "Both", 0, 0, 0,
		"", "", "", "", "text", true, 0); err == nil {
		t.Error("unknown matcher should fail")
	}
}

func TestRunRepositoryStoreAndReuse(t *testing.T) {
	sqlPath, xsdPath, dir := writeFixtures(t)
	repoPath := filepath.Join(dir, "cli.repo")
	if err := run(sqlPath, xsdPath, "", "Average", "Both", 0, 0.02, 0.5,
		"", repoPath, "manual", "", "text", true, 0); err != nil {
		t.Fatal(err)
	}
	// Reuse flag requires repo.
	if err := run(sqlPath, xsdPath, "", "Average", "Both", 0, 0.02, 0.5,
		"", "", "", "manual", "text", true, 0); err == nil {
		t.Error("-reuse-tag without -repo should fail")
	}
	// Reuse against the stored mapping (trivially via itself: the
	// Schema matcher skips the direct pair, so the result may be empty
	// but the invocation must succeed).
	if err := run(sqlPath, xsdPath, "NamePath", "Average", "Both", 0, 0.02, 0.5,
		"", repoPath, "", "manual", "text", true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunDictionaryFile(t *testing.T) {
	sqlPath, xsdPath, dir := writeFixtures(t)
	dictPath := filepath.Join(dir, "extra.dict")
	if err := os.WriteFile(dictPath, []byte("syn po order\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(sqlPath, xsdPath, "", "Average", "Both", 0, 0.02, 0.5,
		dictPath, "", "", "", "text", true, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(sqlPath, xsdPath, "", "Average", "Both", 0, 0.02, 0.5,
		filepath.Join(dir, "missing.dict"), "", "", "", "text", true, 0); err == nil {
		t.Error("missing dictionary file should fail")
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	dir := t.TempDir()
	odd := filepath.Join(dir, "schema.txt")
	if err := os.WriteFile(odd, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchema(odd); err == nil {
		t.Error("unknown extension should fail")
	}
	if _, err := loadSchema(filepath.Join(dir, "absent.sql")); err == nil {
		t.Error("missing file should fail")
	}
}
