// Command coma matches two schema files and prints the resulting
// mapping. Schemas are imported by file extension: .sql/.ddl
// (relational DDL), .xsd/.xml (XML Schema), .json (JSON Schema) or
// .dtd (Document Type Definition).
//
// Usage:
//
//	coma [flags] schema1 schema2
//
// Examples:
//
//	coma po1.sql po2.xsd
//	coma -matchers NamePath,Leaves -dir LargeSmall -maxn 1 src.xsd warehouse.sql
//	coma -repo coma.repo -store-tag manual po1.sql po2.xsd
//	coma -repo coma.repo -reuse-tag manual po2.xsd po3.xsd
//	coma -i po1.sql po2.xsd        # interactive feedback iterations
//	coma -format json po1.sql po2.xsd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	coma "repro"
)

func main() {
	var (
		matchers    = flag.String("matchers", "", "comma-separated matcher names (default: the All combination)")
		agg         = flag.String("agg", "Average", "aggregation: Average, Max, Min")
		dir         = flag.String("dir", "Both", "direction: Both, LargeSmall, SmallLarge")
		maxN        = flag.Int("maxn", 0, "selection: keep the top-n candidates (0 = off)")
		delta       = flag.Float64("delta", 0.02, "selection: relative tolerance to the best candidate (0 = off)")
		thr         = flag.Float64("threshold", 0.5, "selection: minimal similarity (0 = off)")
		dictFile    = flag.String("dict", "", "extra dictionary file (syn/hyp/abb lines)")
		repoPath    = flag.String("repo", "", "repository file for storing schemas/results and for reuse")
		storeTag    = flag.String("store-tag", "", "store the resulting mapping in the repository under this tag")
		reuseTag    = flag.String("reuse-tag", "", "add a repository-backed Schema reuse matcher over this tag")
		format      = flag.String("format", "text", "output format: text, json, csv, dot (dot prints schema 1's graph)")
		workers     = flag.Int("workers", 0, "parallel workers for matcher execution (0 = all CPUs, 1 = sequential)")
		quiet       = flag.Bool("q", false, "print only the correspondences")
		list        = flag.Bool("list", false, "list available matchers and exit")
		interactive = flag.Bool("i", false, "interactive mode: review proposals, accept/reject, iterate")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(coma.Matchers(), "\n"))
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: coma [flags] schema1 schema2 (see -h)")
		os.Exit(2)
	}
	if *interactive {
		if err := runInteractive(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "coma:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(flag.Arg(0), flag.Arg(1), *matchers, *agg, *dir, *maxN, *delta, *thr,
		*dictFile, *repoPath, *storeTag, *reuseTag, *format, *quiet, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "coma:", err)
		os.Exit(1)
	}
}

// runInteractive starts the iterative feedback loop on two schema
// files with the default strategy.
func runInteractive(p1, p2 string) error {
	s1, err := loadSchema(p1)
	if err != nil {
		return err
	}
	s2, err := loadSchema(p2)
	if err != nil {
		return err
	}
	return interactiveSession(s1, s2, nil, os.Stdin, os.Stdout)
}

func loadSchema(path string) (*coma.Schema, error) { return coma.LoadFile(path) }

func run(p1, p2, matchers, agg, dir string, maxN int, delta, thr float64,
	dictFile, repoPath, storeTag, reuseTag, format string, quiet bool, workers int) error {
	s1, err := loadSchema(p1)
	if err != nil {
		return err
	}
	s2, err := loadSchema(p2)
	if err != nil {
		return err
	}

	strategy := coma.DefaultStrategy()
	switch agg {
	case "Average":
		strategy.Agg = coma.Average
	case "Max":
		strategy.Agg = coma.Max
	case "Min":
		strategy.Agg = coma.Min
	default:
		return fmt.Errorf("unknown aggregation %q", agg)
	}
	switch dir {
	case "Both":
		strategy.Dir = coma.Both
	case "LargeSmall":
		strategy.Dir = coma.LargeSmall
	case "SmallLarge":
		strategy.Dir = coma.SmallLarge
	default:
		return fmt.Errorf("unknown direction %q", dir)
	}
	strategy.Sel = coma.Selection{MaxN: maxN, Delta: delta, Threshold: thr}

	opts := []coma.Option{coma.WithStrategy(strategy), coma.WithWorkers(workers)}
	if dictFile != "" {
		f, err := os.Open(dictFile)
		if err != nil {
			return err
		}
		defer f.Close()
		opts = append(opts, coma.WithDictionaryFile(f))
	}

	var repo *coma.Repository
	if repoPath != "" {
		repo, err = coma.OpenRepository(repoPath)
		if err != nil {
			return err
		}
		defer repo.Close()
	}

	var names []string
	if matchers != "" {
		names = strings.Split(matchers, ",")
	}
	switch {
	case reuseTag != "":
		if repo == nil {
			return fmt.Errorf("-reuse-tag requires -repo")
		}
		instances := []coma.Matcher{repo.SchemaMatcher(reuseTag)}
		lib := coma.Library()
		for _, n := range names {
			m, err := lib.New(strings.TrimSpace(n))
			if err != nil {
				return err
			}
			instances = append(instances, m)
		}
		opts = append(opts, coma.WithMatcherInstances(instances...))
	case len(names) > 0:
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		opts = append(opts, coma.WithMatchers(names...))
	}

	// One engine per invocation: both schemas are analyzed once and the
	// analyses shared by every matcher of the operation.
	engine, err := coma.NewEngine(opts...)
	if err != nil {
		return err
	}
	res, err := engine.Match(s1, s2)
	if err != nil {
		return err
	}
	switch format {
	case "text":
		if !quiet {
			fmt.Printf("# %s <-> %s: %d correspondences, schema similarity %.2f\n",
				s1.Name, s2.Name, res.Mapping.Len(), res.SchemaSim)
		}
		for _, c := range res.Mapping.Correspondences() {
			fmt.Printf("%-45s %-45s %.3f\n", c.From, c.To, c.Sim)
		}
	case "json":
		if err := coma.WriteMappingJSON(os.Stdout, res.Mapping); err != nil {
			return err
		}
	case "csv":
		if err := coma.WriteMappingCSV(os.Stdout, res.Mapping); err != nil {
			return err
		}
	case "dot":
		if err := coma.WriteSchemaDOT(os.Stdout, s1); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}

	if repo != nil {
		if err := repo.PutSchema(s1); err != nil {
			return err
		}
		if err := repo.PutSchema(s2); err != nil {
			return err
		}
		if storeTag != "" {
			if err := repo.PutMapping(storeTag, res.Mapping); err != nil {
				return err
			}
			if !quiet {
				fmt.Printf("# stored mapping under tag %q in %s\n", storeTag, repoPath)
			}
		}
	}
	return nil
}
