// Command comabench regenerates every table and figure of the COMA
// paper's evaluation (Do & Rahm, VLDB 2002, Section 7) on the
// synthetic workload, printing the same rows/series the paper reports.
//
// Usage:
//
//	comabench -exp all            # everything (runs the full 12,312-series grid)
//	comabench -exp fig11          # one artifact
//	comabench -exp fig9 -quick    # reduced grid for a fast smoke run
//
// Experiments: table1 table2 table5 table6 fig8 fig9 fig10 fig11 fig12
// fig13, the extensions instance, flooding and fragment, or all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/eval"
	"repro/internal/flooding"
	"repro/internal/importer"
	"repro/internal/instance"
	"repro/internal/match"
	"repro/internal/reuse"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1 table2 table5 table6 fig8 fig9 fig10 fig11 fig12 fig13 instance flooding fragment all; perf runs standalone, is not part of all, and ignores -workers/-quick)")
		workers  = flag.Int("workers", 0, "parallel workers for the series grid (<= 0 = all CPUs)")
		quick    = flag.Bool("quick", false, "run a reduced strategy grid (for smoke tests)")
		perfOut  = flag.String("perf-out", "", "write the perf experiment's JSON report to this file (default stdout)")
		check    = flag.String("check", "", "perf only: compare against this committed BENCH_pr<N>.json (or bare report) and fail on regressions")
		checkTol = flag.Float64("check-tol", 0.25, "perf only: relative ns/op regression tolerated by -check")
		checkTry = flag.Int("check-retries", 1, "perf only: total measurement attempts before a failed -check is reported (re-runs absorb transient runner noise)")
	)
	flag.Parse()
	if *exp == "perf" {
		if err := expPerf(*perfOut, *check, *checkTol, *checkTry); err != nil {
			fmt.Fprintln(os.Stderr, "comabench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *workers, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "comabench:", err)
		os.Exit(1)
	}
}

// gridRunner computes the series grid once and shares it between
// figures.
type gridRunner struct {
	h       *eval.Harness
	workers int
	quick   bool
	results []eval.SeriesResult
}

func (g *gridRunner) run() []eval.SeriesResult {
	if g.results != nil {
		return g.results
	}
	specs := eval.AllSeries()
	if g.quick {
		specs = quickSubset(specs)
	}
	fmt.Fprintf(os.Stderr, "# running %d series on %d tasks with %d workers...\n",
		len(specs), len(g.h.Tasks), g.workers)
	start := time.Now()
	g.h.Precompute(g.workers)
	fmt.Fprintf(os.Stderr, "# matcher execution done in %v\n", time.Since(start).Round(time.Millisecond))
	g.results = g.h.RunAll(specs, g.workers, func(done int) {
		fmt.Fprintf(os.Stderr, "# %d/%d series\n", done, len(specs))
	})
	fmt.Fprintf(os.Stderr, "# grid done in %v\n", time.Since(start).Round(time.Millisecond))
	return g.results
}

// quickSubset thins the grid to roughly 1/12 of the series while
// keeping every matcher set and strategy dimension represented.
func quickSubset(specs []eval.SeriesSpec) []eval.SeriesSpec {
	keep := map[string]bool{
		"MaxN(1)":              true,
		"Delta(0.02)":          true,
		"Thr(0.5)":             true,
		"Thr(0.8)":             true,
		"Thr(0.5)+MaxN(1)":     true,
		"Thr(0.5)+Delta(0.02)": true,
	}
	var out []eval.SeriesSpec
	for _, s := range specs {
		if keep[s.Strategy.Sel.String()] {
			out = append(out, s)
		}
	}
	return out
}

func run(exp string, workers int, quick bool) error {
	g := &gridRunner{h: eval.NewHarness(), workers: workers, quick: quick}
	all := exp == "all"
	ran := false
	for _, e := range []struct {
		id string
		fn func(*gridRunner) error
	}{
		{"table1", expTable1},
		{"table2", expTable2},
		{"table5", expTable5},
		{"fig8", expFig8},
		{"table6", expTable6},
		{"fig9", expFig9},
		{"fig10", expFig10},
		{"fig11", expFig11},
		{"fig12", expFig12},
		{"fig13", expFig13},
		{"instance", expInstance},
		{"flooding", expFlooding},
		{"fragment", expFragment},
		{"dict", expDict},
	} {
		if all || exp == e.id {
			if err := e.fn(g); err != nil {
				return err
			}
			ran = true
			fmt.Println()
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// figure1Schemas loads the paper's running example.
func figure1Schemas() (*schema.Schema, *schema.Schema, error) {
	const ddl = `
CREATE TABLE PO1.ShipTo (
  poNo INT, custNo INT REFERENCES PO1.Customer,
  shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20),
  PRIMARY KEY (poNo));
CREATE TABLE PO1.Customer (
  custNo INT, custName VARCHAR(200), custStreet VARCHAR(200),
  custCity VARCHAR(200), custZip VARCHAR(20), PRIMARY KEY (custNo));`
	const xsd = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2"><xsd:sequence>
  <xsd:element name="DeliverTo" type="Address"/>
  <xsd:element name="BillTo" type="Address"/>
 </xsd:sequence></xsd:complexType>
 <xsd:complexType name="Address"><xsd:sequence>
  <xsd:element name="Street" type="xsd:string"/>
  <xsd:element name="City" type="xsd:string"/>
  <xsd:element name="Zip" type="xsd:decimal"/>
 </xsd:sequence></xsd:complexType>
</xsd:schema>`
	s1, err := importer.ParseSQL("PO1", ddl)
	if err != nil {
		return nil, nil, err
	}
	s2, err := importer.ParseXSD("PO2", []byte(xsd))
	if err != nil {
		return nil, nil, err
	}
	return s1, s2, nil
}

var table1Pairs = [][2]string{
	{"ShipTo.shipToCity", "DeliverTo.Address.City"},
	{"ShipTo.shipToStreet", "DeliverTo.Address.City"},
	{"Customer.custCity", "DeliverTo.Address.City"},
}

func expTable1(*gridRunner) error {
	fmt.Println("== Table 1: similarity values computed for PO1 and PO2 (extract) ==")
	s1, s2, err := figure1Schemas()
	if err != nil {
		return err
	}
	ctx := match.NewContext()
	for _, m := range []match.Matcher{match.NewTypeName(), match.NewNamePath()} {
		res := m.Match(ctx, s1, s2)
		for _, p := range table1Pairs {
			fmt.Printf("%-10s %-25s %-25s %.2f\n", m.Name(), p[0], p[1], res.GetKey(p[0], p[1]))
		}
	}
	return nil
}

func expTable2(*gridRunner) error {
	fmt.Println("== Table 2: similarity values combined with Average ==")
	s1, s2, err := figure1Schemas()
	if err != nil {
		return err
	}
	ctx := match.NewContext()
	tn := match.NewTypeName().Match(ctx, s1, s2)
	np := match.NewNamePath().Match(ctx, s1, s2)
	for _, p := range table1Pairs {
		avg := (tn.GetKey(p[0], p[1]) + np.GetKey(p[0], p[1])) / 2
		fmt.Printf("%-25s %-25s %.2f\n", p[0], p[1], avg)
	}
	return nil
}

func expTable5(*gridRunner) error {
	fmt.Println("== Table 5: characteristics of test schemas ==")
	fmt.Printf("%-4s %-8s %9s %12s %14s %13s\n", "#", "Schema", "Max depth", "Nodes/paths", "Inner n/p", "Leaf n/p")
	for i, s := range workload.Schemas() {
		st := schema.ComputeStats(s)
		fmt.Printf("%-4d %-8s %9d %7d/%-4d %8d/%-5d %7d/%-5d\n",
			i+1, st.Name, st.MaxDepth, st.Nodes, st.Paths,
			st.InnerNodes, st.InnerPaths, st.LeafNodes, st.LeafPaths)
	}
	return nil
}

func expFig8(*gridRunner) error {
	fmt.Println("== Figure 8: problem size in schema matching tasks ==")
	fmt.Printf("%-8s %9s %14s %10s %12s\n", "Task", "#Matches", "#MatchedPaths", "#AllPaths", "SchemaSim")
	for _, t := range workload.Tasks() {
		matched := len(t.Gold.FromElements()) + len(t.Gold.ToElements())
		total := len(t.S1.Paths()) + len(t.S2.Paths())
		fmt.Printf("%-8s %9d %14d %10d %12.2f\n",
			t.Name, t.Gold.Len(), matched, total, workload.SchemaSimilarity(t))
	}
	return nil
}

func expTable6(g *gridRunner) error {
	fmt.Println("== Table 6: tested matchers and combination strategies ==")
	fmt.Printf("no-reuse matcher sets: %d (5 single + 10 pairs + All)\n", len(eval.NoReuseMatcherSets()))
	fmt.Printf("reuse matcher sets:    %d (SchemaM, SchemaA + pairs + All+Schema)\n", len(eval.ReuseMatcherSets()))
	fmt.Printf("aggregations:          %d (Max, Average, Min)\n", len(eval.Aggregations()))
	fmt.Printf("directions:            %d (LargeSmall, SmallLarge, Both)\n", len(eval.Directions()))
	fmt.Printf("selections:            %d\n", len(eval.Selections()))
	fmt.Printf("combined similarity:   %d (Average, Dice; reuse fixed to Average)\n", len(eval.CombSims()))
	specs := eval.AllSeries()
	var noReuse int
	for _, s := range specs {
		if !eval.IsReuseSet(s.Matchers) {
			noReuse++
		}
	}
	fmt.Printf("total series:          %d (%d no-reuse + %d reuse; paper: 12,312)\n",
		len(specs), noReuse, len(specs)-noReuse)
	return nil
}

func expFig9(g *gridRunner) error {
	results := g.run()
	var noReuse []eval.SeriesResult
	for _, r := range results {
		if !eval.IsReuseSet(r.Spec.Matchers) {
			noReuse = append(noReuse, r)
		}
	}
	hist := eval.Fig9Histogram(noReuse)
	fmt.Printf("== Figure 9: distribution of %d no-reuse series over Overall ranges ==\n", hist.Total)
	for i, name := range eval.OverallRanges {
		fmt.Printf("%-8s %6d  %s\n", name, hist.Counts[i], strings.Repeat("#", hist.Counts[i]/25))
	}
	return nil
}

func expFig10(g *gridRunner) error {
	results := g.run()
	var noReuse []eval.SeriesResult
	for _, r := range results {
		if !eval.IsReuseSet(r.Spec.Matchers) {
			noReuse = append(noReuse, r)
		}
	}
	for _, dim := range []string{"aggregation", "direction", "selection"} {
		b := eval.Fig10Breakdown(noReuse, dim)
		fmt.Printf("== Figure 10 (%s): series count per Overall range ==\n", dim)
		fmt.Printf("%-22s", "")
		for _, rng := range eval.OverallRanges {
			fmt.Printf("%8s", rng)
		}
		fmt.Println()
		for _, v := range b.Values {
			fmt.Printf("%-22s", v)
			for i := range eval.OverallRanges {
				fmt.Printf("%8d", b.Counts[v][i])
			}
			fmt.Println()
		}
	}
	return nil
}

func expFig11(g *gridRunner) error {
	results := g.run()
	fmt.Println("== Figure 11: quality of single matchers (best series each) ==")
	fmt.Printf("%-10s %10s %8s %9s   %s\n", "Matcher", "Precision", "Recall", "Overall", "best strategy")
	for _, nr := range eval.Fig11Singles(results) {
		q := nr.Best.Avg
		fmt.Printf("%-10s %10.2f %8.2f %9.2f   %s\n",
			nr.Label, q.Precision, q.Recall, q.Overall, nr.Best.Spec.Strategy)
	}
	return nil
}

func expFig12(g *gridRunner) error {
	results := g.run()
	fmt.Println("== Figure 12: quality of best matcher combinations ==")
	fmt.Printf("%-18s %10s %8s %9s   %s\n", "Combination", "Precision", "Recall", "Overall", "best strategy")
	for _, nr := range eval.Fig12Combos(results) {
		q := nr.Best.Avg
		fmt.Printf("%-18s %10.2f %8.2f %9.2f   %s\n",
			nr.Label, q.Precision, q.Recall, q.Overall, nr.Best.Spec.Strategy)
	}
	return nil
}

func expFig13(g *gridRunner) error {
	results := g.run()
	fmt.Println("== Figure 13: impact of schema characteristics on match quality ==")
	fmt.Printf("%-8s %8s %10s %18s %20s\n", "Task", "#Paths", "SchemaSim", "Overall(NoReuse)", "Overall(ManualReuse)")
	for _, row := range eval.Fig13Sensitivity(g.h, results) {
		fmt.Printf("%-8s %8d %10.2f %18.2f %20.2f\n",
			row.Task, row.AllPaths, row.SchemaSim, row.BestNoReuse, row.BestReuse)
	}
	wins := eval.StabilityCount(g.h, results, 0.10)
	fmt.Printf("\nstability (tasks won within 10%% of the class maximum): All=%d All+SchemaM=%d\n",
		wins["All"], wins["All+SchemaM"])
	return nil
}

// expInstance evaluates the instance-level extension matcher (paper
// future work, Section 7.5): alone and combined with the default
// matcher set, on synthetic value samples shared across schemas.
func expInstance(g *gridRunner) error {
	fmt.Println("== Extension: instance-level matcher (paper future work) ==")
	ctx := match.NewContext()
	samples := make(map[string]*instance.Instances)
	for _, s := range workload.Schemas() {
		samples[s.Name] = instance.Generate(s, workload.ConceptKey, 25, 2002)
	}
	def := combine.Default()
	var instQ, bothQ, allQ []eval.Quality
	for _, t := range workload.Tasks() {
		im := instance.NewMatcher(samples[t.S1.Name], samples[t.S2.Name])
		run := func(ms []match.Matcher) eval.Quality {
			cube, err := core.ExecuteMatchers(ctx, t.S1, t.S2, ms)
			if err != nil {
				panic(err)
			}
			res, err := core.CombineCube(cube, t.S1, t.S2, def, nil)
			if err != nil {
				panic(err)
			}
			return eval.Evaluate(res.Mapping, t.Gold)
		}
		all := core.DefaultConfig().Matchers
		instQ = append(instQ, run([]match.Matcher{im}))
		bothQ = append(bothQ, run(append(append([]match.Matcher(nil), all...), im)))
		allQ = append(allQ, run(all))
	}
	report := func(label string, qs []eval.Quality) {
		a := eval.Average(qs)
		fmt.Printf("%-14s %s\n", label, eval.FormatQuality(a))
	}
	report("Instance", instQ)
	report("All", allQ)
	report("All+Instance", bothQ)
	return nil
}

// expFlooding evaluates the Similarity Flooding baseline (the paper's
// cited comparator [13]) with its stable-marriage selection, against
// the default COMA operation.
func expFlooding(g *gridRunner) error {
	fmt.Println("== Extension: Similarity Flooding baseline + stable marriage ==")
	ctx := match.NewContext()
	def := combine.Default()
	var sfQ, sfSMQ, comaQ []eval.Quality
	for _, t := range workload.Tasks() {
		f := flooding.New()
		m := f.Match(ctx, t.S1, t.S2)
		// COMA-style selection on the flooding matrix.
		pred := combine.Select(m, def.Dir, def.Sel)
		sfQ = append(sfQ, eval.Evaluate(pred, t.Gold))
		// Stable-marriage selection (paper Section 7.5 future work).
		sm := flooding.StableMarriage(m, 0.3)
		sfSMQ = append(sfSMQ, eval.Evaluate(sm, t.Gold))
		// Default COMA for reference.
		cube, err := core.ExecuteMatchers(ctx, t.S1, t.S2, core.DefaultConfig().Matchers)
		if err != nil {
			panic(err)
		}
		res, err := core.CombineCube(cube, t.S1, t.S2, def, nil)
		if err != nil {
			panic(err)
		}
		comaQ = append(comaQ, eval.Evaluate(res.Mapping, t.Gold))
	}
	report := func(label string, qs []eval.Quality) {
		fmt.Printf("%-26s %s\n", label, eval.FormatQuality(eval.Average(qs)))
	}
	report("Flooding+DefaultSelect", sfQ)
	report("Flooding+StableMarriage", sfSMQ)
	report("COMA All (default)", comaQ)
	return nil
}

// expFragment demonstrates the two reuse granularities of Section 5.
// Schema-level reuse needs a chain of stored mappings through an
// intermediate schema; fragment-level reuse instead transfers confirmed
// correspondences of recurring schema fragments (a standard Address /
// Contact component vocabulary) to a brand-new schema pair for which no
// mapping chain exists.
func expFragment(g *gridRunner) error {
	fmt.Println("== Extension: Fragment vs Schema reuse granularity ==")
	// Four org schemas built from two shared component vocabularies:
	// A and C embed the "Address/Contact" flavour, B and D the
	// "Anschrift/Person" flavour. The repository holds one confirmed
	// mapping A<->B; the new task is C<->D.
	build := func(name, top string, addrNames, contactNames [3]string, addrTag, contactTag string) *schema.Schema {
		s := schema.New(name)
		party := schema.NewNode(top)
		addr := schema.NewNode(addrTag)
		for _, n := range addrNames {
			addr.AddChild(&schema.Node{Name: n, TypeName: "xsd:string"})
		}
		contact := schema.NewNode(contactTag)
		for _, n := range contactNames {
			contact.AddChild(&schema.Node{Name: n, TypeName: "xsd:string"})
		}
		party.AddChild(addr)
		party.AddChild(contact)
		s.Root.AddChild(party)
		return s
	}
	left := [3]string{"street", "city", "zip"}
	right := [3]string{"strasse", "ort", "plz"}
	lc := [3]string{"name", "phone", "email"}
	rc := [3]string{"personName", "telefon", "mail"}
	// OrgA/OrgB exist only through their stored mapping below; the new
	// task matches OrgC against OrgD.
	sc := build("OrgC", "Vendor", left, lc, "Address", "Contact")
	sd := build("OrgD", "Lieferant", right, rc, "Anschrift", "Person")

	// Confirmed mapping A<->B (as a domain expert would store it).
	confirmed := simcube.NewMapping("OrgA", "OrgB")
	for i := range left {
		confirmed.Add("Buyer.Address."+left[i], "Kunde.Anschrift."+right[i], 1)
	}
	for i := range lc {
		confirmed.Add("Buyer.Contact."+lc[i], "Kunde.Person."+rc[i], 1)
	}
	store := &reuse.MemStore{}
	store.Put(confirmed)

	// Gold for the new task C<->D mirrors the component structure.
	gold := simcube.NewMapping("OrgC", "OrgD")
	for i := range left {
		gold.Add("Vendor.Address."+left[i], "Lieferant.Anschrift."+right[i], 1)
	}
	for i := range lc {
		gold.Add("Vendor.Contact."+lc[i], "Lieferant.Person."+rc[i], 1)
	}

	ctx := match.NewContext()
	def := combine.Default()
	run := func(ms ...match.Matcher) eval.Quality {
		cube, err := core.ExecuteMatchers(ctx, sc, sd, ms)
		if err != nil {
			panic(err)
		}
		res, err := core.CombineCube(cube, sc, sd, def, nil)
		if err != nil {
			panic(err)
		}
		return eval.Evaluate(res.Mapping, gold)
	}
	report := func(label string, q eval.Quality) {
		fmt.Printf("%-18s %s\n", label, eval.FormatQuality(q))
	}
	// Schema-level reuse finds nothing: no stored mapping touches OrgC
	// or OrgD, so no MatchCompose chain exists.
	report("SchemaM", run(reuse.NewSchemaMatcher("SchemaM", store)))
	// Fragment-level reuse transfers the confirmed component
	// correspondences by fragment suffix.
	report("FragmentM", run(reuse.NewFragmentMatcher("FragmentM", store)))
	// The cross-language leaves are invisible to the name matchers.
	report("All (no reuse)", run(core.DefaultConfig().Matchers...))
	return nil
}

// expDict isolates the contribution of the auxiliary information
// sources (Section 4.1): the default operation with the full synonym/
// abbreviation dictionary, without any dictionary, and with the
// taxonomy matcher added to the Name matcher's constituents.
func expDict(g *gridRunner) error {
	fmt.Println("== Ablation: auxiliary information (dictionary, taxonomy) ==")
	def := combine.Default()
	run := func(ctx *match.Context, ms []match.Matcher) eval.Quality {
		var qs []eval.Quality
		for _, t := range workload.Tasks() {
			cube, err := core.ExecuteMatchers(ctx, t.S1, t.S2, ms)
			if err != nil {
				panic(err)
			}
			res, err := core.CombineCube(cube, t.S1, t.S2, def, nil)
			if err != nil {
				panic(err)
			}
			qs = append(qs, eval.Evaluate(res.Mapping, t.Gold))
		}
		return eval.Average(qs)
	}
	report := func(label string, q eval.Quality) {
		fmt.Printf("%-24s %s\n", label, eval.FormatQuality(q))
	}
	report("All + full dictionary", run(match.NewContext(), core.DefaultConfig().Matchers))
	// No auxiliary name information at all.
	bare := &match.Context{Types: dict.DefaultTypeTable()}
	report("All, no dictionary", run(bare, core.DefaultConfig().Matchers))
	// Taxonomy as an extra constituent of Name (and hence NamePath).
	tokenStrategy := combine.Strategy{
		Agg:  combine.AggSpec{Kind: combine.Max},
		Dir:  combine.Both,
		Sel:  combine.Selection{MaxN: 1},
		Comb: combine.CombAverage,
	}
	taxName := match.NewCustomName("Name", tokenStrategy,
		match.Trigram(), match.Synonym(), match.Taxonomy())
	withTax := []match.Matcher{
		taxName,
		match.NewNamePath(),
		match.NewTypeName(),
		match.NewChildren(),
		match.NewLeaves(),
	}
	report("All + taxonomy in Name", run(match.NewContext(), withTax))
	return nil
}
