package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	coma "repro"
	"repro/internal/analysis"
	"repro/internal/combine"
	"repro/internal/export"
	"repro/internal/match"
	"repro/internal/repository"
	"repro/internal/reuse"
	"repro/internal/schema"
	"repro/internal/workload"
)

// perfReport is the JSON artifact of the perf experiment: one
// measurement per engine hot path, dumped per PR (BENCH_pr<N>.json) to
// track the performance trajectory of the match engine.
type perfReport struct {
	Experiment string        `json:"experiment"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"go_max_procs"`
	Benchmarks []perfMeasure `json:"benchmarks"`
}

type perfMeasure struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// expPerf measures the matcher-engine hot paths: the default
// five-matcher Match operation sequential vs. parallel vs. through a
// reusable Engine (amortized schema analysis), the batch scheduler
// against the equivalent Engine.Match loop on a 16-candidate
// repository workload, the individual hybrid matchers on the largest
// workload task, the schema analysis pass itself, a
// dictionary/taxonomy-heavy Name variant, and a single NameSim
// evaluation. With a non-empty checkPath the current numbers are
// additionally compared against the committed snapshot and an error is
// returned when any shared benchmark regressed by more than tol (the
// CI regression gate); a failed check re-measures everything up to
// retries times before giving up, absorbing transient runner noise.
func expPerf(outPath, checkPath string, tol float64, retries int) error {
	if retries < 1 {
		retries = 1
	}
	for attempt := 1; ; attempt++ {
		report := measurePerf()
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		// The file snapshot is refreshed every attempt (the last
		// measurement is the one worth inspecting); stdout gets the
		// report exactly once, on the final attempt, so piped output
		// stays a single JSON document.
		if outPath != "" {
			if err := os.WriteFile(outPath, out, 0o644); err != nil {
				return err
			}
		}
		var checkErr error
		if checkPath != "" {
			checkErr = checkRegressions(report, checkPath, tol)
		}
		if checkErr == nil || attempt >= retries {
			if outPath == "" {
				if _, err := os.Stdout.Write(out); err != nil {
					return err
				}
			}
			return checkErr
		}
		fmt.Fprintf(os.Stderr, "# check attempt %d/%d failed, re-measuring: %v\n", attempt, retries, checkErr)
	}
}

// measurePerf runs every perf scenario once and collects the report.
func measurePerf() perfReport {
	big := workload.Tasks()[9] // 4<->5, the largest problem size
	small := workload.Tasks()[0]
	report := perfReport{
		Experiment: "perf",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Benchmarks = append(report.Benchmarks, perfMeasure{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "# %-28s %12.0f ns/op %10d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	add("DefaultMatch/sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coma.Match(small.S1, small.S2, coma.WithWorkers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("DefaultMatch/parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coma.Match(small.S1, small.S2); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The repeated-match scenario of the paper's reuse workload: the
	// same pair matched again and again. The fresh variant re-analyzes
	// both schemas per op (package-level Match); the engine variant
	// hits its analysis cache after the first op.
	add("RepeatedMatch/fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coma.Match(big.S1, big.S2); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("RepeatedMatch/engine", func(b *testing.B) {
		engine, err := coma.NewEngine()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Match(big.S1, big.S2); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The repository-server batch workload: one incoming schema matched
	// against a 16-schema candidate store. The loop baseline drives the
	// same reusable engine pair by pair (analysis already amortized, but
	// per-call matrix allocations and per-match worker fan-out remain);
	// the batch form schedules all pairs over one worker budget and
	// recycles matrices through pooled arenas. 4x16 replays four
	// different incoming schemas against the same store — the serving
	// steady state, where the engine's candidate analyses stay hot
	// across batches (arena pools and the column cache are per-batch).
	batch := workload.Candidates(20)
	incs, bcands := batch[:4], batch[4:]
	add("MatchAll/engine-vs-loop", func(b *testing.B) {
		engine, err := coma.NewEngine()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range bcands {
				if _, err := engine.Match(incs[0], c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	add("MatchAll/1x16", func(b *testing.B) {
		engine, err := coma.NewEngine()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.MatchAll(incs[0], bcands); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("MatchAll/4x16", func(b *testing.B) {
		engine, err := coma.NewEngine()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, inc := range incs {
				if _, err := engine.MatchAll(inc, bcands); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// Repeated matching of one retained incoming schema against a
	// stable candidate store — the cache-lifecycle acceptance
	// comparison. Both variants pin the incoming analysis (Analyze), so
	// the only difference is column lifetime: cold re-scores every
	// distinct-name similarity column per batch (the per-batch cache of
	// PR 3/4), warm-colcache persists the columns at engine scope and
	// every round past the first runs on warm columns.
	add("MatchRepeat/cold", func(b *testing.B) {
		engine, err := coma.NewEngine()
		if err != nil {
			b.Fatal(err)
		}
		engine.Analyze(incs[0])
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.MatchAll(incs[0], bcands); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("MatchRepeat/warm-colcache", func(b *testing.B) {
		engine, err := coma.NewEngine(coma.WithPersistentColumnCache())
		if err != nil {
			b.Fatal(err)
		}
		engine.Analyze(incs[0])
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.MatchAll(incs[0], bcands); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The served workload: the same 16-candidate store behind the
	// comaserve HTTP front-end, hammered by 4 concurrent clients with
	// phase-shifted request streams (workload.Clients). ns/op is the
	// per-request cost including HTTP transport, inline schema import
	// and the TopK(3) batch match. 1x16 serves from a single shard;
	// 4shard fans the same store out over four shards with per-shard
	// engines under one worker budget — the acceptance comparison is
	// that sharding costs nothing per request on this workload.
	add("MatchServe/1x16", func(b *testing.B) { benchServe(b, 1) })
	add("MatchServe/4shard", func(b *testing.B) { benchServe(b, 4) })
	// The repository-scale serving workload: a 10,000-schema corpus
	// (Zipf vocabulary, evolution families — workload.Corpus) behind the
	// same front-end on a 4-shard candidate-indexed store, probed with
	// TopK(10) match requests. Both scenarios share one fixture, so the
	// measured gap is exactly what the candidate-pruning index saves:
	// exhaustive scores all 10k stored schemas per request, pruned
	// matches only the candidates whose bound survives the running
	// TopK threshold. The acceptance comparison is pruned >= 5x faster.
	if cs, err := newCorpusServe(10000, 4); err != nil {
		fmt.Fprintf(os.Stderr, "# corpus serve fixture failed: %v\n", err)
	} else {
		add("MatchServe/10k-pruned", func(b *testing.B) { cs.bench(b, false) })
		add("MatchServe/10k-exhaustive", func(b *testing.B) { cs.bench(b, true) })
		cs.close()
	}
	// The import-path durability scenarios: PutSchema on a fresh
	// repository log under per-append fsync (SyncAlways, the serving
	// default) versus group commit (SyncInterval). The gap is the price
	// of the zero-loss guarantee; the acceptance comparison is that
	// group commit imports measurably faster.
	putStored, _ := workload.CorpusPair(8, 3)
	addPut := func(name string, policy coma.SyncPolicy) {
		add("PutSchema/"+name, func(b *testing.B) {
			dir, err := os.MkdirTemp("", "comabench-put")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			repo, err := coma.OpenRepository(filepath.Join(dir, "put.repo"),
				coma.WithSyncPolicy(policy))
			if err != nil {
				b.Fatal(err)
			}
			defer repo.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := repo.PutSchema(putStored[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	addPut("sync-always", coma.SyncAlways())
	addPut("sync-interval", coma.SyncInterval(0))
	// The warm-restart scenarios: one op is a full serving restart —
	// open the checkpointed 2-shard store, serve the first TopK(10)
	// match, close. Both stores hold the same 96-schema corpus compacted
	// into their page files; the cold one has no warm sidecar, so every
	// open re-analyzes the store to serve the first match, while the
	// warm one seeds its analyzer caches, column caches and candidate
	// index from the sidecar the checkpoint wrote. The acceptance
	// comparison is restart-warm beating restart-cold to the first
	// served match.
	if rf, err := newRestartFixture(96, 2); err != nil {
		fmt.Fprintf(os.Stderr, "# restart fixture failed: %v\n", err)
	} else {
		add("MatchServe/restart-cold", func(b *testing.B) { rf.bench(b, rf.coldDir) })
		add("MatchServe/restart-warm", func(b *testing.B) { rf.bench(b, rf.warmDir) })
		rf.close()
	}
	// The page-scan scenarios: one op streams every schema record of a
	// checkpointed 256-schema store through Repo.Iter. resident runs on
	// the default pool (every page cached after the warm-up scan);
	// evicting squeezes the same page file through a two-page pool, so
	// every scan re-reads and evicts clock-wise — the price of serving
	// a store larger than its buffer pool.
	if pf, err := newPageScanFixture(256); err != nil {
		fmt.Fprintf(os.Stderr, "# page scan fixture failed: %v\n", err)
	} else {
		add("PageScan/resident", func(b *testing.B) { pf.bench(b, 0) })
		add("PageScan/evicting", func(b *testing.B) { pf.bench(b, 2) })
		pf.close()
	}
	add("Analyze/schema", func(b *testing.B) {
		ctx := match.NewContext()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = analysis.NewIndex(big.S1, ctx.Sources())
		}
	})
	// The paper's repository-reuse scenario: the Schema reuse matcher
	// predicts a match purely by composing stored mappings, so the
	// match itself is join-work — per-op schema analysis dominates.
	// The fresh variant re-analyzes both schemas every op; the engine
	// amortizes analysis across the burst.
	store := &reuse.MemStore{}
	for _, t := range workload.Tasks() {
		store.Put(t.Gold)
	}
	sm := reuse.NewSchemaMatcher("SchemaM", store)
	add("RepeatedReuse/fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coma.Match(big.S1, big.S2, coma.WithMatcherInstances(sm)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("RepeatedReuse/engine", func(b *testing.B) {
		engine, err := coma.NewEngine(coma.WithMatcherInstances(sm))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Match(big.S1, big.S2); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range []struct {
		name  string
		build func() match.Matcher
	}{
		{"Name", func() match.Matcher { return match.NewName() }},
		{"NamePath", func() match.Matcher { return match.NewNamePath() }},
		{"TypeName", func() match.Matcher { return match.NewTypeName() }},
		{"Children", func() match.Matcher { return match.NewChildren() }},
		{"Leaves", func() match.Matcher { return match.NewLeaves() }},
	} {
		ctx := match.NewContext()
		add("Matcher/"+m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = m.build().Match(ctx, big.S1, big.S2)
			}
		})
	}
	// Dictionary/taxonomy-heavy: every token pair consults the synonym
	// hit-sets and the is-a chains.
	add("Matcher/NameTaxonomy", func(b *testing.B) {
		ctx := match.NewContext()
		strategy := combine.Strategy{
			Agg:  combine.AggSpec{Kind: combine.Max},
			Dir:  combine.Both,
			Sel:  combine.Selection{MaxN: 1},
			Comb: combine.CombAverage,
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := match.NewCustomName("NameTax", strategy,
				match.Trigram(), match.Synonym(), match.Taxonomy())
			_ = m.Match(ctx, big.S1, big.S2)
		}
	})
	add("NameSim/single", func(b *testing.B) {
		ctx := match.NewContext()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nm := match.NewName()
			_ = nm.NameSim(ctx, "POShipToCustomer", "DeliverToAddress")
		}
	})

	// Summarize the batch scheduler against its loop equivalent on the
	// 16-candidate workload — the acceptance comparison of the batch
	// API (lower ns/op and allocs/op than the loop).
	byName := make(map[string]perfMeasure, len(report.Benchmarks))
	for _, b := range report.Benchmarks {
		byName[b.Name] = b
	}
	if loop, ok := byName["MatchAll/engine-vs-loop"]; ok {
		if bat, ok := byName["MatchAll/1x16"]; ok && bat.NsPerOp > 0 && bat.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "# MatchAll batch vs loop (16 candidates): %.2fx time, %.2fx allocs\n",
				loop.NsPerOp/bat.NsPerOp, float64(loop.AllocsPerOp)/float64(bat.AllocsPerOp))
		}
	}
	// The sharding acceptance comparison: a 4-shard store must serve a
	// request no slower than the single-shard path on this workload.
	if one, ok := byName["MatchServe/1x16"]; ok && one.NsPerOp > 0 {
		if four, ok := byName["MatchServe/4shard"]; ok {
			fmt.Fprintf(os.Stderr, "# MatchServe 4-shard vs single-shard: %.2fx time per request\n",
				four.NsPerOp/one.NsPerOp)
		}
	}
	// The candidate-pruning acceptance comparison: a pruned TopK match
	// against the 10k-schema corpus must run at least 5x faster than
	// the exhaustive scan it is bit-identical to.
	if ex, ok := byName["MatchServe/10k-exhaustive"]; ok {
		if pr, ok := byName["MatchServe/10k-pruned"]; ok && pr.NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "# MatchServe 10k pruned vs exhaustive: %.1fx faster per request\n",
				ex.NsPerOp/pr.NsPerOp)
		}
	}
	// The durability acceptance comparison: group commit must import
	// faster than per-append fsync.
	if always, ok := byName["PutSchema/sync-always"]; ok {
		if interval, ok := byName["PutSchema/sync-interval"]; ok && interval.NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "# PutSchema group commit vs fsync-per-append: %.1fx faster per import\n",
				always.NsPerOp/interval.NsPerOp)
		}
	}
	// The warm-restart acceptance comparison: restoring analyses from
	// the sidecar must reach the first served match faster than
	// re-analyzing the store.
	if cold, ok := byName["MatchServe/restart-cold"]; ok {
		if warm, ok := byName["MatchServe/restart-warm"]; ok && warm.NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "# MatchServe warm restart vs cold: %.1fx faster to first served match\n",
				cold.NsPerOp/warm.NsPerOp)
		}
	}
	// The buffer-pool comparison: how much a scan pays when the page
	// file exceeds the pool and every page faults back in.
	if ev, ok := byName["PageScan/evicting"]; ok {
		if res, ok := byName["PageScan/resident"]; ok && res.NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "# PageScan evicting vs resident: %.2fx time per scan\n",
				ev.NsPerOp/res.NsPerOp)
		}
	}
	// The cache-lifecycle acceptance comparison: warm engine-scoped
	// columns must beat the per-batch cache on repeated batches.
	if warm, ok := byName["MatchRepeat/warm-colcache"]; ok && warm.NsPerOp > 0 {
		if cold, ok := byName["MatchRepeat/cold"]; ok {
			fmt.Fprintf(os.Stderr, "# MatchRepeat warm colcache vs per-batch: %.2fx time, %.2fx allocs\n",
				cold.NsPerOp/warm.NsPerOp, float64(cold.AllocsPerOp)/float64(warm.AllocsPerOp))
		}
	}
	return report
}

// benchServe measures the served match path: a 16-candidate sharded
// repository behind httptest, 4 concurrent coma.Client streams posting
// inline schemas, TopK(3). The per-op unit is one HTTP match request.
func benchServe(b *testing.B, shards int) {
	dir, err := os.MkdirTemp("", "comaserve-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	repo, err := coma.OpenShardedRepository(filepath.Join(dir, "shards"), shards)
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	for _, s := range workload.Candidates(16) {
		if err := repo.PutSchema(s); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(repo.Handler())
	defer ts.Close()

	// Pre-serialize every client's request stream: the benchmark
	// measures serving, not XSD export.
	const nClients = 4
	streams := workload.Clients(nClients)
	bodies := make([][]coma.MatchRequest, nClients)
	for i, stream := range streams {
		for _, s := range stream {
			var buf bytes.Buffer
			if err := export.SchemaXSD(&buf, s); err != nil {
				b.Fatal(err)
			}
			bodies[i] = append(bodies[i], coma.MatchRequest{
				Schema: coma.SchemaPayload{Name: s.Name, Format: "xsd", Source: buf.String()},
				TopK:   3,
			})
		}
	}

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := coma.NewClient(ts.URL)
			// Per-client transport: DefaultTransport caps idle conns
			// per host at 2, which would churn connections across the
			// 4 concurrent streams and measure the pool, not the server.
			client.HTTPClient = &http.Client{Transport: &http.Transport{}}
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				req := bodies[c][i%len(bodies[c])]
				resp, err := client.Match(ctx, req)
				if err != nil {
					b.Error(err)
					return
				}
				if len(resp.Candidates) != 3 {
					b.Errorf("%d candidates, want 3", len(resp.Candidates))
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// corpusServe is the repository-scale serving fixture shared by the
// MatchServe/10k-* scenarios: n corpus schemas stored on a sharded,
// candidate-indexed repository behind httptest. One pruned warmup
// request makes the per-shard engines analyze and index every stored
// schema, so both scenarios measure the serving steady state.
type corpusServe struct {
	dir  string
	repo *coma.ShardedRepository
	ts   *httptest.Server
	req  coma.MatchRequest
}

func newCorpusServe(n, shards int) (*corpusServe, error) {
	dir, err := os.MkdirTemp("", "comaserve-corpus")
	if err != nil {
		return nil, err
	}
	cs := &corpusServe{dir: dir}
	fail := func(err error) (*corpusServe, error) {
		cs.close()
		return nil, err
	}
	cs.repo, err = coma.OpenShardedRepository(filepath.Join(dir, "shards"), shards, coma.WithCandidateIndex())
	if err != nil {
		return fail(err)
	}
	stored, incoming := workload.CorpusPair(n, 2002)
	for _, s := range stored {
		if err := cs.repo.PutSchema(s); err != nil {
			return fail(err)
		}
	}
	cs.ts = httptest.NewServer(cs.repo.Handler())
	var buf bytes.Buffer
	if err := export.SchemaXSD(&buf, incoming); err != nil {
		return fail(err)
	}
	cs.req = coma.MatchRequest{
		Schema: coma.SchemaPayload{Name: incoming.Name, Format: "xsd", Source: buf.String()},
		TopK:   10,
	}
	if _, err := coma.NewClient(cs.ts.URL).Match(context.Background(), cs.req); err != nil {
		return fail(fmt.Errorf("warmup match: %w", err))
	}
	return cs, nil
}

// bench measures one served TopK(10) match request against the corpus,
// pruned through the candidate index or exhaustive.
func (cs *corpusServe) bench(b *testing.B, exhaustive bool) {
	client := coma.NewClient(cs.ts.URL)
	client.HTTPClient = &http.Client{Transport: &http.Transport{}}
	req := cs.req
	req.Exhaustive = exhaustive
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Match(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Candidates) != 10 {
			b.Fatalf("%d candidates, want 10", len(resp.Candidates))
		}
	}
}

func (cs *corpusServe) close() {
	if cs.ts != nil {
		cs.ts.Close()
	}
	if cs.repo != nil {
		cs.repo.Close()
	}
	os.RemoveAll(cs.dir)
}

// restartFixture is the warm-restart serving scene: two checkpointed
// copies of the same corpus store — coldDir without a warm sidecar,
// warmDir with one — probed by the same incoming schema.
type restartFixture struct {
	dir      string
	coldDir  string
	warmDir  string
	shards   int
	incoming *schema.Schema
}

// restartOpts configures the restart stores and every bench reopen:
// candidate index and persistent column cache (the serving defaults
// whose state the sidecar carries), no per-append fsync.
func restartOpts() []coma.Option {
	return []coma.Option{
		coma.WithCandidateIndex(),
		coma.WithPersistentColumnCache(),
		coma.WithSyncPolicy(coma.SyncNone()),
	}
}

func newRestartFixture(n, shards int) (*restartFixture, error) {
	dir, err := os.MkdirTemp("", "comabench-restart")
	if err != nil {
		return nil, err
	}
	stored, incoming := workload.CorpusPair(n, 17)
	rf := &restartFixture{
		dir:      dir,
		coldDir:  filepath.Join(dir, "cold"),
		warmDir:  filepath.Join(dir, "warm"),
		shards:   shards,
		incoming: incoming,
	}
	build := func(repoDir string, warm bool) error {
		repo, err := coma.OpenShardedRepository(repoDir, shards, restartOpts()...)
		if err != nil {
			return err
		}
		defer repo.Close()
		for _, s := range stored {
			if err := repo.PutSchema(s); err != nil {
				return err
			}
		}
		// One match analyzes and candidate-indexes every stored schema,
		// so the warm store's checkpoint has warmth to persist.
		if _, err := repo.MatchIncoming(incoming, coma.TopK(10)); err != nil {
			return err
		}
		if warm {
			return repo.Checkpoint() // pages + warm sidecar
		}
		return repo.Sharded.Checkpoint() // pages only
	}
	if err := build(rf.coldDir, false); err != nil {
		rf.close()
		return nil, err
	}
	if err := build(rf.warmDir, true); err != nil {
		rf.close()
		return nil, err
	}
	return rf, nil
}

// bench measures one restart-to-first-match cycle against dir.
func (rf *restartFixture) bench(b *testing.B, dir string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		repo, err := coma.OpenShardedRepository(dir, rf.shards, restartOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		res, err := repo.MatchIncoming(rf.incoming, coma.TopK(10))
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 10 {
			b.Fatalf("%d candidates, want 10", len(res))
		}
		if err := repo.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func (rf *restartFixture) close() { os.RemoveAll(rf.dir) }

// pageScanFixture is a single checkpointed store whose schema records
// live in its page file, scanned through buffer pools of different
// sizes.
type pageScanFixture struct {
	dir  string
	path string
}

func newPageScanFixture(n int) (*pageScanFixture, error) {
	dir, err := os.MkdirTemp("", "comabench-pagescan")
	if err != nil {
		return nil, err
	}
	pf := &pageScanFixture{dir: dir, path: filepath.Join(dir, "scan.repo")}
	stored, _ := workload.CorpusPair(n, 23)
	repo, err := coma.OpenRepository(pf.path, coma.WithSyncPolicy(coma.SyncNone()))
	if err != nil {
		pf.close()
		return nil, err
	}
	for _, s := range stored {
		if err := repo.PutSchema(s); err != nil {
			repo.Close()
			pf.close()
			return nil, err
		}
	}
	if err := repo.Checkpoint(); err != nil {
		repo.Close()
		pf.close()
		return nil, err
	}
	if err := repo.Close(); err != nil {
		pf.close()
		return nil, err
	}
	return pf, nil
}

// bench measures one full schema-record scan per op; pool bounds the
// buffer pool in pages (0 = the storage default, which holds the whole
// page file resident after the warm-up scan).
func (pf *pageScanFixture) bench(b *testing.B, pool int) {
	opts := []coma.Option{coma.WithSyncPolicy(coma.SyncNone())}
	if pool > 0 {
		opts = append(opts, coma.WithPageCache(pool))
	}
	repo, err := coma.OpenRepository(pf.path, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	scan := func() int64 {
		var total int64
		err := repo.Iter(repository.RecSchemas, func(_ string, payload []byte) error {
			total += int64(len(payload))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return total
	}
	if scan() == 0 {
		b.Fatal("page scan fixture holds no schema records")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = scan()
	}
}

func (pf *pageScanFixture) close() { os.RemoveAll(pf.dir) }

// benchSnapshot is the shape of a committed benchmark file: either a
// bare perfReport or a BENCH_pr<N>.json trajectory entry whose "after"
// block holds the snapshot to gate against.
type benchSnapshot struct {
	Benchmarks []perfMeasure `json:"benchmarks"`
	After      *perfReport   `json:"after"`
}

// checkRegressions compares the current report against the snapshot at
// path and errors when any benchmark present in both regressed by more
// than tol (relative ns/op). Benchmarks unique to either side are
// ignored, so snapshots age gracefully across PRs.
//
// Ratios are normalized by their median before the tolerance applies:
// a machine uniformly faster or slower than the snapshot machine (CI
// shared runners vs. the dev box) shifts every ratio by the same
// factor, which the median absorbs, while a genuine hot-path
// regression shows as that benchmark's ratio exceeding the rest.
// Uniform whole-engine regressions are therefore caught by re-running
// the check on the machine that recorded the snapshot, not in CI.
func checkRegressions(cur perfReport, path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perf check: %w", err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("perf check: %s: %w", path, err)
	}
	base := snap.Benchmarks
	if snap.After != nil {
		base = snap.After.Benchmarks
	}
	if len(base) == 0 {
		return fmt.Errorf("perf check: %s holds no benchmarks", path)
	}
	baseline := make(map[string]float64, len(base))
	for _, b := range base {
		baseline[b.Name] = b.NsPerOp
	}
	type comparison struct {
		name     string
		ns, want float64
		ratio    float64
	}
	var comps []comparison
	for _, b := range cur.Benchmarks {
		// PutSchema is fsync-bound: its ns/op tracks the runner's disk
		// and write-cache behavior, not engine code, so it is recorded
		// in the snapshot but excluded from the regression gate.
		if strings.HasPrefix(b.Name, "PutSchema/") {
			continue
		}
		want, ok := baseline[b.Name]
		if !ok || want <= 0 {
			continue
		}
		comps = append(comps, comparison{b.Name, b.NsPerOp, want, b.NsPerOp / want})
	}
	if len(comps) == 0 {
		return fmt.Errorf("perf check: no benchmark shared with %s", path)
	}
	ratios := make([]float64, len(comps))
	for i, c := range comps {
		ratios[i] = c.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	if median <= 0 {
		median = 1
	}
	var regressions []string
	for _, c := range comps {
		rel := c.ratio / median
		status := "ok"
		if rel > 1+tol {
			status = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs %.0f ns/op baseline (%.2fx raw, %.2fx machine-normalized)",
				c.name, c.ns, c.want, c.ratio, rel))
		}
		fmt.Fprintf(os.Stderr, "# check %-28s %.2fx of baseline (%.2fx normalized) [%s]\n",
			c.name, c.ratio, rel, status)
	}
	fmt.Fprintf(os.Stderr, "# check machine factor (median ratio): %.2fx\n", median)
	if len(regressions) > 0 {
		msg := "perf check: timing regressed beyond " + fmt.Sprintf("%.0f%%", tol*100)
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintf(os.Stderr, "# check passed: %d benchmarks within %.0f%% of %s\n", len(comps), tol*100, path)
	return nil
}
