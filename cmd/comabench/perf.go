package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	coma "repro"
	"repro/internal/match"
	"repro/internal/workload"
)

// perfReport is the JSON artifact of the perf experiment: one
// measurement per engine hot path, dumped per PR (BENCH_pr<N>.json) to
// track the performance trajectory of the match engine.
type perfReport struct {
	Experiment string        `json:"experiment"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"go_max_procs"`
	Benchmarks []perfMeasure `json:"benchmarks"`
}

type perfMeasure struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// expPerf measures the matcher-engine hot paths (the targets of the
// parallel match engine work): the default five-matcher Match operation
// sequential vs. parallel, the individual hybrid matchers on the
// largest workload task, and a single NameSim evaluation.
func expPerf(outPath string) error {
	big := workload.Tasks()[9] // 4<->5, the largest problem size
	small := workload.Tasks()[0]
	report := perfReport{
		Experiment: "perf",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Benchmarks = append(report.Benchmarks, perfMeasure{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "# %-28s %12.0f ns/op %10d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	add("DefaultMatch/sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coma.Match(small.S1, small.S2, coma.WithWorkers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("DefaultMatch/parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coma.Match(small.S1, small.S2); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range []struct {
		name  string
		build func() match.Matcher
	}{
		{"Name", func() match.Matcher { return match.NewName() }},
		{"NamePath", func() match.Matcher { return match.NewNamePath() }},
		{"TypeName", func() match.Matcher { return match.NewTypeName() }},
		{"Children", func() match.Matcher { return match.NewChildren() }},
		{"Leaves", func() match.Matcher { return match.NewLeaves() }},
	} {
		ctx := match.NewContext()
		add("Matcher/"+m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = m.build().Match(ctx, big.S1, big.S2)
			}
		})
	}
	add("NameSim/single", func(b *testing.B) {
		ctx := match.NewContext()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nm := match.NewName()
			_ = nm.NameSim(ctx, "POShipToCustomer", "DeliverToAddress")
		}
	})

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}
