// Command comaserve runs the COMA repository as a network service: a
// sharded schema store with per-shard match engines behind the
// HTTP/JSON API of internal/server. It is the serving shape of the
// paper's architecture — many clients import schemas into a shared
// repository and ask which stored schemas an incoming one resembles.
//
// Usage:
//
//	comaserve -addr :8402 -repo ./coma.shards -shards 4
//	comaserve -addr :8402 -repo ./coma.shards -shards 4 -workers 8
//	comaserve -repo ./coma.shards -shards 4 -match-timeout 30s -queue-limit 128
//	comaserve -repo ./coma.shards -shards 4 schemas/*.xsd   # preload files
//
// Endpoints (see package repro/internal/server):
//
//	GET    /healthz          liveness + store size
//	GET    /readyz           readiness + admission queue state
//	GET    /metrics          Prometheus text-format metrics
//	GET    /schemas          stored schemas
//	PUT    /schemas/{name}   import an inline schema
//	GET    /schemas/{name}   one schema's paths
//	DELETE /schemas/{name}   remove a schema
//	POST   /match            batch-match a schema against the store
//
// The -shards count is fixed when the repository directory is created;
// reopening with a different count fails. -workers bounds both the
// match scheduler's parallelism and the number of concurrently
// executing match requests.
//
// Robustness: -match-timeout bounds each admitted match request (0
// disables the deadline; client disconnects always cancel the match
// cooperatively), -queue-limit bounds how many match requests may wait
// for an execution slot before the server sheds load with 429 +
// Retry-After (0 = unbounded), and -queue-timeout bounds one request's
// wait before it is answered 503. On SIGINT/SIGTERM the server drains:
// /readyz flips to 503 so load balancers stop routing, new matches are
// shed, and in-flight requests finish before the process exits.
//
// Cache lifecycle: inline schemas posted to /match are analyzed per
// request and their analyses evicted at batch end (stored schemas stay
// pinned and warm), -analyzer-limit additionally bounds each engine's
// analysis cache as a backstop (0 disables the bound), and the
// engine-scoped persistent column cache — warm name-similarity columns
// across repeated matches of a stored schema — is on by default
// (-colcache=false restores per-batch column reuse).
//
// Paged storage and warm restarts: each checkpoint writes the shard
// state into a slotted page file served through a capacity-bounded
// buffer pool (-page-cache bounds it per shard, in pages) and saves a
// warm-restart sidecar next to the logs — the stored schemas' analysis
// artifacts and cached similarity columns. A restart replays the pages
// plus the short log tail and seeds its caches from the sidecar, so
// the first matches after a restart skip re-analyzing the store;
// /readyz reports both the buffer pool and the warm-start outcome. The
// sidecar is advisory: any mismatch (changed dictionary, replaced
// schema, damage) falls back to cold analysis, never wrong answers.
//
// Durability: -sync selects the shard logs' fsync cadence — "always"
// (default; an acknowledged PUT survives any crash), a group-commit
// interval like "50ms" (higher import throughput; a crash loses at
// most the last interval), or "none" (tests). -checkpoint compacts
// each shard log into a snapshot on a period so restart replays stay
// short; a final checkpoint always runs during graceful shutdown.
// Startup logs any shard whose log needed recovery (salvage, torn-tail
// truncation, v1 upgrade), and /readyz reports per-shard recovery
// state.
//
// Observability: GET /metrics serves the full instrument set in
// Prometheus text format — per-endpoint request counts and latency
// histograms, admission-queue depth/wait/shed counters, analyzer and
// column cache hit/miss/eviction counters, cumulative candidate-prune
// counters, and storage durability timings (append fsync, group-commit
// flush, checkpoint duration, recovery outcomes). Metrics are on by
// default (-metrics=false disables the registry and the endpoint);
// -log-requests additionally emits one structured log line per request
// to stderr. Load-shedding responses derive their Retry-After hint
// from current queue occupancy and observed match time instead of a
// fixed constant.
//
// Repository-scale matching: -candidate-index (on by default)
// maintains the candidate-pruning index over the stored schemas, so
// TopK match requests skip candidates whose cheap similarity upper
// bound cannot reach the TopK — same ranking, sublinear work. Clients
// opt out per request with "exhaustive": true; /readyz reports the
// index size and the last request's prune ratio.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	coma "repro"
)

// serveConfig carries everything run needs; main fills it from flags,
// tests construct it directly.
type serveConfig struct {
	addr     string
	repoDir  string
	shards   int
	workers  int
	anLimit   int
	colcache  bool
	candIndex bool
	// pageCache bounds each shard's page buffer pool, in pages (0 =
	// storage default).
	pageCache int
	// matchTimeout bounds each admitted match (0 = no deadline).
	matchTimeout time.Duration
	// queueLimit bounds waiting match requests (0 = server default,
	// negative = unbounded).
	queueLimit int
	// queueTimeout bounds one request's slot wait (0 = server default,
	// negative = unbounded).
	queueTimeout time.Duration
	// sync is the shard logs' durability policy in flag form ("always",
	// "none", "interval" or a duration; "" = always).
	sync string
	// checkpoint > 0 compacts each shard log into a snapshot on this
	// period (and once more on shutdown); 0 disables periodic
	// checkpoints.
	checkpoint time.Duration
	// metrics serves GET /metrics and keeps the instrument registry
	// (on by default).
	metrics bool
	// logRequests emits one structured log line per finished request.
	logRequests bool
	// preload lists schema files imported before serving.
	preload []string
	// ready, when non-nil, receives the bound listen address once the
	// server accepts connections (tests listen on ":0").
	ready chan<- string
}

func main() {
	var (
		addr         = flag.String("addr", ":8402", "listen address")
		repoDir      = flag.String("repo", "coma.shards", "sharded repository directory")
		shards       = flag.Int("shards", 4, "shard count (fixed when the repository is created)")
		workers      = flag.Int("workers", 0, "match worker bound and in-flight match limit (0 = all CPUs)")
		anLimit      = flag.Int("analyzer-limit", 256, "per-engine bound on cached transient schema analyses (0 = unbounded)")
		colcache     = flag.Bool("colcache", true, "persist name-similarity columns across batches (engine-scoped column cache)")
		candIndex    = flag.Bool("candidate-index", true, "maintain the candidate-pruning index (TopK matches skip hopeless candidates; clients opt out per request with \"exhaustive\")")
		pageCache    = flag.Int("page-cache", 0, "page buffer pool bound per shard, in pages (0 = storage default)")
		matchTimeout = flag.Duration("match-timeout", 0, "per-request match deadline, e.g. 30s (0 = none; timed-out matches answer 504)")
		queueLimit   = flag.Int("queue-limit", 64, "max match requests waiting for a slot before shedding with 429 (negative = unbounded)")
		queueTimeout = flag.Duration("queue-timeout", 30*time.Second, "max wait for a match slot before answering 503 (negative = unbounded)")
		syncPolicy   = flag.String("sync", "always", "log durability: always (fsync per write), none, or a group-commit interval like 50ms")
		checkpoint   = flag.Duration("checkpoint", 0, "period between shard-log checkpoint snapshots (0 = only on shutdown drain)")
		metricsOn    = flag.Bool("metrics", true, "serve Prometheus text-format metrics at GET /metrics")
		logRequests  = flag.Bool("log-requests", false, "emit one structured log line per request to stderr")
	)
	flag.Parse()
	cfg := serveConfig{
		addr:         *addr,
		repoDir:      *repoDir,
		shards:       *shards,
		workers:      *workers,
		anLimit:      *anLimit,
		colcache:     *colcache,
		candIndex:    *candIndex,
		pageCache:    *pageCache,
		matchTimeout: *matchTimeout,
		queueLimit:   *queueLimit,
		queueTimeout: *queueTimeout,
		sync:         *syncPolicy,
		checkpoint:   *checkpoint,
		metrics:      *metricsOn,
		logRequests:  *logRequests,
		preload:      flag.Args(),
	}
	// The flag's zero means "unbounded" to operators; the server's zero
	// selects its default, so map 0 → unbounded explicitly.
	if cfg.queueLimit == 0 {
		cfg.queueLimit = -1
	}
	if cfg.queueTimeout == 0 {
		cfg.queueTimeout = -1
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "comaserve:", err)
		os.Exit(1)
	}
}

// run opens the repository, optionally preloads schema files, and
// serves until SIGINT/SIGTERM, then drains (readiness flips to 503,
// new matches are shed) and shuts down gracefully.
func run(cfg serveConfig) error {
	policy, err := coma.ParseSyncPolicy(cfg.sync)
	if err != nil {
		return err
	}
	opts := []coma.Option{coma.WithWorkers(cfg.workers), coma.WithSyncPolicy(policy)}
	if cfg.anLimit > 0 {
		opts = append(opts, coma.WithAnalyzerLimit(cfg.anLimit))
	}
	if cfg.colcache {
		opts = append(opts, coma.WithPersistentColumnCache())
	}
	if cfg.candIndex {
		opts = append(opts, coma.WithCandidateIndex())
	}
	if cfg.pageCache > 0 {
		opts = append(opts, coma.WithPageCache(cfg.pageCache))
	}
	repo, err := coma.OpenShardedRepository(cfg.repoDir, cfg.shards, opts...)
	if err != nil {
		return err
	}
	defer repo.Close()
	for i, rep := range repo.Reports() {
		if !rep.Clean() {
			fmt.Fprintf(os.Stderr, "comaserve: shard %d recovery: %s\n", i, rep)
		}
	}
	if ws := repo.WarmStart(); ws.Attempted {
		if ws.Used {
			fmt.Fprintf(os.Stderr,
				"comaserve: warm start: restored %d schema analyses and %d similarity columns (%d entries discarded)\n",
				ws.Restored, ws.Columns, ws.Discarded)
		} else {
			fmt.Fprintln(os.Stderr,
				"comaserve: warm start: sidecar present but invalid (sources changed or damaged); starting cold")
		}
	}

	for _, path := range cfg.preload {
		s, err := coma.LoadFile(path)
		if err != nil {
			return fmt.Errorf("preload %s: %w", path, err)
		}
		if err := repo.PutSchema(s); err != nil {
			return fmt.Errorf("preload %s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "comaserve: loaded %s (%d paths)\n", s.Name, len(s.Paths()))
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	serveOpts := []coma.ServeOption{
		coma.WithMatchTimeout(cfg.matchTimeout),
		coma.WithQueueLimit(cfg.queueLimit),
		coma.WithQueueTimeout(cfg.queueTimeout),
		coma.WithMetrics(cfg.metrics),
	}
	if cfg.logRequests {
		serveOpts = append(serveOpts,
			coma.WithRequestLog(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	}
	handler := repo.Handler(serveOpts...)
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st := repo.Stats()
	fmt.Fprintf(os.Stderr, "comaserve: serving %d schemas in %d shards on %s\n",
		st.Schemas, repo.NumShards(), ln.Addr())
	if cfg.ready != nil {
		cfg.ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// Periodic checkpoints bound restart replay: each compacts the live
	// state into a snapshot and truncates the logs, so reopening replays
	// the snapshot plus at most one period of log suffix.
	if cfg.checkpoint > 0 {
		go func() {
			t := time.NewTicker(cfg.checkpoint)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := repo.Checkpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "comaserve: checkpoint:", err)
					}
				}
			}
		}()
	}
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		stop()
		// Drain first: /readyz answers 503 and new matches are shed, so
		// load balancers stop routing while Shutdown waits for in-flight
		// requests to finish.
		handler.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fmt.Fprintln(os.Stderr, "comaserve: draining and shutting down")
		err := srv.Shutdown(shutdownCtx)
		// With the store quiesced, checkpoint so the next boot replays a
		// snapshot instead of the whole log.
		if cerr := repo.Checkpoint(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}
}
