// Command comaserve runs the COMA repository as a network service: a
// sharded schema store with per-shard match engines behind the
// HTTP/JSON API of internal/server. It is the serving shape of the
// paper's architecture — many clients import schemas into a shared
// repository and ask which stored schemas an incoming one resembles.
//
// Usage:
//
//	comaserve -addr :8402 -repo ./coma.shards -shards 4
//	comaserve -addr :8402 -repo ./coma.shards -shards 4 -workers 8
//	comaserve -repo ./coma.shards -shards 4 schemas/*.xsd   # preload files
//
// Endpoints (see package repro/internal/server):
//
//	GET    /healthz          liveness + store size
//	GET    /schemas          stored schemas
//	PUT    /schemas/{name}   import an inline schema
//	GET    /schemas/{name}   one schema's paths
//	DELETE /schemas/{name}   remove a schema
//	POST   /match            batch-match a schema against the store
//
// The -shards count is fixed when the repository directory is created;
// reopening with a different count fails. -workers bounds both the
// match scheduler's parallelism and the number of concurrently
// executing match requests.
//
// Cache lifecycle: inline schemas posted to /match are analyzed per
// request and their analyses evicted at batch end (stored schemas stay
// pinned and warm), -analyzer-limit additionally bounds each engine's
// analysis cache as a backstop (0 disables the bound), and the
// engine-scoped persistent column cache — warm name-similarity columns
// across repeated matches of a stored schema — is on by default
// (-colcache=false restores per-batch column reuse).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	coma "repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":8402", "listen address")
		repoDir  = flag.String("repo", "coma.shards", "sharded repository directory")
		shards   = flag.Int("shards", 4, "shard count (fixed when the repository is created)")
		workers  = flag.Int("workers", 0, "match worker bound and in-flight match limit (0 = all CPUs)")
		anLimit  = flag.Int("analyzer-limit", 256, "per-engine bound on cached transient schema analyses (0 = unbounded)")
		colcache = flag.Bool("colcache", true, "persist name-similarity columns across batches (engine-scoped column cache)")
	)
	flag.Parse()
	if err := run(*addr, *repoDir, *shards, *workers, *anLimit, *colcache, flag.Args(), nil); err != nil {
		fmt.Fprintln(os.Stderr, "comaserve:", err)
		os.Exit(1)
	}
}

// run opens the repository, optionally preloads schema files given as
// positional arguments, and serves until SIGINT/SIGTERM. When ready is
// non-nil it receives the bound listen address once the server accepts
// connections (tests listen on ":0").
func run(addr, repoDir string, shards, workers, anLimit int, colcache bool, preload []string, ready chan<- string) error {
	opts := []coma.Option{coma.WithWorkers(workers)}
	if anLimit > 0 {
		opts = append(opts, coma.WithAnalyzerLimit(anLimit))
	}
	if colcache {
		opts = append(opts, coma.WithPersistentColumnCache())
	}
	repo, err := coma.OpenShardedRepository(repoDir, shards, opts...)
	if err != nil {
		return err
	}
	defer repo.Close()

	for _, path := range preload {
		s, err := coma.LoadFile(path)
		if err != nil {
			return fmt.Errorf("preload %s: %w", path, err)
		}
		if err := repo.PutSchema(s); err != nil {
			return fmt.Errorf("preload %s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "comaserve: loaded %s (%d paths)\n", s.Name, len(s.Paths()))
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           repo.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st := repo.Stats()
	fmt.Fprintf(os.Stderr, "comaserve: serving %d schemas in %d shards on %s\n",
		st.Schemas, repo.NumShards(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fmt.Fprintln(os.Stderr, "comaserve: shutting down")
		return srv.Shutdown(shutdownCtx)
	}
}
