package main

import (
	"context"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	coma "repro"
)

const testDDL = `CREATE TABLE PO.Orders (orderNo INT, customer VARCHAR(100), city VARCHAR(50));`

// TestServeSmoke drives the real run() end to end: start on a free
// port with a preloaded schema, poll /healthz, do one match
// round-trip through coma.Client, then shut down via SIGINT.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	sqlPath := filepath.Join(dir, "Orders.sql")
	if err := os.WriteFile(sqlPath, []byte(testDDL), 0o644); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(serveConfig{
			addr:     "127.0.0.1:0",
			repoDir:  filepath.Join(dir, "shards"),
			shards:   2,
			workers:  2,
			anLimit:  256,
			colcache: true,
			preload:  []string{sqlPath},
			ready:    ready,
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	client := coma.NewClient("http://" + addr)
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Schemas != 1 || h.Shards != 2 {
		t.Errorf("health = %+v", h)
	}

	resp, err := client.Match(ctx, coma.MatchRequest{
		Schema: coma.SchemaPayload{
			Name:   "Purchases",
			Format: "sql",
			Source: "CREATE TABLE P.Purchase (purchaseNo INT, customerName VARCHAR(100), town VARCHAR(50));",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Schema != "Orders" {
		t.Fatalf("match response = %+v", resp)
	}
	if len(resp.Candidates[0].Correspondences) == 0 {
		t.Error("match round-trip produced no correspondences")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down on SIGINT")
	}
}

// TestServeSyncCheckpoint: group-commit sync plus periodic checkpoints
// round-trip — the drain-path checkpoint leaves shard logs whose next
// open replays from a snapshot with the store intact.
func TestServeSyncCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sqlPath := filepath.Join(dir, "Orders.sql")
	if err := os.WriteFile(sqlPath, []byte(testDDL), 0o644); err != nil {
		t.Fatal(err)
	}
	shards := filepath.Join(dir, "shards")
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(serveConfig{
			addr:       "127.0.0.1:0",
			repoDir:    shards,
			shards:     2,
			workers:    1,
			sync:       "10ms",
			checkpoint: 20 * time.Millisecond,
			preload:    []string{sqlPath},
			ready:      ready,
		})
	}()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	// Let at least one periodic checkpoint tick fire.
	time.Sleep(60 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down on SIGINT")
	}
	repo, err := coma.OpenShardedRepository(shards, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if st := repo.Stats(); st.Schemas != 1 {
		t.Errorf("schemas after restart = %d, want 1", st.Schemas)
	}
	usedCkpt := false
	for _, rep := range repo.Reports() {
		if !rep.Clean() {
			t.Errorf("shard not clean after checkpointed shutdown: %s", rep)
		}
		if rep.CheckpointUsed {
			usedCkpt = true
		}
	}
	if !usedCkpt {
		t.Error("no shard replayed from a checkpoint after drain")
	}
}

// TestServeBadSyncPolicy: an unparsable -sync value fails fast.
func TestServeBadSyncPolicy(t *testing.T) {
	if err := run(serveConfig{
		addr:    "127.0.0.1:0",
		repoDir: filepath.Join(t.TempDir(), "shards"),
		shards:  1,
		sync:    "sometimes",
	}); err == nil {
		t.Fatal("run with bogus -sync succeeded")
	}
}

// TestServeBadRepo: an unusable repository path fails fast instead of
// listening.
func TestServeBadRepo(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(serveConfig{addr: "127.0.0.1:0", repoDir: file, shards: 2, workers: 1}); err == nil {
		t.Fatal("run over a file path succeeded")
	}
}

// TestServeBadPreload: a broken preload file aborts startup.
func TestServeBadPreload(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "empty.sql")
	if err := os.WriteFile(bad, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(serveConfig{
		addr:     "127.0.0.1:0",
		repoDir:  filepath.Join(dir, "shards"),
		shards:   1,
		workers:  1,
		colcache: true,
		preload:  []string{bad},
	}); err == nil {
		t.Fatal("run with an empty preload schema succeeded")
	}
}
