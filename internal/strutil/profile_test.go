package strutil

import (
	"reflect"
	"sort"
	"testing"
)

// profileCorpus mixes the shapes the matchers see: camel case, acronyms,
// digits, separators, very short and empty names, and unicode.
var profileCorpus = []string{
	"PurchaseOrder", "POShipTo", "shipToStreet", "Order", "order",
	"Cust", "C", "", "HTTPServer", "deliver_to", "Address2", "Straße",
	"a", "an", "zip", "code", "PONo", "unit-price", "qty",
}

// TestProfiledSimsMatchStringAPIs pins the contract that the profiled
// similarities are exact drop-ins for the string-pair APIs: same inputs,
// bit-identical outputs.
func TestProfiledSimsMatchStringAPIs(t *testing.T) {
	for _, a := range profileCorpus {
		for _, b := range profileCorpus {
			pa, pb := NewTokenProfile(a, 2, 3), NewTokenProfile(b, 2, 3)
			if got, want := AffixSimProfile(pa, pb), AffixSim(a, b); got != want {
				t.Errorf("AffixSimProfile(%q, %q) = %v, string API %v", a, b, got, want)
			}
			for _, n := range []int{1, 2, 3, 4} {
				if got, want := NGramSimProfile(pa, pb, n), NGramSim(a, b, n); got != want {
					t.Errorf("NGramSimProfile(%q, %q, %d) = %v, string API %v", a, b, n, got, want)
				}
			}
			if got, want := EditDistanceSimProfile(pa, pb), EditDistanceSim(a, b); got != want {
				t.Errorf("EditDistanceSimProfile(%q, %q) = %v, string API %v", a, b, got, want)
			}
			if got, want := SoundexSimProfile(pa, pb), SoundexSim(a, b); got != want {
				t.Errorf("SoundexSimProfile(%q, %q) = %v, string API %v", a, b, got, want)
			}
		}
	}
}

// TestNGramsShortString pins the len(s) < n edge case: the whole
// normalized string becomes the single gram — there is no padding.
func TestNGramsShortString(t *testing.T) {
	if got := NGrams("po", 3); !reflect.DeepEqual(got, []string{"po"}) {
		t.Errorf("NGrams(po, 3) = %v, want [po]", got)
	}
	if got := NGrams("P.O", 4); !reflect.DeepEqual(got, []string{"po"}) {
		t.Errorf("NGrams(P.O, 4) = %v, want [po]", got)
	}
	if got := NGrams("", 3); got != nil {
		t.Errorf("NGrams(empty, 3) = %v, want nil", got)
	}
	if got := NGrams("abc", 0); got != nil {
		t.Errorf("NGrams(abc, 0) = %v, want nil", got)
	}
	// Two distinct short strings share no grams and are dissimilar even
	// though one prefixes the other.
	if got := NGramSim("po", "pos", 4); got != 0 {
		t.Errorf("NGramSim(po, pos, 4) = %v, want 0", got)
	}
	if got := NGramSim("po", "P-O", 4); got != 1 {
		t.Errorf("NGramSim(po, P-O, 4) = %v, want 1", got)
	}
}

// TestTokenProfileGrams checks that profiled gram widths are served
// precomputed and unprofiled widths fall back to on-the-fly derivation,
// both matching the NGrams multiset.
func TestTokenProfileGrams(t *testing.T) {
	p := NewTokenProfile("PurchaseOrder", 3)
	for _, n := range []int{2, 3} {
		want := NGrams("PurchaseOrder", n)
		sort.Strings(want)
		if got := p.Grams(n); !reflect.DeepEqual(got, want) {
			t.Errorf("Grams(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestNameProfileTokens checks the profile carries TokenSet's expanded
// token set verbatim.
func TestNameProfileTokens(t *testing.T) {
	expand := func(tok string) []string {
		if tok == "po" {
			return []string{"purchase", "order"}
		}
		return nil
	}
	p := NewNameProfile("POShipTo", expand, 3)
	want := TokenSet("POShipTo", expand)
	if !reflect.DeepEqual(p.Tokens, want) {
		t.Errorf("Tokens = %v, want %v", p.Tokens, want)
	}
	if len(p.Profiles) != len(p.Tokens) {
		t.Fatalf("got %d profiles for %d tokens", len(p.Profiles), len(p.Tokens))
	}
	for i, tok := range p.Tokens {
		if p.Profiles[i].Token != tok {
			t.Errorf("profile %d is for %q, want %q", i, p.Profiles[i].Token, tok)
		}
	}
}
