package strutil

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAffixSim(t *testing.T) {
	cases := []struct {
		a, b string
		min  float64
		max  float64
	}{
		{"shipToCity", "shipToCity", 1, 1},
		{"shipToCity", "ShipToCity", 1, 1}, // case-insensitive
		{"shipTo", "shipFrom", 0.3, 0.9},
		{"custCity", "City", 0.5, 1},
		{"abc", "xyz", 0, 0},
		{"", "", 0, 0},
		{"a", "", 0, 0},
	}
	for _, c := range cases {
		got := AffixSim(c.a, c.b)
		if got < c.min || got > c.max {
			t.Errorf("AffixSim(%q,%q) = %.3f, want in [%.2f,%.2f]", c.a, c.b, got, c.min, c.max)
		}
	}
}

func TestAffixSimNoOverlap(t *testing.T) {
	// "aaa" vs "aa": prefix 2, suffix must not double-count.
	if got := AffixSim("aaa", "aa"); got > 1 {
		t.Errorf("AffixSim overlap: %.3f > 1", got)
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("City", 3)
	want := []string{"cit", "ity"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
	if g := NGrams("ab", 3); !reflect.DeepEqual(g, []string{"ab"}) {
		t.Errorf("short string grams = %v", g)
	}
	if NGrams("", 3) != nil || NGrams("abc", 0) != nil {
		t.Error("degenerate NGrams should be nil")
	}
}

func TestNGramSim(t *testing.T) {
	if got := NGramSim("shipToCity", "shipToCity", 3); got != 1 {
		t.Errorf("identical trigram sim = %.3f", got)
	}
	// Paper's motivating example: string matchers find no similarity
	// for Ship vs Deliver.
	if got := NGramSim("Ship", "Deliver", 3); got > 0.1 {
		t.Errorf("Ship/Deliver trigram sim = %.3f, want ~0", got)
	}
	if got := NGramSim("shipToStreet", "Street", 3); got < 0.4 {
		t.Errorf("shipToStreet/Street trigram sim = %.3f, want > 0.4", got)
	}
	if got := NGramSim("ab", "ab", 3); got != 1 {
		t.Errorf("short identical = %.3f", got)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"Same", "same", 0}, // normalization
		{"ship_to", "shipto", 0},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSim(t *testing.T) {
	if got := EditDistanceSim("custCity", "custCity"); got != 1 {
		t.Errorf("identical = %.3f", got)
	}
	if got := EditDistanceSim("", ""); got != 0 {
		t.Errorf("empty = %.3f", got)
	}
	if a, b := EditDistanceSim("custCity", "custZip"), EditDistanceSim("custCity", "orderDate"); a <= b {
		t.Errorf("expected custZip closer to custCity than orderDate (%.3f vs %.3f)", a, b)
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"}, // h/w rule
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", ""},
		{"123", ""},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSoundexSim(t *testing.T) {
	if got := SoundexSim("Robert", "Rupert"); got != 1 {
		t.Errorf("Robert/Rupert = %.3f, want 1", got)
	}
	if got := SoundexSim("Robert", "Zebra"); got != 0 {
		t.Errorf("Robert/Zebra = %.3f, want 0 (different first letter)", got)
	}
	if got := SoundexSim("", "x"); got != 0 {
		t.Errorf("empty = %.3f", got)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"POShipTo", []string{"PO", "Ship", "To"}},
		{"shipToCity", []string{"ship", "To", "City"}},
		{"ship_to_city", []string{"ship", "to", "city"}},
		{"Address2", []string{"Address", "2"}},
		{"HTTPServer", []string{"HTTP", "Server"}},
		{"custNo", []string{"cust", "No"}},
		{"", nil},
		{"--", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenSet(t *testing.T) {
	expand := func(tok string) []string {
		if tok == "po" {
			return []string{"purchase", "order"}
		}
		return nil
	}
	// The stopword "to" is eliminated.
	got := TokenSet("POShipTo", expand)
	want := []string{"purchase", "order", "ship"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokenSet = %v, want %v", got, want)
	}
	// Duplicates removed.
	got = TokenSet("shipShip", nil)
	if !reflect.DeepEqual(got, []string{"ship"}) {
		t.Errorf("dedup TokenSet = %v", got)
	}
	// Nil expander passes tokens through (minus stopwords).
	got = TokenSet("BillTo", nil)
	if !reflect.DeepEqual(got, []string{"bill"}) {
		t.Errorf("TokenSet nil expander = %v", got)
	}
	// All-stopword names keep their tokens rather than becoming empty.
	got = TokenSet("To", nil)
	if !reflect.DeepEqual(got, []string{"to"}) {
		t.Errorf("all-stopword TokenSet = %v", got)
	}
}

// --- property-based tests -------------------------------------------------

// alpha generates a random short ASCII identifier-like string.
func alpha(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_0123456789"
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(letters[r.Intn(len(letters))])
	}
	return b.String()
}

func TestPropertySimilarityBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := alpha(r), alpha(r)
		for _, sim := range []float64{
			AffixSim(a, b), NGramSim(a, b, 2), NGramSim(a, b, 3),
			EditDistanceSim(a, b), SoundexSim(a, b),
		} {
			if sim < 0 || sim > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertySimilaritySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := alpha(r), alpha(r)
		return AffixSim(a, b) == AffixSim(b, a) &&
			NGramSim(a, b, 3) == NGramSim(b, a, 3) &&
			EditDistance(a, b) == EditDistance(b, a) &&
			SoundexSim(a, b) == SoundexSim(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEditDistanceTriangle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := alpha(r), alpha(r), alpha(r)
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := alpha(r)
		if normalize(a) == "" {
			return true // all-separator strings are legitimately 0
		}
		return AffixSim(a, a) == 1 && NGramSim(a, a, 3) == 1 && EditDistanceSim(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTokenizeLossless(t *testing.T) {
	// Concatenated tokens reproduce the letters/digits of the input.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := alpha(r)
		joined := strings.ToLower(strings.Join(Tokenize(a), ""))
		return joined == normalize(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
