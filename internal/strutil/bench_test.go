package strutil

import "testing"

var benchPairs = [][2]string{
	{"shipToCity", "City"},
	{"PurchaseOrderNumber", "PONo"},
	{"contactFirstName", "firstName"},
	{"DeliverTo", "ShipTo"},
	{"articleDescription", "prodDesc"},
}

func BenchmarkAffixSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			_ = AffixSim(p[0], p[1])
		}
	}
}

func BenchmarkTrigramSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			_ = NGramSim(p[0], p[1], 3)
		}
	}
}

func BenchmarkEditDistanceSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			_ = EditDistanceSim(p[0], p[1])
		}
	}
}

func BenchmarkSoundexSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range benchPairs {
			_ = SoundexSim(p[0], p[1])
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Tokenize("PurchaseOrderShipToContactTelephoneNumber2")
	}
}

func BenchmarkTokenSet(b *testing.B) {
	expand := func(tok string) []string {
		if tok == "po" {
			return []string{"purchase", "order"}
		}
		return nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TokenSet("POShipToContactPhone", expand)
	}
}
