// Package strutil provides the approximate string matching primitives
// underlying COMA's simple matchers (Do & Rahm, VLDB 2002, Section 4.1):
// common-affix similarity, n-gram set similarity, Levenshtein edit
// distance, Soundex phonetic codes, and the name pre-processing
// (tokenization, abbreviation expansion) used by the hybrid Name matcher.
//
// All similarity functions are case-insensitive and return values in
// [0, 1], where 1 means identical under the respective criterion.
package strutil

import (
	"strings"
	"unicode"
)

// normalize lower-cases s and drops characters that carry no name
// information (separators and punctuation).
func normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}

// AffixSim compares two names by their common prefix and suffix: the
// Affix matcher. The similarity is the length of the longest common
// prefix plus the longest common suffix (counted over disjoint regions),
// normalized by the average string length.
func AffixSim(a, b string) float64 {
	return affixSimNorm(normalize(a), normalize(b))
}

// affixSimNorm is AffixSim over already-normalized strings.
func affixSimNorm(a, b string) float64 {
	if a == b {
		if a == "" {
			return 0
		}
		return 1
	}
	if a == "" || b == "" {
		return 0
	}
	pre := commonPrefixLen(a, b)
	// Suffix may not overlap the prefix region of either string.
	maxSuf := min(len(a), len(b)) - pre
	suf := commonSuffixLen(a, b)
	if suf > maxSuf {
		suf = maxSuf
	}
	avg := float64(len(a)+len(b)) / 2
	return float64(pre+suf) / avg
}

func commonPrefixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

func commonSuffixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[len(a)-1-n] == b[len(b)-1-n] {
		n++
	}
	return n
}

// NGrams returns the multiset of n-grams of s after normalization, in
// sliding-window order. Strings shorter than n are not padded: they
// contribute their whole normalized form as a single gram, so short
// names compare non-trivially against longer names' grams only on
// exact equality. For n <= 0 or an empty string the result is nil.
func NGrams(s string, n int) []string {
	return gramsNorm(normalize(s), n)
}

// gramsNorm is NGrams over an already-normalized string; the single
// source of gram extraction shared with the sorted profile variant.
func gramsNorm(s string, n int) []string {
	if n <= 0 || s == "" {
		return nil
	}
	if len(s) < n {
		return []string{s}
	}
	out := make([]string, 0, len(s)-n+1)
	for i := 0; i+n <= len(s); i++ {
		out = append(out, s[i:i+n])
	}
	return out
}

// NGramSim computes the Dice coefficient over the n-gram multisets of a
// and b: 2·|common| / (|grams(a)| + |grams(b)|). Digram similarity is
// NGramSim(a, b, 2), trigram similarity NGramSim(a, b, 3).
func NGramSim(a, b string, n int) float64 {
	na, nb := normalize(a), normalize(b)
	ga, gb := sortedGrams(na, n), sortedGrams(nb, n)
	if len(ga) == 0 || len(gb) == 0 {
		if na == nb && na != "" {
			return 1
		}
		return 0
	}
	return 2 * float64(sortedCommon(ga, gb)) / float64(len(ga)+len(gb))
}

// EditDistance returns the Levenshtein distance between the normalized
// forms of a and b.
func EditDistance(a, b string) int {
	return editDistanceNorm(normalize(a), normalize(b))
}

// editDistanceNorm is EditDistance over already-normalized strings.
func editDistanceNorm(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// EditDistanceSim converts the Levenshtein metric into a similarity:
// 1 − distance / max(len(a), len(b)) over normalized forms.
func EditDistanceSim(a, b string) float64 {
	return editDistanceSimNorm(normalize(a), normalize(b))
}

// editDistanceSimNorm is EditDistanceSim over already-normalized
// strings.
func editDistanceSimNorm(na, nb string) float64 {
	if na == nb {
		if na == "" {
			return 0
		}
		return 1
	}
	longest := len(na)
	if len(nb) > longest {
		longest = len(nb)
	}
	if longest == 0 {
		return 0
	}
	return 1 - float64(editDistanceNorm(na, nb))/float64(longest)
}

// Soundex returns the classic 4-character Soundex code of s ("" for
// strings without a leading letter).
func Soundex(s string) string {
	return soundexNorm(normalize(s))
}

// soundexNorm is Soundex over an already-normalized string.
func soundexNorm(s string) string {
	// Skip leading non-letters.
	start := 0
	for start < len(s) && (s[start] < 'a' || s[start] > 'z') {
		start++
	}
	if start == len(s) {
		return ""
	}
	s = s[start:]
	code := []byte{s[0] - 'a' + 'A'}
	lastDigit := soundexDigit(s[0])
	for i := 1; i < len(s) && len(code) < 4; i++ {
		c := s[i]
		if c < 'a' || c > 'z' {
			continue
		}
		d := soundexDigit(c)
		switch {
		case d == 0:
			// Vowels and h/w/y reset only for vowels: classic rule is
			// that h and w do not separate identical codes; vowels do.
			if c != 'h' && c != 'w' {
				lastDigit = 0
			}
		case d != lastDigit:
			code = append(code, '0'+d)
			lastDigit = d
		}
	}
	for len(code) < 4 {
		code = append(code, '0')
	}
	return string(code)
}

func soundexDigit(c byte) byte {
	switch c {
	case 'b', 'f', 'p', 'v':
		return 1
	case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
		return 2
	case 'd', 't':
		return 3
	case 'l':
		return 4
	case 'm', 'n':
		return 5
	case 'r':
		return 6
	default:
		return 0
	}
}

// SoundexSim compares names phonetically: 1 when the Soundex codes are
// identical, otherwise the fraction of leading code positions agreeing.
func SoundexSim(a, b string) float64 {
	return soundexSimCodes(Soundex(a), Soundex(b))
}

// soundexSimCodes is SoundexSim over precomputed Soundex codes.
func soundexSimCodes(ca, cb string) float64 {
	if ca == "" || cb == "" {
		return 0
	}
	if ca == cb {
		return 1
	}
	n := 0
	for n < len(ca) && n < len(cb) && ca[n] == cb[n] {
		n++
	}
	return float64(n) / 4
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
