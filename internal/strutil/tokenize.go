package strutil

import (
	"strings"
	"unicode"
)

// Tokenize splits an element name into its component tokens, the
// pre-processing step of the hybrid Name matcher (paper Section 4.2):
// POShipTo → {PO, Ship, To}. It splits on case transitions
// (camelCase, PascalCase, trailing acronyms such as "PONo" → PO, No),
// on digit/letter boundaries, and on punctuation.
func Tokenize(name string) []string {
	var tokens []string
	runes := []rune(name)
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			tokens = append(tokens, string(cur))
			cur = nil
		}
	}
	class := func(r rune) int {
		switch {
		case unicode.IsUpper(r):
			return 0
		case unicode.IsLower(r):
			return 1
		case unicode.IsDigit(r):
			return 2
		default:
			return 3 // separator
		}
	}
	for i, r := range runes {
		c := class(r)
		if c == 3 {
			flush()
			continue
		}
		if len(cur) > 0 {
			prev := class(cur[len(cur)-1])
			switch {
			case prev == c:
				// "HTTPServer": split before the last upper of an
				// acronym when a lower follows.
				if c == 0 && i+1 < len(runes) && class(runes[i+1]) == 1 {
					flush()
				}
			case prev == 0 && c == 1:
				// Upper followed by lower continues the same word.
			default:
				flush()
			}
		}
		cur = append(cur, r)
	}
	flush()
	return tokens
}

// stopwords are function words eliminated during name pre-processing:
// they carry no discriminating meaning ("ShipTo" and "Ship" name the
// same concept) and would otherwise penalize token-set similarities of
// prefixed names.
var stopwords = map[string]bool{
	"to": true, "of": true, "the": true, "for": true,
	"a": true, "an": true, "and": true,
}

// TokenSet tokenizes name and expands abbreviations/acronyms through
// expand, returning the final lower-case token set in order of first
// appearance (duplicates and stopwords removed; if every token is a
// stopword the unfiltered set is kept). expand maps a lower-case token
// to its expansion tokens and may be nil.
func TokenSet(name string, expand func(string) []string) []string {
	seen := make(map[string]bool)
	var out []string
	var dropped []string
	add := func(tok string) {
		tok = strings.ToLower(tok)
		if tok == "" || seen[tok] {
			return
		}
		if stopwords[tok] {
			dropped = append(dropped, tok)
			return
		}
		seen[tok] = true
		out = append(out, tok)
	}
	for _, tok := range Tokenize(name) {
		lower := strings.ToLower(tok)
		if expand != nil {
			if exp := expand(lower); len(exp) > 0 {
				for _, e := range exp {
					add(e)
				}
				continue
			}
		}
		add(lower)
	}
	if len(out) == 0 {
		// All-stopword names ("To", "Of") keep their tokens: an empty
		// set would make the element unmatchable.
		for _, tok := range dropped {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	return out
}
