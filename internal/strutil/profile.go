package strutil

import "sort"

// TokenProfile precomputes, for one name token, every artifact the
// simple string similarities consume: the normalized form, sorted
// n-gram multisets for the profiled gram widths, and the Soundex code.
// Profiling a token once turns the per-pair cost of the simple
// similarities from "re-derive both sides" into a plain comparison,
// which is what makes the two-phase (analyze once, compare pairwise)
// match flow worthwhile.
type TokenProfile struct {
	// Token is the lower-case token as produced by TokenSet; semantic
	// similarities (Synonym, Taxonomy) look it up verbatim.
	Token string
	// Norm is the normalized form (lower-case letters and digits only).
	Norm string
	// Code is the Soundex code of the token ("" without a leading
	// letter).
	Code string

	gramNs []int
	grams  [][]string // sorted n-gram multisets, parallel to gramNs
}

// NewTokenProfile analyzes one token, precomputing grams for the given
// widths (other widths are computed on demand by Grams).
func NewTokenProfile(tok string, gramNs ...int) *TokenProfile {
	p := &TokenProfile{Token: tok, Norm: normalize(tok)}
	p.Code = soundexNorm(p.Norm)
	if len(gramNs) > 0 {
		p.gramNs = gramNs
		p.grams = make([][]string, len(gramNs))
		for i, n := range gramNs {
			p.grams[i] = sortedGrams(p.Norm, n)
		}
	}
	return p
}

// Grams returns the sorted n-gram multiset of the token's normalized
// form, precomputed when n was profiled.
func (p *TokenProfile) Grams(n int) []string {
	for i, gn := range p.gramNs {
		if gn == n {
			return p.grams[i]
		}
	}
	return sortedGrams(p.Norm, n)
}

// sortedGrams is NGrams over an already-normalized string, sorted so
// that multiset intersections run by linear merge instead of a map.
func sortedGrams(norm string, n int) []string {
	out := gramsNorm(norm, n)
	sort.Strings(out)
	return out
}

// sortedCommon counts the multiset intersection of two sorted slices.
func sortedCommon(a, b []string) int {
	common, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return common
}

// AffixSimProfile is AffixSim over precomputed profiles.
func AffixSimProfile(a, b *TokenProfile) float64 { return affixSimNorm(a.Norm, b.Norm) }

// NGramSimProfile is NGramSim over precomputed profiles.
func NGramSimProfile(a, b *TokenProfile, n int) float64 {
	ga, gb := a.Grams(n), b.Grams(n)
	if len(ga) == 0 || len(gb) == 0 {
		if a.Norm == b.Norm && a.Norm != "" {
			return 1
		}
		return 0
	}
	return 2 * float64(sortedCommon(ga, gb)) / float64(len(ga)+len(gb))
}

// EditDistanceSimProfile is EditDistanceSim over precomputed profiles.
func EditDistanceSimProfile(a, b *TokenProfile) float64 {
	return editDistanceSimNorm(a.Norm, b.Norm)
}

// SoundexSimProfile is SoundexSim over precomputed profiles.
func SoundexSimProfile(a, b *TokenProfile) float64 { return soundexSimCodes(a.Code, b.Code) }

// NameProfile is the analyzed form of one element name: the expanded
// token set of TokenSet plus one TokenProfile per token. Building one
// profile per schema element up front reduces the name pre-processing
// cost of a match from O(m·n) re-tokenizations to O(m+n).
type NameProfile struct {
	// Name is the original element name.
	Name string
	// Tokens is the final token set (TokenSet order); it doubles as the
	// key set of per-pair token similarity grids.
	Tokens []string
	// Profiles holds the per-token analysis, parallel to Tokens.
	Profiles []*TokenProfile
}

// NewNameProfile tokenizes and expands name (see TokenSet) and profiles
// every resulting token for the given gram widths.
func NewNameProfile(name string, expand func(string) []string, gramNs ...int) *NameProfile {
	tokens := TokenSet(name, expand)
	p := &NameProfile{Name: name, Tokens: tokens, Profiles: make([]*TokenProfile, len(tokens))}
	for i, tok := range tokens {
		p.Profiles[i] = NewTokenProfile(tok, gramNs...)
	}
	return p
}
