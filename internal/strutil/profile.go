package strutil

import "sort"

// IDSim pairs an interned term id with a similarity value. It is the
// unit of the precomputed dictionary hit-sets carried by annotated
// token profiles: the terminological neighbours of a token, sorted by
// id so that a pairwise lookup is a binary search instead of a map
// walk. strutil only defines the shape; package dict produces the
// values and package analysis installs them.
type IDSim struct {
	ID  int32
	Sim float64
}

// LookupIDSim returns the similarity recorded for id in a hit-set
// sorted by ID, or 0.
func LookupIDSim(rel []IDSim, id int32) float64 {
	lo, hi := 0, len(rel)
	for lo < hi {
		mid := (lo + hi) / 2
		if rel[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rel) && rel[lo].ID == id {
		return rel[lo].Sim
	}
	return 0
}

// TokenProfile precomputes, for one name token, every artifact the
// simple string similarities consume: the normalized form, sorted
// n-gram multisets for the profiled gram widths, and the Soundex code.
// Profiling a token once turns the per-pair cost of the simple
// similarities from "re-derive both sides" into a plain comparison,
// which is what makes the two-phase (analyze once, compare pairwise)
// match flow worthwhile.
type TokenProfile struct {
	// Token is the lower-case token as produced by TokenSet; semantic
	// similarities (Synonym, Taxonomy) look it up verbatim.
	Token string
	// Norm is the normalized form (lower-case letters and digits only).
	Norm string
	// Code is the Soundex code of the token ("" without a leading
	// letter).
	Code string

	// DictSrc tags the dictionary the fields below were computed
	// against (pointer identity); consumers must verify it matches
	// their own dictionary before trusting the hit-sets and fall back
	// to a direct lookup otherwise. Nil when unannotated.
	DictSrc any
	// DictID is the interned dictionary id of Token (-1 when the term
	// has no recorded relationship).
	DictID int32
	// DictRel lists the terminological neighbours of Token as (id,
	// similarity) pairs sorted by id.
	DictRel []IDSim

	// TaxSrc tags the taxonomy TaxChain was computed against, like
	// DictSrc. Nil when unannotated.
	TaxSrc any
	// TaxChain is the token's is-a chain in the taxonomy as interned
	// concept ids, the token itself first (depth = slice position).
	// Nil when the token is not a taxonomy concept.
	TaxChain []int32

	gramNs []int
	grams  [][]string // sorted n-gram multisets, parallel to gramNs
}

// NewTokenProfile analyzes one token, precomputing grams for the given
// widths (other widths are computed on demand by Grams).
func NewTokenProfile(tok string, gramNs ...int) *TokenProfile {
	p := &TokenProfile{Token: tok, Norm: normalize(tok), DictID: -1}
	p.Code = soundexNorm(p.Norm)
	if len(gramNs) > 0 {
		p.gramNs = gramNs
		p.grams = make([][]string, len(gramNs))
		for i, n := range gramNs {
			p.grams[i] = sortedGrams(p.Norm, n)
		}
	}
	return p
}

// Grams returns the sorted n-gram multiset of the token's normalized
// form, precomputed when n was profiled.
func (p *TokenProfile) Grams(n int) []string {
	for i, gn := range p.gramNs {
		if gn == n {
			return p.grams[i]
		}
	}
	return sortedGrams(p.Norm, n)
}

// sortedGrams is NGrams over an already-normalized string, sorted so
// that multiset intersections run by linear merge instead of a map.
func sortedGrams(norm string, n int) []string {
	out := gramsNorm(norm, n)
	sort.Strings(out)
	return out
}

// sortedCommon counts the multiset intersection of two sorted slices.
func sortedCommon(a, b []string) int {
	common, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return common
}

// AffixSimProfile is AffixSim over precomputed profiles.
func AffixSimProfile(a, b *TokenProfile) float64 { return affixSimNorm(a.Norm, b.Norm) }

// NGramSimProfile is NGramSim over precomputed profiles.
func NGramSimProfile(a, b *TokenProfile, n int) float64 {
	ga, gb := a.Grams(n), b.Grams(n)
	if len(ga) == 0 || len(gb) == 0 {
		if a.Norm == b.Norm && a.Norm != "" {
			return 1
		}
		return 0
	}
	return 2 * float64(sortedCommon(ga, gb)) / float64(len(ga)+len(gb))
}

// EditDistanceSimProfile is EditDistanceSim over precomputed profiles.
func EditDistanceSimProfile(a, b *TokenProfile) float64 {
	return editDistanceSimNorm(a.Norm, b.Norm)
}

// SoundexSimProfile is SoundexSim over precomputed profiles.
func SoundexSimProfile(a, b *TokenProfile) float64 { return soundexSimCodes(a.Code, b.Code) }

// NameProfile is the analyzed form of one element name: the expanded
// token set of TokenSet plus one TokenProfile per token. Building one
// profile per schema element up front reduces the name pre-processing
// cost of a match from O(m·n) re-tokenizations to O(m+n).
type NameProfile struct {
	// Name is the original element name.
	Name string
	// Tokens is the final token set (TokenSet order); it doubles as the
	// key set of per-pair token similarity grids.
	Tokens []string
	// Profiles holds the per-token analysis, parallel to Tokens.
	Profiles []*TokenProfile
}

// NewNameProfile tokenizes and expands name (see TokenSet) and profiles
// every resulting token for the given gram widths.
func NewNameProfile(name string, expand func(string) []string, gramNs ...int) *NameProfile {
	tokens := TokenSet(name, expand)
	p := &NameProfile{Name: name, Tokens: tokens, Profiles: make([]*TokenProfile, len(tokens))}
	for i, tok := range tokens {
		p.Profiles[i] = NewTokenProfile(tok, gramNs...)
	}
	return p
}

// Annotate applies fn to every token profile of the name; package
// analysis uses it to install the per-token dictionary and taxonomy
// hit-sets.
func (p *NameProfile) Annotate(fn func(*TokenProfile)) {
	for _, tp := range p.Profiles {
		fn(tp)
	}
}
