package repository

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/simcube"
)

func TestDecodeSchemaCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,               // empty
		{0xFF},            // truncated uvarint
		{0x02, 'a'},       // string length beyond buffer
		{0x01, 'x', 0x00}, /* name "x", node count 0 */
	}
	for i, buf := range cases {
		if _, err := decodeSchema(buf); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Out-of-range child index.
	var e encoder
	e.str("s")
	e.uvarint(1) // one node
	e.str("root")
	e.str("")
	e.uvarint(0) // kind
	e.uvarint(0) // annotations
	e.uvarint(1) // one child
	e.uvarint(9) // index out of range
	if _, err := decodeSchema(e.buf); err == nil {
		t.Error("out-of-range child index should fail")
	}
}

func TestDecodeMappingCorrupt(t *testing.T) {
	if _, _, err := decodeMapping(nil); err == nil {
		t.Error("empty mapping payload should fail")
	}
	var e encoder
	e.str("tag")
	e.str("A")
	e.str("B")
	e.uvarint(2) // two correspondences, but none encoded
	if _, _, err := decodeMapping(e.buf); err == nil {
		t.Error("truncated correspondences should fail")
	}
}

func TestDecodeCubeCorrupt(t *testing.T) {
	if _, _, err := decodeCube(nil); err == nil {
		t.Error("empty cube payload should fail")
	}
	var e encoder
	e.str("key")
	e.uvarint(1)
	e.str("r")
	e.uvarint(1)
	e.str("c")
	e.uvarint(1)   // one layer
	e.str("Layer") // but no float data follows
	if _, _, err := decodeCube(e.buf); err == nil {
		t.Error("truncated layer data should fail")
	}
}

func TestEncodeDecodeAnnotationsSorted(t *testing.T) {
	s := schema.New("anno")
	n := schema.NewNode("x")
	n.SetAnnotation("zeta", "1")
	n.SetAnnotation("alpha", "2")
	n.SetAnnotation("mid", "3")
	s.Root.AddChild(n)
	a := encodeSchema(s)
	b := encodeSchema(s)
	if string(a) != string(b) {
		t.Error("encoding is not deterministic across runs")
	}
	back, err := decodeSchema(a)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Root.Children()[0]
	for k, want := range map[string]string{"zeta": "1", "alpha": "2", "mid": "3"} {
		if got.Annotation(k) != want {
			t.Errorf("annotation %s = %q", k, got.Annotation(k))
		}
	}
}

func TestMappingSimilaritiesExactRoundtrip(t *testing.T) {
	m := simcube.NewMapping("A", "B")
	m.Add("x", "y", 0.123456789)
	m.Add("p", "q", 1.0)
	tag, back, err := decodeMapping(encodeMapping("t", m))
	if err != nil {
		t.Fatal(err)
	}
	if tag != "t" {
		t.Errorf("tag = %q", tag)
	}
	if sim, _ := back.Get("x", "y"); sim != 0.123456789 {
		t.Errorf("float fidelity lost: %v", sim)
	}
}

func TestOpenOnDirectoryFails(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("opening a directory should fail")
	}
}
