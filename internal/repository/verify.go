package repository

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// VerifyReport is the result of an offline integrity check of one log
// file: the RecoveryReport a real open would produce, plus checks an
// open does not need — payload decodability and sequence continuity.
type VerifyReport struct {
	RecoveryReport
	// Records counts valid frames in the log itself (including any a
	// snapshot supersedes); CheckpointRecords counts frames in a legacy
	// flat checkpoint; PageRecords counts records in the page file.
	Records           int `json:"records"`
	CheckpointRecords int `json:"checkpointRecords,omitempty"`
	PageRecords       int `json:"pageRecords,omitempty"`
	// DecodeErrors counts CRC-valid records whose payload fails to
	// decode (an encoder bug or version skew, not media damage).
	DecodeErrors int `json:"decodeErrors,omitempty"`
	// SeqGaps counts adjacent valid records whose sequences are not
	// consecutive — records vanished without visible damage. A log
	// tail that does not continue the page-file watermark counts as a
	// gap.
	SeqGaps int `json:"seqGaps,omitempty"`
}

// OK reports a fully healthy store: nothing damaged, nothing skipped,
// every payload decodable, sequences contiguous, current format.
func (v *VerifyReport) OK() bool {
	return v.Clean() && v.DecodeErrors == 0 && v.SeqGaps == 0
}

// String renders the verify result in fsck-output form.
func (v *VerifyReport) String() string {
	s := v.RecoveryReport.String()
	if v.PageRecords > 0 {
		s += fmt.Sprintf(", %d paged records", v.PageRecords)
	}
	if v.DecodeErrors > 0 {
		s += fmt.Sprintf(", %d undecodable payloads", v.DecodeErrors)
	}
	if v.SeqGaps > 0 {
		s += fmt.Sprintf(", %d sequence gaps", v.SeqGaps)
	}
	return s
}

// decodeCheck decodes one payload without applying it.
func decodeCheck(kind byte, payload []byte) error {
	switch kind {
	case kindSchema:
		_, err := decodeSchema(payload)
		return err
	case kindMapping:
		_, _, err := decodeMapping(payload)
		return err
	case kindCube:
		_, _, err := decodeCube(payload)
		return err
	case kindSchemaDel, kindMappingDel, kindCubeDel:
		d := decoder{buf: payload}
		d.str()
		return d.err
	case kindRewrite:
		if len(payload) != 8 {
			return fmt.Errorf("repository: rewrite marker payload is %d bytes, want 8", len(payload))
		}
		return nil
	default:
		return fmt.Errorf("repository: unknown record kind %d", kind)
	}
}

// verifyPageFile checks the page file next to path, if any: header,
// per-page checksums, and every record payload (overflow chains
// followed). markerSeq is the log's highest rewrite-marker sequence —
// a marker above the snapshot watermark means the log superseded the
// file and an open would ignore it, so verify does too.
func verifyPageFile(path string, markerSeq uint64, v *VerifyReport) (watermark uint64, exists, usable bool, err error) {
	pf, exists, damaged, err := openPageFile(OSFS, path)
	if err != nil {
		return 0, false, false, err
	}
	if !exists {
		return 0, false, false, nil
	}
	if damaged {
		v.CheckpointDamaged = true
		return 0, true, false, nil
	}
	defer pf.Close()
	if markerSeq > pf.watermark {
		// Stale snapshot a crashed rewrite left behind; open discards
		// it. Not an integrity failure of the current state.
		return 0, false, false, nil
	}
	v.PageFileUsed = true
	v.CheckpointUsed = true
	pool := newBufferPool(64, pf.readPage, nil)
	var locs []recLoc
	pageDamaged, err := pf.scanPages(func(kind byte, key string, loc recLoc) {
		locs = append(locs, loc)
	})
	if err != nil {
		return pf.watermark, true, true, err
	}
	v.PagesDamaged = len(pageDamaged)
	for _, loc := range locs {
		kind, _, payload, err := pf.record(pool, loc)
		if err != nil {
			// An unreadable payload behind a valid directory entry is a
			// damaged overflow chain.
			v.PagesDamaged++
			continue
		}
		v.PageRecords++
		if derr := decodeCheck(kind, payload); derr != nil {
			v.DecodeErrors++
		}
	}
	return pf.watermark, true, true, nil
}

// Verify checks the repository files at path without modifying them:
// log frame CRCs, sequence continuity, payload decodability, the page
// file's per-page checksums and records, and its watermark continuity
// with the log tail. It errors only when the file cannot be read or
// holds no recognizable repository data; damage is reported, not
// fatal.
func Verify(path string) (*VerifyReport, error) {
	f, err := OSFS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	buf, err := readAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	v := &VerifyReport{RecoveryReport: RecoveryReport{Path: path}}
	start := len(fileMagicV2)
	switch {
	case len(buf) == 0:
		return v, nil
	case bytes.HasPrefix(buf, fileMagicV2):
		// An exactly-header file still falls through: a snapshot may
		// hold the whole store (the post-checkpoint steady state).
	case bytes.HasPrefix(buf, fileMagicV1):
		return verifyV1(buf, v)
	case len(buf) < len(fileMagicV2) &&
		(bytes.HasPrefix(fileMagicV2, buf) || bytes.HasPrefix(fileMagicV1, buf)):
		v.TruncatedBytes = int64(len(buf))
		return v, nil
	default:
		start = 0 // damaged header: scan the whole file
	}
	// First log pass: collect frames, find rewrite markers (they
	// decide which snapshot an open would trust).
	type frame struct {
		seq     uint64
		kind    byte
		payload []byte
	}
	var frames []frame
	var markerSeq uint64
	scan, err := scanLog(buf[start:], int64(start), func(seq uint64, kind byte, payload []byte) error {
		if kind == kindRewrite && seq > markerSeq {
			markerSeq = seq
		}
		frames = append(frames, frame{seq, kind, payload})
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Snapshot: page file first, legacy flat checkpoint as fallback —
	// mirroring what replay would trust.
	watermark, pfExists, pfUsable, err := verifyPageFile(path, markerSeq, v)
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	if !pfUsable && markerSeq == 0 {
		var ckptExists, ckptDamaged bool
		watermark, ckptExists, ckptDamaged, err = loadCheckpoint(OSFS, path, func(kind byte, payload []byte) error {
			v.CheckpointRecords++
			if derr := decodeCheck(kind, payload); derr != nil {
				v.DecodeErrors++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("repository: verify %s: %w", path, err)
		}
		v.CheckpointUsed = v.CheckpointUsed || (ckptExists && !(ckptDamaged && watermark == 0))
		v.CheckpointDamaged = v.CheckpointDamaged || ckptDamaged
		pfExists = pfExists || ckptExists
	}
	v.Recovered = v.CheckpointRecords + v.PageRecords
	var prevSeq uint64
	for _, fr := range frames {
		v.Records++
		if prevSeq != 0 && fr.seq != prevSeq+1 {
			v.SeqGaps++
		}
		prevSeq = fr.seq
		if derr := decodeCheck(fr.kind, fr.payload); derr != nil {
			v.DecodeErrors++
		}
		if fr.seq > watermark {
			v.Recovered++
		}
	}
	// Watermark continuity: a healthy tail continues the snapshot at
	// watermark+1 (a rewritten log restarts above it instead and is
	// exempt — its first frame is the marker).
	if pfUsable && len(frames) > 0 && markerSeq == 0 && frames[0].seq > watermark+1 {
		v.SeqGaps++
	}
	if start == 0 && v.Records == 0 && !pfExists {
		return nil, fmt.Errorf("repository: %s is not a repository file", path)
	}
	v.SkippedRanges = scan.skipped
	for _, br := range scan.skipped {
		v.SkippedBytes += br.Len
	}
	v.TruncatedBytes = scan.truncated
	if start == 0 {
		v.Salvaged = true // a real open would salvage-rewrite
	}
	return v, nil
}

// verifyV1 checks a legacy version-1 log; it is never OK (an open
// would upgrade it to version 2).
func verifyV1(buf []byte, v *VerifyReport) (*VerifyReport, error) {
	off, err := legacyScan(buf, func(kind byte, payload []byte) error {
		v.Records++
		v.Recovered++
		if derr := decodeCheck(kind, payload); derr != nil {
			v.DecodeErrors++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	v.TruncatedBytes = int64(len(buf) - off)
	v.UpgradedV1 = true
	return v, nil
}

// VerifyStore verifies a repository path: a single log file, or a
// sharded repository directory (every shard-*.repo inside, sorted).
func VerifyStore(path string) ([]*VerifyReport, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	if !info.IsDir() {
		v, err := Verify(path)
		if err != nil {
			return nil, err
		}
		return []*VerifyReport{v}, nil
	}
	shards, err := filepath.Glob(filepath.Join(path, "shard-*.repo"))
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("repository: %s holds no shard logs", path)
	}
	sort.Strings(shards)
	out := make([]*VerifyReport, 0, len(shards))
	for _, p := range shards {
		v, err := Verify(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// RepairStore opens (salvaging as needed) and closes every log under
// path — a single file or a sharded directory — returning what each
// open recovered. Damaged logs and page files come back rewritten and
// whole: records on damaged pages are dropped and the surviving state
// folded into a fresh self-contained log, exactly as a serving open
// would recover.
func RepairStore(path string) ([]*RecoveryReport, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("repository: repair %s: %w", path, err)
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "shard-*.repo"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("repository: %s holds no shard logs", path)
		}
		sort.Strings(files)
	}
	out := make([]*RecoveryReport, 0, len(files))
	for _, p := range files {
		r, err := Open(p)
		if err != nil {
			return nil, err
		}
		rep := r.RecoveryReport()
		if err := r.Close(); err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
