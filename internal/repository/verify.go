package repository

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// VerifyReport is the result of an offline integrity check of one log
// file: the RecoveryReport a real open would produce, plus checks an
// open does not need — payload decodability and sequence continuity.
type VerifyReport struct {
	RecoveryReport
	// Records counts valid frames in the log itself (including any a
	// checkpoint supersedes); CheckpointRecords counts frames in the
	// snapshot.
	Records           int `json:"records"`
	CheckpointRecords int `json:"checkpointRecords,omitempty"`
	// DecodeErrors counts CRC-valid records whose payload fails to
	// decode (an encoder bug or version skew, not media damage).
	DecodeErrors int `json:"decodeErrors,omitempty"`
	// SeqGaps counts adjacent valid records whose sequences are not
	// consecutive — records vanished without visible damage.
	SeqGaps int `json:"seqGaps,omitempty"`
}

// OK reports a fully healthy log: nothing damaged, nothing skipped,
// every payload decodable, sequences contiguous, current format.
func (v *VerifyReport) OK() bool {
	return v.Clean() && v.DecodeErrors == 0 && v.SeqGaps == 0
}

// String renders the verify result in fsck-output form.
func (v *VerifyReport) String() string {
	s := v.RecoveryReport.String()
	if v.DecodeErrors > 0 {
		s += fmt.Sprintf(", %d undecodable payloads", v.DecodeErrors)
	}
	if v.SeqGaps > 0 {
		s += fmt.Sprintf(", %d sequence gaps", v.SeqGaps)
	}
	return s
}

// decodeCheck decodes one payload without applying it.
func decodeCheck(kind byte, payload []byte) error {
	switch kind {
	case kindSchema:
		_, err := decodeSchema(payload)
		return err
	case kindMapping:
		_, _, err := decodeMapping(payload)
		return err
	case kindCube:
		_, _, err := decodeCube(payload)
		return err
	case kindSchemaDel, kindMappingDel, kindCubeDel:
		d := decoder{buf: payload}
		d.str()
		return d.err
	default:
		return fmt.Errorf("repository: unknown record kind %d", kind)
	}
}

// Verify checks the log file at path without modifying it: frame CRCs,
// sequence continuity, payload decodability, and the checkpoint
// snapshot if one exists. It errors only when the file cannot be read
// or holds no recognizable repository data; damage is reported, not
// fatal.
func Verify(path string) (*VerifyReport, error) {
	f, err := OSFS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	buf, err := readAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	v := &VerifyReport{RecoveryReport: RecoveryReport{Path: path}}
	start := len(fileMagicV2)
	switch {
	case len(buf) == 0:
		return v, nil
	case bytes.HasPrefix(buf, fileMagicV2):
		// An exactly-header file still falls through: a checkpoint may
		// hold the whole store (the post-checkpoint steady state).
	case bytes.HasPrefix(buf, fileMagicV1):
		return verifyV1(buf, v)
	case len(buf) < len(fileMagicV2) &&
		(bytes.HasPrefix(fileMagicV2, buf) || bytes.HasPrefix(fileMagicV1, buf)):
		v.TruncatedBytes = int64(len(buf))
		return v, nil
	default:
		start = 0 // damaged header: scan the whole file
	}
	// Checkpoint first, mirroring what replay would trust.
	watermark, ckptExists, ckptDamaged, err := loadCheckpoint(OSFS, path, func(kind byte, payload []byte) error {
		v.CheckpointRecords++
		if derr := decodeCheck(kind, payload); derr != nil {
			v.DecodeErrors++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	v.CheckpointUsed = ckptExists && !(ckptDamaged && watermark == 0)
	v.CheckpointDamaged = ckptDamaged
	v.Recovered = v.CheckpointRecords
	var prevSeq uint64
	scan, err := scanLog(buf[start:], int64(start), func(seq uint64, kind byte, payload []byte) error {
		v.Records++
		if prevSeq != 0 && seq != prevSeq+1 {
			v.SeqGaps++
		}
		prevSeq = seq
		if derr := decodeCheck(kind, payload); derr != nil {
			v.DecodeErrors++
		}
		if seq > watermark {
			v.Recovered++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if start == 0 && v.Records == 0 && !ckptExists {
		return nil, fmt.Errorf("repository: %s is not a repository file", path)
	}
	v.SkippedRanges = scan.skipped
	for _, br := range scan.skipped {
		v.SkippedBytes += br.Len
	}
	v.TruncatedBytes = scan.truncated
	if start == 0 {
		v.Salvaged = true // a real open would salvage-rewrite
	}
	return v, nil
}

// verifyV1 checks a legacy version-1 log; it is never OK (an open
// would upgrade it to version 2).
func verifyV1(buf []byte, v *VerifyReport) (*VerifyReport, error) {
	off, err := legacyScan(buf, func(kind byte, payload []byte) error {
		v.Records++
		v.Recovered++
		if derr := decodeCheck(kind, payload); derr != nil {
			v.DecodeErrors++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	v.TruncatedBytes = int64(len(buf) - off)
	v.UpgradedV1 = true
	return v, nil
}

// VerifyStore verifies a repository path: a single log file, or a
// sharded repository directory (every shard-*.repo inside, sorted).
func VerifyStore(path string) ([]*VerifyReport, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("repository: verify %s: %w", path, err)
	}
	if !info.IsDir() {
		v, err := Verify(path)
		if err != nil {
			return nil, err
		}
		return []*VerifyReport{v}, nil
	}
	shards, err := filepath.Glob(filepath.Join(path, "shard-*.repo"))
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("repository: %s holds no shard logs", path)
	}
	sort.Strings(shards)
	out := make([]*VerifyReport, 0, len(shards))
	for _, p := range shards {
		v, err := Verify(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// RepairStore opens (salvaging as needed) and closes every log under
// path — a single file or a sharded directory — returning what each
// open recovered. Damaged logs come back rewritten and whole; intact
// logs are untouched.
func RepairStore(path string) ([]*RecoveryReport, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("repository: repair %s: %w", path, err)
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "shard-*.repo"))
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("repository: %s holds no shard logs", path)
		}
		sort.Strings(files)
	}
	out := make([]*RecoveryReport, 0, len(files))
	for _, p := range files {
		r, err := Open(p)
		if err != nil {
			return nil, err
		}
		rep := r.RecoveryReport()
		if err := r.Close(); err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
