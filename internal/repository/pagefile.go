package repository

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Page file: the paged form of a checkpoint snapshot. Where the legacy
// checkpoint was a flat record stream that had to be replayed into
// memory wholesale, the page file is a random-access heap of
// fixed-size slotted pages: open builds only a key directory (keys and
// page locations, no payloads), and payloads stream through the buffer
// pool on demand — so the store serves repositories larger than
// memory and restarts without decoding a byte it is not asked for.
//
// Layout:
//
//	file header (32B):
//	  [12B magic "COMA.page\x001\n"][4B LE pageSize][4B LE pageCount]
//	  [8B LE watermark][4B CRC32 of the preceding 28 bytes]
//	pages: pageCount fixed-size pages, page i at 32 + i*pageSize
//
//	page (pageSize B):
//	  header (20B): [4B CRC32 of the page with this field zeroed]
//	    [4B LE pageNo][8B LE watermark][2B LE nSlots][1B kind][1B pad]
//	  slot table: nSlots × [2B LE off][2B LE len] (off from page start)
//	  record heap: the slots' bytes
//
//	record (inside its slot):
//	  [1B record kind][uvarint keyLen][key][1B overflow flag]
//	  flag 0: [payload] (to the end of the slot)
//	  flag 1: [4B LE overflow page][4B LE payload len] — the payload
//	          fills consecutive overflow pages' data areas
//
// The watermark is the log sequence the snapshot folds (every page
// repeats it, so a page spliced in from another snapshot generation is
// detectable); records appended to the log afterwards carry strictly
// larger sequences and replay over the page file on open. Every page
// carries its own CRC: one damaged page costs that page's records (the
// open salvages the rest), not the snapshot.
var pageMagic = []byte("COMA.page\x001\n")

const (
	pageFileHdrSize = 32
	pageHdrSize     = 20
	slotSize        = 4

	// DefaultPageSize is the page size new page files are written with.
	DefaultPageSize = 16 << 10
	minPageSize     = 512
	maxPageSize     = 1 << 16 // slot offsets/lengths are 16-bit

	pageKindData     = 0
	pageKindOverflow = 1
)

// pageSuffix names a repository's page file next to its log.
const pageSuffix = ".pages"

func pagePath(logPath string) string { return logPath + pageSuffix }

// recLoc addresses one record in the page file.
type recLoc struct {
	page uint32
	slot uint16
}

// pageRecord is the builder's input: one live record plus its key.
type pageRecord struct {
	kind    byte
	key     string
	payload []byte
}

// recHeaderLen returns the record's in-slot header size (kind + key +
// flag), shared by the inline and overflow forms.
func recHeaderLen(key string) int {
	return 1 + uvarintLen(uint64(len(key))) + len(key) + 1
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// buildPageFile lays the records out into a page-file image and
// returns it together with the location of each record (parallel to
// recs). Records whose inline form does not fit a fresh page move
// their payload to a chain of dedicated overflow pages.
func buildPageFile(pageSize int, watermark uint64, recs []pageRecord) ([]byte, []recLoc, error) {
	if pageSize < minPageSize || pageSize > maxPageSize {
		return nil, nil, fmt.Errorf("repository: page size %d outside [%d, %d]", pageSize, minPageSize, maxPageSize)
	}
	heapCap := pageSize - pageHdrSize

	// Pass 1: assign records to data pages. A page holds records whose
	// slot entries plus bytes fit its heap capacity.
	type placed struct {
		rec      int  // index into recs
		overflow bool // payload moved to an overflow chain
	}
	var dataPages [][]placed
	var cur []placed
	used := 0
	var overflowRecs []int // recs indices with overflow payloads, in order
	flush := func() {
		if len(cur) > 0 {
			dataPages = append(dataPages, cur)
			cur, used = nil, 0
		}
	}
	for i, rec := range recs {
		hdr := recHeaderLen(rec.key)
		if hdr+slotSize > heapCap {
			return nil, nil, fmt.Errorf("repository: record key of %d bytes does not fit a %d-byte page", len(rec.key), pageSize)
		}
		inline := hdr + len(rec.payload)
		if slotSize+inline <= heapCap-used {
			cur = append(cur, placed{rec: i})
			used += slotSize + inline
			continue
		}
		if slotSize+inline <= heapCap {
			// Fits a fresh page: close this one and continue inline.
			flush()
			cur = append(cur, placed{rec: i})
			used += slotSize + inline
			continue
		}
		// Too large for any page inline: overflow form (hdr + 8B ref).
		if slotSize+hdr+8 > heapCap-used {
			flush()
		}
		cur = append(cur, placed{rec: i, overflow: true})
		used += slotSize + hdr + 8
		overflowRecs = append(overflowRecs, i)
	}
	flush()

	// Overflow chains are appended after the data pages; assign each
	// its first page number now so pass 2 can emit final bytes.
	nData := len(dataPages)
	ovStart := make(map[int]uint32, len(overflowRecs))
	next := uint32(nData)
	for _, ri := range overflowRecs {
		ovStart[ri] = next
		n := (len(recs[ri].payload) + heapCap - 1) / heapCap
		if n == 0 {
			n = 1
		}
		next += uint32(n)
	}
	pageCount := next

	// Pass 2: emit the image.
	out := make([]byte, 0, pageFileHdrSize+int(pageCount)*pageSize)
	out = append(out, pageMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(pageSize))
	out = binary.LittleEndian.AppendUint32(out, pageCount)
	out = binary.LittleEndian.AppendUint64(out, watermark)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	locs := make([]recLoc, len(recs))
	page := make([]byte, pageSize)
	emitPage := func(pageNo uint32, kind byte, nSlots int, fill func(p []byte)) {
		clear(page)
		binary.LittleEndian.PutUint32(page[4:8], pageNo)
		binary.LittleEndian.PutUint64(page[8:16], watermark)
		binary.LittleEndian.PutUint16(page[16:18], uint16(nSlots))
		page[18] = kind
		fill(page)
		binary.LittleEndian.PutUint32(page[0:4], 0)
		binary.LittleEndian.PutUint32(page[0:4], crc32.ChecksumIEEE(page))
		out = append(out, page...)
	}

	for pi, pl := range dataPages {
		emitPage(uint32(pi), pageKindData, len(pl), func(p []byte) {
			heap := pageHdrSize + len(pl)*slotSize
			for si, pc := range pl {
				rec := recs[pc.rec]
				start := heap
				p[heap] = rec.kind
				heap++
				heap += binary.PutUvarint(p[heap:], uint64(len(rec.key)))
				heap += copy(p[heap:], rec.key)
				if pc.overflow {
					p[heap] = 1
					heap++
					binary.LittleEndian.PutUint32(p[heap:], ovStart[pc.rec])
					binary.LittleEndian.PutUint32(p[heap+4:], uint32(len(rec.payload)))
					heap += 8
				} else {
					p[heap] = 0
					heap++
					heap += copy(p[heap:], rec.payload)
				}
				slot := pageHdrSize + si*slotSize
				binary.LittleEndian.PutUint16(p[slot:], uint16(start))
				binary.LittleEndian.PutUint16(p[slot+2:], uint16(heap-start))
				locs[pc.rec] = recLoc{page: uint32(pi), slot: uint16(si)}
			}
		})
	}
	for _, ri := range overflowRecs {
		payload := recs[ri].payload
		no := ovStart[ri]
		for off := 0; ; off += heapCap {
			n := min(heapCap, len(payload)-off)
			chunk := payload[off : off+n]
			emitPage(no, pageKindOverflow, 0, func(p []byte) {
				// nSlots doubles as the chunk length for overflow pages
				// (16-bit suffices: heapCap < 64K).
				binary.LittleEndian.PutUint16(p[16:18], uint16(n))
				copy(p[pageHdrSize:], chunk)
			})
			no++
			if off+n >= len(payload) {
				break
			}
		}
	}
	return out, locs, nil
}

// pageFile is an open page file: the random-access half of a
// checkpoint. Reads go through readPage (CRC-checked); callers cache
// frames in a bufferPool.
type pageFile struct {
	f         File
	pageSize  int
	pageCount uint32
	watermark uint64
}

// openPageFile opens the page file next to logPath. exists is false
// when there is none. A file whose header is unreadable or whose
// checksum fails is reported as exists && damaged with a nil pageFile
// — the caller falls back to log replay, exactly as for a damaged
// legacy checkpoint.
func openPageFile(fsys FS, logPath string) (pf *pageFile, exists, damaged bool, err error) {
	f, err := fsys.OpenFile(pagePath(logPath), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, false, nil
		}
		return nil, false, false, err
	}
	var hdr [pageFileHdrSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, true, true, nil
	}
	if string(hdr[:len(pageMagic)]) != string(pageMagic) ||
		crc32.ChecksumIEEE(hdr[:28]) != binary.LittleEndian.Uint32(hdr[28:32]) {
		f.Close()
		return nil, true, true, nil
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if pageSize < minPageSize || pageSize > maxPageSize {
		f.Close()
		return nil, true, true, nil
	}
	return &pageFile{
		f:         f,
		pageSize:  pageSize,
		pageCount: binary.LittleEndian.Uint32(hdr[16:20]),
		watermark: binary.LittleEndian.Uint64(hdr[20:28]),
	}, true, false, nil
}

func (pf *pageFile) Close() error {
	if pf == nil || pf.f == nil {
		return nil
	}
	err := pf.f.Close()
	pf.f = nil
	return err
}

// readPage reads and checksums page no. The caller serializes access
// (the buffer pool's fetch path holds its lock).
func (pf *pageFile) readPage(no uint32) ([]byte, error) {
	if no >= pf.pageCount {
		return nil, fmt.Errorf("repository: page %d beyond page count %d", no, pf.pageCount)
	}
	if _, err := pf.f.Seek(int64(pageFileHdrSize)+int64(no)*int64(pf.pageSize), io.SeekStart); err != nil {
		return nil, err
	}
	buf := make([]byte, pf.pageSize)
	if _, err := io.ReadFull(pf.f, buf); err != nil {
		return nil, fmt.Errorf("repository: read page %d: %w", no, err)
	}
	if err := checkPage(buf, no, pf.watermark); err != nil {
		return nil, err
	}
	return buf, nil
}

// checkPage validates one page image: checksum, self-identified page
// number, and snapshot watermark.
func checkPage(buf []byte, no uint32, watermark uint64) error {
	want := binary.LittleEndian.Uint32(buf[0:4])
	cp := make([]byte, 4)
	crc := crc32.NewIEEE()
	crc.Write(cp)
	crc.Write(buf[4:])
	if crc.Sum32() != want {
		return fmt.Errorf("repository: page %d checksum mismatch", no)
	}
	if got := binary.LittleEndian.Uint32(buf[4:8]); got != no {
		return fmt.Errorf("repository: page %d self-identifies as %d", no, got)
	}
	if got := binary.LittleEndian.Uint64(buf[8:16]); got != watermark {
		return fmt.Errorf("repository: page %d watermark %d differs from snapshot watermark %d", no, got, watermark)
	}
	return nil
}

// parseSlot returns the record header fields of slot si in a data
// page: the record kind, key, and either the inline payload (sliced
// from the page, not copied) or the overflow chain reference.
func parseSlot(page []byte, si int) (kind byte, key string, inline []byte, ovPage, ovLen uint32, err error) {
	nSlots := int(binary.LittleEndian.Uint16(page[16:18]))
	if si >= nSlots {
		return 0, "", nil, 0, 0, fmt.Errorf("repository: slot %d beyond slot count %d", si, nSlots)
	}
	se := pageHdrSize + si*slotSize
	off := int(binary.LittleEndian.Uint16(page[se:]))
	length := int(binary.LittleEndian.Uint16(page[se+2:]))
	if off+length > len(page) || length < 3 {
		return 0, "", nil, 0, 0, fmt.Errorf("repository: slot %d out of bounds", si)
	}
	rec := page[off : off+length]
	kind = rec[0]
	keyLen, n := binary.Uvarint(rec[1:])
	if n <= 0 || 1+n+int(keyLen)+1 > len(rec) {
		return 0, "", nil, 0, 0, fmt.Errorf("repository: slot %d malformed key", si)
	}
	key = string(rec[1+n : 1+n+int(keyLen)])
	rest := rec[1+n+int(keyLen):]
	if rest[0] == 0 {
		return kind, key, rest[1:], 0, 0, nil
	}
	if len(rest) != 9 {
		return 0, "", nil, 0, 0, fmt.Errorf("repository: slot %d malformed overflow reference", si)
	}
	return kind, key, nil, binary.LittleEndian.Uint32(rest[1:5]), binary.LittleEndian.Uint32(rest[5:9]), nil
}

// scanPages walks every page of the file sequentially, delivering each
// data-page record's directory entry (kind, key, location) to emit.
// Damaged pages are collected, not fatal: their records are lost, the
// rest of the snapshot survives. The scan reads pages directly (no
// pool) — it runs once, at open, before the pool exists.
func (pf *pageFile) scanPages(emit func(kind byte, key string, loc recLoc)) (damaged []uint32, err error) {
	for no := uint32(0); no < pf.pageCount; no++ {
		buf, err := pf.readPage(no)
		if err != nil {
			// CRC mismatch or a short read: this page's records are
			// lost; every other page is addressed absolutely, so the
			// scan continues.
			damaged = append(damaged, no)
			continue
		}
		if buf[18] != pageKindData {
			continue
		}
		nSlots := int(binary.LittleEndian.Uint16(buf[16:18]))
		for si := 0; si < nSlots; si++ {
			kind, key, _, _, _, err := parseSlot(buf, si)
			if err != nil {
				damaged = append(damaged, no)
				break
			}
			emit(kind, key, recLoc{page: no, slot: uint16(si)})
		}
	}
	return damaged, nil
}

// record reads one record's kind, key and payload through the buffer
// pool, following the overflow chain when the payload lives outside
// the data page. The returned payload is a private copy.
func (pf *pageFile) record(pool *bufferPool, loc recLoc) (kind byte, key string, payload []byte, err error) {
	fr, err := pool.pin(loc.page)
	if err != nil {
		return 0, "", nil, err
	}
	kind, key, inline, ovPage, ovLen, err := parseSlot(fr.buf, int(loc.slot))
	if err != nil {
		pool.unpin(fr)
		return 0, "", nil, err
	}
	if inline != nil {
		payload = append([]byte(nil), inline...)
		pool.unpin(fr)
		return kind, key, payload, nil
	}
	pool.unpin(fr)
	heapCap := pf.pageSize - pageHdrSize
	payload = make([]byte, 0, ovLen)
	for no := ovPage; uint32(len(payload)) < ovLen; no++ {
		ofr, err := pool.pin(no)
		if err != nil {
			return 0, "", nil, err
		}
		if ofr.buf[18] != pageKindOverflow {
			pool.unpin(ofr)
			return 0, "", nil, fmt.Errorf("repository: page %d: overflow chain runs into a data page", no)
		}
		n := int(binary.LittleEndian.Uint16(ofr.buf[16:18]))
		if n > heapCap || uint32(len(payload)+n) > ovLen {
			pool.unpin(ofr)
			return 0, "", nil, fmt.Errorf("repository: page %d: overflow chunk overruns payload length", no)
		}
		payload = append(payload, ofr.buf[pageHdrSize:pageHdrSize+n]...)
		pool.unpin(ofr)
	}
	return kind, key, payload, nil
}
