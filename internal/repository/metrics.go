package repository

import (
	"time"

	"repro/internal/metrics"
)

// StorageMetrics carries the durability instruments one or more Repos
// observe into: fsync latency on the per-append path, group-commit
// flush latency, whole-checkpoint duration, and recovery outcomes at
// Open. A Sharded store shares one StorageMetrics across its shards so
// the exposed series aggregate the whole directory. All fields may be
// nil (the instruments are nil-safe), and a nil *StorageMetrics is a
// valid no-op, so the storage hot path carries no conditionals.
type StorageMetrics struct {
	// AppendFsync times the per-record fsync under SyncAlways.
	AppendFsync *metrics.Histogram
	// GroupCommit times the deferred flush (the interval syncer's tick
	// and explicit Sync barriers).
	GroupCommit *metrics.Histogram
	// Checkpoint times Checkpoint end to end: snapshot write, fsync,
	// rename, directory sync, log truncation.
	Checkpoint *metrics.Histogram
	// OpensClean counts Opens whose replay needed no recovery;
	// OpensRecovered counts Opens that salvaged, truncated a torn tail,
	// or upgraded a v1 log.
	OpensClean     *metrics.Counter
	OpensRecovered *metrics.Counter
	// PageHits/PageMisses/PageEvictions count buffer-pool traffic: pin
	// requests served from a resident frame, pins that read the page
	// file, and frames evicted by the clock sweep. PagePinned gauges
	// the pages currently pinned by in-flight reads.
	PageHits      *metrics.Counter
	PageMisses    *metrics.Counter
	PageEvictions *metrics.Counter
	PagePinned    *metrics.Gauge
}

// NewStorageMetrics returns a StorageMetrics with every instrument
// allocated (latency histograms over metrics.DurationBuckets).
func NewStorageMetrics() *StorageMetrics {
	return &StorageMetrics{
		AppendFsync:    metrics.NewHistogram(nil),
		GroupCommit:    metrics.NewHistogram(nil),
		Checkpoint:     metrics.NewHistogram(nil),
		OpensClean:     metrics.NewCounter(),
		OpensRecovered: metrics.NewCounter(),
		PageHits:       metrics.NewCounter(),
		PageMisses:     metrics.NewCounter(),
		PageEvictions:  metrics.NewCounter(),
		PagePinned:     metrics.NewGauge(),
	}
}

// Register attaches every instrument to reg under the coma_storage_*
// names served at /metrics.
func (m *StorageMetrics) Register(reg *metrics.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.AttachHistogram("coma_storage_fsync_seconds",
		"Per-append fsync latency under the always durability policy.", m.AppendFsync)
	reg.AttachHistogram("coma_storage_group_commit_seconds",
		"Group-commit flush latency (interval syncer ticks and explicit Sync barriers).", m.GroupCommit)
	reg.AttachHistogram("coma_storage_checkpoint_seconds",
		"Checkpoint duration end to end (snapshot write, fsync, rename, log truncation).", m.Checkpoint)
	reg.CounterFunc("coma_storage_opens_total",
		"Repository opens by recovery outcome (clean replay vs salvage/truncation/upgrade); sums shard opens.",
		func() float64 { return float64(m.OpensClean.Value() + m.OpensRecovered.Value()) })
	reg.CounterFunc("coma_storage_opens_recovered_total",
		"Repository opens whose log needed recovery (salvage, torn-tail truncation, v1 upgrade).",
		func() float64 { return float64(m.OpensRecovered.Value()) })
	reg.AttachCounter("coma_pagecache_hits_total",
		"Buffer-pool pin requests served from a resident page frame.", m.PageHits)
	reg.AttachCounter("coma_pagecache_misses_total",
		"Buffer-pool pin requests that had to read the page file.", m.PageMisses)
	reg.AttachCounter("coma_pagecache_evictions_total",
		"Page frames evicted by the buffer pool's clock sweep.", m.PageEvictions)
	reg.GaugeFunc("coma_pagecache_pinned_pages",
		"Pages currently pinned by in-flight reads, summed over shards.",
		func() float64 { return float64(m.PagePinned.Value()) })
}

// The observe* methods are nil-receiver safe so the storage paths call
// them unconditionally; an unmetered repo pays one pointer test.

func (m *StorageMetrics) observeAppendFsync(start time.Time) {
	if m == nil {
		return
	}
	m.AppendFsync.Observe(time.Since(start).Seconds())
}

func (m *StorageMetrics) observeGroupCommit(start time.Time) {
	if m == nil {
		return
	}
	m.GroupCommit.Observe(time.Since(start).Seconds())
}

func (m *StorageMetrics) observeCheckpoint(start time.Time) {
	if m == nil {
		return
	}
	m.Checkpoint.Observe(time.Since(start).Seconds())
}

func (m *StorageMetrics) observePageHit() {
	if m == nil {
		return
	}
	m.PageHits.Inc()
}

func (m *StorageMetrics) observePageMiss() {
	if m == nil {
		return
	}
	m.PageMisses.Inc()
}

func (m *StorageMetrics) observePageEviction() {
	if m == nil {
		return
	}
	m.PageEvictions.Inc()
}

func (m *StorageMetrics) observePagePinned(d float64) {
	if m == nil {
		return
	}
	m.PagePinned.Add(d)
}

// recordOpen counts one Open outcome.
func (m *StorageMetrics) recordOpen(rep *RecoveryReport) {
	if m == nil || rep == nil {
		return
	}
	if rep.Clean() {
		m.OpensClean.Inc()
	} else {
		m.OpensRecovered.Inc()
	}
}

// WithMetrics wires the repo's durability timings and recovery
// outcomes into m. Passing one StorageMetrics to OpenSharded
// aggregates all shards.
func WithMetrics(m *StorageMetrics) OpenOption {
	return func(c *openConfig) { c.metrics = m }
}
