package repository

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// Store is the repository surface shared by the single-log Repo and the
// Sharded backend: schema, mapping and cube storage plus maintenance.
// Callers that only read and write repository state (the network
// server, the commands) work against this interface so the backing
// layout — one log or N sharded logs — is a deployment choice.
// MappingStore is intentionally absent: its concrete view types differ
// between backends (TagStore vs. ShardedTagStore); both satisfy
// reuse.Store.
type Store interface {
	PutSchema(s *schema.Schema) error
	SwapSchema(s *schema.Schema) (prev *schema.Schema, err error)
	GetSchema(name string) (*schema.Schema, bool)
	DeleteSchema(name string) error
	TakeSchema(name string) (prev *schema.Schema, err error)
	SchemaNames() []string
	Schemas() []*schema.Schema

	PutMapping(tag string, m *simcube.Mapping) error
	GetMapping(tag, from, to string) (*simcube.Mapping, bool)
	DeleteMapping(tag, from, to string) error

	PutCube(key string, c *simcube.Cube) error
	GetCube(key string) (*simcube.Cube, bool)
	DeleteCube(key string) error

	// Get and Iter are the raw-payload paths: encoded record bytes
	// without decoding, streamed through the buffer pool when paged.
	// Iter visits keys sorted per shard (globally sorted on a
	// single-log store).
	Get(k RecordKind, key string) ([]byte, bool)
	Iter(k RecordKind, fn func(key string, payload []byte) error) error
	// PageCacheStats snapshots the buffer pool(s) — summed across
	// shards on a sharded store.
	PageCacheStats() PageCacheStats

	Stats() Stats
	Compact() error
	Checkpoint() error
	Sync() error
	Close() error
}

var (
	_ Store = (*Repo)(nil)
	_ Store = (*Sharded)(nil)
)

// Sharded is an N-shard repository: a directory of independent Repo
// logs ("shard-000.repo", ...), with every record routed to one shard
// by an FNV-1a hash of its key (schema name, mapping source schema, or
// cube key). Each shard carries its own lock and file, so writes and
// reads touching different shards proceed without contention — the
// storage shape of the repository-server scale-out, where one shard's
// append fsync does not serialize the whole store.
//
// Records are hashed consistently per kind: schemas by schema name,
// mappings by their FromSchema (the inverted orientation is resolved at
// read time by also consulting the ToSchema's shard), cubes by the full
// cube key. A Sharded opened with one shard behaves exactly like a
// Repo in a directory.
type Sharded struct {
	dir    string
	shards []*Repo
}

// shardPattern names shard log files inside the repository directory.
const shardPattern = "shard-%03d.repo"

// OpenSharded opens (creating if needed) an n-shard repository rooted
// at dir. A fresh directory is populated with n empty shard logs; an
// existing one must contain exactly n shard files — the shard count is
// part of the on-disk layout, since records are routed by hash modulo
// n and re-sharding requires a rewrite.
func OpenSharded(dir string, n int, opts ...OpenOption) (*Sharded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("repository: non-positive shard count %d", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repository: open sharded %s: %w", dir, err)
	}
	existing, err := filepath.Glob(filepath.Join(dir, "shard-*.repo"))
	if err != nil {
		return nil, fmt.Errorf("repository: open sharded %s: %w", dir, err)
	}
	if len(existing) != 0 && len(existing) != n {
		return nil, fmt.Errorf("repository: %s holds %d shards, opened with %d (shard count is fixed at creation)",
			dir, len(existing), n)
	}
	s := &Sharded{dir: dir, shards: make([]*Repo, n)}
	for i := range s.shards {
		r, err := Open(filepath.Join(dir, fmt.Sprintf(shardPattern, i)), opts...)
		if err != nil {
			for _, open := range s.shards[:i] {
				open.Close()
			}
			return nil, err
		}
		s.shards[i] = r
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Dir returns the repository directory the shard logs live in — the
// anchor for sidecar files (warm-restart snapshots) kept next to them.
func (s *Sharded) Dir() string { return s.dir }

// ShardFor returns the index of the shard holding the given schema
// name (FNV-1a modulo shard count).
func (s *Sharded) ShardFor(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Shard returns the i-th shard's underlying Repo — the unit of
// locking, analysis caching and batch fan-out for the layers above.
func (s *Sharded) Shard(i int) *Repo { return s.shards[i] }

// schemaShard routes a schema name to its shard.
func (s *Sharded) schemaShard(name string) *Repo { return s.shards[s.ShardFor(name)] }

// PutSchema stores (or replaces) a schema in its name's shard.
func (s *Sharded) PutSchema(sc *schema.Schema) error { return s.schemaShard(sc.Name).PutSchema(sc) }

// SwapSchema stores a schema in its name's shard and returns the
// replaced instance (nil when new), atomically within that shard.
func (s *Sharded) SwapSchema(sc *schema.Schema) (*schema.Schema, error) {
	return s.schemaShard(sc.Name).SwapSchema(sc)
}

// GetSchema returns the stored schema with the given name.
func (s *Sharded) GetSchema(name string) (*schema.Schema, bool) {
	return s.schemaShard(name).GetSchema(name)
}

// DeleteSchema removes a schema; deleting a missing schema is a no-op.
func (s *Sharded) DeleteSchema(name string) error { return s.schemaShard(name).DeleteSchema(name) }

// TakeSchema removes a schema from its name's shard and returns the
// removed instance (nil when absent), atomically within that shard.
func (s *Sharded) TakeSchema(name string) (*schema.Schema, error) {
	return s.schemaShard(name).TakeSchema(name)
}

// SchemaNames lists stored schema names across all shards, sorted.
func (s *Sharded) SchemaNames() []string {
	var out []string
	for _, r := range s.shards {
		out = append(out, r.SchemaNames()...)
	}
	sort.Strings(out)
	return out
}

// Schemas returns all stored schemas sorted by name — the same
// candidate-set contract as Repo.Schemas, independent of sharding.
func (s *Sharded) Schemas() []*schema.Schema {
	var out []*schema.Schema
	for _, r := range s.shards {
		out = append(out, r.Schemas()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ShardSchemas returns the i-th shard's schemas sorted by name — the
// per-shard candidate group the batch fan-out matches independently.
func (s *Sharded) ShardSchemas(i int) []*schema.Schema { return s.shards[i].Schemas() }

// PutMapping stores a match result in the shard of its source schema.
func (s *Sharded) PutMapping(tag string, m *simcube.Mapping) error {
	return s.schemaShard(m.FromSchema).PutMapping(tag, m)
}

// GetMapping returns the mapping stored under (tag, from, to), trying
// the inverted orientation as well. Mappings live in their FromSchema's
// shard, so the inverted orientation is looked up in to's shard.
func (s *Sharded) GetMapping(tag, from, to string) (*simcube.Mapping, bool) {
	if m, ok := s.schemaShard(from).GetMapping(tag, from, to); ok {
		return m, true
	}
	if inv := s.schemaShard(to); inv != s.schemaShard(from) {
		return inv.GetMapping(tag, from, to)
	}
	return nil, false
}

// DeleteMapping removes the mapping stored under (tag, from, to) in its
// stored orientation's shard (the same exact-key semantics as
// Repo.DeleteMapping).
func (s *Sharded) DeleteMapping(tag, from, to string) error {
	return s.schemaShard(from).DeleteMapping(tag, from, to)
}

// MappingStore returns a reuse-compatible view over the tag's mappings
// across all shards. The view reads live repository state.
func (s *Sharded) MappingStore(tag string) *ShardedTagStore {
	return &ShardedTagStore{sharded: s, tag: tag}
}

// cubeShard routes a cube key to its shard.
func (s *Sharded) cubeShard(key string) *Repo { return s.shards[s.ShardFor(key)] }

// PutCube stores a similarity cube under key in the key's shard.
func (s *Sharded) PutCube(key string, c *simcube.Cube) error { return s.cubeShard(key).PutCube(key, c) }

// GetCube returns the cube stored under key.
func (s *Sharded) GetCube(key string) (*simcube.Cube, bool) { return s.cubeShard(key).GetCube(key) }

// DeleteCube removes the cube stored under key.
func (s *Sharded) DeleteCube(key string) error { return s.cubeShard(key).DeleteCube(key) }

// recordShard routes a record-space key to its shard: schemas by
// name, mappings by the FromSchema inside the "tag|from|to" key,
// cubes by the full key — the same routing the typed paths use.
func (s *Sharded) recordShard(k RecordKind, key string) *Repo {
	if k == RecMappings {
		parts := strings.SplitN(key, "|", 3)
		if len(parts) == 3 {
			return s.schemaShard(parts[1])
		}
	}
	return s.schemaShard(key)
}

// Get returns the encoded payload stored under key, routed to the
// key's shard.
func (s *Sharded) Get(k RecordKind, key string) ([]byte, bool) {
	return s.recordShard(k, key).Get(k, key)
}

// Iter streams every record of the given space across shards, keys
// sorted within each shard.
func (s *Sharded) Iter(k RecordKind, fn func(key string, payload []byte) error) error {
	for i, r := range s.shards {
		if err := r.Iter(k, fn); err != nil {
			return fmt.Errorf("repository: iterate shard %d: %w", i, err)
		}
	}
	return nil
}

// PageCacheStats sums the per-shard buffer-pool snapshots.
func (s *Sharded) PageCacheStats() PageCacheStats {
	var st PageCacheStats
	for _, r := range s.shards {
		st = st.Add(r.PageCacheStats())
	}
	return st
}

// Stats sums the per-shard statistics.
func (s *Sharded) Stats() Stats {
	var st Stats
	for _, r := range s.shards {
		rs := r.Stats()
		st.Schemas += rs.Schemas
		st.Mappings += rs.Mappings
		st.Cubes += rs.Cubes
		st.LogBytes += rs.LogBytes
		st.PageBytes += rs.PageBytes
	}
	return st
}

// Compact rewrites every shard's log keeping only live records.
func (s *Sharded) Compact() error {
	for i, r := range s.shards {
		if err := r.Compact(); err != nil {
			return fmt.Errorf("repository: compact shard %d: %w", i, err)
		}
	}
	return nil
}

// Checkpoint snapshots every shard, bounding each shard's restart
// replay to snapshot + log suffix.
func (s *Sharded) Checkpoint() error {
	for i, r := range s.shards {
		if err := r.Checkpoint(); err != nil {
			return fmt.Errorf("repository: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

// Sync flushes unfsynced appends on every shard — the explicit
// durability barrier under group-commit policies.
func (s *Sharded) Sync() error {
	for i, r := range s.shards {
		if err := r.Sync(); err != nil {
			return fmt.Errorf("repository: sync shard %d: %w", i, err)
		}
	}
	return nil
}

// Reports returns each shard's recovery report, indexed by shard.
func (s *Sharded) Reports() []*RecoveryReport {
	out := make([]*RecoveryReport, len(s.shards))
	for i, r := range s.shards {
		out[i] = r.RecoveryReport()
	}
	return out
}

// Close releases every shard, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, r := range s.shards {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardedTagStore adapts one tag's mappings across all shards to the
// reuse.Store interface.
type ShardedTagStore struct {
	sharded *Sharded
	tag     string
}

// SchemaNames implements reuse.Store: every schema participating in a
// mapping under the tag, across shards, sorted.
func (t *ShardedTagStore) SchemaNames() []string {
	seen := make(map[string]bool)
	for _, r := range t.sharded.shards {
		for _, n := range (&TagStore{repo: r, tag: t.tag}).SchemaNames() {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MappingsBetween implements reuse.Store. A (from, to) pair's mappings
// live either in from's shard (stored orientation) or in to's shard
// (inverted), so at most two shards are consulted.
func (t *ShardedTagStore) MappingsBetween(from, to string) []*simcube.Mapping {
	fs := t.sharded.schemaShard(from)
	out := (&TagStore{repo: fs, tag: t.tag}).MappingsBetween(from, to)
	if ts := t.sharded.schemaShard(to); ts != fs {
		out = append(out, (&TagStore{repo: ts, tag: t.tag}).MappingsBetween(from, to)...)
	}
	return out
}

// AllMappings implements reuse.Store: every mapping under the tag in a
// deterministic global order (by from, then to schema name), matching
// the single-log TagStore's sorted-key enumeration.
func (t *ShardedTagStore) AllMappings() []*simcube.Mapping {
	var out []*simcube.Mapping
	for _, r := range t.sharded.shards {
		out = append(out, (&TagStore{repo: r, tag: t.tag}).AllMappings()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].FromSchema != out[j].FromSchema {
			return out[i].FromSchema < out[j].FromSchema
		}
		return out[i].ToSchema < out[j].ToSchema
	})
	return out
}
