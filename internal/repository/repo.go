// Package repository implements COMA's repository substrate (Do & Rahm,
// VLDB 2002, Sections 3 and 5.2): the store for imported schemas,
// intermediate similarity cubes of individual matchers, and complete
// (possibly user-confirmed) match results kept for later reuse. The
// paper backs this with an external DBMS; this package provides an
// embedded, stdlib-only equivalent exercising the same code paths.
//
// Storage layout: an append-only record log (the write-ahead tail)
// plus, once the store has been checkpointed, a slotted page file
// holding the snapshotted state. Every log record is
//
//	[4B record magic][8B LE sequence][4B LE payload len][1B kind][payload][4B CRC32]
//
// where the CRC covers sequence+len+kind+payload. Writes are
// append-only; updates supersede earlier records for the same key and
// deletes append tombstones. Open replays the page file into a key
// directory (keys and page locations only — payloads stay on disk and
// stream through a capacity-bounded buffer pool on demand) and then
// the log suffix past the snapshot watermark, so the store serves
// repositories larger than memory and restart cost is bounded by the
// tail, not the history. Recovery is salvage-grade: a torn tail is
// truncated, mid-log damage is scanned past to the next valid record
// boundary, and a damaged page costs that page's records, not the
// snapshot. Every open produces a RecoveryReport. Compact rewrites the
// log with only live records. SyncPolicy picks the fsync cadence:
// per-append, group commit, or none.
package repository

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// Record kinds.
const (
	kindSchema byte = iota + 1
	kindSchemaDel
	kindMapping
	kindMappingDel
	kindCube
	kindCubeDel
	// kindRewrite marks a log produced by a full rewrite (Compact or
	// salvage): the log is self-contained, and any snapshot file whose
	// watermark is below the marker's sequence predates the rewrite and
	// must be ignored. The marker lets rewrites rename the new log into
	// place *before* dropping superseded snapshots — a crash between
	// the two steps leaves a stale snapshot that open detects and
	// discards, instead of a removed snapshot whose state the tail-only
	// old log no longer held. The payload is the superseded snapshot
	// watermark (8B LE), for fsck forensics.
	kindRewrite
)

// RecordKind selects one of the repository's keyed record spaces for
// the raw-payload access paths (Get, Iter).
type RecordKind int

const (
	// RecSchemas are schema records keyed by schema name.
	RecSchemas RecordKind = iota
	// RecMappings are mapping records keyed by "tag|from|to".
	RecMappings
	// RecCubes are similarity-cube records keyed by cube key.
	RecCubes
)

// entry is one live record in the key directory. val holds the decoded
// record when resident; paged entries know their page-file location
// and decode on demand. Schemas cache their decoded value once read
// (pointer identity is load-bearing for the analysis caches above);
// mappings and cubes decode per access while paged, keeping memory
// bounded by the buffer pool rather than the corpus.
type entry struct {
	val   any
	paged bool
	loc   recLoc
}

// Repo is the embedded repository. It is safe for concurrent use.
type Repo struct {
	mu     sync.RWMutex
	path   string
	fs     FS
	f      File
	policy SyncPolicy

	size    int64  // end-of-log offset: where the next append lands
	lastSeq uint64 // highest sequence ever written (survives compaction)
	dirty   bool   // appended but not yet fsynced (interval/none policies)
	broken  error  // sticky: a failed append could not be rolled back

	report *RecoveryReport // what Open found; immutable afterwards

	// metrics receives durability timings and recovery outcomes; nil
	// (the default) makes every observation a no-op.
	metrics *StorageMetrics

	// pf is the open page file (nil before the first checkpoint);
	// pool is its buffer pool. Both are swapped wholesale by
	// Checkpoint under the write lock.
	pf        *pageFile
	pool      *bufferPool
	pageCache int // pool capacity in pages (normalized positive)
	pageSize  int // page size for checkpoints (normalized)

	syncStop chan struct{} // group-commit syncer lifecycle
	syncDone chan struct{}

	schemas  map[string]*entry // key: schema name
	mappings map[string]*entry // key: tag|from|to
	cubes    map[string]*entry // key: cube key
}

type taggedMapping struct {
	tag string
	m   *simcube.Mapping
}

// openConfig collects Open's options.
type openConfig struct {
	fs        FS
	policy    SyncPolicy
	metrics   *StorageMetrics
	pageCache int
	pageSize  int
}

// OpenOption configures Open and OpenSharded.
type OpenOption func(*openConfig)

// WithSyncPolicy selects the fsync cadence for appends (default
// SyncAlways).
func WithSyncPolicy(p SyncPolicy) OpenOption {
	return func(c *openConfig) { c.policy = p }
}

// WithFS substitutes the filesystem — the fault-injection seam
// (FaultFS) and any future storage backend.
func WithFS(fs FS) OpenOption {
	return func(c *openConfig) {
		if fs != nil {
			c.fs = fs
		}
	}
}

// WithPageCache bounds the buffer pool at n pages per repository
// (per shard, under OpenSharded). Non-positive selects
// DefaultPageCachePages.
func WithPageCache(n int) OpenOption {
	return func(c *openConfig) { c.pageCache = n }
}

// WithPageSize sets the page size future checkpoints write, in bytes
// (default DefaultPageSize). Small sizes force eviction and overflow
// chains in tests; the size of an existing page file is read from its
// header, so mixed sizes across restarts are fine.
func WithPageSize(n int) OpenOption {
	return func(c *openConfig) { c.pageSize = n }
}

// Open opens (creating if needed) the repository log at path and
// replays it — from a page-file snapshot plus log suffix when one
// exists. Damage is recovered, not fatal: a torn final record is
// truncated, mid-log corruption is scanned past record by record, a
// damaged page costs its records only, a version-1 log is upgraded in
// place. The only hard failure is a file that holds no recognizable
// repository data at all. The recovery outcome is available as
// RecoveryReport.
func Open(path string, opts ...OpenOption) (*Repo, error) {
	cfg := openConfig{fs: OSFS, policy: SyncAlways()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.pageCache <= 0 {
		cfg.pageCache = DefaultPageCachePages
	}
	if cfg.pageSize <= 0 {
		cfg.pageSize = DefaultPageSize
	}
	f, err := cfg.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repository: open %s: %w", path, err)
	}
	r := &Repo{
		path:      path,
		fs:        cfg.fs,
		f:         f,
		policy:    cfg.policy,
		metrics:   cfg.metrics,
		pageCache: cfg.pageCache,
		pageSize:  cfg.pageSize,
		schemas:   make(map[string]*entry),
		mappings:  make(map[string]*entry),
		cubes:     make(map[string]*entry),
	}
	if err := r.replay(); err != nil {
		r.pf.Close()
		r.f.Close()
		return nil, err
	}
	r.metrics.recordOpen(r.report)
	r.startSyncer()
	return r, nil
}

// replay loads the log into memory and positions the write offset.
func (r *Repo) replay() error {
	rep := &RecoveryReport{Path: r.path}
	r.report = rep
	buf, err := readAll(r.f)
	if err != nil {
		return fmt.Errorf("repository: read %s: %w", r.path, err)
	}
	if len(buf) == 0 {
		if _, err := r.f.Write(fileMagicV2); err != nil {
			return err
		}
		if err := r.f.Sync(); err != nil {
			return err
		}
		r.size = int64(len(fileMagicV2))
		return nil
	}
	switch {
	case bytes.HasPrefix(buf, fileMagicV2):
		return r.replayV2(buf, len(fileMagicV2), rep)
	case bytes.HasPrefix(buf, fileMagicV1):
		return r.replayV1(buf, rep)
	case len(buf) < len(fileMagicV2) &&
		(bytes.HasPrefix(fileMagicV2, buf) || bytes.HasPrefix(fileMagicV1, buf)):
		// Torn creation: the crash hit before the header finished.
		// The store was empty; start it over.
		rep.TruncatedBytes = int64(len(buf))
		rep.Salvaged = true
		return r.rewriteLocked()
	default:
		// Damaged header — or a foreign file. Trust it only if it
		// holds at least one valid record frame; scanning from offset
		// zero folds the broken header into the first skipped range.
		return r.replayV2(buf, 0, rep)
	}
}

// replayV2 replays a version-2 log body starting at offset start
// (len(fileMagicV2) normally, 0 when the header itself is damaged and
// salvage must scan the whole file).
func (r *Repo) replayV2(buf []byte, start int, rep *RecoveryReport) error {
	type rec struct {
		seq     uint64
		kind    byte
		payload []byte
	}
	var recs []rec
	var markerSeq uint64 // highest rewrite-marker sequence in the log
	scan, err := scanLog(buf[start:], int64(start), func(seq uint64, kind byte, payload []byte) error {
		if kind == kindRewrite && seq > markerSeq {
			markerSeq = seq
		}
		recs = append(recs, rec{seq, kind, payload})
		return nil
	})
	if err != nil {
		return err
	}
	headerDamaged := start == 0

	// Snapshot, page-file form first. A rewrite marker above the
	// snapshot's watermark means the log superseded it (the rewrite
	// crashed before removing the file): ignore and drop it.
	pf, pfExists, pfDamaged, err := openPageFile(r.fs, r.path)
	if err != nil {
		return fmt.Errorf("repository: page file of %s: %w", r.path, err)
	}
	if pf != nil && markerSeq > pf.watermark {
		pf.Close()
		removeIfExists(r.fs, pagePath(r.path))
		pf, pfExists, pfDamaged = nil, false, false
	}

	var watermark uint64
	var ckptExists bool
	if pf != nil {
		r.pf = pf
		r.pool = newBufferPool(r.pageCache, pf.readPage, r.metrics)
		damaged, err := pf.scanPages(func(kind byte, key string, loc recLoc) {
			e := &entry{paged: true, loc: loc}
			switch kind {
			case kindSchema:
				r.schemas[key] = e
			case kindMapping:
				r.mappings[key] = e
			case kindCube:
				r.cubes[key] = e
			}
			rep.Recovered++
		})
		if err != nil {
			return fmt.Errorf("repository: page file of %s: %w", r.path, err)
		}
		watermark = pf.watermark
		rep.CheckpointUsed = true
		rep.PageFileUsed = true
		rep.PagesDamaged = len(damaged)
	} else {
		if pfDamaged {
			// Unreadable page-file header: no trustworthy snapshot.
			// Whatever the log still holds is salvaged below.
			rep.CheckpointDamaged = true
		}
		// Legacy flat checkpoint (pre-page-file stores). A rewrite
		// marker in the log supersedes it the same way.
		if markerSeq > 0 {
			removeIfExists(r.fs, ckptPath(r.path))
		} else {
			var ckptDamaged bool
			watermark, ckptExists, ckptDamaged, err = loadCheckpoint(r.fs, r.path, func(kind byte, payload []byte) error {
				if err := r.apply(kind, payload); err != nil {
					return err
				}
				rep.Recovered++
				return nil
			})
			if err != nil {
				return fmt.Errorf("repository: checkpoint of %s: %w", r.path, err)
			}
			rep.CheckpointUsed = ckptExists && !(ckptDamaged && watermark == 0)
			rep.CheckpointDamaged = rep.CheckpointDamaged || ckptDamaged
		}
	}
	if headerDamaged && len(recs) == 0 && !ckptExists && !pfExists {
		return fmt.Errorf("repository: %s is not a repository file", r.path)
	}
	for _, rc := range recs {
		if rc.seq <= watermark {
			continue // already folded into the snapshot state
		}
		if err := r.apply(rc.kind, rc.payload); err != nil {
			return err
		}
		rep.Recovered++
	}
	rep.SkippedRanges = scan.skipped
	for _, br := range scan.skipped {
		rep.SkippedBytes += br.Len
	}
	rep.TruncatedBytes = scan.truncated
	r.lastSeq = scan.lastSeq
	if watermark > r.lastSeq {
		r.lastSeq = watermark
	}
	if len(scan.skipped) > 0 || headerDamaged || rep.CheckpointDamaged || rep.PagesDamaged > 0 {
		// Mid-log or header damage, a corrupt snapshot, or damaged
		// pages: rewrite the log from the salvaged state so the files
		// on disk are whole again.
		rep.Salvaged = true
		return r.rewriteLocked()
	}
	if scan.truncated > 0 {
		// Torn tail only: chop it off in place.
		if err := r.f.Truncate(scan.end); err != nil {
			return err
		}
		if err := r.f.Sync(); err != nil {
			return err
		}
	}
	if _, err := r.f.Seek(scan.end, io.SeekStart); err != nil {
		return err
	}
	r.size = scan.end
	return nil
}

// replayV1 replays a version-1 log (the pre-salvage frame format:
// [4B len][1B kind][payload][4B CRC], no per-record magic or
// sequence) with its original stop-at-first-damage semantics, then
// rewrites it as version 2.
func (r *Repo) replayV1(buf []byte, rep *RecoveryReport) error {
	off, err := legacyScan(buf, func(kind byte, payload []byte) error {
		if err := r.apply(kind, payload); err != nil {
			return err
		}
		rep.Recovered++
		return nil
	})
	if err != nil {
		return err
	}
	rep.TruncatedBytes = int64(len(buf) - off)
	rep.UpgradedV1 = true
	return r.rewriteLocked()
}

// apply folds one log record into the in-memory state. Log-replayed
// records decode eagerly — the tail is bounded by checkpoint cadence,
// and decoding validates what the log claims.
func (r *Repo) apply(kind byte, payload []byte) error {
	switch kind {
	case kindSchema:
		s, err := decodeSchema(payload)
		if err != nil {
			return err
		}
		r.schemas[s.Name] = &entry{val: s}
	case kindSchemaDel:
		d := decoder{buf: payload}
		name := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.schemas, name)
	case kindMapping:
		tag, m, err := decodeMapping(payload)
		if err != nil {
			return err
		}
		r.mappings[mappingKey(tag, m.FromSchema, m.ToSchema)] = &entry{val: &taggedMapping{tag: tag, m: m}}
	case kindMappingDel:
		d := decoder{buf: payload}
		key := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.mappings, key)
	case kindCube:
		key, c, err := decodeCube(payload)
		if err != nil {
			return err
		}
		r.cubes[key] = &entry{val: c}
	case kindCubeDel:
		d := decoder{buf: payload}
		key := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.cubes, key)
	case kindRewrite:
		// Rewrite marker: no state, consumed by replayV2's snapshot
		// staleness check.
	default:
		return fmt.Errorf("repository: unknown record kind %d", kind)
	}
	return nil
}

// recordMap maps a RecordKind to its directory and log record kind.
func (r *Repo) recordMap(k RecordKind) (map[string]*entry, byte) {
	switch k {
	case RecSchemas:
		return r.schemas, kindSchema
	case RecMappings:
		return r.mappings, kindMapping
	case RecCubes:
		return r.cubes, kindCube
	}
	return nil, 0
}

// payloadLocked returns the encoded payload of one live entry: a
// resident value re-encodes (deterministically — byte-identical to
// what was stored), a paged entry streams from the page file through
// the buffer pool. Callers hold r.mu (read or write).
func (r *Repo) payloadLocked(kind byte, key string, e *entry) ([]byte, error) {
	if e.val != nil {
		switch kind {
		case kindSchema:
			return encodeSchema(e.val.(*schema.Schema)), nil
		case kindMapping:
			tm := e.val.(*taggedMapping)
			return encodeMapping(tm.tag, tm.m), nil
		case kindCube:
			return encodeCube(key, e.val.(*simcube.Cube)), nil
		}
	}
	if e.paged && r.pf != nil {
		_, _, payload, err := r.pf.record(r.pool, e.loc)
		return payload, err
	}
	return nil, fmt.Errorf("repository: %s: no payload for %q", r.path, key)
}

// Get returns the encoded payload stored under key in the given record
// space — the raw-bytes read path (warm-restart fingerprints, fsck).
// Paged payloads stream through the buffer pool without decoding.
func (r *Repo) Get(k RecordKind, key string) ([]byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, kind := r.recordMap(k)
	if m == nil {
		return nil, false
	}
	e, ok := m[key]
	if !ok {
		return nil, false
	}
	payload, err := r.payloadLocked(kind, key, e)
	if err != nil {
		return nil, false
	}
	return payload, true
}

// Iter streams every record of the given space to fn in sorted key
// order, one payload at a time — the scan primitive that replaces
// whole-store materialization. The key snapshot is taken up front;
// records deleted mid-iteration are skipped, payloads are read (and
// paged entries pinned) one at a time, so a scan never holds more than
// one record resident.
func (r *Repo) Iter(k RecordKind, fn func(key string, payload []byte) error) error {
	r.mu.RLock()
	m, kind := r.recordMap(k)
	if m == nil {
		r.mu.RUnlock()
		return fmt.Errorf("repository: unknown record space %d", k)
	}
	keys := make([]string, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	r.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		r.mu.RLock()
		e, ok := m[key]
		var payload []byte
		var err error
		if ok {
			payload, err = r.payloadLocked(kind, key, e)
		}
		r.mu.RUnlock()
		if !ok {
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(key, payload); err != nil {
			return err
		}
	}
	return nil
}

// PageCacheStats snapshots the buffer pool (zero Resident before the
// first checkpoint creates a page file).
func (r *Repo) PageCacheStats() PageCacheStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.pool == nil {
		return PageCacheStats{Capacity: r.pageCache}
	}
	return r.pool.stats()
}

// appendRecord writes one record as a single buffer and applies the
// sync policy. On any write or sync failure the log is wound back to
// the last good record boundary, so a failed append can never leave
// torn bytes that poison later appends; if even the rollback fails,
// the repo turns sticky-broken and refuses further writes.
func (r *Repo) appendRecord(kind byte, payload []byte) error {
	if r.broken != nil {
		return r.broken
	}
	if r.f == nil {
		return os.ErrClosed
	}
	seq := r.lastSeq + 1
	frame := appendFrame(make([]byte, 0, recHdrSize+len(payload)+recTailSize), seq, kind, payload)
	err := func() error {
		if _, err := r.f.Write(frame); err != nil {
			return err
		}
		if r.policy.mode == syncAlways {
			start := time.Now()
			if err := r.f.Sync(); err != nil {
				return err
			}
			r.metrics.observeAppendFsync(start)
			return nil
		}
		r.dirty = true
		return nil
	}()
	if err != nil {
		if terr := r.f.Truncate(r.size); terr != nil {
			r.broken = fmt.Errorf("repository: %s unusable: append failed (%v), rollback failed (%v)", r.path, err, terr)
			return r.broken
		}
		if _, serr := r.f.Seek(r.size, io.SeekStart); serr != nil {
			r.broken = fmt.Errorf("repository: %s unusable: append failed (%v), re-seek failed (%v)", r.path, err, serr)
			return r.broken
		}
		return err
	}
	r.size += int64(len(frame))
	r.lastSeq = seq
	return nil
}

// liveRecord is one record of the current folded state, as rewritten
// by Compact, Checkpoint and salvage, with the entry it came from.
type liveRecord struct {
	kind    byte
	key     string
	payload []byte
	e       *entry
}

// liveRecordsLocked materializes the live state in deterministic
// order: schemas, mappings, cubes, each sorted by key. Paged payloads
// are read through the buffer pool; a paged record whose payload can
// no longer be read (a damaged overflow chain) is dropped from the
// directory — salvage-grade, one unreadable record costs one record.
func (r *Repo) liveRecordsLocked() []liveRecord {
	out := make([]liveRecord, 0, len(r.schemas)+len(r.mappings)+len(r.cubes))
	collect := func(kind byte, m map[string]*entry) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := m[k]
			payload, err := r.payloadLocked(kind, k, e)
			if err != nil {
				delete(m, k)
				continue
			}
			out = append(out, liveRecord{kind: kind, key: k, payload: payload, e: e})
		}
	}
	collect(kindSchema, r.schemas)
	collect(kindMapping, r.mappings)
	collect(kindCube, r.cubes)
	return out
}

// rewriteLocked atomically replaces the log with the live state: a
// fresh self-contained log, led by a rewrite marker, is written to a
// temp file, fsynced, renamed over the log, and only then are the
// snapshot files it supersedes removed. A crash before the rename
// keeps the old state; a crash after it leaves a stale snapshot that
// the marker causes open to discard — no ordering loses data.
// Sequences are renumbered continuing after lastSeq, so ordering stays
// globally monotonic. Callers hold the write lock (or are inside
// Open).
func (r *Repo) rewriteLocked() error {
	recs := r.liveRecordsLocked()
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, fileMagicV2...)
	seq := r.lastSeq
	seq++
	var wm [8]byte
	if r.pf != nil {
		binary.LittleEndian.PutUint64(wm[:], r.pf.watermark)
	}
	buf = appendFrame(buf, seq, kindRewrite, wm[:])
	for _, rec := range recs {
		seq++
		buf = appendFrame(buf, seq, rec.kind, rec.payload)
	}
	f, err := writeFileAtomic(r.fs, r.path, buf, nil, true)
	if err != nil {
		return err
	}
	if r.f != nil {
		r.f.Close()
	}
	r.f = f // the renamed file: same handle, now at r.path
	r.size = int64(len(buf))
	r.lastSeq = seq
	r.dirty = false
	// The log is self-contained and durable; the snapshot files are
	// superseded. Removal failures are tolerable — the marker makes
	// open ignore whatever survives.
	if r.pf != nil {
		r.pf.Close()
		r.pf = nil
		r.pool = nil
	}
	removeIfExists(r.fs, pagePath(r.path))
	removeIfExists(r.fs, ckptPath(r.path))
	// Re-materialize: every entry is log-resident now.
	for _, rec := range recs {
		e := rec.e
		if e.val == nil {
			var derr error
			switch rec.kind {
			case kindSchema:
				e.val, derr = decodeSchema(rec.payload)
			case kindMapping:
				var tag string
				var m *simcube.Mapping
				tag, m, derr = decodeMapping(rec.payload)
				if derr == nil {
					e.val = &taggedMapping{tag: tag, m: m}
				}
			case kindCube:
				var c *simcube.Cube
				_, c, derr = decodeCube(rec.payload)
				if derr == nil {
					e.val = c
				}
			}
			if derr != nil {
				if m, _ := r.recordMapForKind(rec.kind); m != nil {
					delete(m, rec.key)
				}
				continue
			}
		}
		e.paged = false
		e.loc = recLoc{}
	}
	return nil
}

// recordMapForKind maps a log record kind back to its directory.
func (r *Repo) recordMapForKind(kind byte) (map[string]*entry, RecordKind) {
	switch kind {
	case kindSchema:
		return r.schemas, RecSchemas
	case kindMapping:
		return r.mappings, RecMappings
	case kindCube:
		return r.cubes, RecCubes
	}
	return nil, 0
}

// startSyncer launches the group-commit goroutine for SyncInterval
// policies: one fsync per tick covers every append since the last.
func (r *Repo) startSyncer() {
	d := r.policy.Interval()
	if d <= 0 {
		return
	}
	r.syncStop = make(chan struct{})
	r.syncDone = make(chan struct{})
	stop, done := r.syncStop, r.syncDone
	go func() {
		defer close(done)
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Sync()
			case <-stop:
				return
			}
		}
	}()
}

// Sync flushes unfsynced appends to stable storage — the group-commit
// flush point, also callable explicitly for a durability barrier.
func (r *Repo) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil || !r.dirty || r.broken != nil {
		return nil
	}
	start := time.Now()
	if err := r.f.Sync(); err != nil {
		return err
	}
	r.metrics.observeGroupCommit(start)
	r.dirty = false
	return nil
}

// Path returns the log file path the repository was opened at — the
// anchor for sidecar files (warm-restart snapshots) kept next to it.
func (r *Repo) Path() string { return r.path }

// RecoveryReport returns what Open found while replaying the log. The
// report is immutable after Open.
func (r *Repo) RecoveryReport() *RecoveryReport { return r.report }

func mappingKey(tag, from, to string) string { return tag + "|" + from + "|" + to }

// Close stops the group-commit syncer, flushes unfsynced appends, and
// releases the underlying files.
func (r *Repo) Close() error {
	r.mu.Lock()
	stop, done := r.syncStop, r.syncDone
	r.syncStop, r.syncDone = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	var err error
	if r.dirty && r.broken == nil {
		err = r.f.Sync()
		r.dirty = false
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	r.f = nil
	if cerr := r.pf.Close(); err == nil {
		err = cerr
	}
	r.pf = nil
	r.pool = nil
	return err
}

// PutSchema stores (or replaces) a schema by name.
func (r *Repo) PutSchema(s *schema.Schema) error {
	_, err := r.SwapSchema(s)
	return err
}

// getSchemaLocked returns the decoded schema for name, decoding and
// caching a paged entry's value (the decoded instance must be stable:
// pointer identity keys the analysis caches above). Callers hold the
// write lock.
func (r *Repo) getSchemaLocked(name string) (*schema.Schema, error) {
	e, ok := r.schemas[name]
	if !ok {
		return nil, nil
	}
	if s, ok := e.val.(*schema.Schema); ok {
		return s, nil
	}
	payload, err := r.payloadLocked(kindSchema, name, e)
	if err != nil {
		return nil, err
	}
	s, err := decodeSchema(payload)
	if err != nil {
		return nil, err
	}
	e.val = s
	return s, nil
}

// SwapSchema stores a schema and returns the instance it replaced (nil
// when the name was new), atomically with respect to other schema
// mutations — callers maintaining per-instance caches (the engines'
// analysis caches) invalidate exactly the instance that left the
// store.
func (r *Repo) SwapSchema(s *schema.Schema) (prev *schema.Schema, err error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Decode the outgoing instance before overwriting so replacement
	// is reported even when the old record was paged and never read.
	// An unreadable old record does not block the write.
	prev, _ = r.getSchemaLocked(s.Name)
	if err := r.appendRecord(kindSchema, encodeSchema(s)); err != nil {
		return nil, err
	}
	r.schemas[s.Name] = &entry{val: s}
	return prev, nil
}

// GetSchema returns the stored schema with the given name. A paged
// schema is decoded on first access and stays resident afterwards —
// the decoded instance is identity-stable across calls.
func (r *Repo) GetSchema(name string) (*schema.Schema, bool) {
	r.mu.RLock()
	e, ok := r.schemas[name]
	if !ok {
		r.mu.RUnlock()
		return nil, false
	}
	if s, ok := e.val.(*schema.Schema); ok {
		r.mu.RUnlock()
		return s, true
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, err := r.getSchemaLocked(name)
	if err != nil || s == nil {
		return nil, false
	}
	return s, true
}

// DeleteSchema removes a schema. Deleting a missing schema is a no-op.
func (r *Repo) DeleteSchema(name string) error {
	_, err := r.TakeSchema(name)
	return err
}

// TakeSchema removes a schema and returns the removed instance (nil
// when the name was absent), atomically with respect to other schema
// mutations. A paged record is decoded before deletion so existence is
// always reported by a non-nil prev.
func (r *Repo) TakeSchema(name string) (prev *schema.Schema, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.schemas[name]; !ok {
		return nil, nil
	}
	prev, err = r.getSchemaLocked(name)
	if err != nil {
		return nil, err
	}
	var e encoder
	e.str(name)
	if err := r.appendRecord(kindSchemaDel, e.buf); err != nil {
		return nil, err
	}
	delete(r.schemas, name)
	return prev, nil
}

// SchemaNames lists stored schema names, sorted — straight off the key
// directory, no payloads touched.
func (r *Repo) SchemaNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.schemas))
	for n := range r.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schemas returns the stored schemas, sorted by name — the candidate
// set of a batch match against the whole repository. Paged schemas
// stream through the buffer pool one at a time and stay resident once
// decoded.
func (r *Repo) Schemas() []*schema.Schema {
	names := r.SchemaNames()
	out := make([]*schema.Schema, 0, len(names))
	for _, n := range names {
		if s, ok := r.GetSchema(n); ok {
			out = append(out, s)
		}
	}
	return out
}

// mappingAt decodes the mapping entry under key (per access while
// paged — mappings are not pinned resident). Callers hold r.mu.
func (r *Repo) mappingAt(key string, e *entry) (*taggedMapping, error) {
	if tm, ok := e.val.(*taggedMapping); ok {
		return tm, nil
	}
	payload, err := r.payloadLocked(kindMapping, key, e)
	if err != nil {
		return nil, err
	}
	tag, m, err := decodeMapping(payload)
	if err != nil {
		return nil, err
	}
	return &taggedMapping{tag: tag, m: m}, nil
}

// cubeAt decodes the cube entry under key (per access while paged).
// Callers hold r.mu.
func (r *Repo) cubeAt(key string, e *entry) (*simcube.Cube, error) {
	if c, ok := e.val.(*simcube.Cube); ok {
		return c, nil
	}
	payload, err := r.payloadLocked(kindCube, key, e)
	if err != nil {
		return nil, err
	}
	_, c, err := decodeCube(payload)
	return c, err
}

// PutMapping stores a match result under a tag (e.g. "manual" for
// user-confirmed results, "auto" for automatically derived ones). One
// mapping is kept per (tag, from, to).
func (r *Repo) PutMapping(tag string, m *simcube.Mapping) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindMapping, encodeMapping(tag, m)); err != nil {
		return err
	}
	r.mappings[mappingKey(tag, m.FromSchema, m.ToSchema)] = &entry{val: &taggedMapping{tag: tag, m: m}}
	return nil
}

// GetMapping returns the mapping stored under (tag, from, to), trying
// the inverted orientation as well.
func (r *Repo) GetMapping(tag, from, to string) (*simcube.Mapping, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	key := mappingKey(tag, from, to)
	if e, ok := r.mappings[key]; ok {
		if tm, err := r.mappingAt(key, e); err == nil {
			return tm.m, true
		}
	}
	key = mappingKey(tag, to, from)
	if e, ok := r.mappings[key]; ok {
		if tm, err := r.mappingAt(key, e); err == nil {
			return tm.m.Invert(), true
		}
	}
	return nil, false
}

// DeleteMapping removes the mapping stored under (tag, from, to).
func (r *Repo) DeleteMapping(tag, from, to string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := mappingKey(tag, from, to)
	if _, ok := r.mappings[key]; !ok {
		return nil
	}
	var e encoder
	e.str(key)
	if err := r.appendRecord(kindMappingDel, e.buf); err != nil {
		return err
	}
	delete(r.mappings, key)
	return nil
}

// MappingStore returns a reuse-compatible view of the mappings stored
// under the given tag. The view reads live repository state.
func (r *Repo) MappingStore(tag string) *TagStore { return &TagStore{repo: r, tag: tag} }

// PutCube stores the similarity cube computed for a match task under an
// arbitrary key (conventionally "S1|S2").
func (r *Repo) PutCube(key string, c *simcube.Cube) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindCube, encodeCube(key, c)); err != nil {
		return err
	}
	r.cubes[key] = &entry{val: c}
	return nil
}

// GetCube returns the cube stored under key.
func (r *Repo) GetCube(key string) (*simcube.Cube, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.cubes[key]
	if !ok {
		return nil, false
	}
	c, err := r.cubeAt(key, e)
	if err != nil {
		return nil, false
	}
	return c, true
}

// DeleteCube removes the cube stored under key.
func (r *Repo) DeleteCube(key string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cubes[key]; !ok {
		return nil
	}
	var e encoder
	e.str(key)
	if err := r.appendRecord(kindCubeDel, e.buf); err != nil {
		return err
	}
	delete(r.cubes, key)
	return nil
}

// Stats summarizes repository contents and on-disk footprint.
type Stats struct {
	Schemas  int
	Mappings int
	Cubes    int
	LogBytes int64
	// PageBytes is the page-file size (0 before the first checkpoint).
	PageBytes int64
}

// Stats returns current repository statistics.
func (r *Repo) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := Stats{
		Schemas:  len(r.schemas),
		Mappings: len(r.mappings),
		Cubes:    len(r.cubes),
		LogBytes: r.size,
	}
	if r.pf != nil {
		st.PageBytes = pageFileHdrSize + int64(r.pf.pageCount)*int64(r.pf.pageSize)
	}
	return st
}

// Compact rewrites the log keeping only live records, atomically and
// durably replacing the old file. Any snapshot files are folded in and
// dropped; the store returns to pure-log form until the next
// Checkpoint.
func (r *Repo) Compact() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return os.ErrClosed
	}
	if r.broken != nil {
		return r.broken
	}
	return r.rewriteLocked()
}

// TagStore adapts one tag's mappings to the reuse.Store interface. It
// reads the key directory ("tag|from|to") wherever the keys alone
// suffice, touching payloads only for mappings it returns.
type TagStore struct {
	repo *Repo
	tag  string
}

// tagKeyParts splits a mapping key into (tag, from, to); ok is false
// when the key does not carry the store's tag.
func (t *TagStore) tagKeyParts(key string) (from, to string, ok bool) {
	rest, found := strings.CutPrefix(key, t.tag+"|")
	if !found {
		return "", "", false
	}
	from, to, found = strings.Cut(rest, "|")
	if !found {
		return "", "", false
	}
	return from, to, true
}

// SchemaNames implements reuse.Store.
func (t *TagStore) SchemaNames() []string {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	seen := make(map[string]bool)
	for k := range t.repo.mappings {
		if from, to, ok := t.tagKeyParts(k); ok {
			seen[from] = true
			seen[to] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MappingsBetween implements reuse.Store: the stored orientation
// first, then the inverse — both direct key lookups.
func (t *TagStore) MappingsBetween(from, to string) []*simcube.Mapping {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	var out []*simcube.Mapping
	key := mappingKey(t.tag, from, to)
	if e, ok := t.repo.mappings[key]; ok {
		if tm, err := t.repo.mappingAt(key, e); err == nil {
			out = append(out, tm.m)
		}
	}
	if from != to {
		key = mappingKey(t.tag, to, from)
		if e, ok := t.repo.mappings[key]; ok {
			if tm, err := t.repo.mappingAt(key, e); err == nil {
				out = append(out, tm.m.Invert())
			}
		}
	}
	return out
}

// AllMappings implements reuse.Store, decoding only this tag's
// payloads in sorted key order.
func (t *TagStore) AllMappings() []*simcube.Mapping {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	keys := make([]string, 0, len(t.repo.mappings))
	for k := range t.repo.mappings {
		if _, _, ok := t.tagKeyParts(k); ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []*simcube.Mapping
	for _, k := range keys {
		if tm, err := t.repo.mappingAt(k, t.repo.mappings[k]); err == nil {
			out = append(out, tm.m)
		}
	}
	return out
}
