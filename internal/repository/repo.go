// Package repository implements COMA's repository substrate (Do & Rahm,
// VLDB 2002, Sections 3 and 5.2): the store for imported schemas,
// intermediate similarity cubes of individual matchers, and complete
// (possibly user-confirmed) match results kept for later reuse. The
// paper backs this with an external DBMS; this package provides an
// embedded, stdlib-only equivalent exercising the same code paths.
//
// Storage layout: a single append-only record log. Every record is
//
//	[4B record magic][8B LE sequence][4B LE payload len][1B kind][payload][4B CRC32]
//
// where the CRC covers sequence+len+kind+payload. Writes are
// append-only; updates supersede earlier records for the same key and
// deletes append tombstones. Open replays the log into in-memory
// indexes. Recovery is salvage-grade: a torn tail is truncated, and
// mid-log damage is scanned past to the next valid record boundary
// (the per-record magic + monotonic sequence make boundaries
// recognizable), so one corrupt record costs one record. Every open
// produces a RecoveryReport. A checkpoint file next to the log
// (Checkpoint) bounds replay to snapshot + log suffix. Compact
// rewrites the log with only live records. SyncPolicy picks the
// fsync cadence: per-append, group commit, or none.
package repository

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// Record kinds.
const (
	kindSchema byte = iota + 1
	kindSchemaDel
	kindMapping
	kindMappingDel
	kindCube
	kindCubeDel
)

// Repo is the embedded repository. It is safe for concurrent use.
type Repo struct {
	mu     sync.RWMutex
	path   string
	fs     FS
	f      File
	policy SyncPolicy

	size    int64  // end-of-log offset: where the next append lands
	lastSeq uint64 // highest sequence ever written (survives compaction)
	dirty   bool   // appended but not yet fsynced (interval/none policies)
	broken  error  // sticky: a failed append could not be rolled back

	report *RecoveryReport // what Open found; immutable afterwards

	// metrics receives durability timings and recovery outcomes; nil
	// (the default) makes every observation a no-op.
	metrics *StorageMetrics

	syncStop chan struct{} // group-commit syncer lifecycle
	syncDone chan struct{}

	schemas  map[string]*schema.Schema
	mappings map[string]*taggedMapping // key: tag|from|to
	cubes    map[string]*simcube.Cube
}

type taggedMapping struct {
	tag string
	m   *simcube.Mapping
}

// openConfig collects Open's options.
type openConfig struct {
	fs      FS
	policy  SyncPolicy
	metrics *StorageMetrics
}

// OpenOption configures Open and OpenSharded.
type OpenOption func(*openConfig)

// WithSyncPolicy selects the fsync cadence for appends (default
// SyncAlways).
func WithSyncPolicy(p SyncPolicy) OpenOption {
	return func(c *openConfig) { c.policy = p }
}

// WithFS substitutes the filesystem — the fault-injection seam
// (FaultFS) and any future storage backend.
func WithFS(fs FS) OpenOption {
	return func(c *openConfig) {
		if fs != nil {
			c.fs = fs
		}
	}
}

// Open opens (creating if needed) the repository log at path and
// replays it — from a checkpoint snapshot plus log suffix when one
// exists. Damage is recovered, not fatal: a torn final record is
// truncated, mid-log corruption is scanned past record by record, a
// version-1 log is upgraded in place. The only hard failure is a file
// that holds no recognizable repository data at all. The recovery
// outcome is available as RecoveryReport.
func Open(path string, opts ...OpenOption) (*Repo, error) {
	cfg := openConfig{fs: OSFS, policy: SyncAlways()}
	for _, o := range opts {
		o(&cfg)
	}
	f, err := cfg.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repository: open %s: %w", path, err)
	}
	r := &Repo{
		path:     path,
		fs:       cfg.fs,
		f:        f,
		policy:   cfg.policy,
		metrics:  cfg.metrics,
		schemas:  make(map[string]*schema.Schema),
		mappings: make(map[string]*taggedMapping),
		cubes:    make(map[string]*simcube.Cube),
	}
	if err := r.replay(); err != nil {
		r.f.Close()
		return nil, err
	}
	r.metrics.recordOpen(r.report)
	r.startSyncer()
	return r, nil
}

// replay loads the log into memory and positions the write offset.
func (r *Repo) replay() error {
	rep := &RecoveryReport{Path: r.path}
	r.report = rep
	buf, err := readAll(r.f)
	if err != nil {
		return fmt.Errorf("repository: read %s: %w", r.path, err)
	}
	if len(buf) == 0 {
		if _, err := r.f.Write(fileMagicV2); err != nil {
			return err
		}
		if err := r.f.Sync(); err != nil {
			return err
		}
		r.size = int64(len(fileMagicV2))
		return nil
	}
	switch {
	case bytes.HasPrefix(buf, fileMagicV2):
		return r.replayV2(buf, len(fileMagicV2), rep)
	case bytes.HasPrefix(buf, fileMagicV1):
		return r.replayV1(buf, rep)
	case len(buf) < len(fileMagicV2) &&
		(bytes.HasPrefix(fileMagicV2, buf) || bytes.HasPrefix(fileMagicV1, buf)):
		// Torn creation: the crash hit before the header finished.
		// The store was empty; start it over.
		rep.TruncatedBytes = int64(len(buf))
		rep.Salvaged = true
		return r.rewriteLocked()
	default:
		// Damaged header — or a foreign file. Trust it only if it
		// holds at least one valid record frame; scanning from offset
		// zero folds the broken header into the first skipped range.
		return r.replayV2(buf, 0, rep)
	}
}

// replayV2 replays a version-2 log body starting at offset start
// (len(fileMagicV2) normally, 0 when the header itself is damaged and
// salvage must scan the whole file).
func (r *Repo) replayV2(buf []byte, start int, rep *RecoveryReport) error {
	type rec struct {
		seq     uint64
		kind    byte
		payload []byte
	}
	var recs []rec
	scan, err := scanLog(buf[start:], int64(start), func(seq uint64, kind byte, payload []byte) error {
		recs = append(recs, rec{seq, kind, payload})
		return nil
	})
	if err != nil {
		return err
	}
	ckptApply := func(kind byte, payload []byte) error {
		if err := r.apply(kind, payload); err != nil {
			return err
		}
		rep.Recovered++
		return nil
	}
	watermark, ckptExists, ckptDamaged, err := loadCheckpoint(r.fs, r.path, ckptApply)
	if err != nil {
		return fmt.Errorf("repository: checkpoint of %s: %w", r.path, err)
	}
	headerDamaged := start == 0
	if headerDamaged && len(recs) == 0 && !ckptExists {
		return fmt.Errorf("repository: %s is not a repository file", r.path)
	}
	rep.CheckpointUsed = ckptExists && !(ckptDamaged && watermark == 0)
	rep.CheckpointDamaged = ckptDamaged
	for _, rc := range recs {
		if rc.seq <= watermark {
			continue // already folded into the checkpoint state
		}
		if err := r.apply(rc.kind, rc.payload); err != nil {
			return err
		}
		rep.Recovered++
	}
	rep.SkippedRanges = scan.skipped
	for _, br := range scan.skipped {
		rep.SkippedBytes += br.Len
	}
	rep.TruncatedBytes = scan.truncated
	r.lastSeq = scan.lastSeq
	if watermark > r.lastSeq {
		r.lastSeq = watermark
	}
	if len(scan.skipped) > 0 || headerDamaged || ckptDamaged {
		// Mid-log or header damage (or a corrupt snapshot): rewrite
		// the log from the salvaged state so the file on disk is
		// whole again.
		rep.Salvaged = true
		return r.rewriteLocked()
	}
	if scan.truncated > 0 {
		// Torn tail only: chop it off in place.
		if err := r.f.Truncate(scan.end); err != nil {
			return err
		}
		if err := r.f.Sync(); err != nil {
			return err
		}
	}
	if _, err := r.f.Seek(scan.end, io.SeekStart); err != nil {
		return err
	}
	r.size = scan.end
	return nil
}

// replayV1 replays a version-1 log (the pre-salvage frame format:
// [4B len][1B kind][payload][4B CRC], no per-record magic or
// sequence) with its original stop-at-first-damage semantics, then
// rewrites it as version 2.
func (r *Repo) replayV1(buf []byte, rep *RecoveryReport) error {
	off, err := legacyScan(buf, func(kind byte, payload []byte) error {
		if err := r.apply(kind, payload); err != nil {
			return err
		}
		rep.Recovered++
		return nil
	})
	if err != nil {
		return err
	}
	rep.TruncatedBytes = int64(len(buf) - off)
	rep.UpgradedV1 = true
	return r.rewriteLocked()
}

// apply folds one log record into the in-memory state.
func (r *Repo) apply(kind byte, payload []byte) error {
	switch kind {
	case kindSchema:
		s, err := decodeSchema(payload)
		if err != nil {
			return err
		}
		r.schemas[s.Name] = s
	case kindSchemaDel:
		d := decoder{buf: payload}
		name := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.schemas, name)
	case kindMapping:
		tag, m, err := decodeMapping(payload)
		if err != nil {
			return err
		}
		r.mappings[mappingKey(tag, m.FromSchema, m.ToSchema)] = &taggedMapping{tag: tag, m: m}
	case kindMappingDel:
		d := decoder{buf: payload}
		key := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.mappings, key)
	case kindCube:
		key, c, err := decodeCube(payload)
		if err != nil {
			return err
		}
		r.cubes[key] = c
	case kindCubeDel:
		d := decoder{buf: payload}
		key := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.cubes, key)
	default:
		return fmt.Errorf("repository: unknown record kind %d", kind)
	}
	return nil
}

// appendRecord writes one record as a single buffer and applies the
// sync policy. On any write or sync failure the log is wound back to
// the last good record boundary, so a failed append can never leave
// torn bytes that poison later appends; if even the rollback fails,
// the repo turns sticky-broken and refuses further writes.
func (r *Repo) appendRecord(kind byte, payload []byte) error {
	if r.broken != nil {
		return r.broken
	}
	if r.f == nil {
		return os.ErrClosed
	}
	seq := r.lastSeq + 1
	frame := appendFrame(make([]byte, 0, recHdrSize+len(payload)+recTailSize), seq, kind, payload)
	err := func() error {
		if _, err := r.f.Write(frame); err != nil {
			return err
		}
		if r.policy.mode == syncAlways {
			start := time.Now()
			if err := r.f.Sync(); err != nil {
				return err
			}
			r.metrics.observeAppendFsync(start)
			return nil
		}
		r.dirty = true
		return nil
	}()
	if err != nil {
		if terr := r.f.Truncate(r.size); terr != nil {
			r.broken = fmt.Errorf("repository: %s unusable: append failed (%v), rollback failed (%v)", r.path, err, terr)
			return r.broken
		}
		if _, serr := r.f.Seek(r.size, io.SeekStart); serr != nil {
			r.broken = fmt.Errorf("repository: %s unusable: append failed (%v), re-seek failed (%v)", r.path, err, serr)
			return r.broken
		}
		return err
	}
	r.size += int64(len(frame))
	r.lastSeq = seq
	return nil
}

// liveRecord is one record of the current folded state, as rewritten
// by Compact, Checkpoint and salvage.
type liveRecord struct {
	kind    byte
	payload []byte
}

// liveRecords encodes the live state in deterministic order: schemas,
// mappings, cubes, each sorted by key.
func (r *Repo) liveRecords() []liveRecord {
	out := make([]liveRecord, 0, len(r.schemas)+len(r.mappings)+len(r.cubes))
	names := make([]string, 0, len(r.schemas))
	for n := range r.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, liveRecord{kindSchema, encodeSchema(r.schemas[n])})
	}
	keys := make([]string, 0, len(r.mappings))
	for k := range r.mappings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tm := r.mappings[k]
		out = append(out, liveRecord{kindMapping, encodeMapping(tm.tag, tm.m)})
	}
	ckeys := make([]string, 0, len(r.cubes))
	for k := range r.cubes {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for _, k := range ckeys {
		out = append(out, liveRecord{kindCube, encodeCube(k, r.cubes[k])})
	}
	return out
}

// rewriteLocked atomically replaces the log with the live state:
// write a fresh log to a temp file, fsync it, drop any checkpoint
// (the new log is self-contained; a stale snapshot surviving beside
// it could resurrect deleted keys), rename over the log, fsync the
// directory. Sequences are renumbered continuing after lastSeq, so
// ordering stays globally monotonic. Callers hold the write lock (or
// are inside Open).
func (r *Repo) rewriteLocked() error {
	tmpPath := r.path + ".compact"
	tmp, err := r.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	keepTmp := false
	defer func() {
		if !keepTmp {
			tmp.Close()
			r.fs.Remove(tmpPath)
		}
	}()
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, fileMagicV2...)
	seq := r.lastSeq
	for _, rec := range r.liveRecords() {
		seq++
		buf = appendFrame(buf, seq, rec.kind, rec.payload)
	}
	if _, err := tmp.Write(buf); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := r.fs.Remove(ckptPath(r.path)); err != nil && !os.IsNotExist(err) {
		return err
	}
	dir := filepath.Dir(r.path)
	if err := r.fs.SyncDir(dir); err != nil {
		return err
	}
	if err := r.fs.Rename(tmpPath, r.path); err != nil {
		return err
	}
	if err := r.fs.SyncDir(dir); err != nil {
		return err
	}
	keepTmp = true
	if r.f != nil {
		r.f.Close()
	}
	r.f = tmp // the renamed file: same handle, now at r.path
	r.size = int64(len(buf))
	r.lastSeq = seq
	r.dirty = false
	return nil
}

// startSyncer launches the group-commit goroutine for SyncInterval
// policies: one fsync per tick covers every append since the last.
func (r *Repo) startSyncer() {
	d := r.policy.Interval()
	if d <= 0 {
		return
	}
	r.syncStop = make(chan struct{})
	r.syncDone = make(chan struct{})
	stop, done := r.syncStop, r.syncDone
	go func() {
		defer close(done)
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Sync()
			case <-stop:
				return
			}
		}
	}()
}

// Sync flushes unfsynced appends to stable storage — the group-commit
// flush point, also callable explicitly for a durability barrier.
func (r *Repo) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil || !r.dirty || r.broken != nil {
		return nil
	}
	start := time.Now()
	if err := r.f.Sync(); err != nil {
		return err
	}
	r.metrics.observeGroupCommit(start)
	r.dirty = false
	return nil
}

// RecoveryReport returns what Open found while replaying the log. The
// report is immutable after Open.
func (r *Repo) RecoveryReport() *RecoveryReport { return r.report }

func mappingKey(tag, from, to string) string { return tag + "|" + from + "|" + to }

// Close stops the group-commit syncer, flushes unfsynced appends, and
// releases the underlying file.
func (r *Repo) Close() error {
	r.mu.Lock()
	stop, done := r.syncStop, r.syncDone
	r.syncStop, r.syncDone = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	var err error
	if r.dirty && r.broken == nil {
		err = r.f.Sync()
		r.dirty = false
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	r.f = nil
	return err
}

// PutSchema stores (or replaces) a schema by name.
func (r *Repo) PutSchema(s *schema.Schema) error {
	_, err := r.SwapSchema(s)
	return err
}

// SwapSchema stores a schema and returns the instance it replaced (nil
// when the name was new), atomically with respect to other schema
// mutations — callers maintaining per-instance caches (the engines'
// analysis caches) invalidate exactly the instance that left the
// store.
func (r *Repo) SwapSchema(s *schema.Schema) (prev *schema.Schema, err error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindSchema, encodeSchema(s)); err != nil {
		return nil, err
	}
	prev = r.schemas[s.Name]
	r.schemas[s.Name] = s
	return prev, nil
}

// GetSchema returns the stored schema with the given name.
func (r *Repo) GetSchema(name string) (*schema.Schema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.schemas[name]
	return s, ok
}

// DeleteSchema removes a schema. Deleting a missing schema is a no-op.
func (r *Repo) DeleteSchema(name string) error {
	_, err := r.TakeSchema(name)
	return err
}

// TakeSchema removes a schema and returns the removed instance (nil
// when the name was absent), atomically with respect to other schema
// mutations.
func (r *Repo) TakeSchema(name string) (prev *schema.Schema, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.schemas[name]
	if !ok {
		return nil, nil
	}
	var e encoder
	e.str(name)
	if err := r.appendRecord(kindSchemaDel, e.buf); err != nil {
		return nil, err
	}
	delete(r.schemas, name)
	return prev, nil
}

// SchemaNames lists stored schema names, sorted.
func (r *Repo) SchemaNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.schemas))
	for n := range r.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schemas returns the stored schemas, sorted by name — the candidate
// set of a batch match against the whole repository.
func (r *Repo) Schemas() []*schema.Schema {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*schema.Schema, 0, len(r.schemas))
	for _, s := range r.schemas {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PutMapping stores a match result under a tag (e.g. "manual" for
// user-confirmed results, "auto" for automatically derived ones). One
// mapping is kept per (tag, from, to).
func (r *Repo) PutMapping(tag string, m *simcube.Mapping) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindMapping, encodeMapping(tag, m)); err != nil {
		return err
	}
	r.mappings[mappingKey(tag, m.FromSchema, m.ToSchema)] = &taggedMapping{tag: tag, m: m}
	return nil
}

// GetMapping returns the mapping stored under (tag, from, to), trying
// the inverted orientation as well.
func (r *Repo) GetMapping(tag, from, to string) (*simcube.Mapping, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if tm, ok := r.mappings[mappingKey(tag, from, to)]; ok {
		return tm.m, true
	}
	if tm, ok := r.mappings[mappingKey(tag, to, from)]; ok {
		return tm.m.Invert(), true
	}
	return nil, false
}

// DeleteMapping removes the mapping stored under (tag, from, to).
func (r *Repo) DeleteMapping(tag, from, to string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := mappingKey(tag, from, to)
	if _, ok := r.mappings[key]; !ok {
		return nil
	}
	var e encoder
	e.str(key)
	if err := r.appendRecord(kindMappingDel, e.buf); err != nil {
		return err
	}
	delete(r.mappings, key)
	return nil
}

// MappingStore returns a reuse-compatible view of the mappings stored
// under the given tag. The view reads live repository state.
func (r *Repo) MappingStore(tag string) *TagStore { return &TagStore{repo: r, tag: tag} }

// PutCube stores the similarity cube computed for a match task under an
// arbitrary key (conventionally "S1|S2").
func (r *Repo) PutCube(key string, c *simcube.Cube) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindCube, encodeCube(key, c)); err != nil {
		return err
	}
	r.cubes[key] = c
	return nil
}

// GetCube returns the cube stored under key.
func (r *Repo) GetCube(key string) (*simcube.Cube, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.cubes[key]
	return c, ok
}

// DeleteCube removes the cube stored under key.
func (r *Repo) DeleteCube(key string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cubes[key]; !ok {
		return nil
	}
	var e encoder
	e.str(key)
	if err := r.appendRecord(kindCubeDel, e.buf); err != nil {
		return err
	}
	delete(r.cubes, key)
	return nil
}

// Stats summarizes repository contents and log size.
type Stats struct {
	Schemas  int
	Mappings int
	Cubes    int
	LogBytes int64
}

// Stats returns current repository statistics.
func (r *Repo) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Schemas:  len(r.schemas),
		Mappings: len(r.mappings),
		Cubes:    len(r.cubes),
		LogBytes: r.size,
	}
}

// Compact rewrites the log keeping only live records, atomically and
// durably replacing the old file (temp file fsynced before the
// rename, parent directory fsynced after).
func (r *Repo) Compact() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return os.ErrClosed
	}
	if r.broken != nil {
		return r.broken
	}
	return r.rewriteLocked()
}

// TagStore adapts one tag's mappings to the reuse.Store interface.
type TagStore struct {
	repo *Repo
	tag  string
}

// SchemaNames implements reuse.Store.
func (t *TagStore) SchemaNames() []string {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	seen := make(map[string]bool)
	for _, tm := range t.repo.mappings {
		if tm.tag != t.tag {
			continue
		}
		seen[tm.m.FromSchema] = true
		seen[tm.m.ToSchema] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MappingsBetween implements reuse.Store.
func (t *TagStore) MappingsBetween(from, to string) []*simcube.Mapping {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	var out []*simcube.Mapping
	for _, tm := range t.repo.mappings {
		if tm.tag != t.tag {
			continue
		}
		switch {
		case tm.m.FromSchema == from && tm.m.ToSchema == to:
			out = append(out, tm.m)
		case tm.m.FromSchema == to && tm.m.ToSchema == from:
			out = append(out, tm.m.Invert())
		}
	}
	return out
}

// AllMappings implements reuse.Store.
func (t *TagStore) AllMappings() []*simcube.Mapping {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	var out []*simcube.Mapping
	keys := make([]string, 0, len(t.repo.mappings))
	for k, tm := range t.repo.mappings {
		if tm.tag == t.tag {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, t.repo.mappings[k].m)
	}
	return out
}
