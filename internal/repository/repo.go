// Package repository implements COMA's repository substrate (Do & Rahm,
// VLDB 2002, Sections 3 and 5.2): the store for imported schemas,
// intermediate similarity cubes of individual matchers, and complete
// (possibly user-confirmed) match results kept for later reuse. The
// paper backs this with an external DBMS; this package provides an
// embedded, stdlib-only equivalent exercising the same code paths.
//
// Storage layout: a single append-only record log. Every record is
//
//	[4-byte little-endian payload length][1-byte kind][payload][4-byte CRC32]
//
// where the CRC covers kind+payload. Writes are append-only; updates
// supersede earlier records for the same key and deletes append
// tombstones. Open replays the log into in-memory indexes, truncating a
// torn tail write (crash recovery). Compact rewrites the log with only
// live records.
package repository

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// Record kinds.
const (
	kindSchema byte = iota + 1
	kindSchemaDel
	kindMapping
	kindMappingDel
	kindCube
	kindCubeDel
)

var fileMagic = []byte("COMA.repo\x001\n")

// Repo is the embedded repository. It is safe for concurrent use.
type Repo struct {
	mu   sync.RWMutex
	path string
	f    *os.File

	schemas  map[string]*schema.Schema
	mappings map[string]*taggedMapping // key: tag|from|to
	cubes    map[string]*simcube.Cube
}

type taggedMapping struct {
	tag string
	m   *simcube.Mapping
}

// Open opens (creating if needed) the repository log at path and
// replays it. A torn final record — e.g. after a crash mid-write — is
// discarded by truncating the file to the last intact record.
func Open(path string) (*Repo, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repository: open %s: %w", path, err)
	}
	r := &Repo{
		path:     path,
		f:        f,
		schemas:  make(map[string]*schema.Schema),
		mappings: make(map[string]*taggedMapping),
		cubes:    make(map[string]*simcube.Cube),
	}
	if err := r.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// replay loads the log into memory and positions the write offset.
func (r *Repo) replay() error {
	info, err := r.f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		_, err := r.f.Write(fileMagic)
		return err
	}
	head := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r.f, head); err != nil || string(head) != string(fileMagic) {
		return fmt.Errorf("repository: %s is not a repository file", r.path)
	}
	offset := int64(len(fileMagic))
	hdr := make([]byte, 5)
	for {
		if _, err := io.ReadFull(r.f, hdr); err != nil {
			break // clean EOF or torn header: stop
		}
		payloadLen := binary.LittleEndian.Uint32(hdr)
		if payloadLen > 1<<30 {
			break // corrupt length
		}
		kind := hdr[4]
		body := make([]byte, int(payloadLen)+4)
		if _, err := io.ReadFull(r.f, body); err != nil {
			break // torn record
		}
		payload := body[:payloadLen]
		want := binary.LittleEndian.Uint32(body[payloadLen:])
		crc := crc32.NewIEEE()
		crc.Write([]byte{kind})
		crc.Write(payload)
		if crc.Sum32() != want {
			break // corrupt record
		}
		if err := r.apply(kind, payload); err != nil {
			return err
		}
		offset += int64(5) + int64(payloadLen) + 4
	}
	// Truncate any torn tail and position for appends.
	if err := r.f.Truncate(offset); err != nil {
		return err
	}
	_, err = r.f.Seek(offset, io.SeekStart)
	return err
}

// apply folds one log record into the in-memory state.
func (r *Repo) apply(kind byte, payload []byte) error {
	switch kind {
	case kindSchema:
		s, err := decodeSchema(payload)
		if err != nil {
			return err
		}
		r.schemas[s.Name] = s
	case kindSchemaDel:
		d := decoder{buf: payload}
		name := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.schemas, name)
	case kindMapping:
		tag, m, err := decodeMapping(payload)
		if err != nil {
			return err
		}
		r.mappings[mappingKey(tag, m.FromSchema, m.ToSchema)] = &taggedMapping{tag: tag, m: m}
	case kindMappingDel:
		d := decoder{buf: payload}
		key := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.mappings, key)
	case kindCube:
		key, c, err := decodeCube(payload)
		if err != nil {
			return err
		}
		r.cubes[key] = c
	case kindCubeDel:
		d := decoder{buf: payload}
		key := d.str()
		if d.err != nil {
			return d.err
		}
		delete(r.cubes, key)
	default:
		return fmt.Errorf("repository: unknown record kind %d", kind)
	}
	return nil
}

// appendRecord writes one record and syncs the log.
func (r *Repo) appendRecord(kind byte, payload []byte) error {
	hdr := make([]byte, 5)
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = kind
	crc := crc32.NewIEEE()
	crc.Write([]byte{kind})
	crc.Write(payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := r.f.Write(hdr); err != nil {
		return err
	}
	if _, err := r.f.Write(payload); err != nil {
		return err
	}
	if _, err := r.f.Write(tail[:]); err != nil {
		return err
	}
	return r.f.Sync()
}

func mappingKey(tag, from, to string) string { return tag + "|" + from + "|" + to }

// Close releases the underlying file.
func (r *Repo) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// PutSchema stores (or replaces) a schema by name.
func (r *Repo) PutSchema(s *schema.Schema) error {
	_, err := r.SwapSchema(s)
	return err
}

// SwapSchema stores a schema and returns the instance it replaced (nil
// when the name was new), atomically with respect to other schema
// mutations — callers maintaining per-instance caches (the engines'
// analysis caches) invalidate exactly the instance that left the
// store.
func (r *Repo) SwapSchema(s *schema.Schema) (prev *schema.Schema, err error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindSchema, encodeSchema(s)); err != nil {
		return nil, err
	}
	prev = r.schemas[s.Name]
	r.schemas[s.Name] = s
	return prev, nil
}

// GetSchema returns the stored schema with the given name.
func (r *Repo) GetSchema(name string) (*schema.Schema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.schemas[name]
	return s, ok
}

// DeleteSchema removes a schema. Deleting a missing schema is a no-op.
func (r *Repo) DeleteSchema(name string) error {
	_, err := r.TakeSchema(name)
	return err
}

// TakeSchema removes a schema and returns the removed instance (nil
// when the name was absent), atomically with respect to other schema
// mutations.
func (r *Repo) TakeSchema(name string) (prev *schema.Schema, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.schemas[name]
	if !ok {
		return nil, nil
	}
	var e encoder
	e.str(name)
	if err := r.appendRecord(kindSchemaDel, e.buf); err != nil {
		return nil, err
	}
	delete(r.schemas, name)
	return prev, nil
}

// SchemaNames lists stored schema names, sorted.
func (r *Repo) SchemaNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.schemas))
	for n := range r.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schemas returns the stored schemas, sorted by name — the candidate
// set of a batch match against the whole repository.
func (r *Repo) Schemas() []*schema.Schema {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*schema.Schema, 0, len(r.schemas))
	for _, s := range r.schemas {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PutMapping stores a match result under a tag (e.g. "manual" for
// user-confirmed results, "auto" for automatically derived ones). One
// mapping is kept per (tag, from, to).
func (r *Repo) PutMapping(tag string, m *simcube.Mapping) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindMapping, encodeMapping(tag, m)); err != nil {
		return err
	}
	r.mappings[mappingKey(tag, m.FromSchema, m.ToSchema)] = &taggedMapping{tag: tag, m: m}
	return nil
}

// GetMapping returns the mapping stored under (tag, from, to), trying
// the inverted orientation as well.
func (r *Repo) GetMapping(tag, from, to string) (*simcube.Mapping, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if tm, ok := r.mappings[mappingKey(tag, from, to)]; ok {
		return tm.m, true
	}
	if tm, ok := r.mappings[mappingKey(tag, to, from)]; ok {
		return tm.m.Invert(), true
	}
	return nil, false
}

// DeleteMapping removes the mapping stored under (tag, from, to).
func (r *Repo) DeleteMapping(tag, from, to string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := mappingKey(tag, from, to)
	if _, ok := r.mappings[key]; !ok {
		return nil
	}
	var e encoder
	e.str(key)
	if err := r.appendRecord(kindMappingDel, e.buf); err != nil {
		return err
	}
	delete(r.mappings, key)
	return nil
}

// MappingStore returns a reuse-compatible view of the mappings stored
// under the given tag. The view reads live repository state.
func (r *Repo) MappingStore(tag string) *TagStore { return &TagStore{repo: r, tag: tag} }

// PutCube stores the similarity cube computed for a match task under an
// arbitrary key (conventionally "S1|S2").
func (r *Repo) PutCube(key string, c *simcube.Cube) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.appendRecord(kindCube, encodeCube(key, c)); err != nil {
		return err
	}
	r.cubes[key] = c
	return nil
}

// GetCube returns the cube stored under key.
func (r *Repo) GetCube(key string) (*simcube.Cube, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.cubes[key]
	return c, ok
}

// DeleteCube removes the cube stored under key.
func (r *Repo) DeleteCube(key string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cubes[key]; !ok {
		return nil
	}
	var e encoder
	e.str(key)
	if err := r.appendRecord(kindCubeDel, e.buf); err != nil {
		return err
	}
	delete(r.cubes, key)
	return nil
}

// Stats summarizes repository contents and log size.
type Stats struct {
	Schemas  int
	Mappings int
	Cubes    int
	LogBytes int64
}

// Stats returns current repository statistics.
func (r *Repo) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := Stats{Schemas: len(r.schemas), Mappings: len(r.mappings), Cubes: len(r.cubes)}
	if info, err := r.f.Stat(); err == nil {
		st.LogBytes = info.Size()
	}
	return st
}

// Compact rewrites the log keeping only live records, atomically
// replacing the old file.
func (r *Repo) Compact() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	tmpPath := r.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after successful rename
	old := r.f
	r.f = tmp
	writeAll := func() error {
		if _, err := tmp.Write(fileMagic); err != nil {
			return err
		}
		names := make([]string, 0, len(r.schemas))
		for n := range r.schemas {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := r.appendRecord(kindSchema, encodeSchema(r.schemas[n])); err != nil {
				return err
			}
		}
		keys := make([]string, 0, len(r.mappings))
		for k := range r.mappings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			tm := r.mappings[k]
			if err := r.appendRecord(kindMapping, encodeMapping(tm.tag, tm.m)); err != nil {
				return err
			}
		}
		ckeys := make([]string, 0, len(r.cubes))
		for k := range r.cubes {
			ckeys = append(ckeys, k)
		}
		sort.Strings(ckeys)
		for _, k := range ckeys {
			if err := r.appendRecord(kindCube, encodeCube(k, r.cubes[k])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeAll(); err != nil {
		r.f = old
		tmp.Close()
		return err
	}
	if err := os.Rename(tmpPath, r.path); err != nil {
		r.f = old
		tmp.Close()
		return err
	}
	old.Close()
	return nil
}

// TagStore adapts one tag's mappings to the reuse.Store interface.
type TagStore struct {
	repo *Repo
	tag  string
}

// SchemaNames implements reuse.Store.
func (t *TagStore) SchemaNames() []string {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	seen := make(map[string]bool)
	for _, tm := range t.repo.mappings {
		if tm.tag != t.tag {
			continue
		}
		seen[tm.m.FromSchema] = true
		seen[tm.m.ToSchema] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MappingsBetween implements reuse.Store.
func (t *TagStore) MappingsBetween(from, to string) []*simcube.Mapping {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	var out []*simcube.Mapping
	for _, tm := range t.repo.mappings {
		if tm.tag != t.tag {
			continue
		}
		switch {
		case tm.m.FromSchema == from && tm.m.ToSchema == to:
			out = append(out, tm.m)
		case tm.m.FromSchema == to && tm.m.ToSchema == from:
			out = append(out, tm.m.Invert())
		}
	}
	return out
}

// AllMappings implements reuse.Store.
func (t *TagStore) AllMappings() []*simcube.Mapping {
	t.repo.mu.RLock()
	defer t.repo.mu.RUnlock()
	var out []*simcube.Mapping
	keys := make([]string, 0, len(t.repo.mappings))
	for k, tm := range t.repo.mappings {
		if tm.tag == t.tag {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, t.repo.mappings[k].m)
	}
	return out
}
