package repository

import (
	"path/filepath"
	"testing"

	"repro/internal/schema"
	"repro/internal/simcube"
)

func benchSchema() *schema.Schema {
	s := schema.New("bench")
	for t := 0; t < 8; t++ {
		table := schema.NewNode("Table" + string(rune('A'+t)))
		for c := 0; c < 12; c++ {
			table.AddChild(&schema.Node{
				Name:     "col" + string(rune('a'+c)),
				TypeName: "VARCHAR(100)",
				Kind:     schema.ElemColumn,
			})
		}
		s.Root.AddChild(table)
	}
	return s
}

func benchMapping() *simcube.Mapping {
	m := simcube.NewMapping("A", "B")
	for i := 0; i < 100; i++ {
		m.Add("a"+string(rune('a'+i%26))+string(rune('a'+i/26)),
			"b"+string(rune('a'+i%26))+string(rune('a'+i/26)), float64(i%100)/100)
	}
	return m
}

func BenchmarkPutSchema(b *testing.B) {
	r, err := Open(filepath.Join(b.TempDir(), "bench.repo"))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	s := benchSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.PutSchema(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutMapping(b *testing.B) {
	r, err := Open(filepath.Join(b.TempDir(), "bench.repo"))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	m := benchMapping()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.PutMapping("manual", m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutCube(b *testing.B) {
	r, err := Open(filepath.Join(b.TempDir(), "bench.repo"))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	rows := make([]string, 110)
	for i := range rows {
		rows[i] = "r" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	cols := make([]string, 75)
	for j := range cols {
		cols[j] = "c" + string(rune('a'+j%26)) + string(rune('a'+j/26))
	}
	cube := simcube.NewCube(rows, cols)
	for k := 0; k < 5; k++ {
		cube.NewLayer(string(rune('A' + k))).Fill(func(i, j int) float64 {
			return float64((i+j)%100) / 100
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.PutCube("A|B", cube); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.repo")
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	s := benchSchema()
	m := benchMapping()
	for i := 0; i < 50; i++ {
		if err := r.PutSchema(s); err != nil {
			b.Fatal(err)
		}
		if err := r.PutMapping("manual", m); err != nil {
			b.Fatal(err)
		}
	}
	r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		r2.Close()
	}
}

func BenchmarkCompact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := filepath.Join(b.TempDir(), "bench.repo")
		r, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		s := benchSchema()
		for j := 0; j < 50; j++ {
			if err := r.PutSchema(s); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := r.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		r.Close()
	}
}
