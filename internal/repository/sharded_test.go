package repository

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/simcube"
	"repro/internal/workload"
)

// openSharded opens an n-shard store under t's temp dir.
func openSharded(t *testing.T, dir string, n int) *Sharded {
	t.Helper()
	s, err := OpenSharded(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedSchemaOps stores schemas across shards and checks routing,
// lookup, deletion and the merged enumerations.
func TestShardedSchemaOps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	s := openSharded(t, dir, 4)
	defer s.Close()

	cands := workload.Candidates(10)
	for _, c := range cands {
		if err := s.PutSchema(c); err != nil {
			t.Fatal(err)
		}
	}
	// Routing is by name hash: every schema sits in exactly the shard
	// ShardFor names, and nowhere else.
	for _, c := range cands {
		home := s.ShardFor(c.Name)
		for i := 0; i < s.NumShards(); i++ {
			_, ok := s.Shard(i).GetSchema(c.Name)
			if want := i == home; ok != want {
				t.Errorf("schema %s in shard %d: present=%v, want %v", c.Name, i, ok, want)
			}
		}
	}
	// Distribution: 10 schemas over 4 shards should occupy >1 shard
	// (fnv on the workload names does spread; this guards against a
	// degenerate hash).
	occupied := 0
	for i := 0; i < s.NumShards(); i++ {
		if len(s.Shard(i).SchemaNames()) > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Errorf("all schemas hashed into %d shard(s)", occupied)
	}

	names := s.SchemaNames()
	if len(names) != len(cands) {
		t.Fatalf("SchemaNames: %d names, want %d", len(names), len(cands))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("SchemaNames not sorted: %q before %q", names[i-1], names[i])
		}
	}
	all := s.Schemas()
	if len(all) != len(cands) {
		t.Fatalf("Schemas: %d schemas, want %d", len(all), len(cands))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("Schemas not sorted by name: %q before %q", all[i-1].Name, all[i].Name)
		}
	}

	if err := s.DeleteSchema(cands[0].Name); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSchema(cands[0].Name); ok {
		t.Errorf("schema %s still present after delete", cands[0].Name)
	}
	if got := s.Stats().Schemas; got != len(cands)-1 {
		t.Errorf("Stats.Schemas = %d, want %d", got, len(cands)-1)
	}
}

// TestShardedPersistence reopens a sharded store and expects all state
// to replay from the shard logs.
func TestShardedPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	s := openSharded(t, dir, 3)
	cands := workload.Candidates(5)
	for _, c := range cands {
		if err := s.PutSchema(c); err != nil {
			t.Fatal(err)
		}
	}
	m := simcube.NewMapping(cands[0].Name, cands[1].Name)
	m.Add("a.b", "c.d", 0.75)
	if err := s.PutMapping("manual", m); err != nil {
		t.Fatal(err)
	}
	cube := simcube.NewCube([]string{"x"}, []string{"y"})
	layer := simcube.NewMatrix([]string{"x"}, []string{"y"})
	layer.Set(0, 0, 0.5)
	if err := cube.AddLayer("Name", layer); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCube("k1|k2", cube); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openSharded(t, dir, 3)
	defer re.Close()
	st := re.Stats()
	if st.Schemas != len(cands) || st.Mappings != 1 || st.Cubes != 1 {
		t.Fatalf("reopened stats = %+v", st)
	}
	got, ok := re.GetMapping("manual", cands[0].Name, cands[1].Name)
	if !ok || got.Len() != 1 {
		t.Fatalf("mapping lost across reopen: ok=%v", ok)
	}
	if _, ok := re.GetCube("k1|k2"); !ok {
		t.Error("cube lost across reopen")
	}

	// Reopening with a different shard count must fail: routing is
	// modulo the creation-time count.
	if _, err := OpenSharded(dir, 5); err == nil {
		t.Error("OpenSharded with mismatched shard count succeeded")
	}
}

// TestShardedMappingOrientation checks that a mapping stored in its
// FromSchema's shard is found under both orientations, inverted on the
// reverse lookup — across shard boundaries.
func TestShardedMappingOrientation(t *testing.T) {
	s := openSharded(t, filepath.Join(t.TempDir(), "sharded"), 8)
	defer s.Close()
	m := simcube.NewMapping("Alpha", "Beta")
	m.Add("Alpha.x", "Beta.y", 0.9)
	if err := s.PutMapping("manual", m); err != nil {
		t.Fatal(err)
	}
	fwd, ok := s.GetMapping("manual", "Alpha", "Beta")
	if !ok || fwd.FromSchema != "Alpha" {
		t.Fatalf("forward lookup failed: ok=%v", ok)
	}
	rev, ok := s.GetMapping("manual", "Beta", "Alpha")
	if !ok {
		t.Fatal("reverse lookup failed")
	}
	if rev.FromSchema != "Beta" || rev.ToSchema != "Alpha" {
		t.Errorf("reverse lookup not inverted: %s->%s", rev.FromSchema, rev.ToSchema)
	}
	if sim, ok := rev.Get("Beta.y", "Alpha.x"); !ok || sim != 0.9 {
		t.Errorf("inverted correspondence = %v,%v", sim, ok)
	}
	if err := s.DeleteMapping("manual", "Alpha", "Beta"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetMapping("manual", "Alpha", "Beta"); ok {
		t.Error("mapping still present after delete")
	}
}

// TestShardedTagStore exercises the cross-shard reuse.Store view.
func TestShardedTagStore(t *testing.T) {
	s := openSharded(t, filepath.Join(t.TempDir(), "sharded"), 4)
	defer s.Close()
	pairs := [][2]string{{"A", "B"}, {"B", "C"}, {"C", "D"}, {"A", "D"}}
	for _, p := range pairs {
		m := simcube.NewMapping(p[0], p[1])
		m.Add(p[0]+".e", p[1]+".f", 1)
		if err := s.PutMapping("manual", m); err != nil {
			t.Fatal(err)
		}
	}
	// A mapping under another tag must stay invisible.
	other := simcube.NewMapping("A", "Z")
	other.Add("A.e", "Z.f", 1)
	if err := s.PutMapping("auto", other); err != nil {
		t.Fatal(err)
	}

	store := s.MappingStore("manual")
	names := store.SchemaNames()
	want := []string{"A", "B", "C", "D"}
	if len(names) != len(want) {
		t.Fatalf("SchemaNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SchemaNames = %v, want %v", names, want)
		}
	}
	all := store.AllMappings()
	if len(all) != len(pairs) {
		t.Fatalf("AllMappings: %d mappings, want %d", len(all), len(pairs))
	}
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		if prev.FromSchema > cur.FromSchema ||
			(prev.FromSchema == cur.FromSchema && prev.ToSchema > cur.ToSchema) {
			t.Errorf("AllMappings not ordered at %d: %s->%s after %s->%s",
				i, cur.FromSchema, cur.ToSchema, prev.FromSchema, prev.ToSchema)
		}
	}
	between := store.MappingsBetween("D", "C")
	if len(between) != 1 {
		t.Fatalf("MappingsBetween(D,C): %d mappings", len(between))
	}
	if between[0].FromSchema != "D" {
		t.Errorf("MappingsBetween not normalized: from %s", between[0].FromSchema)
	}
}

// TestShardedCompact compacts after churn and expects live state intact
// with smaller logs.
func TestShardedCompact(t *testing.T) {
	s := openSharded(t, filepath.Join(t.TempDir(), "sharded"), 2)
	defer s.Close()
	cands := workload.Candidates(4)
	for round := 0; round < 3; round++ { // superseded records bloat the logs
		for _, c := range cands {
			if err := s.PutSchema(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.DeleteSchema(cands[3].Name); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().LogBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.LogBytes >= before {
		t.Errorf("compact did not shrink logs: %d -> %d bytes", before, after.LogBytes)
	}
	if after.Schemas != 3 {
		t.Errorf("schemas after compact = %d, want 3", after.Schemas)
	}
}

// TestShardedInvalidCounts rejects non-positive shard counts.
func TestShardedInvalidCounts(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := OpenSharded(filepath.Join(t.TempDir(), "x"), n); err == nil {
			t.Errorf("OpenSharded(%d) succeeded", n)
		}
	}
}

// TestShardedConcurrentChurn hammers the store from concurrent writers
// and readers; run under -race this pins the per-shard locking.
func TestShardedConcurrentChurn(t *testing.T) {
	s := openSharded(t, filepath.Join(t.TempDir(), "sharded"), 4)
	defer s.Close()
	cands := workload.Candidates(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c := cands[(w*20+i)%len(cands)]
				if err := s.PutSchema(c); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				for _, sc := range s.Schemas() {
					if sc.Name == "" {
						t.Error("empty schema name")
						return
					}
				}
				s.SchemaNames()
				s.Stats()
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Schemas; got != len(cands) {
		t.Errorf("schemas after churn = %d, want %d", got, len(cands))
	}
}

// TestShardedSingleShardEquivalence: a 1-shard store behaves like one
// Repo for every operation surface the Store interface names.
func TestShardedSingleShardEquivalence(t *testing.T) {
	dir := t.TempDir()
	single, err := Open(filepath.Join(dir, "one.repo"))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded := openSharded(t, filepath.Join(dir, "sharded"), 1)
	defer sharded.Close()

	for _, store := range []Store{single, sharded} {
		for _, c := range workload.Candidates(5) {
			if err := store.PutSchema(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := single.SchemaNames(), sharded.SchemaNames()
	if len(a) != len(b) {
		t.Fatalf("name counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("name %d: %q vs %q", i, a[i], b[i])
		}
	}
}
