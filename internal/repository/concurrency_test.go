package repository

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/simcube"
)

// TestConcurrentAccess hammers the repository from several goroutines:
// writers storing schemas and mappings, readers listing and fetching.
// Run with -race to verify the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	r, err := Open(filepath.Join(t.TempDir(), "conc.repo"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const writers = 4
	const readers = 4
	const perWriter = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s := sampleSchema(fmt.Sprintf("S%d_%d", w, i))
				if err := r.PutSchema(s); err != nil {
					t.Errorf("PutSchema: %v", err)
					return
				}
				m := simcube.NewMapping(s.Name, "target")
				m.Add("a", "b", 0.5)
				if err := r.PutMapping("auto", m); err != nil {
					t.Errorf("PutMapping: %v", err)
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = r.SchemaNames()
				_ = r.Stats()
				_, _ = r.GetMapping("auto", "S0_0", "target")
				_ = r.MappingStore("auto").AllMappings()
			}
		}()
	}
	wg.Wait()

	st := r.Stats()
	if st.Schemas != writers*perWriter {
		t.Errorf("schemas = %d, want %d", st.Schemas, writers*perWriter)
	}
	if st.Mappings != writers*perWriter {
		t.Errorf("mappings = %d, want %d", st.Mappings, writers*perWriter)
	}
}

// TestConcurrentCompact verifies that compaction can run concurrently
// with readers.
func TestConcurrentCompact(t *testing.T) {
	r, err := Open(filepath.Join(t.TempDir(), "cc.repo"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 20; i++ {
		if err := r.PutSchema(sampleSchema("A")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_, _ = r.GetSchema("A")
			_ = r.SchemaNames()
		}
	}()
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, ok := r.GetSchema("A"); !ok {
		t.Error("schema lost around compaction")
	}
}
