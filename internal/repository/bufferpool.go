package repository

import (
	"sync"
	"sync/atomic"
)

// DefaultPageCachePages is the buffer pool's default capacity, in
// pages per shard (256 × 16 KiB = 4 MiB).
const DefaultPageCachePages = 256

// PageCacheStats is a point-in-time snapshot of one buffer pool (or,
// for a sharded store, the sum over its shards' pools). Hits, Misses
// and Evictions are cumulative; Capacity, Resident and Pinned are
// instantaneous.
type PageCacheStats struct {
	// Capacity is the configured frame bound, in pages.
	Capacity int
	// Resident is the number of pages currently cached.
	Resident int
	// Pinned is the number of pages currently pinned by in-flight
	// reads.
	Pinned int
	// Hits counts pin requests served from a resident frame.
	Hits uint64
	// Misses counts pin requests that had to read the page file.
	Misses uint64
	// Evictions counts frames dropped by the clock sweep to admit a
	// missed page.
	Evictions uint64
}

// pageFrame is one cached page. pins and ref are guarded by the pool
// mutex; buf is immutable once fetched (pages are written only by
// checkpoint, which swaps the whole pool).
type pageFrame struct {
	no   uint32
	buf  []byte
	pins int
	ref  bool // clock reference bit: touched since the hand last passed
}

// bufferPool caches page-file pages in a bounded set of frames with
// pin/unpin semantics and clock (second-chance) eviction. A pinned
// frame is never evicted; when every frame is pinned the pool admits
// the new page anyway (temporarily exceeding capacity) rather than
// deadlocking the read — the bound is a target, honored again as soon
// as pins drain.
type bufferPool struct {
	mu     sync.Mutex
	cap    int
	frames map[uint32]*pageFrame
	clock  []*pageFrame
	hand   int
	fetch  func(no uint32) ([]byte, error)

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	pinned    atomic.Int64

	// metrics mirrors the counters into the storage instrument set;
	// nil-safe.
	metrics *StorageMetrics
}

// newBufferPool builds a pool of at most capacity frames over fetch
// (capacity <= 0 selects DefaultPageCachePages).
func newBufferPool(capacity int, fetch func(no uint32) ([]byte, error), m *StorageMetrics) *bufferPool {
	if capacity <= 0 {
		capacity = DefaultPageCachePages
	}
	return &bufferPool{
		cap:     capacity,
		frames:  make(map[uint32]*pageFrame, capacity),
		fetch:   fetch,
		metrics: m,
	}
}

// pin returns the frame holding page no, fetching it on a miss, and
// holds it resident until the matching unpin.
func (bp *bufferPool) pin(no uint32) (*pageFrame, error) {
	bp.mu.Lock()
	if fr, ok := bp.frames[no]; ok {
		fr.pins++
		fr.ref = true
		bp.mu.Unlock()
		bp.hits.Add(1)
		bp.pinned.Add(1)
		bp.metrics.observePageHit()
		bp.metrics.observePagePinned(1)
		return fr, nil
	}
	// Miss: evict down to capacity, then fetch under the lock — the
	// page file is a single seek+read handle, so pool misses serialize
	// on it anyway.
	for len(bp.frames) >= bp.cap {
		if !bp.evictOneLocked() {
			break // every frame pinned: admit over capacity
		}
	}
	buf, err := bp.fetch(no)
	if err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	fr := &pageFrame{no: no, buf: buf, pins: 1, ref: true}
	bp.frames[no] = fr
	bp.clock = append(bp.clock, fr)
	bp.mu.Unlock()
	bp.misses.Add(1)
	bp.pinned.Add(1)
	bp.metrics.observePageMiss()
	bp.metrics.observePagePinned(1)
	return fr, nil
}

// unpin releases one pin on the frame.
func (bp *bufferPool) unpin(fr *pageFrame) {
	bp.mu.Lock()
	fr.pins--
	bp.mu.Unlock()
	bp.pinned.Add(-1)
	bp.metrics.observePagePinned(-1)
}

// evictOneLocked runs the clock hand until it finds an unpinned frame
// whose reference bit is clear (clearing set bits as it passes),
// evicts it, and reports success. It fails only when every frame is
// pinned.
func (bp *bufferPool) evictOneLocked() bool {
	if len(bp.clock) == 0 {
		return false
	}
	// Two full sweeps suffice: the first clears reference bits, the
	// second must find a victim unless everything is pinned.
	for sweep := 0; sweep < 2*len(bp.clock); sweep++ {
		if bp.hand >= len(bp.clock) {
			bp.hand = 0
		}
		fr := bp.clock[bp.hand]
		if fr.pins > 0 {
			bp.hand++
			continue
		}
		if fr.ref {
			fr.ref = false
			bp.hand++
			continue
		}
		delete(bp.frames, fr.no)
		bp.clock = append(bp.clock[:bp.hand], bp.clock[bp.hand+1:]...)
		bp.evictions.Add(1)
		bp.metrics.observePageEviction()
		return true
	}
	return false
}

// stats snapshots the pool.
func (bp *bufferPool) stats() PageCacheStats {
	bp.mu.Lock()
	resident := len(bp.frames)
	bp.mu.Unlock()
	return PageCacheStats{
		Capacity:  bp.cap,
		Resident:  resident,
		Pinned:    int(bp.pinned.Load()),
		Hits:      bp.hits.Load(),
		Misses:    bp.misses.Load(),
		Evictions: bp.evictions.Load(),
	}
}

// Add accumulates two snapshots — the sharded store's per-shard sum.
func (s PageCacheStats) Add(o PageCacheStats) PageCacheStats {
	return PageCacheStats{
		Capacity:  s.Capacity + o.Capacity,
		Resident:  s.Resident + o.Resident,
		Pinned:    s.Pinned + o.Pinned,
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
	}
}
