package repository

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Checkpoint file: a compacted snapshot of live state plus the
// sequence watermark it covers, so restart replays snapshot + log
// suffix instead of the full history. Layout:
//
//	[12B checkpoint magic][8B LE watermark][v2 record frames...]
//
// The frames carry local sequences 1..n (the snapshot is a fold, its
// records have no log positions); the watermark says "this is the
// state through log sequence W". The write protocol makes the
// snapshot durable (fsync file, rename, fsync directory) before the
// log is truncated, so a crash at any point leaves either the old
// (log-only) or the new (checkpoint + suffix) recovery path intact.
var ckptMagic = []byte("COMA.ckpt\x001\n")

// ckptSuffix names a repository's checkpoint file next to its log.
const ckptSuffix = ".ckpt"

func ckptPath(logPath string) string { return logPath + ckptSuffix }

// Checkpoint durably writes a compacted snapshot of the current state
// and truncates the log to its header, bounding restart replay work.
// The sequence counter keeps running, so records appended afterwards
// sort strictly after the watermark.
func (r *Repo) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return os.ErrClosed
	}
	if r.broken != nil {
		return r.broken
	}
	start := time.Now()
	tmpPath := r.path + ckptSuffix + ".tmp"
	tmp, err := r.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	defer r.fs.Remove(tmpPath) // no-op after successful rename
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, r.lastSeq)
	var localSeq uint64
	for _, rec := range r.liveRecords() {
		localSeq++
		buf = appendFrame(buf, localSeq, rec.kind, rec.payload)
	}
	err = func() error {
		if _, err := tmp.Write(buf); err != nil {
			return err
		}
		return tmp.Sync()
	}()
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	if err := r.fs.Rename(tmpPath, ckptPath(r.path)); err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	if err := r.fs.SyncDir(filepath.Dir(r.path)); err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	// The snapshot is durable; the log prefix it covers is now
	// redundant. Truncate the log to its header. A crash before this
	// point replays checkpoint + full log, skipping sequences at or
	// below the watermark.
	if err := r.f.Truncate(int64(len(fileMagicV2))); err != nil {
		return fmt.Errorf("repository: checkpoint %s: truncate log: %w", r.path, err)
	}
	if _, err := r.f.Seek(int64(len(fileMagicV2)), io.SeekStart); err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	r.size = int64(len(fileMagicV2))
	r.dirty = false
	r.metrics.observeCheckpoint(start)
	return nil
}

// loadCheckpoint reads a checkpoint next to logPath. exists is false
// when there is none; damaged marks a checkpoint whose header or
// frames are corrupt (intact frames are still delivered best-effort,
// but an unreadable header discards the whole snapshot).
func loadCheckpoint(fs FS, logPath string, emit func(kind byte, payload []byte) error) (watermark uint64, exists, damaged bool, err error) {
	f, err := fs.OpenFile(ckptPath(logPath), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, false, nil
		}
		return 0, false, false, err
	}
	buf, err := readAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, true, true, err
	}
	hdr := len(ckptMagic) + 8
	if len(buf) < hdr || !bytes.Equal(buf[:len(ckptMagic)], ckptMagic) {
		// Header unreadable: no trustworthy watermark, ignore the file.
		return 0, true, true, nil
	}
	watermark = binary.LittleEndian.Uint64(buf[len(ckptMagic):hdr])
	out, err := scanLog(buf[hdr:], int64(hdr), func(_ uint64, kind byte, payload []byte) error {
		return emit(kind, payload)
	})
	if err != nil {
		return watermark, true, true, err
	}
	damaged = len(out.skipped) > 0 || out.truncated > 0
	return watermark, true, damaged, nil
}
