package repository

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/schema"
)

// Legacy checkpoint file (pre-page-file stores): a flat snapshot of
// live state plus the sequence watermark it covers. Layout:
//
//	[12B checkpoint magic][8B LE watermark][v2 record frames...]
//
// The frames carry local sequences 1..n (the snapshot is a fold, its
// records have no log positions); the watermark says "this is the
// state through log sequence W". Checkpoint now writes the slotted
// page file instead (pagefile.go) — this format is read-only
// compatibility for stores written before the paged design, upgraded
// to a page file on their next Checkpoint.
var ckptMagic = []byte("COMA.ckpt\x001\n")

// ckptSuffix names a repository's legacy checkpoint file next to its
// log.
const ckptSuffix = ".ckpt"

func ckptPath(logPath string) string { return logPath + ckptSuffix }

// Checkpoint durably snapshots the current state into the slotted
// page file and truncates the log to its header, bounding restart
// replay to the tail. The write is crash-ordered: the page file lands
// via tmp+fsync+rename before any legacy checkpoint is dropped or the
// log truncated, so a crash at any point leaves a consistent
// (snapshot, log-suffix) pair. Afterwards the store serves reads from
// the new page file through the buffer pool; mapping and cube values
// held resident for the log tail are released to it, schemas keep
// their identity-stable decoded instances. The sequence counter keeps
// running, so records appended afterwards sort strictly after the
// watermark.
func (r *Repo) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return os.ErrClosed
	}
	if r.broken != nil {
		return r.broken
	}
	start := time.Now()
	recs := r.liveRecordsLocked()
	pageRecs := make([]pageRecord, len(recs))
	for i, rec := range recs {
		pageRecs[i] = pageRecord{kind: rec.kind, key: rec.key, payload: rec.payload}
	}
	img, locs, err := buildPageFile(r.pageSize, r.lastSeq, pageRecs)
	if err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	if _, err := writeFileAtomic(r.fs, pagePath(r.path), img, nil, false); err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	pf, exists, damaged, err := openPageFile(r.fs, r.path)
	if err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	if !exists || damaged {
		return fmt.Errorf("repository: checkpoint %s: page file unreadable after write", r.path)
	}
	old := r.pf
	r.pf = pf
	r.pool = newBufferPool(r.pageCache, pf.readPage, r.metrics)
	old.Close()
	for i, rec := range recs {
		rec.e.paged = true
		rec.e.loc = locs[i]
		// Schemas stay resident (identity-stable instances); mapping
		// and cube payloads now stream from the page file on demand.
		if _, isSchema := rec.e.val.(*schema.Schema); !isSchema {
			rec.e.val = nil
		}
	}
	// The page file supersedes any legacy flat checkpoint. Open
	// prefers the page file, so a surviving .ckpt is inert; removal is
	// best-effort hygiene.
	removeIfExists(r.fs, ckptPath(r.path))
	// The snapshot is durable; the log prefix it covers is now
	// redundant. Truncate the log to its header. A crash before this
	// point replays page file + full log, skipping sequences at or
	// below the watermark.
	if err := r.f.Truncate(int64(len(fileMagicV2))); err != nil {
		return fmt.Errorf("repository: checkpoint %s: truncate log: %w", r.path, err)
	}
	if _, err := r.f.Seek(int64(len(fileMagicV2)), io.SeekStart); err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("repository: checkpoint %s: %w", r.path, err)
	}
	r.size = int64(len(fileMagicV2))
	r.dirty = false
	r.metrics.observeCheckpoint(start)
	return nil
}

// loadCheckpoint reads a legacy checkpoint next to logPath. exists is
// false when there is none; damaged marks a checkpoint whose header or
// frames are corrupt (intact frames are still delivered best-effort,
// but an unreadable header discards the whole snapshot).
func loadCheckpoint(fs FS, logPath string, emit func(kind byte, payload []byte) error) (watermark uint64, exists, damaged bool, err error) {
	f, err := fs.OpenFile(ckptPath(logPath), os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, false, nil
		}
		return 0, false, false, err
	}
	buf, err := readAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, true, true, err
	}
	hdr := len(ckptMagic) + 8
	if len(buf) < hdr || !bytes.Equal(buf[:len(ckptMagic)], ckptMagic) {
		// Header unreadable: no trustworthy watermark, ignore the file.
		return 0, true, true, nil
	}
	watermark = binary.LittleEndian.Uint64(buf[len(ckptMagic):hdr])
	out, err := scanLog(buf[hdr:], int64(hdr), func(_ uint64, kind byte, payload []byte) error {
		return emit(kind, payload)
	})
	if err != nil {
		return watermark, true, true, err
	}
	damaged = len(out.skipped) > 0 || out.truncated > 0
	return watermark, true, damaged, nil
}
