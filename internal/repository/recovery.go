package repository

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// Log frame, version 2. Every record is
//
//	[4B record magic][8B LE sequence][4B LE payload len][1B kind][payload][4B LE CRC32]
//
// where the CRC covers sequence+len+kind+payload. The per-record magic
// and the strictly monotonic sequence number exist for salvage: after
// damage, recovery scans forward byte-wise for the next magic and
// accepts a frame only if its CRC verifies and its sequence advances,
// so one corrupt record costs one record, not the rest of the log.
var (
	fileMagicV1 = []byte("COMA.repo\x001\n")
	fileMagicV2 = []byte("COMA.repo\x002\n")
	recMagic    = [4]byte{0xC5, 'R', 'E', 'C'}
)

const (
	recHdrSize    = 4 + 8 + 4 + 1 // magic + seq + len + kind
	recTailSize   = 4             // CRC32
	maxPayloadLen = 1 << 30
)

// appendFrame appends one v2 record frame to dst.
func appendFrame(dst []byte, seq uint64, kind byte, payload []byte) []byte {
	dst = append(dst, recMagic[:]...)
	var hdr [13]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	hdr[12] = kind
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	var tail [recTailSize]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	return append(dst, tail[:]...)
}

// parseFrame validates the frame at buf[off:] and returns it. A frame
// is accepted only if the record magic matches, the length is
// plausible and in-bounds, the kind is known, the CRC verifies, and
// the sequence strictly exceeds prevSeq.
func parseFrame(buf []byte, off int, prevSeq uint64) (seq uint64, kind byte, payload []byte, size int, ok bool) {
	if off+recHdrSize+recTailSize > len(buf) {
		return 0, 0, nil, 0, false
	}
	if !bytes.Equal(buf[off:off+4], recMagic[:]) {
		return 0, 0, nil, 0, false
	}
	seq = binary.LittleEndian.Uint64(buf[off+4 : off+12])
	plen := binary.LittleEndian.Uint32(buf[off+12 : off+16])
	kind = buf[off+16]
	if plen > maxPayloadLen || kind < kindSchema || kind > kindRewrite || seq <= prevSeq {
		return 0, 0, nil, 0, false
	}
	size = recHdrSize + int(plen) + recTailSize
	if off+size > len(buf) {
		return 0, 0, nil, 0, false
	}
	want := binary.LittleEndian.Uint32(buf[off+recHdrSize+int(plen):])
	crc := crc32.NewIEEE()
	crc.Write(buf[off+4 : off+recHdrSize+int(plen)])
	if crc.Sum32() != want {
		return 0, 0, nil, 0, false
	}
	return seq, kind, buf[off+recHdrSize : off+recHdrSize+int(plen)], size, true
}

// ByteRange is a damaged region of the log, in absolute file offsets.
type ByteRange struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

// RecoveryReport describes what Open found and did while replaying a
// log. A clean open recovers every record and neither skips, truncates
// nor rewrites anything.
type RecoveryReport struct {
	// Path is the log file the report describes.
	Path string `json:"path"`
	// Recovered counts records replayed into the store (checkpoint
	// records included).
	Recovered int `json:"recovered"`
	// SkippedRanges are mid-log damaged regions salvage scanned past;
	// the records they held are lost.
	SkippedRanges []ByteRange `json:"skippedRanges,omitempty"`
	// SkippedBytes sums the skipped ranges.
	SkippedBytes int64 `json:"skippedBytes,omitempty"`
	// TruncatedBytes is the length of the torn tail discarded after the
	// last valid record.
	TruncatedBytes int64 `json:"truncatedBytes,omitempty"`
	// Salvaged reports that damage forced a full rewrite of the log
	// from the recovered state (mid-log or header damage).
	Salvaged bool `json:"salvaged,omitempty"`
	// UpgradedV1 reports that a version-1 log was replayed with the
	// legacy frame format and rewritten as version 2.
	UpgradedV1 bool `json:"upgradedV1,omitempty"`
	// CheckpointUsed reports that replay started from a checkpoint
	// snapshot and only the log suffix past its watermark was replayed.
	CheckpointUsed bool `json:"checkpointUsed,omitempty"`
	// CheckpointDamaged reports that a checkpoint file existed but was
	// corrupt; its intact records were salvaged best-effort.
	CheckpointDamaged bool `json:"checkpointDamaged,omitempty"`
	// PageFileUsed reports that the snapshot was a slotted page file
	// and the store serves paged reads through the buffer pool.
	PageFileUsed bool `json:"pageFileUsed,omitempty"`
	// PagesDamaged counts snapshot pages whose checksum or structure
	// failed; their records were lost and the store salvage-rewritten.
	PagesDamaged int `json:"pagesDamaged,omitempty"`
}

// Clean reports whether the open found the log fully intact.
func (rep *RecoveryReport) Clean() bool {
	return len(rep.SkippedRanges) == 0 && rep.TruncatedBytes == 0 &&
		!rep.Salvaged && !rep.UpgradedV1 && !rep.CheckpointDamaged &&
		rep.PagesDamaged == 0
}

// String renders the report in log-line form.
func (rep *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d records", rep.Path, rep.Recovered)
	if rep.PageFileUsed {
		b.WriteString(" (from page file)")
	} else if rep.CheckpointUsed {
		b.WriteString(" (from checkpoint)")
	}
	if rep.Clean() {
		b.WriteString(", clean")
		return b.String()
	}
	if rep.SkippedBytes > 0 {
		fmt.Fprintf(&b, ", skipped %d damaged bytes in %d ranges", rep.SkippedBytes, len(rep.SkippedRanges))
	}
	if rep.TruncatedBytes > 0 {
		fmt.Fprintf(&b, ", truncated %d-byte torn tail", rep.TruncatedBytes)
	}
	if rep.CheckpointDamaged {
		b.WriteString(", checkpoint damaged")
	}
	if rep.PagesDamaged > 0 {
		fmt.Fprintf(&b, ", %d damaged pages dropped", rep.PagesDamaged)
	}
	if rep.UpgradedV1 {
		b.WriteString(", upgraded v1 log")
	}
	if rep.Salvaged {
		b.WriteString(", salvage-rewritten")
	}
	return b.String()
}

// scanOutcome summarizes one pass of scanLog.
type scanOutcome struct {
	recovered int
	skipped   []ByteRange
	lastSeq   uint64 // highest sequence accepted (0 if none)
	end       int64  // absolute offset just past the last valid record
	truncated int64  // torn-tail bytes after end (always trailing)
}

// scanLog walks buf — the log body whose first byte sits at absolute
// file offset base — delivering every valid frame to emit in order.
// On damage it scans forward for the next acceptable frame; damage
// with valid records after it becomes a skipped range, damage at the
// very end counts as a torn tail.
func scanLog(buf []byte, base int64, emit func(seq uint64, kind byte, payload []byte) error) (scanOutcome, error) {
	out := scanOutcome{end: base}
	off := 0
	damageStart := -1
	for off < len(buf) {
		seq, kind, payload, size, ok := parseFrame(buf, off, out.lastSeq)
		if !ok {
			if damageStart < 0 {
				damageStart = off
			}
			// Jump to the next candidate magic instead of re-testing
			// every byte.
			next := bytes.Index(buf[off+1:], recMagic[:])
			if next < 0 {
				off = len(buf)
				break
			}
			off += 1 + next
			continue
		}
		if damageStart >= 0 {
			out.skipped = append(out.skipped, ByteRange{Off: base + int64(damageStart), Len: int64(off - damageStart)})
			damageStart = -1
		}
		if err := emit(seq, kind, payload); err != nil {
			return out, err
		}
		out.recovered++
		out.lastSeq = seq
		off += size
		out.end = base + int64(off)
	}
	if damageStart >= 0 {
		out.truncated = int64(len(buf) - damageStart)
	}
	return out, nil
}

// legacyScan walks a version-1 log (header included in buf):
// [4B LE len][1B kind][payload][4B CRC32(kind+payload)] frames with no
// per-record magic or sequence, stopping at the first damaged record
// (the v1 semantics — salvage needs the v2 frame). It returns the
// offset where walking stopped.
func legacyScan(buf []byte, emit func(kind byte, payload []byte) error) (int, error) {
	off := len(fileMagicV1)
	for off < len(buf) {
		if off+5 > len(buf) {
			break
		}
		payloadLen := binary.LittleEndian.Uint32(buf[off:])
		kind := buf[off+4]
		if payloadLen > maxPayloadLen {
			break
		}
		end := off + 5 + int(payloadLen) + 4
		if end > len(buf) {
			break
		}
		payload := buf[off+5 : off+5+int(payloadLen)]
		want := binary.LittleEndian.Uint32(buf[end-4:])
		crc := crc32.NewIEEE()
		crc.Write([]byte{kind})
		crc.Write(payload)
		if crc.Sum32() != want {
			break
		}
		if err := emit(kind, payload); err != nil {
			return off, err
		}
		off = end
	}
	return off, nil
}

// readAll reads the file from the start; the offset is left at EOF.
func readAll(f File) ([]byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}
