package repository

import (
	"os"
	"path/filepath"
)

// writeFileAtomic durably replaces path with data using the
// crash-ordered protocol every repository rewrite shares: write a temp
// file next to the target, fsync it, run the prepare hook (the window
// for dropping files the new one supersedes — a stale checkpoint or
// page file surviving beside a self-contained log could resurrect
// deleted keys), rename over the target, fsync the parent directory.
// A crash at any point leaves either the old file or the new one
// intact, never a torn mixture.
//
// With keepOpen the still-open handle of the renamed file is returned
// (positioned at its end) so the caller can keep appending to it —
// Compact's rewrite does, the log handle it installs is the file it
// just wrote. Without keepOpen the handle is closed and the returned
// File is nil.
func writeFileAtomic(fsys FS, path string, data []byte, prepare func() error, keepOpen bool) (File, error) {
	tmpPath := path + ".tmp"
	tmp, err := fsys.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	keepTmp := false
	defer func() {
		if !keepTmp {
			tmp.Close()
			fsys.Remove(tmpPath)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return nil, err
	}
	if err := tmp.Sync(); err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	if prepare != nil {
		if err := prepare(); err != nil {
			return nil, err
		}
		if err := fsys.SyncDir(dir); err != nil {
			return nil, err
		}
	}
	if err := fsys.Rename(tmpPath, path); err != nil {
		return nil, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, err
	}
	keepTmp = true
	if keepOpen {
		return tmp, nil
	}
	return nil, tmp.Close()
}

// AtomicWriteFile durably writes data to path with the shared
// tmp+fsync+rename+dirsync protocol. It is the write primitive for
// sidecar snapshots kept next to a repository (the warm-restart
// analysis artifacts); fsys nil selects the real filesystem.
func AtomicWriteFile(fsys FS, path string, data []byte) error {
	if fsys == nil {
		fsys = OSFS
	}
	_, err := writeFileAtomic(fsys, path, data, nil, false)
	return err
}

// removeIfExists deletes path, tolerating its absence.
func removeIfExists(fsys FS, path string) error {
	if err := fsys.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
