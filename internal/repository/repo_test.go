package repository

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/schema"
	"repro/internal/simcube"
)

func tempRepo(t *testing.T) (*Repo, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "coma.repo")
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, path
}

func sampleSchema(name string) *schema.Schema {
	s := schema.New(name)
	ship := schema.NewNode("ShipTo")
	addr := schema.NewNode("Address")
	addr.AddChild(&schema.Node{Name: "City", TypeName: "xsd:string", Kind: schema.ElemSimple})
	addr.AddChild(&schema.Node{Name: "Zip", TypeName: "xsd:decimal"})
	ship.AddChild(addr)
	bill := schema.NewNode("BillTo")
	bill.AddChild(addr) // shared fragment
	s.Root.AddChild(ship)
	s.Root.AddChild(bill)
	ship.AddRef(bill)
	ship.SetAnnotation("primaryKey", "poNo")
	return s
}

func TestSchemaRoundtrip(t *testing.T) {
	r, path := tempRepo(t)
	s := sampleSchema("PO")
	if err := r.PutSchema(s); err != nil {
		t.Fatal(err)
	}
	// Reopen from disk and compare structure.
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, ok := r2.GetSchema("PO")
	if !ok {
		t.Fatal("schema not found after reopen")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded schema invalid: %v", err)
	}
	wantPaths := make([]string, 0)
	for _, p := range s.Paths() {
		wantPaths = append(wantPaths, p.String())
	}
	gotPaths := make([]string, 0)
	for _, p := range got.Paths() {
		gotPaths = append(gotPaths, p.String())
	}
	if len(gotPaths) != len(wantPaths) {
		t.Fatalf("paths = %v, want %v", gotPaths, wantPaths)
	}
	for i := range wantPaths {
		if gotPaths[i] != wantPaths[i] {
			t.Errorf("path[%d] = %s, want %s", i, gotPaths[i], wantPaths[i])
		}
	}
	// Shared fragment preserved: Address node identical under both parents.
	if len(got.Nodes()) != len(s.Nodes()) {
		t.Errorf("nodes = %d, want %d (sharing lost?)", len(got.Nodes()), len(s.Nodes()))
	}
	// Annotations and refs survive.
	ship := got.Root.Children()[0]
	if ship.Annotation("primaryKey") != "poNo" {
		t.Error("annotation lost")
	}
	if len(ship.Refs()) != 1 || ship.Refs()[0].Name != "BillTo" {
		t.Error("referential link lost")
	}
}

func TestSchemaDeleteAndNames(t *testing.T) {
	r, _ := tempRepo(t)
	r.PutSchema(sampleSchema("A"))
	r.PutSchema(sampleSchema("B"))
	names := r.SchemaNames()
	if len(names) != 2 || names[0] != "A" {
		t.Fatalf("SchemaNames = %v", names)
	}
	if err := r.DeleteSchema("A"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.GetSchema("A"); ok {
		t.Error("deleted schema still present")
	}
	if err := r.DeleteSchema("A"); err != nil {
		t.Error("double delete should be a no-op")
	}
}

func TestInvalidSchemaRejected(t *testing.T) {
	r, _ := tempRepo(t)
	bad := schema.New("bad")
	a := schema.NewNode("A")
	a.AddChild(a) // self-cycle
	bad.Root.AddChild(a)
	if err := r.PutSchema(bad); err == nil {
		t.Error("cyclic schema should be rejected")
	}
}

func TestMappingRoundtrip(t *testing.T) {
	r, path := tempRepo(t)
	m := simcube.NewMapping("PO1", "PO2")
	m.Add("ShipTo.City", "DeliverTo.Town", 0.85)
	m.Add("BillTo.Zip", "InvoiceTo.Postcode", 1)
	if err := r.PutMapping("manual", m); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, ok := r2.GetMapping("manual", "PO1", "PO2")
	if !ok || got.Len() != 2 {
		t.Fatalf("mapping lost: %v, %v", got, ok)
	}
	if sim, _ := got.Get("ShipTo.City", "DeliverTo.Town"); sim != 0.85 {
		t.Error("similarity lost")
	}
	// Reverse orientation inverts.
	inv, ok := r2.GetMapping("manual", "PO2", "PO1")
	if !ok || !inv.Contains("DeliverTo.Town", "ShipTo.City") {
		t.Error("inverted lookup failed")
	}
	// Unknown tag misses.
	if _, ok := r2.GetMapping("auto", "PO1", "PO2"); ok {
		t.Error("tag isolation violated")
	}
}

func TestMappingOverwriteAndDelete(t *testing.T) {
	r, _ := tempRepo(t)
	m1 := simcube.NewMapping("A", "B")
	m1.Add("x", "y", 0.5)
	r.PutMapping("auto", m1)
	m2 := simcube.NewMapping("A", "B")
	m2.Add("x", "y", 0.9)
	r.PutMapping("auto", m2)
	got, _ := r.GetMapping("auto", "A", "B")
	if sim, _ := got.Get("x", "y"); sim != 0.9 {
		t.Error("overwrite failed")
	}
	if err := r.DeleteMapping("auto", "A", "B"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.GetMapping("auto", "A", "B"); ok {
		t.Error("delete failed")
	}
	if err := r.DeleteMapping("auto", "A", "B"); err != nil {
		t.Error("double delete should be a no-op")
	}
}

func TestCubeRoundtrip(t *testing.T) {
	r, path := tempRepo(t)
	c := simcube.NewCube([]string{"a", "b"}, []string{"x"})
	l := c.NewLayer("Name")
	l.Set(0, 0, 0.25)
	l.Set(1, 0, 0.75)
	c.NewLayer("TypeName").Set(1, 0, 0.5)
	if err := r.PutCube("S1|S2", c); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, ok := r2.GetCube("S1|S2")
	if !ok || got.Layers() != 2 {
		t.Fatalf("cube lost: %v", ok)
	}
	if got.Layer("Name").Get(1, 0) != 0.75 {
		t.Error("layer data lost")
	}
	if got.Layer("TypeName").Get(1, 0) != 0.5 {
		t.Error("second layer lost")
	}
	if err := r2.DeleteCube("S1|S2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.GetCube("S1|S2"); ok {
		t.Error("cube delete failed")
	}
	if err := r2.DeleteCube("S1|S2"); err != nil {
		t.Error("double cube delete should be a no-op")
	}
}

func TestCrashRecoveryTruncatesTornTail(t *testing.T) {
	r, path := tempRepo(t)
	r.PutSchema(sampleSchema("A"))
	m := simcube.NewMapping("A", "B")
	m.Add("x", "y", 1)
	r.PutMapping("manual", m)
	r.Close()

	// Simulate a torn final write: chop off the last 3 bytes.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer r2.Close()
	// Schema record is intact; the torn mapping record is dropped.
	if _, ok := r2.GetSchema("A"); !ok {
		t.Error("intact record lost during recovery")
	}
	if _, ok := r2.GetMapping("manual", "A", "B"); ok {
		t.Error("torn record should be discarded")
	}
	// The repo is writable again after recovery.
	if err := r2.PutMapping("manual", m); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	r, path := tempRepo(t)
	r.PutSchema(sampleSchema("A"))
	r.PutSchema(sampleSchema("B"))
	r.Close()

	// Flip a byte in the middle of the first record: the CRC check must
	// reject it, and salvage must carry on to the next record boundary
	// — one corrupt record costs one record, not the rest of the log.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(fileMagicV2)+recHdrSize+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer r2.Close()
	if _, ok := r2.GetSchema("A"); ok {
		t.Error("corrupted record should not be applied")
	}
	if _, ok := r2.GetSchema("B"); !ok {
		t.Error("record after the corruption should be salvaged")
	}
	rep := r2.RecoveryReport()
	if rep.Clean() || !rep.Salvaged || len(rep.SkippedRanges) != 1 || rep.Recovered != 1 {
		t.Errorf("unexpected recovery report: %+v", rep)
	}
}

func TestNotARepositoryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("hello world, definitely not a repo"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("foreign file should be rejected")
	}
}

func TestCompact(t *testing.T) {
	r, path := tempRepo(t)
	// Generate dead records: overwrites and deletes.
	for i := 0; i < 10; i++ {
		r.PutSchema(sampleSchema("A"))
	}
	r.PutSchema(sampleSchema("B"))
	r.DeleteSchema("B")
	m := simcube.NewMapping("A", "B")
	m.Add("x", "y", 1)
	r.PutMapping("manual", m)
	c := simcube.NewCube([]string{"a"}, []string{"x"})
	c.NewLayer("Name").Set(0, 0, 0.5)
	r.PutCube("A|B", c)

	before := r.Stats().LogBytes
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	after := r.Stats().LogBytes
	if after >= before {
		t.Errorf("compaction did not shrink log: %d -> %d", before, after)
	}
	// Live data survives compaction and a reopen.
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.GetSchema("A"); !ok {
		t.Error("schema lost in compaction")
	}
	if _, ok := r2.GetSchema("B"); ok {
		t.Error("deleted schema resurrected")
	}
	if _, ok := r2.GetMapping("manual", "A", "B"); !ok {
		t.Error("mapping lost in compaction")
	}
	if _, ok := r2.GetCube("A|B"); !ok {
		t.Error("cube lost in compaction")
	}
}

func TestWritesAfterCompact(t *testing.T) {
	r, path := tempRepo(t)
	r.PutSchema(sampleSchema("A"))
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := r.PutSchema(sampleSchema("C")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.GetSchema("C"); !ok {
		t.Error("post-compaction write lost")
	}
}

func TestTagStore(t *testing.T) {
	r, _ := tempRepo(t)
	m1 := simcube.NewMapping("S1", "S2")
	m1.Add("a", "b", 1)
	r.PutMapping("manual", m1)
	m2 := simcube.NewMapping("S2", "S3")
	m2.Add("b", "c", 1)
	r.PutMapping("manual", m2)
	m3 := simcube.NewMapping("S1", "S3")
	m3.Add("a", "c", 0.4)
	r.PutMapping("auto", m3)

	ts := r.MappingStore("manual")
	names := ts.SchemaNames()
	if len(names) != 3 {
		t.Fatalf("SchemaNames = %v", names)
	}
	if got := ts.MappingsBetween("S2", "S1"); len(got) != 1 || !got[0].Contains("b", "a") {
		t.Error("inverted tag-store lookup failed")
	}
	if got := ts.AllMappings(); len(got) != 2 {
		t.Errorf("AllMappings = %d, want 2 (tag isolation)", len(got))
	}
	auto := r.MappingStore("auto")
	if got := auto.AllMappings(); len(got) != 1 {
		t.Errorf("auto AllMappings = %d", len(got))
	}
}

func TestStats(t *testing.T) {
	r, _ := tempRepo(t)
	st := r.Stats()
	if st.Schemas != 0 || st.Mappings != 0 || st.Cubes != 0 {
		t.Error("fresh repo should be empty")
	}
	r.PutSchema(sampleSchema("A"))
	st = r.Stats()
	if st.Schemas != 1 || st.LogBytes <= int64(len(fileMagicV2)) {
		t.Errorf("Stats = %+v", st)
	}
}
