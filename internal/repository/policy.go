package repository

import (
	"fmt"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable
// storage — the durability/throughput dial of the log:
//
//   - SyncAlways: every append fsyncs before it returns. An
//     acknowledged write survives any crash. This is the default and
//     the only policy under which acknowledgement implies durability.
//   - SyncInterval(d): appends return after the OS write; a background
//     syncer fsyncs the log at most every d, batching all appends since
//     the previous fsync under one disk flush (group commit). The
//     crash window is d: acknowledged writes from the last unflushed
//     interval can be lost on power failure or kernel crash (a plain
//     process crash loses nothing — the OS still holds the pages).
//   - SyncNone: never fsync except on Close, Checkpoint and Compact.
//     For tests and bulk loads that re-run on loss.
//
// Whatever the policy, the log never lies about order: a record is
// written in full before the next one starts, so recovery always
// yields a prefix of the acknowledged history (plus salvaged suffix
// records when the damage is in the middle).
type SyncPolicy struct {
	mode     syncMode
	interval time.Duration
}

type syncMode uint8

const (
	syncAlways syncMode = iota
	syncInterval
	syncNone
)

// SyncAlways fsyncs every append before acknowledging it.
func SyncAlways() SyncPolicy { return SyncPolicy{mode: syncAlways} }

// SyncInterval groups appends under one fsync at most every d; d <= 0
// selects DefaultSyncInterval.
func SyncInterval(d time.Duration) SyncPolicy {
	if d <= 0 {
		d = DefaultSyncInterval
	}
	return SyncPolicy{mode: syncInterval, interval: d}
}

// SyncNone never fsyncs on append (only on Close, Checkpoint and
// Compact). For tests.
func SyncNone() SyncPolicy { return SyncPolicy{mode: syncNone} }

// DefaultSyncInterval is the group-commit interval selected by
// SyncInterval(0).
const DefaultSyncInterval = 50 * time.Millisecond

// Interval returns the group-commit interval (zero unless the policy
// is SyncInterval).
func (p SyncPolicy) Interval() time.Duration {
	if p.mode != syncInterval {
		return 0
	}
	return p.interval
}

// String renders the policy in the form ParseSyncPolicy reads.
func (p SyncPolicy) String() string {
	switch p.mode {
	case syncInterval:
		return p.interval.String()
	case syncNone:
		return "none"
	default:
		return "always"
	}
}

// ParseSyncPolicy reads a policy from its flag form: "always", "none",
// or a group-commit interval such as "100ms".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways(), nil
	case "none":
		return SyncNone(), nil
	case "interval":
		return SyncInterval(0), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return SyncPolicy{}, fmt.Errorf("repository: sync policy %q is not always, none or a duration", s)
	}
	if d <= 0 {
		return SyncNone(), nil
	}
	return SyncInterval(d), nil
}
