package repository

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the slice of *os.File the log layer uses. Abstracting it (and
// FS below) lets tests interpose FaultFS to inject storage faults at
// exact byte offsets — the simulation-style fault campaigns that prove
// recovery instead of assuming it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the repository needs: open, atomic
// replace, delete, and directory fsync (required for rename durability
// on POSIX systems).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS is the default FS backing repositories opened without WithFS.
var OSFS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// FaultKind selects what happens at the armed byte offset.
type FaultKind int

const (
	// FaultFail makes the write that reaches the armed offset fail
	// outright: no byte of it is written.
	FaultFail FaultKind = iota
	// FaultShortWrite writes the bytes up to the armed offset, then
	// fails — a torn write, the classic crash-mid-append shape.
	FaultShortWrite
	// FaultBitFlip inverts the byte at the armed offset and lets the
	// write succeed — silent media corruption the CRC must catch.
	FaultBitFlip
)

// ErrInjectedFault is the error injected writes fail with.
var ErrInjectedFault = fmt.Errorf("repository: injected storage fault")

// FaultFS wraps an FS and injects one fault at the Nth byte written
// (counted across all files opened through it, from the moment Arm is
// called). It implements FS; pass it to Open via WithFS.
type FaultFS struct {
	// Inner is the wrapped filesystem; nil means OSFS.
	Inner FS

	mu      sync.Mutex
	armed   bool
	kind    FaultKind
	at      int64 // byte offset (within writes since Arm) where the fault hits
	written int64 // bytes written since Arm
	fired   bool
}

// NewFaultFS wraps inner (nil = the real filesystem).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS
	}
	return &FaultFS{Inner: inner}
}

// Arm schedules one fault of the given kind at the n-th byte written
// from now (0 = the very next byte). Re-arming resets the byte counter
// and the fired flag.
func (f *FaultFS) Arm(kind FaultKind, n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed, f.kind, f.at, f.written, f.fired = true, kind, n, 0, false
}

// Disarm cancels a pending fault.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = false
}

// Fired reports whether the armed fault has been injected.
func (f *FaultFS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// BytesWritten returns the bytes written through f since the last Arm.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: inner}, nil
}
func (f *FaultFS) Rename(oldpath, newpath string) error { return f.Inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error             { return f.Inner.Remove(name) }
func (f *FaultFS) SyncDir(dir string) error             { return f.Inner.SyncDir(dir) }

// faultFile routes writes through the FaultFS byte counter.
type faultFile struct {
	fs *FaultFS
	File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	if !f.armed || f.fired || f.written+int64(len(p)) <= f.at {
		f.written += int64(len(p))
		f.mu.Unlock()
		return ff.File.Write(p)
	}
	// The armed offset lands inside this write.
	f.fired = true
	kind, local := f.kind, f.at-f.written
	switch kind {
	case FaultFail:
		f.mu.Unlock()
		return 0, ErrInjectedFault
	case FaultShortWrite:
		f.written += local
		f.mu.Unlock()
		n, err := ff.File.Write(p[:local])
		if err == nil {
			err = ErrInjectedFault
		}
		return n, err
	default: // FaultBitFlip
		f.written += int64(len(p))
		f.mu.Unlock()
		q := make([]byte, len(p))
		copy(q, p)
		q[local] ^= 0xFF
		return ff.File.Write(q)
	}
}
