package repository

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/simcube"
)

// --- page file unit tests ------------------------------------------

func TestPageFileBuildRoundTrip(t *testing.T) {
	recs := []pageRecord{
		{kind: kindSchema, key: "alpha", payload: bytes.Repeat([]byte{0xA1}, 100)},
		{kind: kindSchema, key: "beta", payload: bytes.Repeat([]byte{0xB2}, 300)},
		{kind: kindCube, key: "gamma", payload: bytes.Repeat([]byte{0xC3}, 3000)}, // overflow at 512B pages
		{kind: kindMapping, key: "delta", payload: nil},
		{kind: kindCube, key: "epsilon", payload: bytes.Repeat([]byte{0xE5}, 700)}, // one-page overflow
	}
	logPath := filepath.Join(t.TempDir(), "pf.repo")
	img, locs, err := buildPageFile(512, 42, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != len(recs) {
		t.Fatalf("got %d locations for %d records", len(locs), len(recs))
	}
	if err := os.WriteFile(pagePath(logPath), img, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, exists, damaged, err := openPageFile(OSFS, logPath)
	if err != nil || !exists || damaged {
		t.Fatalf("openPageFile: exists=%v damaged=%v err=%v", exists, damaged, err)
	}
	defer pf.Close()
	if pf.watermark != 42 {
		t.Fatalf("watermark = %d, want 42", pf.watermark)
	}
	if pf.pageCount < 2 {
		t.Fatalf("pageCount = %d, want a multi-page file", pf.pageCount)
	}
	// The directory scan must surface every record exactly once.
	scanned := make(map[string]recLoc)
	dmg, err := pf.scanPages(func(kind byte, key string, loc recLoc) {
		scanned[key] = loc
	})
	if err != nil || len(dmg) != 0 {
		t.Fatalf("scanPages: damaged=%v err=%v", dmg, err)
	}
	if len(scanned) != len(recs) {
		t.Fatalf("scan found %d records, want %d", len(scanned), len(recs))
	}
	// Every record reads back bit-identical through a pool smaller than
	// the file, so reads cross eviction boundaries.
	pool := newBufferPool(2, pf.readPage, nil)
	for i, rec := range recs {
		kind, key, payload, err := pf.record(pool, locs[i])
		if err != nil {
			t.Fatalf("record %q: %v", rec.key, err)
		}
		if kind != rec.kind || key != rec.key || !bytes.Equal(payload, rec.payload) {
			t.Fatalf("record %q: kind=%d key=%q len=%d, want kind=%d len=%d",
				rec.key, kind, key, len(payload), rec.kind, len(rec.payload))
		}
		if scanned[rec.key] != locs[i] {
			t.Fatalf("record %q: scan loc %v != build loc %v", rec.key, scanned[rec.key], locs[i])
		}
	}
	st := pool.stats()
	if st.Misses == 0 {
		t.Error("pool reports no misses after cold reads")
	}
	if st.Resident > st.Capacity {
		t.Errorf("resident %d exceeds capacity %d with no pins held", st.Resident, st.Capacity)
	}
}

func TestBufferPoolEviction(t *testing.T) {
	fetched := make(map[uint32]int)
	fetch := func(no uint32) ([]byte, error) {
		fetched[no]++
		return []byte{byte(no)}, nil
	}
	bp := newBufferPool(2, fetch, nil)
	get := func(no uint32) *pageFrame {
		t.Helper()
		fr, err := bp.pin(no)
		if err != nil {
			t.Fatal(err)
		}
		if fr.buf[0] != byte(no) {
			t.Fatalf("page %d served wrong frame %d", no, fr.buf[0])
		}
		return fr
	}
	bp.unpin(get(1))
	bp.unpin(get(2))
	bp.unpin(get(1)) // hit
	bp.unpin(get(3)) // forces one eviction
	st := bp.stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 1 eviction", st)
	}
	if st.Resident != 2 || st.Pinned != 0 {
		t.Fatalf("stats = %+v, want 2 resident and 0 pinned", st)
	}
	// With every frame pinned the pool admits over capacity instead of
	// deadlocking, and recovers the bound once pins drain.
	a, b := get(4), get(5)
	c := get(6)
	over := bp.stats()
	if over.Pinned != 3 {
		t.Fatalf("pinned = %d, want 3", over.Pinned)
	}
	if over.Resident <= 2 {
		t.Fatalf("resident = %d, expected admission over capacity", over.Resident)
	}
	bp.unpin(a)
	bp.unpin(b)
	bp.unpin(c)
	bp.unpin(get(7))
	after := bp.stats()
	if after.Resident > 2 || after.Pinned != 0 {
		t.Fatalf("stats after drain = %+v, want resident back under capacity", after)
	}
	// Pinned frames were never evicted: no page was fetched twice while
	// its frame was pinned.
	for no, n := range fetched {
		if n > 1 && (no == 4 || no == 5 || no == 6) {
			t.Errorf("page %d fetched %d times; pinned frame evicted?", no, n)
		}
	}
}

// --- paged repository integration ----------------------------------

// pagedOps populates a store with enough mixed state to span several
// small pages, returning the expected live keys per record kind.
func pagedOps(t *testing.T, r *Repo, n int) map[RecordKind]map[string]bool {
	t.Helper()
	want := map[RecordKind]map[string]bool{
		RecSchemas:  {},
		RecMappings: {},
		RecCubes:    {},
	}
	for i := 0; i < n; i++ {
		sName := fmt.Sprintf("S%03d", i)
		if err := r.PutSchema(sampleSchema(sName)); err != nil {
			t.Fatal(err)
		}
		want[RecSchemas][sName] = true
		from, to := fmt.Sprintf("F%03d", i), fmt.Sprintf("T%03d", i)
		m := simcube.NewMapping(from, to)
		m.Add("x", "y", 0.5)
		if err := r.PutMapping("auto", m); err != nil {
			t.Fatal(err)
		}
		want[RecMappings]["auto|"+from+"|"+to] = true
		cKey := fmt.Sprintf("C%03d", i)
		c := simcube.NewCube([]string{"a", "b", "c"}, []string{"d", "e"})
		c.NewLayer("Name").Set(0, 0, float64(i)/float64(n))
		if err := r.PutCube(cKey, c); err != nil {
			t.Fatal(err)
		}
		want[RecCubes][cKey] = true
	}
	// A few deletes so tombstones are exercised too.
	for i := 0; i < n; i += 5 {
		cKey := fmt.Sprintf("C%03d", i)
		if err := r.DeleteCube(cKey); err != nil {
			t.Fatal(err)
		}
		delete(want[RecCubes], cKey)
	}
	return want
}

// iterAll drains Iter for one kind into ordered keys and payload
// copies.
func iterAll(t *testing.T, st Store, k RecordKind) ([]string, map[string][]byte) {
	t.Helper()
	var keys []string
	payloads := make(map[string][]byte)
	err := st.Iter(k, func(key string, payload []byte) error {
		keys = append(keys, key)
		payloads[key] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys, payloads
}

// TestPagedReopenBitIdentical is the golden paged-vs-resident check at
// the storage layer: the payload bytes a store serves must be
// bit-identical before a checkpoint (log-resident values), after it
// (paged through the buffer pool), and after a reopen from the page
// file.
func TestPagedReopenBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coma.repo")
	r, err := Open(path, WithSyncPolicy(SyncNone()), WithPageSize(512), WithPageCache(8))
	if err != nil {
		t.Fatal(err)
	}
	want := pagedOps(t, r, 20)
	kinds := []RecordKind{RecSchemas, RecMappings, RecCubes}
	before := make(map[RecordKind]map[string][]byte)
	for _, k := range kinds {
		keys, payloads := iterAll(t, r, k)
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("kind %d: Iter keys not sorted: %v", k, keys)
		}
		if len(keys) != len(want[k]) {
			t.Fatalf("kind %d: %d keys, want %d", k, len(keys), len(want[k]))
		}
		before[k] = payloads
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(pagePath(path)); err != nil {
		t.Fatalf("no page file after checkpoint: %v", err)
	}
	if _, err := os.Stat(ckptPath(path)); !os.IsNotExist(err) {
		t.Fatalf("legacy checkpoint present after checkpoint: %v", err)
	}
	check := func(st Store, ctx string) {
		t.Helper()
		for _, k := range kinds {
			keys, payloads := iterAll(t, st, k)
			if len(keys) != len(before[k]) {
				t.Fatalf("%s: kind %d: %d keys, want %d", ctx, k, len(keys), len(before[k]))
			}
			for key, pay := range before[k] {
				if !bytes.Equal(payloads[key], pay) {
					t.Fatalf("%s: kind %d key %q: payload differs from pre-checkpoint bytes", ctx, k, key)
				}
				got, ok := st.Get(k, key)
				if !ok || !bytes.Equal(got, pay) {
					t.Fatalf("%s: Get(%d, %q) = ok=%v, differs from Iter payload", ctx, k, key, ok)
				}
			}
		}
	}
	check(r, "paged after checkpoint")
	// Schemas keep identity-stable decoded instances across paging.
	s1, _ := r.GetSchema("S001")
	s2, _ := r.GetSchema("S001")
	if s1 == nil || s1 != s2 {
		t.Fatal("GetSchema not identity-stable after checkpoint")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path, WithPageSize(512), WithPageCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	rep := r2.RecoveryReport()
	if !rep.PageFileUsed || !rep.CheckpointUsed || !rep.Clean() {
		t.Fatalf("reopen report: %s", rep)
	}
	check(r2, "reopened from page file")
	s3, _ := r2.GetSchema("S001")
	s4, _ := r2.GetSchema("S001")
	if s3 == nil || s3 != s4 {
		t.Fatal("GetSchema not identity-stable after paged reopen")
	}
	st := r2.PageCacheStats()
	if st.Misses == 0 {
		t.Errorf("page cache reports no misses after reading a paged store: %+v", st)
	}
	if pb := r2.Stats().PageBytes; pb == 0 {
		t.Error("Stats.PageBytes = 0 for a paged store")
	}
}

// TestPagedStoreLargerThanPool serves a store whose page file far
// exceeds the buffer pool and checks every record still reads
// correctly while the pool churns.
func TestPagedStoreLargerThanPool(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coma.repo")
	opts := []OpenOption{WithSyncPolicy(SyncNone()), WithPageSize(512), WithPageCache(2)}
	r, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := pagedOps(t, r, 40)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if pc := r2.pf.pageCount; pc <= 2 {
		t.Fatalf("page file holds %d pages; store not larger than the 2-page pool", pc)
	}
	for k, keys := range want {
		got, _ := iterAll(t, r2, k)
		if len(got) != len(keys) {
			t.Fatalf("kind %d: Iter yielded %d keys, want %d", k, len(got), len(keys))
		}
	}
	// Point reads decode correctly under churn.
	for key := range want[RecCubes] {
		if _, ok := r2.GetCube(key); !ok {
			t.Fatalf("cube %q unreadable from evicting pool", key)
		}
	}
	for key := range want[RecSchemas] {
		if _, ok := r2.GetSchema(key); !ok {
			t.Fatalf("schema %q unreadable from evicting pool", key)
		}
	}
	st := r2.PageCacheStats()
	if st.Capacity != 2 {
		t.Fatalf("capacity = %d, want 2", st.Capacity)
	}
	if st.Evictions == 0 {
		t.Errorf("no evictions scanning a store larger than the pool: %+v", st)
	}
	if st.Resident > st.Capacity {
		t.Errorf("resident %d exceeds capacity %d with no reads in flight", st.Resident, st.Capacity)
	}
}

// TestDamagedPageSalvage corrupts one page of a multi-page snapshot
// and checks open drops exactly the records that page (or its
// overflow chains) made unreadable, keeps everything else including
// the log tail, and salvage-rewrites to a clean store.
func TestDamagedPageSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coma.repo")
	opts := []OpenOption{WithSyncPolicy(SyncNone()), WithPageSize(512), WithPageCache(8)}
	r, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := pagedOps(t, r, 20)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A log tail past the snapshot must survive the page damage.
	if err := r.PutSchema(sampleSchema("TAIL")); err != nil {
		t.Fatal(err)
	}
	want[RecSchemas]["TAIL"] = true
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the slot area of page 1.
	img, err := os.ReadFile(pagePath(path))
	if err != nil {
		t.Fatal(err)
	}
	img[pageFileHdrSize+512+pageHdrSize+1] ^= 0x40
	if err := os.WriteFile(pagePath(path), img, 0o644); err != nil {
		t.Fatal(err)
	}
	// Compute the expected casualties from the corrupted file itself:
	// records whose directory entry sits on the dead page, plus records
	// whose overflow chain crosses it.
	pf, exists, damaged, err := openPageFile(OSFS, path)
	if err != nil || !exists || damaged {
		t.Fatalf("corrupted data page must not fail the header: exists=%v damaged=%v err=%v", exists, damaged, err)
	}
	surviving := make(map[string]recLoc)
	dmg, err := pf.scanPages(func(kind byte, key string, loc recLoc) {
		surviving[key] = loc
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dmg) == 0 {
		t.Fatal("bit flip did not damage any page")
	}
	lost := make(map[string]bool)
	pool := newBufferPool(8, pf.readPage, nil)
	for key, loc := range surviving {
		if _, _, _, err := pf.record(pool, loc); err != nil {
			lost[key] = true
		}
	}
	for k, keys := range want {
		_ = k
		for key := range keys {
			if key == "TAIL" {
				continue
			}
			if _, ok := surviving[key]; !ok {
				lost[key] = true
			}
		}
	}
	pf.Close()
	if len(lost) == 0 {
		t.Fatal("damaged page held no records; pick a different page")
	}
	r2, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep := r2.RecoveryReport()
	if rep.PagesDamaged == 0 || !rep.Salvaged || !rep.PageFileUsed {
		t.Fatalf("reopen report: %s", rep)
	}
	for k, keys := range want {
		got, _ := iterAll(t, r2, k)
		gotSet := make(map[string]bool, len(got))
		for _, key := range got {
			gotSet[key] = true
		}
		for key := range keys {
			if lost[key] && gotSet[key] {
				t.Errorf("kind %d key %q: on the damaged page yet still present", k, key)
			}
			if !lost[key] && !gotSet[key] {
				t.Errorf("kind %d key %q: lost despite living on an intact page", k, key)
			}
		}
		for key := range gotSet {
			if !keys[key] {
				t.Errorf("kind %d key %q: resurrected", k, key)
			}
		}
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	// Salvage folded the survivors into a fresh self-contained log; the
	// damaged page file is gone and the next open is clean.
	if _, err := os.Stat(pagePath(path)); !os.IsNotExist(err) {
		t.Fatalf("damaged page file still present after salvage: %v", err)
	}
	r3, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if rep := r3.RecoveryReport(); !rep.Clean() {
		t.Fatalf("post-salvage reopen not clean: %s", rep)
	}
}

// TestVerifyPagedStore checks the offline verifier understands page
// files: healthy paged stores are OK, page damage is reported without
// modifying the files.
func TestVerifyPagedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coma.repo")
	opts := []OpenOption{WithSyncPolicy(SyncNone()), WithPageSize(512)}
	r, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	pagedOps(t, r, 12)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.PutSchema(sampleSchema("TAIL")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	v, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() || !v.PageFileUsed || v.PageRecords == 0 {
		t.Fatalf("healthy paged store: %s (PageRecords=%d)", v, v.PageRecords)
	}
	if v.Records == 0 {
		t.Fatalf("log tail not counted: %s", v)
	}
	img, err := os.ReadFile(pagePath(path))
	if err != nil {
		t.Fatal(err)
	}
	img[pageFileHdrSize+512+pageHdrSize+1] ^= 0x40
	if err := os.WriteFile(pagePath(path), img, 0o644); err != nil {
		t.Fatal(err)
	}
	v2, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if v2.OK() || v2.PagesDamaged == 0 {
		t.Fatalf("verifier missed the damaged page: %s", v2)
	}
	// Verify must not have repaired anything.
	after, err := os.ReadFile(pagePath(path))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, img) {
		t.Fatal("Verify modified the page file")
	}
}

// --- crash sweeps over the page-file write paths --------------------

// crashSweepState builds one store on the real filesystem and returns
// its directory, log name and expected keys, for sweeps to copy from.
func crashSweepState(t *testing.T, checkpoint bool) (dir string, want map[RecordKind]map[string]bool) {
	t.Helper()
	dir = t.TempDir()
	r, err := Open(filepath.Join(dir, "coma.repo"), WithSyncPolicy(SyncNone()), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	want = pagedOps(t, r, 12)
	if checkpoint {
		if err := r.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := r.PutSchema(sampleSchema("TAIL")); err != nil {
			t.Fatal(err)
		}
		want[RecSchemas]["TAIL"] = true
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, want
}

func copyRepoFiles(t *testing.T, srcDir, dstDir string) string {
	t.Helper()
	for _, name := range []string{"coma.repo", "coma.repo" + pageSuffix, "coma.repo" + ckptSuffix} {
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dstDir, "coma.repo")
}

func checkKinds(t *testing.T, st Store, want map[RecordKind]map[string]bool, ctx string) {
	t.Helper()
	for k, keys := range want {
		got, _ := iterAll(t, st, k)
		gotSet := make(map[string]bool, len(got))
		for _, key := range got {
			gotSet[key] = true
		}
		for key := range keys {
			if !gotSet[key] {
				t.Fatalf("%s: kind %d key %q lost", ctx, k, key)
			}
		}
		for key := range gotSet {
			if !keys[key] {
				t.Fatalf("%s: kind %d key %q resurrected", ctx, k, key)
			}
		}
	}
}

// TestCheckpointCrashSweepPageWrite injects a write fault at every
// byte offset of the checkpoint's page-file write and asserts the
// all-or-nothing contract: a failed checkpoint leaves the log intact,
// so a reopen recovers every acknowledged record.
func TestCheckpointCrashSweepPageWrite(t *testing.T) {
	srcDir, want := crashSweepState(t, false)
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	kinds := []FaultKind{FaultFail, FaultShortWrite}
	for _, fk := range kinds {
		for n := int64(0); ; n += stride {
			path := copyRepoFiles(t, srcDir, t.TempDir())
			ffs := NewFaultFS(nil)
			r, err := Open(path, WithFS(ffs), WithSyncPolicy(SyncNone()), WithPageSize(512))
			if err != nil {
				t.Fatalf("fault=%v n=%d: open: %v", fk, n, err)
			}
			ffs.Arm(fk, n)
			cerr := r.Checkpoint()
			fired := ffs.Fired()
			ffs.Disarm()
			if fired && cerr == nil {
				t.Fatalf("fault=%v n=%d: checkpoint succeeded despite injected fault", fk, n)
			}
			r.Close()
			r2, err := Open(path, WithPageSize(512))
			if err != nil {
				t.Fatalf("fault=%v n=%d: reopen: %v", fk, n, err)
			}
			checkKinds(t, r2, want, fmt.Sprintf("fault=%v n=%d", fk, n))
			if !fired {
				// The whole image was written before the fault offset; the
				// checkpoint completed and the reopen must have served it.
				if cerr != nil {
					t.Fatalf("fault=%v n=%d: unfired fault but checkpoint error: %v", fk, n, cerr)
				}
				if rep := r2.RecoveryReport(); !rep.PageFileUsed {
					t.Fatalf("fault=%v n=%d: completed checkpoint not used on reopen: %s", fk, n, rep)
				}
				r2.Close()
				break
			}
			r2.Close()
		}
	}
}

// TestCompactCrashSweepAfterCheckpoint injects a write fault at every
// byte of a Compact running over a paged store. Compact rewrites the
// log (rewrite marker first) before removing the snapshot; a crash at
// any write offset must leave either the old page-file state or the
// complete rewritten log — never a torn mix.
func TestCompactCrashSweepAfterCheckpoint(t *testing.T) {
	srcDir, want := crashSweepState(t, true)
	stride := int64(1)
	if testing.Short() {
		stride = 13
	}
	for n := int64(0); ; n += stride {
		path := copyRepoFiles(t, srcDir, t.TempDir())
		ffs := NewFaultFS(nil)
		r, err := Open(path, WithFS(ffs), WithSyncPolicy(SyncNone()), WithPageSize(512))
		if err != nil {
			t.Fatalf("n=%d: open: %v", n, err)
		}
		ffs.Arm(FaultFail, n)
		cerr := r.Compact()
		fired := ffs.Fired()
		ffs.Disarm()
		r.Close()
		r2, err := Open(path, WithPageSize(512))
		if err != nil {
			t.Fatalf("n=%d: reopen after compact fault: %v", n, err)
		}
		checkKinds(t, r2, want, fmt.Sprintf("compact fault n=%d", n))
		rep := r2.RecoveryReport()
		r2.Close()
		if !fired {
			if cerr != nil {
				t.Fatalf("n=%d: unfired fault but compact error: %v", n, cerr)
			}
			// A completed compact folded the snapshot into the log; the
			// page file is gone and the reopen is self-contained.
			if _, err := os.Stat(pagePath(path)); !os.IsNotExist(err) {
				t.Fatalf("n=%d: page file survives a completed compact: %v", n, err)
			}
			if rep.PageFileUsed {
				t.Fatalf("n=%d: reopen used a page file after compact removed it: %s", n, rep)
			}
			break
		}
	}
}

// TestStaleSnapshotIgnored simulates the compact crash window after
// the rewritten log is renamed in but before the snapshot files are
// removed: the rewrite marker must make open (and Verify) ignore the
// stale page file rather than resurrect deleted records.
func TestStaleSnapshotIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coma.repo")
	opts := []OpenOption{WithSyncPolicy(SyncNone()), WithPageSize(512)}
	r, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := pagedOps(t, r, 12)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A post-checkpoint delete: the stale snapshot still holds this
	// record, so trusting it would resurrect the schema.
	if err := r.DeleteSchema("S001"); err != nil {
		t.Fatal(err)
	}
	delete(want[RecSchemas], "S001")
	stale, err := os.ReadFile(pagePath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Put the superseded snapshot back, as if Compact crashed between
	// the rename and the removal.
	if err := os.WriteFile(pagePath(path), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	v, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.PageFileUsed {
		t.Fatalf("Verify trusted a superseded snapshot: %s", v)
	}
	if !v.OK() {
		t.Fatalf("stale-snapshot state should verify OK (open ignores it): %s", v)
	}
	r2, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	rep := r2.RecoveryReport()
	if rep.PageFileUsed {
		t.Fatalf("open trusted a superseded snapshot: %s", rep)
	}
	checkKinds(t, r2, want, "stale snapshot")
	if _, ok := r2.GetSchema("S001"); ok {
		t.Fatal("deleted schema resurrected from a stale snapshot")
	}
	// Open removed the stale file so it cannot confuse a later open.
	if _, err := os.Stat(pagePath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale page file not cleaned up: %v", err)
	}
}

// TestShardedPagedStore checks the sharded store routes Get/Iter and
// aggregates page-cache stats across paged shards.
func TestShardedPagedStore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 3, WithSyncPolicy(SyncNone()), WithPageSize(512), WithPageCache(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var schemas []string
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("S%03d", i)
		if err := s.PutSchema(sampleSchema(name)); err != nil {
			t.Fatal(err)
		}
		schemas = append(schemas, name)
	}
	m := simcube.NewMapping("S000", "S001")
	m.Add("x", "y", 0.9)
	if err := s.PutMapping("auto", m); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, name := range schemas {
		if _, ok := s.Get(RecSchemas, name); !ok {
			t.Fatalf("Get(RecSchemas, %q) missed after checkpoint", name)
		}
	}
	if _, ok := s.Get(RecMappings, "auto|S000|S001"); !ok {
		t.Fatal("mapping record not routed to its shard")
	}
	keys, _ := iterAll(t, s, RecSchemas)
	if len(keys) != len(schemas) {
		t.Fatalf("sharded Iter yielded %d schemas, want %d", len(keys), len(schemas))
	}
	st := s.PageCacheStats()
	if st.Capacity != 3*4 {
		t.Fatalf("aggregated capacity = %d, want 12", st.Capacity)
	}
	if st.Misses == 0 {
		t.Errorf("aggregated stats show no misses after paged reads: %+v", st)
	}
}
