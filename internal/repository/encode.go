package repository

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// The repository serializes values with a compact, self-describing
// binary encoding: uvarint-prefixed strings, uvarint counts, and IEEE
// float64 bits in little-endian order.

type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("repository: corrupt uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := int(d.uvarint())
	if d.err != nil {
		return ""
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("repository: string length %d exceeds buffer at offset %d", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("repository: truncated float64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// encodeSchema serializes a schema DAG. Shared nodes are preserved via
// node indices.
func encodeSchema(s *schema.Schema) []byte {
	nodes := []*schema.Node{s.Root}
	idx := map[*schema.Node]int{s.Root: 0}
	var collect func(n *schema.Node)
	collect = func(n *schema.Node) {
		for _, c := range n.Children() {
			if _, ok := idx[c]; !ok {
				idx[c] = len(nodes)
				nodes = append(nodes, c)
				collect(c)
			}
		}
	}
	collect(s.Root)
	// Referential links may point outside the containment closure; only
	// in-closure targets are persisted.
	var e encoder
	e.str(s.Name)
	e.uvarint(uint64(len(nodes)))
	for _, n := range nodes {
		e.str(n.Name)
		e.str(n.TypeName)
		e.uvarint(uint64(n.Kind))
		keys := make([]string, 0, len(n.Annotations))
		for k := range n.Annotations {
			keys = append(keys, k)
		}
		// Deterministic output: sort annotation keys.
		sortStrings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.str(n.Annotations[k])
		}
	}
	for _, n := range nodes {
		e.uvarint(uint64(len(n.Children())))
		for _, c := range n.Children() {
			e.uvarint(uint64(idx[c]))
		}
		inRefs := make([]int, 0, len(n.Refs()))
		for _, r := range n.Refs() {
			if i, ok := idx[r]; ok {
				inRefs = append(inRefs, i)
			}
		}
		e.uvarint(uint64(len(inRefs)))
		for _, i := range inRefs {
			e.uvarint(uint64(i))
		}
	}
	return e.buf
}

func decodeSchema(buf []byte) (*schema.Schema, error) {
	d := decoder{buf: buf}
	name := d.str()
	n := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if n < 1 || n > 1<<24 {
		return nil, fmt.Errorf("repository: implausible node count %d", n)
	}
	nodes := make([]*schema.Node, n)
	for i := range nodes {
		nodes[i] = &schema.Node{}
		nodes[i].Name = d.str()
		nodes[i].TypeName = d.str()
		nodes[i].Kind = schema.Kind(d.uvarint())
		annots := int(d.uvarint())
		for a := 0; a < annots && d.err == nil; a++ {
			k := d.str()
			v := d.str()
			nodes[i].SetAnnotation(k, v)
		}
	}
	for i := range nodes {
		kids := int(d.uvarint())
		for k := 0; k < kids && d.err == nil; k++ {
			ci := int(d.uvarint())
			if ci < 0 || ci >= n {
				return nil, fmt.Errorf("repository: child index %d out of range", ci)
			}
			nodes[i].AddChild(nodes[ci])
		}
		refs := int(d.uvarint())
		for r := 0; r < refs && d.err == nil; r++ {
			ri := int(d.uvarint())
			if ri < 0 || ri >= n {
				return nil, fmt.Errorf("repository: ref index %d out of range", ri)
			}
			nodes[i].AddRef(nodes[ri])
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	s := &schema.Schema{Name: name, Root: nodes[0]}
	return s, nil
}

// encodeMapping serializes a tagged mapping.
func encodeMapping(tag string, m *simcube.Mapping) []byte {
	var e encoder
	e.str(tag)
	e.str(m.FromSchema)
	e.str(m.ToSchema)
	corrs := m.Correspondences()
	e.uvarint(uint64(len(corrs)))
	for _, c := range corrs {
		e.str(c.From)
		e.str(c.To)
		e.f64(c.Sim)
	}
	return e.buf
}

func decodeMapping(buf []byte) (tag string, m *simcube.Mapping, err error) {
	d := decoder{buf: buf}
	tag = d.str()
	from := d.str()
	to := d.str()
	n := int(d.uvarint())
	if d.err != nil {
		return "", nil, d.err
	}
	m = simcube.NewMapping(from, to)
	for i := 0; i < n; i++ {
		f := d.str()
		t := d.str()
		sim := d.f64()
		if d.err != nil {
			return "", nil, d.err
		}
		m.Add(f, t, sim)
	}
	return tag, m, nil
}

// encodeCube serializes a similarity cube.
func encodeCube(key string, c *simcube.Cube) []byte {
	var e encoder
	e.str(key)
	rows, cols := c.RowKeys(), c.ColKeys()
	e.uvarint(uint64(len(rows)))
	for _, k := range rows {
		e.str(k)
	}
	e.uvarint(uint64(len(cols)))
	for _, k := range cols {
		e.str(k)
	}
	e.uvarint(uint64(c.Layers()))
	for li, name := range c.Matchers() {
		e.str(name)
		layer := c.LayerAt(li)
		for i := 0; i < len(rows); i++ {
			for j := 0; j < len(cols); j++ {
				e.f64(layer.Get(i, j))
			}
		}
	}
	return e.buf
}

func decodeCube(buf []byte) (key string, c *simcube.Cube, err error) {
	d := decoder{buf: buf}
	key = d.str()
	nr := int(d.uvarint())
	if d.err != nil {
		return "", nil, d.err
	}
	if nr < 0 || nr > 1<<24 {
		return "", nil, fmt.Errorf("repository: implausible row count %d", nr)
	}
	rows := make([]string, nr)
	for i := range rows {
		rows[i] = d.str()
	}
	nc := int(d.uvarint())
	if d.err != nil {
		return "", nil, d.err
	}
	if nc < 0 || nc > 1<<24 {
		return "", nil, fmt.Errorf("repository: implausible column count %d", nc)
	}
	cols := make([]string, nc)
	for j := range cols {
		cols[j] = d.str()
	}
	layers := int(d.uvarint())
	if d.err != nil {
		return "", nil, d.err
	}
	c = simcube.NewCube(rows, cols)
	for l := 0; l < layers; l++ {
		name := d.str()
		layer := c.NewLayer(name)
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				layer.Set(i, j, d.f64())
			}
		}
		if d.err != nil {
			return "", nil, d.err
		}
	}
	return key, c, nil
}

func sortStrings(s []string) { sort.Strings(s) }
