package repository

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/simcube"
)

// foldState is the expected repository contents computed by folding an
// op list — the oracle the crash-point sweep compares reopened stores
// against.
type foldState struct {
	schemas  map[string]bool
	mappings map[string]bool
	cubes    map[string]bool
}

func newFoldState() *foldState {
	return &foldState{
		schemas:  make(map[string]bool),
		mappings: make(map[string]bool),
		cubes:    make(map[string]bool),
	}
}

// sweepOp is one acknowledged write: the action that appends exactly
// one log record, and its effect on the expected state.
type sweepOp struct {
	desc string
	do   func(r *Repo) error
	fold func(st *foldState)
}

// sweepOps builds 60 mixed operations — puts, overwrites and deletes
// across all three record families — each appending one record.
func sweepOps() []sweepOp {
	var ops []sweepOp
	for g := 0; g < 12; g++ {
		sName := fmt.Sprintf("S%02d", g)
		from, to := fmt.Sprintf("F%02d", g), fmt.Sprintf("T%02d", g)
		mKey := "auto|" + from + "|" + to
		cKey := fmt.Sprintf("C%02d", g)
		ops = append(ops,
			sweepOp{"put " + sName,
				func(r *Repo) error { return r.PutSchema(sampleSchema(sName)) },
				func(st *foldState) { st.schemas[sName] = true }},
			sweepOp{"put mapping " + mKey,
				func(r *Repo) error {
					m := simcube.NewMapping(from, to)
					m.Add("x", "y", 0.5)
					return r.PutMapping("auto", m)
				},
				func(st *foldState) { st.mappings[mKey] = true }},
			sweepOp{"put cube " + cKey,
				func(r *Repo) error {
					c := simcube.NewCube([]string{"a"}, []string{"b"})
					c.NewLayer("Name").Set(0, 0, 0.5)
					return r.PutCube(cKey, c)
				},
				func(st *foldState) { st.cubes[cKey] = true }},
		)
		if g%2 == 1 {
			ops = append(ops,
				sweepOp{"del " + sName,
					func(r *Repo) error { return r.DeleteSchema(sName) },
					func(st *foldState) { delete(st.schemas, sName) }},
				sweepOp{"del cube " + cKey,
					func(r *Repo) error { return r.DeleteCube(cKey) },
					func(st *foldState) { delete(st.cubes, cKey) }},
			)
		} else {
			ops = append(ops,
				sweepOp{"overwrite " + sName,
					func(r *Repo) error { return r.PutSchema(sampleSchema(sName)) },
					func(st *foldState) { st.schemas[sName] = true }},
				sweepOp{"del mapping " + mKey,
					func(r *Repo) error { return r.DeleteMapping("auto", from, to) },
					func(st *foldState) { delete(st.mappings, mKey) }},
			)
		}
	}
	return ops
}

// buildSweepLog writes the op sequence to a fresh log and returns the
// log bytes plus each record's [start, end) extent.
func buildSweepLog(t *testing.T, path string) ([]sweepOp, []byte, [][2]int) {
	t.Helper()
	ops := sweepOps()
	r, err := Open(path, WithSyncPolicy(SyncNone()))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.do(r); err != nil {
			t.Fatalf("%s: %v", op.desc, err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var extents [][2]int
	off := len(fileMagicV2)
	var prev uint64
	for off < len(data) {
		seq, _, _, size, ok := parseFrame(data, off, prev)
		if !ok {
			t.Fatalf("freshly written log unparsable at offset %d", off)
		}
		extents = append(extents, [2]int{off, off + size})
		prev = seq
		off += size
	}
	if len(extents) != len(ops) {
		t.Fatalf("log holds %d records, expected %d (one per op)", len(extents), len(ops))
	}
	if len(extents) < 50 {
		t.Fatalf("sweep log too small: %d records", len(extents))
	}
	return ops, data, extents
}

// checkState compares the reopened repo against the folded oracle.
func checkState(t *testing.T, r *Repo, st *foldState, ctx string) {
	t.Helper()
	diff := func(kind string, got map[string]bool, want map[string]bool) {
		for k := range want {
			if !got[k] {
				t.Fatalf("%s: %s %q lost", ctx, kind, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("%s: unexpected %s %q (resurrected or corrupt)", ctx, kind, k)
			}
		}
	}
	gotSchemas := make(map[string]bool, len(r.schemas))
	for k := range r.schemas {
		gotSchemas[k] = true
	}
	gotMappings := make(map[string]bool, len(r.mappings))
	for k := range r.mappings {
		gotMappings[k] = true
	}
	gotCubes := make(map[string]bool, len(r.cubes))
	for k := range r.cubes {
		gotCubes[k] = true
	}
	diff("schema", gotSchemas, st.schemas)
	diff("mapping", gotMappings, st.mappings)
	diff("cube", gotCubes, st.cubes)
}

// TestCrashPointSweepTruncation truncates a 60-record log at every
// byte offset and asserts each reopen succeeds with exactly the
// acknowledged prefix — the records whose frames fit entirely before
// the cut. This is the SyncAlways durability contract: an
// acknowledged (fsynced) write is never lost, an unacknowledged one
// never half-applies.
func TestCrashPointSweepTruncation(t *testing.T) {
	dir := t.TempDir()
	ops, data, extents := buildSweepLog(t, filepath.Join(dir, "sweep.repo"))
	caseP := filepath.Join(dir, "case.repo")
	stride := 1
	if testing.Short() {
		stride = 7
	}
	for x := 0; x < len(data); x += stride {
		if err := os.WriteFile(caseP, data[:x], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(caseP)
		if err != nil {
			t.Fatalf("truncate@%d: open failed: %v", x, err)
		}
		k := 0
		for k < len(extents) && extents[k][1] <= x {
			k++
		}
		st := newFoldState()
		for _, op := range ops[:k] {
			op.fold(st)
		}
		checkState(t, r, st, fmt.Sprintf("truncate@%d (prefix of %d records)", x, k))
		r.Close()
	}
}

// TestCrashPointSweepBitFlip inverts the byte at every offset of the
// log and asserts each reopen succeeds with every record except the
// one the flip landed in — salvage scans past exactly the damaged
// frame. Flips inside the 12-byte file header damage no record;
// salvage recovers the complete state.
func TestCrashPointSweepBitFlip(t *testing.T) {
	dir := t.TempDir()
	ops, data, extents := buildSweepLog(t, filepath.Join(dir, "sweep.repo"))
	caseP := filepath.Join(dir, "case.repo")
	stride := 1
	if testing.Short() {
		stride = 7
	}
	cur := make([]byte, len(data))
	for x := 0; x < len(data); x += stride {
		copy(cur, data)
		cur[x] ^= 0xFF
		if err := os.WriteFile(caseP, cur, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(caseP)
		if err != nil {
			t.Fatalf("flip@%d: open failed: %v", x, err)
		}
		damaged := -1 // index of the op whose record covers x
		for i, e := range extents {
			if e[0] <= x && x < e[1] {
				damaged = i
				break
			}
		}
		st := newFoldState()
		for i, op := range ops {
			if i == damaged {
				continue
			}
			op.fold(st)
		}
		checkState(t, r, st, fmt.Sprintf("flip@%d (damaged record %d)", x, damaged))
		if rep := r.RecoveryReport(); rep.Clean() {
			t.Fatalf("flip@%d: recovery report claims a clean open", x)
		}
		r.Close()
	}
}

// TestFaultShortWriteRollback injects a torn append (partial write +
// error) and asserts the failed append is rolled back cleanly: the
// error surfaces, later appends succeed, and the reopened log is
// whole — no torn bytes poisoning subsequent records.
func TestFaultShortWriteRollback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fault.repo")
	ffs := NewFaultFS(nil)
	r, err := Open(path, WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PutSchema(sampleSchema("OK")); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(FaultShortWrite, 10) // tear the next frame 10 bytes in
	if err := r.PutSchema(sampleSchema("LOST")); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("torn append returned %v, want injected fault", err)
	}
	if !ffs.Fired() {
		t.Fatal("fault never fired")
	}
	ffs.Disarm()
	if err := r.PutSchema(sampleSchema("AFTER")); err != nil {
		t.Fatalf("append after rolled-back fault: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if rep := r2.RecoveryReport(); !rep.Clean() {
		t.Errorf("log not clean after rolled-back fault: %s", rep)
	}
	if _, ok := r2.GetSchema("OK"); !ok {
		t.Error("pre-fault schema lost")
	}
	if _, ok := r2.GetSchema("LOST"); ok {
		t.Error("failed append visible after reopen")
	}
	if _, ok := r2.GetSchema("AFTER"); !ok {
		t.Error("post-fault schema lost")
	}
}

// TestFaultFailRollback: a write that fails outright (nothing written)
// must behave identically to the torn-write case.
func TestFaultFailRollback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fault.repo")
	ffs := NewFaultFS(nil)
	r, err := Open(path, WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	ffs.Arm(FaultFail, 0)
	if err := r.PutSchema(sampleSchema("LOST")); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("failed append returned %v, want injected fault", err)
	}
	ffs.Disarm()
	if err := r.PutSchema(sampleSchema("AFTER")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if rep := r2.RecoveryReport(); !rep.Clean() {
		t.Errorf("log not clean: %s", rep)
	}
	if _, ok := r2.GetSchema("AFTER"); !ok {
		t.Error("post-fault schema lost")
	}
}

// TestFaultBitFlip: silent corruption in the last record is caught by
// the CRC on reopen and costs exactly that record.
func TestFaultBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fault.repo")
	ffs := NewFaultFS(nil)
	r, err := Open(path, WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PutSchema(sampleSchema("KEPT")); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(FaultBitFlip, 25)
	if err := r.PutSchema(sampleSchema("FLIPPED")); err != nil {
		t.Fatalf("bit flip must be silent at write time, got %v", err)
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.GetSchema("KEPT"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := r2.GetSchema("FLIPPED"); ok {
		t.Error("corrupted record applied")
	}
	if rep := r2.RecoveryReport(); rep.Clean() {
		t.Error("corruption not reported")
	}
}

// TestGroupCommitChurn hammers a SyncInterval store from many
// goroutines (run under -race) and asserts every acknowledged write
// is present after an explicit Sync barrier and reopen.
func TestGroupCommitChurn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.repo")
	r, err := Open(path, WithSyncPolicy(SyncInterval(2*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	const workers, puts = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				if err := r.PutSchema(sampleSchema(fmt.Sprintf("W%02dI%02d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if rep := r2.RecoveryReport(); !rep.Clean() {
		t.Errorf("churned log not clean: %s", rep)
	}
	if got := len(r2.SchemaNames()); got != workers*puts {
		t.Errorf("recovered %d schemas, want %d", got, workers*puts)
	}
}

// TestCheckpointRestart: records before the checkpoint come back from
// the snapshot, records after it from the log suffix.
func TestCheckpointRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.repo")
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.PutSchema(sampleSchema("A"))
	r.PutSchema(sampleSchema("B"))
	r.DeleteSchema("B")
	fullLog := r.Stats().LogBytes
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats().LogBytes; after >= fullLog {
		t.Errorf("checkpoint did not truncate the log: %d -> %d", fullLog, after)
	}
	r.PutSchema(sampleSchema("C"))
	r.Close()

	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	rep := r2.RecoveryReport()
	if !rep.CheckpointUsed || !rep.Clean() {
		t.Errorf("report = %s, want clean checkpoint restart", rep)
	}
	if names := r2.SchemaNames(); len(names) != 2 || names[0] != "A" || names[1] != "C" {
		t.Errorf("SchemaNames = %v, want [A C]", names)
	}
	if _, ok := r2.GetSchema("B"); ok {
		t.Error("deleted schema resurrected through checkpoint")
	}
}

// TestCheckpointCrashBeforeLogTruncate reconstructs the crash window
// between the snapshot rename and the log truncation: both the full
// log and the checkpoint exist. Replay must use the snapshot, skip
// the log records at or below the watermark, and still apply the
// suffix past it.
func TestCheckpointCrashBeforeLogTruncate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.repo")
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.PutSchema(sampleSchema("A"))
	r.PutSchema(sampleSchema("B"))
	preCkpt, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.PutSchema(sampleSchema("C"))
	r.Close()
	// Splice the pre-checkpoint log back in front of the post-checkpoint
	// suffix: exactly what disk holds if the crash hits before truncate.
	postCkpt, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crashed := append(append([]byte{}, preCkpt...), postCkpt[len(fileMagicV2):]...)
	if err := os.WriteFile(path, crashed, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	rep := r2.RecoveryReport()
	if !rep.CheckpointUsed {
		t.Errorf("report = %s, want checkpoint used", rep)
	}
	if names := r2.SchemaNames(); len(names) != 3 {
		t.Errorf("SchemaNames = %v, want [A B C]", names)
	}
}

// TestCheckpointDamagedFrame: corruption inside a legacy flat
// checkpoint's frame loses that record, keeps the rest, flags the
// report, and the salvage rewrite removes the damaged snapshot. The
// legacy file is crafted by hand — current Checkpoints write the page
// file instead, but stores written before the paged design still open
// through this path.
func TestCheckpointDamagedFrame(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.repo")
	// On-disk state an old version would have left: a checkpoint with
	// schemas A and B through watermark 2, and a log tail holding C.
	ckpt := append([]byte{}, ckptMagic...)
	ckpt = binary.LittleEndian.AppendUint64(ckpt, 2)
	ckpt = appendFrame(ckpt, 1, kindSchema, encodeSchema(sampleSchema("A")))
	ckpt = appendFrame(ckpt, 2, kindSchema, encodeSchema(sampleSchema("B")))
	log := append([]byte{}, fileMagicV2...)
	log = appendFrame(log, 3, kindSchema, encodeSchema(sampleSchema("C")))
	if err := os.WriteFile(path, log, 0o644); err != nil {
		t.Fatal(err)
	}

	cp := ckptPath(path)
	data := ckpt
	// First frame starts after magic + watermark; hit its payload.
	data[len(ckptMagic)+8+recHdrSize+2] ^= 0xFF
	if err := os.WriteFile(cp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	rep := r2.RecoveryReport()
	if !rep.CheckpointDamaged || !rep.Salvaged {
		t.Errorf("report = %s, want damaged checkpoint + salvage", rep)
	}
	if _, ok := r2.GetSchema("A"); ok {
		t.Error("record inside the damaged snapshot frame should be lost")
	}
	if _, ok := r2.GetSchema("B"); !ok {
		t.Error("intact snapshot record lost")
	}
	if _, ok := r2.GetSchema("C"); !ok {
		t.Error("log-suffix record lost")
	}
	if _, err := os.Stat(cp); !os.IsNotExist(err) {
		t.Error("damaged checkpoint should be removed by the salvage rewrite")
	}
	// The rewritten log stands alone.
	r2.Close()
	r3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if rep := r3.RecoveryReport(); !rep.Clean() {
		t.Errorf("post-salvage reopen not clean: %s", rep)
	}
}

// TestCompactRemovesCheckpoint: a snapshot taken before a delete must
// not survive a compaction, or replay would resurrect the deleted key
// from it.
func TestCompactRemovesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cc.repo")
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.PutSchema(sampleSchema("A"))
	r.PutSchema(sampleSchema("B"))
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.DeleteSchema("B")
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckptPath(path)); !os.IsNotExist(err) {
		t.Fatal("checkpoint survived compaction")
	}
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.GetSchema("B"); ok {
		t.Error("deleted schema resurrected after compaction")
	}
	if _, ok := r2.GetSchema("A"); !ok {
		t.Error("live schema lost")
	}
}

// legacyFrame encodes one version-1 record for the upgrade test.
func legacyFrame(kind byte, payload []byte) []byte {
	out := make([]byte, 5, 5+len(payload)+4)
	out[0] = byte(len(payload))
	out[1] = byte(len(payload) >> 8)
	out[2] = byte(len(payload) >> 16)
	out[3] = byte(len(payload) >> 24)
	out[4] = kind
	out = append(out, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{kind})
	crc.Write(payload)
	sum := crc.Sum32()
	return append(out, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// TestV1LogUpgrade: a version-1 log opens with legacy replay and is
// rewritten in the version-2 frame format.
func TestV1LogUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.repo")
	var file []byte
	file = append(file, fileMagicV1...)
	file = append(file, legacyFrame(kindSchema, encodeSchema(sampleSchema("OLD")))...)
	file = append(file, legacyFrame(kindSchema, encodeSchema(sampleSchema("OLDER")))...)
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.RecoveryReport()
	if !rep.UpgradedV1 || rep.Recovered != 2 {
		t.Errorf("report = %s, want v1 upgrade with 2 records", rep)
	}
	if _, ok := r.GetSchema("OLD"); !ok {
		t.Error("v1 record lost in upgrade")
	}
	r.PutSchema(sampleSchema("NEW"))
	r.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, fileMagicV2) {
		t.Error("upgraded log does not carry the v2 header")
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if rep := r2.RecoveryReport(); !rep.Clean() {
		t.Errorf("upgraded log not clean on reopen: %s", rep)
	}
	if got := len(r2.SchemaNames()); got != 3 {
		t.Errorf("schemas after upgrade = %d, want 3", got)
	}
}

// TestShardedRecoveryReports: one corrupt shard out of N salvages with
// a per-shard report; the other shards open clean and keep their data.
func TestShardedRecoveryReports(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 3, WithSyncPolicy(SyncNone()))
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := s.PutSchema(sampleSchema(fmt.Sprintf("Sch%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first record of shard 1.
	victim := filepath.Join(dir, fmt.Sprintf(shardPattern, 1))
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(fileMagicV2)+recHdrSize+2] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(dir, 3)
	if err != nil {
		t.Fatalf("sharded open with one corrupt shard: %v", err)
	}
	defer s2.Close()
	reports := s2.Reports()
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, rep := range reports {
		if i == 1 {
			if rep.Clean() || !rep.Salvaged {
				t.Errorf("shard 1 report = %s, want salvage", rep)
			}
		} else if !rep.Clean() {
			t.Errorf("shard %d report = %s, want clean", i, rep)
		}
	}
	if got := len(s2.SchemaNames()); got != n-1 {
		t.Errorf("recovered %d schemas, want %d (exactly one lost)", got, n-1)
	}
}

// TestVerifyAndRepair: Verify reports damage without touching the
// file; RepairStore salvages it; Verify then passes.
func TestVerifyAndRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fsck.repo")
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r.PutSchema(sampleSchema("A"))
	r.PutSchema(sampleSchema("B"))
	r.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(fileMagicV2)+recHdrSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK() || len(v.SkippedRanges) != 1 || v.Records != 1 {
		t.Errorf("verify = %s (records=%d), want 1 damaged range, 1 valid record", v, v.Records)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, after) {
		t.Fatal("Verify modified the file")
	}

	reps, err := RepairStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Salvaged {
		t.Errorf("repair reports = %v, want one salvage", reps)
	}
	v2, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.OK() {
		t.Errorf("post-repair verify = %s, want OK", v2)
	}
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.GetSchema("B"); !ok {
		t.Error("surviving record lost through repair")
	}
}

// TestVerifySharded: VerifyStore walks every shard of a directory.
func TestVerifySharded(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.PutSchema(sampleSchema("A"))
	s.Close()
	reports, err := VerifyStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d shard reports, want 4", len(reports))
	}
	for _, v := range reports {
		if !v.OK() {
			t.Errorf("shard %s not OK: %s", v.Path, v)
		}
	}
}

// TestParseSyncPolicy covers the flag forms.
func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"always", "always", false},
		{"", "always", false},
		{"none", "none", false},
		{"interval", DefaultSyncInterval.String(), false},
		{"100ms", "100ms", false},
		{"2s", "2s", false},
		{"-5ms", "none", false},
		{"bogus", "", true},
	}
	for _, c := range cases {
		p, err := ParseSyncPolicy(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %s, want %s", c.in, p, c.want)
		}
	}
}
