package candidates_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/workload"
)

// newSpec builds the pruning spec for the default configuration, which
// must be boundable — the default five hybrid matchers under the
// default strategy are exactly the configuration the index is for.
func newSpec(t *testing.T) (*candidates.Spec, core.Config) {
	t.Helper()
	cfg := core.DefaultConfig()
	spec := candidates.NewSpec(cfg.Matchers, cfg.Strategy, nil)
	if spec == nil {
		t.Fatal("default matcher configuration is not boundable")
	}
	return spec, cfg
}

func TestSpecGates(t *testing.T) {
	cfg := core.DefaultConfig()
	if spec := candidates.NewSpec(cfg.Matchers, cfg.Strategy, &match.Feedback{}); spec != nil {
		t.Error("feedback-carrying configuration must not be boundable")
	}
	if spec := candidates.NewSpec(nil, cfg.Strategy, nil); spec != nil {
		t.Error("empty matcher list must not be boundable")
	}
}

func TestIndexMaintenance(t *testing.T) {
	mctx := match.NewContext()
	schemas := workload.Candidates(6)
	idx := candidates.NewIndex()

	for _, s := range schemas {
		idx.Add(s, mctx.Index(s))
	}
	st := idx.Stats()
	if st.Schemas != len(schemas) {
		t.Fatalf("Schemas = %d, want %d", st.Schemas, len(schemas))
	}
	if st.Postings == 0 {
		t.Fatal("no postings after indexing")
	}

	// Re-adding the same instance replaces, not duplicates.
	idx.Add(schemas[0], mctx.Index(schemas[0]))
	if got := idx.Stats(); got.Schemas != len(schemas) || got.Postings != st.Postings {
		t.Fatalf("re-add changed stats: %+v -> %+v", st, got)
	}

	// Removing drains the schema's postings; removing twice is a no-op.
	if !idx.Remove(schemas[0]) {
		t.Fatal("Remove of an indexed schema reported false")
	}
	if idx.Remove(schemas[0]) {
		t.Fatal("second Remove reported true")
	}
	st2 := idx.Stats()
	if st2.Schemas != len(schemas)-1 || st2.Postings >= st.Postings {
		t.Fatalf("stats after remove: %+v (before %+v)", st2, st)
	}

	// Removing everything empties the posting lists completely.
	for _, s := range schemas[1:] {
		idx.Remove(s)
	}
	if got := idx.Stats(); got.Schemas != 0 || got.Postings != 0 {
		t.Fatalf("stats after removing all: %+v", got)
	}

	// A freed slot is reused.
	idx.Add(schemas[2], mctx.Index(schemas[2]))
	if got := idx.Stats(); got.Schemas != 1 {
		t.Fatalf("stats after re-add: %+v", got)
	}
}

func TestStale(t *testing.T) {
	mctx := match.NewContext()
	schemas := workload.Candidates(3)
	idx := candidates.NewIndex()
	idx.Add(schemas[0], mctx.Index(schemas[0]))

	stale := idx.Stale(schemas, mctx.Sources())
	if len(stale) != 2 {
		t.Fatalf("Stale = %d schemas, want the 2 unindexed ones", len(stale))
	}
	for _, s := range stale {
		idx.Add(s, mctx.Index(s))
	}
	if stale := idx.Stale(schemas, mctx.Sources()); len(stale) != 0 {
		t.Fatalf("Stale after full indexing = %v", stale)
	}

	// An analysis from foreign sources is stale for this index.
	other := match.NewContext()
	if stale := idx.Stale(schemas, other.Sources()); len(stale) != len(schemas) {
		t.Fatalf("Stale under foreign sources = %d, want all %d", len(stale), len(schemas))
	}
}

// TestBoundsAdmissible is the property the whole subsystem rests on:
// for every candidate, the index's cheap bound must be >= the real
// combined schema similarity of the full pipeline. It checks the five
// workload schemas pairwise (heavy dictionary and synonym traffic) and
// a corpus slice (Zipf vocabulary, evolution families).
func TestBoundsAdmissible(t *testing.T) {
	spec, cfg := newSpec(t)

	check := func(t *testing.T, incoming *schema.Schema, cands []*schema.Schema) {
		mctx := match.NewContext()
		idx := candidates.NewIndex()
		for _, s := range cands {
			idx.Add(s, mctx.Index(s))
		}
		probe := candidates.NewProbe(spec, mctx.Index(incoming))
		bounds := idx.Bounds(probe, cands)
		results, err := core.MatchAll(context.Background(), mctx, incoming, cands, cfg, core.BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if math.IsInf(bounds[i], 1) {
				t.Errorf("%s vs %s: +Inf bound for an indexed candidate", incoming.Name, cands[i].Name)
				continue
			}
			if bounds[i] < res.SchemaSim {
				t.Errorf("%s vs %s: bound %.17g < real %.17g",
					incoming.Name, cands[i].Name, bounds[i], res.SchemaSim)
			}
		}
	}

	t.Run("workload", func(t *testing.T) {
		schemas := workload.Schemas()
		for i, s := range schemas {
			others := append(append([]*schema.Schema{}, schemas[:i]...), schemas[i+1:]...)
			check(t, s, others)
		}
	})
	t.Run("corpus", func(t *testing.T) {
		stored, incoming := workload.CorpusPair(32, 7)
		check(t, incoming, stored)
		// A corpus member probing its own siblings exercises the
		// near-duplicate end (real scores close to 1).
		check(t, stored[0], stored[1:])
	})
}

// TestBoundsStaleIsInf pins the safety net: a candidate the index does
// not know (or knows under foreign sources) gets a +Inf bound — it
// must always be matched, never skipped on a guess.
func TestBoundsStaleIsInf(t *testing.T) {
	spec, _ := newSpec(t)
	mctx := match.NewContext()
	schemas := workload.Candidates(3)
	idx := candidates.NewIndex()
	idx.Add(schemas[0], mctx.Index(schemas[0]))
	probe := candidates.NewProbe(spec, mctx.Index(schemas[1]))
	bounds := idx.Bounds(probe, schemas)
	if math.IsInf(bounds[0], 1) {
		t.Error("indexed candidate got +Inf")
	}
	for i := 1; i < len(schemas); i++ {
		if !math.IsInf(bounds[i], 1) {
			t.Errorf("unindexed candidate %d got finite bound %g", i, bounds[i])
		}
	}
}
