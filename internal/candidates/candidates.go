// Package candidates implements the repository-wide candidate-pruning
// index: an inverted index over the stored schemas' analyzed name
// vocabulary (normalized tokens, token trigrams, dictionary term ids)
// plus per-schema generic-type class masks, from which a cheap upper
// bound on the combined schema similarity of (incoming, stored) can be
// computed for every stored schema without running a single matcher.
//
// The bound is admissible — provably >= the real SchemaSim — for the
// library-built matcher configurations (match.BoundableLayers); TopK
// pruning against it is therefore safe: a candidate whose bound falls
// below the running k-th best real score can be skipped with results
// bit-identical to the exhaustive scan (see core.MatchShardedPruned).
// Anything the formulas do not provably dominate — custom matchers,
// non-default token combination, feedback, aggregations the layer
// bounds are not monotone under — refuses a Spec and the caller falls
// back to exhaustive matching.
//
// # Bound construction
//
// The incoming schema's distinct name tokens are interned into a Probe.
// Each probe token p contributes weighted "channels" keyed the same way
// stored schemas post into the index:
//
//   - its normalized text, weight 1 (covers trigram-less and
//     token-equality similarity, both <= 1);
//   - each distinct trigram g occurring k times among p's gp trigrams,
//     weight 2k/(gp+1) (a stored token posting g has >= 1 trigram, so
//     the trigram similarity 2*common/(gp+gc) is dominated by the sum
//     of shared-gram weights);
//   - each dictionary relation (id, sim) of p, weight sim (the Synonym
//     similarity against a stored token with term id `id` is exactly
//     that relation's sim).
//
// A posting walk accumulates, per (stored schema, probe token), the
// total weight of shared keys; capping each token's accumulator at 1
// (every real token-pair similarity is clamped to [0,1]) makes the sum
// over an incoming name's tokens dominate that name's mutual-best
// token-set similarity against ANY of the schema's names:
//
//	NameSim(u, w) <= min(1, 2*acc(u) / (|u| + tmin))
//
// where tmin is the schema's minimum token count over its (non-empty)
// names — the smallest possible denominator of the mutual-best average.
// Generic type compatibility is bounded by the maximum table entry
// between an element's class and the schema's class mask (leaf class
// mask for the leaf-set matchers); Children/Leaves cells are bounded by
// the best descendant-leaf bound, since the mutual-best combination
// never exceeds its largest input. Folding the per-row layer bounds
// with the configured aggregation (monotone for Max/Min/Average and
// non-negative Weighted) yields a per-row bound A_i on the aggregated
// matrix row; only rows with A_i strictly above the selection threshold
// can contribute correspondences, and each contributes at most n2 of
// them, each with similarity <= A_i — the coarse per-row bound n2*A_i.
//
// That coarse bound saturates as soon as two rows qualify, so a second,
// usually far tighter per-row bound is taken alongside it. Every
// aggregated cell decomposes as cell(i,j) <= Z_i + N_ij, where Z_i is
// the row's name-evidence-free part (the type-compatibility channels
// folded with the aggregation) and N_ij the name-evidence part (a
// non-negative per-layer combination of the row's name similarities
// against column j). A selected cell must exceed the threshold T, so it
// must have N_ij > T - Z_i, and therefore
//
//	cell(i,j) <= N_ij * T / (T - Z_i)
//
// which turns the row's selected-cell sum into (T/(T-Z_i)) * sum_j N_ij
// — no n2 factor. The column sum of name evidence is computable from
// the same posting walk: each posting entry carries the number of
// candidate columns whose short name / hierarchical name / descendant
// leaves contain the key, so a multiplicity-weighted accumulator sums,
// per probe token, the token's channel evidence over ALL candidate
// columns at once (uncapped — capping per column is impossible without
// per-column accumulators, and unnecessary for an upper bound). The
// per-row contribution is min(n2*A_i, (T/(T-Z_i)) * sum_j N_ij), the
// latter dropped when Z_i >= T. Hence, for CombAverage:
//
//	SchemaSim <= clamp01(2 * sum(qualifying rows' contributions) / (n1 + n2))
//
// and for CombDice: clamp01((qualifying rows + n2) / (n1 + n2)).
//
// Stored schemas with NO shared posting at all are never touched by the
// walk and receive bound 0 — valid because Spec construction verifies
// that a zero-name-evidence row bound (type-compatibility channels
// alone) cannot exceed the selection threshold; a configuration where
// it could (e.g. threshold 0) refuses the Spec.
//
// The final bound is inflated by a hair (one part in 1e9) before
// clamping so that ulp-level float rounding in the bound arithmetic can
// never push a mathematically-admissible bound below the real score.
//
// # Maintenance and staleness
//
// The index is maintained incrementally: Add posts one schema's keys
// (replacing any previous posting of the same schema), Remove unposts
// them; the server backends hook both into PUT/DELETE. A slot whose
// analysis no longer matches the schema's current structure or the
// query's auxiliary sources (SchemaIndex.Valid) yields +Inf — the
// candidate is always matched, never wrongly skipped — and callers
// re-Add opportunistically at query time, so direct (un-hooked) store
// mutation degrades to exhaustive work for the affected schemas, never
// to wrong results.
package candidates

import (
	"math"
	"sync"

	"repro/internal/analysis"
	"repro/internal/combine"
	"repro/internal/dict"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/strutil"
)

// numGeneric is the number of generic type classes (dict.GenUnknown
// through dict.GenComplex); class masks carry one bit per class.
const numGeneric = int(dict.GenComplex) + 1

// boundSlack inflates every computed bound multiplicatively so float
// rounding in the bound arithmetic cannot undercut the real score's
// (differently-ordered) arithmetic by an ulp.
const boundSlack = 1 + 1e-9

// Posting key kinds.
const (
	kindNorm uint8 = iota
	kindGram
	kindDict
)

// key is one posting-list key: a normalized token, a token trigram, or
// a dictionary term id.
type key struct {
	kind uint8
	s    string // normalized token or trigram (kindNorm, kindGram)
	id   int32  // dictionary term id (kindDict)
}

// posting is one posting-list entry: the indexed schema's slot plus the
// key's occurrence multiplicities, which feed the column-summed name
// evidence of the per-row selected-cell bound. multName counts the
// schema's columns (paths) whose short-name profile tokens carry the
// key (a token carrying it twice counts twice), multLong the same over
// hierarchical-name profiles, and multLeaf the occurrences over every
// (column, descendant leaf) pair's leaf-name profile.
type posting struct {
	sid      int32
	multName uint32
	multLong uint32
	multLeaf uint32
}

// mult3 carries one key's multiplicities during collection.
type mult3 struct {
	name, long, leaf uint32
}

// slot is one indexed schema's summary.
type slot struct {
	schema *schema.Schema
	idx    *analysis.SchemaIndex
	// keys are the schema's distinct posting keys, kept for Remove.
	keys []key
	// n2 is the schema's element (path) count.
	n2 int
	// tminName / tminLong / tminLeaf are the minimum token counts over
	// the schema's non-empty short / hierarchical / leaf name profiles
	// — the smallest denominators a mutual-best token average can have.
	tminName int
	tminLong int
	tminLeaf int
	// classMask / leafClassMask hold one bit per generic type class
	// occurring among all elements / leaf elements.
	classMask     uint16
	leafClassMask uint16
}

// Index is the candidate-pruning inverted index over stored schemas.
// It is safe for concurrent use: queries take a read lock, Add/Remove
// a write lock.
type Index struct {
	mu       sync.RWMutex
	slots    []slot
	free     []int32
	bySchema map[*schema.Schema]int32
	postings map[key][]posting
	posts    int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		bySchema: make(map[*schema.Schema]int32),
		postings: make(map[key][]posting),
	}
}

// Stats summarizes the index for monitoring (/readyz).
type Stats struct {
	// Schemas is the number of indexed schemas.
	Schemas int
	// Postings is the total number of posting-list entries.
	Postings int
}

// Stats returns the index's current size.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return Stats{Schemas: len(ix.bySchema), Postings: ix.posts}
}

// collectKeys builds a schema's distinct posting keys, their occurrence
// multiplicities (see posting), and name-token minima from its
// analysis.
func collectKeys(x *analysis.SchemaIndex) (keys []key, mults []mult3, tminName, tminLong, tminLeaf int) {
	seen := make(map[key]int32)
	add := func(k key, which int, w uint32) {
		i, ok := seen[k]
		if !ok {
			i = int32(len(keys))
			seen[k] = i
			keys = append(keys, k)
			mults = append(mults, mult3{})
		}
		switch which {
		case 0:
			mults[i].name += w
		case 1:
			mults[i].long += w
		case 2:
			mults[i].leaf += w
		}
	}
	tokKeys := func(tp *strutil.TokenProfile, which int, w uint32) {
		add(key{kind: kindNorm, s: tp.Norm}, which, w)
		grams := tp.Grams(3)
		for i := 0; i < len(grams); {
			j := i
			for j < len(grams) && grams[j] == grams[i] {
				j++
			}
			add(key{kind: kindGram, s: grams[i]}, which, w)
			i = j
		}
		if tp.DictID >= 0 {
			add(key{kind: kindDict, id: tp.DictID}, which, w)
		}
	}
	// Column usage counts: how many paths carry each distinct short /
	// hierarchical name, and — for leaves — over how many (column,
	// descendant leaf) pairs each leaf path occurs.
	countName := make([]uint32, len(x.Names))
	countLong := make([]uint32, len(x.LongNames))
	occ := make([]uint32, len(x.Paths))
	for i := range x.Paths {
		countName[x.NameID[i]]++
		countLong[x.LongNameID[i]]++
		lo, hi := x.LeafSet(i)
		for _, a := range x.Leaves[lo:hi] {
			occ[a]++
		}
	}
	leafW := make([]uint32, len(x.Names))
	for _, a := range x.Leaves {
		leafW[x.NameID[a]] += occ[a]
	}
	addProfiles := func(names []*strutil.NameProfile, counts []uint32, which int) int {
		tmin := 0
		for nid, np := range names {
			if counts[nid] == 0 {
				continue
			}
			if n := len(np.Profiles); n > 0 && (tmin == 0 || n < tmin) {
				tmin = n
			}
			for _, tp := range np.Profiles {
				tokKeys(tp, which, counts[nid])
			}
		}
		return tmin
	}
	tminName = addProfiles(x.Names, countName, 0)
	tminLong = addProfiles(x.LongNames, countLong, 1)
	tminLeaf = addProfiles(x.Names, leafW, 2)
	return keys, mults, tminName, tminLong, tminLeaf
}

// classMasks folds a schema's generic type classes into per-element and
// per-leaf bit masks.
func classMasks(x *analysis.SchemaIndex) (all, leaves uint16) {
	for _, g := range x.Generic {
		all |= 1 << uint(g)
	}
	for _, i := range x.Leaves {
		leaves |= 1 << uint(x.Generic[i])
	}
	return all, leaves
}

// Add indexes a schema from its analysis, replacing any previous
// posting of the same schema (PUT-over-PUT). The analysis must be the
// schema's current one; staleness is re-checked at query time via
// SchemaIndex.Valid, so a racing mutation degrades to a forced match,
// never to a wrong skip.
func (ix *Index) Add(s *schema.Schema, x *analysis.SchemaIndex) {
	keys, mults, tminName, tminLong, tminLeaf := collectKeys(x)
	all, leafs := classMasks(x)
	sl := slot{
		schema: s, idx: x, keys: keys, n2: len(x.Paths),
		tminName: tminName, tminLong: tminLong, tminLeaf: tminLeaf,
		classMask: all, leafClassMask: leafs,
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if sid, ok := ix.bySchema[s]; ok {
		ix.removeLocked(sid)
	}
	var sid int32
	if n := len(ix.free); n > 0 {
		sid = ix.free[n-1]
		ix.free = ix.free[:n-1]
	} else {
		sid = int32(len(ix.slots))
		ix.slots = append(ix.slots, slot{})
	}
	ix.slots[sid] = sl
	ix.bySchema[s] = sid
	for i, k := range keys {
		m := mults[i]
		ix.postings[k] = append(ix.postings[k], posting{
			sid: sid, multName: m.name, multLong: m.long, multLeaf: m.leaf,
		})
	}
	ix.posts += len(keys)
}

// Remove unposts a schema, reporting whether it was indexed.
func (ix *Index) Remove(s *schema.Schema) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	sid, ok := ix.bySchema[s]
	if !ok {
		return false
	}
	ix.removeLocked(sid)
	return true
}

func (ix *Index) removeLocked(sid int32) {
	sl := &ix.slots[sid]
	for _, k := range sl.keys {
		p := ix.postings[k]
		for i := range p {
			if p[i].sid == sid {
				p[i] = p[len(p)-1]
				p = p[:len(p)-1]
				break
			}
		}
		if len(p) == 0 {
			delete(ix.postings, k)
		} else {
			ix.postings[k] = p
		}
	}
	ix.posts -= len(sl.keys)
	delete(ix.bySchema, sl.schema)
	*sl = slot{}
	ix.free = append(ix.free, sid)
}

// Stale returns the subset of cands lacking a currently-valid slot
// (never indexed, or indexed against an outdated analysis or different
// auxiliary sources) — the schemas a caller should (re-)Add before
// querying Bounds if it wants them boundable rather than force-matched.
func (ix *Index) Stale(cands []*schema.Schema, src analysis.Sources) []*schema.Schema {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []*schema.Schema
	for _, s := range cands {
		if sid, ok := ix.bySchema[s]; !ok || !ix.slots[sid].idx.Valid(s, src) {
			out = append(out, s)
		}
	}
	return out
}

// Spec captures everything about an engine configuration the bound
// formulas need. NewSpec returns nil when the configuration is not
// boundable — the caller must then match exhaustively.
type Spec struct {
	layers []match.BoundLayer
	fold   func([]float64) float64
	teff   float64
	comb   combine.CombSim
	// coefs are the per-layer coefficients of the name-evidence
	// decomposition cell <= fold(z) + sum_L coefs[L]*n_L: the fold's
	// own linear weights for Average/Weighted, and 1 for Max/Min
	// (max_L(z_L+n_L) <= max_L z_L + sum_L n_L, and min likewise via
	// the argmin-z layer).
	coefs []float64
}

// NewSpec validates a matcher configuration for upper-bound pruning:
// every matcher must be a recognized library configuration
// (match.BoundableLayers), the aggregation must fold (Weighted with
// mismatched weights does not), the combined similarity must be one of
// the two the candidate formula covers, feedback must be absent (pinned
// cells can exceed any score-derived bound), and a row with zero name
// evidence must be unable to clear the selection threshold on type
// compatibility alone — otherwise untouched candidates could not be
// scored 0 and pruning would be pointless anyway.
func NewSpec(matchers []match.Matcher, strategy combine.Strategy, feedback *match.Feedback) *Spec {
	if feedback != nil {
		return nil
	}
	layers, ok := match.BoundableLayers(matchers)
	if !ok || len(layers) == 0 {
		return nil
	}
	fold, err := strategy.Agg.Func(len(layers))
	if err != nil {
		return nil
	}
	if strategy.Comb != combine.CombAverage && strategy.Comb != combine.CombDice {
		return nil
	}
	teff := strategy.Sel.Threshold
	if teff < 0 {
		teff = 0
	}
	// z_max: the largest per-row bound a candidate sharing no posting
	// key can reach (name layers 0, type layers at full compatibility).
	zvals := make([]float64, len(layers))
	for i, l := range layers {
		switch l.Kind {
		case match.BoundName, match.BoundNamePath:
			zvals[i] = 0
		default:
			zvals[i] = l.WType
		}
	}
	if fold(zvals) > teff {
		return nil
	}
	coefs := make([]float64, len(layers))
	switch strategy.Agg.Kind {
	case combine.Average:
		for i := range coefs {
			coefs[i] = 1 / float64(len(layers))
		}
	case combine.Weighted:
		// Agg.Func succeeded above, so the weights are non-negative
		// with a positive total.
		total := 0.0
		for _, w := range strategy.Agg.Weights {
			total += w
		}
		for i := range coefs {
			coefs[i] = strategy.Agg.Weights[i] / total
		}
	default: // Max, Min
		for i := range coefs {
			coefs[i] = 1
		}
	}
	return &Spec{layers: layers, fold: fold, teff: teff, comb: strategy.Comb, coefs: coefs}
}

// tokWeight is one probe token's contribution under a posting key.
type tokWeight struct {
	tok int32
	w   float64
}

// nameRef is one distinct incoming name: its interned token ids (one
// entry per token instance) and token count.
type nameRef struct {
	toks []int32
}

// leafRef is one descendant leaf of an incoming row.
type leafRef struct {
	g    dict.GenericType
	name int32
}

// rowRef is one incoming element row.
type rowRef struct {
	name, long int32
	g          dict.GenericType
	leaves     []leafRef
	// leafToks are the distinct interned token ids over the row's
	// descendant-leaf names; leafMin is the minimum token count among
	// the non-empty ones (0 if none). Both feed the row's column-summed
	// leaf name-evidence bound.
	leafToks []int32
	leafMin  int
}

// Probe is the incoming schema's side of a bound computation: interned
// distinct tokens with their channel weights per posting key, plus the
// per-name and per-row structure the layer bounds read. A Probe is
// immutable after construction and reusable across shards.
type Probe struct {
	spec      *Spec
	src       analysis.Sources
	types     *dict.TypeTable
	n1        int
	ntok      int
	chans     map[key][]tokWeight
	names     []nameRef
	longNames []nameRef
	rows      []rowRef
}

// NewProbe builds the incoming side of a bound computation from the
// incoming schema's analysis.
func NewProbe(spec *Spec, x *analysis.SchemaIndex) *Probe {
	p := &Probe{
		spec:  spec,
		src:   x.Src,
		types: x.Src.Types,
		chans: make(map[key][]tokWeight),
		n1:    len(x.Paths),
	}
	if p.types == nil {
		// Identical compatibility values to the match layer's own
		// nil-sources fallback, so bounds computed here dominate scores
		// computed there.
		p.types = dict.DefaultTypeTable()
	}
	byTok := make(map[string]int32)
	intern := func(tp *strutil.TokenProfile) int32 {
		if id, ok := byTok[tp.Token]; ok {
			return id
		}
		id := int32(p.ntok)
		p.ntok++
		byTok[tp.Token] = id
		nk := key{kind: kindNorm, s: tp.Norm}
		p.chans[nk] = append(p.chans[nk], tokWeight{tok: id, w: 1})
		grams := tp.Grams(3)
		if gp := len(grams); gp > 0 {
			for i := 0; i < gp; {
				j := i
				for j < gp && grams[j] == grams[i] {
					j++
				}
				gk := key{kind: kindGram, s: grams[i]}
				p.chans[gk] = append(p.chans[gk],
					tokWeight{tok: id, w: 2 * float64(j-i) / float64(gp+1)})
				i = j
			}
		}
		for _, r := range tp.DictRel {
			if r.Sim > 0 {
				dk := key{kind: kindDict, id: r.ID}
				p.chans[dk] = append(p.chans[dk], tokWeight{tok: id, w: r.Sim})
			}
		}
		return id
	}
	internName := func(np *strutil.NameProfile) nameRef {
		toks := make([]int32, len(np.Profiles))
		for i, tp := range np.Profiles {
			toks[i] = intern(tp)
		}
		return nameRef{toks: toks}
	}
	p.names = make([]nameRef, len(x.Names))
	for u, np := range x.Names {
		p.names[u] = internName(np)
	}
	p.longNames = make([]nameRef, len(x.LongNames))
	for u, np := range x.LongNames {
		p.longNames[u] = internName(np)
	}
	p.rows = make([]rowRef, p.n1)
	seenTok := make(map[int32]struct{})
	for i := range p.rows {
		lo, hi := x.LeafSet(i)
		leaves := make([]leafRef, hi-lo)
		var leafToks []int32
		leafMin := 0
		clear(seenTok)
		for d, a := range x.Leaves[lo:hi] {
			leaves[d] = leafRef{g: x.Generic[a], name: int32(x.NameID[a])}
			nr := p.names[x.NameID[a]]
			if n := len(nr.toks); n > 0 && (leafMin == 0 || n < leafMin) {
				leafMin = n
			}
			for _, t := range nr.toks {
				if _, ok := seenTok[t]; !ok {
					seenTok[t] = struct{}{}
					leafToks = append(leafToks, t)
				}
			}
		}
		p.rows[i] = rowRef{
			name:     int32(x.NameID[i]),
			long:     int32(x.LongNameID[i]),
			g:        x.Generic[i],
			leaves:   leaves,
			leafToks: leafToks,
			leafMin:  leafMin,
		}
	}
	return p
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// maskCompat returns the maximum type compatibility between class g and
// any class in mask.
func maskCompat(tt *dict.TypeTable, g dict.GenericType, mask uint16) float64 {
	best := 0.0
	for h := 0; h < numGeneric; h++ {
		if mask&(1<<uint(h)) == 0 {
			continue
		}
		if v := tt.CompatGeneric(g, dict.GenericType(h)); v > best {
			best = v
		}
	}
	return best
}

// Bounds computes one admissible SchemaSim upper bound per candidate:
// 0 for indexed candidates sharing no posting key with the probe,
// +Inf for candidates without a valid slot (never indexed, or stale
// against the probe's sources — they must be matched, not skipped),
// and the channel-sum bound for the rest. The candidate order of the
// result aligns with cands.
func (ix *Index) Bounds(p *Probe, cands []*schema.Schema) []float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	out := make([]float64, len(cands))
	candSlot := make([]int32, len(cands))
	slotPos := make(map[int32]int32, len(cands))
	for c, s := range cands {
		sid, ok := ix.bySchema[s]
		if !ok || !ix.slots[sid].idx.Valid(s, p.src) {
			out[c] = math.Inf(1)
			candSlot[c] = -1
			continue
		}
		candSlot[c] = sid
		slotPos[sid] = int32(c)
	}

	// Posting walk: accumulate shared-key channel weight per
	// (candidate, probe token) — the capped per-token evidence at
	// stride 0, and the column-summed (multiplicity-weighted) short /
	// hierarchical / leaf name evidence at strides 1-3. Candidates
	// sharing nothing are never touched and keep bound 0 (sound by the
	// Spec's z_max check).
	const accStride = 4
	accs := make([][]float64, len(cands))
	var touched []int32
	for k, tws := range p.chans {
		post, ok := ix.postings[k]
		if !ok {
			continue
		}
		for _, pe := range post {
			c, ok := slotPos[pe.sid]
			if !ok {
				continue
			}
			acc := accs[c]
			if acc == nil {
				acc = make([]float64, accStride*p.ntok)
				accs[c] = acc
				touched = append(touched, c)
			}
			mn, ml, mf := float64(pe.multName), float64(pe.multLong), float64(pe.multLeaf)
			for _, tw := range tws {
				a := acc[accStride*tw.tok:]
				a[0] += tw.w
				a[1] += tw.w * mn
				a[2] += tw.w * ml
				a[3] += tw.w * mf
			}
		}
	}

	// Finalize each touched candidate.
	nb := make([]float64, len(p.names))
	nbl := make([]float64, len(p.longNames))
	sn := make([]float64, len(p.names))
	snl := make([]float64, len(p.longNames))
	vals := make([]float64, len(p.spec.layers))
	zvals := make([]float64, len(p.spec.layers))
	var compatRow, compatLeaf [numGeneric]float64
	// nameBounds computes, per distinct incoming name, the capped
	// best-single-column bound (dst, clamped to [0,1]) and the uncapped
	// column-summed evidence bound (sdst, deliberately unclamped).
	nameBounds := func(dst, sdst []float64, names []nameRef, acc []float64, sumOff, tmin int) {
		for u, nr := range names {
			a, s := 0.0, 0.0
			for _, t := range nr.toks {
				v := acc[accStride*int(t)]
				if v > 1 {
					v = 1
				}
				a += v
				s += acc[accStride*int(t)+sumOff]
			}
			dst[u], sdst[u] = 0, 0
			if a > 0 {
				dst[u] = clamp01(2 * a / float64(len(nr.toks)+tmin))
			}
			if s > 0 {
				sdst[u] = 2 * s / float64(len(nr.toks)+tmin)
			}
		}
	}
	for _, c := range touched {
		sl := &ix.slots[candSlot[c]]
		acc := accs[c]
		nameBounds(nb, sn, p.names, acc, 1, sl.tminName)
		nameBounds(nbl, snl, p.longNames, acc, 2, sl.tminLong)
		for g := 0; g < numGeneric; g++ {
			compatRow[g] = maskCompat(p.types, dict.GenericType(g), sl.classMask)
			compatLeaf[g] = maskCompat(p.types, dict.GenericType(g), sl.leafClassMask)
		}
		sum, qual := 0.0, 0
		for _, r := range p.rows {
			leafB, leafW := -1.0, -1.0
			// maxLeafCompat feeds the row's name-evidence-free part for
			// the leaf-set layers; sLeaf its column-summed leaf name
			// evidence.
			maxLeafCompat := 0.0
			for _, lf := range r.leaves {
				if v := compatLeaf[lf.g]; v > maxLeafCompat {
					maxLeafCompat = v
				}
			}
			sLeaf := 0.0
			if len(r.leafToks) > 0 {
				s := 0.0
				for _, t := range r.leafToks {
					s += acc[accStride*int(t)+3]
				}
				if s > 0 {
					sLeaf = 2 * s / float64(r.leafMin+sl.tminLeaf)
				}
			}
			nsum := 0.0
			for li, l := range p.spec.layers {
				switch l.Kind {
				case match.BoundName:
					vals[li] = nb[r.name]
					zvals[li] = 0
					nsum += p.spec.coefs[li] * sn[r.name]
				case match.BoundNamePath:
					vals[li] = nbl[r.long]
					zvals[li] = 0
					nsum += p.spec.coefs[li] * snl[r.long]
				case match.BoundTypeName:
					vals[li] = clamp01(l.WType*compatRow[r.g] + l.WName*nb[r.name])
					zvals[li] = l.WType * compatRow[r.g]
					nsum += p.spec.coefs[li] * l.WName * sn[r.name]
				case match.BoundChildren, match.BoundLeaves:
					// Children and Leaves share the descendant-leaf bound;
					// compute it once per row while their weights agree
					// (they do for the library constructors).
					if leafB < 0 || leafW != l.WType {
						leafB, leafW = 0, l.WType
						for _, lf := range r.leaves {
							if v := l.WType*compatLeaf[lf.g] + l.WName*nb[lf.name]; v > leafB {
								leafB = v
							}
						}
						if leafB > 1 {
							leafB = 1
						}
					}
					vals[li] = leafB
					zvals[li] = l.WType * maxLeafCompat
					nsum += p.spec.coefs[li] * l.WName * sLeaf
				}
			}
			a := p.spec.fold(vals)
			if a <= p.spec.teff {
				continue
			}
			qual++
			// Coarse: at most n2 selected cells in the row, each <= a.
			row := float64(sl.n2) * a
			// Refined: every selected cell exceeds the threshold, so its
			// name evidence exceeds teff - Z_i, bounding the row's
			// selected-cell sum by (teff/(teff-Z_i)) * sum_j N_ij.
			if d := p.spec.teff - p.spec.fold(zvals); d > 0 {
				if alt := p.spec.teff / d * nsum; alt < row {
					row = alt
				}
			}
			sum += row
		}
		switch p.spec.comb {
		case combine.CombAverage:
			out[c] = clamp01(boundSlack * 2 * sum / float64(p.n1+sl.n2))
		case combine.CombDice:
			if qual > 0 {
				out[c] = clamp01(boundSlack * float64(qual+sl.n2) / float64(p.n1+sl.n2))
			}
		}
	}
	return out
}
