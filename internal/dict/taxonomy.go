package dict

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Taxonomy is a concept hierarchy (an is-a tree) supporting semantic
// distance similarity in the style of Rada et al. [17 in the paper]:
// the similarity of two terms decreases with the length of the path
// connecting them through the hierarchy. It generalizes the flat
// synonym/hypernym pairs of Dictionary to whole concept trees —
// the "large-scale dictionaries and standard ontologies" the paper's
// conclusion wants to reuse.
type Taxonomy struct {
	parent map[string]string
	terms  map[string]bool
	// decay is the per-edge similarity factor (default 0.8, matching
	// the dictionary's hypernym similarity for one step).
	decay float64

	// version counts mutations (AddIsA, SetDecay) so caches of
	// precomputed chains can detect in-place modification.
	version int64

	// snap caches the last Analyze result per version; guarded by
	// snapMu like Dictionary's snapshot.
	snapMu      sync.Mutex
	snap        *TaxIndex
	snapVersion int64
}

// NewTaxonomy returns an empty taxonomy with the default per-edge
// decay 0.8.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{
		parent: make(map[string]string),
		terms:  make(map[string]bool),
		decay:  0.8,
	}
}

// SetDecay adjusts the per-edge similarity factor (clamped to (0,1]).
func (t *Taxonomy) SetDecay(d float64) {
	if d <= 0 {
		d = 0.01
	}
	if d > 1 {
		d = 1
	}
	t.decay = d
	t.version++
}

// Version returns the mutation counter; it increases on every AddIsA,
// Load and SetDecay. A nil taxonomy is version 0 forever.
func (t *Taxonomy) Version() int64 {
	if t == nil {
		return 0
	}
	return t.version
}

// AddIsA records that child is a kind of parent. Both terms are
// normalized to lower case. Re-parenting a term or introducing a cycle
// is an error.
func (t *Taxonomy) AddIsA(child, parent string) error {
	child = strings.ToLower(strings.TrimSpace(child))
	parent = strings.ToLower(strings.TrimSpace(parent))
	if child == "" || parent == "" {
		return fmt.Errorf("dict: empty taxonomy term")
	}
	if child == parent {
		return fmt.Errorf("dict: %q cannot be its own parent", child)
	}
	if existing, ok := t.parent[child]; ok && existing != parent {
		return fmt.Errorf("dict: %q already has parent %q", child, existing)
	}
	// Cycle check: walk up from the proposed parent.
	for cur := parent; cur != ""; cur = t.parent[cur] {
		if cur == child {
			return fmt.Errorf("dict: is-a cycle through %q", child)
		}
	}
	t.parent[child] = parent
	t.terms[child] = true
	t.terms[parent] = true
	t.version++
	return nil
}

// Contains reports whether the term occurs in the taxonomy.
func (t *Taxonomy) Contains(term string) bool {
	return t.terms[strings.ToLower(strings.TrimSpace(term))]
}

// ancestors returns the chain from term up to the root, term first.
func (t *Taxonomy) ancestors(term string) []string {
	var out []string
	for cur := term; cur != ""; cur = t.parent[cur] {
		out = append(out, cur)
		if len(out) > len(t.parent)+1 {
			break // defensive: malformed state
		}
	}
	return out
}

// Sim computes the semantic-distance similarity between two terms:
// decay^(number of is-a edges on the shortest path connecting them
// through their lowest common ancestor). Identical terms score 1;
// terms without a common ancestor (or unknown terms) score 0.
func (t *Taxonomy) Sim(a, b string) float64 {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == "" || b == "" {
		return 0
	}
	if a == b {
		if t.terms[a] {
			return 1
		}
		return 1 // identical strings are identical concepts regardless
	}
	if !t.terms[a] || !t.terms[b] {
		return 0
	}
	upA := t.ancestors(a)
	depthA := make(map[string]int, len(upA))
	for i, term := range upA {
		depthA[term] = i
	}
	for j, term := range t.ancestors(b) {
		if i, ok := depthA[term]; ok {
			dist := i + j
			sim := 1.0
			for k := 0; k < dist; k++ {
				sim *= t.decay
			}
			return sim
		}
	}
	return 0
}

// Decay returns the per-edge similarity factor of Sim.
func (t *Taxonomy) Decay() float64 { return t.decay }

// TaxIndex is an immutable snapshot of the taxonomy's is-a chains with
// dense interned concept ids: the precomputed form of Sim. Each term's
// ancestor chain (term first, root last) is materialized once, so a
// pairwise similarity becomes an intersection of two short id slices
// instead of per-pair map walks. Build with Taxonomy.Analyze; later
// taxonomy mutations are not reflected.
type TaxIndex struct {
	source  *Taxonomy
	version int64
	decay   float64
	ids     map[string]int32
	chains  [][]int32
}

// Analyze snapshots the taxonomy into a TaxIndex. Concept ids are
// assigned over the sorted term list, so two snapshots of the same
// (unmutated) taxonomy agree on every id. The snapshot for the current
// version is cached; mutating the taxonomy invalidates it.
func (t *Taxonomy) Analyze() *TaxIndex {
	if t == nil {
		return &TaxIndex{ids: make(map[string]int32)}
	}
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if t.snap != nil && t.snapVersion == t.version {
		return t.snap
	}
	x := t.analyze()
	t.snap, t.snapVersion = x, t.version
	return x
}

func (t *Taxonomy) analyze() *TaxIndex {
	x := &TaxIndex{source: t, version: t.version, ids: make(map[string]int32)}
	x.decay = t.decay
	terms := make([]string, 0, len(t.terms))
	for term := range t.terms {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for i, term := range terms {
		x.ids[term] = int32(i)
	}
	x.chains = make([][]int32, len(terms))
	for i, term := range terms {
		anc := t.ancestors(term)
		chain := make([]int32, 0, len(anc))
		for _, a := range anc {
			if id, ok := x.ids[a]; ok {
				chain = append(chain, id)
			}
		}
		x.chains[i] = chain
	}
	return x
}

// Source returns the taxonomy the index was built from; consumers
// compare it (by pointer) against their own taxonomy before trusting
// precomputed chains.
func (x *TaxIndex) Source() *Taxonomy { return x.source }

// Decay returns the per-edge similarity factor captured at Analyze
// time.
func (x *TaxIndex) Decay() float64 { return x.decay }

// Chain returns the is-a chain of a lower-case term as interned ids
// (term first), or nil when the term is not a taxonomy concept. The
// returned slice is shared; do not modify.
func (x *TaxIndex) Chain(term string) []int32 {
	id, ok := x.ids[term]
	if !ok {
		return nil
	}
	return x.chains[id]
}

// ChainSim computes the semantic-distance similarity of two is-a
// chains exactly like Taxonomy.Sim computes it from term strings:
// decay^(i+j) for the first common ancestor, walking the second chain
// outward. Identical-term handling (similarity 1) is the caller's
// job; nil chains (unknown terms) score 0.
func ChainSim(decay float64, a, b []int32) float64 {
	for j, idB := range b {
		for i, idA := range a {
			if idA == idB {
				dist := i + j
				sim := 1.0
				for k := 0; k < dist; k++ {
					sim *= decay
				}
				return sim
			}
		}
	}
	return 0
}

// Load reads taxonomy entries from newline-separated "child parent"
// pairs, '#' comments allowed.
func (t *Taxonomy) Load(src string) error {
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return fmt.Errorf("dict: taxonomy line %d: want 'child parent'", lineNo+1)
		}
		if err := t.AddIsA(fields[0], fields[1]); err != nil {
			return fmt.Errorf("dict: taxonomy line %d: %w", lineNo+1, err)
		}
	}
	return nil
}

// DefaultTaxonomy returns a small purchase-order concept hierarchy used
// by the Taxonomy matcher's tests and examples.
func DefaultTaxonomy() *Taxonomy {
	t := NewTaxonomy()
	pairs := [][2]string{
		{"street", "address"}, {"city", "address"}, {"zip", "address"},
		{"country", "address"}, {"region", "address"},
		{"phone", "contact"}, {"fax", "contact"}, {"email", "contact"},
		{"address", "location"}, {"contact", "party"},
		{"customer", "party"}, {"supplier", "party"}, {"buyer", "party"},
		{"vendor", "supplier"},
		{"price", "amount"}, {"cost", "amount"}, {"total", "amount"},
		{"tax", "amount"}, {"discount", "amount"},
		{"quantity", "measure"}, {"weight", "measure"}, {"unit", "measure"},
	}
	for _, p := range pairs {
		if err := t.AddIsA(p[0], p[1]); err != nil {
			panic(err) // static data
		}
	}
	return t
}
