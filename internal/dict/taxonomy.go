package dict

import (
	"fmt"
	"strings"
)

// Taxonomy is a concept hierarchy (an is-a tree) supporting semantic
// distance similarity in the style of Rada et al. [17 in the paper]:
// the similarity of two terms decreases with the length of the path
// connecting them through the hierarchy. It generalizes the flat
// synonym/hypernym pairs of Dictionary to whole concept trees —
// the "large-scale dictionaries and standard ontologies" the paper's
// conclusion wants to reuse.
type Taxonomy struct {
	parent map[string]string
	terms  map[string]bool
	// decay is the per-edge similarity factor (default 0.8, matching
	// the dictionary's hypernym similarity for one step).
	decay float64
}

// NewTaxonomy returns an empty taxonomy with the default per-edge
// decay 0.8.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{
		parent: make(map[string]string),
		terms:  make(map[string]bool),
		decay:  0.8,
	}
}

// SetDecay adjusts the per-edge similarity factor (clamped to (0,1]).
func (t *Taxonomy) SetDecay(d float64) {
	if d <= 0 {
		d = 0.01
	}
	if d > 1 {
		d = 1
	}
	t.decay = d
}

// AddIsA records that child is a kind of parent. Both terms are
// normalized to lower case. Re-parenting a term or introducing a cycle
// is an error.
func (t *Taxonomy) AddIsA(child, parent string) error {
	child = strings.ToLower(strings.TrimSpace(child))
	parent = strings.ToLower(strings.TrimSpace(parent))
	if child == "" || parent == "" {
		return fmt.Errorf("dict: empty taxonomy term")
	}
	if child == parent {
		return fmt.Errorf("dict: %q cannot be its own parent", child)
	}
	if existing, ok := t.parent[child]; ok && existing != parent {
		return fmt.Errorf("dict: %q already has parent %q", child, existing)
	}
	// Cycle check: walk up from the proposed parent.
	for cur := parent; cur != ""; cur = t.parent[cur] {
		if cur == child {
			return fmt.Errorf("dict: is-a cycle through %q", child)
		}
	}
	t.parent[child] = parent
	t.terms[child] = true
	t.terms[parent] = true
	return nil
}

// Contains reports whether the term occurs in the taxonomy.
func (t *Taxonomy) Contains(term string) bool {
	return t.terms[strings.ToLower(strings.TrimSpace(term))]
}

// ancestors returns the chain from term up to the root, term first.
func (t *Taxonomy) ancestors(term string) []string {
	var out []string
	for cur := term; cur != ""; cur = t.parent[cur] {
		out = append(out, cur)
		if len(out) > len(t.parent)+1 {
			break // defensive: malformed state
		}
	}
	return out
}

// Sim computes the semantic-distance similarity between two terms:
// decay^(number of is-a edges on the shortest path connecting them
// through their lowest common ancestor). Identical terms score 1;
// terms without a common ancestor (or unknown terms) score 0.
func (t *Taxonomy) Sim(a, b string) float64 {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == "" || b == "" {
		return 0
	}
	if a == b {
		if t.terms[a] {
			return 1
		}
		return 1 // identical strings are identical concepts regardless
	}
	if !t.terms[a] || !t.terms[b] {
		return 0
	}
	upA := t.ancestors(a)
	depthA := make(map[string]int, len(upA))
	for i, term := range upA {
		depthA[term] = i
	}
	for j, term := range t.ancestors(b) {
		if i, ok := depthA[term]; ok {
			dist := i + j
			sim := 1.0
			for k := 0; k < dist; k++ {
				sim *= t.decay
			}
			return sim
		}
	}
	return 0
}

// Load reads taxonomy entries from newline-separated "child parent"
// pairs, '#' comments allowed.
func (t *Taxonomy) Load(src string) error {
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return fmt.Errorf("dict: taxonomy line %d: want 'child parent'", lineNo+1)
		}
		if err := t.AddIsA(fields[0], fields[1]); err != nil {
			return fmt.Errorf("dict: taxonomy line %d: %w", lineNo+1, err)
		}
	}
	return nil
}

// DefaultTaxonomy returns a small purchase-order concept hierarchy used
// by the Taxonomy matcher's tests and examples.
func DefaultTaxonomy() *Taxonomy {
	t := NewTaxonomy()
	pairs := [][2]string{
		{"street", "address"}, {"city", "address"}, {"zip", "address"},
		{"country", "address"}, {"region", "address"},
		{"phone", "contact"}, {"fax", "contact"}, {"email", "contact"},
		{"address", "location"}, {"contact", "party"},
		{"customer", "party"}, {"supplier", "party"}, {"buyer", "party"},
		{"vendor", "supplier"},
		{"price", "amount"}, {"cost", "amount"}, {"total", "amount"},
		{"tax", "amount"}, {"discount", "amount"},
		{"quantity", "measure"}, {"weight", "measure"}, {"unit", "measure"},
	}
	for _, p := range pairs {
		if err := t.AddIsA(p[0], p[1]); err != nil {
			panic(err) // static data
		}
	}
	return t
}
