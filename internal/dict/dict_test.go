package dict

import (
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	d := NewDictionary()
	d.AddSynonym("ship", "deliver")
	d.AddHypernym("address", "street")
	cases := []struct {
		a, b string
		want float64
	}{
		{"ship", "deliver", 1},
		{"deliver", "ship", 1}, // symmetric
		{"Ship", "DELIVER", 1}, // case-insensitive
		{"address", "street", 0.8},
		{"street", "address", 0.8},
		{"ship", "ship", 1},   // identity without an entry
		{"ship", "street", 0}, // unrelated
		{"", "ship", 0},
	}
	for _, c := range cases {
		if got := d.Lookup(c.a, c.b); got != c.want {
			t.Errorf("Lookup(%q,%q) = %.2f, want %.2f", c.a, c.b, got, c.want)
		}
	}
}

func TestLookupStrongerRelationshipWins(t *testing.T) {
	d := NewDictionary()
	d.AddHypernym("item", "article")
	d.AddSynonym("item", "article")
	if got := d.Lookup("item", "article"); got != 1 {
		t.Errorf("synonym should override hypernym, got %.2f", got)
	}
	// Adding the weaker relationship afterwards must not downgrade.
	d.AddHypernym("item", "article")
	if got := d.Lookup("item", "article"); got != 1 {
		t.Errorf("weaker relationship downgraded similarity to %.2f", got)
	}
}

func TestNilAndZeroValueDictionary(t *testing.T) {
	var d *Dictionary
	if d.Lookup("a", "b") != 0 || d.Expand("a") != nil || d.Terms() != nil {
		t.Error("nil dictionary should behave as empty")
	}
	var zero Dictionary
	zero.AddSynonym("a", "b")
	if zero.Lookup("a", "b") != 1 {
		t.Error("zero-value dictionary should be usable after Add")
	}
}

func TestExpand(t *testing.T) {
	d := Default()
	exp := d.Expand("po")
	if len(exp) != 2 || exp[0] != "purchase" || exp[1] != "order" {
		t.Errorf("Expand(po) = %v", exp)
	}
	if d.Expand("nonexistent") != nil {
		t.Error("unknown abbreviation should expand to nil")
	}
	if d.Expand("PO") == nil {
		t.Error("Expand should be case-insensitive")
	}
}

func TestLoad(t *testing.T) {
	src := `
# comment line
syn ship deliver
hyp vehicle car   # trailing comment
abb po purchase order

`
	d := NewDictionary()
	if err := d.Load(strings.NewReader(src)); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.Lookup("ship", "deliver") != 1 {
		t.Error("syn entry not loaded")
	}
	if d.Lookup("vehicle", "car") != 0.8 {
		t.Error("hyp entry not loaded")
	}
	if len(d.Expand("po")) != 2 {
		t.Error("abb entry not loaded")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"syn onlyone",
		"hyp a b c",
		"abb soloabbr",
		"frob a b",
	}
	for _, src := range cases {
		d := NewDictionary()
		if err := d.Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q) should fail", src)
		}
	}
}

func TestDefaultDictionaryPaperPairs(t *testing.T) {
	d := Default()
	// The pairs the paper explicitly names.
	if d.Lookup("ship", "deliver") != 1 {
		t.Error("(ship, deliver) missing")
	}
	if d.Lookup("bill", "invoice") != 1 {
		t.Error("(bill, invoice) missing")
	}
	if len(d.Expand("no")) == 0 || len(d.Expand("num")) == 0 {
		t.Error("trivial abbreviations No/Num missing")
	}
	if len(d.Terms()) == 0 {
		t.Error("Terms should list dictionary entries")
	}
}

func TestGenericTypeMapping(t *testing.T) {
	tt := DefaultTypeTable()
	cases := []struct {
		name string
		want GenericType
	}{
		{"VARCHAR(200)", GenString},
		{"varchar", GenString},
		{"INT", GenInteger},
		{"xsd:decimal", GenDecimal},
		{"xsd:string", GenString},
		{"DATE", GenDate},
		{"timestamp", GenDate},
		{"BOOLEAN", GenBoolean},
		{"blob", GenBinary},
		{"", GenComplex},
		{"frobnicate", GenUnknown},
	}
	for _, c := range cases {
		if got := tt.Generic(c.name); got != c.want {
			t.Errorf("Generic(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCompat(t *testing.T) {
	tt := DefaultTypeTable()
	if got := tt.Compat("VARCHAR(200)", "xsd:string"); got != 1 {
		t.Errorf("string/string = %.2f, want 1", got)
	}
	if got := tt.Compat("INT", "xsd:decimal"); got != 0.8 {
		t.Errorf("int/decimal = %.2f, want 0.8", got)
	}
	if got := tt.Compat("INT", "DATE"); got != 0.2 {
		t.Errorf("int/date = %.2f, want 0.2", got)
	}
	// Symmetry.
	if tt.Compat("INT", "VARCHAR(1)") != tt.Compat("VARCHAR(1)", "INT") {
		t.Error("Compat not symmetric")
	}
	// Inner elements are mutually compatible.
	if got := tt.Compat("", ""); got != 1 {
		t.Errorf("complex/complex = %.2f, want 1", got)
	}
}

func TestSetCompatClamping(t *testing.T) {
	tt := NewTypeTable()
	tt.SetCompat(GenString, GenDate, 1.5)
	if got := tt.Compat("varchar", "date"); got != 1 {
		t.Errorf("clamped high = %.2f", got)
	}
	tt.SetCompat(GenString, GenDate, -0.5)
	if got := tt.Compat("varchar", "date"); got != 0 {
		t.Errorf("clamped low = %.2f", got)
	}
}

func TestMapName(t *testing.T) {
	tt := NewTypeTable()
	tt.MapName("uuid", GenString)
	if tt.Generic("UUID") != GenString {
		t.Error("MapName lookup failed")
	}
	if tt.Generic("uuid(16)") != GenString {
		t.Error("parameterized custom type lookup failed")
	}
}

func TestRelationshipSimilarity(t *testing.T) {
	if Synonym.Similarity() != 1.0 || Hypernym.Similarity() != 0.8 {
		t.Error("relationship similarities differ from the paper's values")
	}
	if Relationship(99).Similarity() != 0 {
		t.Error("unknown relationship should be 0")
	}
}
