package dict

import (
	"math"
	"testing"
)

func TestTaxonomySim(t *testing.T) {
	tax := NewTaxonomy()
	mustAdd := func(c, p string) {
		t.Helper()
		if err := tax.AddIsA(c, p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("street", "address")
	mustAdd("city", "address")
	mustAdd("address", "location")
	mustAdd("venue", "location")

	cases := []struct {
		a, b string
		want float64
	}{
		{"street", "street", 1},
		{"street", "address", 0.8},      // one edge
		{"street", "city", 0.64},        // two edges via address
		{"street", "location", 0.64},    // two edges up
		{"street", "venue", 0.8 * 0.64}, // three edges
		{"street", "unknown", 0},        // unknown term
		{"", "street", 0},               // empty
		{"STREET", "City", 0.64},        // case-insensitive
	}
	for _, c := range cases {
		if got := tax.Sim(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Sim(%q,%q) = %.4f, want %.4f", c.a, c.b, got, c.want)
		}
	}
	// Symmetry.
	if tax.Sim("street", "venue") != tax.Sim("venue", "street") {
		t.Error("Sim not symmetric")
	}
}

func TestTaxonomyValidation(t *testing.T) {
	tax := NewTaxonomy()
	if err := tax.AddIsA("a", "a"); err == nil {
		t.Error("self-parent should fail")
	}
	if err := tax.AddIsA("", "x"); err == nil {
		t.Error("empty term should fail")
	}
	if err := tax.AddIsA("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tax.AddIsA("a", "c"); err == nil {
		t.Error("re-parenting should fail")
	}
	if err := tax.AddIsA("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := tax.AddIsA("c", "a"); err == nil {
		t.Error("cycle should fail")
	}
}

func TestTaxonomyDecay(t *testing.T) {
	tax := NewTaxonomy()
	tax.AddIsA("x", "y")
	tax.SetDecay(0.5)
	if got := tax.Sim("x", "y"); got != 0.5 {
		t.Errorf("decayed sim = %.2f", got)
	}
	tax.SetDecay(-1)
	if got := tax.Sim("x", "y"); got <= 0 || got > 0.011 {
		t.Errorf("clamped decay sim = %.4f", got)
	}
	tax.SetDecay(5)
	if got := tax.Sim("x", "y"); got != 1 {
		t.Errorf("clamped-high decay sim = %.2f", got)
	}
}

func TestTaxonomyLoad(t *testing.T) {
	tax := NewTaxonomy()
	src := `
# comment
street address
city address   # trailing
address location
`
	if err := tax.Load(src); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tax.Sim("street", "city")-0.64) > 1e-12 {
		t.Error("loaded taxonomy wrong")
	}
	if err := tax.Load("toomany words here"); err == nil {
		t.Error("malformed line should fail")
	}
	if err := tax.Load("a a"); err == nil {
		t.Error("invalid pair should surface")
	}
}

func TestDefaultTaxonomy(t *testing.T) {
	tax := DefaultTaxonomy()
	if !tax.Contains("street") || !tax.Contains("party") {
		t.Error("default taxonomy incomplete")
	}
	// Siblings under address.
	if got := tax.Sim("street", "zip"); math.Abs(got-0.64) > 1e-12 {
		t.Errorf("street/zip = %.3f", got)
	}
	// vendor is-a supplier is-a party.
	if got := tax.Sim("vendor", "customer"); got <= 0 {
		t.Error("vendor/customer should relate through party")
	}
}
