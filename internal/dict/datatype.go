package dict

import "strings"

// GenericType is one of COMA's predefined generic data types to which
// the concrete data types of schema elements are mapped in order to
// determine their similarity (paper Section 4.1, DataType matcher).
type GenericType int

const (
	// GenUnknown marks types outside the mapping table.
	GenUnknown GenericType = iota
	// GenString covers character types (VARCHAR, CHAR, xsd:string, ...).
	GenString
	// GenInteger covers whole-number types.
	GenInteger
	// GenDecimal covers fixed/floating point numeric types.
	GenDecimal
	// GenDate covers date/time types.
	GenDate
	// GenBoolean covers truth-value types.
	GenBoolean
	// GenBinary covers raw byte types.
	GenBinary
	// GenComplex marks inner elements without a simple type.
	GenComplex
	genTypeCount
)

// String returns the generic type name.
func (g GenericType) String() string {
	switch g {
	case GenString:
		return "string"
	case GenInteger:
		return "integer"
	case GenDecimal:
		return "decimal"
	case GenDate:
		return "date"
	case GenBoolean:
		return "boolean"
	case GenBinary:
		return "binary"
	case GenComplex:
		return "complex"
	default:
		return "unknown"
	}
}

// TypeTable is the data type compatibility table: it maps concrete type
// names onto generic types and records the degree of compatibility
// between every pair of generic types. The zero value is unusable;
// construct with DefaultTypeTable or NewTypeTable.
type TypeTable struct {
	compat [genTypeCount][genTypeCount]float64
	names  map[string]GenericType
	// version counts mutations (SetCompat, MapName) so caches of
	// precomputed generic classifications can detect in-place
	// modification.
	version int64
}

// Version returns the mutation counter; it increases on every
// SetCompat and MapName. A nil table is version 0 forever.
func (t *TypeTable) Version() int64 {
	if t == nil {
		return 0
	}
	return t.version
}

// NewTypeTable returns a table with identity compatibility only
// (each generic type fully compatible with itself) and the built-in
// concrete-name mapping.
func NewTypeTable() *TypeTable {
	t := &TypeTable{names: builtinTypeNames()}
	for g := GenericType(0); g < genTypeCount; g++ {
		t.compat[g][g] = 1
	}
	t.compat[GenUnknown][GenUnknown] = 0.5 // two unknowns: noncommittal
	return t
}

// SetCompat records a symmetric compatibility degree in [0,1] between
// two generic types.
func (t *TypeTable) SetCompat(a, b GenericType, sim float64) {
	if sim < 0 {
		sim = 0
	}
	if sim > 1 {
		sim = 1
	}
	t.compat[a][b] = sim
	t.compat[b][a] = sim
	t.version++
}

// MapName registers a concrete type name (case-insensitive, parameters
// like "(200)" stripped by Generic) as the given generic type.
func (t *TypeTable) MapName(name string, g GenericType) {
	t.names[strings.ToLower(name)] = g
	t.version++
}

// Generic maps a concrete declared type (e.g. "VARCHAR(200)",
// "xsd:decimal") to its generic type. Unparameterized lookup is
// attempted first, then the name with any "(...)" parameter stripped,
// then without a namespace prefix. An empty name maps to GenComplex
// (inner element).
func (t *TypeTable) Generic(name string) GenericType {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return GenComplex
	}
	if g, ok := t.names[name]; ok {
		return g
	}
	if i := strings.IndexByte(name, '('); i >= 0 {
		if g, ok := t.names[strings.TrimSpace(name[:i])]; ok {
			return g
		}
	}
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return t.Generic(name[i+1:])
	}
	return GenUnknown
}

// Compat returns the compatibility degree between two concrete type
// names after mapping both to generic types.
func (t *TypeTable) Compat(a, b string) float64 {
	return t.compat[t.Generic(a)][t.Generic(b)]
}

// CompatGeneric returns the compatibility degree between two generic
// types directly: the fast path for callers that classified their
// concrete type names once up front (analysis.SchemaIndex).
func (t *TypeTable) CompatGeneric(a, b GenericType) float64 {
	return t.compat[a][b]
}

func builtinTypeNames() map[string]GenericType {
	m := map[string]GenericType{}
	for _, n := range []string{"varchar", "char", "character", "text", "string", "nvarchar", "clob", "token", "normalizedstring", "anyuri", "id", "idref", "nmtoken"} {
		m[n] = GenString
	}
	for _, n := range []string{"int", "integer", "smallint", "bigint", "tinyint", "serial", "long", "short", "byte", "unsignedint", "unsignedlong", "positiveinteger", "nonnegativeinteger", "negativeinteger", "nonpositiveinteger"} {
		m[n] = GenInteger
	}
	for _, n := range []string{"decimal", "numeric", "float", "double", "real", "money"} {
		m[n] = GenDecimal
	}
	for _, n := range []string{"date", "time", "datetime", "timestamp", "gyear", "gmonth", "gday", "gyearmonth", "duration"} {
		m[n] = GenDate
	}
	for _, n := range []string{"bool", "boolean", "bit"} {
		m[n] = GenBoolean
	}
	for _, n := range []string{"blob", "binary", "varbinary", "base64binary", "hexbinary", "bytea"} {
		m[n] = GenBinary
	}
	return m
}

// DefaultTypeTable returns the compatibility table used throughout the
// evaluation: full self-compatibility, high integer↔decimal
// compatibility, moderate string↔anything-textual compatibility, and low
// compatibility elsewhere. The exact degrees follow the spirit of the
// paper's "synonym table specifying the degree of compatibility between
// a set of predefined generic data types".
func DefaultTypeTable() *TypeTable {
	t := NewTypeTable()
	t.SetCompat(GenInteger, GenDecimal, 0.8)
	t.SetCompat(GenString, GenInteger, 0.4)
	t.SetCompat(GenString, GenDecimal, 0.4)
	t.SetCompat(GenString, GenDate, 0.4)
	t.SetCompat(GenString, GenBoolean, 0.2)
	t.SetCompat(GenString, GenBinary, 0.2)
	t.SetCompat(GenInteger, GenDate, 0.2)
	t.SetCompat(GenInteger, GenBoolean, 0.3)
	t.SetCompat(GenDecimal, GenDate, 0.1)
	t.SetCompat(GenComplex, GenComplex, 1)
	// Unknown types get benefit of the doubt against anything simple.
	for g := GenString; g <= GenBinary; g++ {
		t.SetCompat(GenUnknown, g, 0.3)
	}
	return t
}
