package dict

import "testing"

func TestDictionaryFingerprint(t *testing.T) {
	if (*Dictionary)(nil).Fingerprint() != 0 {
		t.Error("nil dictionary fingerprint != 0")
	}
	a, b := NewDictionary(), NewDictionary()
	// Same content, different insertion order.
	a.AddSynonym("ship", "deliver")
	a.AddAbbreviation("po", "purchase", "order")
	a.AddHypernym("address", "city")
	b.AddHypernym("address", "city")
	b.AddAbbreviation("po", "purchase", "order")
	b.AddSynonym("deliver", "ship")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal-content dictionaries fingerprint differently")
	}
	if Default().Fingerprint() != Default().Fingerprint() {
		t.Error("two Default() dictionaries fingerprint differently")
	}
	before := a.Fingerprint()
	a.AddSynonym("bill", "invoice")
	if a.Fingerprint() == before {
		t.Error("mutation left the fingerprint unchanged")
	}
	if a.Fingerprint() == 0 || NewDictionary().Fingerprint() == 0 {
		// An empty dictionary is not nil: it must not collide with the
		// nil sentinel (a restart with a dictionary configured vs none).
		t.Error("non-nil dictionary fingerprints to the nil sentinel 0")
	}
}

func TestTaxonomyFingerprint(t *testing.T) {
	if (*Taxonomy)(nil).Fingerprint() != 0 {
		t.Error("nil taxonomy fingerprint != 0")
	}
	a, b := NewTaxonomy(), NewTaxonomy()
	a.AddIsA("city", "place")
	a.AddIsA("town", "place")
	b.AddIsA("town", "place")
	b.AddIsA("city", "place")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal-content taxonomies fingerprint differently")
	}
	before := a.Fingerprint()
	a.SetDecay(0.5)
	if a.Fingerprint() == before {
		t.Error("decay change left the fingerprint unchanged")
	}
	if DefaultTaxonomy().Fingerprint() != DefaultTaxonomy().Fingerprint() {
		t.Error("two DefaultTaxonomy() instances fingerprint differently")
	}
}

func TestTypeTableFingerprint(t *testing.T) {
	if (*TypeTable)(nil).Fingerprint() != 0 {
		t.Error("nil type table fingerprint != 0")
	}
	if NewTypeTable().Fingerprint() != NewTypeTable().Fingerprint() {
		t.Error("two fresh type tables fingerprint differently")
	}
	tt := NewTypeTable()
	before := tt.Fingerprint()
	tt.MapName("DOUBLOON", GenDecimal)
	if tt.Fingerprint() == before {
		t.Error("MapName left the fingerprint unchanged")
	}
	before = tt.Fingerprint()
	tt.SetCompat(GenString, GenDecimal, 0.3)
	if tt.Fingerprint() == before {
		t.Error("SetCompat left the fingerprint unchanged")
	}
}
