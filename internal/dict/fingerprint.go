package dict

import (
	"encoding/binary"
	"math"
	"sort"
)

// Fingerprints are stable content hashes of the auxiliary sources,
// used by warm-restart artifacts to decide whether analysis computed
// against a source in a previous process is still valid: unlike
// Version (an in-process mutation counter that restarts from zero),
// equal fingerprints across processes mean equal lookup behavior.
// FNV-1a over a canonical (sorted) rendering of the content; a nil
// source fingerprints to 0.

type fnvWriter struct{ h uint64 }

func newFnvWriter() *fnvWriter { return &fnvWriter{h: 14695981039346656037} }

func (w *fnvWriter) str(s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	w.bytes(n[:])
	for i := 0; i < len(s); i++ {
		w.h = (w.h ^ uint64(s[i])) * 1099511628211
	}
}

func (w *fnvWriter) bytes(b []byte) {
	for _, c := range b {
		w.h = (w.h ^ uint64(c)) * 1099511628211
	}
}

func (w *fnvWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

func (w *fnvWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

// Fingerprint hashes the dictionary's relationships and abbreviation
// expansions. A nil dictionary is 0.
func (d *Dictionary) Fingerprint() uint64 {
	if d == nil {
		return 0
	}
	w := newFnvWriter()
	terms := make([]string, 0, len(d.rel))
	for t := range d.rel {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		w.str(t)
		others := make([]string, 0, len(d.rel[t]))
		for o := range d.rel[t] {
			others = append(others, o)
		}
		sort.Strings(others)
		for _, o := range others {
			w.str(o)
			w.f64(d.rel[t][o])
		}
	}
	abbrs := make([]string, 0, len(d.abbrev))
	for a := range d.abbrev {
		abbrs = append(abbrs, a)
	}
	sort.Strings(abbrs)
	for _, a := range abbrs {
		w.str(a)
		for _, e := range d.abbrev[a] {
			w.str(e)
		}
	}
	return w.h
}

// Fingerprint hashes the taxonomy's is-a edges and decay factor. A
// nil taxonomy is 0.
func (t *Taxonomy) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	w := newFnvWriter()
	w.f64(t.decay)
	terms := make([]string, 0, len(t.terms))
	for term := range t.terms {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	for _, term := range terms {
		w.str(term)
		w.str(t.parent[term])
	}
	return w.h
}

// Fingerprint hashes the table's compatibility matrix and concrete
// name mapping. A nil table is 0.
func (t *TypeTable) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	w := newFnvWriter()
	for a := GenericType(0); a < genTypeCount; a++ {
		for b := GenericType(0); b < genTypeCount; b++ {
			w.f64(t.compat[a][b])
		}
	}
	names := make([]string, 0, len(t.names))
	for n := range t.names {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w.str(n)
		w.u64(uint64(t.names[n]))
	}
	return w.h
}
