// Package dict implements COMA's auxiliary information sources
// (Do & Rahm, VLDB 2002, Sections 4.1 and 7.1): a synonym dictionary
// with relationship-specific similarity values, an abbreviation/acronym
// expansion table, and the generic data type compatibility table used by
// the DataType matcher.
package dict

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/strutil"
)

// Relationship classifies a terminological relationship between two
// terms; each relationship carries a fixed similarity (paper: 1.0 for a
// synonymy, 0.8 for a hypernymy relationship).
type Relationship int

const (
	// Synonym terms are interchangeable (similarity 1.0).
	Synonym Relationship = iota
	// Hypernym relates a broader term to a narrower one (similarity 0.8).
	Hypernym
)

// Similarity returns the fixed similarity for the relationship.
func (r Relationship) Similarity() float64 {
	switch r {
	case Synonym:
		return 1.0
	case Hypernym:
		return 0.8
	default:
		return 0
	}
}

// Dictionary holds terminological relationships between lower-case
// terms, plus abbreviation expansions. The zero value is an empty,
// usable dictionary.
type Dictionary struct {
	// rel maps term → term → best relationship similarity.
	rel map[string]map[string]float64
	// abbrev maps a lower-case abbreviation to its expansion tokens.
	abbrev map[string][]string

	// version counts mutations; precomputed artifacts (Index,
	// analysis.SchemaIndex) capture it so caches can detect in-place
	// mutation of a dictionary they snapshotted.
	version int64

	// snap caches the last Analyze result for the version it was built
	// at, so analyzing many schemas against one dictionary snapshots
	// it once. Guarded by snapMu (the only concurrently written state;
	// the dictionary itself must not be mutated during concurrent use).
	snapMu      sync.Mutex
	snap        *Index
	snapVersion int64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		rel:    make(map[string]map[string]float64),
		abbrev: make(map[string][]string),
	}
}

func (d *Dictionary) ensure() {
	if d.rel == nil {
		d.rel = make(map[string]map[string]float64)
	}
	if d.abbrev == nil {
		d.abbrev = make(map[string][]string)
	}
}

// AddSynonym records a symmetric synonym pair.
func (d *Dictionary) AddSynonym(a, b string) { d.addRel(a, b, Synonym.Similarity(), true) }

// AddHypernym records that broader is a hypernym of narrower. The
// relationship contributes the hypernym similarity in both lookup
// directions, matching COMA's use of a single similarity per pair.
func (d *Dictionary) AddHypernym(broader, narrower string) {
	d.addRel(broader, narrower, Hypernym.Similarity(), true)
}

// Version returns the mutation counter; it increases on every
// AddSynonym/AddHypernym/AddAbbreviation/Load. A nil dictionary is
// version 0 forever.
func (d *Dictionary) Version() int64 {
	if d == nil {
		return 0
	}
	return d.version
}

func (d *Dictionary) addRel(a, b string, sim float64, symmetric bool) {
	d.ensure()
	a, b = strings.ToLower(strings.TrimSpace(a)), strings.ToLower(strings.TrimSpace(b))
	if a == "" || b == "" {
		return
	}
	d.version++
	put := func(x, y string) {
		m := d.rel[x]
		if m == nil {
			m = make(map[string]float64)
			d.rel[x] = m
		}
		if sim > m[y] {
			m[y] = sim
		}
	}
	put(a, b)
	if symmetric {
		put(b, a)
	}
}

// AddAbbreviation records that abbr expands to the given tokens, e.g.
// PO → {purchase, order}, No → {number}.
func (d *Dictionary) AddAbbreviation(abbr string, expansion ...string) {
	d.ensure()
	abbr = strings.ToLower(strings.TrimSpace(abbr))
	if abbr == "" || len(expansion) == 0 {
		return
	}
	d.version++
	toks := make([]string, 0, len(expansion))
	for _, e := range expansion {
		e = strings.ToLower(strings.TrimSpace(e))
		if e != "" {
			toks = append(toks, e)
		}
	}
	d.abbrev[abbr] = toks
}

// Expand returns the expansion tokens for a lower-case token, or nil.
// Its signature matches strutil.TokenSet's expander parameter.
func (d *Dictionary) Expand(tok string) []string {
	if d == nil || d.abbrev == nil {
		return nil
	}
	return d.abbrev[strings.ToLower(tok)]
}

// Lookup returns the terminological similarity between two terms: 1 for
// equal terms, the relationship similarity when a relationship is
// recorded, else 0.
func (d *Dictionary) Lookup(a, b string) float64 {
	a, b = strings.ToLower(strings.TrimSpace(a)), strings.ToLower(strings.TrimSpace(b))
	if a == "" || b == "" {
		return 0
	}
	if a == b {
		return 1
	}
	if d == nil || d.rel == nil {
		return 0
	}
	if m := d.rel[a]; m != nil {
		return m[b]
	}
	return 0
}

// Terms returns all terms with at least one recorded relationship,
// sorted; used by tests and the CLI's dictionary dump.
func (d *Dictionary) Terms() []string {
	if d == nil {
		return nil
	}
	out := make([]string, 0, len(d.rel))
	for t := range d.rel {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Index is an immutable snapshot of the dictionary's relationship
// graph with dense interned term ids: the precomputed form of Lookup.
// Each term's neighbours are materialized once as an id-sorted hit-set
// so that a pairwise similarity becomes a binary search over small
// slices instead of a two-level map walk per pair. Build with
// Dictionary.Analyze; later dictionary mutations are not reflected.
type Index struct {
	source  *Dictionary
	version int64
	ids     map[string]int32
	rel     [][]strutil.IDSim
}

// Analyze snapshots the dictionary's relationships into an Index. Term
// ids are assigned over the sorted term list, so two snapshots of the
// same (unmutated) dictionary agree on every id. The snapshot for the
// current version is cached, so analyzing many schemas against one
// dictionary builds it once; mutating the dictionary invalidates it.
func (d *Dictionary) Analyze() *Index {
	if d == nil {
		return &Index{ids: make(map[string]int32)}
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	if d.snap != nil && d.snapVersion == d.version {
		return d.snap
	}
	x := d.analyze()
	d.snap, d.snapVersion = x, d.version
	return x
}

func (d *Dictionary) analyze() *Index {
	x := &Index{source: d, version: d.version, ids: make(map[string]int32)}
	terms := d.Terms()
	x.rel = make([][]strutil.IDSim, len(terms))
	for i, t := range terms {
		x.ids[t] = int32(i)
	}
	for i, t := range terms {
		m := d.rel[t]
		hits := make([]strutil.IDSim, 0, len(m))
		for other, sim := range m {
			if id, ok := x.ids[other]; ok {
				hits = append(hits, strutil.IDSim{ID: id, Sim: sim})
			}
		}
		sort.Slice(hits, func(a, b int) bool { return hits[a].ID < hits[b].ID })
		x.rel[i] = hits
	}
	return x
}

// Source returns the dictionary the index was built from; consumers
// compare it (by pointer) against their own dictionary before trusting
// precomputed hit-sets.
func (x *Index) Source() *Dictionary { return x.source }

// TermID returns the interned id of a lower-case term, or -1 when the
// term has no recorded relationship.
func (x *Index) TermID(term string) int32 {
	if id, ok := x.ids[term]; ok {
		return id
	}
	return -1
}

// Relations returns the id-sorted hit-set of a term id. The returned
// slice is shared; do not modify.
func (x *Index) Relations(id int32) []strutil.IDSim {
	if id < 0 || int(id) >= len(x.rel) {
		return nil
	}
	return x.rel[id]
}

// Load reads dictionary entries from r, one per line:
//
//	syn ship deliver        # synonym pair
//	hyp vehicle car         # hypernym: broader narrower
//	abb po purchase order   # abbreviation + expansion tokens
//
// Blank lines and lines starting with '#' are ignored. Trailing '#'
// comments are stripped.
func (d *Dictionary) Load(r io.Reader) error {
	d.ensure()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "syn":
			if len(fields) != 3 {
				return fmt.Errorf("dict line %d: syn needs exactly 2 terms", lineNo)
			}
			d.AddSynonym(fields[1], fields[2])
		case "hyp":
			if len(fields) != 3 {
				return fmt.Errorf("dict line %d: hyp needs exactly 2 terms", lineNo)
			}
			d.AddHypernym(fields[1], fields[2])
		case "abb":
			if len(fields) < 3 {
				return fmt.Errorf("dict line %d: abb needs an abbreviation and 1+ expansion tokens", lineNo)
			}
			d.AddAbbreviation(fields[1], fields[2:]...)
		default:
			return fmt.Errorf("dict line %d: unknown entry kind %q", lineNo, fields[0])
		}
	}
	return sc.Err()
}

// Default returns the dictionary the paper's evaluation used: trivial
// abbreviations (No, Num, PO, Qty, ...) plus the domain-specific synonym
// pairs it names, (ship, deliver) and (bill, invoice), extended with the
// purchase-order vocabulary the workload schemas draw on.
func Default() *Dictionary {
	d := NewDictionary()
	// "some trivial abbreviations, such as, No, Num" (Sec. 7.1)
	d.AddAbbreviation("no", "number")
	d.AddAbbreviation("num", "number")
	d.AddAbbreviation("nr", "number")
	d.AddAbbreviation("po", "purchase", "order")
	d.AddAbbreviation("qty", "quantity")
	d.AddAbbreviation("amt", "amount")
	d.AddAbbreviation("addr", "address")
	d.AddAbbreviation("tel", "telephone")
	d.AddAbbreviation("cust", "customer")
	d.AddAbbreviation("desc", "description")
	d.AddAbbreviation("uom", "unit", "of", "measure")
	d.AddAbbreviation("id", "identifier")
	d.AddAbbreviation("frt", "freight")
	d.AddAbbreviation("tot", "total")
	d.AddAbbreviation("curr", "currency")
	d.AddAbbreviation("prod", "product")
	d.AddAbbreviation("doc", "document")
	d.AddAbbreviation("ref", "reference")
	d.AddAbbreviation("wh", "warehouse")
	d.AddAbbreviation("disc", "discount")
	d.AddAbbreviation("pct", "percent")
	// Inflected context words normalize to their stem so that path
	// tokens discriminate contexts sharply (ShippingParty vs ship).
	d.AddAbbreviation("shipping", "ship")
	d.AddAbbreviation("shipment", "ship")
	d.AddAbbreviation("invoicing", "invoice")
	d.AddAbbreviation("billing", "bill")
	d.AddAbbreviation("delivery", "deliver")
	// "domain-specific synonyms, such as (ship, deliver), (bill, invoice)"
	d.AddSynonym("ship", "deliver")
	d.AddSynonym("bill", "invoice")
	d.AddSynonym("city", "town")
	d.AddSynonym("zip", "postcode")
	d.AddSynonym("zip", "postal")
	d.AddSynonym("street", "road")
	d.AddSynonym("phone", "telephone")
	d.AddSynonym("customer", "buyer")
	d.AddSynonym("supplier", "vendor")
	d.AddSynonym("supplier", "seller")
	d.AddSynonym("item", "line")
	d.AddSynonym("item", "article")
	d.AddSynonym("product", "article")
	d.AddSynonym("price", "cost")
	d.AddSynonym("quantity", "count")
	d.AddSynonym("date", "day")
	d.AddSynonym("total", "sum")
	d.AddSynonym("net", "sub")
	d.AddSynonym("gross", "grand")
	d.AddSynonym("freight", "shipping")
	d.AddSynonym("amount", "total")
	d.AddSynonym("amount", "cost")
	d.AddSynonym("code", "number")
	d.AddSynonym("part", "product")
	d.AddSynonym("order", "document")
	d.AddSynonym("contact", "person")
	d.AddSynonym("company", "organization")
	d.AddSynonym("name", "title")
	d.AddHypernym("address", "street")
	d.AddHypernym("party", "customer")
	d.AddHypernym("party", "supplier")
	return d
}
