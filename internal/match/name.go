package match

import (
	"slices"

	"repro/internal/analysis"
	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
)

// NameMatcher is the hybrid Name matcher (paper Section 4.2): it
// considers only element names but combines several simple name
// matchers. Names are pre-processed by tokenization (POShipTo → {PO,
// Ship, To}) and abbreviation/acronym expansion (PO → {Purchase,
// Order}); the simple matchers are applied to the token sets and the
// token similarities combined into a name similarity using the
// three-step combination scheme.
//
// In NamePath mode the matcher operates on hierarchical names: the
// concatenation of all element names on the path, providing additional
// tokens and distinguishing different contexts of a shared element.
//
// The matcher holds no per-schema state of its own: name analysis
// (tokenization, expansion, gram extraction, Soundex, dictionary
// hit-sets) comes from the schemas' shared analysis.SchemaIndex. One
// similarity grid over the distinct names of both schemas is filled
// row-parallel and projected onto the path matrix, so duplicate
// element names are scored once.
type NameMatcher struct {
	matcherName string
	tokenSims   []*Simple
	strategy    combine.Strategy
	longName    bool
	gramNs      []int
	// sharedKey, when non-empty, marks a library-built configuration
	// (NewName/NewNamePath) whose instances are interchangeable up to
	// the combined-similarity knob: batch-cache columns are then keyed
	// by configuration instead of instance, so the identically
	// configured Name matchers embedded in TypeName, Children and
	// Leaves share one set of columns per batch. Custom matchers (and
	// custom constituents, whose behavior the name cannot identify)
	// keep instance identity.
	sharedKey string
}

// sharedOwner is the configuration-level batch-cache identity of
// library-built Name matchers: the builder key plus the one knob that
// can change after construction (SetCombSim).
type sharedOwner struct {
	key  string
	comb combine.CombSim
}

// cacheOwner returns the batch-cache identity of the matcher: its
// configuration for library-built instances, the instance itself
// otherwise.
func (nm *NameMatcher) cacheOwner() any {
	if nm.sharedKey == "" {
		return nm
	}
	return sharedOwner{key: nm.sharedKey, comb: nm.strategy.Comb}
}

// NewName returns the Name matcher with its Table 4 defaults:
// constituent matchers {Trigram, Synonym} combined with
// (Max, Both+Max1, Average).
func NewName() *NameMatcher {
	nm := newNameMatcher("Name", defaultTokenStrategy(), []*Simple{Trigram(), Synonym()}, false)
	nm.sharedKey = "lib:Name"
	return nm
}

// NewNamePath returns the NamePath matcher: Name applied to the long
// name built by concatenating all names of the elements in a path.
func NewNamePath() *NameMatcher {
	nm := newNameMatcher("NamePath", defaultTokenStrategy(), []*Simple{Trigram(), Synonym()}, true)
	nm.sharedKey = "lib:NamePath"
	return nm
}

// NewCustomName builds a Name-style matcher from explicit constituent
// matchers and a combination strategy; it backs the paper's claim that
// hybrid matchers "can be configured easily by combining existing
// matchers using the provided combination strategies".
func NewCustomName(name string, strategy combine.Strategy, tokenSims ...*Simple) *NameMatcher {
	return newNameMatcher(name, strategy, tokenSims, false)
}

func newNameMatcher(name string, strategy combine.Strategy, tokenSims []*Simple, longName bool) *NameMatcher {
	nm := &NameMatcher{
		matcherName: name,
		tokenSims:   tokenSims,
		strategy:    strategy,
		longName:    longName,
	}
	for _, tm := range tokenSims {
		if n := tm.GramN(); n > 0 && !slices.Contains(nm.gramNs, n) {
			nm.gramNs = append(nm.gramNs, n)
		}
	}
	return nm
}

func defaultTokenStrategy() combine.Strategy {
	return combine.Strategy{
		Agg:  combine.AggSpec{Kind: combine.Max},
		Dir:  combine.Both,
		Sel:  combine.Selection{MaxN: 1},
		Comb: combine.CombAverage,
	}
}

// Name implements Matcher.
func (nm *NameMatcher) Name() string { return nm.matcherName }

// SetCombSim switches the strategy for computing the combined token-set
// similarity (step 3) between Average and Dice; the evaluation compares
// both (paper Section 7.2). Configure before matching; the matcher must
// not be reconfigured while a Match runs.
func (nm *NameMatcher) SetCombSim(c combine.CombSim) {
	nm.strategy.Comb = c
}

// profiles resolves the distinct-name profiles and the path → profile
// projection the matcher compares for one schema: the index's element
// names or hierarchical names. When the matcher's constituents need
// gram widths the index does not precompute, equivalent profiles are
// rebuilt locally with the right widths (the index still provides the
// distinct-name dedup).
func (nm *NameMatcher) profiles(ctx *Context, x *analysis.SchemaIndex) (dist []*strutil.NameProfile, id []int) {
	if nm.longName {
		dist, id = x.LongNames, x.LongNameID
	} else {
		dist, id = x.Names, x.NameID
	}
	if analysis.ProfiledGramNs(nm.gramNs) {
		return dist, id
	}
	rebuilt := make([]*strutil.NameProfile, len(dist))
	for i, p := range dist {
		rebuilt[i] = strutil.NewNameProfile(p.Name, ctx.expand, nm.gramNs...)
	}
	return rebuilt, id
}

// scoreGrid fills grid (len(d1) × len(d2), row-major) with the
// token-set similarity of every distinct-name pair. Outside a batch
// the fill is row-parallel; inside a batch it runs column-parallel
// through the batch cache, so a candidate name already scored against
// this matcher's incoming row set (in an earlier pair or batch round)
// reuses its column. set discriminates the incoming row set for the
// cache key; the values are identical on every path — tokenSetSim is
// a pure function of the profile pair.
func (nm *NameMatcher) scoreGrid(ctx *Context, set int8, d1, d2 []*strutil.NameProfile, grid []float64) {
	n2 := len(d2)
	bc := ctx.batchCache()
	if bc == nil {
		parallelRows(ctx, len(d1), func(a int) {
			for b := 0; b < n2; b++ {
				grid[a*n2+b] = nm.tokenSetSim(ctx, d1[a], d2[b])
			}
		})
		return
	}
	owner := nm.cacheOwner()
	parallelRows(ctx, n2, func(b int) {
		col := bc.column(owner, set, d2[b].Name, len(d1), func(col []float64) {
			for a := range d1 {
				col[a] = nm.tokenSetSim(ctx, d1[a], d2[b])
			}
		})
		for a, v := range col {
			grid[a*n2+b] = v
		}
	})
}

// Match implements Matcher: score the distinct-name grid from the
// schemas' shared indexes (batch-cached, see scoreGrid), then project
// it onto the path matrix.
func (nm *NameMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	d1, id1 := nm.profiles(ctx, x1)
	d2, id2 := nm.profiles(ctx, x2)
	n2 := len(d2)
	grid := ctx.acquireGrid(len(d1) * n2)
	defer ctx.releaseGrid(grid)
	nm.scoreGrid(ctx, gridFull, d1, d2, grid)
	m := ctx.newMatrix(x1.Keys, x2.Keys)
	parallelRows(ctx, len(id1), func(i int) {
		row := grid[id1[i]*n2:]
		for j := range id2 {
			m.Set(i, j, row[id2[j]])
		}
	})
	return m
}

// NameSim computes the similarity of two names: tokenize and expand
// both, apply every constituent matcher to the token pair grid
// (yielding a token similarity cube), aggregate (default Max, since
// tokens are typically similar according to only some matchers — e.g.
// Trigram finds no similarity for Ship and Deliver while Synonym
// detects the synonymy), select directional token correspondences
// (Both, Max1) and fold them into a single value (Average). Ad-hoc
// callers analyze per call; matrix fills go through the schema index
// instead.
func (nm *NameMatcher) NameSim(ctx *Context, a, b string) float64 {
	pa := strutil.NewNameProfile(a, ctx.expand, nm.gramNs...)
	pb := strutil.NewNameProfile(b, ctx.expand, nm.gramNs...)
	return nm.tokenSetSim(ctx, pa, pb)
}

// ProfileSim is NameSim over pre-analyzed names.
func (nm *NameMatcher) ProfileSim(ctx *Context, a, b *strutil.NameProfile) float64 {
	return nm.tokenSetSim(ctx, a, b)
}

// tokenSetSim runs the three combination steps on the token grid of two
// analyzed names. The default sub-strategy (Both, Max1) takes the
// mutual-best fast path, which evaluates the grid without materializing
// a cube, matrix or mapping; other strategies fall back to the generic
// matrix pipeline.
func (nm *NameMatcher) tokenSetSim(ctx *Context, a, b *strutil.NameProfile) float64 {
	t1, t2 := a.Profiles, b.Profiles
	if len(t1) == 0 || len(t2) == 0 {
		return 0
	}
	fold, err := nm.strategy.Agg.Func(len(nm.tokenSims))
	if err != nil {
		// Constituent configuration errors surface as zero similarity;
		// the library constructors never produce such configurations.
		return 0
	}
	vals := make([]float64, len(nm.tokenSims))
	cell := func(i, j int) float64 {
		for k, tm := range nm.tokenSims {
			// Normalize constituent values exactly like a cube layer
			// stores them.
			vals[k] = simcube.Clamp(tm.SimProfile(ctx, t1[i], t2[j]))
		}
		return fold(vals)
	}
	if nm.strategy.Dir == combine.Both && nm.strategy.Sel == (combine.Selection{MaxN: 1}) {
		return combine.MutualBestSimilarity(nm.strategy.Comb, len(t1), len(t2), cell)
	}
	m := simcube.NewMatrix(a.Tokens, b.Tokens)
	for i := range t1 {
		for j := range t2 {
			m.Set(i, j, cell(i, j))
		}
	}
	res := combine.Select(m, nm.strategy.Dir, nm.strategy.Sel)
	return combine.CombinedSimilarity(nm.strategy.Comb, len(t1), len(t2), res)
}
