package match

import (
	"slices"
	"strings"

	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
)

// NameMatcher is the hybrid Name matcher (paper Section 4.2): it
// considers only element names but combines several simple name
// matchers. Names are pre-processed by tokenization (POShipTo → {PO,
// Ship, To}) and abbreviation/acronym expansion (PO → {Purchase,
// Order}); the simple matchers are applied to the token sets and the
// token similarities combined into a name similarity using the
// three-step combination scheme.
//
// In NamePath mode the matcher operates on hierarchical names: the
// concatenation of all element names on the path, providing additional
// tokens and distinguishing different contexts of a shared element.
//
// Execution is two-phase: Match first analyzes every distinct name
// into a strutil.NameProfile (tokenization, expansion, gram
// extraction, Soundex — O(m+n) preparation instead of O(m·n)), then
// fills the matrix pairwise from the profiles, row-parallel up to the
// context's worker bound.
type NameMatcher struct {
	matcherName string
	tokenSims   []*Simple
	strategy    combine.Strategy
	longName    bool
	gramNs      []int
	cache       pairCache
	profiles    profileCache
}

// NewName returns the Name matcher with its Table 4 defaults:
// constituent matchers {Trigram, Synonym} combined with
// (Max, Both+Max1, Average).
func NewName() *NameMatcher {
	return newNameMatcher("Name", defaultTokenStrategy(), []*Simple{Trigram(), Synonym()}, false)
}

// NewNamePath returns the NamePath matcher: Name applied to the long
// name built by concatenating all names of the elements in a path.
func NewNamePath() *NameMatcher {
	return newNameMatcher("NamePath", defaultTokenStrategy(), []*Simple{Trigram(), Synonym()}, true)
}

// NewCustomName builds a Name-style matcher from explicit constituent
// matchers and a combination strategy; it backs the paper's claim that
// hybrid matchers "can be configured easily by combining existing
// matchers using the provided combination strategies".
func NewCustomName(name string, strategy combine.Strategy, tokenSims ...*Simple) *NameMatcher {
	return newNameMatcher(name, strategy, tokenSims, false)
}

func newNameMatcher(name string, strategy combine.Strategy, tokenSims []*Simple, longName bool) *NameMatcher {
	nm := &NameMatcher{
		matcherName: name,
		tokenSims:   tokenSims,
		strategy:    strategy,
		longName:    longName,
	}
	for _, tm := range tokenSims {
		if n := tm.GramN(); n > 0 && !slices.Contains(nm.gramNs, n) {
			nm.gramNs = append(nm.gramNs, n)
		}
	}
	return nm
}

func defaultTokenStrategy() combine.Strategy {
	return combine.Strategy{
		Agg:  combine.AggSpec{Kind: combine.Max},
		Dir:  combine.Both,
		Sel:  combine.Selection{MaxN: 1},
		Comb: combine.CombAverage,
	}
}

// Name implements Matcher.
func (nm *NameMatcher) Name() string { return nm.matcherName }

// SetCombSim switches the strategy for computing the combined token-set
// similarity (step 3) between Average and Dice; the evaluation compares
// both (paper Section 7.2). Cached name similarities are dropped.
func (nm *NameMatcher) SetCombSim(c combine.CombSim) {
	nm.strategy.Comb = c
	nm.cache.reset()
}

// pathName derives the name the matcher compares for one path.
func (nm *NameMatcher) pathName(p schema.Path) string {
	if nm.longName {
		// Join with a separator so that tokenization respects the
		// element boundaries of the hierarchical name
		// (PurchaseOrder + shipToStreet must not fuse Order/ship).
		return strings.Join(p.Names(), ".")
	}
	return p.Name()
}

// profile returns the analyzed form of a name, building and caching it
// on first use.
func (nm *NameMatcher) profile(ctx *Context, name string) *strutil.NameProfile {
	if p, ok := nm.profiles.get(name); ok {
		return p
	}
	p := strutil.NewNameProfile(name, ctx.expand, nm.gramNs...)
	nm.profiles.put(name, p)
	return p
}

// Match implements Matcher with the two-phase flow: analyze all names
// up front, then fill the matrix row-parallel from the profiles.
func (nm *NameMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	p1, p2 := s1.Paths(), s2.Paths()
	prof1 := make([]*strutil.NameProfile, len(p1))
	for i, p := range p1 {
		prof1[i] = nm.profile(ctx, nm.pathName(p))
	}
	prof2 := make([]*strutil.NameProfile, len(p2))
	for j, p := range p2 {
		prof2[j] = nm.profile(ctx, nm.pathName(p))
	}
	m := simcube.NewMatrix(Keys(s1), Keys(s2))
	parallelRows(ctx, len(p1), func(i int) {
		for j := range p2 {
			m.Set(i, j, nm.profileSim(ctx, prof1[i], prof2[j]))
		}
	})
	return m
}

// NameSim computes the similarity of two names: tokenize and expand
// both, apply every constituent matcher to the token pair grid
// (yielding a token similarity cube), aggregate (default Max, since
// tokens are typically similar according to only some matchers — e.g.
// Trigram finds no similarity for Ship and Deliver while Synonym
// detects the synonymy), select directional token correspondences
// (Both, Max1) and fold them into a single value (Average).
func (nm *NameMatcher) NameSim(ctx *Context, a, b string) float64 {
	return nm.profileSim(ctx, nm.profile(ctx, a), nm.profile(ctx, b))
}

// profileSim is NameSim over analyzed names, memoized on the name pair.
func (nm *NameMatcher) profileSim(ctx *Context, a, b *strutil.NameProfile) float64 {
	if v, ok := nm.cache.get(a.Name, b.Name); ok {
		return v
	}
	v := nm.tokenSetSim(ctx, a, b)
	nm.cache.put(a.Name, b.Name, v)
	return v
}

// tokenSetSim runs the three combination steps on the token grid of two
// analyzed names. The default sub-strategy (Both, Max1) takes the
// mutual-best fast path, which evaluates the grid without materializing
// a cube, matrix or mapping; other strategies fall back to the generic
// matrix pipeline.
func (nm *NameMatcher) tokenSetSim(ctx *Context, a, b *strutil.NameProfile) float64 {
	t1, t2 := a.Profiles, b.Profiles
	if len(t1) == 0 || len(t2) == 0 {
		return 0
	}
	fold, err := nm.strategy.Agg.Func(len(nm.tokenSims))
	if err != nil {
		// Constituent configuration errors surface as zero similarity;
		// the library constructors never produce such configurations.
		return 0
	}
	vals := make([]float64, len(nm.tokenSims))
	cell := func(i, j int) float64 {
		for k, tm := range nm.tokenSims {
			// Normalize constituent values exactly like a cube layer
			// stores them.
			vals[k] = simcube.Clamp(tm.SimProfile(ctx, t1[i], t2[j]))
		}
		return fold(vals)
	}
	if nm.strategy.Dir == combine.Both && nm.strategy.Sel == (combine.Selection{MaxN: 1}) {
		return combine.MutualBestSimilarity(nm.strategy.Comb, len(t1), len(t2), cell)
	}
	m := simcube.NewMatrix(a.Tokens, b.Tokens)
	for i := range t1 {
		for j := range t2 {
			m.Set(i, j, cell(i, j))
		}
	}
	res := combine.Select(m, nm.strategy.Dir, nm.strategy.Sel)
	return combine.CombinedSimilarity(nm.strategy.Comb, len(t1), len(t2), res)
}
