package match

import (
	"strings"

	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
)

// NameMatcher is the hybrid Name matcher (paper Section 4.2): it
// considers only element names but combines several simple name
// matchers. Names are pre-processed by tokenization (POShipTo → {PO,
// Ship, To}) and abbreviation/acronym expansion (PO → {Purchase,
// Order}); the simple matchers are applied to the token sets and the
// token similarities combined into a name similarity using the
// three-step combination scheme.
//
// In NamePath mode the matcher operates on hierarchical names: the
// concatenation of all element names on the path, providing additional
// tokens and distinguishing different contexts of a shared element.
type NameMatcher struct {
	matcherName string
	tokenSims   []*Simple
	strategy    combine.Strategy
	longName    bool
	cache       pairCache
}

// NewName returns the Name matcher with its Table 4 defaults:
// constituent matchers {Trigram, Synonym} combined with
// (Max, Both+Max1, Average).
func NewName() *NameMatcher {
	return &NameMatcher{
		matcherName: "Name",
		tokenSims:   []*Simple{Trigram(), Synonym()},
		strategy:    defaultTokenStrategy(),
	}
}

// NewNamePath returns the NamePath matcher: Name applied to the long
// name built by concatenating all names of the elements in a path.
func NewNamePath() *NameMatcher {
	nm := NewName()
	nm.matcherName = "NamePath"
	nm.longName = true
	return nm
}

// NewCustomName builds a Name-style matcher from explicit constituent
// matchers and a combination strategy; it backs the paper's claim that
// hybrid matchers "can be configured easily by combining existing
// matchers using the provided combination strategies".
func NewCustomName(name string, strategy combine.Strategy, tokenSims ...*Simple) *NameMatcher {
	return &NameMatcher{matcherName: name, tokenSims: tokenSims, strategy: strategy}
}

func defaultTokenStrategy() combine.Strategy {
	return combine.Strategy{
		Agg:  combine.AggSpec{Kind: combine.Max},
		Dir:  combine.Both,
		Sel:  combine.Selection{MaxN: 1},
		Comb: combine.CombAverage,
	}
}

// Name implements Matcher.
func (nm *NameMatcher) Name() string { return nm.matcherName }

// SetCombSim switches the strategy for computing the combined token-set
// similarity (step 3) between Average and Dice; the evaluation compares
// both (paper Section 7.2). The name cache is dropped.
func (nm *NameMatcher) SetCombSim(c combine.CombSim) {
	nm.strategy.Comb = c
	nm.cache = pairCache{}
}

// Match implements Matcher.
func (nm *NameMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	return matchPaths(s1, s2, func(p1, p2 schema.Path) float64 {
		if nm.longName {
			// Join with a separator so that tokenization respects the
			// element boundaries of the hierarchical name
			// (PurchaseOrder + shipToStreet must not fuse Order/ship).
			return nm.NameSim(ctx, strings.Join(p1.Names(), "."), strings.Join(p2.Names(), "."))
		}
		return nm.NameSim(ctx, p1.Name(), p2.Name())
	})
}

// NameSim computes the similarity of two names: tokenize and expand
// both, apply every constituent matcher to the token pair grid
// (yielding a token similarity cube), aggregate (default Max, since
// tokens are typically similar according to only some matchers — e.g.
// Trigram finds no similarity for Ship and Deliver while Synonym
// detects the synonymy), select directional token correspondences
// (Both, Max1) and fold them into a single value (Average).
func (nm *NameMatcher) NameSim(ctx *Context, a, b string) float64 {
	if v, ok := nm.cache.get(a, b); ok {
		return v
	}
	t1 := strutil.TokenSet(a, ctx.expand)
	t2 := strutil.TokenSet(b, ctx.expand)
	v := nm.tokenSetSim(ctx, t1, t2)
	nm.cache.put(a, b, v)
	return v
}

func (nm *NameMatcher) tokenSetSim(ctx *Context, t1, t2 []string) float64 {
	if len(t1) == 0 || len(t2) == 0 {
		return 0
	}
	cube := simcube.NewCube(t1, t2)
	for _, tm := range nm.tokenSims {
		layer := cube.NewLayer(tm.Name())
		for i, x := range t1 {
			for j, y := range t2 {
				layer.Set(i, j, tm.Sim(ctx, x, y))
			}
		}
	}
	matrix, err := nm.strategy.Agg.Apply(cube)
	if err != nil {
		// Constituent configuration errors surface as zero similarity;
		// the library constructors never produce such configurations.
		return 0
	}
	res := combine.Select(matrix, nm.strategy.Dir, nm.strategy.Sel)
	return combine.CombinedSimilarity(nm.strategy.Comb, len(t1), len(t2), res)
}
