package match

import (
	"testing"

	"repro/internal/combine"
	"repro/internal/simcube"
	"repro/internal/strutil"
	"repro/internal/workload"
)

// matricesIdentical compares two matrices for bit-identical contents.
func matricesIdentical(t *testing.T, name string, a, b *simcube.Matrix) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.Get(i, j) != b.Get(i, j) {
				t.Fatalf("%s: cell (%d,%d) = %v sequential, %v parallel",
					name, i, j, a.Get(i, j), b.Get(i, j))
			}
		}
	}
}

// TestRowParallelFillIdentical is the golden guarantee of the parallel
// engine: every matcher produces a bit-identical matrix whether its
// rows are filled by one worker or many.
func TestRowParallelFillIdentical(t *testing.T) {
	task := workload.Tasks()[0]
	builders := map[string]func() Matcher{
		"Name":     func() Matcher { return NewName() },
		"NamePath": func() Matcher { return NewNamePath() },
		"TypeName": func() Matcher { return NewTypeName() },
		"Children": func() Matcher { return NewChildren() },
		"Leaves":   func() Matcher { return NewLeaves() },
		"Affix":    func() Matcher { return Affix() },
		"Trigram":  func() Matcher { return Trigram() },
		"DataType": func() Matcher { return DataTypeMatcher{} },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			seqCtx := NewContext().WithWorkers(1)
			parCtx := NewContext().WithWorkers(4)
			// Fresh matcher instances per run: caches must not leak
			// values across the compared executions.
			seq := build().Match(seqCtx, task.S1, task.S2)
			par := build().Match(parCtx, task.S1, task.S2)
			matricesIdentical(t, name, seq, par)
		})
	}
}

// TestParallelRowsCoversAllRows checks the work distribution primitive:
// every row index is visited exactly once for any worker count.
func TestParallelRowsCoversAllRows(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		done := make(chan struct{})
		go func() {
			defer close(done)
			parallelRows(&Context{Workers: workers}, n, func(i int) { counts[i]++ })
		}()
		<-done
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: row %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestTokenSetSimFastPathMatchesGenericPipeline verifies the
// mutual-best fast path against the original cube→aggregate→select→
// combine pipeline, computed explicitly from the public combine API.
func TestTokenSetSimFastPathMatchesGenericPipeline(t *testing.T) {
	ctx := NewContext()
	nm := NewName()
	names := []string{
		"PurchaseOrder", "POShipTo", "shipToStreet", "Order", "Cust",
		"CustomerName", "deliverTo", "Address", "Street", "zipCode",
		"unitPrice", "qty", "Contact", "PONo", "", "To",
	}
	strategy := defaultTokenStrategy()
	for _, a := range names {
		for _, b := range names {
			got := nm.NameSim(ctx, a, b)

			// Reference: the pre-optimization pipeline over token sets.
			t1 := strutil.TokenSet(a, ctx.expand)
			t2 := strutil.TokenSet(b, ctx.expand)
			var want float64
			if len(t1) > 0 && len(t2) > 0 {
				cube := simcube.NewCube(t1, t2)
				for _, tm := range []*Simple{Trigram(), Synonym()} {
					layer := cube.NewLayer(tm.Name())
					for i, x := range t1 {
						for j, y := range t2 {
							layer.Set(i, j, tm.Sim(ctx, x, y))
						}
					}
				}
				matrix, err := strategy.Agg.Apply(cube)
				if err != nil {
					t.Fatal(err)
				}
				res := combine.Select(matrix, strategy.Dir, strategy.Sel)
				want = combine.CombinedSimilarity(strategy.Comb, len(t1), len(t2), res)
			}
			if got != want {
				t.Errorf("NameSim(%q, %q) = %v, generic pipeline %v", a, b, got, want)
			}
		}
	}
}

// TestMutualBestSimilarityMatchesSelect cross-checks the combine fast
// path against Select+CombinedSimilarity on a grid with ties, zeros and
// asymmetric bests.
func TestMutualBestSimilarityMatchesSelect(t *testing.T) {
	rows := []string{"r0", "r1", "r2", "r3"}
	cols := []string{"c0", "c1", "c2"}
	grid := [][]float64{
		{0.9, 0.9, 0}, // tie: lowest index wins
		{0.2, 0.8, 0.8},
		{0, 0, 0}, // no candidates
		{0.2, 0.1, 0.7},
	}
	m := simcube.NewMatrix(rows, cols)
	for i := range grid {
		for j := range grid[i] {
			m.Set(i, j, grid[i][j])
		}
	}
	for _, comb := range []combine.CombSim{combine.CombAverage, combine.CombDice} {
		res := combine.Select(m, combine.Both, combine.Selection{MaxN: 1})
		want := combine.CombinedSimilarity(comb, len(rows), len(cols), res)
		got := combine.MutualBestSimilarity(comb, len(rows), len(cols), func(i, j int) float64 {
			return grid[i][j]
		})
		if got != want {
			t.Errorf("%v: MutualBestSimilarity = %v, Select pipeline = %v", comb, got, want)
		}
	}
}
