package match

import (
	"sync"

	"repro/internal/analysis"
	"repro/internal/combine"
	"repro/internal/schema"
)

// DefaultColumnCacheIncoming is the default bound on the number of
// distinct incoming-schema indexes a ColumnCache retains columns for.
const DefaultColumnCacheIncoming = 8

// maxPersistentColumnBytes bounds one incoming entry's column
// storage: when the candidate name population churns without end
// (stored schemas replaced at request rate), the entry flushes and
// rebuilds instead of growing one column per name ever seen. The
// bound is in bytes — a wide incoming schema holds proportionally
// fewer columns — so eight retained entries cost at most ~64 MiB.
// persistentColumnLimit converts it to a column-count limit for one
// incoming index, keeping at least a useful floor for very wide
// schemas (a stable store's distinct-name count stays far below any
// of this, so it never flushes).
const maxPersistentColumnBytes = 8 << 20

func persistentColumnLimit(idx *analysis.SchemaIndex) int {
	width := max(len(idx.Names), len(idx.LongNames), 1)
	return max(maxPersistentColumnBytes/(8*width), 64)
}

// ColumnCache is the engine-scoped form of BatchCache: one column
// cache per incoming-schema index, persistent across MatchAll batches
// and repeated single Matches on the same engine. A cached column —
// the similarity of one candidate name against every distinct
// incoming name — is a pure function of (matcher configuration,
// incoming index, candidate name, auxiliary sources); the incoming
// index freezes the incoming names and the sources' versions, so
// keying per index makes reuse across batches exactly as sound as the
// per-batch cache's reuse across pairs. Repeated matching against a
// stable store therefore stops re-scoring distinct-name columns per
// batch: the second MatchIncoming with the same (retained) incoming
// schema finds every column warm.
//
// Lifecycle: entries self-invalidate — an entry whose index no longer
// describes its schema (structural edit + Invalidate) or whose sources
// were mutated (dictionary/taxonomy/type-table version bump) is
// dropped on the next access. Invalidate drops entries eagerly (the
// engine forwards its own Invalidate calls, which the server's
// PUT/DELETE handlers in turn drive), at most limit incoming indexes
// are retained (least recently used first out), and each entry's
// column storage is byte-capped (maxPersistentColumnBytes, epoch
// flush) so endless candidate-name churn cannot grow an entry without
// bound. Safe for concurrent use.
type ColumnCache struct {
	mu      sync.Mutex
	limit   int
	seq     int64
	entries map[*analysis.SchemaIndex]*colEntry
	// stats is shared by every BatchCache this cache hands out, so
	// hits/misses aggregate across incoming indexes. Entry drops (stale
	// prune, LRU eviction, Invalidate) count as flushes alongside the
	// per-entry epoch flushes.
	stats colCacheCounters
}

// ColumnCacheStats is a point-in-time snapshot of the persistent
// column cache's cumulative traffic and current occupancy.
type ColumnCacheStats struct {
	// Hits counts columns served from cache across all retained
	// incoming indexes.
	Hits uint64
	// Misses counts columns computed (first use or after a flush).
	Misses uint64
	// Flushes counts column-discarding events: per-entry epoch flushes,
	// stale-index prunes, LRU evictions, and Invalidate drops.
	Flushes uint64
	// Entries is the number of incoming indexes currently holding
	// columns (as Len).
	Entries int
}

// Stats returns the cache's cumulative counters and current occupancy.
func (cc *ColumnCache) Stats() ColumnCacheStats {
	cc.mu.Lock()
	n := len(cc.entries)
	cc.mu.Unlock()
	return ColumnCacheStats{
		Hits:    cc.stats.hits.Load(),
		Misses:  cc.stats.misses.Load(),
		Flushes: cc.stats.flushes.Load(),
		Entries: n,
	}
}

type colEntry struct {
	bc      *BatchCache
	lastUse int64
}

// NewColumnCache returns an empty engine-scoped column cache retaining
// columns for at most limit distinct incoming indexes (<= 0 selects
// DefaultColumnCacheIncoming).
func NewColumnCache(limit int) *ColumnCache {
	if limit <= 0 {
		limit = DefaultColumnCacheIncoming
	}
	return &ColumnCache{limit: limit, entries: make(map[*analysis.SchemaIndex]*colEntry)}
}

// ForIncoming returns the column cache bound to one incoming index,
// creating it on first use. Stale entries (index no longer valid for
// its schema and sources) are pruned on every call, and the least
// recently used entries are evicted beyond the cache's limit.
func (cc *ColumnCache) ForIncoming(idx *analysis.SchemaIndex) *BatchCache {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for k := range cc.entries {
		if !k.Valid(k.Schema, k.Src) {
			delete(cc.entries, k)
			cc.stats.flush()
		}
	}
	e := cc.entries[idx]
	if e == nil {
		e = &colEntry{bc: &BatchCache{
			cols:  make(map[batchKey][]float64),
			limit: persistentColumnLimit(idx),
			stats: &cc.stats,
		}}
		cc.entries[idx] = e
		for len(cc.entries) > cc.limit {
			var victim *analysis.SchemaIndex
			var victimUse int64
			for k, v := range cc.entries {
				if k == idx {
					continue
				}
				if victim == nil || v.lastUse < victimUse {
					victim, victimUse = k, v.lastUse
				}
			}
			if victim == nil {
				break
			}
			delete(cc.entries, victim)
			cc.stats.flush()
		}
	}
	cc.seq++
	e.lastUse = cc.seq
	return e.bc
}

// ColumnArtifact is one persistable cached column: the similarity of
// one candidate name against every distinct incoming name, scored by
// a configuration-identified (library-built) matcher. OwnerKey and
// Comb reconstruct the matcher's cache identity in a new process —
// instance-owned columns have no cross-process identity and are never
// exported.
type ColumnArtifact struct {
	// OwnerKey is the library matcher's shared builder key.
	OwnerKey string
	// Comb is the matcher's set-combination knob, part of its identity.
	Comb combine.CombSim
	// Set discriminates the incoming row set the column spans.
	Set int8
	// Name is the candidate-side name the column scores.
	Name string
	// Col holds one similarity per incoming distinct name (Set order).
	Col []float64
}

// Export snapshots the persistable columns cached for one incoming
// index: those owned by configuration-identified matchers, whose
// identity survives a process restart. Returns nil when the index
// holds no cached columns.
func (cc *ColumnCache) Export(idx *analysis.SchemaIndex) []ColumnArtifact {
	cc.mu.Lock()
	e := cc.entries[idx]
	cc.mu.Unlock()
	if e == nil {
		return nil
	}
	e.bc.mu.RLock()
	defer e.bc.mu.RUnlock()
	out := make([]ColumnArtifact, 0, len(e.bc.cols))
	for k, col := range e.bc.cols {
		so, ok := k.owner.(sharedOwner)
		if !ok {
			continue
		}
		out = append(out, ColumnArtifact{
			OwnerKey: so.key, Comb: so.comb, Set: k.set, Name: k.name, Col: col,
		})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Seed installs previously exported columns for one incoming index —
// the warm-restart path. The caller vouches that the artifacts were
// exported for an identical index against sources with equal content;
// existing columns are never overwritten, and the entry's byte bound
// applies.
func (cc *ColumnCache) Seed(idx *analysis.SchemaIndex, arts []ColumnArtifact) {
	if idx == nil || len(arts) == 0 {
		return
	}
	bc := cc.ForIncoming(idx)
	bc.mu.Lock()
	defer bc.mu.Unlock()
	for _, a := range arts {
		if len(a.Col) == 0 {
			continue
		}
		if bc.limit > 0 && len(bc.cols) >= bc.limit {
			break
		}
		key := batchKey{owner: sharedOwner{key: a.OwnerKey, comb: a.Comb}, set: a.Set, name: a.Name}
		if _, ok := bc.cols[key]; !ok {
			bc.cols[key] = a.Col
		}
	}
}

// Invalidate drops every entry whose incoming schema is s (all entries
// when s is nil). The engine forwards its Invalidate here so columns
// scored against a schema's old structure never survive the schema.
func (cc *ColumnCache) Invalidate(s *schema.Schema) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if s == nil {
		for range cc.entries {
			cc.stats.flush()
		}
		clear(cc.entries)
		return
	}
	for k := range cc.entries {
		if k.Schema == s {
			delete(cc.entries, k)
			cc.stats.flush()
		}
	}
}

// Len returns the number of incoming indexes currently holding cached
// columns.
func (cc *ColumnCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries)
}
