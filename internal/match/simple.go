package match

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
)

// StringSim computes a similarity in [0,1] between two strings given a
// matcher context. It is the primitive shared by the simple matchers:
// applied to element names at the element level, and to name tokens
// inside the hybrid Name matcher.
type StringSim func(ctx *Context, a, b string) float64

// ProfileSim computes a similarity in [0,1] between two precomputed
// token profiles. It is the analyze-then-compare form of StringSim:
// the per-token preparation (normalization, gram extraction, Soundex)
// happens once per token instead of once per pair.
type ProfileSim func(ctx *Context, a, b *strutil.TokenProfile) float64

// Simple is a simple matcher (paper Section 4.1): it assesses element
// similarity from a single criterion — here, applying a string
// similarity to the terminal element names of two paths.
type Simple struct {
	name string
	sim  StringSim
	// psim, when set, is the profile-based equivalent of sim; gramN is
	// the n-gram width it consumes (0 when none).
	psim  ProfileSim
	gramN int
}

// NewSimple wraps a string similarity as a matcher.
func NewSimple(name string, sim StringSim) *Simple {
	return &Simple{name: name, sim: sim}
}

// Name implements Matcher.
func (s *Simple) Name() string { return s.name }

// Match implements Matcher: the similarity of two elements is the
// string similarity of their names.
func (s *Simple) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	return matchPaths(ctx, s1, s2, func(p1, p2 schema.Path) float64 {
		return s.sim(ctx, p1.Name(), p2.Name())
	})
}

// Sim exposes the underlying string similarity for use on name tokens.
func (s *Simple) Sim(ctx *Context, a, b string) float64 { return s.sim(ctx, a, b) }

// SimProfile computes the similarity from precomputed profiles when the
// matcher supports it, falling back to the string similarity on the
// profiles' tokens.
func (s *Simple) SimProfile(ctx *Context, a, b *strutil.TokenProfile) float64 {
	if s.psim != nil {
		return s.psim(ctx, a, b)
	}
	return s.sim(ctx, a.Token, b.Token)
}

// GramN returns the n-gram width the matcher consumes from profiles
// (0 for non-gram matchers); NameProfile builders precompute exactly
// these widths.
func (s *Simple) GramN() int { return s.gramN }

// Affix returns the Affix matcher: common prefixes and suffixes of the
// name strings.
func Affix() *Simple {
	s := NewSimple("Affix", func(_ *Context, a, b string) float64 {
		return strutil.AffixSim(a, b)
	})
	s.psim = func(_ *Context, a, b *strutil.TokenProfile) float64 {
		return strutil.AffixSimProfile(a, b)
	}
	return s
}

// NGram returns an n-gram matcher: names compared by their sets of
// n-character sequences. NGram(2) is Digram, NGram(3) is Trigram.
func NGram(n int) *Simple {
	name := fmt.Sprintf("%d-gram", n)
	switch n {
	case 2:
		name = "Digram"
	case 3:
		name = "Trigram"
	}
	s := NewSimple(name, func(_ *Context, a, b string) float64 {
		return strutil.NGramSim(a, b, n)
	})
	s.psim = func(_ *Context, a, b *strutil.TokenProfile) float64 {
		return strutil.NGramSimProfile(a, b, n)
	}
	s.gramN = n
	return s
}

// Trigram returns the 3-gram matcher, the default string matcher inside
// the hybrid Name matcher.
func Trigram() *Simple { return NGram(3) }

// EditDistance returns the Levenshtein-based matcher.
func EditDistance() *Simple {
	s := NewSimple("EditDistance", func(_ *Context, a, b string) float64 {
		return strutil.EditDistanceSim(a, b)
	})
	s.psim = func(_ *Context, a, b *strutil.TokenProfile) float64 {
		return strutil.EditDistanceSimProfile(a, b)
	}
	return s
}

// Soundex returns the phonetic matcher based on soundex codes.
func Soundex() *Simple {
	s := NewSimple("Soundex", func(_ *Context, a, b string) float64 {
		return strutil.SoundexSim(a, b)
	})
	s.psim = func(_ *Context, a, b *strutil.TokenProfile) float64 {
		return strutil.SoundexSimProfile(a, b)
	}
	return s
}

// Synonym returns the semantic matcher: similarity between element
// names from the terminological relationships of the context's
// dictionary, with relationship-specific similarity values (1.0 for
// synonymy, 0.8 for hypernymy). Over index-annotated token profiles
// the lookup intersects precomputed id hit-sets; unannotated profiles
// (or ones annotated against a different dictionary) fall back to the
// dictionary's map walk — the values are identical either way.
func Synonym() *Simple {
	s := NewSimple("Synonym", func(ctx *Context, a, b string) float64 {
		if ctx == nil || ctx.Dict == nil {
			return 0
		}
		return ctx.Dict.Lookup(a, b)
	})
	s.psim = func(ctx *Context, a, b *strutil.TokenProfile) float64 {
		if ctx == nil || ctx.Dict == nil {
			return 0
		}
		if a.DictSrc != any(ctx.Dict) || b.DictSrc != any(ctx.Dict) {
			return ctx.Dict.Lookup(a.Token, b.Token)
		}
		if a.Token == b.Token {
			if a.Token == "" {
				return 0
			}
			return 1
		}
		if a.DictID < 0 || b.DictID < 0 {
			return 0
		}
		return strutil.LookupIDSim(a.DictRel, b.DictID)
	}
	return s
}

// Taxonomy returns the taxonomy matcher, an extension of Synonym in the
// semantic-distance style of Rada et al.: the similarity of two terms
// decays with the length of the is-a path connecting them in the
// context's concept hierarchy. It is primarily useful as an additional
// constituent of the hybrid Name matcher. Like Synonym, it intersects
// precomputed is-a id chains when the profiles carry them and falls
// back to the taxonomy's map walk otherwise.
func Taxonomy() *Simple {
	s := NewSimple("Taxonomy", func(ctx *Context, a, b string) float64 {
		if ctx == nil || ctx.Taxonomy == nil {
			return 0
		}
		return ctx.Taxonomy.Sim(a, b)
	})
	s.psim = func(ctx *Context, a, b *strutil.TokenProfile) float64 {
		if ctx == nil || ctx.Taxonomy == nil {
			return 0
		}
		if a.TaxSrc != any(ctx.Taxonomy) || b.TaxSrc != any(ctx.Taxonomy) {
			return ctx.Taxonomy.Sim(a.Token, b.Token)
		}
		if a.Token == b.Token {
			if a.Token == "" {
				return 0
			}
			return 1
		}
		return dict.ChainSim(ctx.Taxonomy.Decay(), a.TaxChain, b.TaxChain)
	}
	return s
}

// DataTypeMatcher is the DataType matcher: unlike the other simple
// matchers it compares declared data types rather than names. Types are
// mapped to predefined generic types whose degree of compatibility
// comes from the context's compatibility table.
type DataTypeMatcher struct{}

// Name implements Matcher.
func (DataTypeMatcher) Name() string { return "DataType" }

// Match implements Matcher over the terminal nodes' declared types,
// reading the generic type classes precomputed by the schema index.
func (DataTypeMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	tt := ctx.typeTable()
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	m := ctx.newMatrix(x1.Keys, x2.Keys)
	parallelRows(ctx, len(x1.Generic), func(i int) {
		g1 := x1.Generic[i]
		for j, g2 := range x2.Generic {
			m.Set(i, j, tt.CompatGeneric(g1, g2))
		}
	})
	return m
}
