package match

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dict"
	"repro/internal/schema"
)

// colTestSchema builds a tiny distinct schema per name.
func colTestSchema(name string) *schema.Schema {
	s := schema.New(name)
	tbl := schema.NewNode(name + "Tbl")
	for _, c := range []string{"custNo", "city"} {
		leaf := schema.NewNode(c)
		leaf.TypeName = "VARCHAR(10)"
		tbl.AddChild(leaf)
	}
	s.Root.AddChild(tbl)
	return s
}

// TestColumnCacheIdentityAndStaleness: one BatchCache per live
// incoming index; entries whose index went stale (schema mutation +
// Invalidate, or in-place source mutation) are pruned on access.
func TestColumnCacheIdentityAndStaleness(t *testing.T) {
	ctx := NewContext()
	src := ctx.Sources()
	cc := NewColumnCache(0)
	s := colTestSchema("Inc")
	idx := analysis.NewIndex(s, src)

	bc1 := cc.ForIncoming(idx)
	if bc1 == nil || cc.ForIncoming(idx) != bc1 {
		t.Fatal("same index must return the same column cache")
	}
	if cc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cc.Len())
	}

	// Structural edit: the old index goes stale; the entry dies on the
	// next access, the rebuilt index gets a fresh cache.
	s.Root.AddChild(schema.NewNode("extra"))
	s.Invalidate()
	idx2 := analysis.NewIndex(s, src)
	bc2 := cc.ForIncoming(idx2)
	if bc2 == bc1 {
		t.Fatal("stale index must not share columns with its successor")
	}
	if cc.Len() != 1 {
		t.Fatalf("Len after staleness pruning = %d, want 1", cc.Len())
	}

	// In-place dictionary mutation invalidates every entry built
	// against it.
	ctx.Dict.AddSynonym("city", "municipality")
	other := analysis.NewIndex(colTestSchema("Other"), src)
	cc.ForIncoming(other)
	if cc.Len() != 1 {
		t.Fatalf("Len after source mutation = %d, want 1 (stale entry pruned)", cc.Len())
	}
}

// TestColumnCacheInvalidate: eager invalidation by schema (the
// engine's Invalidate hook) and wholesale.
func TestColumnCacheInvalidate(t *testing.T) {
	src := (&Context{Dict: dict.Default()}).Sources()
	cc := NewColumnCache(0)
	s1, s2 := colTestSchema("A"), colTestSchema("B")
	cc.ForIncoming(analysis.NewIndex(s1, src))
	cc.ForIncoming(analysis.NewIndex(s2, src))
	if cc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cc.Len())
	}
	cc.Invalidate(s1)
	if cc.Len() != 1 {
		t.Fatalf("Len after Invalidate(s1) = %d, want 1", cc.Len())
	}
	cc.Invalidate(nil)
	if cc.Len() != 0 {
		t.Fatalf("Len after Invalidate(nil) = %d, want 0", cc.Len())
	}
}

// TestColumnCacheLimit: the LRU bound on distinct incoming indexes.
func TestColumnCacheLimit(t *testing.T) {
	src := (&Context{Dict: dict.Default()}).Sources()
	cc := NewColumnCache(2)
	idxs := make([]*analysis.SchemaIndex, 3)
	for i := range idxs {
		idxs[i] = analysis.NewIndex(colTestSchema(fmt.Sprintf("S%d", i)), src)
	}
	bc0 := cc.ForIncoming(idxs[0])
	cc.ForIncoming(idxs[1])
	cc.ForIncoming(idxs[0]) // touch 0 so 1 is the LRU victim
	cc.ForIncoming(idxs[2])
	if cc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cc.Len())
	}
	if cc.ForIncoming(idxs[0]) != bc0 {
		t.Error("recently used entry must survive the bound")
	}
	if cc.Len() != 2 {
		t.Errorf("Len = %d, want 2", cc.Len())
	}
}

// TestPersistentBatchCacheFlush: a persistent entry's column map
// flushes (and keeps working) instead of growing one column per
// candidate name ever seen.
func TestPersistentBatchCacheFlush(t *testing.T) {
	bc := &BatchCache{cols: make(map[batchKey][]float64), limit: 4}
	col := func(name string) []float64 {
		return bc.column("owner", gridFull, name, 1, func(c []float64) { c[0] = float64(len(name)) })
	}
	for i := 0; i < 10; i++ {
		col(fmt.Sprintf("name-%02d", i))
	}
	if n := len(bc.cols); n > 4 {
		t.Errorf("column map grew to %d entries past the limit of 4", n)
	}
	// Values stay correct across flushes (recomputed, identical).
	if got := col("xyz")[0]; got != 3 {
		t.Errorf("post-flush column = %v, want 3", got)
	}
}

// TestColumnCacheExportSeed: configuration-owned columns survive an
// export/seed cycle (the warm-restart path) and serve as hits in the
// new cache; instance-owned columns are never exported.
func TestColumnCacheExportSeed(t *testing.T) {
	ctx := NewContext()
	src := ctx.Sources()
	idx := analysis.NewIndex(colTestSchema("Inc"), src)

	cc := NewColumnCache(0)
	bc := cc.ForIncoming(idx)
	owner := sharedOwner{key: "name", comb: 0}
	want := []float64{0.25, 0.75}
	bc.column(owner, gridFull, "candA", len(want), func(col []float64) { copy(col, want) })
	bc.column(owner, gridLeaf, "candB", 1, func(col []float64) { col[0] = 0.5 })
	instanceOwned := &struct{ tag string }{"private"}
	bc.column(instanceOwned, gridFull, "candC", 1, func(col []float64) { col[0] = 1 })

	arts := cc.Export(idx)
	if len(arts) != 2 {
		t.Fatalf("exported %d artifacts, want 2 (instance-owned skipped)", len(arts))
	}
	if cc.Export(analysis.NewIndex(colTestSchema("Other"), src)) != nil {
		t.Fatal("exported columns for an index that holds none")
	}

	cc2 := NewColumnCache(0)
	cc2.Seed(idx, arts)
	bc2 := cc2.ForIncoming(idx)
	col := bc2.column(owner, gridFull, "candA", len(want), func([]float64) {
		t.Fatal("seeded column recomputed")
	})
	for i, v := range want {
		if col[i] != v {
			t.Fatalf("seeded col[%d] = %v, want %v", i, col[i], v)
		}
	}
	if st := cc2.Stats(); st.Hits != 1 {
		t.Fatalf("seeded read not a hit: %+v", st)
	}
	// Seeding never overwrites a live column.
	cc2.Seed(idx, []ColumnArtifact{{OwnerKey: "name", Comb: 0, Set: gridFull, Name: "candA", Col: []float64{9, 9}}})
	col = bc2.column(owner, gridFull, "candA", len(want), func([]float64) {
		t.Fatal("seeded column recomputed")
	})
	if col[0] != want[0] {
		t.Fatal("Seed overwrote an existing column")
	}
}
