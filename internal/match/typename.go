package match

import (
	"repro/internal/analysis"
	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
)

// TypeNameMatcher is the hybrid TypeName matcher (paper Section 4.2):
// it matches elements on a combination of their name and data type
// similarity. Following Table 4 it combines the DataType and Name
// matchers with the Weighted aggregation strategy using default weights
// 0.3 (data type) and 0.7 (name); steps 2 and 3 of the combination
// scheme are not needed because a single similarity per element pair
// results directly.
//
// The weight split permits matching attributes with similar names but
// different data types, while among several candidates with about the
// same name similarity those with higher data type compatibility are
// preferred.
type TypeNameMatcher struct {
	name       *NameMatcher
	typeWeight float64
	nameWeight float64
}

// NewTypeName returns the TypeName matcher with Table 4 defaults.
func NewTypeName() *TypeNameMatcher {
	return &TypeNameMatcher{name: NewName(), typeWeight: 0.3, nameWeight: 0.7}
}

// NewWeightedTypeName returns a TypeName matcher with explicit weights
// (normalized at use); used by the ablation benchmarks.
func NewWeightedTypeName(typeWeight, nameWeight float64) *TypeNameMatcher {
	return &TypeNameMatcher{name: NewName(), typeWeight: typeWeight, nameWeight: nameWeight}
}

// Name implements Matcher.
func (tn *TypeNameMatcher) Name() string { return "TypeName" }

// SetCombSim forwards the combined-similarity strategy to the embedded
// Name matcher (TypeName itself has no step 3).
func (tn *TypeNameMatcher) SetCombSim(c combine.CombSim) { tn.name.SetCombSim(c) }

// Match implements Matcher: one distinct-name similarity grid from the
// schemas' shared indexes plus the precomputed generic type classes,
// folded per element pair with the Table 4 weights. The arithmetic per
// cell is identical to PairSim, so the matrix is bit-identical to a
// per-pair evaluation.
func (tn *TypeNameMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	m := ctx.newMatrix(x1.Keys, x2.Keys)
	total := tn.typeWeight + tn.nameWeight
	if total == 0 {
		return m
	}
	d1, id1 := tn.name.profiles(ctx, x1)
	d2, id2 := tn.name.profiles(ctx, x2)
	n2 := len(d2)
	grid := ctx.acquireGrid(len(d1) * n2)
	defer ctx.releaseGrid(grid)
	tn.name.scoreGrid(ctx, gridFull, d1, d2, grid)
	tt := ctx.typeTable()
	parallelRows(ctx, len(id1), func(i int) {
		g1 := x1.Generic[i]
		row := grid[id1[i]*n2:]
		for j := range id2 {
			typeSim := tt.CompatGeneric(g1, x2.Generic[j])
			nameSim := row[id2[j]]
			m.Set(i, j, (tn.typeWeight*typeSim+tn.nameWeight*nameSim)/total)
		}
	})
	return m
}

// leafGrid computes the dense leaf×leaf similarity grid the
// structural matchers fold over: only leaf paths are scored, over the
// distinct names actually occurring at leaves — the inner-element
// portion of the matrix is never needed there. Cells are clamped
// exactly like matrix storage, so the grid is bit-identical to the
// leaf cells of Match's full matrix. The returned grid is acquired
// from the context's arena; the caller releases it after folding.
func (tn *TypeNameMatcher) leafGrid(ctx *Context, x1, x2 *analysis.SchemaIndex) []float64 {
	nl2 := len(x2.Leaves)
	out := ctx.acquireGrid(len(x1.Leaves) * nl2)
	total := tn.typeWeight + tn.nameWeight
	if total == 0 {
		return out
	}
	d1, id1 := tn.name.profiles(ctx, x1)
	d2, id2 := tn.name.profiles(ctx, x2)
	sub1, loc1 := subsetProfiles(d1, id1, x1.Leaves)
	sub2, loc2 := subsetProfiles(d2, id2, x2.Leaves)
	m2 := len(sub2)
	grid := ctx.acquireGrid(len(sub1) * m2)
	defer ctx.releaseGrid(grid)
	tn.name.scoreGrid(ctx, gridLeaf, sub1, sub2, grid)
	tt := ctx.typeTable()
	parallelRows(ctx, len(x1.Leaves), func(a int) {
		g1 := x1.Generic[x1.Leaves[a]]
		row := grid[loc1[a]*m2:]
		orow := out[a*nl2:]
		for b, j := range x2.Leaves {
			typeSim := tt.CompatGeneric(g1, x2.Generic[j])
			nameSim := row[loc2[b]]
			orow[b] = simcube.Clamp((tn.typeWeight*typeSim + tn.nameWeight*nameSim) / total)
		}
	})
	return out
}

// subsetProfiles projects per-path distinct-name ids onto a path
// subset: the distinct profiles occurring there plus, per subset
// position, its local profile id.
func subsetProfiles(dist []*strutil.NameProfile, id []int, paths []int) (sub []*strutil.NameProfile, loc []int) {
	local := make([]int, len(dist))
	for i := range local {
		local[i] = -1
	}
	loc = make([]int, len(paths))
	for k, p := range paths {
		g := id[p]
		if local[g] < 0 {
			local[g] = len(sub)
			sub = append(sub, dist[g])
		}
		loc[k] = local[g]
	}
	return sub, loc
}

// PairSim computes the weighted type/name similarity for one element
// pair directly, without consulting a schema index; it remains the
// reference implementation the index-driven Match must agree with.
func (tn *TypeNameMatcher) PairSim(ctx *Context, p1, p2 schema.Path) float64 {
	total := tn.typeWeight + tn.nameWeight
	if total == 0 {
		return 0
	}
	typeSim := ctx.typeTable().Compat(p1.Leaf().TypeName, p2.Leaf().TypeName)
	nameSim := tn.name.NameSim(ctx, p1.Name(), p2.Name())
	return (tn.typeWeight*typeSim + tn.nameWeight*nameSim) / total
}
