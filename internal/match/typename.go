package match

import (
	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// TypeNameMatcher is the hybrid TypeName matcher (paper Section 4.2):
// it matches elements on a combination of their name and data type
// similarity. Following Table 4 it combines the DataType and Name
// matchers with the Weighted aggregation strategy using default weights
// 0.3 (data type) and 0.7 (name); steps 2 and 3 of the combination
// scheme are not needed because a single similarity per element pair
// results directly.
//
// The weight split permits matching attributes with similar names but
// different data types, while among several candidates with about the
// same name similarity those with higher data type compatibility are
// preferred.
type TypeNameMatcher struct {
	name       *NameMatcher
	typeWeight float64
	nameWeight float64
}

// NewTypeName returns the TypeName matcher with Table 4 defaults.
func NewTypeName() *TypeNameMatcher {
	return &TypeNameMatcher{name: NewName(), typeWeight: 0.3, nameWeight: 0.7}
}

// NewWeightedTypeName returns a TypeName matcher with explicit weights
// (normalized at use); used by the ablation benchmarks.
func NewWeightedTypeName(typeWeight, nameWeight float64) *TypeNameMatcher {
	return &TypeNameMatcher{name: NewName(), typeWeight: typeWeight, nameWeight: nameWeight}
}

// Name implements Matcher.
func (tn *TypeNameMatcher) Name() string { return "TypeName" }

// SetCombSim forwards the combined-similarity strategy to the embedded
// Name matcher (TypeName itself has no step 3).
func (tn *TypeNameMatcher) SetCombSim(c combine.CombSim) { tn.name.SetCombSim(c) }

// Match implements Matcher.
func (tn *TypeNameMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	return matchPaths(ctx, s1, s2, func(p1, p2 schema.Path) float64 {
		return tn.PairSim(ctx, p1, p2)
	})
}

// PairSim computes the weighted type/name similarity for one element
// pair; exposed for use as the leaf matcher of Children and Leaves.
func (tn *TypeNameMatcher) PairSim(ctx *Context, p1, p2 schema.Path) float64 {
	total := tn.typeWeight + tn.nameWeight
	if total == 0 {
		return 0
	}
	typeSim := ctx.typeTable().Compat(p1.Leaf().TypeName, p2.Leaf().TypeName)
	nameSim := tn.name.NameSim(ctx, p1.Name(), p2.Name())
	return (tn.typeWeight*typeSim + tn.nameWeight*nameSim) / total
}
