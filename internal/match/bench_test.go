package match

import (
	"testing"

	"repro/internal/workload"
)

// The workload's largest task (4<->5) exercises matcher cost at the
// paper's upper problem size.

func BenchmarkNameMatcher(b *testing.B) {
	t := workload.Tasks()[9]
	ctx := NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewName().Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkNameMatcherCached(b *testing.B) {
	t := workload.Tasks()[9]
	ctx := NewContext()
	nm := NewName()
	_ = nm.Match(ctx, t.S1, t.S2) // warm the name-pair cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nm.Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkNamePathMatcher(b *testing.B) {
	t := workload.Tasks()[9]
	ctx := NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewNamePath().Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkTypeNameMatcher(b *testing.B) {
	t := workload.Tasks()[9]
	ctx := NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewTypeName().Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkChildrenMatcher(b *testing.B) {
	t := workload.Tasks()[9]
	ctx := NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewChildren().Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkLeavesMatcher(b *testing.B) {
	t := workload.Tasks()[9]
	ctx := NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewLeaves().Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkSimpleMatchers(b *testing.B) {
	t := workload.Tasks()[0]
	ctx := NewContext()
	for _, m := range []Matcher{Affix(), Trigram(), EditDistance(), Soundex(), Synonym(), DataTypeMatcher{}} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.Match(ctx, t.S1, t.S2)
			}
		})
	}
}
