// Package match implements COMA's extensible matcher library
// (Do & Rahm, VLDB 2002, Section 4, Table 3): the simple matchers
// Affix, n-gram, EditDistance, Soundex, Synonym, DataType and
// UserFeedback; the hybrid element-level matchers Name and TypeName;
// and the hybrid structural matchers NamePath, Children and Leaves.
//
// Every matcher computes an intermediate match result: a similarity
// value between 0 and 1 for each combination of S1 and S2 schema
// elements, where elements are identified by their paths. Executing k
// matchers yields the k × m × n similarity cube processed by package
// combine.
//
// Matchers do not analyze schemas themselves: the per-schema facts
// they consume (path enumerations, name profiles, dictionary
// hit-sets, type classes) live in an analysis.SchemaIndex obtained
// through Context.Index — built once per schema and shared by every
// matcher, every repeated match on the same schema, and the
// evaluation harness.
//
// The element pairs of a matrix are independent, so matchers fill
// their matrices row-parallel; Context.Workers bounds the per-matcher
// parallelism. All similarity values are pure functions of their
// inputs, so the worker count never changes a result — only how fast
// it arrives.
package match

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// Context carries the auxiliary information sources shared by matcher
// executions: the synonym/abbreviation dictionary, the data type
// compatibility table, and an optional concept taxonomy. A nil field
// disables the respective source.
type Context struct {
	Dict     *dict.Dictionary
	Types    *dict.TypeTable
	Taxonomy *dict.Taxonomy
	// Workers bounds the parallelism of matrix fills inside a single
	// matcher execution. 0 means runtime.NumCPU(); 1 forces a
	// sequential fill. The auxiliary sources must not be mutated while
	// a match runs.
	Workers int
	// Analyzer caches one analysis.SchemaIndex per schema for this
	// context's auxiliary sources; NewContext installs one, so
	// repeated matches through the same context analyze each schema
	// exactly once. A zero-value Context (nil Analyzer) builds a
	// throwaway index per request instead.
	Analyzer *analysis.Analyzer
	// Columns, when set, is the engine-scoped persistent column cache:
	// distinct-name similarity columns survive across batches and
	// repeated single matches whose incoming schema's index is
	// retained by the Analyzer. Nil (the default) keeps column reuse
	// per batch only.
	Columns *ColumnCache
	// idx1, idx2 are the indexes of the current match's two schemas,
	// installed by the engine (WithIndexes) so every matcher of one
	// execution shares them without consulting the analyzer cache.
	idx1, idx2 *analysis.SchemaIndex
	// sem, when set (WithWorkerBudget), is a budget shared by every
	// matcher executing under this context: row-fill helpers take
	// extra workers only while slots remain, so concurrent matchers
	// cannot multiply the bound.
	sem chan struct{}
	// arena, when set (WithArena), recycles the float64 backing
	// storage of the matchers' matrices and similarity grids. The
	// batch scheduler installs one arena per MatchAll call; without
	// one every acquisition is a plain allocation.
	arena *simcube.Arena
	// batch, when set (WithBatchCache), memoizes distinct-name
	// similarity columns across the pairs of one MatchAll batch: the
	// incoming side of every pair is the same schema, so a candidate
	// name seen again (same name in another candidate, or a later
	// batch round) reuses its scored column instead of re-running the
	// token-grid combination.
	batch *BatchCache
	// cancel, when set (WithCancel), is the cancellation source the
	// engine observes cooperatively: row-claim loops of parallel fills
	// and the schedulers' pair-claim loops stop once it is canceled,
	// so a dead request stops burning workers mid-matrix. done caches
	// its Done channel for cheap non-blocking checks on hot paths.
	cancel context.Context
	done   <-chan struct{}
}

// NewContext returns a context with the default dictionary, type
// compatibility table and purchase-order taxonomy used by the paper's
// evaluation and its extensions, plus a fresh per-schema analysis
// cache.
func NewContext() *Context {
	return &Context{
		Dict:     dict.Default(),
		Types:    dict.DefaultTypeTable(),
		Taxonomy: dict.DefaultTaxonomy(),
		Analyzer: analysis.NewAnalyzer(),
	}
}

// WithWorkers returns a shallow copy of the context with the worker
// bound replaced (0 restores the NumCPU default). The analysis cache
// and any installed indexes are shared with the original.
func (c *Context) WithWorkers(n int) *Context {
	out := &Context{}
	if c != nil {
		*out = *c
	}
	out.Workers = n
	return out
}

// WithIndexes returns a shallow copy of the context with the current
// match's two schema indexes installed; Index returns them without
// consulting the analyzer cache. The engine calls this once per match
// operation so all k matchers share the same analyses.
func (c *Context) WithIndexes(i1, i2 *analysis.SchemaIndex) *Context {
	out := &Context{}
	if c != nil {
		*out = *c
	}
	out.idx1, out.idx2 = i1, i2
	return out
}

// WithArena returns a shallow copy of the context whose matrix and
// grid acquisitions draw on the arena. Matchers release their
// intermediate grids back to it at the end of every Match; output
// matrices stay live until their owner (the batch scheduler) releases
// the cube at mapping extraction. A nil arena restores plain
// allocation.
func (c *Context) WithArena(a *simcube.Arena) *Context {
	out := &Context{}
	if c != nil {
		*out = *c
	}
	out.arena = a
	return out
}

// Arena returns the installed recycling arena, nil when allocations
// are unpooled. A nil arena is safe to use directly: simcube's
// acquisition helpers fall back to plain allocation on it.
func (c *Context) Arena() *simcube.Arena {
	if c == nil {
		return nil
	}
	return c.arena
}

// newMatrix acquires a zeroed matrix over the key sets, pooled when
// the context carries an arena. Matchers build their output matrices
// (the cube layers) through this helper so one batch recycles layer
// storage across pairs.
func (c *Context) newMatrix(rowKeys, colKeys []string) *simcube.Matrix {
	return simcube.NewMatrixIn(c.Arena(), rowKeys, colKeys)
}

// acquireGrid returns a zeroed scratch grid of n floats, pooled when
// the context carries an arena; release with releaseGrid once nothing
// reads it anymore.
func (c *Context) acquireGrid(n int) []float64 { return c.Arena().AcquireFloats(n) }

// releaseGrid recycles a grid obtained from acquireGrid.
func (c *Context) releaseGrid(g []float64) { c.Arena().ReleaseFloats(g) }

// BatchCache memoizes scored distinct-name similarity columns across
// the pairs sharing one incoming schema analysis. The column of
// similarities between every incoming distinct name and one candidate
// name is a pure function of (matcher configuration, incoming index,
// candidate name, auxiliary sources) — two candidates (or two batch
// rounds, or two batches over the same retained incoming index)
// sharing a name share the column. Safe for concurrent use; a column
// raced by two pairs is computed twice with identical values and
// stored once.
//
// The cache must not outlive its incoming schema analysis, matcher
// configuration or sources. Two lifetimes satisfy that: the batch
// scheduler creates one per MatchAll call for a transient incoming
// schema and drops it with the batch, and ColumnCache keys one per
// retained incoming index — whose immutability freezes the incoming
// names and source versions — dropping it when the index goes stale.
type BatchCache struct {
	mu   sync.RWMutex
	cols map[batchKey][]float64
	// limit, when positive, flushes the whole column map when it grows
	// past limit entries — the backstop that keeps a persistent
	// (engine-scoped) cache bounded when the candidate name population
	// churns without end (stored schemas replaced at request rate).
	// Per-batch caches are naturally bounded by the batch and carry no
	// limit.
	limit int
	// stats, when non-nil, receives hit/miss/flush counts. Persistent
	// caches share their owning ColumnCache's counters; per-batch caches
	// leave it nil (nil-safe methods) so the transient path pays
	// nothing.
	stats *colCacheCounters
}

// colCacheCounters accumulates column-cache traffic across every
// BatchCache one ColumnCache hands out. Atomic so the column fast path
// stays lock-free.
type colCacheCounters struct {
	hits    atomic.Uint64
	misses  atomic.Uint64
	flushes atomic.Uint64
}

func (c *colCacheCounters) hit() {
	if c != nil {
		c.hits.Add(1)
	}
}

func (c *colCacheCounters) miss() {
	if c != nil {
		c.misses.Add(1)
	}
}

func (c *colCacheCounters) flush() {
	if c != nil {
		c.flushes.Add(1)
	}
}

// batchKey identifies one cached column: the scoring matcher identity
// (a configuration value for library-built matchers, so the identical
// Name matchers embedded in TypeName/Children/Leaves share columns; an
// instance pointer for custom ones), the incoming row set the column
// spans (full distinct names vs. the leaf-occurring subset), and the
// candidate-side name.
type batchKey struct {
	owner any
	set   int8
	name  string
}

// Row-set discriminators for batchKey.set.
const (
	gridFull int8 = iota // columns over all incoming distinct names
	gridLeaf             // columns over the leaf-occurring subset
)

// NewBatchCache returns an empty per-batch column cache.
func NewBatchCache() *BatchCache {
	return &BatchCache{cols: make(map[batchKey][]float64)}
}

// column returns the cached column for key, computing and storing it
// on first use. compute must fill exactly n values; the returned slice
// is shared and must not be modified.
func (bc *BatchCache) column(owner any, set int8, name string, n int, compute func(col []float64)) []float64 {
	key := batchKey{owner: owner, set: set, name: name}
	bc.mu.RLock()
	col := bc.cols[key]
	bc.mu.RUnlock()
	if col != nil {
		bc.stats.hit()
		return col
	}
	// Columns live across pairs, so they come from the garbage
	// collector, never from a per-batch arena. A lost store race still
	// computed the column, so it counts as a miss either way.
	bc.stats.miss()
	col = make([]float64, n)
	compute(col)
	bc.mu.Lock()
	if prev := bc.cols[key]; prev != nil {
		col = prev
	} else {
		if bc.limit > 0 && len(bc.cols) >= bc.limit {
			// Epoch flush: cheaper and simpler than tracking per-column
			// recency, and correct — every column is recomputable.
			clear(bc.cols)
			bc.stats.flush()
		}
		bc.cols[key] = col
	}
	bc.mu.Unlock()
	return col
}

// WithBatchCache returns a shallow copy of the context with a
// per-batch column cache installed (nil uninstalls). The cache is only
// valid while the incoming schema, matcher set and auxiliary sources
// stay fixed — the MatchAll scheduler's contract.
func (c *Context) WithBatchCache(bc *BatchCache) *Context {
	out := &Context{}
	if c != nil {
		*out = *c
	}
	out.batch = bc
	return out
}

// batchCache returns the installed per-batch cache, nil outside a
// batch.
func (c *Context) batchCache() *BatchCache {
	if c == nil {
		return nil
	}
	return c.batch
}

// WithCancel returns a shallow copy of the context that observes the
// given cancellation source: ParallelRows stops claiming rows and the
// batch schedulers stop claiming pairs once ctx is canceled. A nil ctx
// uninstalls cancellation. The Done channel is cached so hot-path
// checks cost one non-blocking channel read.
func (c *Context) WithCancel(ctx context.Context) *Context {
	out := &Context{}
	if c != nil {
		*out = *c
	}
	out.cancel = ctx
	out.done = nil
	if ctx != nil {
		out.done = ctx.Done()
	}
	return out
}

// Cancellation returns the installed cancellation source, nil when the
// context does not observe one.
func (c *Context) Cancellation() context.Context {
	if c == nil {
		return nil
	}
	return c.cancel
}

// Err reports why the context's cancellation source was canceled, nil
// while it is still live (or when none is installed). The check is
// non-blocking and allocation-free, so row loops can afford it per
// claim.
func (c *Context) Err() error {
	if c == nil || c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return context.Cause(c.cancel)
	default:
		return nil
	}
}

// stopped is Err without the cause lookup — the hot-path form.
func (c *Context) stopped() bool {
	if c == nil || c.done == nil {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// BeginAnalysis opens an analyzer batch window (Analyzer.BeginBatch)
// for the duration of one match operation and returns its closer.
// While any window is open, deletions tombstone their schema instead
// of merely dropping it, so an in-flight build publishing after the
// delete cannot resurrect the analysis. A no-op closure is returned
// when the context carries no analyzer.
func (c *Context) BeginAnalysis() func() {
	if c == nil || c.Analyzer == nil {
		return func() {}
	}
	return c.Analyzer.BeginBatch()
}

// Pinned reports whether the schema is pinned in the context's
// analyzer — the engine's marker for stored (long-lived) schemas. It
// is how the batch scheduler distinguishes a retained incoming schema
// (keep its analysis and persist its columns) from a request-scoped
// one (evict at batch end).
func (c *Context) Pinned(s *schema.Schema) bool {
	return c != nil && c.Analyzer != nil && c.Analyzer.Pinned(s)
}

// EvictTransient drops the schema's cached analysis unless it is
// pinned; a no-op without an analyzer. The batch schedulers call it
// for the incoming schema at batch end so served inline schemas do
// not leak one analyzer entry per request.
func (c *Context) EvictTransient(s *schema.Schema) {
	if c != nil && c.Analyzer != nil {
		c.Analyzer.Evict(s)
	}
}

// Sources returns the analysis sources corresponding to the context's
// auxiliary information.
func (c *Context) Sources() analysis.Sources {
	if c == nil {
		return analysis.Sources{}
	}
	return analysis.Sources{Dict: c.Dict, Types: c.Types, Taxonomy: c.Taxonomy}
}

// Index returns the schema's analysis index: one of the installed
// per-match indexes when it fits, else the analyzer cache's entry
// (built on first use), else — on a zero-value context — a throwaway
// index. The result is never nil and always matches the context's
// current sources.
func (c *Context) Index(s *schema.Schema) *analysis.SchemaIndex {
	src := c.Sources()
	if c != nil {
		if c.idx1.Valid(s, src) {
			return c.idx1
		}
		if c.idx2.Valid(s, src) {
			return c.idx2
		}
		if c.Analyzer != nil {
			return c.Analyzer.Index(s, src)
		}
	}
	return analysis.NewIndex(s, src)
}

// WithWorkerBudget returns a copy of the context that enforces its
// worker bound as a total across every matcher executed under it: each
// running matcher occupies one budget slot (AcquireWorker), and
// row-parallel fills claim extra slots opportunistically. Without a
// budget, each matcher parallelizes up to the bound on its own.
func (c *Context) WithWorkerBudget() *Context {
	n := 0
	if c != nil {
		n = c.Workers
	}
	out := c.WithWorkers(n)
	out.sem = make(chan struct{}, out.workers())
	return out
}

// WithBudgetOf returns a copy of the context drawing on the same
// worker budget (and bound) as owner, which must carry one installed
// via WithWorkerBudget. The sharded batch scheduler uses it to run
// per-shard contexts — each with its own analyzer cache — under one
// global budget, so shard count never multiplies the parallelism.
func (c *Context) WithBudgetOf(owner *Context) *Context {
	out := c.WithWorkers(owner.Workers)
	out.sem = owner.sem
	return out
}

// AcquireWorker takes one slot of the shared worker budget, blocking
// until one is free; a no-op without a budget.
func (c *Context) AcquireWorker() {
	if c != nil && c.sem != nil {
		c.sem <- struct{}{}
	}
}

// ReleaseWorker returns a slot taken by AcquireWorker or tryAcquire.
func (c *Context) ReleaseWorker() {
	if c != nil && c.sem != nil {
		<-c.sem
	}
}

// tryAcquire claims a budget slot without blocking; always true when
// no budget is installed.
func (c *Context) tryAcquire() bool {
	if c == nil || c.sem == nil {
		return true
	}
	select {
	case c.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// workers resolves the effective worker count.
func (c *Context) workers() int {
	if c == nil || c.Workers <= 0 {
		return runtime.NumCPU()
	}
	return c.Workers
}

// ResolveWorkers maps a worker knob to its effective count with the
// engine-wide semantics: n <= 0 means runtime.NumCPU(). Exported so
// other layers (the eval harness, commands) resolve the knob exactly
// like Context does.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// expand adapts the context's dictionary to strutil.TokenSet.
func (c *Context) expand(tok string) []string {
	if c == nil || c.Dict == nil {
		return nil
	}
	return c.Dict.Expand(tok)
}

// typeTable returns the context's type table, defaulting when unset.
var fallbackTypes = dict.DefaultTypeTable()

func (c *Context) typeTable() *dict.TypeTable {
	if c == nil || c.Types == nil {
		return fallbackTypes
	}
	return c.Types
}

// Matcher is a match algorithm: it determines a similarity matrix over
// the paths of two schemas. Implementations must be safe for concurrent
// use.
type Matcher interface {
	// Name identifies the matcher in cubes, configs and reports.
	Name() string
	// Match computes the similarity matrix whose rows are s1's paths
	// and whose columns are s2's paths, in Schema.Paths order.
	Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix
}

// Keys returns the matrix keys for a schema: its path strings in
// enumeration order. All matchers and the engine use this ordering.
func Keys(s *schema.Schema) []string {
	paths := s.Paths()
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.String()
	}
	return out
}

// ParallelRows invokes fn for every row in [0, n), distributing rows
// across the calling goroutine plus up to workers-1 extra goroutines
// (fewer when the context's shared worker budget is exhausted). Rows
// are claimed from a shared counter so uneven rows balance out. With
// one worker the loop runs inline. It is the single work-distribution
// primitive of the engine: the matchers, the instance and flooding
// extensions and the eval harness all draw their parallelism from it,
// bounded by the one Workers knob.
//
// When the context observes a cancellation source (WithCancel), each
// worker re-checks it before claiming the next row and stops claiming
// once it fires — a canceled request abandons its matrix within one
// row's worth of work per worker. Rows already claimed still complete,
// so a finished ParallelRows call never leaves a row half-written.
func ParallelRows(ctx *Context, n int, fn func(i int)) {
	extra := ctx.workers() - 1
	if extra > n-1 {
		extra = n - 1
	}
	var next atomic.Int64
	work := func() {
		for {
			if ctx.stopped() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	if extra <= 0 {
		work()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		if !ctx.tryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ctx.ReleaseWorker()
			work()
		}()
	}
	work()
	wg.Wait()
}

// parallelRows is the package-internal spelling of ParallelRows.
func parallelRows(ctx *Context, n int, fn func(i int)) { ParallelRows(ctx, n, fn) }

// matchPaths fills a path × path matrix from a pairwise similarity
// function, row-parallel up to the context's worker bound. sim must be
// a pure function of its inputs (plus read-only context state).
func matchPaths(ctx *Context, s1, s2 *schema.Schema, sim func(p1, p2 schema.Path) float64) *simcube.Matrix {
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	p1, p2 := x1.Paths, x2.Paths
	m := ctx.newMatrix(x1.Keys, x2.Keys)
	parallelRows(ctx, len(p1), func(i int) {
		for j := range p2 {
			m.Set(i, j, sim(p1[i], p2[j]))
		}
	})
	return m
}
