// Package match implements COMA's extensible matcher library
// (Do & Rahm, VLDB 2002, Section 4, Table 3): the simple matchers
// Affix, n-gram, EditDistance, Soundex, Synonym, DataType and
// UserFeedback; the hybrid element-level matchers Name and TypeName;
// and the hybrid structural matchers NamePath, Children and Leaves.
//
// Every matcher computes an intermediate match result: a similarity
// value between 0 and 1 for each combination of S1 and S2 schema
// elements, where elements are identified by their paths. Executing k
// matchers yields the k × m × n similarity cube processed by package
// combine.
//
// The element pairs of a matrix are independent, so matchers fill
// their matrices row-parallel; Context.Workers bounds the per-matcher
// parallelism. All similarity values are pure functions of their
// inputs, so the worker count never changes a result — only how fast
// it arrives.
package match

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
)

// Context carries the auxiliary information sources shared by matcher
// executions: the synonym/abbreviation dictionary, the data type
// compatibility table, and an optional concept taxonomy. A nil field
// disables the respective source.
type Context struct {
	Dict     *dict.Dictionary
	Types    *dict.TypeTable
	Taxonomy *dict.Taxonomy
	// Workers bounds the parallelism of matrix fills inside a single
	// matcher execution. 0 means runtime.NumCPU(); 1 forces a
	// sequential fill. The auxiliary sources must not be mutated while
	// a match runs.
	Workers int
	// sem, when set (WithWorkerBudget), is a budget shared by every
	// matcher executing under this context: row-fill helpers take
	// extra workers only while slots remain, so concurrent matchers
	// cannot multiply the bound.
	sem chan struct{}
}

// NewContext returns a context with the default dictionary, type
// compatibility table and purchase-order taxonomy used by the paper's
// evaluation and its extensions.
func NewContext() *Context {
	return &Context{
		Dict:     dict.Default(),
		Types:    dict.DefaultTypeTable(),
		Taxonomy: dict.DefaultTaxonomy(),
	}
}

// WithWorkers returns a shallow copy of the context with the worker
// bound replaced (0 restores the NumCPU default).
func (c *Context) WithWorkers(n int) *Context {
	out := &Context{}
	if c != nil {
		*out = *c
	}
	out.Workers = n
	return out
}

// WithWorkerBudget returns a copy of the context that enforces its
// worker bound as a total across every matcher executed under it: each
// running matcher occupies one budget slot (AcquireWorker), and
// row-parallel fills claim extra slots opportunistically. Without a
// budget, each matcher parallelizes up to the bound on its own.
func (c *Context) WithWorkerBudget() *Context {
	n := 0
	if c != nil {
		n = c.Workers
	}
	out := c.WithWorkers(n)
	out.sem = make(chan struct{}, out.workers())
	return out
}

// AcquireWorker takes one slot of the shared worker budget, blocking
// until one is free; a no-op without a budget.
func (c *Context) AcquireWorker() {
	if c != nil && c.sem != nil {
		c.sem <- struct{}{}
	}
}

// ReleaseWorker returns a slot taken by AcquireWorker or tryAcquire.
func (c *Context) ReleaseWorker() {
	if c != nil && c.sem != nil {
		<-c.sem
	}
}

// tryAcquire claims a budget slot without blocking; always true when
// no budget is installed.
func (c *Context) tryAcquire() bool {
	if c == nil || c.sem == nil {
		return true
	}
	select {
	case c.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// workers resolves the effective worker count.
func (c *Context) workers() int {
	if c == nil || c.Workers <= 0 {
		return runtime.NumCPU()
	}
	return c.Workers
}

// expand adapts the context's dictionary to strutil.TokenSet.
func (c *Context) expand(tok string) []string {
	if c == nil || c.Dict == nil {
		return nil
	}
	return c.Dict.Expand(tok)
}

// typeTable returns the context's type table, defaulting when unset.
var fallbackTypes = dict.DefaultTypeTable()

func (c *Context) typeTable() *dict.TypeTable {
	if c == nil || c.Types == nil {
		return fallbackTypes
	}
	return c.Types
}

// Matcher is a match algorithm: it determines a similarity matrix over
// the paths of two schemas. Implementations must be safe for concurrent
// use.
type Matcher interface {
	// Name identifies the matcher in cubes, configs and reports.
	Name() string
	// Match computes the similarity matrix whose rows are s1's paths
	// and whose columns are s2's paths, in Schema.Paths order.
	Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix
}

// Keys returns the matrix keys for a schema: its path strings in
// enumeration order. All matchers and the engine use this ordering.
func Keys(s *schema.Schema) []string {
	paths := s.Paths()
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.String()
	}
	return out
}

// parallelRows invokes fn for every row in [0, n), distributing rows
// across the calling goroutine plus up to workers-1 extra goroutines
// (fewer when the context's shared worker budget is exhausted). Rows
// are claimed from a shared counter so uneven rows (cache hits vs.
// misses) balance out. With one worker the loop runs inline.
func parallelRows(ctx *Context, n int, fn func(i int)) {
	extra := ctx.workers() - 1
	if extra > n-1 {
		extra = n - 1
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	if extra <= 0 {
		work()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		if !ctx.tryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ctx.ReleaseWorker()
			work()
		}()
	}
	work()
	wg.Wait()
}

// matchPaths fills a path × path matrix from a pairwise similarity
// function, row-parallel up to the context's worker bound. sim must be
// a pure function of its inputs (plus read-only context state).
func matchPaths(ctx *Context, s1, s2 *schema.Schema, sim func(p1, p2 schema.Path) float64) *simcube.Matrix {
	p1, p2 := s1.Paths(), s2.Paths()
	m := simcube.NewMatrix(Keys(s1), Keys(s2))
	parallelRows(ctx, len(p1), func(i int) {
		for j := range p2 {
			m.Set(i, j, sim(p1[i], p2[j]))
		}
	})
	return m
}

// cacheShards spreads cache entries over independently locked shards so
// row-parallel fills don't serialize on a single mutex. 32 shards keep
// contention negligible for any plausible worker count.
const cacheShards = 32

// fnvPair hashes a string pair (FNV-1a with a separator) to a shard.
func fnvPair(a, b string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint32(a[i])) * 16777619
	}
	h = (h ^ 0xff) * 16777619
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * 16777619
	}
	return h % cacheShards
}

// pairCache memoizes a string-pair similarity. It is sharded and safe
// for concurrent use; the zero value is an empty cache.
type pairCache struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[[2]string]float64
	}
}

func (c *pairCache) get(a, b string) (float64, bool) {
	s := &c.shards[fnvPair(a, b)]
	s.mu.Lock()
	v, ok := s.m[[2]string{a, b}]
	s.mu.Unlock()
	return v, ok
}

func (c *pairCache) put(a, b string, v float64) {
	s := &c.shards[fnvPair(a, b)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[[2]string]float64)
	}
	s.m[[2]string{a, b}] = v
	s.mu.Unlock()
}

// reset drops all entries (strategy changes invalidate cached values).
func (c *pairCache) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// profileCache memoizes name analysis (NameProfile) per distinct name.
// Sharded like pairCache; the zero value is an empty cache. A racing
// double build of the same name is harmless: profiles are deterministic
// and either winner is equivalent.
type profileCache struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[string]*strutil.NameProfile
	}
}

func (c *profileCache) get(name string) (*strutil.NameProfile, bool) {
	s := &c.shards[fnvPair(name, "")]
	s.mu.Lock()
	p, ok := s.m[name]
	s.mu.Unlock()
	return p, ok
}

func (c *profileCache) put(name string, p *strutil.NameProfile) {
	s := &c.shards[fnvPair(name, "")]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*strutil.NameProfile)
	}
	s.m[name] = p
	s.mu.Unlock()
}

func (c *profileCache) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}
