// Package match implements COMA's extensible matcher library
// (Do & Rahm, VLDB 2002, Section 4, Table 3): the simple matchers
// Affix, n-gram, EditDistance, Soundex, Synonym, DataType and
// UserFeedback; the hybrid element-level matchers Name and TypeName;
// and the hybrid structural matchers NamePath, Children and Leaves.
//
// Every matcher computes an intermediate match result: a similarity
// value between 0 and 1 for each combination of S1 and S2 schema
// elements, where elements are identified by their paths. Executing k
// matchers yields the k × m × n similarity cube processed by package
// combine.
package match

import (
	"sync"

	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// Context carries the auxiliary information sources shared by matcher
// executions: the synonym/abbreviation dictionary, the data type
// compatibility table, and an optional concept taxonomy. A nil field
// disables the respective source.
type Context struct {
	Dict     *dict.Dictionary
	Types    *dict.TypeTable
	Taxonomy *dict.Taxonomy
}

// NewContext returns a context with the default dictionary, type
// compatibility table and purchase-order taxonomy used by the paper's
// evaluation and its extensions.
func NewContext() *Context {
	return &Context{
		Dict:     dict.Default(),
		Types:    dict.DefaultTypeTable(),
		Taxonomy: dict.DefaultTaxonomy(),
	}
}

// expand adapts the context's dictionary to strutil.TokenSet.
func (c *Context) expand(tok string) []string {
	if c == nil || c.Dict == nil {
		return nil
	}
	return c.Dict.Expand(tok)
}

// typeTable returns the context's type table, defaulting when unset.
var fallbackTypes = dict.DefaultTypeTable()

func (c *Context) typeTable() *dict.TypeTable {
	if c == nil || c.Types == nil {
		return fallbackTypes
	}
	return c.Types
}

// Matcher is a match algorithm: it determines a similarity matrix over
// the paths of two schemas. Implementations must be safe for concurrent
// use.
type Matcher interface {
	// Name identifies the matcher in cubes, configs and reports.
	Name() string
	// Match computes the similarity matrix whose rows are s1's paths
	// and whose columns are s2's paths, in Schema.Paths order.
	Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix
}

// Keys returns the matrix keys for a schema: its path strings in
// enumeration order. All matchers and the engine use this ordering.
func Keys(s *schema.Schema) []string {
	paths := s.Paths()
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.String()
	}
	return out
}

// matchPaths fills a path × path matrix from a pairwise similarity
// function.
func matchPaths(s1, s2 *schema.Schema, sim func(p1, p2 schema.Path) float64) *simcube.Matrix {
	p1, p2 := s1.Paths(), s2.Paths()
	m := simcube.NewMatrix(Keys(s1), Keys(s2))
	for i := range p1 {
		for j := range p2 {
			m.Set(i, j, sim(p1[i], p2[j]))
		}
	}
	return m
}

// pairCache memoizes a symmetric-keyed string-pair similarity. It is
// safe for concurrent use.
type pairCache struct {
	mu sync.Mutex
	m  map[[2]string]float64
}

func (c *pairCache) get(a, b string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[[2]string{a, b}]
	return v, ok
}

func (c *pairCache) put(a, b string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[[2]string]float64)
	}
	c.m[[2]string{a, b}] = v
}
