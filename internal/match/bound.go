package match

import "repro/internal/combine"

// This file is the introspection seam between the matcher library and
// the candidate-pruning index (internal/candidates): the index can
// compute a cheap upper bound on a matcher's contribution to SchemaSim
// only when it knows exactly which algorithm a Matcher value runs.
// BoundableLayers recognizes the library-built configurations — whose
// behavior is pinned by construction (NewName/NewNamePath token
// matchers and strategy, NewTypeName weights, NewChildren/NewLeaves
// leaf matcher) — and refuses everything else, so a custom matcher can
// never be silently bounded by a formula that does not dominate it.

// BoundKind identifies which library matcher a BoundLayer bounds.
type BoundKind uint8

const (
	// BoundName is the library Name matcher (NewName).
	BoundName BoundKind = iota
	// BoundNamePath is the library NamePath matcher (NewNamePath).
	BoundNamePath
	// BoundTypeName is the library TypeName matcher (NewTypeName /
	// NewWeightedTypeName with non-negative weights).
	BoundTypeName
	// BoundChildren is the library Children matcher (NewChildren).
	BoundChildren
	// BoundLeaves is the library Leaves matcher (NewLeaves).
	BoundLeaves
)

// BoundLayer describes one recognized matcher for upper-bound scoring.
// For the type-weighted kinds (TypeName, Children, Leaves), WType and
// WName are the matcher's weights normalized to sum 1; both zero means
// the matcher's weight total was zero, which the matcher itself scores
// as a constant-zero matrix.
type BoundLayer struct {
	Kind  BoundKind
	WType float64
	WName float64
}

// typeNameLayer recognizes a library-shaped TypeName matcher: the
// embedded name matcher must be the library Name configuration with
// the default combined-similarity knob, and the weights non-negative
// (negative weights would break the monotonicity the bound relies on).
func typeNameLayer(tm *TypeNameMatcher) (BoundLayer, bool) {
	if tm.name == nil || tm.name.sharedKey != "lib:Name" ||
		tm.name.strategy.Comb != combine.CombAverage {
		return BoundLayer{}, false
	}
	if tm.typeWeight < 0 || tm.nameWeight < 0 {
		return BoundLayer{}, false
	}
	l := BoundLayer{Kind: BoundTypeName}
	if total := tm.typeWeight + tm.nameWeight; total > 0 {
		l.WType = tm.typeWeight / total
		l.WName = tm.nameWeight / total
	}
	return l, true
}

// BoundableLayers maps a matcher list onto upper-boundable layers, in
// matcher order (the order matters to weighted aggregation). The
// second return is false — and the caller must fall back to exhaustive
// matching — as soon as any matcher is not a library-built
// configuration the bound formulas provably dominate.
func BoundableLayers(matchers []Matcher) ([]BoundLayer, bool) {
	layers := make([]BoundLayer, 0, len(matchers))
	for _, m := range matchers {
		switch mm := m.(type) {
		case *NameMatcher:
			if mm.strategy.Comb != combine.CombAverage {
				return nil, false
			}
			switch mm.sharedKey {
			case "lib:Name":
				layers = append(layers, BoundLayer{Kind: BoundName})
			case "lib:NamePath":
				layers = append(layers, BoundLayer{Kind: BoundNamePath})
			default:
				return nil, false
			}
		case *TypeNameMatcher:
			l, ok := typeNameLayer(mm)
			if !ok {
				return nil, false
			}
			layers = append(layers, l)
		case *ChildrenMatcher:
			tm, ok := mm.leaf.(*TypeNameMatcher)
			if !ok || mm.comb != combine.CombAverage {
				return nil, false
			}
			l, ok := typeNameLayer(tm)
			if !ok {
				return nil, false
			}
			l.Kind = BoundChildren
			layers = append(layers, l)
		case *LeavesMatcher:
			tm, ok := mm.leaf.(*TypeNameMatcher)
			if !ok || mm.comb != combine.CombAverage {
				return nil, false
			}
			l, ok := typeNameLayer(tm)
			if !ok {
				return nil, false
			}
			l.Kind = BoundLeaves
			layers = append(layers, l)
		default:
			return nil, false
		}
	}
	return layers, true
}
