package match

import (
	"sync"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// Feedback is the UserFeedback matcher (paper Section 3): it captures
// match and mismatch information provided by the user, including
// corrected match results from a previous match iteration. Approved
// matches are assigned the maximal similarity (1), rejected ones the
// minimal (0); the engine additionally pins these values so that they
// remain unaffected by the other matchers.
//
// Feedback is keyed by path strings and is safe for concurrent use.
// The zero value is an empty, usable store.
type Feedback struct {
	mu       sync.RWMutex
	accepted map[[2]string]bool
	rejected map[[2]string]bool
}

// NewFeedback returns an empty feedback store.
func NewFeedback() *Feedback { return &Feedback{} }

// ensure initializes the maps; callers must hold the write lock.
func (f *Feedback) ensure() {
	if f.accepted == nil {
		f.accepted = make(map[[2]string]bool)
	}
	if f.rejected == nil {
		f.rejected = make(map[[2]string]bool)
	}
}

// Accept records a user-approved correspondence between an S1 and an S2
// path. A previous rejection of the pair is cleared.
func (f *Feedback) Accept(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ensure()
	key := [2]string{from, to}
	f.accepted[key] = true
	delete(f.rejected, key)
}

// Reject records a user-declared mismatch. A previous acceptance of the
// pair is cleared.
func (f *Feedback) Reject(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ensure()
	key := [2]string{from, to}
	f.rejected[key] = true
	delete(f.accepted, key)
}

// Clear removes any assertion for the pair.
func (f *Feedback) Clear(from, to string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]string{from, to}
	delete(f.accepted, key)
	delete(f.rejected, key)
}

// Accepted reports whether the pair was approved.
func (f *Feedback) Accepted(from, to string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.accepted[[2]string{from, to}]
}

// Rejected reports whether the pair was declared a mismatch.
func (f *Feedback) Rejected(from, to string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.rejected[[2]string{from, to}]
}

// Len returns the number of recorded assertions.
func (f *Feedback) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.accepted) + len(f.rejected)
}

// Name implements Matcher.
func (f *Feedback) Name() string { return "UserFeedback" }

// Match implements Matcher: accepted pairs score 1, rejected pairs 0,
// and — so that the matcher stays neutral where the user said nothing —
// unasserted pairs score 0 as well. The engine distinguishes "no
// assertion" from "rejected" via Pin.
func (f *Feedback) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	return matchPaths(ctx, s1, s2, func(p1, p2 schema.Path) float64 {
		if f.Accepted(p1.String(), p2.String()) {
			return 1
		}
		return 0
	})
}

// Pin overwrites the cells of an aggregated similarity matrix with the
// user-asserted values, ensuring approved matches keep similarity 1 and
// rejected ones similarity 0 regardless of the other matchers.
func (f *Feedback) Pin(m *simcube.Matrix) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for key := range f.accepted {
		i, j := m.RowIndex(key[0]), m.ColIndex(key[1])
		if i >= 0 && j >= 0 {
			m.Set(i, j, 1)
		}
	}
	for key := range f.rejected {
		i, j := m.RowIndex(key[0]), m.ColIndex(key[1])
		if i >= 0 && j >= 0 {
			m.Set(i, j, 0)
		}
	}
}
