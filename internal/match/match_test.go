package match

import (
	"testing"

	"repro/internal/combine"
	"repro/internal/schema"
)

// figure1PO1 builds the relational schema PO1 of the paper's Figure 1.
func figure1PO1() *schema.Schema {
	s := schema.New("PO1")
	ship := schema.NewNode("ShipTo")
	ship.Kind = schema.ElemTable
	for _, c := range []struct{ name, typ string }{
		{"poNo", "INT"}, {"custNo", "INT"},
		{"shipToStreet", "VARCHAR(200)"}, {"shipToCity", "VARCHAR(200)"}, {"shipToZip", "VARCHAR(20)"},
	} {
		ship.AddChild(&schema.Node{Name: c.name, TypeName: c.typ, Kind: schema.ElemColumn})
	}
	cust := schema.NewNode("Customer")
	cust.Kind = schema.ElemTable
	for _, c := range []struct{ name, typ string }{
		{"custNo", "INT"}, {"custName", "VARCHAR(200)"},
		{"custStreet", "VARCHAR(200)"}, {"custCity", "VARCHAR(200)"}, {"custZip", "VARCHAR(20)"},
	} {
		cust.AddChild(&schema.Node{Name: c.name, TypeName: c.typ, Kind: schema.ElemColumn})
	}
	s.Root.AddChild(ship)
	s.Root.AddChild(cust)
	return s
}

// figure1PO2 builds the XML schema PO2 of Figure 1 with the shared
// Address fragment.
func figure1PO2() *schema.Schema {
	s := schema.New("PO2")
	deliver := schema.NewNode("DeliverTo")
	bill := schema.NewNode("BillTo")
	addr := schema.NewNode("Address")
	addr.AddChild(&schema.Node{Name: "Street", TypeName: "xsd:string", Kind: schema.ElemSimple})
	addr.AddChild(&schema.Node{Name: "City", TypeName: "xsd:string", Kind: schema.ElemSimple})
	addr.AddChild(&schema.Node{Name: "Zip", TypeName: "xsd:decimal", Kind: schema.ElemSimple})
	deliver.AddChild(addr)
	bill.AddChild(addr)
	s.Root.AddChild(deliver)
	s.Root.AddChild(bill)
	return s
}

func TestSimpleMatchersOnNames(t *testing.T) {
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()
	for _, m := range []Matcher{Affix(), NGram(2), Trigram(), EditDistance(), Soundex()} {
		res := m.Match(ctx, s1, s2)
		if res.Rows() != 12 || res.Cols() != 10 {
			t.Fatalf("%s: dims %dx%d, want 12x10", m.Name(), res.Rows(), res.Cols())
		}
		// shipToCity vs City must beat shipToCity vs Zip for string matchers.
		city := res.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City")
		zip := res.GetKey("ShipTo.shipToCity", "DeliverTo.Address.Zip")
		if m.Name() != "Soundex" && city <= zip {
			t.Errorf("%s: city/city %.3f <= city/zip %.3f", m.Name(), city, zip)
		}
	}
}

func TestSynonymMatcher(t *testing.T) {
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()
	m := Synonym().Match(ctx, s1, s2)
	// Whole-name lookups: only exact dictionary terms fire.
	if got := m.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City"); got != 0 {
		t.Errorf("Synonym on non-dictionary names = %.2f, want 0", got)
	}
	// Nil-dictionary context is safe.
	empty := Synonym().Match(&Context{}, s1, s2)
	if empty.GetKey("ShipTo", "DeliverTo") != 0 {
		t.Error("nil dictionary should yield 0")
	}
}

func TestDataTypeMatcher(t *testing.T) {
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()
	m := DataTypeMatcher{}.Match(ctx, s1, s2)
	// VARCHAR vs xsd:string: fully compatible.
	if got := m.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City"); got != 1 {
		t.Errorf("varchar/string = %.2f, want 1", got)
	}
	// INT vs xsd:decimal: 0.8 per default table.
	if got := m.GetKey("ShipTo.poNo", "DeliverTo.Address.Zip"); got != 0.8 {
		t.Errorf("int/decimal = %.2f, want 0.8", got)
	}
	// Inner elements: complex vs complex = 1.
	if got := m.GetKey("ShipTo", "DeliverTo"); got != 1 {
		t.Errorf("complex/complex = %.2f, want 1", got)
	}
}

func TestNameMatcherTokensAndSynonyms(t *testing.T) {
	ctx := NewContext()
	nm := NewName()
	// Ship vs Deliver: trigram fails, synonym fires; both names
	// tokenize into two tokens with one mutual best pair each.
	sim := nm.NameSim(ctx, "ShipTo", "DeliverTo")
	if sim != 1 {
		t.Errorf("ShipTo/DeliverTo = %.3f, want 1 (ship=deliver, to=to)", sim)
	}
	// Abbreviation expansion: PONo → purchase order number.
	sim = nm.NameSim(ctx, "PONo", "PurchaseOrderNumber")
	if sim != 1 {
		t.Errorf("PONo/PurchaseOrderNumber = %.3f, want 1", sim)
	}
	// Partial token overlap: shipToCity vs City → city matches, the
	// stopword "to" is eliminated, ship stays unmatched: 2·1/(2+1).
	sim = nm.NameSim(ctx, "shipToCity", "City")
	if sim < 0.6 || sim > 0.7 {
		t.Errorf("shipToCity/City = %.3f, want 2/3", sim)
	}
	if nm.NameSim(ctx, "", "City") != 0 {
		t.Error("empty name should have similarity 0")
	}
}

func TestNameMatcherCacheStability(t *testing.T) {
	ctx := NewContext()
	nm := NewName()
	a := nm.NameSim(ctx, "BillTo", "InvoiceTo")
	b := nm.NameSim(ctx, "BillTo", "InvoiceTo")
	if a != b {
		t.Errorf("cache returned different value: %.3f vs %.3f", a, b)
	}
	if a != 1 {
		t.Errorf("BillTo/InvoiceTo = %.3f, want 1 (bill=invoice)", a)
	}
}

func TestNamePathContexts(t *testing.T) {
	ctx := NewContext()
	s1 := schema.New("A")
	shipTo := schema.NewNode("ShipTo")
	shipTo.AddChild(&schema.Node{Name: "Street", TypeName: "xsd:string"})
	billTo := schema.NewNode("BillTo")
	billTo.AddChild(&schema.Node{Name: "Street", TypeName: "xsd:string"})
	s1.Root.AddChild(shipTo)
	s1.Root.AddChild(billTo)

	s2 := schema.New("B")
	deliver := schema.NewNode("DeliverTo")
	deliver.AddChild(&schema.Node{Name: "Street", TypeName: "xsd:string"})
	s2.Root.AddChild(deliver)

	name := NewName().Match(ctx, s1, s2)
	namePath := NewNamePath().Match(ctx, s1, s2)
	// Name cannot distinguish the two Street contexts.
	if name.GetKey("ShipTo.Street", "DeliverTo.Street") != name.GetKey("BillTo.Street", "DeliverTo.Street") {
		t.Error("Name should be context-insensitive")
	}
	// NamePath prefers the ship context (ship=deliver synonym).
	shipSim := namePath.GetKey("ShipTo.Street", "DeliverTo.Street")
	billSim := namePath.GetKey("BillTo.Street", "DeliverTo.Street")
	if shipSim <= billSim {
		t.Errorf("NamePath ship %.3f <= bill %.3f", shipSim, billSim)
	}
}

func TestNamePathFindsCrossLevelMatches(t *testing.T) {
	// Paper: PurchaseOrder.ShipTo.Street vs PurchaseOrder.shipToStreet.
	ctx := NewContext()
	s1 := schema.New("A")
	po := schema.NewNode("PurchaseOrder")
	ship := schema.NewNode("ShipTo")
	ship.AddChild(&schema.Node{Name: "Street", TypeName: "xsd:string"})
	po.AddChild(ship)
	s1.Root.AddChild(po)

	s2 := schema.New("B")
	po2 := schema.NewNode("PurchaseOrder")
	po2.AddChild(&schema.Node{Name: "shipToStreet", TypeName: "xsd:string"})
	s2.Root.AddChild(po2)

	np := NewNamePath().Match(ctx, s1, s2)
	if got := np.GetKey("PurchaseOrder.ShipTo.Street", "PurchaseOrder.shipToStreet"); got != 1 {
		t.Errorf("cross-level NamePath = %.3f, want 1 (identical token sets)", got)
	}
}

func TestTypeNameWeights(t *testing.T) {
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()
	tn := NewTypeName().Match(ctx, s1, s2)
	// custName vs City: weak name sim, same type. The type share keeps
	// it above pure-name but below a true match.
	cityCity := tn.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City")
	if cityCity < 0.5 {
		t.Errorf("shipToCity/City TypeName = %.3f, want >= 0.5", cityCity)
	}
	// Type mismatch penalizes: custZip(VARCHAR) vs Zip(decimal) scores
	// lower than custCity(VARCHAR) vs City(string) despite equal name sim.
	zip := tn.GetKey("Customer.custZip", "DeliverTo.Address.Zip")
	city := tn.GetKey("Customer.custCity", "DeliverTo.Address.City")
	if zip >= city {
		t.Errorf("type weight not applied: zip %.3f >= city %.3f", zip, city)
	}
	// Custom weights: all weight on type.
	typeOnly := NewWeightedTypeName(1, 0)
	m := typeOnly.Match(ctx, s1, s2)
	if got := m.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City"); got != 1 {
		t.Errorf("type-only TypeName = %.3f, want 1", got)
	}
	if NewWeightedTypeName(0, 0).PairSim(ctx, s1.Paths()[0], s2.Paths()[0]) != 0 {
		t.Error("zero weights should yield 0")
	}
}

func TestChildrenVsLeavesStructuralConflict(t *testing.T) {
	// The paper's key structural contrast (Section 4.2): the matching
	// elements of ShipTo's children are children of Address, not of
	// DeliverTo. Children therefore only finds ShipTo~Address, while
	// Leaves also identifies ShipTo~DeliverTo.
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()

	children := NewChildren().Match(ctx, s1, s2)
	leaves := NewLeaves().Match(ctx, s1, s2)

	chShipAddr := children.GetKey("ShipTo", "DeliverTo.Address")
	chShipDeliver := children.GetKey("ShipTo", "DeliverTo")
	if chShipAddr <= chShipDeliver {
		t.Errorf("Children: ShipTo/Address %.3f <= ShipTo/DeliverTo %.3f", chShipAddr, chShipDeliver)
	}
	if chShipAddr <= 0.2 {
		t.Errorf("Children: ShipTo/Address = %.3f, want substantial", chShipAddr)
	}

	lvShipDeliver := leaves.GetKey("ShipTo", "DeliverTo")
	if lvShipDeliver <= chShipDeliver {
		t.Errorf("Leaves should beat Children on ShipTo/DeliverTo: %.3f <= %.3f", lvShipDeliver, chShipDeliver)
	}
	if lvShipDeliver <= 0.2 {
		t.Errorf("Leaves: ShipTo/DeliverTo = %.3f, want substantial", lvShipDeliver)
	}
}

func TestChildrenLeafPairsUseLeafMatcher(t *testing.T) {
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()
	children := NewChildren().Match(ctx, s1, s2)
	tn := NewTypeName().Match(ctx, s1, s2)
	a := children.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City")
	b := tn.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City")
	if a != b {
		t.Errorf("leaf pair: Children %.3f != TypeName %.3f", a, b)
	}
	// Mixed inner/leaf pairs are 0.
	if got := children.GetKey("ShipTo", "DeliverTo.Address.City"); got != 0 {
		t.Errorf("inner/leaf = %.3f, want 0", got)
	}
}

func TestLeavesOnLeafPairs(t *testing.T) {
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()
	leaves := NewLeaves().Match(ctx, s1, s2)
	tn := NewTypeName().Match(ctx, s1, s2)
	// For two leaves, the leaf-set similarity degenerates to the plain
	// leaf similarity.
	a := leaves.GetKey("Customer.custCity", "BillTo.Address.City")
	b := tn.GetKey("Customer.custCity", "BillTo.Address.City")
	if a != b {
		t.Errorf("leaf pair: Leaves %.3f != TypeName %.3f", a, b)
	}
}

func TestFeedback(t *testing.T) {
	fb := NewFeedback()
	fb.Accept("a", "x")
	fb.Reject("b", "y")
	if !fb.Accepted("a", "x") || !fb.Rejected("b", "y") || fb.Len() != 2 {
		t.Fatal("assertions not recorded")
	}
	// Flipping an assertion replaces it.
	fb.Reject("a", "x")
	if fb.Accepted("a", "x") || !fb.Rejected("a", "x") {
		t.Error("Reject should clear Accept")
	}
	fb.Accept("a", "x")
	if fb.Rejected("a", "x") {
		t.Error("Accept should clear Reject")
	}
	fb.Clear("a", "x")
	if fb.Accepted("a", "x") || fb.Rejected("a", "x") || fb.Len() != 1 {
		t.Error("Clear failed")
	}
}

func TestFeedbackMatchAndPin(t *testing.T) {
	ctx := NewContext()
	s1, s2 := figure1PO1(), figure1PO2()
	fb := NewFeedback()
	fb.Accept("ShipTo.poNo", "DeliverTo.Address.Zip")
	fb.Reject("ShipTo.shipToCity", "DeliverTo.Address.City")
	m := fb.Match(ctx, s1, s2)
	if m.GetKey("ShipTo.poNo", "DeliverTo.Address.Zip") != 1 {
		t.Error("accepted pair should score 1")
	}
	if m.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City") != 0 {
		t.Error("rejected pair should score 0")
	}
	// Pin overrides an aggregated matrix.
	agg := NewTypeName().Match(ctx, s1, s2)
	fb.Pin(agg)
	if agg.GetKey("ShipTo.poNo", "DeliverTo.Address.Zip") != 1 {
		t.Error("Pin should set accepted pair to 1")
	}
	if agg.GetKey("ShipTo.shipToCity", "DeliverTo.Address.City") != 0 {
		t.Error("Pin should set rejected pair to 0")
	}
	// Pins for unknown paths are ignored.
	fb.Accept("nope", "nope")
	fb.Pin(agg)
}

func TestLibrary(t *testing.T) {
	lib := NewLibrary()
	for _, name := range lib.Names() {
		m, err := lib.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("matcher %q reports name %q", name, m.Name())
		}
	}
	if _, err := lib.New("Bogus"); err == nil {
		t.Error("unknown matcher should fail")
	}
	set, err := lib.NewSet(HybridNames()...)
	if err != nil || len(set) != 5 {
		t.Fatalf("NewSet hybrids: %v, %d", err, len(set))
	}
	if _, err := lib.NewSet("Name", "Bogus"); err == nil {
		t.Error("NewSet with unknown matcher should fail")
	}
	// Extensibility.
	lib.Register("Constant", func() Matcher {
		return NewSimple("Constant", func(*Context, string, string) float64 { return 0.5 })
	})
	if _, err := lib.New("Constant"); err != nil {
		t.Errorf("custom matcher: %v", err)
	}
}

func TestCustomNameMatcher(t *testing.T) {
	ctx := NewContext()
	// An Average-aggregating name matcher with three constituents.
	strategy := combine.Strategy{
		Agg:  combine.AggSpec{Kind: combine.Average},
		Dir:  combine.Both,
		Sel:  combine.Selection{MaxN: 1},
		Comb: combine.CombAverage,
	}
	nm := NewCustomName("NameAvg", strategy, Trigram(), Synonym(), Affix())
	if nm.Name() != "NameAvg" {
		t.Error("custom name lost")
	}
	sim := nm.NameSim(ctx, "ShipTo", "ShipTo")
	if sim != 1 {
		t.Errorf("identical names under custom matcher = %.3f", sim)
	}
	// Average aggregation dilutes the synonym hit that Max keeps.
	maxSim := NewName().NameSim(ctx, "Ship", "Deliver")
	avgSim := nm.NameSim(ctx, "Ship", "Deliver")
	if avgSim >= maxSim {
		t.Errorf("Average %.3f >= Max %.3f for Ship/Deliver", avgSim, maxSim)
	}
}

func TestKeysOrdering(t *testing.T) {
	s := figure1PO2()
	keys := Keys(s)
	if len(keys) != 10 || keys[0] != "DeliverTo" {
		t.Fatalf("Keys = %v", keys)
	}
}
