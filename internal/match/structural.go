package match

import (
	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// leafMatcher abstracts the leaf-level matcher the structural matchers
// are combined with; TypeName is the default (Table 4).
type leafMatcher interface {
	Matcher
	PairSim(ctx *Context, p1, p2 schema.Path) float64
	SetCombSim(c combine.CombSim)
}

// combineSets folds a pairwise similarity over two path sets into one
// value using the (Both, Max1, comb) sub-strategy of Table 4: build
// the similarity matrix, select mutual best candidates, combine over
// |S1|+|S2|.
func combineSets(comb combine.CombSim, set1, set2 []schema.Path, sim func(i, j int) float64) float64 {
	if len(set1) == 0 || len(set2) == 0 {
		return 0
	}
	k1 := make([]string, len(set1))
	for i, p := range set1 {
		k1[i] = p.String()
	}
	k2 := make([]string, len(set2))
	for j, p := range set2 {
		k2[j] = p.String()
	}
	m := simcube.NewMatrix(k1, k2)
	for i := range set1 {
		for j := range set2 {
			m.Set(i, j, sim(i, j))
		}
	}
	res := combine.Select(m, combine.Both, combine.Selection{MaxN: 1})
	return combine.CombinedSimilarity(comb, len(set1), len(set2), res)
}

// ChildrenMatcher is the hybrid structural Children matcher (paper
// Section 4.2): the similarity between two inner elements derives from
// the combined similarity of their child elements, recursively; leaf
// similarities come from the leaf-level matcher (TypeName by default).
//
// Children is sensitive to structural conflicts: in Figure 1 it finds a
// correspondence between ShipTo and Address but not between ShipTo and
// DeliverTo, because the matching elements are grandchildren, not
// children, of DeliverTo.
type ChildrenMatcher struct {
	leaf leafMatcher
	comb combine.CombSim
}

// NewChildren returns the Children matcher with TypeName as its
// leaf-level matcher.
func NewChildren() *ChildrenMatcher {
	return &ChildrenMatcher{leaf: NewTypeName(), comb: combine.CombAverage}
}

// Name implements Matcher.
func (cm *ChildrenMatcher) Name() string { return "Children" }

// SetCombSim switches the combined-similarity strategy of the child-set
// combination and of the embedded leaf matcher.
func (cm *ChildrenMatcher) SetCombSim(c combine.CombSim) {
	cm.comb = c
	cm.leaf.SetCombSim(c)
}

// Match implements Matcher. Leaf element pairs receive the leaf
// matcher's similarity; inner element pairs the recursive child-set
// similarity; mixed pairs similarity 0.
func (cm *ChildrenMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	p1, p2 := s1.Paths(), s2.Paths()
	out := simcube.NewMatrix(Keys(s1), Keys(s2))
	memo := make(map[[2]string]float64)
	var pairSim func(a, b schema.Path) float64
	pairSim = func(a, b schema.Path) float64 {
		key := [2]string{a.String(), b.String()}
		if v, ok := memo[key]; ok {
			return v
		}
		// Mark in-progress to terminate on (impossible in a DAG, but
		// cheap insurance) self-recursion; a DAG's path recursion always
		// descends so 0 is never read back in practice.
		memo[key] = 0
		var v float64
		aLeaf, bLeaf := a.Leaf().IsLeaf(), b.Leaf().IsLeaf()
		switch {
		case aLeaf && bLeaf:
			v = cm.leaf.PairSim(ctx, a, b)
		case !aLeaf && !bLeaf:
			c1, c2 := a.ChildPaths(), b.ChildPaths()
			v = combineSets(cm.comb, c1, c2, func(i, j int) float64 {
				return pairSim(c1[i], c2[j])
			})
		}
		memo[key] = v
		return v
	}
	for i := range p1 {
		for j := range p2 {
			out.Set(i, j, pairSim(p1[i], p2[j]))
		}
	}
	return out
}

// LeavesMatcher is the hybrid structural Leaves matcher (paper Section
// 4.2): the similarity of two elements derives from the combined
// similarity of the leaf elements reachable from them, ignoring
// intermediate structure. This yields more stable similarity under
// structural conflicts: in Figure 1 it identifies the correspondence
// between ShipTo and DeliverTo although the matching leaves sit one
// level deeper in PO2.
type LeavesMatcher struct {
	leaf leafMatcher
	comb combine.CombSim
}

// NewLeaves returns the Leaves matcher with TypeName as its leaf-level
// matcher.
func NewLeaves() *LeavesMatcher {
	return &LeavesMatcher{leaf: NewTypeName(), comb: combine.CombAverage}
}

// Name implements Matcher.
func (lm *LeavesMatcher) Name() string { return "Leaves" }

// SetCombSim switches the combined-similarity strategy of the leaf-set
// combination and of the embedded leaf matcher.
func (lm *LeavesMatcher) SetCombSim(c combine.CombSim) {
	lm.comb = c
	lm.leaf.SetCombSim(c)
}

// Match implements Matcher. For every element pair the leaf sets under
// both elements are compared with the leaf matcher and combined with
// (Both, Max1, Average); for a leaf element the leaf set is the element
// itself, so leaf pairs degenerate to the plain leaf similarity.
func (lm *LeavesMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	p1, p2 := s1.Paths(), s2.Paths()

	// The leaf sets of different inner elements overlap heavily, so
	// compute every needed leaf-pair similarity once.
	leafSets1 := make([][]schema.Path, len(p1))
	for i, p := range p1 {
		leafSets1[i] = p.LeafPaths()
	}
	leafSets2 := make([][]schema.Path, len(p2))
	for j, p := range p2 {
		leafSets2[j] = p.LeafPaths()
	}
	var cache pairCache
	leafSim := func(a, b schema.Path) float64 {
		ka, kb := a.String(), b.String()
		if v, ok := cache.get(ka, kb); ok {
			return v
		}
		v := lm.leaf.PairSim(ctx, a, b)
		cache.put(ka, kb, v)
		return v
	}

	out := simcube.NewMatrix(Keys(s1), Keys(s2))
	for i := range p1 {
		for j := range p2 {
			l1, l2 := leafSets1[i], leafSets2[j]
			out.Set(i, j, combineSets(lm.comb, l1, l2, func(a, b int) float64 {
				return leafSim(l1[a], l2[b])
			}))
		}
	}
	return out
}
