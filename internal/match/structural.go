package match

import (
	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// leafMatcher abstracts the leaf-level matcher the structural matchers
// are combined with; TypeName is the default (Table 4).
type leafMatcher interface {
	Matcher
	PairSim(ctx *Context, p1, p2 schema.Path) float64
	SetCombSim(c combine.CombSim)
}

// combineSets folds a pairwise similarity over two element sets into
// one value using the (Both, Max1, comb) sub-strategy of Table 4:
// select mutual best candidates, combine over |S1|+|S2|. The fold runs
// matrix- and mapping-free (see combine.MutualBestSimilarity).
func combineSets(comb combine.CombSim, n1, n2 int, sim func(i, j int) float64) float64 {
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return combine.MutualBestSimilarity(comb, n1, n2, sim)
}

// ChildrenMatcher is the hybrid structural Children matcher (paper
// Section 4.2): the similarity between two inner elements derives from
// the combined similarity of their child elements, recursively; leaf
// similarities come from the leaf-level matcher (TypeName by default).
//
// Children is sensitive to structural conflicts: in Figure 1 it finds a
// correspondence between ShipTo and Address but not between ShipTo and
// DeliverTo, because the matching elements are grandchildren, not
// children, of DeliverTo.
type ChildrenMatcher struct {
	leaf leafMatcher
	comb combine.CombSim
}

// NewChildren returns the Children matcher with TypeName as its
// leaf-level matcher.
func NewChildren() *ChildrenMatcher {
	return &ChildrenMatcher{leaf: NewTypeName(), comb: combine.CombAverage}
}

// Name implements Matcher.
func (cm *ChildrenMatcher) Name() string { return "Children" }

// SetCombSim switches the combined-similarity strategy of the child-set
// combination and of the embedded leaf matcher.
func (cm *ChildrenMatcher) SetCombSim(c combine.CombSim) {
	cm.comb = c
	cm.leaf.SetCombSim(c)
}

// childIndexes resolves, for every path, the matrix indices of its
// containment children. Paths enumerate in preorder, so a child's index
// is always greater than its parent's — the recurrence evaluates
// bottom-up by iterating indices in reverse.
func childIndexes(paths []schema.Path, keys []string) [][]int {
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	out := make([][]int, len(paths))
	for i, p := range paths {
		children := p.ChildPaths()
		if len(children) == 0 {
			continue
		}
		ci := make([]int, 0, len(children))
		for _, c := range children {
			if j, ok := idx[c.String()]; ok {
				ci = append(ci, j)
			}
		}
		out[i] = ci
	}
	return out
}

// Match implements Matcher. Leaf element pairs receive the leaf
// matcher's similarity; inner element pairs the recursive child-set
// similarity; mixed pairs similarity 0. The recurrence is evaluated
// bottom-up over the preorder path enumeration (children precede their
// parents in reverse order), replacing the memoized recursion and its
// per-pair path-string keys with direct matrix reads.
func (cm *ChildrenMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	p1, p2 := s1.Paths(), s2.Paths()
	k1, k2 := Keys(s1), Keys(s2)
	out := simcube.NewMatrix(k1, k2)
	child1 := childIndexes(p1, k1)
	child2 := childIndexes(p2, k2)
	leaf1 := make([]bool, len(p1))
	for i, p := range p1 {
		leaf1[i] = p.Leaf().IsLeaf()
	}
	leaf2 := make([]bool, len(p2))
	for j, p := range p2 {
		leaf2[j] = p.Leaf().IsLeaf()
	}
	for i := len(p1) - 1; i >= 0; i-- {
		for j := len(p2) - 1; j >= 0; j-- {
			var v float64
			switch {
			case leaf1[i] && leaf2[j]:
				v = cm.leaf.PairSim(ctx, p1[i], p2[j])
			case !leaf1[i] && !leaf2[j]:
				c1, c2 := child1[i], child2[j]
				v = combineSets(cm.comb, len(c1), len(c2), func(a, b int) float64 {
					return out.Get(c1[a], c2[b])
				})
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// LeavesMatcher is the hybrid structural Leaves matcher (paper Section
// 4.2): the similarity of two elements derives from the combined
// similarity of the leaf elements reachable from them, ignoring
// intermediate structure. This yields more stable similarity under
// structural conflicts: in Figure 1 it identifies the correspondence
// between ShipTo and DeliverTo although the matching leaves sit one
// level deeper in PO2.
type LeavesMatcher struct {
	leaf leafMatcher
	comb combine.CombSim
}

// NewLeaves returns the Leaves matcher with TypeName as its leaf-level
// matcher.
func NewLeaves() *LeavesMatcher {
	return &LeavesMatcher{leaf: NewTypeName(), comb: combine.CombAverage}
}

// Name implements Matcher.
func (lm *LeavesMatcher) Name() string { return "Leaves" }

// SetCombSim switches the combined-similarity strategy of the leaf-set
// combination and of the embedded leaf matcher.
func (lm *LeavesMatcher) SetCombSim(c combine.CombSim) {
	lm.comb = c
	lm.leaf.SetCombSim(c)
}

// denseLeafSets assigns every distinct leaf path a dense index and
// resolves each element's leaf set to those indices.
func denseLeafSets(paths []schema.Path) (leaves []schema.Path, sets [][]int) {
	idx := make(map[string]int)
	sets = make([][]int, len(paths))
	for i, p := range paths {
		lp := p.LeafPaths()
		set := make([]int, len(lp))
		for k, l := range lp {
			key := l.String()
			j, ok := idx[key]
			if !ok {
				j = len(leaves)
				idx[key] = j
				leaves = append(leaves, l)
			}
			set[k] = j
		}
		sets[i] = set
	}
	return leaves, sets
}

// Match implements Matcher. For every element pair the leaf sets under
// both elements are compared with the leaf matcher and combined with
// (Both, Max1, Average); for a leaf element the leaf set is the element
// itself, so leaf pairs degenerate to the plain leaf similarity.
//
// The leaf sets of different inner elements overlap heavily, so the
// two-phase flow precomputes every distinct leaf-pair similarity once
// into a dense grid (row-parallel), then combines per element pair
// against that grid — no locks or cache lookups in the combine loop.
func (lm *LeavesMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	p1, p2 := s1.Paths(), s2.Paths()
	leaves1, sets1 := denseLeafSets(p1)
	leaves2, sets2 := denseLeafSets(p2)

	nl2 := len(leaves2)
	leafSims := make([]float64, len(leaves1)*nl2)
	parallelRows(ctx, len(leaves1), func(a int) {
		for b, l2 := range leaves2 {
			leafSims[a*nl2+b] = lm.leaf.PairSim(ctx, leaves1[a], l2)
		}
	})

	out := simcube.NewMatrix(Keys(s1), Keys(s2))
	parallelRows(ctx, len(p1), func(i int) {
		l1 := sets1[i]
		for j := range p2 {
			l2 := sets2[j]
			out.Set(i, j, combineSets(lm.comb, len(l1), len(l2), func(a, b int) float64 {
				return leafSims[l1[a]*nl2+l2[b]]
			}))
		}
	})
	return out
}
