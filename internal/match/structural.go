package match

import (
	"repro/internal/analysis"
	"repro/internal/combine"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// leafMatcher abstracts the leaf-level matcher the structural matchers
// are combined with; TypeName is the default (Table 4). The structural
// matchers only ever fold over leaf-pair similarities, so they consume
// one dense leaf×leaf grid (index-driven, row-parallel) rather than
// querying pairs individually or filling the full path matrix.
type leafMatcher interface {
	Matcher
	SetCombSim(c combine.CombSim)
	leafGrid(ctx *Context, x1, x2 *analysis.SchemaIndex) []float64
}

// combineSets folds a pairwise similarity over two element sets into
// one value using the (Both, Max1, comb) sub-strategy of Table 4:
// select mutual best candidates, combine over |S1|+|S2|. The fold runs
// matrix- and mapping-free (see combine.MutualBestSimilarity).
func combineSets(comb combine.CombSim, n1, n2 int, sim func(i, j int) float64) float64 {
	if n1 == 0 || n2 == 0 {
		return 0
	}
	return combine.MutualBestSimilarity(comb, n1, n2, sim)
}

// ChildrenMatcher is the hybrid structural Children matcher (paper
// Section 4.2): the similarity between two inner elements derives from
// the combined similarity of their child elements, recursively; leaf
// similarities come from the leaf-level matcher (TypeName by default).
//
// Children is sensitive to structural conflicts: in Figure 1 it finds a
// correspondence between ShipTo and Address but not between ShipTo and
// DeliverTo, because the matching elements are grandchildren, not
// children, of DeliverTo.
type ChildrenMatcher struct {
	leaf leafMatcher
	comb combine.CombSim
}

// NewChildren returns the Children matcher with TypeName as its
// leaf-level matcher.
func NewChildren() *ChildrenMatcher {
	return &ChildrenMatcher{leaf: NewTypeName(), comb: combine.CombAverage}
}

// Name implements Matcher.
func (cm *ChildrenMatcher) Name() string { return "Children" }

// SetCombSim switches the combined-similarity strategy of the child-set
// combination and of the embedded leaf matcher.
func (cm *ChildrenMatcher) SetCombSim(c combine.CombSim) {
	cm.comb = c
	cm.leaf.SetCombSim(c)
}

// Match implements Matcher. Leaf element pairs receive the leaf
// matcher's similarity; inner element pairs the recursive child-set
// similarity; mixed pairs similarity 0. The leaf matcher fills one
// dense leaf×leaf grid (index-driven, row-parallel); the recurrence
// is then evaluated bottom-up over the indexes' children adjacency —
// paths enumerate in preorder, so children precede their parents in
// reverse order and the recurrence reads already-final matrix cells.
// A leaf path's dense leaf id is LeafLo (its leaf set is itself).
func (cm *ChildrenMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	leafSims := cm.leaf.leafGrid(ctx, x1, x2)
	defer ctx.releaseGrid(leafSims)
	nl2 := len(x2.Leaves)
	out := ctx.newMatrix(x1.Keys, x2.Keys)
	n1, n2 := len(x1.Paths), len(x2.Paths)
	for i := n1 - 1; i >= 0; i-- {
		for j := n2 - 1; j >= 0; j-- {
			var v float64
			switch {
			case x1.IsLeaf[i] && x2.IsLeaf[j]:
				v = leafSims[x1.LeafLo[i]*nl2+x2.LeafLo[j]]
			case !x1.IsLeaf[i] && !x2.IsLeaf[j]:
				c1, c2 := x1.Children[i], x2.Children[j]
				v = combineSets(cm.comb, len(c1), len(c2), func(a, b int) float64 {
					return out.Get(c1[a], c2[b])
				})
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// LeavesMatcher is the hybrid structural Leaves matcher (paper Section
// 4.2): the similarity of two elements derives from the combined
// similarity of the leaf elements reachable from them, ignoring
// intermediate structure. This yields more stable similarity under
// structural conflicts: in Figure 1 it identifies the correspondence
// between ShipTo and DeliverTo although the matching leaves sit one
// level deeper in PO2.
type LeavesMatcher struct {
	leaf leafMatcher
	comb combine.CombSim
}

// NewLeaves returns the Leaves matcher with TypeName as its leaf-level
// matcher.
func NewLeaves() *LeavesMatcher {
	return &LeavesMatcher{leaf: NewTypeName(), comb: combine.CombAverage}
}

// Name implements Matcher.
func (lm *LeavesMatcher) Name() string { return "Leaves" }

// SetCombSim switches the combined-similarity strategy of the leaf-set
// combination and of the embedded leaf matcher.
func (lm *LeavesMatcher) SetCombSim(c combine.CombSim) {
	lm.comb = c
	lm.leaf.SetCombSim(c)
}

// Match implements Matcher. For every element pair the leaf sets under
// both elements are compared with the leaf matcher and combined with
// (Both, Max1, Average); for a leaf element the leaf set is the element
// itself, so leaf pairs degenerate to the plain leaf similarity.
//
// The leaf matcher fills one dense leaf×leaf grid; the schema indexes
// resolve every element's leaf set to a contiguous range of dense
// leaf ids (preorder), so the combine loop reads the grid directly —
// no per-pair set construction, locks or cache lookups.
func (lm *LeavesMatcher) Match(ctx *Context, s1, s2 *schema.Schema) *simcube.Matrix {
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	leafSims := lm.leaf.leafGrid(ctx, x1, x2)
	defer ctx.releaseGrid(leafSims)
	nl2 := len(x2.Leaves)
	out := ctx.newMatrix(x1.Keys, x2.Keys)
	parallelRows(ctx, len(x1.Paths), func(i int) {
		lo1, hi1 := x1.LeafSet(i)
		for j := range x2.Paths {
			lo2, hi2 := x2.LeafSet(j)
			out.Set(i, j, combineSets(lm.comb, hi1-lo1, hi2-lo2, func(a, b int) float64 {
				return leafSims[(lo1+a)*nl2+(lo2+b)]
			}))
		}
	})
	return out
}
