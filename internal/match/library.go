package match

import (
	"fmt"
	"sort"
)

// Library is COMA's extensible matcher library: a registry from which
// match strategies pick the matchers to execute. New matchers can be
// registered and used in combination with the existing ones.
type Library struct {
	factories map[string]func() Matcher
}

// NewLibrary returns a library pre-populated with all matchers the
// paper implements (Table 3) except the reuse-oriented Schema matcher,
// which needs a repository and is provided by package reuse.
func NewLibrary() *Library {
	l := &Library{factories: make(map[string]func() Matcher)}
	// Simple matchers.
	l.Register("Affix", func() Matcher { return Affix() })
	l.Register("Digram", func() Matcher { return NGram(2) })
	l.Register("Trigram", func() Matcher { return Trigram() })
	l.Register("EditDistance", func() Matcher { return EditDistance() })
	l.Register("Soundex", func() Matcher { return Soundex() })
	l.Register("Synonym", func() Matcher { return Synonym() })
	l.Register("Taxonomy", func() Matcher { return Taxonomy() })
	l.Register("DataType", func() Matcher { return DataTypeMatcher{} })
	// Hybrid matchers.
	l.Register("Name", func() Matcher { return NewName() })
	l.Register("NamePath", func() Matcher { return NewNamePath() })
	l.Register("TypeName", func() Matcher { return NewTypeName() })
	l.Register("Children", func() Matcher { return NewChildren() })
	l.Register("Leaves", func() Matcher { return NewLeaves() })
	return l
}

// Register adds (or replaces) a matcher factory under the given name.
func (l *Library) Register(name string, factory func() Matcher) {
	l.factories[name] = factory
}

// New instantiates the named matcher.
func (l *Library) New(name string) (Matcher, error) {
	f, ok := l.factories[name]
	if !ok {
		return nil, fmt.Errorf("match: unknown matcher %q (have %v)", name, l.Names())
	}
	return f(), nil
}

// NewSet instantiates several matchers by name.
func (l *Library) NewSet(names ...string) ([]Matcher, error) {
	out := make([]Matcher, 0, len(names))
	for _, n := range names {
		m, err := l.New(n)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Names lists the registered matcher names, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.factories))
	for n := range l.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HybridNames returns the five hybrid matchers evaluated in Section 7.
func HybridNames() []string {
	return []string{"Name", "NamePath", "TypeName", "Children", "Leaves"}
}
