// Package reuse implements COMA's reuse-oriented matching (Do & Rahm,
// VLDB 2002, Section 5): the MatchCompose operation deriving a new
// match result from existing ones transitively sharing a schema, the
// Schema matcher reusing match results at the level of entire schemas,
// and a Fragment matcher transferring correspondences of shared schema
// fragments.
package reuse

import (
	"repro/internal/simcube"
)

// ComposeSim folds the two similarity values along a transitive
// composition step into one. The paper rejects multiplication (rapidly
// degrading values: 0.5·0.7 = 0.35 for contactFirstName↔Name↔firstName)
// in favour of the aggregation alternatives; Average is the default,
// yielding 0.6 in that example.
type ComposeSim int

const (
	// ComposeAverage averages the two similarities (default).
	ComposeAverage ComposeSim = iota
	// ComposeMin takes the pessimistic minimum.
	ComposeMin
	// ComposeProduct multiplies, for comparison with the rejected
	// information-retrieval practice.
	ComposeProduct
)

func (c ComposeSim) apply(a, b float64) float64 {
	switch c {
	case ComposeAverage:
		return (a + b) / 2
	case ComposeMin:
		if a < b {
			return a
		}
		return b
	case ComposeProduct:
		return a * b
	default:
		return 0
	}
}

// String returns the strategy name.
func (c ComposeSim) String() string {
	switch c {
	case ComposeAverage:
		return "Average"
	case ComposeMin:
		return "Min"
	case ComposeProduct:
		return "Product"
	default:
		return "Unknown"
	}
}

// MatchCompose derives a new match result match: S1↔S3 from match1:
// S1↔S2 and match2: S2↔S3 sharing schema S2, assuming a transitive
// nature of the similarity relation. In the relational representation
// (paper Figure 3c) this is the natural join of the two input tables on
// the shared schema's elements; similarities combine via sim.
//
// When several join paths produce the same (S1, S3) pair, the maximal
// composed similarity is kept. Elements of S1 or S3 without a match
// counterpart in S2 are necessarily missed, and m:n join fan-out may
// return undesirable correspondences (paper Figure 4); combining
// multiple MatchCompose results compensates both effects.
func MatchCompose(match1, match2 *simcube.Mapping, sim ComposeSim) *simcube.Mapping {
	out := simcube.NewMapping(match1.FromSchema, match2.ToSchema)
	// Index match2 by its S2-side element for the join.
	byFrom := make(map[string][]simcube.Correspondence)
	for _, c := range match2.Correspondences() {
		byFrom[c.From] = append(byFrom[c.From], c)
	}
	for _, c1 := range match1.Correspondences() {
		for _, c2 := range byFrom[c1.To] {
			v := sim.apply(c1.Sim, c2.Sim)
			if prev, ok := out.Get(c1.From, c2.To); !ok || v > prev {
				out.Add(c1.From, c2.To, v)
			}
		}
	}
	return out
}
