package reuse

import (
	"sort"

	"repro/internal/simcube"
)

// Store provides access to the previously obtained match results
// maintained in the repository. Implementations must return mappings
// normalized to the requested direction.
type Store interface {
	// SchemaNames lists all schema names that appear in stored
	// mappings, sorted.
	SchemaNames() []string
	// MappingsBetween returns the stored mappings between the two named
	// schemas, inverted if necessary so that FromSchema == from. The
	// result is empty when none exist.
	MappingsBetween(from, to string) []*simcube.Mapping
	// AllMappings returns every stored mapping.
	AllMappings() []*simcube.Mapping
}

// MemStore is an in-memory Store, used directly in tests and embedded
// by the repository-backed store. The zero value is empty and usable.
type MemStore struct {
	mappings []*simcube.Mapping
}

// Put stores a mapping. Mappings accumulate; the Schema matcher
// considers every stored pair of results.
func (s *MemStore) Put(m *simcube.Mapping) { s.mappings = append(s.mappings, m) }

// SchemaNames implements Store.
func (s *MemStore) SchemaNames() []string {
	seen := make(map[string]bool)
	for _, m := range s.mappings {
		seen[m.FromSchema] = true
		seen[m.ToSchema] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MappingsBetween implements Store.
func (s *MemStore) MappingsBetween(from, to string) []*simcube.Mapping {
	var out []*simcube.Mapping
	for _, m := range s.mappings {
		switch {
		case m.FromSchema == from && m.ToSchema == to:
			out = append(out, m)
		case m.FromSchema == to && m.ToSchema == from:
			out = append(out, m.Invert())
		}
	}
	return out
}

// AllMappings implements Store.
func (s *MemStore) AllMappings() []*simcube.Mapping { return s.mappings }

// Len returns the number of stored mappings.
func (s *MemStore) Len() int { return len(s.mappings) }
