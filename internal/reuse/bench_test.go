package reuse

import (
	"fmt"
	"testing"

	"repro/internal/match"
	"repro/internal/simcube"
	"repro/internal/workload"
)

// benchStore holds gold mappings for all workload tasks (the SchemaM
// configuration).
func benchStore() *MemStore {
	var s MemStore
	for _, t := range workload.Tasks() {
		s.Put(t.Gold)
	}
	return &s
}

func BenchmarkMatchCompose(b *testing.B) {
	tasks := workload.Tasks()
	m1 := tasks[0].Gold // 1<->2
	m2 := tasks[4].Gold // 2<->3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatchCompose(m1, m2, ComposeAverage)
	}
}

func BenchmarkSchemaMatcher(b *testing.B) {
	store := benchStore()
	t := workload.Tasks()[9] // largest task
	sm := NewSchemaMatcher("SchemaM", store)
	ctx := match.NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sm.Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkFragmentMatcher(b *testing.B) {
	store := benchStore()
	t := workload.Tasks()[9]
	fm := NewFragmentMatcher("Fragment", store)
	ctx := match.NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fm.Match(ctx, t.S1, t.S2)
	}
}

func BenchmarkMatchComposeFanOut(b *testing.B) {
	// Worst-case m:n join: every element relates to every intermediate.
	m1 := simcube.NewMapping("A", "B")
	m2 := simcube.NewMapping("B", "C")
	for i := 0; i < 50; i++ {
		for j := 0; j < 4; j++ {
			m1.Add(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j), 0.8)
			m2.Add(fmt.Sprintf("b%d", j), fmt.Sprintf("c%d", i), 0.8)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatchCompose(m1, m2, ComposeAverage)
	}
}
