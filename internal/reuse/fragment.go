package reuse

import (
	"strings"

	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// FragmentMatcher is the reuse-oriented Fragment matcher (paper Section
// 5): where the Schema matcher reuses match results for entire schemas,
// Fragment operates on schema fragments. Schemas from the same
// application domain usually contain many similar fragments (Address,
// Contact, Item, ...), so confirmed correspondences for one fragment
// can be transferred to structurally identical occurrences in other
// schemas.
//
// The transfer rule: a stored correspondence (px ↔ py, sim) applies to
// a pair (p1, p2) of the current match task when p1 shares a fragment
// suffix (at least minSuffix trailing path segments) with px and p2
// shares one with py. Transferred similarities are damped by a factor
// per missing full-path agreement, reflecting the weaker evidence of a
// fragment-level reuse.
type FragmentMatcher struct {
	name  string
	store Store
	// minSuffix is the minimal number of trailing segments that must
	// agree for a fragment transfer (default 2, e.g. "Address.City").
	minSuffix int
	// damping scales similarities transferred via fragments rather than
	// identical full paths (default 0.9).
	damping float64
}

// NewFragmentMatcher returns a Fragment matcher reading from store with
// the default suffix length 2 and damping 0.9.
func NewFragmentMatcher(name string, store Store) *FragmentMatcher {
	return &FragmentMatcher{name: name, store: store, minSuffix: 2, damping: 0.9}
}

// Name implements match.Matcher.
func (fm *FragmentMatcher) Name() string { return fm.name }

// suffixKey returns the last n segments of a dotted path, or "" when
// the path is shorter than n segments.
func suffixKey(path string, n int) string {
	parts := strings.Split(path, ".")
	if len(parts) < n {
		return ""
	}
	return strings.Join(parts[len(parts)-n:], ".")
}

// Match implements match.Matcher: correspondences of every stored
// mapping not involving s1 or s2 directly are transferred by fragment
// suffix. The maximal transferred similarity per pair wins. Element
// keys come from the schemas' shared analysis indexes.
func (fm *FragmentMatcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	rows, cols := ctx.Index(s1).Keys, ctx.Index(s2).Keys
	out := simcube.NewMatrix(rows, cols)

	// Fragment index for the current task's paths.
	rowsBySuffix := make(map[string][]int)
	for i, k := range rows {
		if sk := suffixKey(k, fm.minSuffix); sk != "" {
			rowsBySuffix[sk] = append(rowsBySuffix[sk], i)
		}
	}
	colsBySuffix := make(map[string][]int)
	for j, k := range cols {
		if sk := suffixKey(k, fm.minSuffix); sk != "" {
			colsBySuffix[sk] = append(colsBySuffix[sk], j)
		}
	}

	apply := func(from, to string, sim float64) {
		sf, st := suffixKey(from, fm.minSuffix), suffixKey(to, fm.minSuffix)
		if sf == "" || st == "" {
			return
		}
		for _, i := range rowsBySuffix[sf] {
			for _, j := range colsBySuffix[st] {
				v := sim * fm.damping
				if rows[i] == from && cols[j] == to {
					v = sim // exact path agreement: full evidence
				}
				if v > out.Get(i, j) {
					out.Set(i, j, v)
				}
			}
		}
	}

	for _, m := range fm.store.AllMappings() {
		// Skip mappings of the task itself: reuse must predict from
		// other tasks' results.
		if (m.FromSchema == s1.Name && m.ToSchema == s2.Name) ||
			(m.FromSchema == s2.Name && m.ToSchema == s1.Name) {
			continue
		}
		for _, c := range m.Correspondences() {
			apply(c.From, c.To, c.Sim)
			apply(c.To, c.From, c.Sim)
		}
	}
	return out
}
