package reuse

import (
	"repro/internal/combine"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// SchemaMatcher is the reuse-oriented Schema matcher (paper Section
// 5.2): given two schemas S1 and S2, it identifies every schema S for
// which the repository holds a pair of match results relating S with
// both S1 and S2 (in any order), applies MatchCompose to each such pair
// to produce an S1↔S2 match result, and combines the multiple results
// by aggregation into the similarity matrix stored in the cube.
type SchemaMatcher struct {
	name    string
	store   Store
	compose ComposeSim
	agg     combine.AggSpec
}

// NewSchemaMatcher returns a Schema matcher reading from store,
// composing with Average and aggregating multiple composition results
// with Average. The display name distinguishes variants such as
// "SchemaM" (reusing manually confirmed results) and "SchemaA"
// (reusing automatically derived results); the variants differ only in
// which mappings their store holds.
func NewSchemaMatcher(name string, store Store) *SchemaMatcher {
	return &SchemaMatcher{
		name:    name,
		store:   store,
		compose: ComposeAverage,
		agg:     combine.AggSpec{Kind: combine.Average},
	}
}

// SetCompose overrides the transitive similarity combination.
func (sm *SchemaMatcher) SetCompose(c ComposeSim) { sm.compose = c }

// SetAggregation overrides the aggregation of multiple MatchCompose
// results.
func (sm *SchemaMatcher) SetAggregation(a combine.AggSpec) { sm.agg = a }

// Name implements match.Matcher.
func (sm *SchemaMatcher) Name() string { return sm.name }

// Compositions returns the MatchCompose results for every usable pair
// of stored mappings relating s1 and s2 through an intermediate schema.
func (sm *SchemaMatcher) Compositions(s1Name, s2Name string) []*simcube.Mapping {
	var out []*simcube.Mapping
	for _, mid := range sm.store.SchemaNames() {
		if mid == s1Name || mid == s2Name {
			continue
		}
		left := sm.store.MappingsBetween(s1Name, mid)
		right := sm.store.MappingsBetween(mid, s2Name)
		for _, m1 := range left {
			for _, m2 := range right {
				out = append(out, MatchCompose(m1, m2, sm.compose))
			}
		}
	}
	return out
}

// Match implements match.Matcher: the aggregated MatchCompose results
// over all intermediate schemas. Directly stored S1↔S2 results are
// deliberately not consulted — the matcher predicts matches from
// *other* tasks' results, which is what the evaluation measures.
// Element keys and path resolution come from the schemas' shared
// analysis indexes instead of re-deriving path strings and key maps
// per call.
func (sm *SchemaMatcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	rows, cols := x1.Keys, x2.Keys
	comps := sm.Compositions(s1.Name, s2.Name)
	if len(comps) == 0 {
		return simcube.NewMatrix(rows, cols)
	}
	cube := simcube.NewCube(rows, cols)
	for i, comp := range comps {
		layer := cube.NewLayer(sm.name + "#" + string(rune('0'+i%10)))
		for _, c := range comp.Correspondences() {
			i1, j1 := x1.PathIndex(c.From), x2.PathIndex(c.To)
			if i1 >= 0 && j1 >= 0 {
				layer.Set(i1, j1, c.Sim)
			}
		}
	}
	m, err := sm.agg.Apply(cube)
	if err != nil {
		return simcube.NewMatrix(rows, cols)
	}
	return m
}
