package reuse

import (
	"math"
	"testing"

	"repro/internal/combine"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// figure3Mappings builds match1: PO1↔PO2 and match2: PO2↔PO3 from the
// paper's Figure 3.
func figure3Mappings() (*simcube.Mapping, *simcube.Mapping) {
	m1 := simcube.NewMapping("PO1", "PO2")
	m1.Add("Contact.Name", "Contact.name", 1.0)
	m1.Add("Contact.Email", "Contact.e-mail", 1.0)
	m2 := simcube.NewMapping("PO2", "PO3")
	m2.Add("Contact.name", "Contact.firstName", 0.6)
	m2.Add("Contact.name", "Contact.lastName", 0.6)
	m2.Add("Contact.e-mail", "Contact.email", 1.0)
	return m1, m2
}

func TestMatchComposeFigure3(t *testing.T) {
	m1, m2 := figure3Mappings()
	got := MatchCompose(m1, m2, ComposeAverage)
	if got.FromSchema != "PO1" || got.ToSchema != "PO3" {
		t.Fatalf("schemas = %s, %s", got.FromSchema, got.ToSchema)
	}
	// Figure 3b: Name↔firstName 0.8, Name↔lastName 0.8, Email↔email 1.0.
	if sim, ok := got.Get("Contact.Name", "Contact.firstName"); !ok || math.Abs(sim-0.8) > 1e-12 {
		t.Errorf("Name/firstName = %.2f, %v", sim, ok)
	}
	if sim, ok := got.Get("Contact.Name", "Contact.lastName"); !ok || math.Abs(sim-0.8) > 1e-12 {
		t.Errorf("Name/lastName = %.2f, %v", sim, ok)
	}
	if sim, ok := got.Get("Contact.Email", "Contact.email"); !ok || sim != 1.0 {
		t.Errorf("Email/email = %.2f, %v", sim, ok)
	}
	// company has no PO2 counterpart: missed (paper's stated limitation).
	if got.Contains("Contact.company", "Contact.company") {
		t.Error("company should be missed by composition")
	}
	if got.Len() != 3 {
		t.Errorf("Len = %d, want 3", got.Len())
	}
}

func TestComposeSimStrategies(t *testing.T) {
	// The paper's contactFirstName ←0.5→ Name ←0.7→ firstName example.
	m1 := simcube.NewMapping("A", "B")
	m1.Add("contactFirstName", "Name", 0.5)
	m2 := simcube.NewMapping("B", "C")
	m2.Add("Name", "firstName", 0.7)

	avg := MatchCompose(m1, m2, ComposeAverage)
	if sim, _ := avg.Get("contactFirstName", "firstName"); math.Abs(sim-0.6) > 1e-12 {
		t.Errorf("Average = %.2f, want 0.6", sim)
	}
	prod := MatchCompose(m1, m2, ComposeProduct)
	if sim, _ := prod.Get("contactFirstName", "firstName"); math.Abs(sim-0.35) > 1e-12 {
		t.Errorf("Product = %.2f, want 0.35 (the rejected multiply)", sim)
	}
	mn := MatchCompose(m1, m2, ComposeMin)
	if sim, _ := mn.Get("contactFirstName", "firstName"); sim != 0.5 {
		t.Errorf("Min = %.2f, want 0.5", sim)
	}
	if ComposeAverage.String() != "Average" || ComposeMin.String() != "Min" || ComposeProduct.String() != "Product" {
		t.Error("ComposeSim names wrong")
	}
}

func TestMatchComposeFanOut(t *testing.T) {
	// Figure 4: composition returns all possible matches, m:n fan-out.
	m1 := simcube.NewMapping("PO1", "PO2")
	m1.Add("ShipTo.Contact", "Contact", 1)
	m1.Add("BillTo.Contact", "Contact", 1)
	m2 := simcube.NewMapping("PO2", "PO3")
	m2.Add("Contact", "DeliverTo.Contact", 1)
	m2.Add("Contact", "InvoiceTo.Contact", 1)
	got := MatchCompose(m1, m2, ComposeAverage)
	if got.Len() != 4 {
		t.Errorf("fan-out Len = %d, want 4 (all combinations)", got.Len())
	}
}

func TestMatchComposeKeepsBestJoinPath(t *testing.T) {
	m1 := simcube.NewMapping("A", "B")
	m1.Add("x", "b1", 0.4)
	m1.Add("x", "b2", 1.0)
	m2 := simcube.NewMapping("B", "C")
	m2.Add("b1", "y", 0.4)
	m2.Add("b2", "y", 1.0)
	got := MatchCompose(m1, m2, ComposeAverage)
	if sim, _ := got.Get("x", "y"); sim != 1.0 {
		t.Errorf("best join path = %.2f, want 1.0", sim)
	}
}

func TestMemStore(t *testing.T) {
	var s MemStore
	m := simcube.NewMapping("A", "B")
	m.Add("x", "y", 1)
	s.Put(m)
	if s.Len() != 1 || len(s.AllMappings()) != 1 {
		t.Fatal("Put/Len broken")
	}
	names := s.SchemaNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("SchemaNames = %v", names)
	}
	// Forward direction.
	fwd := s.MappingsBetween("A", "B")
	if len(fwd) != 1 || !fwd[0].Contains("x", "y") {
		t.Fatal("forward lookup failed")
	}
	// Reverse lookup inverts.
	rev := s.MappingsBetween("B", "A")
	if len(rev) != 1 || !rev[0].Contains("y", "x") {
		t.Fatal("reverse lookup should invert")
	}
	if got := s.MappingsBetween("A", "Z"); len(got) != 0 {
		t.Fatal("unrelated lookup should be empty")
	}
}

func twoNodeSchema(name string, elems ...string) *schema.Schema {
	s := schema.New(name)
	parent := schema.NewNode("Contact")
	for _, e := range elems {
		parent.AddChild(&schema.Node{Name: e, TypeName: "xsd:string"})
	}
	s.Root.AddChild(parent)
	return s
}

func TestSchemaMatcher(t *testing.T) {
	// PO1↔PO2 and PO2↔PO3 stored; match PO1 against PO3.
	var store MemStore
	m1, m2 := figure3Mappings()
	store.Put(m1)
	store.Put(m2)

	s1 := twoNodeSchema("PO1", "Name", "Email", "company")
	s3 := twoNodeSchema("PO3", "firstName", "lastName", "email", "company")

	sm := NewSchemaMatcher("Schema", &store)
	comps := sm.Compositions("PO1", "PO3")
	if len(comps) != 1 {
		t.Fatalf("Compositions = %d, want 1", len(comps))
	}
	ctx := match.NewContext()
	res := sm.Match(ctx, s1, s3)
	if got := res.GetKey("Contact.Email", "Contact.email"); got != 1 {
		t.Errorf("Email/email = %.2f, want 1", got)
	}
	if got := res.GetKey("Contact.Name", "Contact.firstName"); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Name/firstName = %.2f, want 0.8", got)
	}
	if got := res.GetKey("Contact.company", "Contact.company"); got != 0 {
		t.Errorf("company transfer = %.2f, want 0 (missed)", got)
	}
}

func TestSchemaMatcherMultipleIntermediates(t *testing.T) {
	var store MemStore
	// Two intermediates, only one of which knows about pair (a, z).
	viaB1 := simcube.NewMapping("S1", "B")
	viaB1.Add("Contact.a", "Contact.b", 1)
	viaB2 := simcube.NewMapping("B", "S2")
	viaB2.Add("Contact.b", "Contact.z", 1)
	store.Put(viaB1)
	store.Put(viaB2)
	viaC1 := simcube.NewMapping("S1", "C")
	viaC1.Add("Contact.a", "Contact.c", 1)
	viaC2 := simcube.NewMapping("C", "S2")
	// C's mapping misses the counterpart for Contact.c entirely.
	viaC2.Add("Contact.other", "Contact.w", 1)
	store.Put(viaC1)
	store.Put(viaC2)

	s1 := twoNodeSchema("S1", "a", "other")
	s2 := twoNodeSchema("S2", "z", "w")
	sm := NewSchemaMatcher("Schema", &store)
	if got := len(sm.Compositions("S1", "S2")); got != 2 {
		t.Fatalf("Compositions = %d, want 2", got)
	}
	res := sm.Match(match.NewContext(), s1, s2)
	// Average over two layers: one contributes 1.0, the other 0.
	if got := res.GetKey("Contact.a", "Contact.z"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("averaged reuse = %.2f, want 0.5", got)
	}
	// Min aggregation zeroes it out.
	sm.SetAggregation(combine.AggSpec{Kind: combine.Min})
	res = sm.Match(match.NewContext(), s1, s2)
	if got := res.GetKey("Contact.a", "Contact.z"); got != 0 {
		t.Errorf("Min-aggregated reuse = %.2f, want 0", got)
	}
}

func TestSchemaMatcherNoIntermediates(t *testing.T) {
	var store MemStore
	// Only a direct S1↔S2 mapping: Schema must not consult it.
	direct := simcube.NewMapping("S1", "S2")
	direct.Add("Contact.a", "Contact.z", 1)
	store.Put(direct)
	s1 := twoNodeSchema("S1", "a")
	s2 := twoNodeSchema("S2", "z")
	sm := NewSchemaMatcher("Schema", &store)
	res := sm.Match(match.NewContext(), s1, s2)
	if got := res.GetKey("Contact.a", "Contact.z"); got != 0 {
		t.Errorf("direct mapping leaked into reuse: %.2f", got)
	}
	if sm.Name() != "Schema" {
		t.Error("Name wrong")
	}
}

func TestSchemaMatcherComposeOverride(t *testing.T) {
	var store MemStore
	m1 := simcube.NewMapping("S1", "B")
	m1.Add("Contact.a", "Contact.b", 0.5)
	m2 := simcube.NewMapping("B", "S2")
	m2.Add("Contact.b", "Contact.z", 0.7)
	store.Put(m1)
	store.Put(m2)
	s1 := twoNodeSchema("S1", "a")
	s2 := twoNodeSchema("S2", "z")
	sm := NewSchemaMatcher("Schema", &store)
	sm.SetCompose(ComposeProduct)
	res := sm.Match(match.NewContext(), s1, s2)
	if got := res.GetKey("Contact.a", "Contact.z"); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("product compose = %.2f, want 0.35", got)
	}
}

func TestFragmentMatcher(t *testing.T) {
	var store MemStore
	// A confirmed mapping from an unrelated task with an Address
	// fragment correspondence.
	prior := simcube.NewMapping("X", "Y")
	prior.Add("Vendor.Address.City", "Seller.Address.Town", 1.0)
	store.Put(prior)

	// S1/S2 both contain Address fragments with the same suffixes.
	build := func(name, top string, leaf string) *schema.Schema {
		s := schema.New(name)
		t1 := schema.NewNode(top)
		addr := schema.NewNode("Address")
		addr.AddChild(&schema.Node{Name: leaf, TypeName: "xsd:string"})
		t1.AddChild(addr)
		s.Root.AddChild(t1)
		return s
	}
	s1 := build("S1", "Buyer", "City")
	s2 := build("S2", "Customer", "Town")

	fm := NewFragmentMatcher("Fragment", &store)
	if fm.Name() != "Fragment" {
		t.Error("Name wrong")
	}
	res := fm.Match(match.NewContext(), s1, s2)
	got := res.GetKey("Buyer.Address.City", "Customer.Address.Town")
	if math.Abs(got-0.9) > 1e-12 {
		t.Errorf("fragment transfer = %.2f, want 0.9 (damped)", got)
	}
	// Unrelated suffixes get nothing.
	if res.GetKey("Buyer.Address", "Customer.Address.Town") != 0 {
		t.Error("non-matching suffix should not transfer")
	}
}

func TestFragmentMatcherSkipsOwnTask(t *testing.T) {
	var store MemStore
	direct := simcube.NewMapping("S1", "S2")
	direct.Add("Buyer.Address.City", "Customer.Address.Town", 1.0)
	store.Put(direct)
	s1 := schema.New("S1")
	a := schema.NewNode("Buyer")
	addr := schema.NewNode("Address")
	addr.AddChild(&schema.Node{Name: "City"})
	a.AddChild(addr)
	s1.Root.AddChild(a)
	s2 := schema.New("S2")
	b := schema.NewNode("Customer")
	addr2 := schema.NewNode("Address")
	addr2.AddChild(&schema.Node{Name: "Town"})
	b.AddChild(addr2)
	s2.Root.AddChild(b)

	fm := NewFragmentMatcher("Fragment", &store)
	res := fm.Match(match.NewContext(), s1, s2)
	if res.GetKey("Buyer.Address.City", "Customer.Address.Town") != 0 {
		t.Error("own task's mapping must be excluded from reuse")
	}
}

func TestFragmentExactPathUndamped(t *testing.T) {
	var store MemStore
	prior := simcube.NewMapping("X", "Y")
	prior.Add("Buyer.Address.City", "Customer.Address.Town", 1.0)
	store.Put(prior)
	s1 := schema.New("S1")
	a := schema.NewNode("Buyer")
	addr := schema.NewNode("Address")
	addr.AddChild(&schema.Node{Name: "City"})
	a.AddChild(addr)
	s1.Root.AddChild(a)
	s2 := schema.New("S2")
	b := schema.NewNode("Customer")
	addr2 := schema.NewNode("Address")
	addr2.AddChild(&schema.Node{Name: "Town"})
	b.AddChild(addr2)
	s2.Root.AddChild(b)
	fm := NewFragmentMatcher("Fragment", &store)
	res := fm.Match(match.NewContext(), s1, s2)
	if got := res.GetKey("Buyer.Address.City", "Customer.Address.Town"); got != 1 {
		t.Errorf("exact path transfer = %.2f, want 1 (undamped)", got)
	}
}

func TestSuffixKey(t *testing.T) {
	if suffixKey("a.b.c", 2) != "b.c" {
		t.Error("suffixKey(a.b.c, 2)")
	}
	if suffixKey("a", 2) != "" {
		t.Error("short path should have no suffix key")
	}
	if suffixKey("a.b", 2) != "a.b" {
		t.Error("exact length suffix")
	}
}
