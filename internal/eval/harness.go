package eval

import (
	"fmt"
	"sync"

	"repro/internal/combine"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/reuse"
	"repro/internal/simcube"
	"repro/internal/workload"
)

// Harness executes evaluation series over the ten match tasks. Matcher
// results (cube layers) and aggregated matrices are cached so that the
// exhaustive strategy grid reuses each expensive matcher execution —
// the same role the similarity-cube repository plays in COMA itself.
//
// The harness is safe for concurrent use.
type Harness struct {
	Ctx   *match.Context
	Tasks []workload.Task

	mu       sync.Mutex
	matrices map[string]*simcube.Matrix // task|matcher|comb
	aggs     map[string]*simcube.Matrix // task|set|agg|comb

	manual   *reuse.MemStore
	autoOnce sync.Once
	auto     *reuse.MemStore
}

// NewHarness prepares a harness over the standard workload with the
// default matcher context. The manual-reuse store is seeded with the
// gold mappings of all tasks (the paper stores the manually derived
// match results in the repository).
func NewHarness() *Harness {
	h := &Harness{
		Ctx:      match.NewContext(),
		Tasks:    workload.Tasks(),
		matrices: make(map[string]*simcube.Matrix),
		aggs:     make(map[string]*simcube.Matrix),
		manual:   &reuse.MemStore{},
	}
	for _, t := range h.Tasks {
		h.manual.Put(t.Gold)
	}
	return h
}

// autoStore lazily derives the automatically matched mappings the
// SchemaA variant reuses: the default match operation applied to every
// task, stored alongside the manual results (paper Section 7.3).
func (h *Harness) autoStore() *reuse.MemStore {
	h.autoOnce.Do(func() {
		h.auto = &reuse.MemStore{}
		def := combine.Default()
		for _, t := range h.Tasks {
			cube := h.cubeFor(t, AllCombo, def.Comb)
			res, err := core.CombineCube(cube, t.S1, t.S2, def, nil)
			if err != nil {
				panic(fmt.Sprintf("eval: default op on %s: %v", t.Name, err))
			}
			h.auto.Put(res.Mapping)
		}
	})
	return h.auto
}

// newMatcher instantiates a matcher by evaluation name, configured for
// the given combined-similarity strategy.
func (h *Harness) newMatcher(name string, comb combine.CombSim) match.Matcher {
	switch name {
	case "Name":
		m := match.NewName()
		m.SetCombSim(comb)
		return m
	case "NamePath":
		m := match.NewNamePath()
		m.SetCombSim(comb)
		return m
	case "TypeName":
		m := match.NewTypeName()
		m.SetCombSim(comb)
		return m
	case "Children":
		m := match.NewChildren()
		m.SetCombSim(comb)
		return m
	case "Leaves":
		m := match.NewLeaves()
		m.SetCombSim(comb)
		return m
	case "SchemaM":
		return reuse.NewSchemaMatcher("SchemaM", h.manual)
	case "SchemaA":
		return reuse.NewSchemaMatcher("SchemaA", h.autoStore())
	default:
		panic(fmt.Sprintf("eval: unknown matcher %q", name))
	}
}

// isReuseMatcher reports whether the matcher's result is independent of
// the CombSim setting (reuse matchers have no step-3 internals).
func isReuseMatcher(name string) bool { return name == "SchemaM" || name == "SchemaA" }

// MatcherMatrix returns (computing and caching on demand) the matcher's
// similarity matrix for a task.
func (h *Harness) MatcherMatrix(t workload.Task, name string, comb combine.CombSim) *simcube.Matrix {
	key := t.Name + "|" + name
	if !isReuseMatcher(name) {
		key += "|" + comb.String()
	}
	h.mu.Lock()
	m, ok := h.matrices[key]
	h.mu.Unlock()
	if ok {
		return m
	}
	// Compute outside the lock; duplicate computation under contention
	// is harmless (identical results).
	matcher := h.newMatcher(name, comb)
	m = matcher.Match(h.Ctx, t.S1, t.S2)
	h.mu.Lock()
	h.matrices[key] = m
	h.mu.Unlock()
	return m
}

// cubeFor assembles the similarity cube of a matcher set from cached
// layers.
func (h *Harness) cubeFor(t workload.Task, set []string, comb combine.CombSim) *simcube.Cube {
	first := h.MatcherMatrix(t, set[0], comb)
	cube := simcube.NewCube(first.RowKeys(), first.ColKeys())
	if err := cube.AddLayer(set[0], first); err != nil {
		panic(err)
	}
	for _, name := range set[1:] {
		if err := cube.AddLayer(name, h.MatcherMatrix(t, name, comb)); err != nil {
			panic(err)
		}
	}
	return cube
}

// aggMatrix returns the aggregated matrix for (task, set, agg, comb),
// cached.
func (h *Harness) aggMatrix(t workload.Task, set []string, agg combine.AggSpec, comb combine.CombSim) *simcube.Matrix {
	key := t.Name + "|" + SetLabel(set) + "|" + agg.String() + "|" + comb.String()
	h.mu.Lock()
	m, ok := h.aggs[key]
	h.mu.Unlock()
	if ok {
		return m
	}
	cube := h.cubeFor(t, set, comb)
	m, err := agg.Apply(cube)
	if err != nil {
		panic(fmt.Sprintf("eval: aggregate %s: %v", key, err))
	}
	h.mu.Lock()
	h.aggs[key] = m
	h.mu.Unlock()
	return m
}

// SeriesResult is the outcome of one series: ten experiments and their
// averages.
type SeriesResult struct {
	Spec    SeriesSpec
	PerTask []Quality
	Avg     Quality
}

// RunTask executes one experiment: the series' strategy on one task.
func (h *Harness) RunTask(spec SeriesSpec, t workload.Task) Quality {
	m := h.aggMatrix(t, spec.Matchers, spec.Strategy.Agg, spec.Strategy.Comb)
	pred := combine.Select(m, spec.Strategy.Dir, spec.Strategy.Sel)
	return Evaluate(pred, t.Gold)
}

// RunSeries executes one series over all tasks.
func (h *Harness) RunSeries(spec SeriesSpec) SeriesResult {
	res := SeriesResult{Spec: spec, PerTask: make([]Quality, len(h.Tasks))}
	for i, t := range h.Tasks {
		res.PerTask[i] = h.RunTask(spec, t)
	}
	res.Avg = Average(res.PerTask)
	return res
}

// Precompute executes every matcher needed by the full grid;
// subsequent series runs then only aggregate and select. It returns
// the number of matcher matrices computed.
//
// The worker knob follows the engine-wide core.Config.Workers
// semantics: workers <= 0 means runtime.NumCPU(), 1 forces sequential
// execution. The fan-out itself runs on the match engine's shared
// work-distribution primitive rather than a private goroutine pool,
// and every matcher execution goes through the harness context's
// analysis cache, so each workload schema is analyzed exactly once
// across the whole grid.
func (h *Harness) Precompute(workers int) int {
	type job struct {
		t    workload.Task
		name string
		comb combine.CombSim
	}
	var jobs []job
	for _, t := range h.Tasks {
		for _, name := range HybridMatchers() {
			for _, comb := range CombSims() {
				jobs = append(jobs, job{t, name, comb})
			}
		}
	}
	match.ParallelRows(h.Ctx.WithWorkers(match.ResolveWorkers(workers)), len(jobs), func(k int) {
		j := jobs[k]
		h.MatcherMatrix(j.t, j.name, j.comb)
	})
	// Reuse matrices depend on the auto store, which itself needs the
	// hybrid layers above; compute serially afterwards.
	n := len(jobs)
	for _, t := range h.Tasks {
		for _, name := range []string{"SchemaM", "SchemaA"} {
			h.MatcherMatrix(t, name, combine.CombAverage)
			n++
		}
	}
	return n
}

// RunAll executes a list of series, optionally in parallel, reporting
// progress through report (may be nil); it is called with the number of
// completed series at coarse intervals. Like Precompute it delegates
// the fan-out to the match engine's work-distribution primitive with
// the core.Config.Workers semantics (workers <= 0 means NumCPU).
func (h *Harness) RunAll(specs []SeriesSpec, workers int, report func(done int)) []SeriesResult {
	out := make([]SeriesResult, len(specs))
	var done int64
	var mu sync.Mutex
	match.ParallelRows(h.Ctx.WithWorkers(match.ResolveWorkers(workers)), len(specs), func(i int) {
		out[i] = h.RunSeries(specs[i])
		if report != nil {
			mu.Lock()
			done++
			if done%500 == 0 {
				report(int(done))
			}
			mu.Unlock()
		}
	})
	return out
}
