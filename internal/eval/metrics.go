// Package eval implements COMA's evaluation framework (Do & Rahm, VLDB
// 2002, Section 7): the match quality measures Precision, Recall and
// Overall, the exhaustive series grid of Table 6 (12,312 series over
// the ten match tasks), and the data behind every evaluation figure.
package eval

import (
	"repro/internal/simcube"
)

// Quality holds the match quality measures of one experiment: the
// automatic result P is compared against the real matches R, giving
// the true positives I (correctly identified), false positives F = P\I
// (wrongly proposed) and false negatives M = R\I (missed).
type Quality struct {
	TruePos  int // |I|
	FalsePos int // |F|
	FalseNeg int // |M|

	// Precision = |I| / |P| estimates the reliability of the match
	// predictions.
	Precision float64
	// Recall = |I| / |R| specifies the share of real matches found.
	Recall float64
	// Overall = Recall · (2 − 1/Precision) combines both, accounting
	// for the post-match effort of removing false and adding missed
	// matches. It turns negative when Precision < 0.5 — the automatic
	// match is then worse than useless.
	Overall float64
}

// Evaluate compares a predicted mapping against the gold standard.
func Evaluate(pred, gold *simcube.Mapping) Quality {
	var q Quality
	for _, c := range pred.Correspondences() {
		if gold.Contains(c.From, c.To) {
			q.TruePos++
		} else {
			q.FalsePos++
		}
	}
	q.FalseNeg = gold.Len() - q.TruePos
	if p := q.TruePos + q.FalsePos; p > 0 {
		q.Precision = float64(q.TruePos) / float64(p)
	}
	if r := gold.Len(); r > 0 {
		q.Recall = float64(q.TruePos) / float64(r)
		q.Overall = float64(q.TruePos-q.FalsePos) / float64(r)
	}
	return q
}

// Average folds per-task qualities into the per-series averages the
// paper reports (average Precision, average Recall, average Overall).
func Average(qs []Quality) Quality {
	if len(qs) == 0 {
		return Quality{}
	}
	var avg Quality
	for _, q := range qs {
		avg.TruePos += q.TruePos
		avg.FalsePos += q.FalsePos
		avg.FalseNeg += q.FalseNeg
		avg.Precision += q.Precision
		avg.Recall += q.Recall
		avg.Overall += q.Overall
	}
	n := float64(len(qs))
	avg.Precision /= n
	avg.Recall /= n
	avg.Overall /= n
	return avg
}
