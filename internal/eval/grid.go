package eval

import (
	"fmt"
	"strings"

	"repro/internal/combine"
)

// The Table 6 grid: every relevant matcher and combination strategy.
// The Weighted aggregation is excluded (the paper makes no assumption
// about matcher importance); Dice applies to no-reuse series only.

// Aggregations returns the tested aggregation strategies.
func Aggregations() []combine.AggSpec {
	return []combine.AggSpec{
		{Kind: combine.Max},
		{Kind: combine.Average},
		{Kind: combine.Min},
	}
}

// Directions returns the tested direction strategies.
func Directions() []combine.Direction {
	return []combine.Direction{combine.LargeSmall, combine.SmallLarge, combine.Both}
}

// Selections returns the 36 tested selection strategies: MaxN(1–4),
// Delta(0.01–0.1), Threshold(0.3–1.0), Threshold(0.5)+MaxN(1–4) and
// Threshold(0.5)+Delta(0.01–0.1).
func Selections() []combine.Selection {
	var out []combine.Selection
	for n := 1; n <= 4; n++ {
		out = append(out, combine.Selection{MaxN: n})
	}
	for i := 1; i <= 10; i++ {
		out = append(out, combine.Selection{Delta: float64(i) / 100})
	}
	for i := 3; i <= 10; i++ {
		out = append(out, combine.Selection{Threshold: float64(i) / 10})
	}
	for n := 1; n <= 4; n++ {
		out = append(out, combine.Selection{Threshold: 0.5, MaxN: n})
	}
	for i := 1; i <= 10; i++ {
		out = append(out, combine.Selection{Threshold: 0.5, Delta: float64(i) / 100})
	}
	return out
}

// CombSims returns the tested strategies for computing combined
// similarity inside the hybrid matchers.
func CombSims() []combine.CombSim {
	return []combine.CombSim{combine.CombAverage, combine.CombDice}
}

// HybridMatchers lists the five single hybrid matchers of the
// evaluation.
func HybridMatchers() []string {
	return []string{"Name", "NamePath", "TypeName", "Children", "Leaves"}
}

// AllCombo is the combination of all five hybrid matchers.
var AllCombo = []string{"Name", "NamePath", "TypeName", "Children", "Leaves"}

// NoReuseMatcherSets returns the 16 no-reuse matcher sets: the 5 single
// hybrid matchers, their 10 pair-wise combinations, and All.
func NoReuseMatcherSets() [][]string {
	hy := HybridMatchers()
	var out [][]string
	for _, m := range hy {
		out = append(out, []string{m})
	}
	for i := 0; i < len(hy); i++ {
		for j := i + 1; j < len(hy); j++ {
			out = append(out, []string{hy[i], hy[j]})
		}
	}
	out = append(out, append([]string(nil), AllCombo...))
	return out
}

// ReuseMatcherSets returns the 14 reuse matcher sets: SchemaM and
// SchemaA alone, their pair-wise combinations with the 5 hybrid
// matchers, and All+SchemaM / All+SchemaA.
func ReuseMatcherSets() [][]string {
	var out [][]string
	for _, s := range []string{"SchemaM", "SchemaA"} {
		out = append(out, []string{s})
	}
	for _, s := range []string{"SchemaM", "SchemaA"} {
		for _, m := range HybridMatchers() {
			out = append(out, []string{s, m})
		}
	}
	out = append(out, append(append([]string(nil), AllCombo...), "SchemaM"))
	out = append(out, append(append([]string(nil), AllCombo...), "SchemaA"))
	return out
}

// IsReuseSet reports whether a matcher set involves a reuse matcher.
func IsReuseSet(set []string) bool {
	for _, m := range set {
		if m == "SchemaM" || m == "SchemaA" {
			return true
		}
	}
	return false
}

// SetLabel renders a matcher set like the paper's figures
// ("All+SchemaM", "NamePath+Leaves").
func SetLabel(set []string) string {
	isAll := len(set) >= len(AllCombo)
	if isAll {
		for i, m := range AllCombo {
			if i >= len(set) || set[i] != m {
				isAll = false
				break
			}
		}
	}
	if isAll {
		rest := set[len(AllCombo):]
		if len(rest) == 0 {
			return "All"
		}
		return "All+" + strings.Join(rest, "+")
	}
	return strings.Join(set, "+")
}

// SeriesSpec identifies one evaluation series: a matcher set plus a
// full combination strategy.
type SeriesSpec struct {
	Matchers []string
	Strategy combine.Strategy
}

// String renders the series for reports.
func (s SeriesSpec) String() string {
	return fmt.Sprintf("%s %s", SetLabel(s.Matchers), s.Strategy)
}

// AllSeries enumerates the complete Table 6 grid: 8,208 no-reuse series
// (single matchers with one aggregation — it is irrelevant for a single
// layer — and both CombSim variants; combinations with all three
// aggregations) plus 4,104 reuse series (CombSim fixed to Average;
// single reuse matchers with one aggregation), 12,312 in total.
func AllSeries() []SeriesSpec {
	var out []SeriesSpec
	aggs := Aggregations()
	dirs := Directions()
	sels := Selections()

	addNoReuse := func(set []string) {
		setAggs := aggs
		if len(set) == 1 {
			setAggs = aggs[1:2] // Average placeholder; single layer
		}
		for _, comb := range CombSims() {
			for _, agg := range setAggs {
				for _, dir := range dirs {
					for _, sel := range sels {
						out = append(out, SeriesSpec{
							Matchers: set,
							Strategy: combine.Strategy{Agg: agg, Dir: dir, Sel: sel, Comb: comb},
						})
					}
				}
			}
		}
	}
	for _, set := range NoReuseMatcherSets() {
		addNoReuse(set)
	}

	addReuse := func(set []string) {
		setAggs := aggs
		if len(set) == 1 {
			setAggs = aggs[1:2]
		}
		for _, agg := range setAggs {
			for _, dir := range dirs {
				for _, sel := range sels {
					out = append(out, SeriesSpec{
						Matchers: set,
						Strategy: combine.Strategy{Agg: agg, Dir: dir, Sel: sel, Comb: combine.CombAverage},
					})
				}
			}
		}
	}
	for _, set := range ReuseMatcherSets() {
		addReuse(set)
	}
	return out
}
