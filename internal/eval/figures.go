package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/workload"
)

// OverallRanges are the histogram buckets of Figure 9: one bucket for
// all series with negative average Overall ("Min-0.0"), then tenth-wide
// buckets up to 1.0.
var OverallRanges = []string{
	"Min-0.0", "0.0-0.1", "0.1-0.2", "0.2-0.3", "0.3-0.4",
	"0.4-0.5", "0.5-0.6", "0.6-0.7", "0.7-0.8", "0.8-0.9", "0.9-1.0",
}

// RangeIndex buckets an average Overall value.
func RangeIndex(overall float64) int {
	if overall < 0 {
		return 0
	}
	i := 1 + int(math.Floor(overall*10))
	if i >= len(OverallRanges) {
		i = len(OverallRanges) - 1
	}
	return i
}

// Histogram counts series per Overall range (Figure 9).
type Histogram struct {
	Counts []int
	Total  int
}

// Fig9Histogram builds the distribution of series over Overall ranges.
func Fig9Histogram(results []SeriesResult) Histogram {
	h := Histogram{Counts: make([]int, len(OverallRanges))}
	for _, r := range results {
		h.Counts[RangeIndex(r.Avg.Overall)]++
		h.Total++
	}
	return h
}

// Breakdown is one Figure 10 panel: per strategy value, the number of
// series falling into each Overall range.
type Breakdown struct {
	Dimension string
	Values    []string
	Counts    map[string][]int // value → per-range counts
	PerValue  int              // series per value (equal by construction)
}

// Fig10Breakdown groups series by one strategy dimension: "aggregation"
// (matcher combinations only — aggregation is irrelevant for singles),
// "direction" (all series), or "selection" (the best variant of each
// selection family, mirroring Figure 10c).
func Fig10Breakdown(results []SeriesResult, dimension string) Breakdown {
	b := Breakdown{Dimension: dimension, Counts: make(map[string][]int)}
	add := func(value string, overall float64) {
		if _, ok := b.Counts[value]; !ok {
			b.Values = append(b.Values, value)
			b.Counts[value] = make([]int, len(OverallRanges))
		}
		b.Counts[value][RangeIndex(overall)]++
	}
	bestSelections := map[string]bool{
		"Thr(0.8)":             true,
		"MaxN(1)":              true,
		"Thr(0.5)+MaxN(1)":     true,
		"Delta(0.02)":          true,
		"Thr(0.5)+Delta(0.02)": true,
	}
	for _, r := range results {
		switch dimension {
		case "aggregation":
			if len(r.Spec.Matchers) < 2 {
				continue
			}
			add(r.Spec.Strategy.Agg.String(), r.Avg.Overall)
		case "direction":
			add(r.Spec.Strategy.Dir.String(), r.Avg.Overall)
		case "selection":
			sel := r.Spec.Strategy.Sel.String()
			if bestSelections[sel] {
				add(sel, r.Avg.Overall)
			}
		}
	}
	for _, v := range b.Values {
		n := 0
		for _, c := range b.Counts[v] {
			n += c
		}
		b.PerValue = n
	}
	return b
}

// NamedResult labels a series result for the figure tables.
type NamedResult struct {
	Label string
	Best  SeriesResult
}

// BestBySet returns, per matcher-set label, the series with the highest
// average Overall (the paper's "best series" analysis).
func BestBySet(results []SeriesResult) map[string]SeriesResult {
	best := make(map[string]SeriesResult)
	for _, r := range results {
		label := SetLabel(r.Spec.Matchers)
		if cur, ok := best[label]; !ok || r.Avg.Overall > cur.Avg.Overall {
			best[label] = r
		}
	}
	return best
}

// Fig11Singles returns the quality of the single matchers — the five
// hybrids plus SchemaM and SchemaA — each at its best series, sorted by
// ascending average Overall like Figure 11.
func Fig11Singles(results []SeriesResult) []NamedResult {
	best := BestBySet(results)
	var out []NamedResult
	for _, name := range append(HybridMatchers(), "SchemaM", "SchemaA") {
		if r, ok := best[name]; ok {
			out = append(out, NamedResult{Label: name, Best: r})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Best.Avg.Overall < out[j].Best.Avg.Overall
	})
	return out
}

// Fig12Labels are the matcher combinations reported in Figure 12.
var Fig12Labels = []string{
	"All+SchemaM",
	"SchemaM+NamePath", "SchemaM+Name", "SchemaM+TypeName", "SchemaM+Leaves", "SchemaM+Children",
	"All",
	"NamePath+Leaves", "NamePath+TypeName", "NamePath+Children", "Name+NamePath",
}

// Fig12Combos returns the best series of the Figure 12 combinations,
// sorted by descending average Overall.
func Fig12Combos(results []SeriesResult) []NamedResult {
	best := BestBySet(results)
	// Set labels are produced in registration order (e.g. the grid
	// builds "SchemaM+NamePath" and "Name+NamePath"); accept either
	// orientation of a pair label.
	find := func(label string) (SeriesResult, bool) {
		if r, ok := best[label]; ok {
			return r, true
		}
		// Try the flipped pair.
		for l, r := range best {
			if flipPair(l) == label {
				return r, true
			}
		}
		return SeriesResult{}, false
	}
	var out []NamedResult
	for _, label := range Fig12Labels {
		if r, ok := find(label); ok {
			out = append(out, NamedResult{Label: label, Best: r})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Best.Avg.Overall > out[j].Best.Avg.Overall
	})
	return out
}

func flipPair(label string) string {
	for i := 0; i < len(label); i++ {
		if label[i] == '+' {
			return label[i+1:] + "+" + label[:i]
		}
	}
	return label
}

// SensitivityRow is one Figure 13 task entry.
type SensitivityRow struct {
	Task          string
	AllPaths      int
	SchemaSim     float64
	BestNoReuse   float64
	BestReuse     float64 // best over series involving SchemaM (manual reuse)
	NoReuseSeries SeriesSpec
	ReuseSeries   SeriesSpec
}

// Fig13Sensitivity computes, per task, the best Overall achieved by any
// no-reuse and any manual-reuse strategy, together with the task's size
// and schema similarity, ordered by ascending problem size (Figure 13).
func Fig13Sensitivity(h *Harness, results []SeriesResult) []SensitivityRow {
	rows := make([]SensitivityRow, len(h.Tasks))
	for i, t := range h.Tasks {
		rows[i] = SensitivityRow{
			Task:      t.Name,
			AllPaths:  len(t.S1.Paths()) + len(t.S2.Paths()),
			SchemaSim: workload.SchemaSimilarity(t),
		}
		rows[i].BestNoReuse = math.Inf(-1)
		rows[i].BestReuse = math.Inf(-1)
	}
	taskIdx := make(map[string]int, len(h.Tasks))
	for i, t := range h.Tasks {
		taskIdx[t.Name] = i
	}
	for _, r := range results {
		reuse := false
		manual := false
		for _, m := range r.Spec.Matchers {
			if m == "SchemaM" {
				manual = true
			}
			if m == "SchemaM" || m == "SchemaA" {
				reuse = true
			}
		}
		for ti, q := range r.PerTask {
			row := &rows[ti]
			if !reuse && q.Overall > row.BestNoReuse {
				row.BestNoReuse = q.Overall
				row.NoReuseSeries = r.Spec
			}
			if manual && q.Overall > row.BestReuse {
				row.BestReuse = q.Overall
				row.ReuseSeries = r.Spec
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].AllPaths < rows[j].AllPaths })
	return rows
}

// StabilityCount counts, for reuse and no-reuse series separately, how
// often each matcher set attains the per-task maximum Overall within a
// 10% margin (Section 7.4's stability analysis).
func StabilityCount(h *Harness, results []SeriesResult, margin float64) map[string]int {
	// Best Overall per (task, reuse-class) over all series.
	type key struct {
		task  int
		reuse bool
	}
	best := make(map[key]float64)
	for _, r := range results {
		isReuse := IsReuseSet(r.Spec.Matchers)
		for ti, q := range r.PerTask {
			k := key{ti, isReuse}
			if q.Overall > best[k] {
				best[k] = q.Overall
			}
		}
	}
	// A set "wins" a task when its best series reaches the task
	// maximum within margin.
	bestPerSetTask := make(map[string]map[int]float64)
	for _, r := range results {
		label := SetLabel(r.Spec.Matchers)
		m := bestPerSetTask[label]
		if m == nil {
			m = make(map[int]float64)
			bestPerSetTask[label] = m
		}
		for ti, q := range r.PerTask {
			if q.Overall > m[ti] {
				m[ti] = q.Overall
			}
		}
	}
	wins := make(map[string]int)
	for label, m := range bestPerSetTask {
		isReuse := IsReuseSet([]string{label}) || containsSchema(label)
		for ti, o := range m {
			if o >= best[key{ti, isReuse}]*(1-margin) {
				wins[label]++
			}
		}
	}
	return wins
}

func containsSchema(label string) bool {
	return strings.Contains(label, "SchemaM") || strings.Contains(label, "SchemaA")
}

// FormatQuality renders P/R/O like the figures' data labels.
func FormatQuality(q Quality) string {
	return fmt.Sprintf("P=%.2f R=%.2f O=%.2f", q.Precision, q.Recall, q.Overall)
}
