package eval

import (
	"math"
	"testing"

	"repro/internal/combine"
	"repro/internal/simcube"
)

func TestEvaluate(t *testing.T) {
	gold := simcube.NewMapping("A", "B")
	gold.Add("a", "x", 1)
	gold.Add("b", "y", 1)
	gold.Add("c", "z", 1)
	gold.Add("d", "w", 1)

	pred := simcube.NewMapping("A", "B")
	pred.Add("a", "x", 0.9) // true positive
	pred.Add("b", "y", 0.8) // true positive
	pred.Add("b", "z", 0.7) // false positive

	q := Evaluate(pred, gold)
	if q.TruePos != 2 || q.FalsePos != 1 || q.FalseNeg != 2 {
		t.Fatalf("I/F/M = %d/%d/%d", q.TruePos, q.FalsePos, q.FalseNeg)
	}
	if math.Abs(q.Precision-2.0/3) > 1e-12 {
		t.Errorf("Precision = %.3f", q.Precision)
	}
	if q.Recall != 0.5 {
		t.Errorf("Recall = %.3f", q.Recall)
	}
	// Overall = (I - F)/R = (2-1)/4 = 0.25 = Recall*(2 - 1/Precision).
	if math.Abs(q.Overall-0.25) > 1e-12 {
		t.Errorf("Overall = %.3f", q.Overall)
	}
	want := q.Recall * (2 - 1/q.Precision)
	if math.Abs(q.Overall-want) > 1e-12 {
		t.Errorf("Overall identity violated: %.4f vs %.4f", q.Overall, want)
	}
}

func TestEvaluateNegativeOverall(t *testing.T) {
	// Precision < 0.5 → Overall < 0 (post-match effort exceeds gain).
	gold := simcube.NewMapping("A", "B")
	gold.Add("a", "x", 1)
	pred := simcube.NewMapping("A", "B")
	pred.Add("a", "x", 1)
	pred.Add("a", "y", 1)
	pred.Add("a", "z", 1)
	q := Evaluate(pred, gold)
	if q.Overall >= 0 {
		t.Errorf("Overall = %.3f, want negative", q.Overall)
	}
}

func TestEvaluatePerfect(t *testing.T) {
	gold := simcube.NewMapping("A", "B")
	gold.Add("a", "x", 1)
	q := Evaluate(gold.Clone(), gold)
	if q.Precision != 1 || q.Recall != 1 || q.Overall != 1 {
		t.Errorf("perfect match: %+v", q)
	}
}

func TestEvaluateEmptyPrediction(t *testing.T) {
	gold := simcube.NewMapping("A", "B")
	gold.Add("a", "x", 1)
	q := Evaluate(simcube.NewMapping("A", "B"), gold)
	if q.Precision != 0 || q.Recall != 0 || q.Overall != 0 {
		t.Errorf("empty prediction: %+v", q)
	}
}

func TestAverage(t *testing.T) {
	qs := []Quality{
		{Precision: 1, Recall: 0.5, Overall: 0.5},
		{Precision: 0.5, Recall: 1, Overall: 0},
	}
	avg := Average(qs)
	if avg.Precision != 0.75 || avg.Recall != 0.75 || avg.Overall != 0.25 {
		t.Errorf("Average = %+v", avg)
	}
	if (Average(nil) != Quality{}) {
		t.Error("Average(nil) should be zero")
	}
}

func TestGridCounts(t *testing.T) {
	if got := len(Selections()); got != 36 {
		t.Errorf("selections = %d, want 36", got)
	}
	if got := len(NoReuseMatcherSets()); got != 16 {
		t.Errorf("no-reuse sets = %d, want 16", got)
	}
	if got := len(ReuseMatcherSets()); got != 14 {
		t.Errorf("reuse sets = %d, want 14", got)
	}
	series := AllSeries()
	// The paper's accounting: 8,208 no-reuse + 4,104 reuse = 12,312.
	var noReuse, reuseN int
	for _, s := range series {
		if IsReuseSet(s.Matchers) {
			reuseN++
		} else {
			noReuse++
		}
	}
	if noReuse != 8208 {
		t.Errorf("no-reuse series = %d, want 8208", noReuse)
	}
	if reuseN != 4104 {
		t.Errorf("reuse series = %d, want 4104", reuseN)
	}
	if len(series) != 12312 {
		t.Errorf("total series = %d, want 12312", len(series))
	}
}

func TestSetLabel(t *testing.T) {
	if got := SetLabel([]string{"Name", "NamePath", "TypeName", "Children", "Leaves"}); got != "All" {
		t.Errorf("All label = %s", got)
	}
	if got := SetLabel([]string{"Name", "NamePath", "TypeName", "Children", "Leaves", "SchemaM"}); got != "All+SchemaM" {
		t.Errorf("All+SchemaM label = %s", got)
	}
	if got := SetLabel([]string{"NamePath", "Leaves"}); got != "NamePath+Leaves" {
		t.Errorf("pair label = %s", got)
	}
}

func TestRangeIndex(t *testing.T) {
	cases := []struct {
		overall float64
		want    int
	}{
		{-88, 0}, {-0.001, 0}, {0, 1}, {0.05, 1}, {0.1, 2}, {0.75, 8}, {1.0, 10},
	}
	for _, c := range cases {
		if got := RangeIndex(c.overall); got != c.want {
			t.Errorf("RangeIndex(%.3f) = %d, want %d", c.overall, got, c.want)
		}
	}
}

func TestHarnessDefaultSeries(t *testing.T) {
	h := NewHarness()
	// The default match operation (All, default strategy) must produce
	// solid quality: the headline no-reuse result of the paper.
	res := h.RunSeries(SeriesSpec{Matchers: AllCombo, Strategy: combine.Default()})
	t.Logf("All + default: %s", FormatQuality(res.Avg))
	if res.Avg.Overall < 0.4 {
		t.Errorf("All/default avg Overall = %.3f, want >= 0.4", res.Avg.Overall)
	}
	if res.Avg.Precision < 0.6 {
		t.Errorf("All/default avg Precision = %.3f, want >= 0.6", res.Avg.Precision)
	}
}

func TestHarnessSingleVsCombined(t *testing.T) {
	h := NewHarness()
	def := combine.Default()
	all := h.RunSeries(SeriesSpec{Matchers: AllCombo, Strategy: def})
	name := h.RunSeries(SeriesSpec{Matchers: []string{"Name"}, Strategy: def})
	if all.Avg.Overall <= name.Avg.Overall {
		t.Errorf("All (%.3f) should beat single Name (%.3f)", all.Avg.Overall, name.Avg.Overall)
	}
}

func TestHarnessReuseBeatsNoReuse(t *testing.T) {
	h := NewHarness()
	def := combine.Default()
	schemaM := h.RunSeries(SeriesSpec{Matchers: []string{"SchemaM"}, Strategy: def})
	namePath := h.RunSeries(SeriesSpec{Matchers: []string{"NamePath"}, Strategy: def})
	t.Logf("SchemaM: %s | NamePath: %s", FormatQuality(schemaM.Avg), FormatQuality(namePath.Avg))
	if schemaM.Avg.Overall <= namePath.Avg.Overall {
		t.Errorf("SchemaM (%.3f) should beat NamePath (%.3f)", schemaM.Avg.Overall, namePath.Avg.Overall)
	}
	allM := h.RunSeries(SeriesSpec{
		Matchers: append(append([]string(nil), AllCombo...), "SchemaM"),
		Strategy: def,
	})
	all := h.RunSeries(SeriesSpec{Matchers: AllCombo, Strategy: def})
	t.Logf("All+SchemaM: %s | All: %s", FormatQuality(allM.Avg), FormatQuality(all.Avg))
	if allM.Avg.Overall <= all.Avg.Overall {
		t.Errorf("All+SchemaM (%.3f) should beat All (%.3f)", allM.Avg.Overall, all.Avg.Overall)
	}
}

func TestHarnessCaching(t *testing.T) {
	h := NewHarness()
	spec := SeriesSpec{Matchers: []string{"TypeName"}, Strategy: combine.Default()}
	a := h.RunSeries(spec)
	b := h.RunSeries(spec)
	if a.Avg != b.Avg {
		t.Error("cached rerun differs")
	}
}

func TestFig9AndFig10Shapes(t *testing.T) {
	h := NewHarness()
	// A small but representative sub-grid for shape checks.
	var specs []SeriesSpec
	for _, set := range [][]string{{"NamePath"}, {"NamePath", "Leaves"}, AllCombo} {
		for _, agg := range Aggregations() {
			if len(set) == 1 && agg.Kind != combine.Average {
				continue
			}
			for _, dir := range Directions() {
				for _, sel := range []combine.Selection{
					{MaxN: 1}, {Threshold: 0.5, Delta: 0.02}, {Threshold: 0.3},
				} {
					specs = append(specs, SeriesSpec{Matchers: set, Strategy: combine.Strategy{
						Agg: agg, Dir: dir, Sel: sel, Comb: combine.CombAverage,
					}})
				}
			}
		}
	}
	results := h.RunAll(specs, 4, nil)
	hist := Fig9Histogram(results)
	if hist.Total != len(specs) {
		t.Errorf("histogram total = %d, want %d", hist.Total, len(specs))
	}
	sum := 0
	for _, c := range hist.Counts {
		sum += c
	}
	if sum != hist.Total {
		t.Error("histogram counts do not sum to total")
	}
	bd := Fig10Breakdown(results, "direction")
	if len(bd.Values) != 3 {
		t.Errorf("direction breakdown values = %v", bd.Values)
	}
	bdA := Fig10Breakdown(results, "aggregation")
	for _, v := range bdA.Values {
		// Aggregation breakdown must exclude the single-matcher series.
		total := 0
		for _, c := range bdA.Counts[v] {
			total += c
		}
		if total != 18 { // 2 combo sets × 3 dir × 3 sel
			t.Errorf("aggregation %s series = %d, want 18", v, total)
		}
	}
}

func TestFlipPair(t *testing.T) {
	if flipPair("Name+NamePath") != "NamePath+Name" {
		t.Error("flipPair broken")
	}
	if flipPair("All") != "All" {
		t.Error("flipPair on non-pair should be identity")
	}
}
