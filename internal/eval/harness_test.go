package eval

import (
	"testing"

	"repro/internal/combine"
)

func TestPrecomputeCoversGrid(t *testing.T) {
	h := NewHarness()
	n := h.Precompute(4)
	// 10 tasks × 5 hybrids × 2 combs + 10 × 2 reuse matchers.
	want := 10*5*2 + 10*2
	if n != want {
		t.Errorf("Precompute = %d matrices, want %d", n, want)
	}
	// After precompute a series runs without recomputation and the
	// result matches a fresh harness.
	spec := SeriesSpec{Matchers: []string{"NamePath"}, Strategy: combine.Default()}
	warm := h.RunSeries(spec)
	cold := NewHarness().RunSeries(spec)
	if warm.Avg != cold.Avg {
		t.Errorf("warm %v != cold %v", warm.Avg, cold.Avg)
	}
}

func TestRunAllParallelDeterminism(t *testing.T) {
	h := NewHarness()
	var specs []SeriesSpec
	for _, sel := range []combine.Selection{{MaxN: 1}, {Threshold: 0.5}, {Delta: 0.05}} {
		for _, dir := range Directions() {
			specs = append(specs, SeriesSpec{
				Matchers: []string{"TypeName"},
				Strategy: combine.Strategy{Agg: combine.AggSpec{Kind: combine.Average}, Dir: dir, Sel: sel},
			})
		}
	}
	serial := h.RunAll(specs, 1, nil)
	parallel := h.RunAll(specs, 8, nil)
	for i := range specs {
		if serial[i].Avg != parallel[i].Avg {
			t.Errorf("series %d: serial %v != parallel %v", i, serial[i].Avg, parallel[i].Avg)
		}
	}
}

func TestRunAllProgressReporting(t *testing.T) {
	h := NewHarness()
	specs := make([]SeriesSpec, 600)
	for i := range specs {
		specs[i] = SeriesSpec{Matchers: []string{"Name"}, Strategy: combine.Default()}
	}
	var calls int
	h.RunAll(specs, 4, func(done int) { calls++ })
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
}

func TestSchemaAStoreBuiltOnce(t *testing.T) {
	h := NewHarness()
	a := h.autoStore()
	b := h.autoStore()
	if a != b {
		t.Error("autoStore should be built once")
	}
	// Auto store holds one mapping per task.
	if got := len(a.AllMappings()); got != len(h.Tasks) {
		t.Errorf("auto mappings = %d, want %d", got, len(h.Tasks))
	}
}

func TestStabilityCount(t *testing.T) {
	h := NewHarness()
	specs := []SeriesSpec{
		{Matchers: AllCombo, Strategy: combine.Default()},
		{Matchers: []string{"NamePath"}, Strategy: combine.Default()},
		{Matchers: []string{"SchemaM"}, Strategy: combine.Default()},
	}
	results := h.RunAll(specs, 2, nil)
	wins := StabilityCount(h, results, 0.1)
	total := 0
	for _, w := range wins {
		total += w
	}
	if total == 0 {
		t.Error("no stability wins counted")
	}
	// Every set can win at most all tasks per class.
	for label, w := range wins {
		if w > len(h.Tasks) {
			t.Errorf("%s wins %d > #tasks", label, w)
		}
	}
}

func TestFig11AndFig12OnSubGrid(t *testing.T) {
	h := NewHarness()
	var specs []SeriesSpec
	sets := [][]string{
		{"NamePath"}, {"Name"}, {"TypeName"}, {"Children"}, {"Leaves"},
		{"SchemaM"}, {"SchemaA"},
		{"NamePath", "Leaves"}, AllCombo,
		append(append([]string(nil), AllCombo...), "SchemaM"),
	}
	for _, set := range sets {
		specs = append(specs, SeriesSpec{Matchers: set, Strategy: combine.Default()})
	}
	results := h.RunAll(specs, 4, nil)
	singles := Fig11Singles(results)
	if len(singles) != 7 {
		t.Fatalf("Fig11 singles = %d, want 7", len(singles))
	}
	// Sorted ascending by Overall.
	for i := 1; i < len(singles); i++ {
		if singles[i-1].Best.Avg.Overall > singles[i].Best.Avg.Overall {
			t.Error("Fig11 not sorted ascending")
		}
	}
	combos := Fig12Combos(results)
	if len(combos) < 3 {
		t.Fatalf("Fig12 combos = %d", len(combos))
	}
	for i := 1; i < len(combos); i++ {
		if combos[i-1].Best.Avg.Overall < combos[i].Best.Avg.Overall {
			t.Error("Fig12 not sorted descending")
		}
	}
	rows := Fig13Sensitivity(h, results)
	if len(rows) != 10 {
		t.Fatalf("Fig13 rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].AllPaths > rows[i].AllPaths {
			t.Error("Fig13 not sorted by problem size")
		}
	}
	for _, r := range rows {
		if r.BestReuse < r.BestNoReuse {
			t.Errorf("task %s: manual reuse %.2f below no-reuse %.2f", r.Task, r.BestReuse, r.BestNoReuse)
		}
	}
}

// TestWorkersDefaultSemantics pins the unified worker knob: workers
// <= 0 means runtime.NumCPU() (the core.Config.Workers semantics),
// not a silent clamp to sequential, and the results are identical to
// an explicit worker count.
func TestWorkersDefaultSemantics(t *testing.T) {
	h := NewHarness()
	if n := h.Precompute(0); n != 10*5*2+10*2 {
		t.Errorf("Precompute(0) computed %d matrices", n)
	}
	specs := []SeriesSpec{
		{Matchers: []string{"Name"}, Strategy: combine.Default()},
		{Matchers: AllCombo, Strategy: combine.Default()},
	}
	def := h.RunAll(specs, 0, nil)
	neg := h.RunAll(specs, -3, nil)
	one := h.RunAll(specs, 1, nil)
	for i := range specs {
		if def[i].Avg != one[i].Avg || neg[i].Avg != one[i].Avg {
			t.Errorf("series %d: workers<=0 results diverge from workers=1", i)
		}
	}
}
