package eval

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/simcube"
)

// randomMapping builds a mapping over small element universes.
func randomMapping(r *rand.Rand, n int) *simcube.Mapping {
	m := simcube.NewMapping("A", "B")
	for i := 0; i < n; i++ {
		m.Add("a"+strconv.Itoa(r.Intn(12)), "b"+strconv.Itoa(r.Intn(12)), r.Float64())
	}
	return m
}

// TestPropertyMetricsInvariants checks the identities of the quality
// measures on random prediction/gold pairs:
//   - Precision, Recall in [0,1]
//   - Overall = Recall · (2 − 1/Precision) when Precision > 0
//   - Overall <= Recall <= 1
//   - I + F = |P|, I + M = |R|
func TestPropertyMetricsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pred := randomMapping(r, r.Intn(20))
		gold := randomMapping(r, 1+r.Intn(20))
		q := Evaluate(pred, gold)
		if q.Precision < 0 || q.Precision > 1 || q.Recall < 0 || q.Recall > 1 {
			return false
		}
		if q.TruePos+q.FalsePos != pred.Len() {
			return false
		}
		if q.TruePos+q.FalseNeg != gold.Len() {
			return false
		}
		if q.Overall > q.Recall+1e-12 {
			return false
		}
		if q.Precision > 0 {
			want := q.Recall * (2 - 1/q.Precision)
			if math.Abs(q.Overall-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPerfectPredictionIsOptimal verifies that predicting
// exactly the gold standard maximizes all three measures.
func TestPropertyPerfectPredictionIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gold := randomMapping(r, 1+r.Intn(20))
		q := Evaluate(gold.Clone(), gold)
		return q.Precision == 1 && q.Recall == 1 && q.Overall == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
