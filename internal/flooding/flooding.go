// Package flooding implements a Similarity Flooding matcher (Melnik,
// Garcia-Molina & Rahm, ICDE 2002) over COMA's schema graphs. The
// paper cites SF as the comparator whose accuracy metric (Overall) the
// COMA evaluation adopts, and names its stable-marriage selection as
// future work; this package provides SF as an additional library
// matcher and ablation baseline.
//
// The algorithm builds a pairwise connectivity graph over element
// pairs: the map pair (a, b) is connected to (a', b') when a' is a
// child of a and b' is a child of b (and symmetrically for parents).
// Initial similarities come from a string matcher on element names;
// each iteration propagates a fraction of every pair's similarity to
// its neighbours, followed by normalization, until a fixpoint.
package flooding

import (
	"math"

	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
)

// Matcher is a Similarity Flooding matcher. Construct with New.
type Matcher struct {
	// Iterations bounds the fixpoint computation (default 32).
	Iterations int
	// Epsilon is the convergence threshold on the residual vector
	// (default 1e-3).
	Epsilon float64
	// Damping weights the propagated increment against the initial
	// similarity (default 0.8, high propagation).
	Damping float64
	// Init computes initial similarities between element names. Nil
	// (the default) means trigram similarity, evaluated over the
	// schema indexes' precomputed name profiles — one cell per
	// distinct name pair; a custom Init is evaluated per path pair.
	Init func(a, b string) float64
}

// New returns a flooding matcher with default parameters.
func New() *Matcher {
	return &Matcher{
		Iterations: 32,
		Epsilon:    1e-3,
		Damping:    0.8,
	}
}

// Name implements match.Matcher.
func (f *Matcher) Name() string { return "Flooding" }

// pairEdge connects two pair-graph node indices with a weight.
type pairEdge struct {
	from, to int
	w        float64
}

// Match implements match.Matcher: fixpoint similarity propagation over
// the pairwise connectivity graph of the two schemas' paths. The
// initial-similarity fill is row-parallel under Context.Workers (the
// fixpoint iteration itself is a cheap sequential sparse sweep); the
// result is bit-identical for any worker count.
func (f *Matcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	x1, x2 := ctx.Index(s1), ctx.Index(s2)
	p1, p2 := x1.Paths, x2.Paths
	rows, cols := x1.Keys, x2.Keys
	n1, n2 := len(p1), len(p2)
	if n1 == 0 || n2 == 0 {
		return simcube.NewMatrix(rows, cols)
	}
	idx := func(i, j int) int { return i*n2 + j }

	// Initial similarities σ0: the default trigram similarity scores
	// one distinct-name grid from the indexes' precomputed raw-name
	// profiles and projects it; a custom Init runs per path pair.
	sigma0 := make([]float64, n1*n2)
	if f.Init == nil {
		nd2 := len(x2.RawNames)
		grid := make([]float64, len(x1.RawNames)*nd2)
		match.ParallelRows(ctx, len(x1.RawNames), func(a int) {
			row := grid[a*nd2:]
			for b, p := range x2.RawNames {
				row[b] = strutil.NGramSimProfile(x1.RawNames[a], p, 3)
			}
		})
		match.ParallelRows(ctx, n1, func(i int) {
			row := grid[x1.NameID[i]*nd2:]
			for j := 0; j < n2; j++ {
				sigma0[idx(i, j)] = row[x2.NameID[j]]
			}
		})
	} else {
		match.ParallelRows(ctx, n1, func(i int) {
			for j := range p2 {
				sigma0[idx(i, j)] = f.Init(p1[i].Name(), p2[j].Name())
			}
		})
	}

	// Parent links come from the schema indexes: the parent of a path
	// is its prefix.
	parent1 := x1.Parent
	parent2 := x2.Parent

	// Build propagation edges: child-pair → parent-pair and
	// parent-pair → child-pair, with coefficients 1/#siblings.
	var edges []pairEdge
	childCount1 := make([]int, n1)
	childCount2 := make([]int, n2)
	for _, pi := range parent1 {
		if pi >= 0 {
			childCount1[pi]++
		}
	}
	for _, pj := range parent2 {
		if pj >= 0 {
			childCount2[pj]++
		}
	}
	for i := range p1 {
		pi := parent1[i]
		if pi < 0 {
			continue
		}
		for j := range p2 {
			pj := parent2[j]
			if pj < 0 {
				continue
			}
			// Weight splits the propagated similarity among the
			// child-pair combinations (SF's 1/products coefficient).
			wDown := 1.0 / float64(childCount1[pi]*childCount2[pj])
			edges = append(edges, pairEdge{from: idx(pi, pj), to: idx(i, j), w: wDown})
			edges = append(edges, pairEdge{from: idx(i, j), to: idx(pi, pj), w: 1})
		}
	}

	// Fixpoint iteration: σ(k+1) = normalize(σ0 + damping·flow).
	sigma := make([]float64, len(sigma0))
	copy(sigma, sigma0)
	next := make([]float64, len(sigma0))
	for iter := 0; iter < f.Iterations; iter++ {
		copy(next, sigma0)
		for _, e := range edges {
			next[e.to] += f.Damping * sigma[e.from] * e.w
		}
		// Normalize by the maximal value.
		maxVal := 0.0
		for _, v := range next {
			if v > maxVal {
				maxVal = v
			}
		}
		if maxVal > 0 {
			for k := range next {
				next[k] /= maxVal
			}
		}
		// Convergence on the residual.
		delta := 0.0
		for k := range next {
			d := next[k] - sigma[k]
			delta += d * d
		}
		sigma, next = next, sigma
		if math.Sqrt(delta) < f.Epsilon {
			break
		}
	}

	out := simcube.NewMatrix(rows, cols)
	match.ParallelRows(ctx, n1, func(i int) {
		for j := 0; j < n2; j++ {
			out.Set(i, j, sigma[idx(i, j)])
		}
	})
	return out
}

// StableMarriage selects 1:1 match candidates from a similarity matrix
// using the Gale–Shapley algorithm, the selection strategy the COMA
// paper names as future work (Section 7.5). Rows propose to columns in
// descending similarity order; columns accept their best proposal.
// Pairs with similarity <= minSim never match.
func StableMarriage(m *simcube.Matrix, minSim float64) *simcube.Mapping {
	nr, nc := m.Rows(), m.Cols()
	out := simcube.NewMapping("", "")
	if nr == 0 || nc == 0 {
		return out
	}
	// Preference lists for rows: column indices by descending sim.
	prefs := make([][]int, nr)
	for i := 0; i < nr; i++ {
		cand := make([]int, 0, nc)
		for j := 0; j < nc; j++ {
			if m.Get(i, j) > minSim {
				cand = append(cand, j)
			}
		}
		// Insertion sort by descending similarity, ties by index for
		// determinism.
		for a := 1; a < len(cand); a++ {
			for b := a; b > 0 && m.Get(i, cand[b]) > m.Get(i, cand[b-1]); b-- {
				cand[b], cand[b-1] = cand[b-1], cand[b]
			}
		}
		prefs[i] = cand
	}
	nextProposal := make([]int, nr)
	engagedTo := make([]int, nc) // column → row, -1 free
	for j := range engagedTo {
		engagedTo[j] = -1
	}
	free := make([]int, 0, nr)
	for i := nr - 1; i >= 0; i-- {
		free = append(free, i)
	}
	for len(free) > 0 {
		i := free[len(free)-1]
		free = free[:len(free)-1]
		for nextProposal[i] < len(prefs[i]) {
			j := prefs[i][nextProposal[i]]
			nextProposal[i]++
			cur := engagedTo[j]
			if cur < 0 {
				engagedTo[j] = i
				break
			}
			if m.Get(i, j) > m.Get(cur, j) {
				engagedTo[j] = i
				free = append(free, cur)
				break
			}
		}
	}
	for j, i := range engagedTo {
		if i >= 0 {
			out.Add(m.RowKeys()[i], m.ColKeys()[j], m.Get(i, j))
		}
	}
	return out
}
