package flooding

import (
	"testing"

	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/strutil"
	"repro/internal/workload"
)

func miniSchema(name string, blocks map[string][]string) *schema.Schema {
	s := schema.New(name)
	for top, leaves := range blocks {
		n := schema.NewNode(top)
		for _, l := range leaves {
			n.AddChild(&schema.Node{Name: l, TypeName: "xsd:string"})
		}
		s.Root.AddChild(n)
	}
	s.SortChildren()
	return s
}

func TestFloodingPropagatesStructure(t *testing.T) {
	// "Addr" blocks with one identically-named leaf: propagation must
	// raise the sibling leaf pair above its zero string similarity.
	s1 := miniSchema("A", map[string][]string{"Addr": {"city", "qqq"}})
	s2 := miniSchema("B", map[string][]string{"Addr": {"city", "zzz"}})
	m := New().Match(match.NewContext(), s1, s2)
	if got := m.GetKey("Addr.city", "Addr.city"); got < 0.5 {
		t.Errorf("identical leaf pair = %.3f, want high", got)
	}
	// qqq/zzz share no trigram, but their parents match: flooding
	// must give them nonzero similarity.
	if got := m.GetKey("Addr.qqq", "Addr.zzz"); got <= 0 {
		t.Errorf("structural propagation failed: %.3f", got)
	}
}

func TestFloodingConvergesAndBounded(t *testing.T) {
	tasks := workload.Tasks()
	f := New()
	m := f.Match(match.NewContext(), tasks[0].S1, tasks[0].S2)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			v := m.Get(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("similarity out of bounds: %.3f", v)
			}
		}
	}
}

func TestFloodingDeterministic(t *testing.T) {
	s1 := miniSchema("A", map[string][]string{"Addr": {"city", "zip"}, "Contact": {"name"}})
	s2 := miniSchema("B", map[string][]string{"Address": {"town", "zip"}, "Person": {"name"}})
	a := New().Match(match.NewContext(), s1, s2)
	b := New().Match(match.NewContext(), s1, s2)
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.Get(i, j) != b.Get(i, j) {
				t.Fatalf("nondeterministic at %d,%d", i, j)
			}
		}
	}
}

func TestFloodingEmptySchemas(t *testing.T) {
	s1 := schema.New("Empty1")
	s2 := schema.New("Empty2")
	m := New().Match(match.NewContext(), s1, s2)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Error("empty schemas should yield empty matrix")
	}
}

func TestFloodingAsLibraryMatcher(t *testing.T) {
	lib := match.NewLibrary()
	lib.Register("Flooding", func() match.Matcher { return New() })
	m, err := lib.New("Flooding")
	if err != nil || m.Name() != "Flooding" {
		t.Fatalf("library registration failed: %v", err)
	}
}

func TestStableMarriage(t *testing.T) {
	// a prefers x (0.9); b prefers x too (0.8) but x prefers a;
	// b settles for y.
	m := simcube.NewMatrix([]string{"a", "b"}, []string{"x", "y"})
	m.Set(0, 0, 0.9)
	m.Set(0, 1, 0.2)
	m.Set(1, 0, 0.8)
	m.Set(1, 1, 0.6)
	res := StableMarriage(m, 0)
	if !res.Contains("a", "x") || !res.Contains("b", "y") {
		t.Fatalf("stable marriage = %v", res.Correspondences())
	}
	if res.Len() != 2 {
		t.Fatalf("len = %d", res.Len())
	}
}

func TestStableMarriageMinSim(t *testing.T) {
	m := simcube.NewMatrix([]string{"a"}, []string{"x"})
	m.Set(0, 0, 0.3)
	if got := StableMarriage(m, 0.5); got.Len() != 0 {
		t.Error("below-threshold pair should not match")
	}
	if got := StableMarriage(m, 0.1); got.Len() != 1 {
		t.Error("above-threshold pair should match")
	}
}

func TestStableMarriageOneToOne(t *testing.T) {
	// Stable marriage guarantees 1:1: no column matched twice.
	tasks := workload.Tasks()
	f := New()
	m := f.Match(match.NewContext(), tasks[0].S1, tasks[0].S2)
	res := StableMarriage(m, 0.3)
	seenFrom := make(map[string]bool)
	seenTo := make(map[string]bool)
	for _, c := range res.Correspondences() {
		if seenFrom[c.From] || seenTo[c.To] {
			t.Fatalf("duplicate endpoint in %s", c)
		}
		seenFrom[c.From] = true
		seenTo[c.To] = true
	}
	if res.Len() == 0 {
		t.Error("expected some matches on the workload task")
	}
}

func TestStableMarriageEmpty(t *testing.T) {
	m := simcube.NewMatrix(nil, nil)
	if got := StableMarriage(m, 0); got.Len() != 0 {
		t.Error("empty matrix should yield empty mapping")
	}
}

// TestFloodingParallelFillIdentical is the golden guarantee of the
// worker knob: flooding produces a bit-identical matrix whether its
// initial-similarity fill runs on one worker or many, and whether the
// default init runs over precomputed profiles or a custom per-pair
// function computing the same trigram similarity.
func TestFloodingParallelFillIdentical(t *testing.T) {
	task := workload.Tasks()[0]
	seq := New().Match(match.NewContext().WithWorkers(1), task.S1, task.S2)
	par := New().Match(match.NewContext().WithWorkers(8), task.S1, task.S2)
	custom := New()
	custom.Init = func(a, b string) float64 { return strutil.NGramSim(a, b, 3) }
	perPair := custom.Match(match.NewContext().WithWorkers(4), task.S1, task.S2)
	for i := 0; i < seq.Rows(); i++ {
		for j := 0; j < seq.Cols(); j++ {
			if seq.Get(i, j) != par.Get(i, j) {
				t.Fatalf("cell (%d,%d) = %v sequential, %v parallel", i, j, seq.Get(i, j), par.Get(i, j))
			}
			if seq.Get(i, j) != perPair.Get(i, j) {
				t.Fatalf("cell (%d,%d) = %v profile init, %v per-pair init", i, j, seq.Get(i, j), perPair.Get(i, j))
			}
		}
	}
}
