package export

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/schema"
)

// SchemaXSD writes a schema graph as an XML Schema document that
// importer.ParseXSD reads back to an equivalent graph: same leaf
// elements, same shared fragments. Inner nodes become named complex
// types — shared fragments are emitted once and referenced from every
// use site — and leaves become typed elements. The re-import is not
// path-identical: ParseXSD models a named complex type as a child node
// of every element using it (the paper's Figure 1b), so inner elements
// gain a generated type-name path level. Leaf types already carrying
// an XSD namespace prefix are kept; other types map onto xsd builtins
// via their lower-cased local name.
func SchemaXSD(w io.Writer, s *schema.Schema) error {
	var b strings.Builder
	b.WriteString(`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">` + "\n")

	// Assign a type name to every inner node. Shared nodes keep their
	// element name as type name; collisions get numeric suffixes.
	typeName := make(map[*schema.Node]string)
	used := make(map[string]bool)
	var assign func(n *schema.Node)
	assign = func(n *schema.Node) {
		if _, done := typeName[n]; done || n.IsLeaf() {
			return
		}
		base := sanitizeTypeName(n.Name) + "Type"
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s%d", base, i)
		}
		used[name] = true
		typeName[n] = name
		for _, c := range n.Children() {
			assign(c)
		}
	}
	for _, c := range s.Root.Children() {
		assign(c)
	}

	// Emit the root type first (content of the schema), then one
	// complexType per distinct inner node.
	writeElement := func(b *strings.Builder, n *schema.Node, indent string) {
		if n.IsLeaf() {
			fmt.Fprintf(b, "%s<xsd:element name=\"%s\" type=\"%s\"/>\n",
				indent, xmlEscape(n.Name), xmlEscape(leafType(n.TypeName)))
			return
		}
		fmt.Fprintf(b, "%s<xsd:element name=\"%s\" type=\"%s\"/>\n",
			indent, xmlEscape(n.Name), typeName[n])
	}

	rootType := sanitizeTypeName(s.Name) + "Root"
	for used[rootType] {
		rootType += "X"
	}
	fmt.Fprintf(&b, "  <xsd:complexType name=\"%s\">\n    <xsd:sequence>\n", rootType)
	for _, c := range s.Root.Children() {
		writeElement(&b, c, "      ")
	}
	b.WriteString("    </xsd:sequence>\n  </xsd:complexType>\n")

	emitted := make(map[*schema.Node]bool)
	var emit func(n *schema.Node)
	emit = func(n *schema.Node) {
		if n.IsLeaf() || emitted[n] {
			return
		}
		emitted[n] = true
		fmt.Fprintf(&b, "  <xsd:complexType name=\"%s\">\n    <xsd:sequence>\n", typeName[n])
		for _, c := range n.Children() {
			writeElement(&b, c, "      ")
		}
		b.WriteString("    </xsd:sequence>\n  </xsd:complexType>\n")
		for _, c := range n.Children() {
			emit(c)
		}
	}
	for _, c := range s.Root.Children() {
		emit(c)
	}
	b.WriteString("</xsd:schema>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// leafType maps a stored type name onto an XSD type reference.
func leafType(t string) string {
	if t == "" {
		return "xsd:string"
	}
	if strings.Contains(t, ":") {
		return t
	}
	lower := strings.ToLower(t)
	if i := strings.IndexByte(lower, '('); i >= 0 {
		lower = lower[:i]
	}
	switch lower {
	case "int", "integer", "smallint", "bigint", "serial":
		return "xsd:integer"
	case "decimal", "numeric", "float", "double", "real", "money", "number":
		return "xsd:decimal"
	case "date", "datetime", "timestamp":
		return "xsd:date"
	case "bool", "boolean", "bit":
		return "xsd:boolean"
	default:
		return "xsd:string"
	}
}

// sanitizeTypeName strips characters that are invalid in XML names.
func sanitizeTypeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_':
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "T"
	}
	out := b.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "T" + out
	}
	return out
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
