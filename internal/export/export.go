// Package export serializes match results and schemas for downstream
// tools: mappings as JSON or CSV (the interchange formats data
// integration pipelines consume) and schema graphs as Graphviz DOT for
// visual inspection of shared fragments and referential links.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/schema"
	"repro/internal/simcube"
)

// jsonMapping is the stable JSON shape of a match result.
type jsonMapping struct {
	FromSchema      string     `json:"fromSchema"`
	ToSchema        string     `json:"toSchema"`
	Correspondences []jsonCorr `json:"correspondences"`
}

type jsonCorr struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Sim  float64 `json:"sim"`
}

// MappingJSON writes a mapping as an indented JSON document.
func MappingJSON(w io.Writer, m *simcube.Mapping) error {
	out := jsonMapping{
		FromSchema:      m.FromSchema,
		ToSchema:        m.ToSchema,
		Correspondences: make([]jsonCorr, 0, m.Len()),
	}
	for _, c := range m.Correspondences() {
		out.Correspondences = append(out.Correspondences, jsonCorr{From: c.From, To: c.To, Sim: c.Sim})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadMappingJSON parses a mapping previously written by MappingJSON.
func ReadMappingJSON(r io.Reader) (*simcube.Mapping, error) {
	var in jsonMapping
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	m := simcube.NewMapping(in.FromSchema, in.ToSchema)
	for _, c := range in.Correspondences {
		m.Add(c.From, c.To, c.Sim)
	}
	return m, nil
}

// MappingCSV writes a mapping as CSV with a header row.
func MappingCSV(w io.Writer, m *simcube.Mapping) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"from", "to", "similarity"}); err != nil {
		return err
	}
	for _, c := range m.Correspondences() {
		if err := cw.Write([]string{c.From, c.To, strconv.FormatFloat(c.Sim, 'f', 4, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMappingCSV parses a mapping written by MappingCSV. The schema
// names are not part of the CSV; the caller supplies them.
func ReadMappingCSV(r io.Reader, from, to string) (*simcube.Mapping, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("export: csv header: %w", err)
	}
	if len(header) < 3 || header[0] != "from" {
		return nil, fmt.Errorf("export: unexpected csv header %v", header)
	}
	m := simcube.NewMapping(from, to)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return m, nil
		}
		if err != nil {
			return nil, fmt.Errorf("export: csv: %w", err)
		}
		sim, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("export: similarity %q: %w", rec[2], err)
		}
		m.Add(rec[0], rec[1], sim)
	}
}

// SchemaDOT writes a schema graph in Graphviz DOT format: containment
// links solid, referential links dashed, leaves with their types.
// Shared fragments appear once with multiple incoming edges — exactly
// the property the DAG representation adds over trees.
func SchemaDOT(w io.Writer, s *schema.Schema) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", s.Name)
	id := make(map[*schema.Node]int)
	var order []*schema.Node
	var collect func(n *schema.Node)
	collect = func(n *schema.Node) {
		if _, ok := id[n]; ok {
			return
		}
		id[n] = len(order)
		order = append(order, n)
		for _, c := range n.Children() {
			collect(c)
		}
	}
	collect(s.Root)
	for _, n := range order {
		label := dotEscape(n.Name)
		if n.TypeName != "" {
			label += `\n` + dotEscape(n.TypeName)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", id[n], label)
	}
	for _, n := range order {
		for _, c := range n.Children() {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id[n], id[c])
		}
		for _, ref := range n.Refs() {
			if ri, ok := id[ref]; ok {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", id[n], ri)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// dotEscape escapes quotes and backslashes for DOT string literals.
func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
