package export

import (
	"bytes"
	"testing"

	"repro/internal/importer"
	"repro/internal/schema"
	"repro/internal/workload"
)

// pathsOf renders a schema's paths, stripping the element-name noise
// the XSD roundtrip necessarily introduces: re-import inserts the
// generated type-name level under every inner element. For equivalence
// we compare leaf multisets per top-level context instead.
func leafNamesByTop(s *schema.Schema) map[string]map[string]int {
	out := make(map[string]map[string]int)
	for _, p := range s.Paths() {
		if !p.Leaf().IsLeaf() {
			continue
		}
		top := p.Names()[0]
		m := out[top]
		if m == nil {
			m = make(map[string]int)
			out[top] = m
		}
		m[p.Name()]++
	}
	return out
}

func TestSchemaXSDRoundtrip(t *testing.T) {
	for _, orig := range workload.Schemas() {
		var buf bytes.Buffer
		if err := SchemaXSD(&buf, orig); err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		back, err := importer.ParseXSD(orig.Name, buf.Bytes())
		if err != nil {
			t.Fatalf("%s: reimport: %v\n%s", orig.Name, err, buf.String())
		}
		want := leafNamesByTop(orig)
		got := leafNamesByTop(back)
		if len(got) != len(want) {
			t.Fatalf("%s: top-level contexts %d != %d", orig.Name, len(got), len(want))
		}
		for top, leaves := range want {
			gl := got[top]
			if gl == nil {
				t.Errorf("%s: context %s lost", orig.Name, top)
				continue
			}
			for leaf, n := range leaves {
				if gl[leaf] != n {
					t.Errorf("%s: %s.%s count %d != %d", orig.Name, top, leaf, gl[leaf], n)
				}
			}
		}
	}
}

func TestSchemaXSDSharedFragmentsPreserved(t *testing.T) {
	// Apertum's shared Address must come back as a shared fragment:
	// re-imported node count well below path count.
	orig := workload.Schemas()[4]
	var buf bytes.Buffer
	if err := SchemaXSD(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := importer.ParseXSD("Apertum", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	st := schema.ComputeStats(back)
	if st.Paths <= st.Nodes {
		t.Errorf("sharing lost: %d paths vs %d nodes", st.Paths, st.Nodes)
	}
}

func TestSchemaXSDTypeMapping(t *testing.T) {
	ddl := `CREATE TABLE T (a INT, b DECIMAL(10,2), c DATE, d VARCHAR(10), e BOOLEAN);`
	s, err := importer.ParseSQL("db", ddl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SchemaXSD(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`name="a" type="xsd:integer"`,
		`name="b" type="xsd:decimal"`,
		`name="c" type="xsd:date"`,
		`name="d" type="xsd:string"`,
		`name="e" type="xsd:boolean"`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("missing %s in:\n%s", want, out)
		}
	}
}

func TestSanitizeTypeName(t *testing.T) {
	cases := map[string]string{
		"Order Lines": "OrderLines",
		"1st":         "T1st",
		"???":         "T",
		"ok_name":     "ok_name",
	}
	for in, want := range cases {
		if got := sanitizeTypeName(in); got != want {
			t.Errorf("sanitizeTypeName(%q) = %q, want %q", in, got, want)
		}
	}
}
