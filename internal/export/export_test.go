package export

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/importer"
	"repro/internal/simcube"
)

func sampleMapping() *simcube.Mapping {
	m := simcube.NewMapping("PO1", "PO2")
	m.Add("ShipTo.shipToCity", "DeliverTo.Address.City", 0.78)
	m.Add("Customer.custZip", "BillTo.Address.Zip", 0.66)
	return m
}

func TestMappingJSONRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := MappingJSON(&buf, sampleMapping()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"fromSchema": "PO1"`) {
		t.Errorf("JSON missing schema name:\n%s", buf.String())
	}
	back, err := ReadMappingJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.FromSchema != "PO1" {
		t.Fatalf("roundtrip: %v", back)
	}
	if sim, ok := back.Get("ShipTo.shipToCity", "DeliverTo.Address.City"); !ok || sim != 0.78 {
		t.Error("similarity lost in JSON roundtrip")
	}
}

func TestReadMappingJSONErrors(t *testing.T) {
	if _, err := ReadMappingJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage JSON should fail")
	}
}

func TestMappingCSVRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := MappingCSV(&buf, sampleMapping()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "from,to,similarity" {
		t.Fatalf("csv shape:\n%s", buf.String())
	}
	back, err := ReadMappingCSV(&buf, "PO1", "PO2")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("roundtrip len = %d", back.Len())
	}
	if sim, _ := back.Get("Customer.custZip", "BillTo.Address.Zip"); sim != 0.66 {
		t.Error("similarity lost in CSV roundtrip")
	}
}

func TestReadMappingCSVErrors(t *testing.T) {
	if _, err := ReadMappingCSV(strings.NewReader(""), "A", "B"); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := ReadMappingCSV(strings.NewReader("x,y,z\n1,2,3"), "A", "B"); err == nil {
		t.Error("wrong header should fail")
	}
	if _, err := ReadMappingCSV(strings.NewReader("from,to,similarity\na,b,notanumber"), "A", "B"); err == nil {
		t.Error("non-numeric similarity should fail")
	}
}

func TestSchemaDOT(t *testing.T) {
	const xsd = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2"><xsd:sequence>
  <xsd:element name="DeliverTo" type="Address"/>
  <xsd:element name="BillTo" type="Address"/>
 </xsd:sequence></xsd:complexType>
 <xsd:complexType name="Address"><xsd:sequence>
  <xsd:element name="City" type="xsd:string"/>
 </xsd:sequence></xsd:complexType>
</xsd:schema>`
	s, err := importer.ParseXSD("PO2", []byte(xsd))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SchemaDOT(&buf, s); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, `digraph "PO2"`) {
		t.Errorf("DOT header:\n%s", dot)
	}
	// The shared Address node appears once but has two incoming edges:
	// count label occurrences vs edges into its node id.
	if strings.Count(dot, `label="Address"`) != 1 {
		t.Errorf("shared node duplicated:\n%s", dot)
	}
	if !strings.Contains(dot, `label="City\nxsd:string"`) {
		t.Errorf("typed leaf label missing:\n%s", dot)
	}
}

func TestSchemaDOTRefs(t *testing.T) {
	ddl := `CREATE TABLE A (x INT REFERENCES B); CREATE TABLE B (y INT);`
	s, err := importer.ParseSQL("db", ddl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SchemaDOT(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "style=dashed") {
		t.Error("referential link not rendered dashed")
	}
}
