package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// renderLabels builds the canonical `k="v",k2="v2"` label string for a
// child. Label names come from registration and are trusted; values
// are escaped per the Prometheus text format (backslash, quote,
// newline). Extra values beyond the registered names are dropped,
// missing ones render as empty.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		v := ""
		if i < len(values) {
			v = values[i]
		}
		for _, r := range v {
			switch r {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(r)
			}
		}
		b.WriteByte('"')
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trippable decimal, with +Inf/-Inf/NaN literals.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// value reads a child's current scalar (counters and gauges only).
func (c *child) value() float64 {
	switch {
	case c.counter != nil:
		return float64(c.counter.Value())
	case c.counterFunc != nil:
		return c.counterFunc()
	case c.gauge != nil:
		return c.gauge.Value()
	case c.gaugeFunc != nil:
		return c.gaugeFunc()
	}
	return 0
}

// WriteText renders every registered family in Prometheus text format
// (version 0.0.4): families sorted by name, children sorted by label
// string, histograms expanded to cumulative _bucket/_sum/_count
// series. Values are read live, so two calls around a workload show
// its deltas.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue
		}

		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(strings.ReplaceAll(f.help, "\n", `\n`))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		switch f.kind {
		case kindCounter:
			bw.WriteString(" counter\n")
		case kindGauge:
			bw.WriteString(" gauge\n")
		case kindHistogram:
			bw.WriteString(" histogram\n")
		}

		for i, ch := range children {
			labels := keys[i]
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, labels, ch.hist)
				continue
			}
			bw.WriteString(f.name)
			if labels != "" {
				bw.WriteByte('{')
				bw.WriteString(labels)
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatValue(ch.value()))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram child into the cumulative
// bucket series plus _sum and _count. The le label is appended after
// any vector labels, matching Prometheus conventions.
func writeHistogram(bw *bufio.Writer, name, labels string, h *Histogram) {
	writeBucket := func(le string, cum uint64) {
		bw.WriteString(name)
		bw.WriteString("_bucket{")
		if labels != "" {
			bw.WriteString(labels)
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	var cum uint64
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		writeBucket(formatValue(upper), cum)
	}
	cum += h.counts[len(h.uppers)].Load()
	writeBucket("+Inf", cum)

	suffix := func(s string) {
		bw.WriteString(name)
		bw.WriteString(s)
		if labels != "" {
			bw.WriteByte('{')
			bw.WriteString(labels)
			bw.WriteByte('}')
		}
		bw.WriteByte(' ')
	}
	suffix("_sum")
	bw.WriteString(formatValue(h.Sum()))
	bw.WriteByte('\n')
	suffix("_count")
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
}

// Sample is one exposed series value, as rendered by WriteText.
// Histograms contribute their _sum and _count series (buckets are
// omitted from snapshots — they matter for scraping, not for
// programmatic assertions).
type Sample struct {
	// Name is the series name (including _sum/_count suffixes).
	Name string
	// Labels is the canonical `k="v"` label string ("" when unlabeled).
	Labels string
	// Value is the current value.
	Value float64
}

// Snapshot returns the current value of every series for programmatic
// inspection, sorted by name then label string.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		for labels, ch := range f.children {
			if f.kind == kindHistogram {
				out = append(out,
					Sample{Name: f.name + "_sum", Labels: labels, Value: ch.hist.Sum()},
					Sample{Name: f.name + "_count", Labels: labels, Value: float64(ch.hist.Count())},
				)
				continue
			}
			out = append(out, Sample{Name: f.name, Labels: labels, Value: ch.value()})
		}
		f.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
