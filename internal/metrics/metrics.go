// Package metrics is the observability core of the serving stack: a
// dependency-free registry of counters, gauges and bounded histograms
// with Prometheus text-format exposition (served by internal/server at
// GET /metrics). Every instrument is lock-free on the hot path —
// counters and gauges are single atomics, histograms one atomic per
// bucket — so instrumenting the match pipeline, the caches and the
// storage layer costs nanoseconds and stays race-clean under -race.
//
// Instruments are usable standalone (a Repo can own its fsync
// histogram without knowing about any registry) and attached to a
// Registry for exposition; the registry itself only synchronizes
// registration and child-vector creation, never observation.
//
// All instrument methods are nil-receiver safe: a subsystem built
// without metrics holds nil instruments and its observation calls
// become no-ops, so instrumentation sites need no conditionals.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use; methods on a nil *Counter are no-ops.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a zeroed standalone counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; methods on a nil *Gauge are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a zeroed standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; safe under concurrent Add/Set).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DurationBuckets are the default latency buckets in seconds, spanning
// 100µs (a warm cache hit, one fsync on fast storage) to 10s (a
// repository-scale exhaustive batch).
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus a running sum. Buckets are cumulative only at exposition
// time; observation touches exactly one bucket counter, the sum and
// the total, all atomic. Methods on a nil *Histogram are no-ops.
type Histogram struct {
	// uppers are the inclusive upper bounds, ascending; an implicit
	// +Inf bucket follows. Immutable after construction.
	uppers []float64
	// counts[i] counts observations in bucket i (NOT cumulative);
	// counts[len(uppers)] is the +Inf overflow bucket.
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (nil or empty selects DurationBuckets).
func NewHistogram(uppers []float64) *Histogram {
	if len(uppers) == 0 {
		uppers = DurationBuckets
	}
	return &Histogram{
		uppers: uppers,
		counts: make([]atomic.Uint64, len(uppers)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first upper bound >= v; the tail slot is
	// the +Inf bucket.
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// metricKind discriminates exposition families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one named metric with its children (one for a plain
// instrument, one per label combination for a vector).
type family struct {
	name string
	help string
	kind metricKind
	mu   sync.Mutex
	// children maps rendered label strings (`a="b",c="d"` form, "" for
	// unlabeled) to instruments; exactly one of the child fields is set
	// per entry.
	children map[string]*child
	// labels are the vector's label names (nil for plain instruments).
	labels []string
}

type child struct {
	counter     *Counter
	counterFunc func() float64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

// Registry holds named metric families and renders them in Prometheus
// text format. Registration is synchronized; observation goes straight
// to the instruments. The zero value is not usable; construct with
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on a name collision — duplicate
// registration is a programming error and silently merging two
// definitions would corrupt the exposition.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("metrics: duplicate registration of " + name)
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter()
	r.AttachCounter(name, help, c)
	return c
}

// AttachCounter registers an externally owned counter (e.g. a
// subsystem's standalone instrument) under the given name.
func (r *Registry) AttachCounter(name, help string, c *Counter) {
	f := r.register(name, help, kindCounter, nil)
	f.children[""] = &child{counter: c}
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for subsystems that keep their own
// atomic counters. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil)
	f.children[""] = &child{counterFunc: fn}
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge()
	f := r.register(name, help, kindGauge, nil)
	f.children[""] = &child{gauge: g}
	return g
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil)
	f.children[""] = &child{gaugeFunc: fn}
}

// Histogram registers and returns an unlabeled histogram over the
// given upper bounds (nil selects DurationBuckets).
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	h := NewHistogram(uppers)
	r.AttachHistogram(name, help, h)
	return h
}

// AttachHistogram registers an externally owned histogram.
func (r *Registry) AttachHistogram(name, help string, h *Histogram) {
	f := r.register(name, help, kindHistogram, nil)
	f.children[""] = &child{hist: h}
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	f *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels)}
}

// With returns the child counter for the given label values (created
// on first use), which the caller may cache. Methods on a nil
// *CounterVec return nil, keeping call sites no-op safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := renderLabels(v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	ch := v.f.children[key]
	if ch == nil {
		ch = &child{counter: NewCounter()}
		v.f.children[key] = ch
	}
	return ch.counter
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	f      *family
	uppers []float64
}

// HistogramVec registers a labeled histogram family over the given
// upper bounds (nil selects DurationBuckets).
func (r *Registry) HistogramVec(name, help string, uppers []float64, labels ...string) *HistogramVec {
	if len(uppers) == 0 {
		uppers = DurationBuckets
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels), uppers: uppers}
}

// With returns the child histogram for the given label values (created
// on first use). Methods on a nil *HistogramVec return nil.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := renderLabels(v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	ch := v.f.children[key]
	if ch == nil {
		ch = &child{hist: NewHistogram(v.uppers)}
		v.f.children[key] = ch
	}
	return ch.hist
}
