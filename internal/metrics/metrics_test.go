package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := NewGauge()
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	// Vec.With on nil returns a nil child, which is itself a no-op.
	cv.With("a").Inc()
	hv.With("a").Observe(1)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 111.5 {
		t.Fatalf("sum = %v, want 111.5", got)
	}
	// 0.5 and 1 land in le=1 (le is inclusive), 3 in le=5, 7 in le=10,
	// 100 overflows to +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Mean(); got != 111.5/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestWriteTextGolden pins the exposition format byte for byte: family
// ordering, HELP/TYPE lines, label rendering and escaping, histogram
// bucket cumulation, and value formatting. The /metrics endpoint's
// output is this encoding, so a drift here is a scrape-breaking
// change.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("test_requests_total", "Requests by endpoint.", "endpoint", "class")
	reqs.With("match", "2xx").Add(7)
	reqs.With("match", "5xx").Inc()
	reqs.With(`we"ird\path`, "2xx").Inc()
	r.Gauge("test_queue_depth", "Waiting requests.").Set(3)
	r.GaugeFunc("test_entries", "Live entries.", func() float64 { return 42 })
	r.CounterFunc("test_hits_total", "Cache hits.", func() float64 { return 9 })
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	// Exactly representable values so the _sum renders without float
	// dust: 2*2^-7 + 0.5 + 2 = 2.515625.
	h.Observe(0.0078125)
	h.Observe(0.0078125)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP test_entries Live entries.\n" +
		"# TYPE test_entries gauge\n" +
		"test_entries 42\n" +
		"# HELP test_hits_total Cache hits.\n" +
		"# TYPE test_hits_total counter\n" +
		"test_hits_total 9\n" +
		"# HELP test_latency_seconds Request latency.\n" +
		"# TYPE test_latency_seconds histogram\n" +
		"test_latency_seconds_bucket{le=\"0.01\"} 2\n" +
		"test_latency_seconds_bucket{le=\"0.1\"} 2\n" +
		"test_latency_seconds_bucket{le=\"1\"} 3\n" +
		"test_latency_seconds_bucket{le=\"+Inf\"} 4\n" +
		"test_latency_seconds_sum 2.515625\n" +
		"test_latency_seconds_count 4\n" +
		"# HELP test_queue_depth Waiting requests.\n" +
		"# TYPE test_queue_depth gauge\n" +
		"test_queue_depth 3\n" +
		"# HELP test_requests_total Requests by endpoint.\n" +
		"# TYPE test_requests_total counter\n" +
		"test_requests_total{endpoint=\"match\",class=\"2xx\"} 7\n" +
		"test_requests_total{endpoint=\"match\",class=\"5xx\"} 1\n" +
		"test_requests_total{endpoint=\"we\\\"ird\\\\path\",class=\"2xx\"} 1\n"
	if got := b.String(); got != want {
		t.Fatalf("exposition drift:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.CounterVec("a_total", "", "k").With("v").Add(1)
	h := r.Histogram("lat_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	s := r.Snapshot()
	want := []Sample{
		{Name: "a_total", Labels: `k="v"`, Value: 1},
		{Name: "b_total", Labels: "", Value: 2},
		{Name: "lat_seconds_count", Labels: "", Value: 2},
		{Name: "lat_seconds_sum", Labels: "", Value: 3.5},
	}
	if len(s) != len(want) {
		t.Fatalf("snapshot has %d samples, want %d: %+v", len(s), len(want), s)
	}
	for i, w := range want {
		if s[i] != w {
			t.Fatalf("sample %d = %+v, want %+v", i, s[i], w)
		}
	}
}

// TestConcurrentObservation drives every instrument kind from many
// goroutines (run under -race in CI) and checks the totals are exact —
// the registry's core promise is race-clean lock-free observation.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5})
	v := r.CounterVec("v_total", "", "who")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := string(rune('a' + w%2))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				v.With(who).Inc()
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := v.With("a").Value() + v.With("b").Value(); got != workers*per {
		t.Fatalf("vec total = %d, want %d", got, workers*per)
	}
}
