package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// Shard is one unit of a sharded batch match: a candidate group with
// the match context that analyzes it. Each shard's context carries its
// own analyzer — the per-shard analysis cache of a sharded repository —
// so shards stay independent: invalidating or mutating one shard's
// schemas never touches another shard's cached indexes.
type Shard struct {
	// Ctx analyzes this shard's schemas (and its own copy of the
	// incoming schema's index). Must be non-nil.
	Ctx *match.Context
	// Candidates are the shard's stored schemas to match against.
	Candidates []*schema.Schema
}

// ShardError records one shard's failure inside a partial batch: with
// BatchOptions.AllowPartial, MatchSharded degrades a failed or
// canceled shard to a missing result slice and reports the cause here
// instead of failing the whole batch.
type ShardError struct {
	// Shard is the failed shard's index into the shards slice.
	Shard int
	// Err is the first failure observed on the shard.
	Err error
}

func (e ShardError) Error() string { return fmt.Sprintf("core: shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e ShardError) Unwrap() error { return e.Err }

// joinCancel merges the request context with a shard context's own
// pre-installed cancellation source, so a pair stops when either
// fires. With no shard-side source the request context is used as is.
// The returned stop function detaches the propagation and releases the
// merged context's resources; callers must invoke it.
func joinCancel(req, own context.Context) (context.Context, func()) {
	if own == nil {
		return req, func() {}
	}
	merged, cancel := context.WithCancelCause(req)
	stop := context.AfterFunc(own, func() { cancel(context.Cause(own)) })
	return merged, func() { stop(); cancel(nil) }
}

// validateBatch checks the batch inputs and allocates the result
// slices, one per shard, index-aligned with the shard's candidates.
func validateBatch(incoming *schema.Schema, shards []Shard, cfg Config) ([][]*Result, error) {
	if len(cfg.Matchers) == 0 {
		return nil, fmt.Errorf("core: no matchers configured")
	}
	if err := incoming.Validate(); err != nil {
		return nil, fmt.Errorf("core: schema %s: %w", incoming.Name, err)
	}
	results := make([][]*Result, len(shards))
	for si, sh := range shards {
		if sh.Ctx == nil {
			return nil, fmt.Errorf("core: shard %d has no context", si)
		}
		for ci, c := range sh.Candidates {
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("core: shard %d candidate %d (%s): %w", si, ci, c.Name, err)
			}
		}
		results[si] = make([]*Result, len(sh.Candidates))
	}
	return results, nil
}

// batchEnv is the shared execution environment of a sharded batch: the
// worker budget spanning all shards, the pooled matrix arena, and the
// per-shard working contexts with their incoming indexes and column
// caches. It is built by setupBatch and torn down by close; both the
// exhaustive and the pruned scheduler run on it.
type batchEnv struct {
	budgetOwner *match.Context
	arena       *simcube.Arena
	bctxs       []*match.Context
	idx1s       []*analysis.SchemaIndex
	caches      []*match.BatchCache
	// closers tear the environment down; close runs them in reverse
	// registration order (transient evictions first, then analyzer
	// windows, then cancellation joins), matching the LIFO defer order
	// of the historical inline setup.
	closers []func()
}

// close releases the environment; callers must invoke it on every exit
// path (an errored or canceled batch must not leak either).
func (env *batchEnv) close() {
	for i := len(env.closers) - 1; i >= 0; i-- {
		env.closers[i]()
	}
}

// setupBatch assembles the execution environment for a sharded batch.
func setupBatch(ctx context.Context, incoming *schema.Schema, shards []Shard, cfg Config) *batchEnv {
	// One budget for the whole fan-out, owned by a context derived from
	// the first shard (cfg.Workers overriding its bound when non-zero);
	// every shard's working context shares its semaphore.
	budgetCtx := shards[0].Ctx
	if cfg.Workers != 0 {
		budgetCtx = budgetCtx.WithWorkers(cfg.Workers)
	}
	env := &batchEnv{
		budgetOwner: budgetCtx.WithWorkerBudget(),
		// The arena spans shards unconditionally — pooled storage is
		// score-neutral. The incoming index and the column cache are
		// shared only between shards whose auxiliary sources are
		// identical.
		arena:  simcube.NewArena(),
		bctxs:  make([]*match.Context, len(shards)),
		idx1s:  make([]*analysis.SchemaIndex, len(shards)),
		caches: make([]*match.BatchCache, len(shards)),
	}
	for si, sh := range shards {
		env.bctxs[si] = sh.Ctx.WithBudgetOf(env.budgetOwner)
		// Each shard observes the request context merged with whatever
		// cancellation source its own context already carried, so both
		// "the request died" and "this shard was canceled" stop its
		// row fills and pair claims.
		cctx, stopJoin := joinCancel(ctx, env.bctxs[si].Cancellation())
		env.closers = append(env.closers, stopJoin)
		env.bctxs[si] = env.bctxs[si].WithCancel(cctx)
		if si > 0 && env.bctxs[si].Sources() == env.bctxs[0].Sources() {
			env.idx1s[si] = env.idx1s[0]
			env.caches[si] = env.caches[0]
		} else {
			env.idx1s[si] = env.bctxs[si].Index(incoming)
			// A retained incoming schema (pinned = stored) draws on the
			// engine-scoped persistent column cache, so a later batch —
			// or a repeated single match — with the same incoming finds
			// its columns warm. A transient incoming keeps the per-batch
			// cache: its index is evicted below, and persisting columns
			// keyed by a dying index would just re-create the leak one
			// layer up.
			if cc := env.bctxs[si].Columns; cc != nil && env.bctxs[si].Pinned(incoming) {
				env.caches[si] = cc.ForIncoming(env.idx1s[si])
			} else {
				env.caches[si] = match.NewBatchCache()
			}
		}
	}
	// Analyzer batch windows: one per distinct analyzer, opened before
	// (and so — closers run LIFO — closed after) the transient
	// evictions below. While a window is open, a DELETE racing this
	// batch tombstones its schema, so a pair still in flight cannot
	// re-publish the deleted analysis; closing the window reclaims the
	// tombstones once no concurrent batch predates them.
	opened := make(map[*analysis.Analyzer]bool)
	for _, bctx := range env.bctxs {
		if a := bctx.Analyzer; a != nil && !opened[a] {
			opened[a] = true
			env.closers = append(env.closers, a.BeginBatch())
		}
	}
	// Cache lifecycle: the incoming schema of a batch is usually
	// request-scoped (a served inline schema); without eviction every
	// batch leaks one analyzer entry per engine that analyzed it, at
	// request rate in a long-running server. Stored schemas are pinned
	// by their engines and keep their analyses warm.
	env.closers = append(env.closers, func() {
		for _, bctx := range env.bctxs {
			bctx.EvictTransient(incoming)
		}
	})
	return env
}

// batchErrs collects a batch's failures: the first fatal error, plus
// per-shard failure latches for graceful degradation (a failed shard's
// remaining pairs are skipped, not matched into a result the caller
// will drop anyway).
type batchErrs struct {
	mu        sync.Mutex
	firstErr  error
	shardErrs []ShardError
	shardDown []atomic.Bool
}

func newBatchErrs(shards int) *batchErrs {
	return &batchErrs{shardDown: make([]atomic.Bool, shards)}
}

func (be *batchErrs) fail(err error) {
	be.mu.Lock()
	if be.firstErr == nil {
		be.firstErr = err
	}
	be.mu.Unlock()
}

func (be *batchErrs) failed() bool {
	be.mu.Lock()
	defer be.mu.Unlock()
	return be.firstErr != nil
}

func (be *batchErrs) failShard(si int, err error) {
	if be.shardDown[si].Swap(true) {
		return
	}
	be.mu.Lock()
	be.shardErrs = append(be.shardErrs, ShardError{Shard: si, Err: err})
	be.mu.Unlock()
}

// finish returns the first fatal error, or the shard errors ordered by
// shard index. Only call after all workers have returned.
func (be *batchErrs) finish() (error, []ShardError) {
	if be.firstErr != nil {
		return be.firstErr, nil
	}
	sort.Slice(be.shardErrs, func(a, b int) bool { return be.shardErrs[a].Shard < be.shardErrs[b].Shard })
	return nil, be.shardErrs
}

// runPairWorkers drives a work loop over the batch's worker budget:
// each pair worker owns one budget slot and claims pairs from the
// loop's shared counter, the main goroutine serving as one of the
// workers. The matchers inside a pair run sequentially on that slot,
// their row-parallel fills opportunistically taking any slots the
// other pair workers do not occupy.
func runPairWorkers(budgetOwner *match.Context, pairs int, work func()) {
	pairWorkers := match.ResolveWorkers(budgetOwner.Workers)
	if pairWorkers > pairs {
		pairWorkers = pairs
	}
	if pairWorkers <= 1 {
		budgetOwner.AcquireWorker()
		work()
		budgetOwner.ReleaseWorker()
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < pairWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			budgetOwner.AcquireWorker()
			defer budgetOwner.ReleaseWorker()
			work()
		}()
	}
	budgetOwner.AcquireWorker()
	work()
	budgetOwner.ReleaseWorker()
	wg.Wait()
}

// MatchSharded matches one incoming schema against per-shard candidate
// groups in a single scheduled batch — the shard-aware entry point of
// the repository server, and the scheduler MatchAll is the single-shard
// case of. All (shard, candidate) pairs are scheduled over ONE worker
// budget (shard count never multiplies parallelism), while every pair
// is analyzed and matched through its own shard's context. A non-zero
// cfg.Workers overrides the first shard context's worker bound for the
// whole batch, exactly like Match/MatchAll; with cfg.Workers == 0 the
// first shard's own bound governs. The result has one slice per shard,
// index-aligned with the shard's candidates, each entry bit-identical
// to Match(shard.Ctx, incoming, candidate, cfg) — scheduling, arenas
// and column caches never change a score.
//
// Shards sharing the first shard's auxiliary sources (the sharded
// repository's layout) share one incoming analysis and one column
// cache; a shard with its own sources gets its own of both, since
// cached name-similarity columns are only pure across contexts whose
// dictionaries agree.
//
// BatchOptions.TopK applies per shard: each shard retains its TopK
// best results (by combined schema similarity, earlier candidate on
// ties), exactly as a per-shard MatchAll would. Callers merging shards
// into a global shortlist cut the merged ranking to K again — the
// global top K is a subset of the per-shard top Ks. When an admissible
// per-candidate score bound is available, MatchShardedPruned reaches
// the same TopK results without matching every pair.
//
// Cancellation: once ctx is done (nil means context.Background), the
// workers stop claiming pairs, the row-parallel fills inside running
// pairs stop claiming rows, every pooled matrix is recycled, transient
// analyzer entries are evicted, and the cancellation cause is returned.
// A shard context carrying its own cancellation source (installed via
// match.Context.WithCancel before the call) stops just that shard's
// pairs.
//
// Failure: by default the first pair error aborts the whole batch.
// With BatchOptions.AllowPartial, a failing shard — a pair error or a
// shard-local cancellation — is dropped instead: its result slice is
// nil, the remaining shards complete normally, and the failures come
// back as ShardErrors (ordered by shard index). Cancellation of ctx is
// never degraded to a partial result.
func MatchSharded(ctx context.Context, incoming *schema.Schema, shards []Shard, cfg Config, opt BatchOptions) ([][]*Result, []ShardError, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results, err := validateBatch(incoming, shards, cfg)
	if err != nil {
		return nil, nil, err
	}
	if ctx.Err() != nil {
		return nil, nil, context.Cause(ctx)
	}
	type pair struct{ shard, cand int }
	var pairs []pair
	for si, sh := range shards {
		for ci := range sh.Candidates {
			pairs = append(pairs, pair{si, ci})
		}
	}
	if len(pairs) == 0 {
		return results, nil, nil
	}

	env := setupBatch(ctx, incoming, shards, cfg)
	defer env.close()
	errs := newBatchErrs(len(shards))

	// Pair-level scheduling over the global budget: workers claim
	// (shard, candidate) pairs from a shared counter.
	var next atomic.Int64
	work := func() {
		for {
			if ctx.Err() != nil || errs.failed() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(pairs) {
				return
			}
			p := pairs[i]
			if errs.shardDown[p.shard].Load() {
				continue
			}
			res, err := matchPair(env.bctxs[p.shard], env.idx1s[p.shard], incoming,
				shards[p.shard].Candidates[p.cand], cfg, env.arena, env.caches[p.shard], opt.KeepCubes)
			if err != nil {
				if opt.AllowPartial && ctx.Err() == nil {
					errs.failShard(p.shard, err)
					continue
				}
				errs.fail(err)
				return
			}
			results[p.shard][p.cand] = res
		}
	}
	runPairWorkers(env.budgetOwner, len(pairs), work)
	if ctx.Err() != nil {
		return nil, nil, context.Cause(ctx)
	}
	firstErr, shardErrs := errs.finish()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	// Degraded shards surface as a nil result slice plus a ShardError;
	// completed pairs of a failed shard are dropped with it — a shard
	// either contributes its full (TopK-prunable) ranking or nothing.
	for _, se := range shardErrs {
		results[se.Shard] = nil
	}
	if opt.TopK > 0 {
		for _, shardResults := range results {
			if opt.TopK < len(shardResults) {
				pruneToTopK(shardResults, opt.TopK)
			}
		}
	}
	return results, shardErrs, nil
}
