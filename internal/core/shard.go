package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// Shard is one unit of a sharded batch match: a candidate group with
// the match context that analyzes it. Each shard's context carries its
// own analyzer — the per-shard analysis cache of a sharded repository —
// so shards stay independent: invalidating or mutating one shard's
// schemas never touches another shard's cached indexes.
type Shard struct {
	// Ctx analyzes this shard's schemas (and its own copy of the
	// incoming schema's index). Must be non-nil.
	Ctx *match.Context
	// Candidates are the shard's stored schemas to match against.
	Candidates []*schema.Schema
}

// MatchSharded matches one incoming schema against per-shard candidate
// groups in a single scheduled batch — the shard-aware entry point of
// the repository server, and the scheduler MatchAll is the single-shard
// case of. All (shard, candidate) pairs are scheduled over ONE worker
// budget (shard count never multiplies parallelism), while every pair
// is analyzed and matched through its own shard's context. A non-zero
// cfg.Workers overrides the first shard context's worker bound for the
// whole batch, exactly like Match/MatchAll; with cfg.Workers == 0 the
// first shard's own bound governs. The result has one slice per shard,
// index-aligned with the shard's candidates, each entry bit-identical
// to Match(shard.Ctx, incoming, candidate, cfg) — scheduling, arenas
// and column caches never change a score.
//
// Shards sharing the first shard's auxiliary sources (the sharded
// repository's layout) share one incoming analysis and one column
// cache; a shard with its own sources gets its own of both, since
// cached name-similarity columns are only pure across contexts whose
// dictionaries agree.
//
// BatchOptions.TopK applies per shard: each shard retains its TopK
// best results (by combined schema similarity, earlier candidate on
// ties), exactly as a per-shard MatchAll would. Callers merging shards
// into a global shortlist cut the merged ranking to K again — the
// global top K is a subset of the per-shard top Ks.
func MatchSharded(incoming *schema.Schema, shards []Shard, cfg Config, opt BatchOptions) ([][]*Result, error) {
	if len(cfg.Matchers) == 0 {
		return nil, fmt.Errorf("core: no matchers configured")
	}
	if err := incoming.Validate(); err != nil {
		return nil, fmt.Errorf("core: schema %s: %w", incoming.Name, err)
	}
	results := make([][]*Result, len(shards))
	type pair struct{ shard, cand int }
	var pairs []pair
	for si, sh := range shards {
		if sh.Ctx == nil {
			return nil, fmt.Errorf("core: shard %d has no context", si)
		}
		for ci, c := range sh.Candidates {
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("core: shard %d candidate %d (%s): %w", si, ci, c.Name, err)
			}
			pairs = append(pairs, pair{si, ci})
		}
		results[si] = make([]*Result, len(sh.Candidates))
	}
	if len(pairs) == 0 {
		return results, nil
	}

	// One budget for the whole fan-out, owned by a context derived from
	// the first shard (cfg.Workers overriding its bound when non-zero);
	// every shard's working context shares its semaphore.
	budgetCtx := shards[0].Ctx
	if cfg.Workers != 0 {
		budgetCtx = budgetCtx.WithWorkers(cfg.Workers)
	}
	budgetOwner := budgetCtx.WithWorkerBudget()
	// The arena spans shards unconditionally — pooled storage is
	// score-neutral. The incoming index and the column cache are shared
	// only between shards whose auxiliary sources are identical.
	arena := simcube.NewArena()
	bctxs := make([]*match.Context, len(shards))
	idx1s := make([]*analysis.SchemaIndex, len(shards))
	caches := make([]*match.BatchCache, len(shards))
	for si, sh := range shards {
		bctxs[si] = sh.Ctx.WithBudgetOf(budgetOwner)
		if si > 0 && bctxs[si].Sources() == bctxs[0].Sources() {
			idx1s[si] = idx1s[0]
			caches[si] = caches[0]
		} else {
			idx1s[si] = bctxs[si].Index(incoming)
			// A retained incoming schema (pinned = stored) draws on the
			// engine-scoped persistent column cache, so a later batch —
			// or a repeated single match — with the same incoming finds
			// its columns warm. A transient incoming keeps the per-batch
			// cache: its index is evicted below, and persisting columns
			// keyed by a dying index would just re-create the leak one
			// layer up.
			if cc := bctxs[si].Columns; cc != nil && bctxs[si].Pinned(incoming) {
				caches[si] = cc.ForIncoming(idx1s[si])
			} else {
				caches[si] = match.NewBatchCache()
			}
		}
	}
	// Cache lifecycle: the incoming schema of a batch is usually
	// request-scoped (a served inline schema); without eviction every
	// batch leaks one analyzer entry per engine that analyzed it, at
	// request rate in a long-running server. Stored schemas are pinned
	// by their engines and keep their analyses warm. Runs on every
	// exit path — an errored batch must not leak either.
	defer func() {
		for _, bctx := range bctxs {
			bctx.EvictTransient(incoming)
		}
	}()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	// Pair-level scheduling over the global budget: each pair worker
	// owns one budget slot and claims (shard, candidate) pairs from a
	// shared counter; the matchers inside a pair run sequentially on
	// that slot, their row-parallel fills opportunistically taking any
	// slots the other pair workers do not occupy.
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(pairs) || failed() {
				return
			}
			p := pairs[i]
			res, err := matchPair(bctxs[p.shard], idx1s[p.shard], incoming,
				shards[p.shard].Candidates[p.cand], cfg, arena, caches[p.shard], opt.KeepCubes)
			if err != nil {
				fail(err)
				return
			}
			results[p.shard][p.cand] = res
		}
	}
	pairWorkers := match.ResolveWorkers(budgetOwner.Workers)
	if pairWorkers > len(pairs) {
		pairWorkers = len(pairs)
	}
	if pairWorkers <= 1 {
		budgetOwner.AcquireWorker()
		work()
		budgetOwner.ReleaseWorker()
	} else {
		var wg sync.WaitGroup
		for w := 1; w < pairWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				budgetOwner.AcquireWorker()
				defer budgetOwner.ReleaseWorker()
				work()
			}()
		}
		budgetOwner.AcquireWorker()
		work()
		budgetOwner.ReleaseWorker()
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if opt.TopK > 0 {
		for _, shardResults := range results {
			if opt.TopK < len(shardResults) {
				pruneToTopK(shardResults, opt.TopK)
			}
		}
	}
	return results, nil
}
