package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/match"
	"repro/internal/schema"
)

// BoundedShard is one shard of a pruned batch match: a candidate group
// plus one admissible SchemaSim upper bound per candidate (typically
// from a candidates.Index). Two sentinel bounds steer scheduling:
// +Inf forces a pair to be matched (an unindexed or stale candidate
// must never be skipped on a guess), and -Inf excludes a pair outright
// without matching it (MaxCandidates shortlisting — the only bound
// value that can make results deviate from the exhaustive scan).
type BoundedShard struct {
	Shard
	// Bounds is index-aligned with Candidates; Bounds[i] >= the real
	// combined schema similarity of (incoming, Candidates[i]).
	Bounds []float64
}

// PruneStats reports how much work candidate pruning saved in one
// batch.
type PruneStats struct {
	// Candidates is the total candidate count across shards.
	Candidates int
	// Matched is the number of pairs the full pipeline ran on.
	Matched int
	// Skipped is the number of pairs skipped: bound below the running
	// k-th best real score, or excluded by a -Inf bound.
	Skipped int
}

// Ratio returns the skipped fraction in [0, 1] (0 for an empty batch).
func (ps PruneStats) Ratio() float64 {
	if ps.Candidates == 0 {
		return 0
	}
	return float64(ps.Skipped) / float64(ps.Candidates)
}

// PruneCounters accumulates PruneStats across batches. Per-batch
// snapshots are last-write-wins under concurrent matches (the /readyz
// flapping bug); these cumulative counters are what time-series
// monitoring and the serving readiness report aggregate from. Safe for
// concurrent use; the zero value is ready.
type PruneCounters struct {
	batches    atomic.Uint64
	candidates atomic.Uint64
	matched    atomic.Uint64
	skipped    atomic.Uint64
}

// Record folds one batch's stats into the totals. Nil-safe so
// unmetered paths can call it unconditionally.
func (pc *PruneCounters) Record(ps PruneStats) {
	if pc == nil {
		return
	}
	pc.batches.Add(1)
	pc.candidates.Add(uint64(ps.Candidates))
	pc.matched.Add(uint64(ps.Matched))
	pc.skipped.Add(uint64(ps.Skipped))
}

// Totals returns the counters' current values.
func (pc *PruneCounters) Totals() PruneTotals {
	if pc == nil {
		return PruneTotals{}
	}
	return PruneTotals{
		Batches:    pc.batches.Load(),
		Candidates: pc.candidates.Load(),
		Matched:    pc.matched.Load(),
		Skipped:    pc.skipped.Load(),
	}
}

// PruneTotals is a snapshot of cumulative pruning work since the
// counters were created.
type PruneTotals struct {
	// Batches is the number of pruned batch matches recorded.
	Batches uint64
	// Candidates is the total candidates considered across batches.
	Candidates uint64
	// Matched is the total pairs the full pipeline ran on.
	Matched uint64
	// Skipped is the total pairs pruned away.
	Skipped uint64
}

// Ratio returns the cumulative skipped fraction in [0, 1].
func (pt PruneTotals) Ratio() float64 {
	if pt.Candidates == 0 {
		return 0
	}
	return float64(pt.Skipped) / float64(pt.Candidates)
}

// thetaTracker maintains one shard's running k-th best real schema
// similarity as a k-bounded min-heap. The current threshold is
// mirrored into an atomic (-1 while fewer than k results exist, so
// nothing is skipped before the heap fills — every admissible bound is
// >= 0) for lock-free reads on the claim path.
type thetaTracker struct {
	mu   sync.Mutex
	heap []float64
	k    int
	bits atomic.Uint64
}

func (t *thetaTracker) init(k int) {
	t.k = k
	t.bits.Store(math.Float64bits(-1))
}

// theta returns the current skip threshold: the k-th best real score
// so far, or -1 while fewer than k pairs completed.
func (t *thetaTracker) theta() float64 { return math.Float64frombits(t.bits.Load()) }

// push records one completed pair's real score. The threshold is
// monotonically non-decreasing, which is what makes racing skips safe:
// a bound observed below theta is below every later theta too.
func (t *thetaTracker) push(sim float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.heap
	if len(h) < t.k {
		h = append(h, sim)
		// Sift up.
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if h[p] <= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		t.heap = h
		if len(h) == t.k {
			t.bits.Store(math.Float64bits(h[0]))
		}
		return
	}
	if sim <= h[0] {
		return
	}
	h[0] = sim
	// Sift down.
	for i := 0; ; {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	t.bits.Store(math.Float64bits(h[0]))
}

// pruneSparseTopK nils out every non-nil result not among the k best
// by combined schema similarity, ties breaking toward the earlier
// candidate — pruneToTopK's semantics over a sparse result slice
// (skipped pairs are already nil).
func pruneSparseTopK(results []*Result, k int) {
	var order []int
	for i, r := range results {
		if r != nil {
			order = append(order, i)
		}
	}
	if len(order) <= k {
		return
	}
	sort.SliceStable(order, func(a, b int) bool {
		return results[order[a]].SchemaSim > results[order[b]].SchemaSim
	})
	for _, i := range order[k:] {
		results[i] = nil
	}
}

// MatchShardedPruned is MatchSharded with safe TopK pruning: given an
// admissible upper bound per candidate, it matches pairs in descending
// bound order and skips every pair whose bound falls strictly below
// the running k-th best real score — such a pair's real score is below
// k results that the exhaustive scan would also rank above it, so it
// can never enter the TopK-cut merged ranking. With correct
// (admissible, no -Inf) bounds the merged-and-cut ranking every caller
// derives (per-shard TopK results, merged and cut to TopK again) is
// bit-identical to MatchSharded's with the same options; only the
// amount of work differs. PruneStats reports the saving.
//
// Without AllowPartial the skip threshold is global — every shard's
// completed scores raise it, which is what lets pruning work when the
// strong candidates are spread thinly across many shards. A skipped
// pair's score is then strictly below the final k-th best real score
// overall, so the per-shard result slices may retain slightly
// different tails than MatchSharded's, but never a candidate that
// could reach the merged TopK, and never drop one that could. With
// AllowPartial the threshold is tracked per shard instead: a shard
// either contributes its full TopK ranking or nothing, and a global
// threshold would let a failed shard's scores prune a surviving
// shard's candidates.
//
// Requires opt.TopK > 0: without a K there is no k-th score to prune
// against — use MatchSharded. Cancellation, AllowPartial and KeepCubes
// behave exactly as in MatchSharded.
func MatchShardedPruned(ctx context.Context, incoming *schema.Schema, shards []BoundedShard, cfg Config, opt BatchOptions) ([][]*Result, PruneStats, []ShardError, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.TopK <= 0 {
		return nil, PruneStats{}, nil, fmt.Errorf("core: pruned match requires TopK > 0")
	}
	plain := make([]Shard, len(shards))
	for si, sh := range shards {
		if len(sh.Bounds) != len(sh.Candidates) {
			return nil, PruneStats{}, nil, fmt.Errorf("core: shard %d has %d bounds for %d candidates",
				si, len(sh.Bounds), len(sh.Candidates))
		}
		plain[si] = sh.Shard
	}
	results, err := validateBatch(incoming, plain, cfg)
	if err != nil {
		return nil, PruneStats{}, nil, err
	}
	if ctx.Err() != nil {
		return nil, PruneStats{}, nil, context.Cause(ctx)
	}

	type boundedPair struct {
		shard, cand int
		bound       float64
	}
	var stats PruneStats
	var pairs []boundedPair
	for si, sh := range shards {
		stats.Candidates += len(sh.Candidates)
		for ci := range sh.Candidates {
			b := sh.Bounds[ci]
			if math.IsInf(b, -1) {
				stats.Skipped++
				continue
			}
			pairs = append(pairs, boundedPair{si, ci, b})
		}
	}
	if len(pairs) == 0 {
		return results, stats, nil, nil
	}
	// Descending bound order: the pairs most likely to populate the
	// top K run first, raising the threshold as early as possible.
	// Within one shard the order is descending too, so the first
	// skipped pair proves every later pair of that shard skippable —
	// the shard is "cut" and its tail drains at counter speed.
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].bound != pairs[b].bound {
			return pairs[a].bound > pairs[b].bound
		}
		if pairs[a].shard != pairs[b].shard {
			return pairs[a].shard < pairs[b].shard
		}
		return pairs[a].cand < pairs[b].cand
	})

	env := setupBatch(ctx, incoming, plain, cfg)
	defer env.close()
	errs := newBatchErrs(len(shards))
	// One global tracker unless AllowPartial forces per-shard ones (see
	// the doc comment). thetaOf maps a shard to its tracker either way.
	ntrack := 1
	if opt.AllowPartial {
		ntrack = len(shards)
	}
	thetas := make([]thetaTracker, ntrack)
	for i := range thetas {
		thetas[i].init(opt.TopK)
	}
	thetaOf := func(shard int) *thetaTracker {
		if opt.AllowPartial {
			return &thetas[shard]
		}
		return &thetas[0]
	}
	shardCut := make([]atomic.Bool, len(shards))
	var matched, skipped atomic.Int64

	var next atomic.Int64
	work := func() {
		for {
			if ctx.Err() != nil || errs.failed() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(pairs) {
				return
			}
			p := pairs[i]
			if errs.shardDown[p.shard].Load() {
				continue
			}
			if shardCut[p.shard].Load() {
				skipped.Add(1)
				continue
			}
			if p.bound < thetaOf(p.shard).theta() {
				// Safe skip: real <= bound < theta <= the final k-th best
				// score this tracker covers, strictly — the merged TopK cut
				// would drop this pair too, even on ties. The cut latch
				// stays per shard: within one shard pairs arrive in
				// descending bound order, and theta only rises, so the
				// first skip proves the shard's tail skippable.
				shardCut[p.shard].Store(true)
				skipped.Add(1)
				continue
			}
			res, err := matchPair(env.bctxs[p.shard], env.idx1s[p.shard], incoming,
				shards[p.shard].Candidates[p.cand], cfg, env.arena, env.caches[p.shard], opt.KeepCubes)
			if err != nil {
				if opt.AllowPartial && ctx.Err() == nil {
					errs.failShard(p.shard, err)
					continue
				}
				errs.fail(err)
				return
			}
			results[p.shard][p.cand] = res
			thetaOf(p.shard).push(res.SchemaSim)
			matched.Add(1)
		}
	}
	runPairWorkers(env.budgetOwner, len(pairs), work)
	if ctx.Err() != nil {
		return nil, PruneStats{}, nil, context.Cause(ctx)
	}
	firstErr, shardErrs := errs.finish()
	if firstErr != nil {
		return nil, PruneStats{}, nil, firstErr
	}
	for _, se := range shardErrs {
		results[se.Shard] = nil
	}
	stats.Matched = int(matched.Load())
	stats.Skipped += int(skipped.Load())
	for _, shardResults := range results {
		pruneSparseTopK(shardResults, opt.TopK)
	}
	return results, stats, shardErrs, nil
}

// MatchAllPruned is the single-shard form of MatchShardedPruned — the
// pruned counterpart of MatchAll. Results are bit-identical to
// MatchAll with the same TopK given admissible bounds without -Inf
// exclusions.
func MatchAllPruned(ctx context.Context, mctx *match.Context, incoming *schema.Schema, candidates []*schema.Schema, bounds []float64, cfg Config, opt BatchOptions) ([]*Result, PruneStats, error) {
	if mctx == nil {
		mctx = &match.Context{}
	}
	opt.AllowPartial = false
	results, stats, _, err := MatchShardedPruned(ctx, incoming,
		[]BoundedShard{{Shard: Shard{Ctx: mctx, Candidates: candidates}, Bounds: bounds}}, cfg, opt)
	if err != nil {
		return nil, PruneStats{}, err
	}
	return results[0], stats, nil
}
