// Package core implements COMA's match processing (Do & Rahm, VLDB
// 2002, Section 3, Figure 2): the match operation takes two schemas and
// determines a mapping indicating which elements logically correspond.
// Processing runs in one or more iterations, each consisting of an
// optional user feedback phase, the execution of multiple independent
// matchers from the library, and the combination of the individual
// match results (aggregation, direction, selection).
//
// Automatic mode performs a single iteration with a default or
// caller-specified strategy; interactive mode is exposed through
// Session, which carries user feedback across iterations.
package core

import (
	"fmt"
	"sync"

	"repro/internal/combine"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// Config selects the match strategy of one iteration: the matchers to
// execute and the strategies to combine their results.
type Config struct {
	// Matchers are executed independently; their results form the
	// similarity cube. Must be non-empty.
	Matchers []match.Matcher
	// Strategy combines the cube into the match result. Strategy.Comb
	// additionally defines the schema similarity computation.
	Strategy combine.Strategy
	// Feedback, when set, pins user-asserted (mis)matches in the
	// aggregated matrix before selection (the UserFeedback matcher).
	Feedback *match.Feedback
	// Workers bounds the parallelism of the matcher execution phase:
	// the k independent matchers run concurrently (one goroutine per
	// matcher) and each matcher fills its matrix row-parallel. 0 means
	// runtime.NumCPU(); 1 forces fully sequential execution. Every
	// similarity is a pure function of its inputs, so the result is
	// bit-identical for any worker count.
	Workers int
}

// DefaultConfig returns the paper's default match operation: the
// combination of all five hybrid matchers ("All") under
// (Average, Both, Threshold(0.5)+Delta(0.02)).
func DefaultConfig() Config {
	return Config{
		Matchers: []match.Matcher{
			match.NewName(),
			match.NewNamePath(),
			match.NewTypeName(),
			match.NewChildren(),
			match.NewLeaves(),
		},
		Strategy: combine.Default(),
	}
}

// Result is the outcome of one match iteration.
type Result struct {
	// Cube holds the intermediate result of every executed matcher; it
	// is what the repository persists for later combination/selection.
	Cube *simcube.Cube
	// Matrix is the aggregated (and feedback-pinned) similarity matrix.
	Matrix *simcube.Matrix
	// Mapping is the selected match result.
	Mapping *simcube.Mapping
	// SchemaSim is the combined similarity of the two schemas derived
	// from the match result (combination step 3).
	SchemaSim float64
}

// ExecuteMatchers runs the matcher execution phase: every matcher
// produces one layer of the similarity cube over the schemas' paths.
// Both schemas are analyzed up front — through the context's analyzer
// cache, so a schema matched repeatedly pays analysis once — and the
// resulting indexes are installed on the context shared by all k
// matchers. The matchers are independent (paper Section 3), so they
// execute concurrently — one goroutine per matcher — unless the
// context's worker bound is 1. Layer order always follows the matchers
// slice, and results are bit-identical to sequential execution.
//
// A context observing a cancellation source (match.Context.WithCancel)
// stops cooperatively: the row-parallel fills stop claiming rows, the
// partially filled layers are released back to the context's arena,
// and the cancellation cause is returned instead of a cube.
func ExecuteMatchers(ctx *match.Context, s1, s2 *schema.Schema, matchers []match.Matcher) (*simcube.Cube, error) {
	if len(matchers) == 0 {
		return nil, fmt.Errorf("core: no matchers configured")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Open an analyzer batch window for the duration of the execution:
	// a schema deletion racing this match tombstones its entry, so the
	// builds below cannot re-publish a deleted schema's analysis.
	end := ctx.BeginAnalysis()
	defer end()
	// Analyze once, before any concurrent access: the indexes capture
	// the schemas' lazily cached path enumerations and every derived
	// per-element artifact.
	idx1, idx2 := ctx.Index(s1), ctx.Index(s2)
	ctx = ctx.WithIndexes(idx1, idx2)
	if ctx.Columns != nil && ctx.Pinned(s1) {
		// Engine-scoped column reuse for the single-pair path: repeated
		// matches of one retained incoming schema against changing
		// partners share scored distinct-name columns exactly like the
		// pairs of one batch do (same purity argument — the incoming
		// index freezes names and source versions). Transient schemas
		// are excluded for the same reason MatchSharded excludes them:
		// persisting columns keyed by a short-lived index would retain
		// dead indexes until LRU turnover.
		ctx = ctx.WithBatchCache(ctx.Columns.ForIncoming(idx1))
	}
	cube := simcube.NewCube(idx1.Keys, idx2.Keys)
	layers := make([]*simcube.Matrix, len(matchers))
	if ctx != nil && ctx.Workers == 1 || len(matchers) == 1 {
		for i, m := range matchers {
			if ctx.Err() != nil {
				break
			}
			layers[i] = m.Match(ctx, s1, s2)
		}
	} else {
		// One goroutine per matcher, all drawing on a single shared
		// worker budget: a running matcher occupies one slot and its
		// row-parallel fill claims extra slots only while the budget
		// allows, so total parallelism stays bounded by the worker
		// count rather than multiplying per matcher.
		bctx := ctx.WithWorkerBudget()
		var wg sync.WaitGroup
		wg.Add(len(matchers))
		for i, m := range matchers {
			go func() {
				defer wg.Done()
				bctx.AcquireWorker()
				defer bctx.ReleaseWorker()
				layers[i] = m.Match(bctx, s1, s2)
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		// Canceled mid-execution: the fills stopped claiming rows, so
		// the layers are partial. Recycle them (and nothing else —
		// analyses cached above stay subject to the normal eviction
		// discipline) and surface the cause.
		for _, l := range layers {
			l.ReleaseTo(ctx.Arena())
		}
		return nil, err
	}
	for i, m := range matchers {
		if err := cube.AddLayer(m.Name(), layers[i]); err != nil {
			// A rejected layer (and every later one not yet adopted by
			// the cube) is still owned here; recycle them with the cube
			// so a faulty matcher cannot leak pooled storage.
			for _, l := range layers[i:] {
				l.ReleaseTo(ctx.Arena())
			}
			cube.ReleaseTo(ctx.Arena())
			return nil, err
		}
	}
	return cube, nil
}

// CombineCube runs the combination phase on an existing cube:
// aggregation of matcher-specific results, feedback pinning, direction
// and selection of match candidates, and computation of the combined
// schema similarity.
func CombineCube(cube *simcube.Cube, s1, s2 *schema.Schema, strategy combine.Strategy, feedback *match.Feedback) (*Result, error) {
	matrix, err := strategy.Agg.Apply(cube)
	if err != nil {
		return nil, err
	}
	if feedback != nil {
		feedback.Pin(matrix)
	}
	mapping := combine.Select(matrix, strategy.Dir, strategy.Sel)
	mapping.FromSchema = s1.Name
	mapping.ToSchema = s2.Name
	mapping.Sort()
	schemaSim := combine.CombinedSimilarity(strategy.Comb, len(s1.Paths()), len(s2.Paths()), mapping)
	return &Result{Cube: cube, Matrix: matrix, Mapping: mapping, SchemaSim: schemaSim}, nil
}

// Match performs one automatic match iteration on two schemas. A
// non-zero cfg.Workers overrides the context's worker bound for this
// iteration.
func Match(ctx *match.Context, s1, s2 *schema.Schema, cfg Config) (*Result, error) {
	if err := s1.Validate(); err != nil {
		return nil, fmt.Errorf("core: schema %s: %w", s1.Name, err)
	}
	if err := s2.Validate(); err != nil {
		return nil, fmt.Errorf("core: schema %s: %w", s2.Name, err)
	}
	if cfg.Workers != 0 {
		ctx = ctx.WithWorkers(cfg.Workers)
	}
	cube, err := ExecuteMatchers(ctx, s1, s2, cfg.Matchers)
	if err != nil {
		return nil, err
	}
	return CombineCube(cube, s1, s2, cfg.Strategy, cfg.Feedback)
}

// Session drives the interactive and iterative match process: the user
// inspects the proposed candidates of each iteration, accepts or
// rejects them, optionally adjusts the strategy, and re-runs. Feedback
// persists across iterations and pins the asserted pairs.
type Session struct {
	ctx      *match.Context
	s1, s2   *schema.Schema
	cfg      Config
	last     *Result
	iterated int
}

// NewSession prepares an interactive match session. The config's
// Feedback field is initialized when nil.
func NewSession(ctx *match.Context, s1, s2 *schema.Schema, cfg Config) *Session {
	if cfg.Feedback == nil {
		cfg.Feedback = match.NewFeedback()
	}
	return &Session{ctx: ctx, s1: s1, s2: s2, cfg: cfg}
}

// Accept approves a correspondence; it will carry similarity 1 in all
// subsequent iterations.
func (s *Session) Accept(from, to string) { s.cfg.Feedback.Accept(from, to) }

// Reject declares a mismatch; it will carry similarity 0 in all
// subsequent iterations.
func (s *Session) Reject(from, to string) { s.cfg.Feedback.Reject(from, to) }

// SetStrategy replaces the combination strategy for later iterations.
func (s *Session) SetStrategy(st combine.Strategy) { s.cfg.Strategy = st }

// SetMatchers replaces the matcher selection for later iterations.
func (s *Session) SetMatchers(ms []match.Matcher) { s.cfg.Matchers = ms }

// Iterate runs one match iteration with the current strategy and
// accumulated feedback.
func (s *Session) Iterate() (*Result, error) {
	res, err := Match(s.ctx, s.s1, s.s2, s.cfg)
	if err != nil {
		return nil, err
	}
	s.last = res
	s.iterated++
	return res, nil
}

// Last returns the most recent iteration's result (nil before the
// first Iterate).
func (s *Session) Last() *Result { return s.last }

// Iterations returns the number of completed iterations.
func (s *Session) Iterations() int { return s.iterated }

// Feedback exposes the session's accumulated user feedback.
func (s *Session) Feedback() *match.Feedback { return s.cfg.Feedback }
