package core

import (
	"testing"

	"repro/internal/match"
	"repro/internal/workload"
)

// TestExecuteMatchersParallelMatchesSequential is the engine-level
// golden test: running the default five matchers concurrently (and
// with row-parallel fills) yields a cube bit-identical to the fully
// sequential execution, layer names and order included.
func TestExecuteMatchersParallelMatchesSequential(t *testing.T) {
	task := workload.Tasks()[0]
	seqCube, err := ExecuteMatchers(match.NewContext().WithWorkers(1),
		task.S1, task.S2, DefaultConfig().Matchers)
	if err != nil {
		t.Fatal(err)
	}
	parCube, err := ExecuteMatchers(match.NewContext().WithWorkers(4),
		task.S1, task.S2, DefaultConfig().Matchers)
	if err != nil {
		t.Fatal(err)
	}
	if seqCube.Layers() != parCube.Layers() {
		t.Fatalf("layers %d vs %d", seqCube.Layers(), parCube.Layers())
	}
	for l := 0; l < seqCube.Layers(); l++ {
		if seqCube.Matchers()[l] != parCube.Matchers()[l] {
			t.Fatalf("layer %d: name %q vs %q", l, seqCube.Matchers()[l], parCube.Matchers()[l])
		}
		sm, pm := seqCube.LayerAt(l), parCube.LayerAt(l)
		for i := 0; i < sm.Rows(); i++ {
			for j := 0; j < sm.Cols(); j++ {
				if sm.Get(i, j) != pm.Get(i, j) {
					t.Fatalf("layer %q cell (%d,%d): %v sequential, %v parallel",
						seqCube.Matchers()[l], i, j, sm.Get(i, j), pm.Get(i, j))
				}
			}
		}
	}
}

// TestMatchWorkersIdenticalResults runs the full match operation across
// worker counts and checks mapping, matrix and schema similarity are
// identical.
func TestMatchWorkersIdenticalResults(t *testing.T) {
	task := workload.Tasks()[1]
	ctx := match.NewContext()
	base, err := Match(ctx, task.S1, task.S2, Config{
		Matchers: DefaultConfig().Matchers,
		Strategy: DefaultConfig().Strategy,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		res, err := Match(ctx, task.S1, task.S2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.SchemaSim != base.SchemaSim {
			t.Errorf("workers=%d: schema sim %v, sequential %v", workers, res.SchemaSim, base.SchemaSim)
		}
		bc, rc := base.Mapping.Correspondences(), res.Mapping.Correspondences()
		if len(bc) != len(rc) {
			t.Fatalf("workers=%d: %d correspondences, sequential %d", workers, len(rc), len(bc))
		}
		for i := range bc {
			if bc[i] != rc[i] {
				t.Errorf("workers=%d: correspondence %d = %v, sequential %v", workers, i, rc[i], bc[i])
			}
		}
		for i := 0; i < base.Matrix.Rows(); i++ {
			for j := 0; j < base.Matrix.Cols(); j++ {
				if base.Matrix.Get(i, j) != res.Matrix.Get(i, j) {
					t.Fatalf("workers=%d: matrix cell (%d,%d) differs", workers, i, j)
				}
			}
		}
	}
}
