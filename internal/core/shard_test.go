package core

import (
	"context"
	"testing"

	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/workload"
)

// shardsOf splits candidates into n round-robin groups, each with a
// fresh context — the per-shard analyzer layout of a sharded store.
func shardsOf(candidates []*schema.Schema, n int) []Shard {
	shards := make([]Shard, n)
	for i := range shards {
		shards[i].Ctx = match.NewContext()
	}
	for i, c := range candidates {
		s := &shards[i%n]
		s.Candidates = append(s.Candidates, c)
	}
	return shards
}

// TestMatchShardedGolden pins MatchSharded bit-identical to a direct
// Match per pair, for several shard counts and worker bounds.
func TestMatchShardedGolden(t *testing.T) {
	all := workload.Candidates(9)
	incoming, candidates := all[0], all[1:]
	cfg := DefaultConfig()

	ref := match.NewContext()
	want := make([]*Result, len(candidates))
	for i, c := range candidates {
		var err error
		want[i], err = Match(ref, incoming, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, nShards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 0} {
			cfg := cfg
			cfg.Workers = workers
			shards := shardsOf(candidates, nShards)
			got, shardErrs, err := MatchSharded(context.Background(), incoming, shards, cfg, BatchOptions{})
			if len(shardErrs) != 0 {
				t.Fatalf("unexpected shard errors: %v", shardErrs)
			}
			if err != nil {
				t.Fatal(err)
			}
			for si, shardResults := range got {
				for ci, res := range shardResults {
					// Map the shard slot back to the original
					// candidate index (round-robin layout).
					orig := ci*nShards + si
					w := want[orig]
					if res.SchemaSim != w.SchemaSim {
						t.Errorf("shards=%d workers=%d %s: sim %v, want %v",
							nShards, workers, shards[si].Candidates[ci].Name, res.SchemaSim, w.SchemaSim)
					}
					gc, wc := res.Mapping.Correspondences(), w.Mapping.Correspondences()
					if len(gc) != len(wc) {
						t.Fatalf("shards=%d workers=%d %s: %d correspondences, want %d",
							nShards, workers, shards[si].Candidates[ci].Name, len(gc), len(wc))
					}
					for k := range gc {
						if gc[k] != wc[k] {
							t.Errorf("shards=%d workers=%d %s: corr %d = %v, want %v",
								nShards, workers, shards[si].Candidates[ci].Name, k, gc[k], wc[k])
						}
					}
				}
			}
		}
	}
}

// TestMatchShardedTopK prunes per shard: each shard keeps its K best,
// identical to a per-shard MatchAll with the same option.
func TestMatchShardedTopK(t *testing.T) {
	all := workload.Candidates(9)
	incoming, candidates := all[0], all[1:]
	cfg := DefaultConfig()
	shards := shardsOf(candidates, 2)
	got, _, err := MatchSharded(context.Background(), incoming, shards, cfg, BatchOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for si, shardResults := range got {
		kept := 0
		for _, res := range shardResults {
			if res != nil {
				kept++
			}
		}
		if kept != 2 {
			t.Errorf("shard %d kept %d results, want 2", si, kept)
		}
	}
}

// TestMatchShardedEdgeCases: empty shards, no candidates, nil context.
func TestMatchShardedEdgeCases(t *testing.T) {
	all := workload.Candidates(2)
	incoming := all[0]
	cfg := DefaultConfig()

	res, _, err := MatchSharded(context.Background(), incoming, nil, cfg, BatchOptions{})
	if err != nil || len(res) != 0 {
		t.Errorf("no shards: res=%v err=%v", res, err)
	}
	res, _, err = MatchSharded(context.Background(), incoming, []Shard{{Ctx: match.NewContext()}}, cfg, BatchOptions{})
	if err != nil || len(res) != 1 || len(res[0]) != 0 {
		t.Errorf("empty shard: res=%v err=%v", res, err)
	}
	if _, _, err := MatchSharded(context.Background(), incoming, []Shard{{Candidates: all[1:]}}, cfg, BatchOptions{}); err == nil {
		t.Error("nil shard context accepted")
	}
	if _, _, err := MatchSharded(context.Background(), incoming, nil, Config{}, BatchOptions{}); err == nil {
		t.Error("empty matcher set accepted")
	}
	// A nil request context is accepted (treated as Background).
	if _, _, err := MatchSharded(nil, incoming, nil, cfg, BatchOptions{}); err != nil {
		t.Errorf("nil request context: %v", err)
	}
	// A pre-canceled request context fails fast with its cause.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MatchSharded(cctx, incoming, shardsOf(all[1:], 1), cfg, BatchOptions{}); err == nil {
		t.Error("pre-canceled context accepted")
	}
}
