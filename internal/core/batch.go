package core

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// BatchOptions tune one MatchAll batch beyond the per-iteration Config.
type BatchOptions struct {
	// TopK, when positive, retains only the TopK best results by
	// combined schema similarity (candidate order breaking ties);
	// pruned slots of the result slice are nil. Every pair is still
	// matched — the ranking needs its score — but pruned pairs retain
	// no matrices or mappings.
	TopK int
	// KeepCubes retains each result's similarity cube. By default the
	// scheduler recycles cube layers through the batch arena at
	// cube→mapping extraction and returns results with a nil Cube.
	KeepCubes bool
}

// MatchAll matches one incoming schema against many candidate schemas
// in a single scheduled batch — the repository-server workload, where
// a new schema is compared against every stored one. It returns one
// Result per candidate, in candidate order, each bit-identical to what
// Match(ctx, incoming, candidates[i], cfg) produces (TopK-pruned slots
// are nil, and Cube is nil unless BatchOptions.KeepCubes).
//
// Compared to a loop of Match calls, the batch form:
//
//   - analyzes the incoming schema exactly once up front (candidates
//     hit the context's analyzer cache as usual);
//   - schedules all pairs over one shared worker budget of
//     Config.Workers slots: pair-level workers claim candidates from a
//     shared queue, and the row-parallel fills inside each matcher
//     steal whatever budget the other pairs leave idle — so many small
//     pairs saturate the budget as well as one big pair does, without
//     the per-call goroutine fan-out of independent Match calls;
//   - recycles the hot allocations (cube layers, token and leaf grids)
//     through one size-bucketed arena, so the batch pays each matrix
//     size class once instead of once per pair. Released storage never
//     reaches the caller: results hold only arena-free memory;
//   - memoizes scored distinct-name similarity columns across pairs:
//     the incoming side is fixed, so a candidate name recurring across
//     the repository is scored against the incoming names once per
//     batch instead of once per pair (bit-identical — the scores are
//     pure functions of the name pair and the fixed sources).
//
// MatchAll is the single-shard case of MatchSharded, which implements
// the scheduling.
func MatchAll(ctx *match.Context, incoming *schema.Schema, candidates []*schema.Schema, cfg Config, opt BatchOptions) ([]*Result, error) {
	if ctx == nil {
		// Match accepts a nil context (throwaway per-request analyses);
		// keep the batch path consistent with a zero-value one.
		ctx = &match.Context{}
	}
	results, err := MatchSharded(incoming, []Shard{{Ctx: ctx, Candidates: candidates}}, cfg, opt)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// matchPair runs one pair of the batch: matcher execution over the
// shared incoming index and the pair's candidate index, combination,
// and — unless the cube is kept — recycling of the cube layers into
// the batch arena at cube→mapping extraction. Aggregated matrices and
// mappings are always arena-free, so a returned Result never aliases
// pooled storage.
func matchPair(ctx *match.Context, idx1 *analysis.SchemaIndex, s1, s2 *schema.Schema, cfg Config, arena *simcube.Arena, cache *match.BatchCache, keepCube bool) (*Result, error) {
	idx2 := ctx.Index(s2)
	pctx := ctx.WithIndexes(idx1, idx2).WithArena(arena).WithBatchCache(cache)
	cube := simcube.NewCube(idx1.Keys, idx2.Keys)
	for _, m := range cfg.Matchers {
		if err := cube.AddLayer(m.Name(), m.Match(pctx, s1, s2)); err != nil {
			cube.ReleaseTo(arena)
			return nil, err
		}
	}
	res, err := CombineCube(cube, s1, s2, cfg.Strategy, cfg.Feedback)
	if err != nil {
		cube.ReleaseTo(arena)
		return nil, err
	}
	if !keepCube {
		cube.ReleaseTo(arena)
		res.Cube = nil
	}
	return res, nil
}

// pruneToTopK nils out every result not among the k best by combined
// schema similarity; ties break toward the earlier candidate, so the
// retained set is deterministic.
func pruneToTopK(results []*Result, k int) {
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return results[order[a]].SchemaSim > results[order[b]].SchemaSim
	})
	for _, i := range order[k:] {
		results[i] = nil
	}
}
