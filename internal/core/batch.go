package core

import (
	"context"
	"sort"

	"repro/internal/analysis"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// BatchOptions tune one MatchAll batch beyond the per-iteration Config.
type BatchOptions struct {
	// TopK, when positive, retains only the TopK best results by
	// combined schema similarity (candidate order breaking ties);
	// pruned slots of the result slice are nil. Every pair is still
	// matched — the ranking needs its score — but pruned pairs retain
	// no matrices or mappings.
	TopK int
	// KeepCubes retains each result's similarity cube. By default the
	// scheduler recycles cube layers through the batch arena at
	// cube→mapping extraction and returns results with a nil Cube.
	KeepCubes bool
	// AllowPartial degrades shard failure instead of aborting: a shard
	// whose pair errors (or whose own cancellation source fires) is
	// dropped from the results — nil slice — and reported as a
	// ShardError, while the remaining shards complete normally.
	// Cancellation of the batch's request context always aborts the
	// whole batch regardless. Only meaningful for MatchSharded;
	// MatchAll (single shard) ignores it.
	AllowPartial bool
}

// MatchAll matches one incoming schema against many candidate schemas
// in a single scheduled batch — the repository-server workload, where
// a new schema is compared against every stored one. It returns one
// Result per candidate, in candidate order, each bit-identical to what
// Match(ctx, incoming, candidates[i], cfg) produces (TopK-pruned slots
// are nil, and Cube is nil unless BatchOptions.KeepCubes).
//
// Compared to a loop of Match calls, the batch form:
//
//   - analyzes the incoming schema exactly once up front (candidates
//     hit the context's analyzer cache as usual);
//   - schedules all pairs over one shared worker budget of
//     Config.Workers slots: pair-level workers claim candidates from a
//     shared queue, and the row-parallel fills inside each matcher
//     steal whatever budget the other pairs leave idle — so many small
//     pairs saturate the budget as well as one big pair does, without
//     the per-call goroutine fan-out of independent Match calls;
//   - recycles the hot allocations (cube layers, token and leaf grids)
//     through one size-bucketed arena, so the batch pays each matrix
//     size class once instead of once per pair. Released storage never
//     reaches the caller: results hold only arena-free memory;
//   - memoizes scored distinct-name similarity columns across pairs:
//     the incoming side is fixed, so a candidate name recurring across
//     the repository is scored against the incoming names once per
//     batch instead of once per pair (bit-identical — the scores are
//     pure functions of the name pair and the fixed sources).
//
// MatchAll is the single-shard case of MatchSharded, which implements
// the scheduling. A done ctx (nil means context.Background) stops the
// batch cooperatively — workers stop claiming pairs and rows, pooled
// matrices are recycled, transient analyses are evicted — and the
// cancellation cause is returned. With a single shard there is no
// partial degradation: BatchOptions.AllowPartial is ignored and any
// pair failure aborts the batch.
func MatchAll(ctx context.Context, mctx *match.Context, incoming *schema.Schema, candidates []*schema.Schema, cfg Config, opt BatchOptions) ([]*Result, error) {
	if mctx == nil {
		// Match accepts a nil context (throwaway per-request analyses);
		// keep the batch path consistent with a zero-value one.
		mctx = &match.Context{}
	}
	opt.AllowPartial = false
	results, _, err := MatchSharded(ctx, incoming, []Shard{{Ctx: mctx, Candidates: candidates}}, cfg, opt)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// matchPair runs one pair of the batch: matcher execution over the
// shared incoming index and the pair's candidate index, combination,
// and — unless the cube is kept — recycling of the cube layers into
// the batch arena at cube→mapping extraction. Aggregated matrices and
// mappings are always arena-free, so a returned Result never aliases
// pooled storage.
func matchPair(ctx *match.Context, idx1 *analysis.SchemaIndex, s1, s2 *schema.Schema, cfg Config, arena *simcube.Arena, cache *match.BatchCache, keepCube bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	idx2 := ctx.Index(s2)
	pctx := ctx.WithIndexes(idx1, idx2).WithArena(arena).WithBatchCache(cache)
	cube := simcube.NewCube(idx1.Keys, idx2.Keys)
	for _, m := range cfg.Matchers {
		// Cancellation is re-checked per matcher: a canceled context
		// leaves the current fill within a row per worker (ParallelRows
		// stops claiming), and the partial layer plus the cube's earlier
		// layers are recycled before surfacing the cause.
		if err := pctx.Err(); err != nil {
			cube.ReleaseTo(arena)
			return nil, err
		}
		layer := m.Match(pctx, s1, s2)
		if err := pctx.Err(); err != nil {
			layer.ReleaseTo(arena)
			cube.ReleaseTo(arena)
			return nil, err
		}
		if err := cube.AddLayer(m.Name(), layer); err != nil {
			layer.ReleaseTo(arena)
			cube.ReleaseTo(arena)
			return nil, err
		}
	}
	res, err := CombineCube(cube, s1, s2, cfg.Strategy, cfg.Feedback)
	if err != nil {
		cube.ReleaseTo(arena)
		return nil, err
	}
	if !keepCube {
		cube.ReleaseTo(arena)
		res.Cube = nil
	}
	return res, nil
}

// pruneToTopK nils out every result not among the k best by combined
// schema similarity; ties break toward the earlier candidate, so the
// retained set is deterministic.
func pruneToTopK(results []*Result, k int) {
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return results[order[a]].SchemaSim > results[order[b]].SchemaSim
	})
	for _, i := range order[k:] {
		results[i] = nil
	}
}
