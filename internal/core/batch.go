package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// BatchOptions tune one MatchAll batch beyond the per-iteration Config.
type BatchOptions struct {
	// TopK, when positive, retains only the TopK best results by
	// combined schema similarity (candidate order breaking ties);
	// pruned slots of the result slice are nil. Every pair is still
	// matched — the ranking needs its score — but pruned pairs retain
	// no matrices or mappings.
	TopK int
	// KeepCubes retains each result's similarity cube. By default the
	// scheduler recycles cube layers through the batch arena at
	// cube→mapping extraction and returns results with a nil Cube.
	KeepCubes bool
}

// MatchAll matches one incoming schema against many candidate schemas
// in a single scheduled batch — the repository-server workload, where
// a new schema is compared against every stored one. It returns one
// Result per candidate, in candidate order, each bit-identical to what
// Match(ctx, incoming, candidates[i], cfg) produces (TopK-pruned slots
// are nil, and Cube is nil unless BatchOptions.KeepCubes).
//
// Compared to a loop of Match calls, the batch form:
//
//   - analyzes the incoming schema exactly once up front (candidates
//     hit the context's analyzer cache as usual);
//   - schedules all pairs over one shared worker budget of
//     Config.Workers slots: pair-level workers claim candidates from a
//     shared queue, and the row-parallel fills inside each matcher
//     steal whatever budget the other pairs leave idle — so many small
//     pairs saturate the budget as well as one big pair does, without
//     the per-call goroutine fan-out of independent Match calls;
//   - recycles the hot allocations (cube layers, token and leaf grids)
//     through one size-bucketed arena, so the batch pays each matrix
//     size class once instead of once per pair. Released storage never
//     reaches the caller: results hold only arena-free memory;
//   - memoizes scored distinct-name similarity columns across pairs:
//     the incoming side is fixed, so a candidate name recurring across
//     the repository is scored against the incoming names once per
//     batch instead of once per pair (bit-identical — the scores are
//     pure functions of the name pair and the fixed sources).
func MatchAll(ctx *match.Context, incoming *schema.Schema, candidates []*schema.Schema, cfg Config, opt BatchOptions) ([]*Result, error) {
	if len(cfg.Matchers) == 0 {
		return nil, fmt.Errorf("core: no matchers configured")
	}
	if err := incoming.Validate(); err != nil {
		return nil, fmt.Errorf("core: schema %s: %w", incoming.Name, err)
	}
	for i, c := range candidates {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("core: candidate %d (%s): %w", i, c.Name, err)
		}
	}
	results := make([]*Result, len(candidates))
	if len(candidates) == 0 {
		return results, nil
	}
	if cfg.Workers != 0 {
		ctx = ctx.WithWorkers(cfg.Workers)
	}
	// One analysis of the incoming schema serves every pair; building
	// it before the fan-out also warms the analyzer cache for matchers
	// that re-resolve it.
	idx1 := ctx.Index(incoming)
	arena := simcube.NewArena()
	// One column cache for the whole batch: the incoming side of every
	// pair is the same schema, so candidate names recurring across the
	// repository (shared vocabularies, schema families) are scored
	// against the incoming names once.
	cache := match.NewBatchCache()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	// Pair-level scheduling over one global budget: each pair worker
	// owns one budget slot and claims candidates from a shared
	// counter; the matchers inside a pair run sequentially on that
	// slot, their row-parallel fills opportunistically taking any
	// slots the other pair workers do not occupy.
	bctx := ctx.WithWorkerBudget()
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(candidates) || failed() {
				return
			}
			res, err := matchPair(bctx, idx1, incoming, candidates[i], cfg, arena, cache, opt.KeepCubes)
			if err != nil {
				fail(err)
				return
			}
			results[i] = res
		}
	}
	pairWorkers := match.ResolveWorkers(bctx.Workers)
	if pairWorkers > len(candidates) {
		pairWorkers = len(candidates)
	}
	if pairWorkers <= 1 {
		bctx.AcquireWorker()
		work()
		bctx.ReleaseWorker()
	} else {
		var wg sync.WaitGroup
		for w := 1; w < pairWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bctx.AcquireWorker()
				defer bctx.ReleaseWorker()
				work()
			}()
		}
		bctx.AcquireWorker()
		work()
		bctx.ReleaseWorker()
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if opt.TopK > 0 && opt.TopK < len(results) {
		pruneToTopK(results, opt.TopK)
	}
	return results, nil
}

// matchPair runs one pair of the batch: matcher execution over the
// shared incoming index and the pair's candidate index, combination,
// and — unless the cube is kept — recycling of the cube layers into
// the batch arena at cube→mapping extraction. Aggregated matrices and
// mappings are always arena-free, so a returned Result never aliases
// pooled storage.
func matchPair(ctx *match.Context, idx1 *analysis.SchemaIndex, s1, s2 *schema.Schema, cfg Config, arena *simcube.Arena, cache *match.BatchCache, keepCube bool) (*Result, error) {
	idx2 := ctx.Index(s2)
	pctx := ctx.WithIndexes(idx1, idx2).WithArena(arena).WithBatchCache(cache)
	cube := simcube.NewCube(idx1.Keys, idx2.Keys)
	for _, m := range cfg.Matchers {
		if err := cube.AddLayer(m.Name(), m.Match(pctx, s1, s2)); err != nil {
			cube.ReleaseTo(arena)
			return nil, err
		}
	}
	res, err := CombineCube(cube, s1, s2, cfg.Strategy, cfg.Feedback)
	if err != nil {
		cube.ReleaseTo(arena)
		return nil, err
	}
	if !keepCube {
		cube.ReleaseTo(arena)
		res.Cube = nil
	}
	return res, nil
}

// pruneToTopK nils out every result not among the k best by combined
// schema similarity; ties break toward the earlier candidate, so the
// retained set is deterministic.
func pruneToTopK(results []*Result, k int) {
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return results[order[a]].SchemaSim > results[order[b]].SchemaSim
	})
	for _, i := range order[k:] {
		results[i] = nil
	}
}
