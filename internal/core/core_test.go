package core

import (
	"testing"

	"repro/internal/combine"
	"repro/internal/match"
	"repro/internal/workload"
)

func TestMatchDefaultConfig(t *testing.T) {
	ctx := match.NewContext()
	task := workload.Tasks()[0]
	res, err := Match(ctx, task.S1, task.S2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cube.Layers() != 5 {
		t.Errorf("cube layers = %d, want 5", res.Cube.Layers())
	}
	if res.Mapping.Len() == 0 {
		t.Fatal("empty mapping")
	}
	if res.Mapping.FromSchema != task.S1.Name || res.Mapping.ToSchema != task.S2.Name {
		t.Error("mapping schema names not set")
	}
	if res.SchemaSim <= 0 || res.SchemaSim > 1 {
		t.Errorf("schema similarity = %.3f", res.SchemaSim)
	}
	// Deterministic output: correspondences sorted.
	cs := res.Mapping.Correspondences()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].From > cs[i].From {
			t.Fatal("mapping not sorted")
		}
	}
}

func TestMatchValidation(t *testing.T) {
	ctx := match.NewContext()
	task := workload.Tasks()[0]
	if _, err := Match(ctx, task.S1, task.S2, Config{}); err == nil {
		t.Error("empty matcher set should fail")
	}
}

func TestExecuteMatchersShape(t *testing.T) {
	ctx := match.NewContext()
	task := workload.Tasks()[0]
	cube, err := ExecuteMatchers(ctx, task.S1, task.S2, []match.Matcher{match.NewName()})
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.RowKeys()) != len(task.S1.Paths()) || len(cube.ColKeys()) != len(task.S2.Paths()) {
		t.Error("cube keys do not cover all paths")
	}
}

func TestSessionFeedbackIterations(t *testing.T) {
	ctx := match.NewContext()
	task := workload.Tasks()[0]
	sess := NewSession(ctx, task.S1, task.S2, DefaultConfig())
	if sess.Last() != nil || sess.Iterations() != 0 {
		t.Fatal("fresh session should be empty")
	}
	first, err := sess.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	// Reject one proposed correspondence and assert an arbitrary match;
	// the next iteration must honour both.
	var victim [2]string
	for _, c := range first.Mapping.Correspondences() {
		victim = [2]string{c.From, c.To}
		break
	}
	sess.Reject(victim[0], victim[1])
	sess.Accept("PO.Routing.routeCode", "Warehouse.whCode")
	second, err := sess.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if second.Mapping.Contains(victim[0], victim[1]) {
		t.Errorf("rejected pair %v still proposed", victim)
	}
	if !second.Mapping.Contains("PO.Routing.routeCode", "Warehouse.whCode") {
		t.Error("accepted pair not proposed")
	}
	if sess.Iterations() != 2 || sess.Last() != second {
		t.Error("iteration bookkeeping wrong")
	}
	if sess.Feedback().Len() != 2 {
		t.Error("feedback not accumulated")
	}
}

func TestSessionStrategyChange(t *testing.T) {
	ctx := match.NewContext()
	task := workload.Tasks()[0]
	sess := NewSession(ctx, task.S1, task.S2, DefaultConfig())
	loose := combine.Default()
	loose.Sel = combine.Selection{Threshold: 0.3}
	sess.SetStrategy(loose)
	res1, err := sess.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	strict := combine.Default()
	strict.Sel = combine.Selection{Threshold: 0.8}
	sess.SetStrategy(strict)
	res2, err := sess.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mapping.Len() >= res1.Mapping.Len() {
		t.Errorf("stricter threshold should shrink result: %d -> %d",
			res1.Mapping.Len(), res2.Mapping.Len())
	}
	sess.SetMatchers([]match.Matcher{match.NewNamePath()})
	res3, err := sess.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cube.Layers() != 1 {
		t.Error("SetMatchers not applied")
	}
}

func TestCombineCubeFeedbackPinning(t *testing.T) {
	ctx := match.NewContext()
	task := workload.Tasks()[0]
	cube, err := ExecuteMatchers(ctx, task.S1, task.S2, DefaultConfig().Matchers)
	if err != nil {
		t.Fatal(err)
	}
	fb := match.NewFeedback()
	fb.Accept("PO.Acknowledgement.ackDate", "Warehouse.pickDate")
	res, err := CombineCube(cube, task.S1, task.S2, combine.Default(), fb)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Matrix.GetKey("PO.Acknowledgement.ackDate", "Warehouse.pickDate"); got != 1 {
		t.Errorf("pinned similarity = %.2f, want 1", got)
	}
}
