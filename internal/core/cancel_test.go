package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
	"repro/internal/workload"
)

// cancelingMatcher fires a cancel function the first time it executes,
// then delegates — a deterministic mid-batch cancellation: the claim
// loops observe the canceled context while pairs are still pending.
type cancelingMatcher struct {
	match.Matcher
	cancel context.CancelFunc
	fired  atomic.Bool
}

func (m *cancelingMatcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	if m.fired.CompareAndSwap(false, true) {
		m.cancel()
	}
	return m.Matcher.Match(ctx, s1, s2)
}

// faultyMatcher is the test-only fault injection wrapper: it returns no
// matrix for one specific candidate schema, the failure mode of a
// broken matcher implementation, which the cube rejects.
type faultyMatcher struct {
	match.Matcher
	failFor *schema.Schema
}

func (m faultyMatcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	if s2 == m.failFor {
		return nil
	}
	return m.Matcher.Match(ctx, s1, s2)
}

// TestMatchAllCanceledMidBatch: a request context canceled while pairs
// are in flight aborts the batch with the cancellation cause instead of
// results, for both the sequential and the parallel scheduler paths.
func TestMatchAllCanceledMidBatch(t *testing.T) {
	all := workload.Candidates(6)
	incoming, cands := all[0], all[1:]
	for _, workers := range []int{1, 4} {
		cctx, cancel := context.WithCancel(context.Background())
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Matchers = append([]match.Matcher{}, cfg.Matchers...)
		cfg.Matchers[0] = &cancelingMatcher{Matcher: cfg.Matchers[0], cancel: cancel}
		results, err := MatchAll(cctx, match.NewContext(), incoming, cands, cfg, BatchOptions{})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if results != nil {
			t.Errorf("workers=%d: canceled batch returned results", workers)
		}
	}
}

// TestMatchCanceledSinglePair: cancellation reaches the single-pair
// path (Engine.MatchContext → ExecuteMatchers) through a context
// carrying a cancellation source.
func TestMatchCanceledSinglePair(t *testing.T) {
	all := workload.Candidates(2)
	cctx, cancel := context.WithCancel(context.Background())
	cfg := DefaultConfig()
	cfg.Matchers = append([]match.Matcher{}, cfg.Matchers...)
	cfg.Matchers[0] = &cancelingMatcher{Matcher: cfg.Matchers[0], cancel: cancel}
	mctx := match.NewContext().WithCancel(cctx)
	res, err := Match(mctx, all[0], all[1], cfg)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled match returned a result")
	}

	// Pre-canceled: fails before any matcher runs.
	done, stop := context.WithCancel(context.Background())
	stop()
	if _, err := Match(match.NewContext().WithCancel(done), all[0], all[1], cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled err = %v, want context.Canceled", err)
	}
}

// TestMatchCanceledCause: a deadline-style cause survives to the caller
// so the serving layer can distinguish timeout (504) from disconnect.
func TestMatchCanceledCause(t *testing.T) {
	all := workload.Candidates(2)
	cctx, cancel := context.WithCancelCause(context.Background())
	cancel(context.DeadlineExceeded)
	_, err := MatchAll(cctx, match.NewContext(), all[0], all[1:], DefaultConfig(), BatchOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded cause", err)
	}
}

// TestMatchShardedPartial: with AllowPartial, a faulty matcher failing
// one shard's pair degrades that shard to a ShardError while the other
// shard's ranking stays bit-identical to an undisturbed reference.
func TestMatchShardedPartial(t *testing.T) {
	all := workload.Candidates(7)
	incoming, cands := all[0], all[1:]
	cfg := DefaultConfig()

	ref := make([]*Result, len(cands))
	refCtx := match.NewContext()
	for i, c := range cands {
		var err error
		if ref[i], err = Match(refCtx, incoming, c, cfg); err != nil {
			t.Fatal(err)
		}
	}

	// Fail a pair of shard 1 (round-robin layout: odd candidates).
	bad := cands[3]
	faulty := cfg
	faulty.Matchers = append([]match.Matcher{}, cfg.Matchers...)
	faulty.Matchers[2] = faultyMatcher{Matcher: cfg.Matchers[2], failFor: bad}

	// Without AllowPartial the injected fault aborts the whole batch.
	if _, _, err := MatchSharded(context.Background(), incoming, shardsOf(cands, 2), faulty, BatchOptions{}); err == nil {
		t.Fatal("injected fault did not fail the strict batch")
	}

	results, shardErrs, err := MatchSharded(context.Background(), incoming, shardsOf(cands, 2), faulty, BatchOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(shardErrs) != 1 || shardErrs[0].Shard != 1 {
		t.Fatalf("shard errors = %v, want exactly shard 1", shardErrs)
	}
	if results[1] != nil {
		t.Error("failed shard kept its results")
	}
	if results[0] == nil {
		t.Fatal("healthy shard lost its results")
	}
	for ci, res := range results[0] {
		orig := ci * 2 // shard 0 of the round-robin layout
		if res.SchemaSim != ref[orig].SchemaSim {
			t.Errorf("surviving shard: candidate %d sim %v, want %v", orig, res.SchemaSim, ref[orig].SchemaSim)
		}
	}
}

// TestMatchShardedPartialShardCancel: a shard whose own cancellation
// source fires degrades like a failed shard under AllowPartial, and
// fails the batch without it; the request context's cancellation is
// never degraded.
func TestMatchShardedPartialShardCancel(t *testing.T) {
	all := workload.Candidates(5)
	incoming, cands := all[0], all[1:]
	cfg := DefaultConfig()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	mkShards := func() []Shard {
		shards := shardsOf(cands, 2)
		shards[1].Ctx = shards[1].Ctx.WithCancel(canceled)
		return shards
	}

	results, shardErrs, err := MatchSharded(context.Background(), incoming, mkShards(), cfg, BatchOptions{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(shardErrs) != 1 || shardErrs[0].Shard != 1 || !errors.Is(shardErrs[0].Err, context.Canceled) {
		t.Fatalf("shard errors = %v, want shard 1 canceled", shardErrs)
	}
	if results[1] != nil || results[0] == nil {
		t.Errorf("partial results: shard0=%v shard1=%v", results[0] != nil, results[1] != nil)
	}

	if _, _, err := MatchSharded(context.Background(), incoming, mkShards(), cfg, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("strict batch with canceled shard: err = %v, want context.Canceled", err)
	}

	// Request-context cancellation always aborts, AllowPartial or not.
	dead, stop := context.WithCancel(context.Background())
	stop()
	if _, _, err := MatchSharded(dead, incoming, shardsOf(cands, 2), cfg, BatchOptions{AllowPartial: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled request degraded to partial: err = %v", err)
	}
}

// TestShardErrorUnwrap pins the error surface: ShardError exposes its
// cause to errors.Is and renders the shard index.
func TestShardErrorUnwrap(t *testing.T) {
	se := ShardError{Shard: 3, Err: context.DeadlineExceeded}
	if !errors.Is(se, context.DeadlineExceeded) {
		t.Error("ShardError does not unwrap its cause")
	}
	if se.Error() == "" || se.Error() == context.DeadlineExceeded.Error() {
		t.Errorf("ShardError message %q lacks shard context", se.Error())
	}
}
