package core

import (
	"context"
	"testing"

	"repro/internal/combine"
	"repro/internal/match"
	"repro/internal/workload"
)

// TestMatchAllAgainstLoop verifies the batch scheduler against the
// single-pair engine on every knob combination: results arrive in
// candidate order and are bit-identical to a loop of Match calls.
func TestMatchAllAgainstLoop(t *testing.T) {
	cands := workload.Candidates(7)
	incoming, cands := cands[0], cands[1:]
	cfg := DefaultConfig()

	loopCtx := match.NewContext()
	var want []*Result
	for _, c := range cands {
		res, err := Match(loopCtx, incoming, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	for _, workers := range []int{1, 4} {
		ctx := match.NewContext()
		batchCfg := cfg
		batchCfg.Workers = workers
		got, err := MatchAll(context.Background(), ctx, incoming, cands, batchCfg, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(cands) {
			t.Fatalf("workers=%d: %d results for %d candidates", workers, len(got), len(cands))
		}
		for i, res := range got {
			if res.Cube != nil {
				t.Errorf("workers=%d: candidate %d kept its cube without KeepCubes", workers, i)
			}
			assertSameResult(t, res, want[i])
		}
	}
}

func assertSameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if got.SchemaSim != want.SchemaSim {
		t.Errorf("schema sim %v, want %v", got.SchemaSim, want.SchemaSim)
	}
	if got.Matrix.Rows() != want.Matrix.Rows() || got.Matrix.Cols() != want.Matrix.Cols() {
		t.Fatalf("matrix %dx%d, want %dx%d",
			got.Matrix.Rows(), got.Matrix.Cols(), want.Matrix.Rows(), want.Matrix.Cols())
	}
	for i := 0; i < got.Matrix.Rows(); i++ {
		for j := 0; j < got.Matrix.Cols(); j++ {
			if got.Matrix.Get(i, j) != want.Matrix.Get(i, j) {
				t.Fatalf("matrix cell (%d,%d) = %v, want %v", i, j, got.Matrix.Get(i, j), want.Matrix.Get(i, j))
			}
		}
	}
	gc, wc := got.Mapping.Correspondences(), want.Mapping.Correspondences()
	if len(gc) != len(wc) {
		t.Fatalf("%d correspondences, want %d", len(gc), len(wc))
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Errorf("correspondence %d = %v, want %v", i, gc[i], wc[i])
		}
	}
}

// TestMatchAllKeepCubes checks that KeepCubes returns full cubes whose
// layers match the single-pair engine's.
func TestMatchAllKeepCubes(t *testing.T) {
	cands := workload.Candidates(3)
	incoming, cands := cands[0], cands[1:]
	cfg := DefaultConfig()
	got, err := MatchAll(context.Background(), match.NewContext(), incoming, cands, cfg, BatchOptions{KeepCubes: true})
	if err != nil {
		t.Fatal(err)
	}
	loopCtx := match.NewContext()
	for i, res := range got {
		if res.Cube == nil {
			t.Fatalf("candidate %d: cube dropped despite KeepCubes", i)
		}
		want, err := Match(loopCtx, incoming, cands[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cube.Layers() != want.Cube.Layers() {
			t.Fatalf("candidate %d: %d layers, want %d", i, res.Cube.Layers(), want.Cube.Layers())
		}
		for l := 0; l < res.Cube.Layers(); l++ {
			g, w := res.Cube.LayerAt(l), want.Cube.LayerAt(l)
			for r := 0; r < g.Rows(); r++ {
				for c := 0; c < g.Cols(); c++ {
					if g.Get(r, c) != w.Get(r, c) {
						t.Fatalf("candidate %d layer %d cell (%d,%d) = %v, want %v",
							i, l, r, c, g.Get(r, c), w.Get(r, c))
					}
				}
			}
		}
	}
}

// TestMatchAllTopK checks the pruning semantics: the slice stays in
// candidate order, exactly k slots survive, and the survivors are the
// k best schema similarities.
func TestMatchAllTopK(t *testing.T) {
	cands := workload.Candidates(5)
	incoming, cands := cands[0], cands[1:]
	cfg := DefaultConfig()
	full, err := MatchAll(context.Background(), match.NewContext(), incoming, cands, cfg, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	pruned, err := MatchAll(context.Background(), match.NewContext(), incoming, cands, cfg, BatchOptions{TopK: k})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != len(cands) {
		t.Fatalf("TopK changed slice length: %d, want %d", len(pruned), len(cands))
	}
	var kept int
	worstKept := 2.0
	bestPruned := -1.0
	for i, res := range pruned {
		if res == nil {
			if sim := full[i].SchemaSim; sim > bestPruned {
				bestPruned = sim
			}
			continue
		}
		kept++
		assertSameResult(t, res, full[i])
		if res.SchemaSim < worstKept {
			worstKept = res.SchemaSim
		}
	}
	if kept != k {
		t.Fatalf("kept %d results, want %d", kept, k)
	}
	if bestPruned > worstKept {
		t.Errorf("pruned a schema sim %v better than kept %v", bestPruned, worstKept)
	}

	// TopK >= len keeps everything.
	all, err := MatchAll(context.Background(), match.NewContext(), incoming, cands, cfg, BatchOptions{TopK: len(cands)})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range all {
		if res == nil {
			t.Fatalf("TopK=len pruned candidate %d", i)
		}
	}
}

// TestMatchAllEdgeCases covers empty batches and configuration errors.
func TestMatchAllEdgeCases(t *testing.T) {
	cands := workload.Candidates(2)
	incoming := cands[0]

	res, err := MatchAll(context.Background(), match.NewContext(), incoming, nil, DefaultConfig(), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}

	if _, err := MatchAll(context.Background(), match.NewContext(), incoming, cands[1:], Config{}, BatchOptions{}); err == nil {
		t.Error("no matchers should fail")
	}

	badCfg := DefaultConfig()
	badCfg.Strategy.Agg = combine.AggSpec{Kind: combine.Weighted, Weights: []float64{1}} // 1 weight, 5 matchers
	if _, err := MatchAll(context.Background(), match.NewContext(), incoming, cands[1:], badCfg, BatchOptions{}); err == nil {
		t.Error("mismatched weighted aggregation should fail")
	}
}
