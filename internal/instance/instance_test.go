package instance

import (
	"testing"

	"repro/internal/match"
	"repro/internal/workload"
)

func TestFeatureExtraction(t *testing.T) {
	f := extract([]string{"12.50", "8.99", "123.00"})
	if f.numericShare != 1 {
		t.Errorf("numericShare = %.2f", f.numericShare)
	}
	if f.patternHist[patMoney] != 1 {
		t.Errorf("money pattern share = %.2f", f.patternHist[patMoney])
	}
	f = extract([]string{"hong@uni-leipzig.de", "rahm@uni-leipzig.de"})
	if f.patternHist[patEmail] != 1 {
		t.Errorf("email pattern share = %.2f", f.patternHist[patEmail])
	}
	f = extract(nil)
	if f.count != 0 {
		t.Error("empty sample should have zero count")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		v    string
		want int
	}{
		{"2002-08-20", patDate},
		{"20.08.2002", patDate},
		{"hong@informatik.uni-leipzig.de", patEmail},
		{"+49 341 1234567", patPhone},
		{"04109", patZip},
		{"1234.56", patMoney},
		{"$99", patMoney},
		{"purchase order", patPlain},
	}
	for _, c := range cases {
		if got := classify(c.v); got != c.want {
			t.Errorf("classify(%q) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSimilaritySelf(t *testing.T) {
	a := extract([]string{"12.50", "8.99", "1.00", "55.10"})
	if got := similarity(a, a); got < 0.95 {
		t.Errorf("self similarity = %.3f, want ~1", got)
	}
	b := extract([]string{"hong@x.de", "erhard@y.de", "phil@z.com"})
	cross := similarity(a, b)
	if cross >= similarity(a, a) {
		t.Errorf("money vs email %.3f should be below self %.3f", cross, similarity(a, a))
	}
	if similarity(a, features{}) != 0 {
		t.Error("empty sample should have 0 similarity")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := workload.Schemas()[0]
	a := Generate(s, workload.ConceptKey, 20, 42)
	b := Generate(s, workload.ConceptKey, 20, 42)
	p := s.Paths()[2].String()
	av, bv := a.Values(p), b.Values(p)
	if len(av) != 20 || len(bv) != 20 {
		t.Fatalf("sample sizes %d/%d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("nondeterministic generation at %d: %q vs %q", i, av[i], bv[i])
		}
	}
	// Inner paths carry no samples.
	for _, path := range s.Paths() {
		if !path.Leaf().IsLeaf() && len(a.Values(path.String())) > 0 {
			t.Errorf("inner path %s has samples", path)
		}
	}
}

func TestGenerateSharedDistributions(t *testing.T) {
	// Equal concepts across schemas draw from the same pools: city
	// values of schema 1 and schema 2 overlap heavily.
	ss := workload.Schemas()
	a := Generate(ss[0], workload.ConceptKey, 50, 7)
	b := Generate(ss[1], workload.ConceptKey, 50, 7)
	av := a.Values("PO.ShipTo.shipToCity")
	bv := b.Values("DeliverTo.Addr.city")
	if len(av) == 0 || len(bv) == 0 {
		t.Fatal("missing samples")
	}
	seen := make(map[string]bool)
	for _, v := range av {
		seen[v] = true
	}
	overlap := 0
	for _, v := range bv {
		if seen[v] {
			overlap++
		}
	}
	if overlap < len(bv)/2 {
		t.Errorf("city value overlap = %d/%d, want majority", overlap, len(bv))
	}
}

func TestInstanceMatcherFindsTypedMatches(t *testing.T) {
	ss := workload.Schemas()
	s1, s2 := ss[0], ss[1]
	left := Generate(s1, workload.ConceptKey, 30, 99)
	right := Generate(s2, workload.ConceptKey, 30, 99)
	m := NewMatcher(left, right)
	if m.Name() != "Instance" {
		t.Error("Name wrong")
	}
	res := m.Match(match.NewContext(), s1, s2)
	// Same-kind elements score high...
	zipZip := res.GetKey("PO.ShipTo.shipToZip", "DeliverTo.Addr.zip")
	dateDate := res.GetKey("PO.POHeader.poDate", "Header.poDate")
	// ...cross-kind elements low.
	zipEmail := res.GetKey("PO.ShipTo.shipToZip", "DeliverTo.Contact.email")
	dateCity := res.GetKey("PO.POHeader.poDate", "DeliverTo.Addr.city")
	if zipZip <= zipEmail {
		t.Errorf("zip/zip %.3f <= zip/email %.3f", zipZip, zipEmail)
	}
	if dateDate <= dateCity {
		t.Errorf("date/date %.3f <= date/city %.3f", dateDate, dateCity)
	}
	if zipZip < 0.7 || dateDate < 0.7 {
		t.Errorf("same-kind similarities too low: %.3f / %.3f", zipZip, dateDate)
	}
	// Inner elements (no samples) score 0.
	if res.GetKey("PO.ShipTo", "DeliverTo") != 0 {
		t.Error("inner elements should have no instance similarity")
	}
}

func TestInstanceMatcherComposesWithLibrary(t *testing.T) {
	// The instance matcher participates in a cube like any other
	// matcher (the composability the paper's design enables).
	ss := workload.Schemas()
	s1, s2 := ss[0], ss[1]
	left := Generate(s1, workload.ConceptKey, 20, 5)
	right := Generate(s2, workload.ConceptKey, 20, 5)
	lib := match.NewLibrary()
	lib.Register("Instance", func() match.Matcher { return NewMatcher(left, right) })
	m, err := lib.New("Instance")
	if err != nil {
		t.Fatal(err)
	}
	res := m.Match(match.NewContext(), s1, s2)
	if res.Rows() != len(s1.Paths()) || res.Cols() != len(s2.Paths()) {
		t.Error("matrix shape wrong")
	}
}

func TestRatioSim(t *testing.T) {
	if ratioSim(0, 0) != 1 || ratioSim(2, 4) != 0.5 || ratioSim(4, 2) != 0.5 {
		t.Error("ratioSim wrong")
	}
}

// TestInstanceParallelFillIdentical is the golden guarantee of the
// worker knob: the instance matcher produces a bit-identical matrix
// whether its rows are filled by one worker or many.
func TestInstanceParallelFillIdentical(t *testing.T) {
	task := workload.Tasks()[0]
	left := Generate(task.S1, workload.ConceptKey, 25, 2002)
	right := Generate(task.S2, workload.ConceptKey, 25, 2002)
	m := NewMatcher(left, right)
	seq := m.Match(match.NewContext().WithWorkers(1), task.S1, task.S2)
	par := m.Match(match.NewContext().WithWorkers(8), task.S1, task.S2)
	if seq.Rows() != par.Rows() || seq.Cols() != par.Cols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", seq.Rows(), seq.Cols(), par.Rows(), par.Cols())
	}
	for i := 0; i < seq.Rows(); i++ {
		for j := 0; j < seq.Cols(); j++ {
			if seq.Get(i, j) != par.Get(i, j) {
				t.Fatalf("cell (%d,%d) = %v sequential, %v parallel", i, j, seq.Get(i, j), par.Get(i, j))
			}
		}
	}
}
