// Package instance implements an instance-level matcher, the first
// future-work item of the COMA paper ("we see potential for improvement
// by adding further matchers, e.g. those exploiting instance-level
// data", Section 7.5). Following the constraint-based instance matchers
// the paper surveys (SemInt, LSD), element similarity derives from
// statistical features of sample data values rather than from schema
// information: value lengths, numeric shares, character class
// distributions, and recognizable value patterns (dates, e-mail
// addresses, phone numbers, postal codes, money amounts).
//
// Unlike the machine-learning systems, no training phase is needed: two
// elements are similar when their value samples look alike, which keeps
// the matcher composable with the rest of the library.
package instance

import (
	"math"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/match"
	"repro/internal/schema"
	"repro/internal/simcube"
)

// Instances holds sample data values per schema element path.
type Instances struct {
	// SchemaName identifies the schema the samples belong to.
	SchemaName string
	values     map[string][]string
}

// NewInstances returns an empty sample set for the named schema.
func NewInstances(schemaName string) *Instances {
	return &Instances{SchemaName: schemaName, values: make(map[string][]string)}
}

// Add appends sample values for an element path.
func (in *Instances) Add(path string, values ...string) {
	in.values[path] = append(in.values[path], values...)
}

// Values returns the recorded samples for a path. Do not modify.
func (in *Instances) Values(path string) []string { return in.values[path] }

// Len returns the number of element paths with samples.
func (in *Instances) Len() int { return len(in.values) }

// features summarizes a value sample for constraint-based comparison.
type features struct {
	count         int
	numericShare  float64
	meanLen       float64
	stdLen        float64
	meanNum       float64 // mean of numeric values (log-compressed)
	distinctShare float64
	classHist     [4]float64 // letters, digits, punctuation/symbols, spaces
	patternHist   [6]float64 // date, email, phone, zip, money, plain
}

// pattern indices.
const (
	patDate = iota
	patEmail
	patPhone
	patZip
	patMoney
	patPlain
)

func extract(values []string) features {
	var f features
	f.count = len(values)
	if f.count == 0 {
		return f
	}
	distinct := make(map[string]bool, len(values))
	var lens []float64
	var numericCount int
	var numSum float64
	var classTotal float64
	for _, v := range values {
		distinct[v] = true
		lens = append(lens, float64(len(v)))
		if n, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			numericCount++
			// Log-compress magnitudes so that prices and quantities
			// differ but do not dominate.
			numSum += math.Log1p(math.Abs(n))
		}
		for _, r := range v {
			classTotal++
			switch {
			case unicode.IsLetter(r):
				f.classHist[0]++
			case unicode.IsDigit(r):
				f.classHist[1]++
			case unicode.IsSpace(r):
				f.classHist[3]++
			default:
				f.classHist[2]++
			}
		}
		f.patternHist[classify(v)]++
	}
	f.numericShare = float64(numericCount) / float64(f.count)
	f.distinctShare = float64(len(distinct)) / float64(f.count)
	mean, std := meanStd(lens)
	f.meanLen, f.stdLen = mean, std
	if numericCount > 0 {
		f.meanNum = numSum / float64(numericCount)
	}
	if classTotal > 0 {
		for i := range f.classHist {
			f.classHist[i] /= classTotal
		}
	}
	for i := range f.patternHist {
		f.patternHist[i] /= float64(f.count)
	}
	return f
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// classify assigns a value to a coarse pattern class.
func classify(v string) int {
	v = strings.TrimSpace(v)
	switch {
	case looksLikeDate(v):
		return patDate
	case looksLikeEmail(v):
		return patEmail
	case looksLikePhone(v):
		return patPhone
	case looksLikeZip(v):
		return patZip
	case looksLikeMoney(v):
		return patMoney
	default:
		return patPlain
	}
}

func looksLikeDate(v string) bool {
	// 2002-08-20, 20.08.2002, 08/20/2002
	if len(v) < 8 || len(v) > 10 {
		return false
	}
	seps := 0
	digits := 0
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '-' || r == '.' || r == '/':
			seps++
		default:
			return false
		}
	}
	return seps == 2 && digits >= 6
}

func looksLikeEmail(v string) bool {
	at := strings.IndexByte(v, '@')
	return at > 0 && strings.IndexByte(v[at:], '.') > 0 && !strings.ContainsAny(v, " \t")
}

func looksLikePhone(v string) bool {
	if len(v) < 7 {
		return false
	}
	digits := 0
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '+' || r == '-' || r == ' ' || r == '(' || r == ')' || r == '/':
		default:
			return false
		}
	}
	return digits >= 6
}

func looksLikeZip(v string) bool {
	if len(v) < 4 || len(v) > 8 {
		return false
	}
	digits := 0
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '-' || r == ' ' || unicode.IsUpper(r):
		default:
			return false
		}
	}
	return digits >= 4
}

func looksLikeMoney(v string) bool {
	if v == "" {
		return false
	}
	if v[0] == '$' || strings.HasPrefix(v, "EUR") || strings.HasPrefix(v, "USD") {
		return true
	}
	// 1234.56 with exactly two decimals.
	dot := strings.LastIndexByte(v, '.')
	if dot < 0 || len(v)-dot-1 != 2 {
		return false
	}
	for _, r := range v {
		if (r < '0' || r > '9') && r != '.' && r != ',' {
			return false
		}
	}
	return true
}

// similarity compares two feature vectors in [0,1].
func similarity(a, b features) float64 {
	if a.count == 0 || b.count == 0 {
		return 0
	}
	// Pattern histogram overlap is the strongest signal.
	patternSim := 0.0
	for i := range a.patternHist {
		patternSim += math.Min(a.patternHist[i], b.patternHist[i])
	}
	classSim := 0.0
	for i := range a.classHist {
		classSim += math.Min(a.classHist[i], b.classHist[i])
	}
	lenSim := ratioSim(a.meanLen, b.meanLen)
	numShareSim := 1 - math.Abs(a.numericShare-b.numericShare)
	numMagSim := ratioSim(a.meanNum, b.meanNum)
	distinctSim := 1 - math.Abs(a.distinctShare-b.distinctShare)
	return 0.35*patternSim + 0.2*classSim + 0.15*lenSim +
		0.15*numShareSim + 0.1*numMagSim + 0.05*distinctSim
}

// ratioSim compares two non-negative magnitudes as min/max.
func ratioSim(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 1
	}
	lo, hi := math.Min(a, b), math.Max(a, b)
	if hi == 0 {
		return 1
	}
	return lo / hi
}

// Matcher is the instance-level matcher: element similarity from the
// statistical resemblance of the elements' value samples. Elements
// without samples (inner elements, empty columns) score 0 against
// everything, so the matcher complements rather than replaces the
// schema-level matchers.
type Matcher struct {
	left  *Instances
	right *Instances
}

// NewMatcher builds an instance matcher over two sample sets; left must
// belong to the match operation's first schema, right to the second.
func NewMatcher(left, right *Instances) *Matcher {
	return &Matcher{left: left, right: right}
}

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "Instance" }

// Match implements match.Matcher. Feature extraction and the matrix
// fill are row-parallel under Context.Workers; every feature vector
// and similarity is a pure function of the samples, so the result is
// bit-identical for any worker count. Element keys come from the
// schemas' shared analysis indexes.
func (m *Matcher) Match(ctx *match.Context, s1, s2 *schema.Schema) *simcube.Matrix {
	rows, cols := ctx.Index(s1).Keys, ctx.Index(s2).Keys
	out := simcube.NewMatrix(rows, cols)
	leftF := make([]features, len(rows))
	match.ParallelRows(ctx, len(rows), func(i int) {
		leftF[i] = extract(m.left.Values(rows[i]))
	})
	rightF := make([]features, len(cols))
	match.ParallelRows(ctx, len(cols), func(j int) {
		rightF[j] = extract(m.right.Values(cols[j]))
	})
	match.ParallelRows(ctx, len(rows), func(i int) {
		if leftF[i].count == 0 {
			return
		}
		for j := range cols {
			if rightF[j].count == 0 {
				continue
			}
			out.Set(i, j, similarity(leftF[i], rightF[j]))
		}
	})
	return out
}
