package instance

import (
	"strings"
	"testing"

	"repro/internal/importer"
	"repro/internal/schema"
)

const loadXSD = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
 <xsd:complexType name="PO2"><xsd:sequence>
  <xsd:element name="DeliverTo" type="Address"/>
  <xsd:element name="BillTo" type="Address"/>
 </xsd:sequence></xsd:complexType>
 <xsd:complexType name="Address"><xsd:sequence>
  <xsd:element name="Street" type="xsd:string"/>
  <xsd:element name="City" type="xsd:string"/>
  <xsd:element name="Zip" type="xsd:decimal"/>
 </xsd:sequence></xsd:complexType>
</xsd:schema>`

const sampleDoc = `<PO2>
  <DeliverTo>
    <Street>Augustusplatz 10</Street>
    <City>Leipzig</City>
    <Zip>04109</Zip>
  </DeliverTo>
  <BillTo>
    <Street>Harbour Rd 1</Street>
    <City>Hong Kong</City>
    <Zip>99907</Zip>
  </BillTo>
</PO2>`

func TestLoadXML(t *testing.T) {
	s, err := importer.ParseXSD("PO2", []byte(loadXSD))
	if err != nil {
		t.Fatal(err)
	}
	in := NewInstances("PO2")
	if err := LoadXML(in, s, strings.NewReader(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	// The document skips the Address type level; values still land on
	// the typed paths.
	got := in.Values("DeliverTo.Address.City")
	if len(got) != 1 || got[0] != "Leipzig" {
		t.Errorf("DeliverTo city = %v", got)
	}
	got = in.Values("BillTo.Address.Zip")
	if len(got) != 1 || got[0] != "99907" {
		t.Errorf("BillTo zip = %v", got)
	}
	// No cross-talk between contexts.
	if v := in.Values("DeliverTo.Address.Zip"); len(v) != 1 || v[0] != "04109" {
		t.Errorf("DeliverTo zip = %v", v)
	}
}

func TestLoadXMLAttributesAndUnknowns(t *testing.T) {
	s := schema.New("S")
	order := schema.NewNode("order")
	order.AddChild(&schema.Node{Name: "id", TypeName: "xsd:string"})
	s.Root.AddChild(order)
	in := NewInstances("S")
	doc := `<order id="A-17"><junk>ignored</junk></order>`
	if err := LoadXML(in, s, strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if v := in.Values("order.id"); len(v) != 1 || v[0] != "A-17" {
		t.Errorf("attribute value = %v", v)
	}
}

func TestLoadXMLMalformed(t *testing.T) {
	s := schema.New("S")
	s.Root.AddChild(schema.NewNode("a"))
	in := NewInstances("S")
	if err := LoadXML(in, s, strings.NewReader("<a><b></a>")); err == nil {
		t.Error("malformed XML should fail")
	}
}

func TestLoadCSV(t *testing.T) {
	ddl := `CREATE TABLE Customer (custNo INT, custName VARCHAR(100), custCity VARCHAR(80));`
	s, err := importer.ParseSQL("crm", ddl)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInstances("crm")
	csvData := `custNo,custName,custCity,extraColumn
1,Hong Do,Leipzig,x
2,Erhard Rahm,Leipzig,y
3,,Dresden,z`
	if err := LoadCSV(in, s, "Customer", strings.NewReader(csvData)); err != nil {
		t.Fatal(err)
	}
	if v := in.Values("Customer.custName"); len(v) != 2 {
		t.Errorf("custName values = %v (empty cells skipped)", v)
	}
	if v := in.Values("Customer.custCity"); len(v) != 3 || v[2] != "Dresden" {
		t.Errorf("custCity values = %v", v)
	}
	// Unknown header columns are ignored entirely.
	if in.Len() != 3 {
		t.Errorf("paths with values = %d, want 3", in.Len())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	s, _ := importer.ParseSQL("crm", "CREATE TABLE T (a INT);")
	in := NewInstances("crm")
	if err := LoadCSV(in, s, "Missing", strings.NewReader("a\n1")); err == nil {
		t.Error("unknown table should fail")
	}
	if err := LoadCSV(in, s, "T", strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail")
	}
}

func TestLoadedInstancesDriveMatcher(t *testing.T) {
	// End-to-end: values loaded from documents feed the matcher.
	s2, err := importer.ParseXSD("PO2", []byte(loadXSD))
	if err != nil {
		t.Fatal(err)
	}
	in2 := NewInstances("PO2")
	if err := LoadXML(in2, s2, strings.NewReader(sampleDoc)); err != nil {
		t.Fatal(err)
	}
	ddl := `CREATE TABLE ShipTo (shipCity VARCHAR(80), shipZip VARCHAR(10));`
	s1, err := importer.ParseSQL("PO1", ddl)
	if err != nil {
		t.Fatal(err)
	}
	in1 := NewInstances("PO1")
	csvData := "shipCity,shipZip\nLeipzig,04109\nDresden,01067\nBerlin,10115\nHamburg,20095"
	if err := LoadCSV(in1, s1, "ShipTo", strings.NewReader(csvData)); err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(in1, in2)
	res := m.Match(nil, s1, s2)
	zip := res.GetKey("ShipTo.shipZip", "DeliverTo.Address.Zip")
	cityVsZip := res.GetKey("ShipTo.shipCity", "DeliverTo.Address.Zip")
	if zip <= cityVsZip {
		t.Errorf("zip/zip %.3f <= city/zip %.3f", zip, cityVsZip)
	}
}
