package instance

import (
	"encoding/csv"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/schema"
)

// LoadXML extracts instance values for a schema's elements from a
// sample XML document: every text node and attribute is recorded under
// the schema path its element chain corresponds to. Document element
// chains are matched against schema paths by local names, skipping over
// intermediate type nodes that XSD imports introduce (DeliverTo/Address
// in the graph vs <DeliverTo> directly containing <Street> in
// documents) and ignoring unknown elements.
func LoadXML(into *Instances, s *schema.Schema, doc io.Reader) error {
	// Index schema paths by their name chains for flexible lookup.
	type target struct{ path string }
	bySig := make(map[string][]target)
	for _, p := range s.Paths() {
		names := p.Names()
		sigs := signatures(names)
		for _, sig := range sigs {
			bySig[sig] = append(bySig[sig], target{path: p.String()})
		}
	}

	dec := xml.NewDecoder(doc)
	var stack []string
	record := func(text string) {
		text = strings.TrimSpace(text)
		if text == "" || len(stack) == 0 {
			return
		}
		// Longest-suffix match of the document chain against schema
		// signatures.
		for start := 0; start < len(stack); start++ {
			sig := strings.Join(stack[start:], "/")
			if ts, ok := bySig[sig]; ok {
				for _, t := range ts {
					into.Add(t.path, text)
				}
				return
			}
		}
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("instance: xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			stack = append(stack, t.Name.Local)
			for _, a := range t.Attr {
				stack = append(stack, a.Name.Local)
				record(a.Value)
				stack = stack[:len(stack)-1]
			}
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			record(string(t))
		}
	}
	return nil
}

// signatures returns the name-chain lookup keys for a schema path: the
// full chain plus variants with each single intermediate dropped, so
// that <DeliverTo><Street> matches DeliverTo.Address.Street.
func signatures(names []string) []string {
	full := strings.Join(names, "/")
	out := []string{full}
	for drop := 1; drop < len(names)-1; drop++ {
		variant := make([]string, 0, len(names)-1)
		variant = append(variant, names[:drop]...)
		variant = append(variant, names[drop+1:]...)
		out = append(out, strings.Join(variant, "/"))
	}
	return out
}

// LoadCSV extracts instance values for one relational table from CSV
// rows whose header names the table's columns. Values land under
// "<table>.<column>" paths; header columns without a schema counterpart
// are ignored.
func LoadCSV(into *Instances, s *schema.Schema, table string, src io.Reader) error {
	var tableNode *schema.Node
	for _, n := range s.Root.Children() {
		if n.Name == table {
			tableNode = n
			break
		}
	}
	if tableNode == nil {
		return fmt.Errorf("instance: table %q not in schema %s", table, s.Name)
	}
	known := make(map[string]string) // lower-case column → path
	for _, c := range tableNode.Children() {
		known[strings.ToLower(c.Name)] = table + "." + c.Name
	}
	r := csv.NewReader(src)
	r.TrimLeadingSpace = true
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("instance: csv header: %w", err)
	}
	paths := make([]string, len(header))
	for i, h := range header {
		paths[i] = known[strings.ToLower(strings.TrimSpace(h))]
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("instance: csv: %w", err)
		}
		for i, v := range rec {
			if i < len(paths) && paths[i] != "" && strings.TrimSpace(v) != "" {
				into.Add(paths[i], v)
			}
		}
	}
}
