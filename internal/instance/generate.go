package instance

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/schema"
)

// Generate produces a deterministic synthetic value sample for every
// leaf path of a schema: n values per element, drawn from value pools
// selected by the element's concept (via conceptOf; empty concepts fall
// back to the element's name). Two schemas generated with the same seed
// produce samples drawn from the same distributions for semantically
// equal elements — standing in for the shared real-world instance data
// the paper's instance-level future work presumes.
func Generate(s *schema.Schema, conceptOf func(schema.Path) string, n int, seed int64) *Instances {
	out := NewInstances(s.Name)
	for _, p := range s.Paths() {
		if !p.Leaf().IsLeaf() {
			continue
		}
		concept := ""
		if conceptOf != nil {
			concept = conceptOf(p)
		}
		if concept == "" {
			concept = strings.ToLower(p.Name())
		}
		// Per-element RNG: deterministic, independent of enumeration
		// order, shared across schemas via the concept.
		rng := rand.New(rand.NewSource(seed ^ int64(hash(concept))))
		vals := make([]string, n)
		gen := generatorFor(concept)
		for i := range vals {
			vals[i] = gen(rng)
		}
		out.Add(p.String(), vals...)
	}
	return out
}

func hash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

type generator func(*rand.Rand) string

// generatorFor picks a value generator from the concept's relative part
// (the suffix after ':', or the whole string).
func generatorFor(concept string) generator {
	rel := concept
	if i := strings.LastIndexByte(concept, ':'); i >= 0 {
		rel = concept[i+1:]
	}
	switch rel {
	case "city":
		return pick(cities)
	case "street", "street2":
		return genStreet
	case "zip":
		return genZip
	case "country":
		return pick(countries)
	case "name", "carrier":
		return genPersonOrCompany
	case "phone", "fax":
		return genPhone
	case "email":
		return genEmail
	case "date", "duedate", "ackdate", "pickdate", "scheddate", "reqdate", "confirm", "expiry":
		return genDate
	case "no", "id", "account":
		return genIdentifier
	case "qty", "schedqty":
		return genSmallNumber
	case "price", "total", "sub", "tax", "shipping", "grand", "amount", "deposit", "discamt":
		return genMoney
	case "currency":
		return pick(currencies)
	case "uom":
		return pick(uoms)
	case "desc", "remark", "product":
		return genWords
	case "status":
		return pick(statuses)
	default:
		return genWords
	}
}

func pick(pool []string) generator {
	return func(r *rand.Rand) string { return pool[r.Intn(len(pool))] }
}

var (
	cities     = []string{"Leipzig", "Hong Kong", "Dresden", "Berlin", "Madison", "Seattle", "Redmond", "Palo Alto", "Stanford", "Austin"}
	countries  = []string{"DE", "US", "HK", "FR", "GB", "NL", "IT", "ES"}
	currencies = []string{"EUR", "USD", "HKD", "GBP"}
	uoms       = []string{"EA", "BOX", "KG", "L", "PAL", "M"}
	statuses   = []string{"OPEN", "CONFIRMED", "SHIPPED", "CLOSED", "CANCELLED"}
	firstNames = []string{"Hong", "Erhard", "Sergey", "Phil", "Anhai", "Jayant", "Rachel", "Tova"}
	lastNames  = []string{"Do", "Rahm", "Melnik", "Bernstein", "Doan", "Madhavan", "Pottinger", "Milo"}
	streets    = []string{"Augustusplatz", "Main St", "Ritterstr", "Market Ave", "University Dr", "Harbour Rd"}
	words      = []string{"widget", "flange", "gasket", "bracket", "valve", "coupler", "sensor", "bearing", "spindle", "manifold"}
)

func genStreet(r *rand.Rand) string {
	return fmt.Sprintf("%s %d", streets[r.Intn(len(streets))], 1+r.Intn(200))
}

func genZip(r *rand.Rand) string {
	return fmt.Sprintf("%05d", r.Intn(100000))
}

func genPersonOrCompany(r *rand.Rand) string {
	return firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
}

func genPhone(r *rand.Rand) string {
	return fmt.Sprintf("+%d %d %07d", 1+r.Intn(98), 100+r.Intn(900), r.Intn(10000000))
}

func genEmail(r *rand.Rand) string {
	return fmt.Sprintf("%s.%s@example.com",
		strings.ToLower(firstNames[r.Intn(len(firstNames))]),
		strings.ToLower(lastNames[r.Intn(len(lastNames))]))
}

func genDate(r *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 1998+r.Intn(6), 1+r.Intn(12), 1+r.Intn(28))
}

func genIdentifier(r *rand.Rand) string {
	return fmt.Sprintf("%06d", r.Intn(1000000))
}

func genSmallNumber(r *rand.Rand) string {
	return fmt.Sprintf("%d", 1+r.Intn(500))
}

func genMoney(r *rand.Rand) string {
	return fmt.Sprintf("%d.%02d", r.Intn(10000), r.Intn(100))
}

func genWords(r *rand.Rand) string {
	n := 1 + r.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[r.Intn(len(words))]
	}
	return strings.Join(parts, " ")
}
