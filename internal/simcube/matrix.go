// Package simcube implements COMA's central intermediate data
// structures (Do & Rahm, VLDB 2002, Sections 3 and 6): the k × m × n
// similarity cube produced by executing k matchers over m S1 elements
// and n S2 elements, the m × n similarity matrix obtained by
// aggregation, and the match result (mapping) produced by selection.
package simcube

import (
	"fmt"
	"math"
	"sync"
)

// Matrix is an m × n similarity matrix over two ordered element-key
// sets. Keys are path strings; values are similarities in [0, 1].
type Matrix struct {
	rowKeys []string
	colKeys []string
	// Key→index maps are built lazily on the first keyed access: the
	// hybrid matchers allocate a matrix per token grid / element pair
	// and only ever address it by index, so eager map construction
	// would dominate the inner loop.
	idxOnce sync.Once
	rowIdx  map[string]int
	colIdx  map[string]int
	data    []float64 // row-major
	// arena records the pool the data slice was acquired from
	// (NewMatrixIn); ReleaseTo frees only into the owning arena, so a
	// matrix from any other source — including one a custom matcher
	// retains across calls — passes through a release untouched.
	arena *Arena
}

// NewMatrix returns a zero-filled matrix over the given key sets. The
// key slices are captured, not copied; callers must not mutate them.
func NewMatrix(rowKeys, colKeys []string) *Matrix {
	return &Matrix{
		rowKeys: rowKeys,
		colKeys: colKeys,
		data:    make([]float64, len(rowKeys)*len(colKeys)),
	}
}

// ensureIdx builds the key→index maps; safe for concurrent use.
func (m *Matrix) ensureIdx() {
	m.idxOnce.Do(func() {
		m.rowIdx = make(map[string]int, len(m.rowKeys))
		for i, k := range m.rowKeys {
			m.rowIdx[k] = i
		}
		m.colIdx = make(map[string]int, len(m.colKeys))
		for j, k := range m.colKeys {
			m.colIdx[k] = j
		}
	})
}

// Rows returns the number of rows (S1 elements).
func (m *Matrix) Rows() int { return len(m.rowKeys) }

// Cols returns the number of columns (S2 elements).
func (m *Matrix) Cols() int { return len(m.colKeys) }

// RowKeys returns the ordered row keys. Do not modify.
func (m *Matrix) RowKeys() []string { return m.rowKeys }

// ColKeys returns the ordered column keys. Do not modify.
func (m *Matrix) ColKeys() []string { return m.colKeys }

// Get returns the similarity at (i, j).
func (m *Matrix) Get(i, j int) float64 { return m.data[i*len(m.colKeys)+j] }

// Set stores a similarity at (i, j), clamped to [0, 1]. NaN is stored
// as 0.
func (m *Matrix) Set(i, j int, v float64) {
	m.data[i*len(m.colKeys)+j] = Clamp(v)
}

// Clamp is the storage normalization of Set: values clamped to [0, 1],
// NaN stored as 0. Exported so that matrix-free fast paths (token
// grids, mutual-best folds) normalize exactly like a materialized
// matrix would.
func Clamp(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// RowIndex returns the index of a row key, or -1.
func (m *Matrix) RowIndex(key string) int {
	m.ensureIdx()
	if i, ok := m.rowIdx[key]; ok {
		return i
	}
	return -1
}

// ColIndex returns the index of a column key, or -1.
func (m *Matrix) ColIndex(key string) int {
	m.ensureIdx()
	if j, ok := m.colIdx[key]; ok {
		return j
	}
	return -1
}

// GetKey returns the similarity for a key pair; missing keys yield 0.
func (m *Matrix) GetKey(row, col string) float64 {
	i, j := m.RowIndex(row), m.ColIndex(col)
	if i < 0 || j < 0 {
		return 0
	}
	return m.Get(i, j)
}

// SetKey stores a similarity for a key pair; missing keys are an error.
func (m *Matrix) SetKey(row, col string, v float64) error {
	i, j := m.RowIndex(row), m.ColIndex(col)
	if i < 0 {
		return fmt.Errorf("simcube: unknown row key %q", row)
	}
	if j < 0 {
		return fmt.Errorf("simcube: unknown column key %q", col)
	}
	m.Set(i, j, v)
	return nil
}

// Fill sets every cell from f(i, j).
func (m *Matrix) Fill(f func(i, j int) float64) {
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			m.Set(i, j, f(i, j))
		}
	}
}

// Transpose returns a new matrix with rows and columns exchanged.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.colKeys, m.rowKeys)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			t.Set(j, i, m.Get(i, j))
		}
	}
	return t
}

// Clone returns a deep copy of the matrix sharing key slices.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rowKeys, m.colKeys)
	copy(c.data, m.data)
	return c
}

// Cube is the k × m × n similarity cube: one layer (Matrix) per matcher
// over shared element-key sets. It is the unit stored in the repository
// between the matcher execution and combination phases.
type Cube struct {
	rowKeys []string
	colKeys []string
	names   []string
	layers  []*Matrix
}

// NewCube returns an empty cube over the given key sets.
func NewCube(rowKeys, colKeys []string) *Cube {
	return &Cube{rowKeys: rowKeys, colKeys: colKeys}
}

// RowKeys returns the ordered S1 element keys. Do not modify.
func (c *Cube) RowKeys() []string { return c.rowKeys }

// ColKeys returns the ordered S2 element keys. Do not modify.
func (c *Cube) ColKeys() []string { return c.colKeys }

// Matchers returns the layer names in insertion order. Do not modify.
func (c *Cube) Matchers() []string { return c.names }

// Layers returns the number of matcher layers.
func (c *Cube) Layers() int { return len(c.layers) }

// AddLayer appends a matcher's result matrix. The matrix must be
// non-nil and over the cube's key sets; a nil matrix — a faulty or
// fault-injected matcher that produced nothing — is rejected as an
// error rather than a panic, so the schedulers' error paths (arena
// release, transient eviction) handle matcher loss like any other
// failure.
func (c *Cube) AddLayer(matcher string, m *Matrix) error {
	if m == nil {
		return fmt.Errorf("simcube: layer %q is missing (matcher returned no matrix)", matcher)
	}
	if m.Rows() != len(c.rowKeys) || m.Cols() != len(c.colKeys) {
		return fmt.Errorf("simcube: layer %q is %dx%d, cube is %dx%d",
			matcher, m.Rows(), m.Cols(), len(c.rowKeys), len(c.colKeys))
	}
	c.names = append(c.names, matcher)
	c.layers = append(c.layers, m)
	return nil
}

// NewLayer allocates, registers and returns a fresh zero layer.
func (c *Cube) NewLayer(matcher string) *Matrix {
	m := NewMatrix(c.rowKeys, c.colKeys)
	c.names = append(c.names, matcher)
	c.layers = append(c.layers, m)
	return m
}

// Layer returns the layer with the given matcher name, or nil.
func (c *Cube) Layer(matcher string) *Matrix {
	for i, n := range c.names {
		if n == matcher {
			return c.layers[i]
		}
	}
	return nil
}

// LayerAt returns the i-th layer.
func (c *Cube) LayerAt(i int) *Matrix { return c.layers[i] }

// Aggregate folds all layers into a single matrix cell-by-cell using f,
// which receives the per-matcher similarity values for one element pair
// (reused buffer; f must not retain it). The fold runs directly over
// the layers' flat row-major storage: one linear pass, no per-cell
// index arithmetic.
func (c *Cube) Aggregate(f func(vals []float64) float64) *Matrix {
	out := NewMatrix(c.rowKeys, c.colKeys)
	if len(c.layers) == 0 {
		return out
	}
	vals := make([]float64, len(c.layers))
	for p := range out.data {
		for k, l := range c.layers {
			vals[k] = l.data[p]
		}
		out.data[p] = Clamp(f(vals))
	}
	return out
}
