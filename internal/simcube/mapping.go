package simcube

import (
	"fmt"
	"sort"
	"strings"
)

// Correspondence is one mapping element: a 1:1 correspondence between an
// element (path) of each schema together with the plausibility of their
// correspondence, a similarity between 0 and 1.
type Correspondence struct {
	From string  // S1 element path
	To   string  // S2 element path
	Sim  float64 // plausibility in [0,1]
}

// String renders the correspondence like the paper's tables.
func (c Correspondence) String() string {
	return fmt.Sprintf("%s <-> %s (%.2f)", c.From, c.To, c.Sim)
}

// Mapping is a match result: a set of correspondences between two
// schemas, the relational representation used by MatchCompose (paper
// Figure 3c). The zero value is an empty mapping; set the schema names
// before storing it in the repository.
type Mapping struct {
	FromSchema string
	ToSchema   string
	corrs      []Correspondence
	index      map[[2]string]int
}

// NewMapping returns an empty mapping between the named schemas.
func NewMapping(from, to string) *Mapping {
	return &Mapping{FromSchema: from, ToSchema: to}
}

// Add records a correspondence. A second Add for the same (From, To)
// pair overwrites the similarity (last write wins).
func (m *Mapping) Add(from, to string, sim float64) {
	if m.index == nil {
		m.index = make(map[[2]string]int)
	}
	key := [2]string{from, to}
	if i, ok := m.index[key]; ok {
		m.corrs[i].Sim = sim
		return
	}
	m.index[key] = len(m.corrs)
	m.corrs = append(m.corrs, Correspondence{From: from, To: to, Sim: sim})
}

// Get returns the similarity recorded for (from, to) and whether the
// pair is present.
func (m *Mapping) Get(from, to string) (float64, bool) {
	if m == nil || m.index == nil {
		return 0, false
	}
	if i, ok := m.index[[2]string{from, to}]; ok {
		return m.corrs[i].Sim, true
	}
	return 0, false
}

// Contains reports whether the pair is present.
func (m *Mapping) Contains(from, to string) bool {
	_, ok := m.Get(from, to)
	return ok
}

// Len returns the number of correspondences.
func (m *Mapping) Len() int {
	if m == nil {
		return 0
	}
	return len(m.corrs)
}

// Correspondences returns the correspondences in insertion order. Do
// not modify the returned slice.
func (m *Mapping) Correspondences() []Correspondence {
	if m == nil {
		return nil
	}
	return m.corrs
}

// ByFrom returns all correspondences with the given S1 element.
func (m *Mapping) ByFrom(from string) []Correspondence {
	var out []Correspondence
	for _, c := range m.corrs {
		if c.From == from {
			out = append(out, c)
		}
	}
	return out
}

// ByTo returns all correspondences with the given S2 element.
func (m *Mapping) ByTo(to string) []Correspondence {
	var out []Correspondence
	for _, c := range m.corrs {
		if c.To == to {
			out = append(out, c)
		}
	}
	return out
}

// FromElements returns the distinct matched S1 elements.
func (m *Mapping) FromElements() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range m.corrs {
		if !seen[c.From] {
			seen[c.From] = true
			out = append(out, c.From)
		}
	}
	return out
}

// ToElements returns the distinct matched S2 elements.
func (m *Mapping) ToElements() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range m.corrs {
		if !seen[c.To] {
			seen[c.To] = true
			out = append(out, c.To)
		}
	}
	return out
}

// Invert returns the mapping with match direction reversed.
func (m *Mapping) Invert() *Mapping {
	inv := NewMapping(m.ToSchema, m.FromSchema)
	for _, c := range m.corrs {
		inv.Add(c.To, c.From, c.Sim)
	}
	return inv
}

// Clone returns a deep copy.
func (m *Mapping) Clone() *Mapping {
	c := NewMapping(m.FromSchema, m.ToSchema)
	for _, corr := range m.corrs {
		c.Add(corr.From, corr.To, corr.Sim)
	}
	return c
}

// Sort orders correspondences by (From, To); useful for deterministic
// output.
func (m *Mapping) Sort() {
	sort.Slice(m.corrs, func(i, j int) bool {
		if m.corrs[i].From != m.corrs[j].From {
			return m.corrs[i].From < m.corrs[j].From
		}
		return m.corrs[i].To < m.corrs[j].To
	})
	for i, c := range m.corrs {
		m.index[[2]string{c.From, c.To}] = i
	}
}

// Intersect returns the correspondences present in both mappings
// (similarities taken from m), the "Both" direction semantics.
func (m *Mapping) Intersect(other *Mapping) *Mapping {
	out := NewMapping(m.FromSchema, m.ToSchema)
	for _, c := range m.corrs {
		if other.Contains(c.From, c.To) {
			out.Add(c.From, c.To, c.Sim)
		}
	}
	return out
}

// String renders the mapping one correspondence per line.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s <-> %s (%d correspondences)\n", m.FromSchema, m.ToSchema, m.Len())
	for _, c := range m.corrs {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String()
}
