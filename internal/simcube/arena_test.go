package simcube

import "testing"

func TestArenaAcquireZeroedAfterDirtyRelease(t *testing.T) {
	a := NewArena()
	s := a.AcquireFloats(10)
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("fresh slice not zeroed at %d", i)
		}
		s[i] = float64(i + 1)
	}
	a.ReleaseFloats(s)
	// A re-acquisition in the same bucket must come back zeroed even
	// though the released slice was dirty.
	r := a.AcquireFloats(12) // same bucket (16) as 10
	if cap(r) != 16 {
		t.Fatalf("cap = %d, want pooled bucket cap 16", cap(r))
	}
	for i := range r {
		if r[i] != 0 {
			t.Fatalf("reused slice not zeroed at %d: %v", i, r[i])
		}
	}
}

func TestArenaNilAndOddCapacities(t *testing.T) {
	var a *Arena
	s := a.AcquireFloats(5)
	if len(s) != 5 {
		t.Fatalf("nil arena acquire len = %d", len(s))
	}
	a.ReleaseFloats(s) // no-op, must not panic

	b := NewArena()
	b.ReleaseFloats(make([]float64, 7)) // non-bucket cap: dropped
	b.ReleaseFloats(nil)                // no-op
	if got := b.AcquireFloats(0); len(got) != 0 {
		t.Fatalf("acquire(0) len = %d", len(got))
	}
}

func TestMatrixInArenaMatchesNewMatrix(t *testing.T) {
	a := NewArena()
	rows, cols := []string{"r1", "r2", "r3"}, []string{"c1", "c2"}
	m := NewMatrixIn(a, rows, cols)
	ref := NewMatrix(rows, cols)
	if m.Rows() != ref.Rows() || m.Cols() != ref.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", m.Rows(), m.Cols(), ref.Rows(), ref.Cols())
	}
	m.Set(1, 1, 0.5)
	if m.Get(1, 1) != 0.5 || m.GetKey("r2", "c2") != 0.5 {
		t.Fatalf("set/get through pooled storage broken")
	}
	m.Reset()
	if m.Get(1, 1) != 0 {
		t.Fatal("Reset left a non-zero cell")
	}
	m.Set(0, 0, 1)
	m.ReleaseTo(a)
	// The released storage must be reused — and zeroed — by the next
	// same-bucket matrix.
	m2 := NewMatrixIn(a, rows, cols)
	for i := 0; i < m2.Rows(); i++ {
		for j := 0; j < m2.Cols(); j++ {
			if m2.Get(i, j) != 0 {
				t.Fatalf("recycled matrix dirty at (%d,%d)", i, j)
			}
		}
	}
}

func TestReleaseToForeignMatrixIsNoOp(t *testing.T) {
	a, other := NewArena(), NewArena()
	rows, cols := []string{"r"}, []string{"c"}

	plain := NewMatrix(rows, cols)
	plain.Set(0, 0, 0.5)
	plain.ReleaseTo(a) // not arena storage: must stay intact
	if plain.Get(0, 0) != 0.5 {
		t.Fatal("ReleaseTo touched a plain NewMatrix")
	}

	pooled := NewMatrixIn(other, rows, cols)
	pooled.Set(0, 0, 0.7)
	pooled.ReleaseTo(a) // wrong arena: must stay intact
	if pooled.Get(0, 0) != 0.7 {
		t.Fatal("ReleaseTo freed another arena's storage")
	}
	pooled.ReleaseTo(other) // owning arena: storage reclaimed
	if pooled.data != nil {
		t.Fatal("owning-arena release left data live")
	}
}

func TestCubeReleaseTo(t *testing.T) {
	a := NewArena()
	rows, cols := []string{"r"}, []string{"c"}
	c := NewCube(rows, cols)
	if err := c.AddLayer("L1", NewMatrixIn(a, rows, cols)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLayer("L2", NewMatrixIn(a, rows, cols)); err != nil {
		t.Fatal(err)
	}
	if c.Layers() != 2 {
		t.Fatalf("layers = %d", c.Layers())
	}
	c.ReleaseTo(a)
	if c.Layers() != 0 || len(c.Matchers()) != 0 {
		t.Fatal("cube not emptied by ReleaseTo")
	}
}
