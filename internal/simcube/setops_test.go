package simcube

import "testing"

func pair(a, b string, sim float64) func(*Mapping) {
	return func(m *Mapping) { m.Add(a, b, sim) }
}

func build(adds ...func(*Mapping)) *Mapping {
	m := NewMapping("A", "B")
	for _, f := range adds {
		f(m)
	}
	return m
}

func TestUnion(t *testing.T) {
	a := build(pair("x", "1", 0.5), pair("y", "2", 0.9))
	b := build(pair("x", "1", 0.7), pair("z", "3", 0.4))
	u := a.Union(b)
	if u.Len() != 3 {
		t.Fatalf("union len = %d", u.Len())
	}
	if sim, _ := u.Get("x", "1"); sim != 0.7 {
		t.Errorf("union should keep max sim, got %.2f", sim)
	}
	if !u.Contains("z", "3") || !u.Contains("y", "2") {
		t.Error("union lost members")
	}
	// Union must not mutate the receivers.
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("union mutated inputs")
	}
}

func TestDiff(t *testing.T) {
	a := build(pair("x", "1", 0.5), pair("y", "2", 0.9))
	b := build(pair("x", "1", 0.7))
	d := a.Diff(b)
	if d.Len() != 1 || !d.Contains("y", "2") {
		t.Fatalf("diff = %v", d.Correspondences())
	}
	// Diff against empty is identity.
	if a.Diff(NewMapping("A", "B")).Len() != a.Len() {
		t.Error("diff against empty should be identity")
	}
}

func TestFilterAndThreshold(t *testing.T) {
	a := build(pair("x", "1", 0.5), pair("y", "2", 0.9), pair("z", "3", 0.3))
	high := a.AboveThreshold(0.4)
	if high.Len() != 2 || high.Contains("z", "3") {
		t.Fatalf("threshold filter = %v", high.Correspondences())
	}
	// Strict inequality.
	if a.AboveThreshold(0.9).Len() != 0 {
		t.Error("threshold should be strict")
	}
	from := a.Filter(func(c Correspondence) bool { return c.From == "x" })
	if from.Len() != 1 || !from.Contains("x", "1") {
		t.Error("predicate filter wrong")
	}
}

func TestSetOpsRoundtrip(t *testing.T) {
	// (a ∖ b) ∪ (a ∩ b) == a (as a set of pairs).
	a := build(pair("x", "1", 0.5), pair("y", "2", 0.9), pair("z", "3", 0.3))
	b := build(pair("y", "2", 0.8), pair("q", "7", 0.6))
	recon := a.Diff(b).Union(a.Intersect(b))
	if recon.Len() != a.Len() {
		t.Fatalf("reconstruction len = %d, want %d", recon.Len(), a.Len())
	}
	for _, c := range a.Correspondences() {
		if !recon.Contains(c.From, c.To) {
			t.Errorf("pair %s lost", c)
		}
	}
}
