package simcube

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func keys(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + string(rune('a'+i))
	}
	return out
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(keys("r", 3), keys("c", 2))
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 1, 0.5)
	if m.Get(1, 1) != 0.5 {
		t.Error("Set/Get roundtrip failed")
	}
	if m.GetKey("rb", "cb") != 0.5 {
		t.Error("GetKey failed")
	}
	if err := m.SetKey("ra", "ca", 0.25); err != nil {
		t.Fatal(err)
	}
	if m.Get(0, 0) != 0.25 {
		t.Error("SetKey failed")
	}
	if err := m.SetKey("zz", "ca", 1); err == nil {
		t.Error("SetKey with unknown row should fail")
	}
	if err := m.SetKey("ra", "zz", 1); err == nil {
		t.Error("SetKey with unknown col should fail")
	}
	if m.GetKey("zz", "ca") != 0 {
		t.Error("GetKey with unknown key should be 0")
	}
	if m.RowIndex("rc") != 2 || m.ColIndex("zz") != -1 {
		t.Error("index lookups wrong")
	}
}

func TestMatrixClamping(t *testing.T) {
	m := NewMatrix(keys("r", 1), keys("c", 1))
	m.Set(0, 0, 1.5)
	if m.Get(0, 0) != 1 {
		t.Error("values should clamp to 1")
	}
	m.Set(0, 0, -0.5)
	if m.Get(0, 0) != 0 {
		t.Error("values should clamp to 0")
	}
	m.Set(0, 0, math.NaN())
	if m.Get(0, 0) != 0 {
		t.Error("NaN should store as 0")
	}
}

func TestMatrixTransposeClone(t *testing.T) {
	m := NewMatrix(keys("r", 2), keys("c", 3))
	m.Fill(func(i, j int) float64 { return float64(i*3+j) / 10 })
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims = %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.Get(i, j) != tr.Get(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	cl := m.Clone()
	cl.Set(0, 0, 0.99)
	if m.Get(0, 0) == 0.99 {
		t.Error("Clone should not share data")
	}
}

func TestCube(t *testing.T) {
	c := NewCube(keys("r", 2), keys("c", 2))
	l1 := c.NewLayer("TypeName")
	l1.Set(0, 0, 0.8)
	l2 := NewMatrix(c.RowKeys(), c.ColKeys())
	l2.Set(0, 0, 0.4)
	if err := c.AddLayer("NamePath", l2); err != nil {
		t.Fatal(err)
	}
	if c.Layers() != 2 {
		t.Fatalf("Layers = %d", c.Layers())
	}
	if c.Layer("TypeName") != l1 || c.Layer("missing") != nil {
		t.Error("Layer lookup wrong")
	}
	if c.LayerAt(1) != l2 {
		t.Error("LayerAt wrong")
	}
	avg := c.Aggregate(func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	})
	if got := avg.Get(0, 0); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("aggregate = %.3f, want 0.6", got)
	}
	// Wrong-shaped layer rejected.
	bad := NewMatrix(keys("r", 3), keys("c", 2))
	if err := c.AddLayer("bad", bad); err == nil {
		t.Error("mis-shaped layer should be rejected")
	}
	// Empty cube aggregates to zeros.
	empty := NewCube(keys("r", 1), keys("c", 1))
	z := empty.Aggregate(func(v []float64) float64 { return 1 })
	if z.Get(0, 0) != 0 {
		t.Error("empty cube should aggregate to zero matrix")
	}
}

func TestMappingBasics(t *testing.T) {
	m := NewMapping("PO1", "PO2")
	m.Add("ShipTo.shipToCity", "DeliverTo.Address.City", 0.72)
	m.Add("Customer.custCity", "DeliverTo.Address.City", 0.67)
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if sim, ok := m.Get("ShipTo.shipToCity", "DeliverTo.Address.City"); !ok || sim != 0.72 {
		t.Errorf("Get = %.2f, %v", sim, ok)
	}
	// Overwrite.
	m.Add("ShipTo.shipToCity", "DeliverTo.Address.City", 0.9)
	if sim, _ := m.Get("ShipTo.shipToCity", "DeliverTo.Address.City"); sim != 0.9 {
		t.Error("Add should overwrite")
	}
	if m.Len() != 2 {
		t.Error("overwrite must not grow the mapping")
	}
	if len(m.ByTo("DeliverTo.Address.City")) != 2 {
		t.Error("ByTo wrong")
	}
	if len(m.ByFrom("Customer.custCity")) != 1 {
		t.Error("ByFrom wrong")
	}
	if got := m.FromElements(); len(got) != 2 {
		t.Errorf("FromElements = %v", got)
	}
	if got := m.ToElements(); len(got) != 1 {
		t.Errorf("ToElements = %v", got)
	}
	if !strings.Contains(m.String(), "PO1 <-> PO2") {
		t.Error("String missing header")
	}
}

func TestMappingNil(t *testing.T) {
	var m *Mapping
	if m.Len() != 0 || m.Correspondences() != nil || m.Contains("a", "b") {
		t.Error("nil mapping should behave as empty")
	}
}

func TestMappingInvert(t *testing.T) {
	m := NewMapping("A", "B")
	m.Add("x", "y", 0.5)
	inv := m.Invert()
	if inv.FromSchema != "B" || inv.ToSchema != "A" {
		t.Error("Invert schema names")
	}
	if sim, ok := inv.Get("y", "x"); !ok || sim != 0.5 {
		t.Error("Invert correspondence")
	}
}

func TestMappingIntersect(t *testing.T) {
	a := NewMapping("A", "B")
	a.Add("x", "y", 0.8)
	a.Add("p", "q", 0.6)
	b := NewMapping("A", "B")
	b.Add("x", "y", 0.7)
	got := a.Intersect(b)
	if got.Len() != 1 {
		t.Fatalf("intersect len = %d", got.Len())
	}
	if sim, _ := got.Get("x", "y"); sim != 0.8 {
		t.Error("intersect should keep receiver's similarity")
	}
}

func TestMappingSort(t *testing.T) {
	m := NewMapping("A", "B")
	m.Add("b", "x", 0.1)
	m.Add("a", "y", 0.2)
	m.Add("a", "x", 0.3)
	m.Sort()
	cs := m.Correspondences()
	if cs[0].From != "a" || cs[0].To != "x" || cs[2].From != "b" {
		t.Errorf("sorted order wrong: %v", cs)
	}
	// Index still consistent after sort.
	if sim, ok := m.Get("a", "y"); !ok || sim != 0.2 {
		t.Error("index broken after Sort")
	}
}

func TestMappingClone(t *testing.T) {
	m := NewMapping("A", "B")
	m.Add("x", "y", 0.5)
	c := m.Clone()
	c.Add("x", "y", 0.9)
	if sim, _ := m.Get("x", "y"); sim != 0.5 {
		t.Error("Clone should not share state")
	}
}

func TestPropertyMatrixStoreLoad(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewMatrix(keys("r", rows), keys("c", cols))
		want := make(map[[2]int]float64)
		for k := 0; k < 20; k++ {
			i, j := r.Intn(rows), r.Intn(cols)
			v := r.Float64()
			m.Set(i, j, v)
			want[[2]int{i, j}] = v
		}
		for k, v := range want {
			if m.Get(k[0], k[1]) != v {
				return false
			}
		}
		// Transpose twice is identity.
		tt := m.Transpose().Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tt.Get(i, j) != m.Get(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMappingInvertInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMapping("A", "B")
		for k := 0; k < r.Intn(20); k++ {
			m.Add(keys("f", 8)[r.Intn(8)], keys("t", 8)[r.Intn(8)], r.Float64())
		}
		back := m.Invert().Invert()
		if back.Len() != m.Len() {
			return false
		}
		for _, c := range m.Correspondences() {
			if sim, ok := back.Get(c.From, c.To); !ok || sim != c.Sim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
