package simcube

// Set operations on mappings, used by interactive workflows (diffing
// two proposals, merging a reviewer's additions) and by the evaluation.

// Union returns all correspondences of m and other; for pairs present
// in both, the maximal similarity wins.
func (m *Mapping) Union(other *Mapping) *Mapping {
	out := NewMapping(m.FromSchema, m.ToSchema)
	for _, c := range m.Correspondences() {
		out.Add(c.From, c.To, c.Sim)
	}
	for _, c := range other.Correspondences() {
		if prev, ok := out.Get(c.From, c.To); !ok || c.Sim > prev {
			out.Add(c.From, c.To, c.Sim)
		}
	}
	return out
}

// Diff returns the correspondences of m that are absent from other
// (similarities from m).
func (m *Mapping) Diff(other *Mapping) *Mapping {
	out := NewMapping(m.FromSchema, m.ToSchema)
	for _, c := range m.Correspondences() {
		if !other.Contains(c.From, c.To) {
			out.Add(c.From, c.To, c.Sim)
		}
	}
	return out
}

// Filter returns the correspondences satisfying keep.
func (m *Mapping) Filter(keep func(Correspondence) bool) *Mapping {
	out := NewMapping(m.FromSchema, m.ToSchema)
	for _, c := range m.Correspondences() {
		if keep(c) {
			out.Add(c.From, c.To, c.Sim)
		}
	}
	return out
}

// AboveThreshold returns the correspondences with similarity strictly
// above t.
func (m *Mapping) AboveThreshold(t float64) *Mapping {
	return m.Filter(func(c Correspondence) bool { return c.Sim > t })
}
