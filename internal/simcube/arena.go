package simcube

import (
	"math/bits"
	"sync"
)

// Arena recycles the float64 backing storage of matrices, cube layers
// and similarity grids across match operations. The batch scheduler
// allocates one matrix per matcher per pair; with an arena those
// allocations are paid once per size class and then reused for every
// subsequent pair of the batch.
//
// Slices are pooled in power-of-two capacity buckets backed by
// sync.Pool, so an Arena is safe for concurrent use and sheds its
// contents under memory pressure. Release is strictly the caller's
// assertion that no live data structure aliases the slice anymore:
// releasing memory still referenced by a retained Matrix, Cube or grid
// corrupts later matches. The engine therefore only releases
// intermediates (token grids, leaf grids) and cube layers it drops at
// cube→mapping extraction; everything handed back to callers is either
// arena-free or still owned by them.
//
// A nil *Arena is valid and disables pooling: acquisitions fall back
// to plain allocations and releases are no-ops, so arena-aware code
// needs no call-site branching.
type Arena struct {
	// pools[b] holds released slices with capacity exactly 1<<b.
	pools [maxBucket + 1]sync.Pool
}

// maxBucket bounds the pooled size classes: slices above 2^maxBucket
// floats (32 MiB) are left to the garbage collector.
const maxBucket = 22

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// bucketFor returns the bucket whose slices hold at least n floats, or
// -1 when n is zero or too large to pool.
func bucketFor(n int) int {
	if n <= 0 || n > 1<<maxBucket {
		return -1
	}
	return bits.Len(uint(n - 1))
}

// AcquireFloats returns a zeroed slice of n floats, reusing pooled
// storage when a fitting slice was released earlier.
func (a *Arena) AcquireFloats(n int) []float64 {
	b := bucketFor(n)
	if a == nil || b < 0 {
		return make([]float64, n)
	}
	if v := a.pools[b].Get(); v != nil {
		s := v.([]float64)[:n]
		clear(s)
		return s
	}
	return make([]float64, n, 1<<b)
}

// ReleaseFloats returns a slice's backing storage to the arena. The
// caller asserts nothing aliases the slice anymore. Slices whose
// capacity is not an exact bucket size (not obtained from an arena)
// are dropped for the garbage collector; a nil arena drops everything.
func (a *Arena) ReleaseFloats(s []float64) {
	if a == nil || cap(s) == 0 {
		return
	}
	b := bucketFor(cap(s))
	if b < 0 || cap(s) != 1<<b {
		return
	}
	a.pools[b].Put(s[:0])
}

// NewMatrixIn returns a zero-filled matrix over the given key sets
// whose backing storage comes from the arena; apart from the storage's
// provenance it is indistinguishable from NewMatrix. Release the
// storage with ReleaseTo once nothing references the matrix anymore.
// The key slices are captured, not copied.
func NewMatrixIn(a *Arena, rowKeys, colKeys []string) *Matrix {
	return &Matrix{
		rowKeys: rowKeys,
		colKeys: colKeys,
		data:    a.AcquireFloats(len(rowKeys) * len(colKeys)),
		arena:   a,
	}
}

// Reset zeroes every cell, returning the matrix to its
// freshly-constructed state so its storage can be refilled in place.
func (m *Matrix) Reset() { clear(m.data) }

// ReleaseTo hands the matrix's backing storage back to the arena it
// was acquired from. A released matrix must not be used afterwards:
// its data is gone (any access panics) so it can never silently alias
// a pooled slice that a later match is filling. A matrix whose storage
// did not come from a (the non-nil NewMatrix case — e.g. a matrix a
// custom matcher builds and retains across calls) is left fully
// intact: releases only ever reclaim storage this arena handed out.
// A nil matrix is a no-op, so error paths release unconditionally.
func (m *Matrix) ReleaseTo(a *Arena) {
	if m == nil || a == nil || m.arena != a {
		return
	}
	a.ReleaseFloats(m.data)
	m.data = nil
	m.arena = nil
}

// ReleaseTo hands every arena-acquired layer's backing storage back to
// the arena and empties the cube. It is the cube→mapping extraction
// hook of the batch scheduler: once aggregation has folded the layers
// into the result matrix, the layers are recycled for the next pair.
// The cube must not be used afterwards; layers whose storage the arena
// does not own (custom matchers returning externally built matrices)
// stay intact for their owners.
func (c *Cube) ReleaseTo(a *Arena) {
	for _, l := range c.layers {
		l.ReleaseTo(a)
	}
	c.names = nil
	c.layers = nil
}
