// Package server puts a network front-end over a COMA repository: an
// HTTP/JSON API exposing the repository-server operations the paper's
// architecture implies (Do & Rahm, VLDB 2002, Section 3) — import a
// schema into the store, list what is stored, and match an incoming
// schema against every stored one in a single scheduled batch.
//
// Endpoints:
//
//	GET    /healthz          liveness + store size
//	GET    /readyz           readiness + admission queue state
//	GET    /metrics          Prometheus text-format metrics
//	GET    /schemas          stored schema names and sizes
//	PUT    /schemas/{name}   import an inline schema into the store
//	GET    /schemas/{name}   one stored schema's path enumeration
//	DELETE /schemas/{name}   remove a stored schema
//	POST   /match            batch-match an inline or stored schema
//
// Match execution is the expensive operation, so the server bounds the
// number of concurrently executing match requests with a semaphore
// sized to the engine's worker count: excess requests queue (and abort
// when the client goes away) instead of piling up unboundedly. Each
// admitted match still spreads over its own worker budget, so the
// worst-case CPU oversubscription is workers × workers, not
// request-count × workers.
//
// The queue itself is bounded too (Config.QueueLimit): beyond it the
// server sheds load with a JSON 429 carrying Retry-After, and a
// request that waits longer than Config.QueueTimeout for a slot is
// answered 503 — the two standard degradation modes of an overloaded
// matcher, preferred over unbounded latency. An admitted match runs
// under the request's context, bounded by Config.MatchTimeout when
// set: a canceled or timed-out request stops the pipeline
// cooperatively (pair and row claims stop, pooled matrices are
// recycled, transient analyses evicted) instead of burning workers for
// a caller that is gone.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/metrics"
	"repro/internal/repository"
	"repro/internal/schema"
)

// Match is one ranked outcome of Backend.MatchIncoming.
type Match struct {
	// Schema is the stored candidate schema.
	Schema *schema.Schema
	// Result is the batch match result for (incoming, Schema).
	Result *core.Result
}

// Backend is what the server serves: repository storage plus the batch
// match operation. The single-store and sharded repositories both
// provide it (through thin adapters in the public coma package), so
// the backing layout is a deployment choice invisible to clients.
type Backend interface {
	// PutSchema stores (or replaces) a schema, reporting whether an
	// earlier schema of the same name was replaced — atomically, so
	// concurrent imports of one name agree on who created it.
	PutSchema(s *schema.Schema) (replaced bool, err error)
	GetSchema(name string) (*schema.Schema, bool)
	// DeleteSchema removes a schema, reporting whether it existed.
	DeleteSchema(name string) (existed bool, err error)
	SchemaNames() []string
	Stats() repository.Stats
	// MatchIncoming batch-matches the incoming schema against every
	// stored schema (excluding same-named ones), returning outcomes
	// ordered by descending combined schema similarity; topK > 0 keeps
	// only the K best. A done ctx stops the match cooperatively and
	// returns the cancellation cause. With allowPartial, a sharded
	// backend degrades failed shards to ShardFailures instead of
	// failing the whole match; single-store backends return no
	// failures. With exhaustive, the backend bypasses its candidate-
	// pruning index (if any) and runs the full pipeline on every
	// candidate — results are bit-identical either way.
	MatchIncoming(ctx context.Context, incoming *schema.Schema, topK int, allowPartial, exhaustive bool) ([]Match, []ShardFailure, error)
	// IndexStats reports the candidate-pruning index state for /readyz;
	// ok is false when the backend matches exhaustively only.
	IndexStats() (stats IndexReadiness, ok bool)
	// Recovery reports each shard's startup log-replay outcome for
	// /readyz; nil when the backend has no durable store.
	Recovery() []RecoveryStatus
	// PageCache reports the repository page buffer pool's state for
	// /readyz; ok is false when the backend has no paged store.
	PageCache() (status PageCacheStatus, ok bool)
	// WarmStart reports the startup warm-restore outcome for /readyz;
	// ok is false when the backend never restores warm state.
	WarmStart() (status WarmStartStatus, ok bool)
}

// Config assembles a Server.
type Config struct {
	// Backend is the served repository. Required.
	Backend Backend
	// Workers bounds the concurrently executing match requests: the
	// semaphore holds match.ResolveWorkers(Workers) slots (<= 0 =
	// NumCPU), mirroring the match engine's own worker knob. It is an
	// admission bound, not a CPU bound — every admitted match runs its
	// own Workers-slot budget.
	Workers int
	// Shards is reported by /healthz (1 for a single-store backend).
	Shards int
	// MaxBodyBytes caps request bodies (PUT /schemas, POST /match);
	// <= 0 selects DefaultMaxBodyBytes. An oversized upload is cut off
	// at the cap and answered with a uniform JSON 413 instead of being
	// buffered onto the heap.
	MaxBodyBytes int64
	// MatchTimeout, when positive, bounds each admitted match request:
	// the match runs under a deadline that far out and answers 504 on
	// expiry, with the pipeline stopped cooperatively. 0 disables the
	// per-request deadline (client disconnects still cancel).
	MatchTimeout time.Duration
	// QueueLimit bounds the admission queue: match requests beyond it
	// are shed with a JSON 429 + Retry-After instead of waiting. 0
	// selects DefaultQueueLimit; negative means unbounded.
	QueueLimit int
	// QueueTimeout bounds how long a match request may wait for an
	// execution slot before it is answered 503. 0 selects
	// DefaultQueueTimeout; negative disables the wait bound.
	QueueTimeout time.Duration
	// FaultHook, when set, is consulted at the start of every mutating
	// or matching handler with the operation name ("match", "put",
	// "delete"); a non-nil return is answered as a 500 without touching
	// the backend. It exists for fault-injection tests and chaos
	// probes; leave nil in production.
	FaultHook func(op string) error
	// DisableMetrics turns the metrics registry and the GET /metrics
	// endpoint off. Metrics are on by default: the instruments are
	// lock-free atomics, so serving without them buys nothing.
	DisableMetrics bool
	// RequestLog, when set, receives one structured line per finished
	// request (method, path, status, elapsed, remote).
	RequestLog *slog.Logger
}

// Server is the HTTP front-end. It implements http.Handler.
type Server struct {
	backend Backend
	shards  int
	mux     *http.ServeMux
	// sem bounds concurrently executing match requests.
	sem chan struct{}
	// maxBody caps request bodies.
	maxBody int64
	// matchTimeout bounds each admitted match (0 = none).
	matchTimeout time.Duration
	// queueLimit bounds waiting match requests (0 = unbounded).
	queueLimit int
	// queueTimeout bounds the slot wait (0 = unbounded).
	queueTimeout time.Duration
	faultHook    func(op string) error
	// queued/inflight feed /readyz; draining flips it to 503.
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	// reg and the instruments below are nil when metrics are disabled;
	// every observation site is nil-safe, so no handler branches on it.
	reg          *metrics.Registry
	httpRequests *metrics.CounterVec
	httpSeconds  *metrics.HistogramVec
	matchExec    *metrics.Histogram
	queueWait    *metrics.Histogram
	shed         *metrics.CounterVec
	reqLog       *slog.Logger
}

// New builds a Server over the config's backend.
func New(cfg Config) *Server {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	queueLimit := cfg.QueueLimit
	if queueLimit == 0 {
		queueLimit = DefaultQueueLimit
	} else if queueLimit < 0 {
		queueLimit = 0
	}
	queueTimeout := cfg.QueueTimeout
	if queueTimeout == 0 {
		queueTimeout = DefaultQueueTimeout
	} else if queueTimeout < 0 {
		queueTimeout = 0
	}
	s := &Server{
		backend:      cfg.Backend,
		shards:       shards,
		mux:          http.NewServeMux(),
		sem:          make(chan struct{}, match.ResolveWorkers(cfg.Workers)),
		maxBody:      maxBody,
		matchTimeout: cfg.MatchTimeout,
		queueLimit:   queueLimit,
		queueTimeout: queueTimeout,
		faultHook:    cfg.FaultHook,
		reqLog:       cfg.RequestLog,
	}
	s.initMetrics(cfg)
	if s.reg != nil {
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /schemas", s.handleListSchemas)
	s.mux.HandleFunc("PUT /schemas/{name}", s.handlePutSchema)
	s.mux.HandleFunc("GET /schemas/{name}", s.handleGetSchema)
	s.mux.HandleFunc("DELETE /schemas/{name}", s.handleDeleteSchema)
	s.mux.HandleFunc("POST /match", s.handleMatch)
	return s
}

// ServeHTTP implements http.Handler. With metrics or request logging
// on, every request is timed and its status captured; otherwise the
// mux is hit directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil && s.reqLog == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	s.mux.ServeHTTP(rec, r)
	status := rec.status
	if status == 0 {
		// Nothing written: ServeMux answered with an implicit 200 (e.g.
		// a handler that returned without writing) — record it as such.
		status = http.StatusOK
	}
	s.observeRequest(r, status, time.Since(start))
}

// Drain flips the server into draining mode ahead of graceful
// shutdown: /readyz answers 503 so load balancers stop routing, and
// new match requests are shed with 503 + Retry-After, while requests
// already queued or in flight complete normally (http.Server.Shutdown
// waits for them). Draining is one-way; restart the process to serve
// again.
func (s *Server) Drain() { s.draining.Store(true) }

// DefaultMaxBodyBytes is the default request body cap; schema
// documents are text and stay far below this.
const DefaultMaxBodyBytes = 16 << 20

// DefaultQueueLimit is the default bound on match requests waiting for
// an execution slot; more than this many waiters answer 429.
const DefaultQueueLimit = 64

// DefaultQueueTimeout is the default bound on one match request's wait
// for an execution slot; longer waits answer 503.
const DefaultQueueTimeout = 30 * time.Second

// statusClientClosedRequest is the conventional (nginx) status for a
// request aborted by its own client; it only ever reaches logs — the
// client that would read it is gone.
const statusClientClosedRequest = 499

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing sensible to do with a mid-body write error
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// bodyError classifies a request body decode failure: 413 when the
// body exceeded the server's cap (http.MaxBytesReader cuts the read
// off before the oversized payload reaches the heap), 400 with the
// given message otherwise.
func bodyError(err error, format string, args ...any) (int, error) {
	if maxErr := (*http.MaxBytesError)(nil); errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", maxErr.Limit)
	}
	return http.StatusBadRequest, fmt.Errorf(format, args...)
}

// readJSON decodes a bounded JSON request body into v, returning the
// HTTP status the caller should answer a failure with.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return bodyError(err, "invalid JSON body: %v", err)
	}
	// Trailing garbage after the document is a malformed request too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return bodyError(err, "trailing data after JSON body")
	}
	return 0, nil
}

// fault consults the injection hook; a non-nil error aborts the
// handler with a 500 before the backend is touched.
func (s *Server) fault(op string) error {
	if s.faultHook == nil {
		return nil
	}
	return s.faultHook(op)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:  "ok",
		Schemas: s.backend.Stats().Schemas,
		Shards:  s.shards,
	})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := Readiness{
		Status:     "ok",
		Queued:     int(s.queued.Load()),
		InFlight:   int(s.inflight.Load()),
		Workers:    cap(s.sem),
		QueueLimit: s.queueLimit,
	}
	if st, ok := s.backend.IndexStats(); ok {
		ready.CandidateIndex = &st
	}
	ready.Recovery = s.backend.Recovery()
	if pc, ok := s.backend.PageCache(); ok {
		ready.PageCache = &pc
	}
	if ws, ok := s.backend.WarmStart(); ok {
		ready.WarmStart = &ws
	}
	if s.draining.Load() {
		ready.Status = "draining"
		ready.Draining = true
		writeJSON(w, http.StatusServiceUnavailable, ready)
		return
	}
	writeJSON(w, http.StatusOK, ready)
}

func (s *Server) handleListSchemas(w http.ResponseWriter, r *http.Request) {
	names := s.backend.SchemaNames()
	out := SchemasResponse{Schemas: make([]SchemaInfo, 0, len(names))}
	for _, n := range names {
		info := SchemaInfo{Name: n}
		if sc, ok := s.backend.GetSchema(n); ok {
			info.Paths = len(sc.Paths())
		}
		out.Schemas = append(out.Schemas, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePutSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.fault("put"); err != nil {
		writeError(w, http.StatusInternalServerError, "store schema %s: %v", name, err)
		return
	}
	var p SchemaPayload
	if status, err := s.readJSON(w, r, &p); err != nil {
		writeError(w, status, "%v", err)
		return
	}
	// The URL is authoritative for the name; a payload name, when
	// present, must agree — silently storing under a different key than
	// the request line names would be a trap.
	if p.Name != "" && p.Name != name {
		writeError(w, http.StatusBadRequest,
			"payload schema name %q contradicts URL name %q", p.Name, name)
		return
	}
	p.Name = name
	if !p.Inline() {
		writeError(w, http.StatusBadRequest, "PUT /schemas/%s requires an inline schema (format + source)", name)
		return
	}
	sc, err := ParseSchema(p)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	replaced, err := s.backend.PutSchema(sc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store schema %s: %v", name, err)
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, SchemaInfo{Name: sc.Name, Paths: len(sc.Paths())})
}

func (s *Server) handleGetSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc, ok := s.backend.GetSchema(name)
	if !ok {
		writeError(w, http.StatusNotFound, "schema %q not found", name)
		return
	}
	detail := SchemaDetail{Name: sc.Name}
	for _, p := range sc.Paths() {
		detail.Paths = append(detail.Paths, p.String())
	}
	writeJSON(w, http.StatusOK, detail)
}

func (s *Server) handleDeleteSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.fault("delete"); err != nil {
		writeError(w, http.StatusInternalServerError, "delete schema %s: %v", name, err)
		return
	}
	existed, err := s.backend.DeleteSchema(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "delete schema %s: %v", name, err)
		return
	}
	if !existed {
		writeError(w, http.StatusNotFound, "schema %q not found", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if err := s.fault("match"); err != nil {
		writeError(w, http.StatusInternalServerError, "match: %v", err)
		return
	}
	if s.draining.Load() {
		s.shedResponse(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var req MatchRequest
	if status, err := s.readJSON(w, r, &req); err != nil {
		writeError(w, status, "%v", err)
		return
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, "negative topK %d", req.TopK)
		return
	}
	var incoming *schema.Schema
	if req.Schema.Inline() {
		var err error
		if incoming, err = ParseSchema(req.Schema); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	} else {
		if req.Schema.Name == "" {
			writeError(w, http.StatusBadRequest, "match request names no schema")
			return
		}
		var ok bool
		if incoming, ok = s.backend.GetSchema(req.Schema.Name); !ok {
			writeError(w, http.StatusNotFound, "schema %q not found", req.Schema.Name)
			return
		}
	}

	// Bounded admission: shed load once more requests wait for a slot
	// than the queue bound allows — an over-full queue only converts
	// overload into latency, and Retry-After (derived from occupancy
	// and observed match time) tells well-behaved clients when to come
	// back.
	if n := s.queued.Add(1); s.queueLimit > 0 && n > int64(s.queueLimit) {
		s.queued.Add(-1)
		s.shedResponse(w, http.StatusTooManyRequests, "queue_full", "match queue is full")
		return
	}
	// Wait for an execution slot, bounded by the queue timeout, and
	// give up when the client does — a queued request whose caller is
	// gone would only burn the budget.
	var queueDeadline <-chan time.Time
	if s.queueTimeout > 0 {
		t := time.NewTimer(s.queueTimeout)
		defer t.Stop()
		queueDeadline = t.C
	}
	waitStart := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		s.queueWait.Observe(time.Since(waitStart).Seconds())
		defer func() { <-s.sem }()
	case <-queueDeadline:
		s.queued.Add(-1)
		s.shedResponse(w, http.StatusServiceUnavailable, "queue_timeout",
			"no match slot within %s", s.queueTimeout)
		return
	case <-r.Context().Done():
		s.queued.Add(-1)
		s.shed.With("client_closed").Inc()
		writeError(w, statusClientClosedRequest, "request canceled while queued")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// The match runs under the request context — a disconnecting
	// client cancels it — tightened by the per-request deadline when
	// configured. The pipeline stops cooperatively either way: workers
	// stop claiming pairs and rows, pooled matrices are recycled, and
	// transient analyses are evicted.
	mctx := r.Context()
	if s.matchTimeout > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(mctx, s.matchTimeout)
		defer cancel()
	}
	execStart := time.Now()
	matches, failures, err := s.backend.MatchIncoming(mctx, incoming, req.TopK, req.AllowPartial, req.Exhaustive)
	s.matchExec.Observe(time.Since(execStart).Seconds())
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout,
				"match %s: deadline of %s exceeded", incoming.Name, s.matchTimeout)
		case errors.Is(err, context.Canceled):
			writeError(w, statusClientClosedRequest, "match %s: canceled", incoming.Name)
		default:
			writeError(w, http.StatusInternalServerError, "match %s: %v", incoming.Name, err)
		}
		return
	}
	resp := MatchResponse{
		Incoming:     incoming.Name,
		Candidates:   make([]MatchCandidate, 0, len(matches)),
		Partial:      len(failures) > 0,
		FailedShards: failures,
	}
	for _, m := range matches {
		resp.Candidates = append(resp.Candidates, MatchCandidate{
			Schema:          m.Schema.Name,
			SchemaSim:       m.Result.SchemaSim,
			Correspondences: WireMapping(m.Result.Mapping),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
