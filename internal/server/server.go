// Package server puts a network front-end over a COMA repository: an
// HTTP/JSON API exposing the repository-server operations the paper's
// architecture implies (Do & Rahm, VLDB 2002, Section 3) — import a
// schema into the store, list what is stored, and match an incoming
// schema against every stored one in a single scheduled batch.
//
// Endpoints:
//
//	GET    /healthz          liveness + store size
//	GET    /schemas          stored schema names and sizes
//	PUT    /schemas/{name}   import an inline schema into the store
//	GET    /schemas/{name}   one stored schema's path enumeration
//	DELETE /schemas/{name}   remove a stored schema
//	POST   /match            batch-match an inline or stored schema
//
// Match execution is the expensive operation, so the server bounds the
// number of concurrently executing match requests with a semaphore
// sized to the engine's worker count: excess requests queue (and abort
// when the client goes away) instead of piling up unboundedly. Each
// admitted match still spreads over its own worker budget, so the
// worst-case CPU oversubscription is workers × workers, not
// request-count × workers.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/repository"
	"repro/internal/schema"
)

// Match is one ranked outcome of Backend.MatchIncoming.
type Match struct {
	// Schema is the stored candidate schema.
	Schema *schema.Schema
	// Result is the batch match result for (incoming, Schema).
	Result *core.Result
}

// Backend is what the server serves: repository storage plus the batch
// match operation. The single-store and sharded repositories both
// provide it (through thin adapters in the public coma package), so
// the backing layout is a deployment choice invisible to clients.
type Backend interface {
	// PutSchema stores (or replaces) a schema, reporting whether an
	// earlier schema of the same name was replaced — atomically, so
	// concurrent imports of one name agree on who created it.
	PutSchema(s *schema.Schema) (replaced bool, err error)
	GetSchema(name string) (*schema.Schema, bool)
	// DeleteSchema removes a schema, reporting whether it existed.
	DeleteSchema(name string) (existed bool, err error)
	SchemaNames() []string
	Stats() repository.Stats
	// MatchIncoming batch-matches the incoming schema against every
	// stored schema (excluding same-named ones), returning outcomes
	// ordered by descending combined schema similarity; topK > 0 keeps
	// only the K best.
	MatchIncoming(incoming *schema.Schema, topK int) ([]Match, error)
}

// Config assembles a Server.
type Config struct {
	// Backend is the served repository. Required.
	Backend Backend
	// Workers bounds the concurrently executing match requests: the
	// semaphore holds match.ResolveWorkers(Workers) slots (<= 0 =
	// NumCPU), mirroring the match engine's own worker knob. It is an
	// admission bound, not a CPU bound — every admitted match runs its
	// own Workers-slot budget.
	Workers int
	// Shards is reported by /healthz (1 for a single-store backend).
	Shards int
	// MaxBodyBytes caps request bodies (PUT /schemas, POST /match);
	// <= 0 selects DefaultMaxBodyBytes. An oversized upload is cut off
	// at the cap and answered with a uniform JSON 413 instead of being
	// buffered onto the heap.
	MaxBodyBytes int64
}

// Server is the HTTP front-end. It implements http.Handler.
type Server struct {
	backend Backend
	shards  int
	mux     *http.ServeMux
	// sem bounds concurrently executing match requests.
	sem chan struct{}
	// maxBody caps request bodies.
	maxBody int64
}

// New builds a Server over the config's backend.
func New(cfg Config) *Server {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		backend: cfg.Backend,
		shards:  shards,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, match.ResolveWorkers(cfg.Workers)),
		maxBody: maxBody,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /schemas", s.handleListSchemas)
	s.mux.HandleFunc("PUT /schemas/{name}", s.handlePutSchema)
	s.mux.HandleFunc("GET /schemas/{name}", s.handleGetSchema)
	s.mux.HandleFunc("DELETE /schemas/{name}", s.handleDeleteSchema)
	s.mux.HandleFunc("POST /match", s.handleMatch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// DefaultMaxBodyBytes is the default request body cap; schema
// documents are text and stay far below this.
const DefaultMaxBodyBytes = 16 << 20

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing sensible to do with a mid-body write error
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// bodyError classifies a request body decode failure: 413 when the
// body exceeded the server's cap (http.MaxBytesReader cuts the read
// off before the oversized payload reaches the heap), 400 with the
// given message otherwise.
func bodyError(err error, format string, args ...any) (int, error) {
	if maxErr := (*http.MaxBytesError)(nil); errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", maxErr.Limit)
	}
	return http.StatusBadRequest, fmt.Errorf(format, args...)
}

// readJSON decodes a bounded JSON request body into v, returning the
// HTTP status the caller should answer a failure with.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return bodyError(err, "invalid JSON body: %v", err)
	}
	// Trailing garbage after the document is a malformed request too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return bodyError(err, "trailing data after JSON body")
	}
	return 0, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:  "ok",
		Schemas: s.backend.Stats().Schemas,
		Shards:  s.shards,
	})
}

func (s *Server) handleListSchemas(w http.ResponseWriter, r *http.Request) {
	names := s.backend.SchemaNames()
	out := SchemasResponse{Schemas: make([]SchemaInfo, 0, len(names))}
	for _, n := range names {
		info := SchemaInfo{Name: n}
		if sc, ok := s.backend.GetSchema(n); ok {
			info.Paths = len(sc.Paths())
		}
		out.Schemas = append(out.Schemas, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePutSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var p SchemaPayload
	if status, err := s.readJSON(w, r, &p); err != nil {
		writeError(w, status, "%v", err)
		return
	}
	// The URL is authoritative for the name; a payload name, when
	// present, must agree — silently storing under a different key than
	// the request line names would be a trap.
	if p.Name != "" && p.Name != name {
		writeError(w, http.StatusBadRequest,
			"payload schema name %q contradicts URL name %q", p.Name, name)
		return
	}
	p.Name = name
	if !p.Inline() {
		writeError(w, http.StatusBadRequest, "PUT /schemas/%s requires an inline schema (format + source)", name)
		return
	}
	sc, err := ParseSchema(p)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	replaced, err := s.backend.PutSchema(sc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store schema %s: %v", name, err)
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, SchemaInfo{Name: sc.Name, Paths: len(sc.Paths())})
}

func (s *Server) handleGetSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc, ok := s.backend.GetSchema(name)
	if !ok {
		writeError(w, http.StatusNotFound, "schema %q not found", name)
		return
	}
	detail := SchemaDetail{Name: sc.Name}
	for _, p := range sc.Paths() {
		detail.Paths = append(detail.Paths, p.String())
	}
	writeJSON(w, http.StatusOK, detail)
}

func (s *Server) handleDeleteSchema(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	existed, err := s.backend.DeleteSchema(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "delete schema %s: %v", name, err)
		return
	}
	if !existed {
		writeError(w, http.StatusNotFound, "schema %q not found", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if status, err := s.readJSON(w, r, &req); err != nil {
		writeError(w, status, "%v", err)
		return
	}
	if req.TopK < 0 {
		writeError(w, http.StatusBadRequest, "negative topK %d", req.TopK)
		return
	}
	var incoming *schema.Schema
	if req.Schema.Inline() {
		var err error
		if incoming, err = ParseSchema(req.Schema); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	} else {
		if req.Schema.Name == "" {
			writeError(w, http.StatusBadRequest, "match request names no schema")
			return
		}
		var ok bool
		if incoming, ok = s.backend.GetSchema(req.Schema.Name); !ok {
			writeError(w, http.StatusNotFound, "schema %q not found", req.Schema.Name)
			return
		}
	}

	// Bounded in-flight matching: wait for a slot, but give up when the
	// client does — a queued request whose caller is gone would only
	// burn the budget.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request canceled while queued")
		return
	}

	matches, err := s.backend.MatchIncoming(incoming, req.TopK)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "match %s: %v", incoming.Name, err)
		return
	}
	resp := MatchResponse{Incoming: incoming.Name, Candidates: make([]MatchCandidate, 0, len(matches))}
	for _, m := range matches {
		resp.Candidates = append(resp.Candidates, MatchCandidate{
			Schema:          m.Schema.Name,
			SchemaSim:       m.Result.SchemaSim,
			Correspondences: WireMapping(m.Result.Mapping),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
